file(REMOVE_RECURSE
  "CMakeFiles/replicated_cluster.dir/replicated_cluster.cpp.o"
  "CMakeFiles/replicated_cluster.dir/replicated_cluster.cpp.o.d"
  "replicated_cluster"
  "replicated_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
