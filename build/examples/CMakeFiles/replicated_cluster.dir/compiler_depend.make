# Empty compiler generated dependencies file for replicated_cluster.
# This may be replaced when dependencies are built.
