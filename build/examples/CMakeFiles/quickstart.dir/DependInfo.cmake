
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/skv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/skv/CMakeFiles/skv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/skv_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/skv_server.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/skv_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/skv_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/skv_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
