file(REMOVE_RECURSE
  "CMakeFiles/kv_shell.dir/kv_shell.cpp.o"
  "CMakeFiles/kv_shell.dir/kv_shell.cpp.o.d"
  "kv_shell"
  "kv_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
