# Empty dependencies file for kv_shell.
# This may be replaced when dependencies are built.
