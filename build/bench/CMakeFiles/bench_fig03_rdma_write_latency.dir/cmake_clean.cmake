file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_rdma_write_latency.dir/bench_fig03_rdma_write_latency.cpp.o"
  "CMakeFiles/bench_fig03_rdma_write_latency.dir/bench_fig03_rdma_write_latency.cpp.o.d"
  "bench_fig03_rdma_write_latency"
  "bench_fig03_rdma_write_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_rdma_write_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
