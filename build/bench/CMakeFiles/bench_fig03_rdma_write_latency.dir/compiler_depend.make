# Empty compiler generated dependencies file for bench_fig03_rdma_write_latency.
# This may be replaced when dependencies are built.
