file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_slave_degradation.dir/bench_fig07_slave_degradation.cpp.o"
  "CMakeFiles/bench_fig07_slave_degradation.dir/bench_fig07_slave_degradation.cpp.o.d"
  "bench_fig07_slave_degradation"
  "bench_fig07_slave_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_slave_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
