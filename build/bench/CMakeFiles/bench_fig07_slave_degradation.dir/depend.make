# Empty dependencies file for bench_fig07_slave_degradation.
# This may be replaced when dependencies are built.
