# Empty dependencies file for bench_fig12_value_size.
# This may be replaced when dependencies are built.
