file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_skv_get.dir/bench_fig13_skv_get.cpp.o"
  "CMakeFiles/bench_fig13_skv_get.dir/bench_fig13_skv_get.cpp.o.d"
  "bench_fig13_skv_get"
  "bench_fig13_skv_get.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_skv_get.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
