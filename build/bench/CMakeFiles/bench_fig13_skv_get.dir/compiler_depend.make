# Empty compiler generated dependencies file for bench_fig13_skv_get.
# This may be replaced when dependencies are built.
