# Empty dependencies file for bench_fig10_tcp_vs_rdma.
# This may be replaced when dependencies are built.
