file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tcp_vs_rdma.dir/bench_fig10_tcp_vs_rdma.cpp.o"
  "CMakeFiles/bench_fig10_tcp_vs_rdma.dir/bench_fig10_tcp_vs_rdma.cpp.o.d"
  "bench_fig10_tcp_vs_rdma"
  "bench_fig10_tcp_vs_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tcp_vs_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
