# Empty dependencies file for bench_fig14_availability.
# This may be replaced when dependencies are built.
