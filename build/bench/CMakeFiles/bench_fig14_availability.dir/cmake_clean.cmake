file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_availability.dir/bench_fig14_availability.cpp.o"
  "CMakeFiles/bench_fig14_availability.dir/bench_fig14_availability.cpp.o.d"
  "bench_fig14_availability"
  "bench_fig14_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
