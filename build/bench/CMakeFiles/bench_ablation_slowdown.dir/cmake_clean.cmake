file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slowdown.dir/bench_ablation_slowdown.cpp.o"
  "CMakeFiles/bench_ablation_slowdown.dir/bench_ablation_slowdown.cpp.o.d"
  "bench_ablation_slowdown"
  "bench_ablation_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
