# Empty compiler generated dependencies file for bench_ablation_slowdown.
# This may be replaced when dependencies are built.
