# Empty dependencies file for bench_fig11_skv_set.
# This may be replaced when dependencies are built.
