file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_skv_set.dir/bench_fig11_skv_set.cpp.o"
  "CMakeFiles/bench_fig11_skv_set.dir/bench_fig11_skv_set.cpp.o.d"
  "bench_fig11_skv_set"
  "bench_fig11_skv_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_skv_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
