file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_threads.dir/bench_ablation_threads.cpp.o"
  "CMakeFiles/bench_ablation_threads.dir/bench_ablation_threads.cpp.o.d"
  "bench_ablation_threads"
  "bench_ablation_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
