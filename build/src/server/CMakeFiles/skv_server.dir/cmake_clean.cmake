file(REMOVE_RECURSE
  "CMakeFiles/skv_server.dir/kv_server.cpp.o"
  "CMakeFiles/skv_server.dir/kv_server.cpp.o.d"
  "CMakeFiles/skv_server.dir/protocol.cpp.o"
  "CMakeFiles/skv_server.dir/protocol.cpp.o.d"
  "libskv_server.a"
  "libskv_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skv_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
