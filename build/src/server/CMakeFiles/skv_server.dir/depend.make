# Empty dependencies file for skv_server.
# This may be replaced when dependencies are built.
