file(REMOVE_RECURSE
  "libskv_server.a"
)
