file(REMOVE_RECURSE
  "libskv_kv.a"
)
