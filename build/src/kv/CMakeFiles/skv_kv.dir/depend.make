# Empty dependencies file for skv_kv.
# This may be replaced when dependencies are built.
