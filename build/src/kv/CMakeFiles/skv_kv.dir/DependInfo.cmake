
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/backlog.cpp" "src/kv/CMakeFiles/skv_kv.dir/backlog.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/backlog.cpp.o.d"
  "/root/repo/src/kv/command.cpp" "src/kv/CMakeFiles/skv_kv.dir/command.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/command.cpp.o.d"
  "/root/repo/src/kv/commands_bits.cpp" "src/kv/CMakeFiles/skv_kv.dir/commands_bits.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/commands_bits.cpp.o.d"
  "/root/repo/src/kv/commands_hash.cpp" "src/kv/CMakeFiles/skv_kv.dir/commands_hash.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/commands_hash.cpp.o.d"
  "/root/repo/src/kv/commands_keys.cpp" "src/kv/CMakeFiles/skv_kv.dir/commands_keys.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/commands_keys.cpp.o.d"
  "/root/repo/src/kv/commands_list.cpp" "src/kv/CMakeFiles/skv_kv.dir/commands_list.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/commands_list.cpp.o.d"
  "/root/repo/src/kv/commands_scan.cpp" "src/kv/CMakeFiles/skv_kv.dir/commands_scan.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/commands_scan.cpp.o.d"
  "/root/repo/src/kv/commands_server.cpp" "src/kv/CMakeFiles/skv_kv.dir/commands_server.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/commands_server.cpp.o.d"
  "/root/repo/src/kv/commands_set.cpp" "src/kv/CMakeFiles/skv_kv.dir/commands_set.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/commands_set.cpp.o.d"
  "/root/repo/src/kv/commands_string.cpp" "src/kv/CMakeFiles/skv_kv.dir/commands_string.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/commands_string.cpp.o.d"
  "/root/repo/src/kv/commands_zset.cpp" "src/kv/CMakeFiles/skv_kv.dir/commands_zset.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/commands_zset.cpp.o.d"
  "/root/repo/src/kv/db.cpp" "src/kv/CMakeFiles/skv_kv.dir/db.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/db.cpp.o.d"
  "/root/repo/src/kv/dict.cpp" "src/kv/CMakeFiles/skv_kv.dir/dict.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/dict.cpp.o.d"
  "/root/repo/src/kv/intset.cpp" "src/kv/CMakeFiles/skv_kv.dir/intset.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/intset.cpp.o.d"
  "/root/repo/src/kv/object.cpp" "src/kv/CMakeFiles/skv_kv.dir/object.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/object.cpp.o.d"
  "/root/repo/src/kv/rdb.cpp" "src/kv/CMakeFiles/skv_kv.dir/rdb.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/rdb.cpp.o.d"
  "/root/repo/src/kv/resp.cpp" "src/kv/CMakeFiles/skv_kv.dir/resp.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/resp.cpp.o.d"
  "/root/repo/src/kv/sds.cpp" "src/kv/CMakeFiles/skv_kv.dir/sds.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/sds.cpp.o.d"
  "/root/repo/src/kv/skiplist.cpp" "src/kv/CMakeFiles/skv_kv.dir/skiplist.cpp.o" "gcc" "src/kv/CMakeFiles/skv_kv.dir/skiplist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/skv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
