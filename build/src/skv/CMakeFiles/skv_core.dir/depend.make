# Empty dependencies file for skv_core.
# This may be replaced when dependencies are built.
