file(REMOVE_RECURSE
  "libskv_core.a"
)
