file(REMOVE_RECURSE
  "CMakeFiles/skv_core.dir/cluster.cpp.o"
  "CMakeFiles/skv_core.dir/cluster.cpp.o.d"
  "CMakeFiles/skv_core.dir/nic_kv.cpp.o"
  "CMakeFiles/skv_core.dir/nic_kv.cpp.o.d"
  "libskv_core.a"
  "libskv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
