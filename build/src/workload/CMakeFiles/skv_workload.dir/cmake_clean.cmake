file(REMOVE_RECURSE
  "CMakeFiles/skv_workload.dir/client.cpp.o"
  "CMakeFiles/skv_workload.dir/client.cpp.o.d"
  "CMakeFiles/skv_workload.dir/generator.cpp.o"
  "CMakeFiles/skv_workload.dir/generator.cpp.o.d"
  "CMakeFiles/skv_workload.dir/runner.cpp.o"
  "CMakeFiles/skv_workload.dir/runner.cpp.o.d"
  "libskv_workload.a"
  "libskv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
