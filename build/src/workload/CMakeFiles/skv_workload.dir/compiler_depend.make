# Empty compiler generated dependencies file for skv_workload.
# This may be replaced when dependencies are built.
