file(REMOVE_RECURSE
  "libskv_workload.a"
)
