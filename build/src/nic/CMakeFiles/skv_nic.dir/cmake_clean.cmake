file(REMOVE_RECURSE
  "CMakeFiles/skv_nic.dir/smartnic.cpp.o"
  "CMakeFiles/skv_nic.dir/smartnic.cpp.o.d"
  "libskv_nic.a"
  "libskv_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skv_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
