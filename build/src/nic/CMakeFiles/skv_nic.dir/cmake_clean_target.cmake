file(REMOVE_RECURSE
  "libskv_nic.a"
)
