# Empty compiler generated dependencies file for skv_nic.
# This may be replaced when dependencies are built.
