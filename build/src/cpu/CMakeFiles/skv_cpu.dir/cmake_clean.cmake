file(REMOVE_RECURSE
  "CMakeFiles/skv_cpu.dir/core.cpp.o"
  "CMakeFiles/skv_cpu.dir/core.cpp.o.d"
  "libskv_cpu.a"
  "libskv_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skv_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
