file(REMOVE_RECURSE
  "libskv_cpu.a"
)
