# Empty compiler generated dependencies file for skv_cpu.
# This may be replaced when dependencies are built.
