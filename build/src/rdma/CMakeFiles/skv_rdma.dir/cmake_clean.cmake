file(REMOVE_RECURSE
  "CMakeFiles/skv_rdma.dir/cm.cpp.o"
  "CMakeFiles/skv_rdma.dir/cm.cpp.o.d"
  "CMakeFiles/skv_rdma.dir/ring_channel.cpp.o"
  "CMakeFiles/skv_rdma.dir/ring_channel.cpp.o.d"
  "CMakeFiles/skv_rdma.dir/verbs.cpp.o"
  "CMakeFiles/skv_rdma.dir/verbs.cpp.o.d"
  "libskv_rdma.a"
  "libskv_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skv_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
