file(REMOVE_RECURSE
  "libskv_rdma.a"
)
