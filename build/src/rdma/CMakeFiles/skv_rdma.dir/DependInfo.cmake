
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/cm.cpp" "src/rdma/CMakeFiles/skv_rdma.dir/cm.cpp.o" "gcc" "src/rdma/CMakeFiles/skv_rdma.dir/cm.cpp.o.d"
  "/root/repo/src/rdma/ring_channel.cpp" "src/rdma/CMakeFiles/skv_rdma.dir/ring_channel.cpp.o" "gcc" "src/rdma/CMakeFiles/skv_rdma.dir/ring_channel.cpp.o.d"
  "/root/repo/src/rdma/verbs.cpp" "src/rdma/CMakeFiles/skv_rdma.dir/verbs.cpp.o" "gcc" "src/rdma/CMakeFiles/skv_rdma.dir/verbs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/skv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/skv_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skv_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
