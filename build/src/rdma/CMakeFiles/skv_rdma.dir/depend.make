# Empty dependencies file for skv_rdma.
# This may be replaced when dependencies are built.
