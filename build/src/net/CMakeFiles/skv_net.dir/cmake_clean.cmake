file(REMOVE_RECURSE
  "CMakeFiles/skv_net.dir/fabric.cpp.o"
  "CMakeFiles/skv_net.dir/fabric.cpp.o.d"
  "CMakeFiles/skv_net.dir/tcp.cpp.o"
  "CMakeFiles/skv_net.dir/tcp.cpp.o.d"
  "libskv_net.a"
  "libskv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
