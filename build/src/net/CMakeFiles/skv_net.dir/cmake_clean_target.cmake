file(REMOVE_RECURSE
  "libskv_net.a"
)
