# Empty compiler generated dependencies file for skv_net.
# This may be replaced when dependencies are built.
