file(REMOVE_RECURSE
  "CMakeFiles/skv_sim.dir/event_queue.cpp.o"
  "CMakeFiles/skv_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/skv_sim.dir/histogram.cpp.o"
  "CMakeFiles/skv_sim.dir/histogram.cpp.o.d"
  "CMakeFiles/skv_sim.dir/rng.cpp.o"
  "CMakeFiles/skv_sim.dir/rng.cpp.o.d"
  "CMakeFiles/skv_sim.dir/simulation.cpp.o"
  "CMakeFiles/skv_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/skv_sim.dir/stats.cpp.o"
  "CMakeFiles/skv_sim.dir/stats.cpp.o.d"
  "CMakeFiles/skv_sim.dir/time.cpp.o"
  "CMakeFiles/skv_sim.dir/time.cpp.o.d"
  "CMakeFiles/skv_sim.dir/trace.cpp.o"
  "CMakeFiles/skv_sim.dir/trace.cpp.o.d"
  "libskv_sim.a"
  "libskv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
