# Empty compiler generated dependencies file for skv_sim.
# This may be replaced when dependencies are built.
