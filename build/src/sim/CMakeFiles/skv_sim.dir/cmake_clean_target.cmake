file(REMOVE_RECURSE
  "libskv_sim.a"
)
