# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_sim[1]_include.cmake")
include("/root/repo/build/tests/tests_engine[1]_include.cmake")
include("/root/repo/build/tests/tests_net[1]_include.cmake")
include("/root/repo/build/tests/tests_server[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
