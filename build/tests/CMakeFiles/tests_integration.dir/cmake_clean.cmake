file(REMOVE_RECURSE
  "CMakeFiles/tests_integration.dir/determinism_test.cpp.o"
  "CMakeFiles/tests_integration.dir/determinism_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/figures_regression_test.cpp.o"
  "CMakeFiles/tests_integration.dir/figures_regression_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/skv_cluster_test.cpp.o"
  "CMakeFiles/tests_integration.dir/skv_cluster_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/skv_lag_test.cpp.o"
  "CMakeFiles/tests_integration.dir/skv_lag_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/skv_nic_kv_test.cpp.o"
  "CMakeFiles/tests_integration.dir/skv_nic_kv_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/workload_test.cpp.o"
  "CMakeFiles/tests_integration.dir/workload_test.cpp.o.d"
  "tests_integration"
  "tests_integration.pdb"
  "tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
