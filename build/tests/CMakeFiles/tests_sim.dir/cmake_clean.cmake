file(REMOVE_RECURSE
  "CMakeFiles/tests_sim.dir/sim_event_queue_test.cpp.o"
  "CMakeFiles/tests_sim.dir/sim_event_queue_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/sim_histogram_test.cpp.o"
  "CMakeFiles/tests_sim.dir/sim_histogram_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/sim_rng_test.cpp.o"
  "CMakeFiles/tests_sim.dir/sim_rng_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/sim_time_test.cpp.o"
  "CMakeFiles/tests_sim.dir/sim_time_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/sim_trace_test.cpp.o"
  "CMakeFiles/tests_sim.dir/sim_trace_test.cpp.o.d"
  "tests_sim"
  "tests_sim.pdb"
  "tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
