# Empty compiler generated dependencies file for tests_server.
# This may be replaced when dependencies are built.
