file(REMOVE_RECURSE
  "CMakeFiles/tests_server.dir/server_kv_server_test.cpp.o"
  "CMakeFiles/tests_server.dir/server_kv_server_test.cpp.o.d"
  "CMakeFiles/tests_server.dir/server_protocol_test.cpp.o"
  "CMakeFiles/tests_server.dir/server_protocol_test.cpp.o.d"
  "CMakeFiles/tests_server.dir/server_replication_test.cpp.o"
  "CMakeFiles/tests_server.dir/server_replication_test.cpp.o.d"
  "tests_server"
  "tests_server.pdb"
  "tests_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
