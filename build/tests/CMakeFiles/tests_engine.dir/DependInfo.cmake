
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kv_backlog_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_backlog_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_backlog_test.cpp.o.d"
  "/root/repo/tests/kv_bits_command_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_bits_command_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_bits_command_test.cpp.o.d"
  "/root/repo/tests/kv_command_edge_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_command_edge_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_command_edge_test.cpp.o.d"
  "/root/repo/tests/kv_command_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_command_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_command_test.cpp.o.d"
  "/root/repo/tests/kv_db_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_db_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_db_test.cpp.o.d"
  "/root/repo/tests/kv_dict_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_dict_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_dict_test.cpp.o.d"
  "/root/repo/tests/kv_intset_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_intset_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_intset_test.cpp.o.d"
  "/root/repo/tests/kv_object_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_object_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_object_test.cpp.o.d"
  "/root/repo/tests/kv_rdb_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_rdb_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_rdb_test.cpp.o.d"
  "/root/repo/tests/kv_resp_fuzz_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_resp_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_resp_fuzz_test.cpp.o.d"
  "/root/repo/tests/kv_resp_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_resp_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_resp_test.cpp.o.d"
  "/root/repo/tests/kv_scan_command_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_scan_command_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_scan_command_test.cpp.o.d"
  "/root/repo/tests/kv_sds_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_sds_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_sds_test.cpp.o.d"
  "/root/repo/tests/kv_skiplist_test.cpp" "tests/CMakeFiles/tests_engine.dir/kv_skiplist_test.cpp.o" "gcc" "tests/CMakeFiles/tests_engine.dir/kv_skiplist_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/skv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/skv/CMakeFiles/skv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/skv_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/skv_server.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/skv_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/skv_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/skv_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
