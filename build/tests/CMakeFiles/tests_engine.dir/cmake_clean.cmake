file(REMOVE_RECURSE
  "CMakeFiles/tests_engine.dir/kv_backlog_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_backlog_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_bits_command_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_bits_command_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_command_edge_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_command_edge_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_command_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_command_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_db_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_db_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_dict_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_dict_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_intset_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_intset_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_object_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_object_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_rdb_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_rdb_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_resp_fuzz_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_resp_fuzz_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_resp_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_resp_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_scan_command_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_scan_command_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_sds_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_sds_test.cpp.o.d"
  "CMakeFiles/tests_engine.dir/kv_skiplist_test.cpp.o"
  "CMakeFiles/tests_engine.dir/kv_skiplist_test.cpp.o.d"
  "tests_engine"
  "tests_engine.pdb"
  "tests_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
