# Empty compiler generated dependencies file for tests_engine.
# This may be replaced when dependencies are built.
