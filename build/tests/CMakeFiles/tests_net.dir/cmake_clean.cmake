file(REMOVE_RECURSE
  "CMakeFiles/tests_net.dir/cpu_core_test.cpp.o"
  "CMakeFiles/tests_net.dir/cpu_core_test.cpp.o.d"
  "CMakeFiles/tests_net.dir/net_fabric_test.cpp.o"
  "CMakeFiles/tests_net.dir/net_fabric_test.cpp.o.d"
  "CMakeFiles/tests_net.dir/net_tcp_test.cpp.o"
  "CMakeFiles/tests_net.dir/net_tcp_test.cpp.o.d"
  "CMakeFiles/tests_net.dir/nic_smartnic_test.cpp.o"
  "CMakeFiles/tests_net.dir/nic_smartnic_test.cpp.o.d"
  "CMakeFiles/tests_net.dir/rdma_ring_test.cpp.o"
  "CMakeFiles/tests_net.dir/rdma_ring_test.cpp.o.d"
  "CMakeFiles/tests_net.dir/rdma_verbs_test.cpp.o"
  "CMakeFiles/tests_net.dir/rdma_verbs_test.cpp.o.d"
  "tests_net"
  "tests_net.pdb"
  "tests_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
