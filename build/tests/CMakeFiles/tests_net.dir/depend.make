# Empty dependencies file for tests_net.
# This may be replaced when dependencies are built.
