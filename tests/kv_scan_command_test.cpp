#include <gtest/gtest.h>

#include <set>

#include "kv/command.hpp"

namespace skv::kv {
namespace {

class ScanCommandTest : public ::testing::Test {
protected:
    ScanCommandTest() : rng_(13), db_([this] { return now_ms_; }) {}

    resp::Value run(std::vector<std::string> argv) {
        std::string out;
        CommandTable::instance().execute(db_, rng_, argv, out);
        resp::ReplyParser p;
        p.feed(out);
        resp::Value v;
        EXPECT_EQ(p.next(&v), resp::Status::kOk);
        return v;
    }

    /// Drive SCAN to completion, returning every key seen.
    std::set<std::string> full_scan(const std::vector<std::string>& extra = {}) {
        std::set<std::string> seen;
        std::string cursor = "0";
        int guard = 0;
        do {
            std::vector<std::string> argv{"SCAN", cursor};
            argv.insert(argv.end(), extra.begin(), extra.end());
            const auto v = run(argv);
            EXPECT_EQ(v.kind, resp::Value::Kind::kArray);
            EXPECT_EQ(v.elems.size(), 2u);
            cursor = v.elems[0].str;
            for (const auto& k : v.elems[1].elems) seen.insert(k.str);
        } while (cursor != "0" && guard++ < 10'000);
        return seen;
    }

    std::int64_t now_ms_ = 1000;
    sim::Rng rng_;
    Database db_;
};

TEST_F(ScanCommandTest, ScanEmptyKeyspace) {
    const auto v = run({"SCAN", "0"});
    EXPECT_EQ(v.elems[0].str, "0");
    EXPECT_TRUE(v.elems[1].elems.empty());
}

TEST_F(ScanCommandTest, ScanCoversEveryKey) {
    for (int i = 0; i < 500; ++i) {
        run({"SET", "key:" + std::to_string(i), "v"});
    }
    const auto seen = full_scan();
    EXPECT_EQ(seen.size(), 500u);
    EXPECT_TRUE(seen.contains("key:0"));
    EXPECT_TRUE(seen.contains("key:499"));
}

TEST_F(ScanCommandTest, ScanMatchFilters) {
    run({"MSET", "user:1", "a", "user:2", "b", "other", "c"});
    const auto seen = full_scan({"MATCH", "user:*"});
    EXPECT_EQ(seen, (std::set<std::string>{"user:1", "user:2"}));
}

TEST_F(ScanCommandTest, ScanCountControlsStepSize) {
    for (int i = 0; i < 100; ++i) run({"SET", "k" + std::to_string(i), "v"});
    // COUNT 1 must still terminate and cover everything.
    const auto seen = full_scan({"COUNT", "1"});
    EXPECT_EQ(seen.size(), 100u);
}

TEST_F(ScanCommandTest, ScanInvalidCursorAndOptions) {
    std::string out;
    CommandTable::instance().execute(db_, rng_, {"SCAN", "abc"}, out);
    EXPECT_EQ(out.front(), '-');
    out.clear();
    CommandTable::instance().execute(db_, rng_, {"SCAN", "0", "BOGUS"}, out);
    EXPECT_EQ(out.front(), '-');
    out.clear();
    CommandTable::instance().execute(db_, rng_, {"SCAN", "0", "COUNT", "0"}, out);
    EXPECT_EQ(out.front(), '-');
}

TEST_F(ScanCommandTest, SscanReturnsMembers) {
    run({"SADD", "s", "alpha", "beta", "gamma"});
    const auto v = run({"SSCAN", "s", "0"});
    EXPECT_EQ(v.elems[0].str, "0");
    ASSERT_EQ(v.elems[1].elems.size(), 3u);
    EXPECT_EQ(v.elems[1].elems[0].str, "alpha");
}

TEST_F(ScanCommandTest, SscanMatch) {
    run({"SADD", "s", "aa", "ab", "bb"});
    const auto v = run({"SSCAN", "s", "0", "MATCH", "a*"});
    ASSERT_EQ(v.elems[1].elems.size(), 2u);
}

TEST_F(ScanCommandTest, HscanReturnsPairs) {
    run({"HSET", "h", "f1", "v1", "f2", "v2"});
    const auto v = run({"HSCAN", "h", "0"});
    ASSERT_EQ(v.elems[1].elems.size(), 4u);
    EXPECT_EQ(v.elems[1].elems[0].str, "f1");
    EXPECT_EQ(v.elems[1].elems[1].str, "v1");
}

TEST_F(ScanCommandTest, ZscanReturnsMembersWithScores) {
    run({"ZADD", "z", "1", "a", "2.5", "b"});
    const auto v = run({"ZSCAN", "z", "0"});
    ASSERT_EQ(v.elems[1].elems.size(), 4u);
    EXPECT_EQ(v.elems[1].elems[0].str, "a");
    EXPECT_EQ(v.elems[1].elems[1].str, "1");
    EXPECT_EQ(v.elems[1].elems[3].str, "2.5");
}

TEST_F(ScanCommandTest, ScansOnMissingKeysReturnEmpty) {
    for (const char* cmd : {"SSCAN", "HSCAN", "ZSCAN"}) {
        const auto v = run({cmd, "missing", "0"});
        EXPECT_EQ(v.elems[0].str, "0") << cmd;
        EXPECT_TRUE(v.elems[1].elems.empty()) << cmd;
    }
}

TEST_F(ScanCommandTest, ScanWrongType) {
    run({"SET", "str", "v"});
    std::string out;
    CommandTable::instance().execute(db_, rng_, {"SSCAN", "str", "0"}, out);
    EXPECT_EQ(out.rfind("-WRONGTYPE", 0), 0u);
}

TEST_F(ScanCommandTest, GetdelReturnsAndRemoves) {
    run({"SET", "k", "v"});
    const auto v = run({"GETDEL", "k"});
    EXPECT_EQ(v.str, "v");
    EXPECT_FALSE(db_.exists("k"));
    const auto v2 = run({"GETDEL", "k"});
    EXPECT_EQ(v2.kind, resp::Value::Kind::kNull);
}

TEST_F(ScanCommandTest, GetdelReplicatesAsDel) {
    run({"SET", "k", "v"});
    std::string out;
    const auto res =
        CommandTable::instance().execute(db_, rng_, {"GETDEL", "k"}, out);
    EXPECT_EQ(res.repl_argv, (std::vector<std::string>{"DEL", "k"}));
}

TEST_F(ScanCommandTest, GetexSetsTtl) {
    run({"SET", "k", "v"});
    const auto v = run({"GETEX", "k", "PX", "500"});
    EXPECT_EQ(v.str, "v");
    EXPECT_EQ(*db_.expire_at("k"), 1500);
}

TEST_F(ScanCommandTest, GetexPersist) {
    run({"SET", "k", "v", "PX", "500"});
    run({"GETEX", "k", "PERSIST"});
    EXPECT_FALSE(db_.expire_at("k").has_value());
}

TEST_F(ScanCommandTest, GetexPlainDoesNotTouchTtl) {
    run({"SET", "k", "v", "PX", "500"});
    const auto v = run({"GETEX", "k"});
    EXPECT_EQ(v.str, "v");
    EXPECT_EQ(*db_.expire_at("k"), 1500);
}

TEST_F(ScanCommandTest, GetexBadSyntax) {
    run({"SET", "k", "v"});
    std::string out;
    CommandTable::instance().execute(db_, rng_, {"GETEX", "k", "EX", "0"}, out);
    EXPECT_EQ(out.front(), '-');
    out.clear();
    CommandTable::instance().execute(db_, rng_, {"GETEX", "k", "WAT"}, out);
    EXPECT_EQ(out.front(), '-');
}

} // namespace
} // namespace skv::kv
