#include <gtest/gtest.h>

#include "cpu/core.hpp"
#include "cpu/cost_model.hpp"

namespace skv::cpu {
namespace {

TEST(Core, TasksRunSeriallyInOrder) {
    sim::Simulation sim(1);
    Core core(sim, "c");
    std::vector<int> order;
    std::vector<std::int64_t> times;
    core.submit(sim::microseconds(2), [&] {
        order.push_back(1);
        times.push_back(sim.now().ns());
    });
    core.submit(sim::microseconds(3), [&] {
        order.push_back(2);
        times.push_back(sim.now().ns());
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(times[0], 2'000);
    EXPECT_EQ(times[1], 5'000); // queued behind the first
}

TEST(Core, SpeedFactorScalesCost) {
    sim::Simulation sim(1);
    Core slow(sim, "arm", 2.5);
    std::int64_t done = 0;
    slow.submit(sim::microseconds(2), [&] { done = sim.now().ns(); });
    sim.run();
    EXPECT_EQ(done, 5'000);
}

TEST(Core, ConsumeOccupiesWithoutCallback) {
    sim::Simulation sim(1);
    Core core(sim, "c");
    core.consume(sim::microseconds(10));
    std::int64_t done = 0;
    core.submit(sim::microseconds(1), [&] { done = sim.now().ns(); });
    sim.run();
    EXPECT_EQ(done, 11'000);
}

TEST(Core, IdleGapThenNewWork) {
    sim::Simulation sim(1);
    Core core(sim, "c");
    core.submit(sim::microseconds(1), [] {});
    sim.run();
    // Core idle from t=1us. New work at t=10us starts immediately.
    sim.after(sim::microseconds(9), [&] {
        core.submit(sim::microseconds(2), [&] {
            EXPECT_EQ(sim.now().ns(), 12'000);
        });
    });
    sim.run();
}

TEST(Core, TotalBusyAccumulates) {
    sim::Simulation sim(1);
    Core core(sim, "c");
    core.consume(sim::microseconds(3));
    core.consume(sim::microseconds(4));
    EXPECT_EQ(core.total_busy().ns(), 7'000);
    EXPECT_EQ(core.tasks_executed(), 2u);
}

TEST(Core, UtilizationHalfBusy) {
    sim::Simulation sim(1);
    Core core(sim, "c");
    core.consume(sim::microseconds(5));
    sim.run_until(sim::SimTime(10'000));
    EXPECT_NEAR(core.utilization(), 0.5, 0.01);
}

TEST(Core, UtilizationClipsCommittedFuture) {
    sim::Simulation sim(1);
    Core core(sim, "c");
    core.consume(sim::milliseconds(100)); // committed far beyond now
    sim.run_until(sim::SimTime(1'000'000));
    EXPECT_LE(core.utilization(), 1.0);
    EXPECT_GE(core.utilization(), 0.99);
}

TEST(Core, HaltDropsSubmissions) {
    sim::Simulation sim(1);
    Core core(sim, "c");
    core.halt();
    bool ran = false;
    const auto t = core.submit(sim::microseconds(1), [&] { ran = true; });
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(t, sim::SimTime::max());
    core.resume();
    core.submit(sim::microseconds(1), [&] { ran = true; });
    sim.run();
    EXPECT_TRUE(ran);
}

TEST(CostModel, JitterNeverShrinks) {
    CostModel costs;
    sim::Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const auto j = costs.jittered(rng, sim::microseconds(1));
        EXPECT_GE(j.ns(), 1'000);
        EXPECT_LT(j.ns(), 100'000); // exponential tail but not absurd
    }
}

TEST(CostModel, JitterDisabled) {
    CostModel costs;
    costs.jitter_frac = 0.0;
    sim::Rng rng(1);
    EXPECT_EQ(costs.jittered(rng, sim::microseconds(1)).ns(), 1'000);
}

TEST(CostModel, CopyCostLinear) {
    CostModel costs;
    EXPECT_EQ(costs.copy_cost(0).ns(), 0);
    EXPECT_EQ(costs.copy_cost(20'000).ns(),
              static_cast<std::int64_t>(20'000 * costs.copy_ns_per_byte));
}

TEST(CostModel, TcpSideCostHasFixedAndVariableParts) {
    CostModel costs;
    const auto small = costs.tcp_side_cost(1);
    const auto big = costs.tcp_side_cost(100'000);
    EXPECT_GT(small.ns(), 2'000); // syscall + proto dominate
    EXPECT_GT(big.ns(), small.ns() + 10'000);
}

} // namespace
} // namespace skv::cpu
