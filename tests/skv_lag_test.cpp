#include <gtest/gtest.h>

#include "kv/resp.hpp"
#include "skv/cluster.hpp"

namespace skv::offload {
namespace {

/// Replication-progress gating (paper Fig. 9 step 3): slaves report their
/// offsets; the master refuses writes when a *valid* slave lags too far.

class LagTest : public ::testing::Test {
protected:
    struct Client {
        net::ChannelPtr ch;
        std::string replies;
        int oks = 0;
        int errors = 0;
        kv::resp::ReplyParser parser;

        void pump() {
            kv::resp::Value v;
            while (parser.next(&v) == kv::resp::Status::kOk) {
                (v.is_error() ? errors : oks)++;
                if (v.is_error()) last_error = v.str;
            }
        }
        std::string last_error;
    };

    std::unique_ptr<Cluster> make(std::int64_t max_lag, int n_slaves) {
        ClusterConfig cfg;
        cfg.n_slaves = n_slaves;
        cfg.offload = true;
        cfg.server_tmpl.max_repl_lag_bytes = max_lag;
        auto c = std::make_unique<Cluster>(cfg);
        c->start();
        return c;
    }

    Client connect(Cluster& c) {
        Client cl;
        auto node = c.add_client_host("lagtester" + std::to_string(++hosts_));
        c.connect_client(node, [&](net::ChannelPtr x) { cl.ch = std::move(x); });
        c.sim().run_until(c.sim().now() + sim::milliseconds(10));
        return cl;
    }

    int hosts_ = 0;
};

TEST_F(LagTest, HealthySlavesNeverTripTheGate) {
    auto c = make(1 << 20, 2);
    auto cl = connect(*c);
    ASSERT_TRUE(cl.ch);
    cl.ch->set_on_message([&](std::string m) {
        cl.parser.feed(m);
        cl.pump();
    });
    for (int i = 0; i < 200; ++i) {
        cl.ch->send(kv::resp::command({"SET", "k" + std::to_string(i), "v"}));
    }
    c->sim().run_until(c->sim().now() + sim::milliseconds(300));
    EXPECT_EQ(cl.errors, 0);
    EXPECT_EQ(cl.oks, 200);
}

TEST_F(LagTest, DeadButUndetectedSlaveTripsTheGateEventually) {
    // Tiny lag budget + a crashed slave that is still marked valid: the
    // master's writes start failing with NOREPLPROGRESS until the failure
    // detector marks the slave invalid, after which writes flow again —
    // the interplay of the two §III-D mechanisms.
    auto c = make(2048, 2);
    auto cl = connect(*c);
    ASSERT_TRUE(cl.ch);
    cl.ch->set_on_message([&](std::string m) {
        cl.parser.feed(m);
        cl.pump();
    });

    c->slave(0).crash();
    // Immediately hammer writes, before the detector can react (its next
    // probe round is up to 1s + waiting-time away).
    for (int i = 0; i < 300; ++i) {
        cl.ch->send(kv::resp::command({"SET", "k" + std::to_string(i),
                                       std::string(32, 'v')}));
    }
    c->sim().run_until(c->sim().now() + sim::milliseconds(400));
    EXPECT_GT(cl.errors, 0);
    EXPECT_NE(cl.last_error.find("NOREPLPROGRESS"), std::string::npos);

    // After detection the invalid slave is exempt from the lag check.
    c->sim().run_until(c->sim().now() + sim::seconds(4));
    const int errors_after_detection = cl.errors;
    cl.ch->send(kv::resp::command({"SET", "recovered-write", "v"}));
    c->sim().run_until(c->sim().now() + sim::milliseconds(20));
    EXPECT_EQ(cl.errors, errors_after_detection);
    EXPECT_TRUE(c->master().db().exists("recovered-write"));
}

TEST_F(LagTest, PromotedStandInAcceptsWrites) {
    auto c = make(1 << 24, 2);
    c->sim().run_until(c->sim().now() + sim::seconds(1));
    c->master().crash();
    c->sim().run_until(c->sim().now() + sim::seconds(4));

    // Find the promoted slave and write to it directly.
    int promoted = -1;
    for (int i = 0; i < 2; ++i) {
        if (c->slave(i).role() == server::Role::kMaster) promoted = i;
    }
    ASSERT_GE(promoted, 0);

    auto node = c->add_client_host("writer");
    net::ChannelPtr ch;
    c->cm().connect(node, c->slave(promoted).node().ep, 6379,
                    [&](rdma::RingChannelPtr x) { ch = x; });
    c->sim().run_until(c->sim().now() + sim::milliseconds(10));
    ASSERT_TRUE(ch);
    std::string replies;
    ch->set_on_message([&](std::string m) { replies += m; });
    ch->send(kv::resp::command({"SET", "on-standin", "v"}));
    c->sim().run_until(c->sim().now() + sim::milliseconds(20));
    EXPECT_NE(replies.find("+OK"), std::string::npos);
    EXPECT_TRUE(c->slave(promoted).db().exists("on-standin"));

    // After the real master returns, the stand-in refuses writes again.
    c->master().recover();
    c->sim().run_until(c->sim().now() + sim::seconds(4));
    ASSERT_EQ(c->slave(promoted).role(), server::Role::kSlave);
    replies.clear();
    ch->send(kv::resp::command({"SET", "late-write", "v"}));
    c->sim().run_until(c->sim().now() + sim::milliseconds(20));
    EXPECT_NE(replies.find("-READONLY"), std::string::npos);
}

TEST_F(LagTest, SlaveServesReadsThroughout) {
    auto c = make(1 << 24, 1);
    auto cl = connect(*c);
    ASSERT_TRUE(cl.ch);
    cl.ch->set_on_message([&](std::string m) {
        cl.parser.feed(m);
        cl.pump();
    });
    cl.ch->send(kv::resp::command({"SET", "shared", "value"}));
    c->sim().run_until(c->sim().now() + sim::milliseconds(100));

    auto node = c->add_client_host("reader");
    net::ChannelPtr ch;
    c->cm().connect(node, c->slave(0).node().ep, 6379,
                    [&](rdma::RingChannelPtr x) { ch = x; });
    c->sim().run_until(c->sim().now() + sim::milliseconds(10));
    ASSERT_TRUE(ch);
    std::string replies;
    ch->set_on_message([&](std::string m) { replies += m; });
    ch->send(kv::resp::command({"GET", "shared"}));
    c->sim().run_until(c->sim().now() + sim::milliseconds(20));
    EXPECT_NE(replies.find("value"), std::string::npos);
}

} // namespace
} // namespace skv::offload
