#include <gtest/gtest.h>

#include "kv/command.hpp"

namespace skv::kv {
namespace {

/// Second-wave conformance: boundary and error-path behaviour that the
/// main suite does not touch.
class CommandEdgeTest : public ::testing::Test {
protected:
    CommandEdgeTest() : rng_(7), db_([this] { return now_ms_; }) {}

    ExecResult run(std::vector<std::string> argv) {
        last_reply_.clear();
        return CommandTable::instance().execute(db_, rng_, argv, last_reply_);
    }

    void expect_reply(std::vector<std::string> argv, std::string_view want) {
        run(std::move(argv));
        EXPECT_EQ(last_reply_, want);
    }

    [[nodiscard]] bool errored() const {
        return !last_reply_.empty() && last_reply_.front() == '-';
    }

    std::int64_t now_ms_ = 1000;
    sim::Rng rng_;
    Database db_;
    std::string last_reply_;
};

// --- strings -------------------------------------------------------------

TEST_F(CommandEdgeTest, EmptyValueRoundTrips) {
    expect_reply({"SET", "k", ""}, "+OK\r\n");
    expect_reply({"GET", "k"}, "$0\r\n\r\n");
    expect_reply({"STRLEN", "k"}, ":0\r\n");
}

TEST_F(CommandEdgeTest, BinaryKeyAndValue) {
    const std::string key("k\0ey", 4);
    const std::string val("v\r\nal", 5);
    run({"SET", key, val});
    run({"GET", key});
    EXPECT_EQ(last_reply_, "$5\r\nv\r\nal\r\n");
}

TEST_F(CommandEdgeTest, IncrbyMinLongLongRejected) {
    run({"DECRBY", "k", "-9223372036854775808"});
    EXPECT_TRUE(errored()); // negation would overflow
}

TEST_F(CommandEdgeTest, DecrUnderflow) {
    run({"SET", "k", "-9223372036854775808"});
    run({"DECR", "k"});
    EXPECT_TRUE(errored());
}

TEST_F(CommandEdgeTest, IncrbyFloatOnNonFloat) {
    run({"SET", "k", "notanumber"});
    run({"INCRBYFLOAT", "k", "1"});
    EXPECT_TRUE(errored());
}

TEST_F(CommandEdgeTest, SetrangeNegativeOffset) {
    run({"SETRANGE", "k", "-1", "x"});
    EXPECT_TRUE(errored());
}

TEST_F(CommandEdgeTest, SetrangeEmptyPatchOnMissingKey) {
    expect_reply({"SETRANGE", "none", "5", ""}, ":0\r\n");
    EXPECT_FALSE(db_.exists("none"));
}

TEST_F(CommandEdgeTest, GetrangeOnIntEncoded) {
    run({"SET", "k", "12345"});
    expect_reply({"GETRANGE", "k", "1", "3"}, "$3\r\n234\r\n");
}

TEST_F(CommandEdgeTest, AppendKeepsTtl) {
    run({"SET", "k", "a", "PX", "900"});
    run({"APPEND", "k", "b"});
    EXPECT_TRUE(db_.expire_at("k").has_value());
}

// --- keys ------------------------------------------------------------------

TEST_F(CommandEdgeTest, RenameSelfExisting) {
    run({"SET", "k", "v"});
    expect_reply({"RENAME", "k", "k"}, "+OK\r\n");
    EXPECT_TRUE(db_.exists("k"));
}

TEST_F(CommandEdgeTest, RenamenxSelf) {
    run({"SET", "k", "v"});
    expect_reply({"RENAMENX", "k", "k"}, ":0\r\n");
}

TEST_F(CommandEdgeTest, RenameOverwritesTarget) {
    run({"SET", "a", "1"});
    run({"SET", "b", "2"});
    run({"RENAME", "a", "b"});
    run({"GET", "b"});
    EXPECT_EQ(last_reply_, "$1\r\n1\r\n");
    EXPECT_FALSE(db_.exists("a"));
}

TEST_F(CommandEdgeTest, ExpireNonIntSeconds) {
    run({"SET", "k", "v"});
    run({"EXPIRE", "k", "soon"});
    EXPECT_TRUE(errored());
}

TEST_F(CommandEdgeTest, PersistOnMissingAndNoTtl) {
    expect_reply({"PERSIST", "missing"}, ":0\r\n");
    run({"SET", "k", "v"});
    expect_reply({"PERSIST", "k"}, ":0\r\n");
}

TEST_F(CommandEdgeTest, KeysEscapedGlob) {
    run({"SET", "literal*", "v"});
    run({"SET", "literalX", "w"});
    expect_reply({"KEYS", "literal\\*"}, "*1\r\n$8\r\nliteral*\r\n");
}

TEST_F(CommandEdgeTest, KeysNegatedClass) {
    run({"SET", "a1", "v"});
    run({"SET", "a2", "v"});
    expect_reply({"KEYS", "a[^1]"}, "*1\r\n$2\r\na2\r\n");
}

TEST_F(CommandEdgeTest, ObjectUnknownSubcommand) {
    run({"OBJECT", "FREQ", "k"});
    EXPECT_TRUE(errored());
}

TEST_F(CommandEdgeTest, ObjectEncodingMissingKey) {
    expect_reply({"OBJECT", "ENCODING", "missing"}, "$-1\r\n");
}

// --- lists ------------------------------------------------------------------

TEST_F(CommandEdgeTest, LrangeSingleElementBounds) {
    run({"RPUSH", "l", "only"});
    expect_reply({"LRANGE", "l", "-1", "-1"}, "*1\r\n$4\r\nonly\r\n");
    expect_reply({"LRANGE", "l", "-100", "100"}, "*1\r\n$4\r\nonly\r\n");
}

TEST_F(CommandEdgeTest, LrangeInvertedRange) {
    run({"RPUSH", "l", "a", "b"});
    expect_reply({"LRANGE", "l", "1", "0"}, "*0\r\n");
}

TEST_F(CommandEdgeTest, LtrimNoop) {
    run({"RPUSH", "l", "a", "b", "c"});
    run({"LTRIM", "l", "0", "-1"});
    run({"LLEN", "l"});
    EXPECT_EQ(last_reply_, ":3\r\n");
}

TEST_F(CommandEdgeTest, LremZeroMatches) {
    run({"RPUSH", "l", "a"});
    expect_reply({"LREM", "l", "0", "zzz"}, ":0\r\n");
}

TEST_F(CommandEdgeTest, RpoplpushWrongDestType) {
    run({"RPUSH", "src", "x"});
    run({"SET", "dst", "str"});
    run({"RPOPLPUSH", "src", "dst"});
    EXPECT_EQ(last_reply_.rfind("-WRONGTYPE", 0), 0u);
    // Source untouched on type error.
    run({"LLEN", "src"});
    EXPECT_EQ(last_reply_, ":1\r\n");
}

// --- sets / hashes / zsets -----------------------------------------------------

TEST_F(CommandEdgeTest, SetEncodingUpgradePreservesMembers) {
    for (int i = 0; i < 40; ++i) run({"SADD", "s", std::to_string(i)});
    run({"SADD", "s", "word"}); // upgrade intset -> hashtable
    run({"SCARD", "s"});
    EXPECT_EQ(last_reply_, ":41\r\n");
    for (int i = 0; i < 40; i += 7) {
        run({"SISMEMBER", "s", std::to_string(i)});
        EXPECT_EQ(last_reply_, ":1\r\n") << i;
    }
}

TEST_F(CommandEdgeTest, SmoveSameSourceAndDest) {
    run({"SADD", "s", "m"});
    expect_reply({"SMOVE", "s", "s", "m"}, ":1\r\n");
    run({"SCARD", "s"});
    EXPECT_EQ(last_reply_, ":1\r\n");
}

TEST_F(CommandEdgeTest, SrandmemberDoesNotMutate) {
    run({"SADD", "s", "a", "b"});
    for (int i = 0; i < 10; ++i) run({"SRANDMEMBER", "s"});
    run({"SCARD", "s"});
    EXPECT_EQ(last_reply_, ":2\r\n");
}

TEST_F(CommandEdgeTest, HincrbyOverflow) {
    run({"HSET", "h", "f", "9223372036854775807"});
    run({"HINCRBY", "h", "f", "1"});
    EXPECT_TRUE(errored());
}

TEST_F(CommandEdgeTest, ZaddUpdatesReorder) {
    run({"ZADD", "z", "1", "a", "2", "b", "3", "c"});
    run({"ZADD", "z", "10", "a"}); // a moves to the end
    expect_reply({"ZRANGE", "z", "0", "-1"},
                 "*3\r\n$1\r\nb\r\n$1\r\nc\r\n$1\r\na\r\n");
    expect_reply({"ZRANK", "z", "a"}, ":2\r\n");
}

TEST_F(CommandEdgeTest, ZscoreFormatting) {
    run({"ZADD", "z", "2.5", "m"});
    expect_reply({"ZSCORE", "z", "m"}, "$3\r\n2.5\r\n");
    run({"ZADD", "z", "3", "n"});
    expect_reply({"ZSCORE", "z", "n"}, "$1\r\n3\r\n"); // integral: no ".0"
}

TEST_F(CommandEdgeTest, ZincrbyToNanRejected) {
    run({"ZADD", "z", "inf", "m"});
    run({"ZINCRBY", "z", "-inf", "m"});
    EXPECT_TRUE(errored());
    // Score unchanged.
    run({"ZSCORE", "z", "m"});
    EXPECT_EQ(last_reply_, "$3\r\ninf\r\n");
}

TEST_F(CommandEdgeTest, ZrangebyscoreExclusiveBothEnds) {
    run({"ZADD", "z", "1", "a", "2", "b", "3", "c"});
    expect_reply({"ZRANGEBYSCORE", "z", "(1", "(3"}, "*1\r\n$1\r\nb\r\n");
}

TEST_F(CommandEdgeTest, ZCountEmptyRange) {
    run({"ZADD", "z", "5", "m"});
    expect_reply({"ZCOUNT", "z", "10", "20"}, ":0\r\n");
    expect_reply({"ZCOUNT", "missing", "-inf", "+inf"}, ":0\r\n");
}

// --- lazy expiration through commands -------------------------------------------

TEST_F(CommandEdgeTest, ExpiredKeyInvisibleToTypeAndExists) {
    run({"SET", "k", "v"});
    run({"PEXPIRE", "k", "10"});
    now_ms_ += 11;
    expect_reply({"EXISTS", "k"}, ":0\r\n");
    expect_reply({"TYPE", "k"}, "+none\r\n");
    expect_reply({"TTL", "k"}, ":-2\r\n");
}

TEST_F(CommandEdgeTest, SetnxOnExpiredKeySucceeds) {
    run({"SET", "k", "old"});
    run({"PEXPIRE", "k", "10"});
    now_ms_ += 11;
    expect_reply({"SETNX", "k", "new"}, ":1\r\n");
    run({"GET", "k"});
    EXPECT_EQ(last_reply_, "$3\r\nnew\r\n");
}

} // namespace
} // namespace skv::kv
