#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "kv/intset.hpp"

namespace skv::kv {
namespace {

TEST(IntSet, StartsEmpty16Bit) {
    IntSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.encoding(), IntSet::Encoding::kInt16);
}

TEST(IntSet, InsertSortedUnique) {
    IntSet s;
    EXPECT_TRUE(s.insert(5));
    EXPECT_TRUE(s.insert(1));
    EXPECT_TRUE(s.insert(3));
    EXPECT_FALSE(s.insert(3));
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.at(0), 1);
    EXPECT_EQ(s.at(1), 3);
    EXPECT_EQ(s.at(2), 5);
}

TEST(IntSet, UpgradeTo32) {
    IntSet s;
    s.insert(100);
    EXPECT_EQ(s.encoding(), IntSet::Encoding::kInt16);
    s.insert(70'000);
    EXPECT_EQ(s.encoding(), IntSet::Encoding::kInt32);
    EXPECT_TRUE(s.contains(100));
    EXPECT_TRUE(s.contains(70'000));
    EXPECT_EQ(s.at(0), 100);
    EXPECT_EQ(s.at(1), 70'000);
}

TEST(IntSet, UpgradeTo64) {
    IntSet s;
    s.insert(1);
    s.insert(5'000'000'000LL);
    EXPECT_EQ(s.encoding(), IntSet::Encoding::kInt64);
    EXPECT_TRUE(s.contains(1));
    EXPECT_TRUE(s.contains(5'000'000'000LL));
}

TEST(IntSet, UpgradeWithNegativePrepends) {
    IntSet s;
    s.insert(10);
    s.insert(20);
    s.insert(-5'000'000'000LL); // wider and negative: sorts first
    EXPECT_EQ(s.at(0), -5'000'000'000LL);
    EXPECT_EQ(s.at(1), 10);
    EXPECT_EQ(s.at(2), 20);
}

TEST(IntSet, EraseKeepsOrder) {
    IntSet s;
    for (int i = 0; i < 10; ++i) s.insert(i);
    EXPECT_TRUE(s.erase(5));
    EXPECT_FALSE(s.erase(5));
    EXPECT_EQ(s.size(), 9u);
    EXPECT_EQ(s.at(5), 6);
}

TEST(IntSet, EraseValueOutsideEncoding) {
    IntSet s;
    s.insert(1);
    EXPECT_FALSE(s.erase(1'000'000)); // does not fit int16: cannot be present
    EXPECT_EQ(s.encoding(), IntSet::Encoding::kInt16);
}

TEST(IntSet, ContainsBoundaries) {
    IntSet s;
    s.insert(std::numeric_limits<std::int16_t>::min());
    s.insert(std::numeric_limits<std::int16_t>::max());
    EXPECT_TRUE(s.contains(std::numeric_limits<std::int16_t>::min()));
    EXPECT_TRUE(s.contains(std::numeric_limits<std::int16_t>::max()));
    EXPECT_EQ(s.encoding(), IntSet::Encoding::kInt16);
}

TEST(IntSet, RandomReturnsMembers) {
    IntSet s;
    for (int i = 0; i < 20; ++i) s.insert(i * 3);
    sim::Rng rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = s.random(rng);
        EXPECT_TRUE(s.contains(v));
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 20u);
}

class IntSetModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntSetModelTest, MatchesStdSet) {
    sim::Rng rng(GetParam());
    IntSet s;
    std::set<std::int64_t> model;
    for (int step = 0; step < 10'000; ++step) {
        // Mix of magnitudes to exercise encoding upgrades.
        std::int64_t v = 0;
        switch (rng.next_below(3)) {
            case 0: v = rng.next_range(-100, 100); break;
            case 1: v = rng.next_range(-100'000, 100'000); break;
            case 2: v = rng.next_range(-10'000'000'000LL, 10'000'000'000LL); break;
        }
        if (rng.next_bool(0.7)) {
            ASSERT_EQ(s.insert(v), model.insert(v).second);
        } else {
            ASSERT_EQ(s.erase(v), model.erase(v) > 0);
        }
        ASSERT_EQ(s.size(), model.size());
    }
    // Final: identical sorted contents.
    std::size_t i = 0;
    for (const auto v : model) {
        ASSERT_EQ(s.at(i), v);
        ++i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntSetModelTest,
                         ::testing::Values(11u, 222u, 3333u));

} // namespace
} // namespace skv::kv
