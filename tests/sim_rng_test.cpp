#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/rng.hpp"

namespace skv::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
    Rng r(7);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_LT(r.next_below(17), 17u);
    }
}

TEST(Rng, NextBelowOneIsZero) {
    Rng r(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusiveBounds) {
    Rng r(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 20'000; ++i) {
        const auto v = r.next_range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInHalfOpenUnit) {
    Rng r(11);
    for (int i = 0; i < 10'000; ++i) {
        const double v = r.next_double();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, NextBoolExtremes) {
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.next_bool(0.0));
        EXPECT_TRUE(r.next_bool(1.0));
    }
}

TEST(Rng, NextBoolRoughFrequency) {
    Rng r(17);
    int hits = 0;
    constexpr int kTrials = 100'000;
    for (int i = 0; i < kTrials; ++i) {
        if (r.next_bool(0.25)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.01);
}

TEST(Rng, ExponentialMean) {
    Rng r(19);
    double sum = 0;
    constexpr int kTrials = 200'000;
    for (int i = 0; i < kTrials; ++i) sum += r.next_exponential(5.0);
    EXPECT_NEAR(sum / kTrials, 5.0, 0.1);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
    Rng a(42);
    Rng b(42);
    Rng fa = a.fork();
    Rng fb = b.fork();
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(fa.next_u64(), fb.next_u64());
    }
    // The fork advanced the parent identically.
    ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformityChiSquaredish) {
    Rng r(23);
    std::vector<int> buckets(16, 0);
    constexpr int kTrials = 160'000;
    for (int i = 0; i < kTrials; ++i) {
        ++buckets[r.next_below(16)];
    }
    for (const int b : buckets) {
        EXPECT_NEAR(b, kTrials / 16, kTrials / 16 / 10); // within 10%
    }
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, InRangeAndSkewed) {
    const double theta = GetParam();
    constexpr std::uint64_t kN = 1000;
    ZipfianGenerator z(kN, theta);
    Rng r(29);
    std::vector<std::uint64_t> counts(kN, 0);
    constexpr int kTrials = 200'000;
    for (int i = 0; i < kTrials; ++i) {
        const auto v = z.next(r);
        ASSERT_LT(v, kN);
        ++counts[v];
    }
    // Rank 0 must be the most popular when skewed; roughly uniform at 0.
    if (theta > 0.5) {
        EXPECT_GT(counts[0], counts[kN / 2] * 5);
    }
    if (theta == 0.0) {
        EXPECT_NEAR(static_cast<double>(counts[0]),
                    static_cast<double>(kTrials) / kN,
                    static_cast<double>(kTrials) / kN); // loose
    }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfTest, ::testing::Values(0.0, 0.5, 0.99));

} // namespace
} // namespace skv::sim
