#include <gtest/gtest.h>

#include "net/tcp.hpp"

namespace skv::net {
namespace {

class TcpTest : public ::testing::Test {
protected:
    TcpTest()
        : sim(1), fabric(sim), tcp(sim, fabric, costs),
          core_a(sim, "a"), core_b(sim, "b") {
        ep_a = fabric.add_host("a");
        ep_b = fabric.add_host("b");
    }

    NodeRef a() { return {ep_a, &core_a}; }
    NodeRef b() { return {ep_b, &core_b}; }

    cpu::CostModel costs;
    sim::Simulation sim;
    Fabric fabric;
    TcpNetwork tcp;
    cpu::Core core_a;
    cpu::Core core_b;
    EndpointId ep_a = 0;
    EndpointId ep_b = 0;
};

TEST_F(TcpTest, ConnectAcceptDeliverBothWays) {
    ChannelPtr server;
    ChannelPtr client;
    tcp.listen(b(), 80, [&](ChannelPtr ch) { server = std::move(ch); });
    tcp.connect(a(), ep_b, 80, [&](ChannelPtr ch) { client = std::move(ch); });
    sim.run();
    ASSERT_TRUE(client);
    ASSERT_TRUE(server);

    std::string got_at_server;
    std::string got_at_client;
    server->set_on_message([&](std::string m) {
        got_at_server = std::move(m);
        server->send("pong");
    });
    client->set_on_message([&](std::string m) { got_at_client = std::move(m); });
    client->send("ping");
    sim.run();
    EXPECT_EQ(got_at_server, "ping");
    EXPECT_EQ(got_at_client, "pong");
}

TEST_F(TcpTest, ConnectionRefusedWithoutListener) {
    bool called = false;
    ChannelPtr client;
    tcp.connect(a(), ep_b, 81, [&](ChannelPtr ch) {
        called = true;
        client = std::move(ch);
    });
    sim.run();
    EXPECT_FALSE(called); // no SYN-ACK ever comes back
}

TEST_F(TcpTest, MessagesArriveInOrder) {
    ChannelPtr server;
    ChannelPtr client;
    tcp.listen(b(), 80, [&](ChannelPtr ch) { server = std::move(ch); });
    tcp.connect(a(), ep_b, 80, [&](ChannelPtr ch) { client = std::move(ch); });
    sim.run();
    std::vector<std::string> got;
    server->set_on_message([&](std::string m) { got.push_back(std::move(m)); });
    for (int i = 0; i < 20; ++i) client->send("m" + std::to_string(i));
    sim.run();
    ASSERT_EQ(got.size(), 20u);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], "m" + std::to_string(i));
}

TEST_F(TcpTest, KernelCostsChargedToCores) {
    ChannelPtr server;
    ChannelPtr client;
    tcp.listen(b(), 80, [&](ChannelPtr ch) { server = std::move(ch); });
    tcp.connect(a(), ep_b, 80, [&](ChannelPtr ch) { client = std::move(ch); });
    sim.run();
    server->set_on_message([](std::string) {});
    const auto busy_a = core_a.total_busy().ns();
    const auto busy_b = core_b.total_busy().ns();
    client->send(std::string(10'000, 'x'));
    sim.run();
    // Sender pays syscall + copy; receiver pays the same on read().
    EXPECT_GT(core_a.total_busy().ns(), busy_a + 2'000);
    EXPECT_GT(core_b.total_busy().ns(), busy_b + 2'000);
}

TEST_F(TcpTest, TcpSlowerThanRawFabric) {
    ChannelPtr server;
    ChannelPtr client;
    tcp.listen(b(), 80, [&](ChannelPtr ch) { server = std::move(ch); });
    tcp.connect(a(), ep_b, 80, [&](ChannelPtr ch) { client = std::move(ch); });
    sim.run();
    sim::SimTime sent;
    sim::SimTime got;
    server->set_on_message([&](std::string) { got = sim.now(); });
    sent = sim.now();
    client->send("x");
    sim.run();
    // Kernel path: several microseconds, far above the ~0.8us raw fabric.
    EXPECT_GT((got - sent).ns(), 4'000);
}

TEST_F(TcpTest, BufferedDeliveryBeforeHandlerInstalled) {
    ChannelPtr server;
    ChannelPtr client;
    tcp.listen(b(), 80, [&](ChannelPtr ch) { server = std::move(ch); });
    tcp.connect(a(), ep_b, 80, [&](ChannelPtr ch) { client = std::move(ch); });
    sim.run();
    client->send("early");
    sim.run(); // message arrives with no handler installed
    std::string got;
    server->set_on_message([&](std::string m) { got = std::move(m); });
    EXPECT_EQ(got, "early");
}

TEST_F(TcpTest, CloseStopsTraffic) {
    ChannelPtr server;
    ChannelPtr client;
    tcp.listen(b(), 80, [&](ChannelPtr ch) { server = std::move(ch); });
    tcp.connect(a(), ep_b, 80, [&](ChannelPtr ch) { client = std::move(ch); });
    sim.run();
    int received = 0;
    server->set_on_message([&](std::string) { ++received; });
    client->close();
    EXPECT_FALSE(client->open());
    client->send("dropped");
    sim.run();
    EXPECT_EQ(received, 0);
    EXPECT_FALSE(server->open()); // FIN arrived
}

TEST_F(TcpTest, StopListening) {
    tcp.listen(b(), 80, [](ChannelPtr) { FAIL() << "should not accept"; });
    tcp.stop_listening(ep_b, 80);
    bool connected = false;
    tcp.connect(a(), ep_b, 80, [&](ChannelPtr) { connected = true; });
    sim.run();
    EXPECT_FALSE(connected);
}

} // namespace
} // namespace skv::net
