#include <gtest/gtest.h>

#include "kv/resp.hpp"
#include "skv/cluster.hpp"

namespace skv::offload {
namespace {

std::unique_ptr<Cluster> make_skv(int slaves, std::uint64_t seed = 9,
                                  NicKvConfig nic_cfg = {}) {
    ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = slaves;
    cfg.offload = true;
    cfg.nic_cfg = nic_cfg;
    auto c = std::make_unique<Cluster>(cfg);
    c->start();
    return c;
}

void drive_writes(Cluster& c, int n) {
    auto node = c.add_client_host("driver");
    net::ChannelPtr ch;
    c.connect_client(node, [&](net::ChannelPtr x) { ch = std::move(x); });
    c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    ASSERT_TRUE(ch);
    ch->set_on_message([](std::string) {});
    for (int i = 0; i < n; ++i) {
        ch->send(kv::resp::command({"SET", "k" + std::to_string(i), "v"}));
    }
    c.sim().run_until(c.sim().now() + sim::milliseconds(100));
}

TEST(NicKv, NodeListPopulatedOnStart) {
    auto c = make_skv(3);
    auto* nic = c->nic_kv();
    ASSERT_NE(nic, nullptr);
    EXPECT_EQ(nic->nodes().size(), 4u); // 1 master + 3 slaves
    EXPECT_TRUE(nic->master_known());
    EXPECT_TRUE(nic->master_valid());
    EXPECT_EQ(nic->slave_count(), 3u);
    EXPECT_EQ(nic->valid_slaves(), 3);
}

TEST(NicKv, NodeListChargesOnBoardMemory) {
    auto c = make_skv(3);
    EXPECT_GT(c->smartnic()->memory_used(), 0u);
    EXPECT_LT(c->smartnic()->memory_used(), c->smartnic()->memory_capacity());
}

TEST(NicKv, SteeringRuleInstalledForNicPort) {
    auto c = make_skv(1);
    EXPECT_EQ(c->smartnic()->steering(c->nic_kv()->config().port),
              nic::SteerTarget::kNicCores);
    // Ordinary KV traffic still goes to the host.
    EXPECT_EQ(c->smartnic()->steering(6379), nic::SteerTarget::kHost);
}

TEST(NicKv, FanOutForwardsEveryWriteToEverySlave) {
    auto c = make_skv(3);
    drive_writes(*c, 50);
    auto& stats = c->nic_kv()->stats();
    EXPECT_EQ(stats.counter("repl_requests"), 50u);
    EXPECT_EQ(stats.counter("fanout_sends"), 150u);
    EXPECT_TRUE(c->converged());
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(c->master().db().equals(c->slave(i).db()));
    }
}

TEST(NicKv, MasterPostsOneRequestPerWrite) {
    auto c = make_skv(3);
    drive_writes(*c, 50);
    // The SKV master's saving: 50 offload requests, zero per-slave sends.
    EXPECT_EQ(c->master().stats().counter("repl_offload_requests"), 50u);
    EXPECT_EQ(c->master().stats().counter("repl_sends"), 0u);
}

TEST(NicKv, ProbesFlowAndNodesStayValid) {
    auto c = make_skv(2);
    c->sim().run_until(c->sim().now() + sim::seconds(5));
    auto& stats = c->nic_kv()->stats();
    EXPECT_GE(stats.counter("probes_sent"), 12u); // ~5 rounds x 3 nodes
    EXPECT_EQ(stats.counter("failures_detected"), 0u);
    EXPECT_EQ(c->nic_kv()->valid_slaves(), 2);
}

TEST(NicKv, DetectsSlaveFailureWithinWaitingTime) {
    auto c = make_skv(3);
    c->sim().run_until(c->sim().now() + sim::seconds(2));
    c->slave(1).crash();
    const auto t_crash = c->sim().now();
    // Detection bound: probe_interval + waiting_time + one probe cycle.
    c->sim().run_until(t_crash + sim::milliseconds(3600));
    EXPECT_EQ(c->nic_kv()->valid_slaves(), 2);
    EXPECT_EQ(c->nic_kv()->stats().counter("failures_detected"), 1u);
    // The master learned the new availability.
    EXPECT_EQ(c->master().available_slaves(), 2);
}

TEST(NicKv, InvalidSlaveSkippedInFanOut) {
    auto c = make_skv(2);
    c->slave(0).crash();
    c->sim().run_until(c->sim().now() + sim::seconds(4));
    const auto before = c->nic_kv()->stats().counter("fanout_sends");
    drive_writes(*c, 10);
    const auto delta =
        c->nic_kv()->stats().counter("fanout_sends") - before;
    EXPECT_EQ(delta, 10u); // one live slave only
}

TEST(NicKv, MinSlavesGatesWritesAfterFailures) {
    ClusterConfig cfg;
    cfg.n_slaves = 2;
    cfg.offload = true;
    cfg.server_tmpl.min_slaves = 2;
    Cluster c(cfg);
    c.start();

    auto node = c.add_client_host("w");
    net::ChannelPtr ch;
    c.connect_client(node, [&](net::ChannelPtr x) { ch = std::move(x); });
    c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    std::string replies;
    ch->set_on_message([&](std::string m) { replies += m; });

    ch->send(kv::resp::command({"SET", "ok", "1"}));
    c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    EXPECT_NE(replies.find("+OK"), std::string::npos);

    c.slave(0).crash();
    c.sim().run_until(c.sim().now() + sim::seconds(4)); // detect
    replies.clear();
    ch->send(kv::resp::command({"SET", "blocked", "1"}));
    c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    EXPECT_NE(replies.find("-NOREPLICAS"), std::string::npos);
    EXPECT_FALSE(c.master().db().exists("blocked"));
}

TEST(NicKv, MasterFailoverPromotesSlaveAndDemotesOnRecovery) {
    auto c = make_skv(2);
    c->sim().run_until(c->sim().now() + sim::seconds(2));
    c->master().crash();
    c->sim().run_until(c->sim().now() + sim::seconds(4));
    EXPECT_FALSE(c->nic_kv()->master_valid());
    EXPECT_EQ(c->nic_kv()->stats().counter("failovers"), 1u);
    // One of the slaves was promoted.
    int masters = 0;
    for (int i = 0; i < 2; ++i) {
        if (c->slave(i).role() == server::Role::kMaster) ++masters;
    }
    EXPECT_EQ(masters, 1);

    // The original master returns: it resumes mastership, the stand-in is
    // demoted (paper §III-D).
    c->master().recover();
    c->sim().run_until(c->sim().now() + sim::seconds(4));
    EXPECT_TRUE(c->nic_kv()->master_valid());
    masters = 0;
    for (int i = 0; i < 2; ++i) {
        if (c->slave(i).role() == server::Role::kMaster) ++masters;
    }
    EXPECT_EQ(masters, 0);
    EXPECT_EQ(c->master().role(), server::Role::kMaster);
}

TEST(NicKv, ThreadClampFollowsPaperRule) {
    NicKvConfig nic_cfg;
    nic_cfg.thread_num = 16;
    auto c = make_skv(3, 9, nic_cfg);
    // min(16 requested, 8 cores, 3 slaves) = 3.
    EXPECT_EQ(c->nic_kv()->effective_threads(), 3);

    NicKvConfig one;
    one.thread_num = 1;
    auto c1 = make_skv(3, 10, one);
    EXPECT_EQ(c1->nic_kv()->effective_threads(), 1);
}

TEST(NicKv, MultiThreadedFanOutStillConverges) {
    NicKvConfig nic_cfg;
    nic_cfg.thread_num = 4;
    auto c = make_skv(3, 11, nic_cfg);
    drive_writes(*c, 100);
    EXPECT_TRUE(c->converged());
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(c->master().db().equals(c->slave(i).db()));
    }
    // Fan-out work actually spread: at least one non-zero secondary core.
    bool spread = false;
    for (int i = 1; i < c->smartnic()->core_count(); ++i) {
        if (c->smartnic()->core(i).tasks_executed() > 0) spread = true;
    }
    EXPECT_TRUE(spread);
}

TEST(NicKv, RecoveredSlaveGetsResyncedThroughNic) {
    auto c = make_skv(2);
    drive_writes(*c, 30);
    c->slave(0).crash();
    c->sim().run_until(c->sim().now() + sim::seconds(4));
    drive_writes(*c, 30); // stream moves on while the slave is dead
    c->slave(0).recover();
    c->sim().run_until(c->sim().now() + sim::seconds(4));
    EXPECT_EQ(c->slave(0).slave_applied_offset(), c->master().master_offset());
    EXPECT_TRUE(c->master().db().equals(c->slave(0).db()));
    EXPECT_GE(c->nic_kv()->stats().counter("slave_reregistered"), 1u);
}

} // namespace
} // namespace skv::offload
