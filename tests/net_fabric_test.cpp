#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "net/fabric.hpp"

namespace skv::net {
namespace {

class FabricTest : public ::testing::Test {
protected:
    sim::Simulation sim{1};
    Fabric fabric{sim};
};

TEST_F(FabricTest, HostToHostLatency) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    sim::SimTime arrived;
    fabric.send(a, b, 64, [&] { arrived = sim.now(); });
    sim.run();
    // 2 x 250ns propagation + 300ns switch + 64B serialization x2 at
    // 0.08ns/B ~= 810ns.
    EXPECT_GT(arrived.ns(), 700);
    EXPECT_LT(arrived.ns(), 1'000);
}

TEST_F(FabricTest, LargerPayloadTakesLonger) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    sim::SimTime small;
    sim::SimTime large;
    fabric.send(a, b, 64, [&] { small = sim.now(); });
    sim.run();
    Fabric f2(sim);
    const auto c = f2.add_host("c");
    const auto d = f2.add_host("d");
    f2.send(c, d, 64 * 1024, [&] { large = sim.now(); });
    const auto t0 = sim.now();
    sim.run();
    EXPECT_GT((large - t0).ns(), small.ns() + 5'000); // ~10us serialization
}

TEST_F(FabricTest, BackToBackSerializationQueues) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    std::vector<std::int64_t> arrivals;
    for (int i = 0; i < 3; ++i) {
        fabric.send(a, b, 100'000, [&] { arrivals.push_back(sim.now().ns()); });
    }
    sim.run();
    ASSERT_EQ(arrivals.size(), 3u);
    const auto gap1 = arrivals[1] - arrivals[0];
    const auto gap2 = arrivals[2] - arrivals[1];
    // Each 100KB message needs ~8us on the wire: arrivals are spaced.
    EXPECT_GT(gap1, 7'000);
    EXPECT_NEAR(static_cast<double>(gap1), static_cast<double>(gap2),
                static_cast<double>(gap1) * 0.1);
}

TEST_F(FabricTest, CompanionSharesHostPort) {
    const auto host = fabric.add_host("h");
    const auto nic = fabric.add_companion(host, "h/bf2");
    const auto other = fabric.add_host("o");
    EXPECT_TRUE(fabric.is_companion(nic));
    EXPECT_FALSE(fabric.is_companion(host));
    EXPECT_TRUE(fabric.same_port(host, nic));
    EXPECT_FALSE(fabric.same_port(host, other));
}

TEST_F(FabricTest, InternalPathFasterThanExternal) {
    const auto host = fabric.add_host("h");
    const auto nic = fabric.add_companion(host, "h/bf2");
    const auto other = fabric.add_host("o");
    const auto t_int = fabric.send(host, nic, 64, nullptr);
    // Reset timing effects with fresh sim time: both computed from now=0.
    const auto t_ext = fabric.send(host, other, 64, nullptr);
    EXPECT_LT(t_int.ns(), t_ext.ns());
}

TEST_F(FabricTest, RemoteToNicSlowerThanRemoteToHost) {
    const auto host = fabric.add_host("h");
    [[maybe_unused]] const auto nic = fabric.add_companion(host, "h/bf2");
    const auto remote = fabric.add_host("r");
    const auto to_host = fabric.send(remote, host, 64, nullptr);
    Fabric f2(sim);
    const auto h2 = f2.add_host("h");
    const auto n2 = f2.add_companion(h2, "h/bf2");
    const auto r2 = f2.add_host("r");
    const auto to_nic = f2.send(r2, n2, 64, nullptr);
    EXPECT_GT(to_nic.ns(), to_host.ns()); // extra steering + NIC stack
}

TEST_F(FabricTest, SeveredEndpointDropsDeliveries) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    fabric.sever(b);
    bool delivered = false;
    fabric.send(a, b, 64, [&] { delivered = true; });
    sim.run();
    EXPECT_FALSE(delivered);
    fabric.restore(b);
    fabric.send(a, b, 64, [&] { delivered = true; });
    sim.run();
    EXPECT_TRUE(delivered);
}

TEST_F(FabricTest, SeveredSenderAlsoDrops) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    fabric.sever(a);
    bool delivered = false;
    fabric.send(a, b, 64, [&] { delivered = true; });
    sim.run();
    EXPECT_FALSE(delivered);
}

TEST_F(FabricTest, CountersAdvance) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    fabric.send(a, b, 100, nullptr);
    fabric.send(b, a, 50, nullptr);
    EXPECT_EQ(fabric.messages_sent(), 2u);
    EXPECT_EQ(fabric.bytes_sent(), 150u);
    EXPECT_EQ(fabric.name_of(a), "a");
}

TEST_F(FabricTest, CompanionTrafficContendsWithHostEgress) {
    // Host and its NIC share the physical port: NIC-originated sends delay
    // subsequent host sends (the Fig. 12 contention effect).
    const auto host = fabric.add_host("h");
    [[maybe_unused]] const auto nic = fabric.add_companion(host, "h/bf2");
    const auto other = fabric.add_host("o");
    // Saturate the port from the NIC side.
    for (int i = 0; i < 10; ++i) fabric.send(nic, other, 100'000, nullptr);
    sim::SimTime host_arrival;
    fabric.send(host, other, 64, [&] { host_arrival = sim.now(); });
    sim.run();
    EXPECT_GT(host_arrival.ns(), 70'000); // queued behind ~80us of NIC bytes
}

TEST_F(FabricTest, InFlightMessagesDieOnSever) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    bool delivered = false;
    fabric.send(a, b, 100'000, [&] { delivered = true; }); // ~8us in flight
    // Sever and restore while the message is on the wire: a link flap must
    // kill everything in transit, even though the endpoint is healthy again
    // by the time the delivery event fires.
    sim.after(sim::microseconds(2), [&] { fabric.sever(b); });
    sim.after(sim::microseconds(4), [&] { fabric.restore(b); });
    sim.run();
    EXPECT_FALSE(delivered);
    EXPECT_EQ(fabric.dropped_in_flight(), 1u);
    // The restored link carries fresh traffic normally.
    fabric.send(a, b, 64, [&] { delivered = true; });
    sim.run();
    EXPECT_TRUE(delivered);
}

TEST_F(FabricTest, RapidFlapCyclesDoNotLeakReservations) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    sim::SimTime fresh;
    fabric.send(a, b, 64, [&] { fresh = sim.now(); });
    sim.run();
    const auto baseline = fresh.ns();
    // Hammer the link with sever/restore cycles, every message caught
    // mid-flight and killed. Once the port has drained its (legitimate)
    // serialization backlog, latency must be back to baseline: flaps leave
    // no residual transmitter state behind.
    int delivered_mid = 0;
    for (int i = 0; i < 50; ++i) {
        fabric.send(a, b, 100'000, [&] { ++delivered_mid; });
        fabric.sever(b);
        fabric.restore(b);
    }
    sim.run();
    EXPECT_EQ(delivered_mid, 0);
    EXPECT_EQ(fabric.dropped_in_flight(), 50u);
    const auto t0 = sim.now();
    sim::SimTime after_flaps;
    fabric.send(a, b, 64, [&] { after_flaps = sim.now(); });
    sim.run();
    EXPECT_EQ((after_flaps - t0).ns(), baseline);
}

TEST_F(FabricTest, FaultInjectorDropsEverythingAtProbabilityOne) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    FaultSpec spec;
    spec.drop_prob = 1.0;
    fabric.faults().set_pair(a, b, spec);
    int delivered = 0;
    for (int i = 0; i < 20; ++i) fabric.send(a, b, 64, [&] { ++delivered; });
    // The reverse direction is untouched.
    fabric.send(b, a, 64, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(fabric.faults().stats().counter("drops"), 20u);
}

TEST_F(FabricTest, FaultInjectorDuplicatesDeliverTwice) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    FaultSpec spec;
    spec.dup_prob = 1.0;
    fabric.faults().set_pair(a, b, spec);
    int delivered = 0;
    fabric.send(a, b, 64, [&] { ++delivered; });
    sim.run();
    EXPECT_EQ(delivered, 2);
    EXPECT_EQ(fabric.faults().stats().counter("dups"), 1u);
}

TEST_F(FabricTest, FaultInjectorJitterKeepsLinkFifo) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    FaultSpec spec;
    spec.jitter_prob = 0.5;
    spec.jitter_mean = sim::microseconds(20);
    fabric.faults().set_pair(a, b, spec);
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
        fabric.send(a, b, 64, [&order, i] { order.push_back(i); });
    }
    sim.run();
    ASSERT_EQ(order.size(), 50u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    EXPECT_GT(fabric.faults().stats().counter("delays"), 0u);
}

TEST_F(FabricTest, FaultInjectorBlockedEndpointIsAsymmetricWhenPaired) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    FaultSpec cut;
    cut.blocked = true;
    fabric.faults().set_pair(a, b, cut); // one-way: a -> b dead, b -> a fine
    int forward = 0;
    int backward = 0;
    fabric.send(a, b, 64, [&] { ++forward; });
    fabric.send(b, a, 64, [&] { ++backward; });
    sim.run();
    EXPECT_EQ(forward, 0);
    EXPECT_EQ(backward, 1);
    EXPECT_EQ(fabric.faults().stats().counter("partition_drops"), 1u);

    fabric.faults().clear_pair(a, b);
    fabric.send(a, b, 64, [&] { ++forward; });
    sim.run();
    EXPECT_EQ(forward, 1);
}

TEST_F(FabricTest, FaultInjectorIsSeedDeterministic) {
    auto run_once = [] {
        sim::Simulation s{99};
        Fabric f{s};
        const auto a = f.add_host("a");
        const auto b = f.add_host("b");
        FaultSpec spec;
        spec.drop_prob = 0.3;
        spec.dup_prob = 0.1;
        spec.jitter_prob = 0.4;
        spec.jitter_mean = sim::microseconds(5);
        f.faults().set_pair(a, b, spec);
        std::vector<std::int64_t> arrivals;
        for (int i = 0; i < 100; ++i) {
            f.send(a, b, 64, [&] { arrivals.push_back(s.now().ns()); });
        }
        s.run();
        return std::make_pair(arrivals, f.faults().stats().format());
    };
    const auto first = run_once();
    const auto second = run_once();
    EXPECT_EQ(first.first, second.first);
    EXPECT_EQ(first.second, second.second);
}

} // namespace
} // namespace skv::net
