#include <gtest/gtest.h>

#include "net/fabric.hpp"

namespace skv::net {
namespace {

class FabricTest : public ::testing::Test {
protected:
    sim::Simulation sim{1};
    Fabric fabric{sim};
};

TEST_F(FabricTest, HostToHostLatency) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    sim::SimTime arrived;
    fabric.send(a, b, 64, [&] { arrived = sim.now(); });
    sim.run();
    // 2 x 250ns propagation + 300ns switch + 64B serialization x2 at
    // 0.08ns/B ~= 810ns.
    EXPECT_GT(arrived.ns(), 700);
    EXPECT_LT(arrived.ns(), 1'000);
}

TEST_F(FabricTest, LargerPayloadTakesLonger) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    sim::SimTime small;
    sim::SimTime large;
    fabric.send(a, b, 64, [&] { small = sim.now(); });
    sim.run();
    Fabric f2(sim);
    const auto c = f2.add_host("c");
    const auto d = f2.add_host("d");
    f2.send(c, d, 64 * 1024, [&] { large = sim.now(); });
    const auto t0 = sim.now();
    sim.run();
    EXPECT_GT((large - t0).ns(), small.ns() + 5'000); // ~10us serialization
}

TEST_F(FabricTest, BackToBackSerializationQueues) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    std::vector<std::int64_t> arrivals;
    for (int i = 0; i < 3; ++i) {
        fabric.send(a, b, 100'000, [&] { arrivals.push_back(sim.now().ns()); });
    }
    sim.run();
    ASSERT_EQ(arrivals.size(), 3u);
    const auto gap1 = arrivals[1] - arrivals[0];
    const auto gap2 = arrivals[2] - arrivals[1];
    // Each 100KB message needs ~8us on the wire: arrivals are spaced.
    EXPECT_GT(gap1, 7'000);
    EXPECT_NEAR(static_cast<double>(gap1), static_cast<double>(gap2),
                static_cast<double>(gap1) * 0.1);
}

TEST_F(FabricTest, CompanionSharesHostPort) {
    const auto host = fabric.add_host("h");
    const auto nic = fabric.add_companion(host, "h/bf2");
    const auto other = fabric.add_host("o");
    EXPECT_TRUE(fabric.is_companion(nic));
    EXPECT_FALSE(fabric.is_companion(host));
    EXPECT_TRUE(fabric.same_port(host, nic));
    EXPECT_FALSE(fabric.same_port(host, other));
}

TEST_F(FabricTest, InternalPathFasterThanExternal) {
    const auto host = fabric.add_host("h");
    const auto nic = fabric.add_companion(host, "h/bf2");
    const auto other = fabric.add_host("o");
    const auto t_int = fabric.send(host, nic, 64, nullptr);
    // Reset timing effects with fresh sim time: both computed from now=0.
    const auto t_ext = fabric.send(host, other, 64, nullptr);
    EXPECT_LT(t_int.ns(), t_ext.ns());
}

TEST_F(FabricTest, RemoteToNicSlowerThanRemoteToHost) {
    const auto host = fabric.add_host("h");
    [[maybe_unused]] const auto nic = fabric.add_companion(host, "h/bf2");
    const auto remote = fabric.add_host("r");
    const auto to_host = fabric.send(remote, host, 64, nullptr);
    Fabric f2(sim);
    const auto h2 = f2.add_host("h");
    const auto n2 = f2.add_companion(h2, "h/bf2");
    const auto r2 = f2.add_host("r");
    const auto to_nic = f2.send(r2, n2, 64, nullptr);
    EXPECT_GT(to_nic.ns(), to_host.ns()); // extra steering + NIC stack
}

TEST_F(FabricTest, SeveredEndpointDropsDeliveries) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    fabric.sever(b);
    bool delivered = false;
    fabric.send(a, b, 64, [&] { delivered = true; });
    sim.run();
    EXPECT_FALSE(delivered);
    fabric.restore(b);
    fabric.send(a, b, 64, [&] { delivered = true; });
    sim.run();
    EXPECT_TRUE(delivered);
}

TEST_F(FabricTest, SeveredSenderAlsoDrops) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    fabric.sever(a);
    bool delivered = false;
    fabric.send(a, b, 64, [&] { delivered = true; });
    sim.run();
    EXPECT_FALSE(delivered);
}

TEST_F(FabricTest, CountersAdvance) {
    const auto a = fabric.add_host("a");
    const auto b = fabric.add_host("b");
    fabric.send(a, b, 100, nullptr);
    fabric.send(b, a, 50, nullptr);
    EXPECT_EQ(fabric.messages_sent(), 2u);
    EXPECT_EQ(fabric.bytes_sent(), 150u);
    EXPECT_EQ(fabric.name_of(a), "a");
}

TEST_F(FabricTest, CompanionTrafficContendsWithHostEgress) {
    // Host and its NIC share the physical port: NIC-originated sends delay
    // subsequent host sends (the Fig. 12 contention effect).
    const auto host = fabric.add_host("h");
    [[maybe_unused]] const auto nic = fabric.add_companion(host, "h/bf2");
    const auto other = fabric.add_host("o");
    // Saturate the port from the NIC side.
    for (int i = 0; i < 10; ++i) fabric.send(nic, other, 100'000, nullptr);
    sim::SimTime host_arrival;
    fabric.send(host, other, 64, [&] { host_arrival = sim.now(); });
    sim.run();
    EXPECT_GT(host_arrival.ns(), 70'000); // queued behind ~80us of NIC bytes
}

} // namespace
} // namespace skv::net
