#include <gtest/gtest.h>

#include "kv/object.hpp"

namespace skv::kv {
namespace {

TEST(ObjectString, IntEncodingForNumbers) {
    auto o = Object::make_string("12345");
    EXPECT_EQ(o->type(), ObjType::kString);
    EXPECT_EQ(o->encoding(), ObjEncoding::kInt);
    EXPECT_EQ(o->string_value(), "12345");
    EXPECT_EQ(*o->int_value(), 12345);
}

TEST(ObjectString, RawEncodingForText) {
    auto o = Object::make_string("hello");
    EXPECT_EQ(o->encoding(), ObjEncoding::kRaw);
    EXPECT_FALSE(o->int_value().has_value());
    EXPECT_EQ(o->string_len(), 5u);
}

TEST(ObjectString, LeadingZeroNotIntEncoded) {
    auto o = Object::make_string("007");
    EXPECT_EQ(o->encoding(), ObjEncoding::kRaw);
    EXPECT_EQ(o->string_value(), "007");
}

TEST(ObjectString, AppendForcesRaw) {
    auto o = Object::make_string("12");
    EXPECT_EQ(o->encoding(), ObjEncoding::kInt);
    EXPECT_EQ(o->string_append("ab"), 4u);
    EXPECT_EQ(o->encoding(), ObjEncoding::kRaw);
    EXPECT_EQ(o->string_value(), "12ab");
}

TEST(ObjectString, SetSwitchesEncoding) {
    auto o = Object::make_string("abc");
    o->string_set("42");
    EXPECT_EQ(o->encoding(), ObjEncoding::kInt);
    o->string_set("xyz");
    EXPECT_EQ(o->encoding(), ObjEncoding::kRaw);
}

TEST(ObjectSet, IntsetUntilNonInteger) {
    auto o = Object::make_set();
    EXPECT_TRUE(o->set_add("1"));
    EXPECT_TRUE(o->set_add("2"));
    EXPECT_EQ(o->encoding(), ObjEncoding::kIntSet);
    EXPECT_TRUE(o->set_add("banana"));
    EXPECT_EQ(o->encoding(), ObjEncoding::kHashTable);
    EXPECT_TRUE(o->set_contains("1"));
    EXPECT_TRUE(o->set_contains("banana"));
    EXPECT_EQ(o->set_size(), 3u);
}

TEST(ObjectSet, IntsetUpgradeOnSize) {
    auto o = Object::make_set();
    for (std::size_t i = 0; i <= Object::kSetMaxIntsetEntries; ++i) {
        o->set_add(ll2string(static_cast<long long>(i)));
    }
    EXPECT_EQ(o->encoding(), ObjEncoding::kHashTable);
    EXPECT_EQ(o->set_size(), Object::kSetMaxIntsetEntries + 1);
    EXPECT_TRUE(o->set_contains("0"));
}

TEST(ObjectSet, RemoveAndPop) {
    auto o = Object::make_set();
    o->set_add("1");
    o->set_add("2");
    EXPECT_TRUE(o->set_remove("1"));
    EXPECT_FALSE(o->set_remove("1"));
    sim::Rng rng(1);
    const auto popped = o->set_pop(rng);
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(*popped, "2");
    EXPECT_EQ(o->set_size(), 0u);
    EXPECT_FALSE(o->set_pop(rng).has_value());
}

TEST(ObjectSet, MembersMatchInsertions) {
    auto o = Object::make_set();
    o->set_add("x");
    o->set_add("y");
    auto members = o->set_members();
    std::sort(members.begin(), members.end());
    EXPECT_EQ(members, (std::vector<std::string>{"x", "y"}));
}

TEST(ObjectZSet, AddScoreRank) {
    auto o = Object::make_zset();
    EXPECT_TRUE(o->zadd(2.0, "b"));
    EXPECT_TRUE(o->zadd(1.0, "a"));
    EXPECT_FALSE(o->zadd(3.0, "a")); // update, not add
    EXPECT_EQ(o->zcard(), 2u);
    EXPECT_DOUBLE_EQ(*o->zscore("a"), 3.0);
    EXPECT_EQ(*o->zrank("b"), 0u);
    EXPECT_EQ(*o->zrank("a"), 1u);
    EXPECT_FALSE(o->zrank("zzz").has_value());
}

TEST(ObjectZSet, Remove) {
    auto o = Object::make_zset();
    o->zadd(1.0, "a");
    EXPECT_TRUE(o->zrem("a"));
    EXPECT_FALSE(o->zrem("a"));
    EXPECT_EQ(o->zcard(), 0u);
    EXPECT_FALSE(o->zscore("a").has_value());
}

TEST(ObjectEquals, Strings) {
    EXPECT_TRUE(Object::make_string("42")->equals(*Object::make_string("42")));
    EXPECT_FALSE(Object::make_string("a")->equals(*Object::make_string("b")));
    EXPECT_FALSE(Object::make_string("a")->equals(*Object::make_list()));
}

TEST(ObjectEquals, IntVsRawSameValue) {
    // "42" int-encoded equals "42" appended into raw form.
    auto raw = Object::make_string("4");
    raw->string_append("2");
    EXPECT_TRUE(Object::make_string("42")->equals(*raw));
}

TEST(ObjectEquals, Lists) {
    auto a = Object::make_list();
    auto b = Object::make_list();
    a->list().push_back(Sds("x"));
    b->list().push_back(Sds("x"));
    EXPECT_TRUE(a->equals(*b));
    b->list().push_back(Sds("y"));
    EXPECT_FALSE(a->equals(*b));
}

TEST(ObjectEquals, SetsAcrossEncodings) {
    auto a = Object::make_set();
    auto b = Object::make_set();
    a->set_add("1");
    a->set_add("2");
    b->set_add("2");
    b->set_add("1");
    b->set_add("pad"); // force hashtable
    b->set_remove("pad");
    EXPECT_TRUE(a->equals(*b));
    EXPECT_NE(a->encoding(), b->encoding());
}

TEST(ObjectEquals, HashesAndZsets) {
    auto h1 = Object::make_hash();
    auto h2 = Object::make_hash();
    h1->hash().set(Sds("f"), Sds("v"));
    h2->hash().set(Sds("f"), Sds("v"));
    EXPECT_TRUE(h1->equals(*h2));
    h2->hash().set(Sds("f"), Sds("w"));
    EXPECT_FALSE(h1->equals(*h2));

    auto z1 = Object::make_zset();
    auto z2 = Object::make_zset();
    z1->zadd(1.5, "m");
    z2->zadd(1.5, "m");
    EXPECT_TRUE(z1->equals(*z2));
    z2->zadd(2.5, "m");
    EXPECT_FALSE(z1->equals(*z2));
}

TEST(ObjectMemory, GrowsWithContent) {
    auto small = Object::make_string("a");
    auto big = Object::make_string(std::string(10'000, 'b'));
    EXPECT_GT(big->memory_bytes(), small->memory_bytes());
    auto lst = Object::make_list();
    const auto empty = lst->memory_bytes();
    for (int i = 0; i < 100; ++i) lst->list().push_back(Sds("element"));
    EXPECT_GT(lst->memory_bytes(), empty);
}

} // namespace
} // namespace skv::kv
