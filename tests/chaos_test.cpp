#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "kv/resp.hpp"
#include "net/fault.hpp"
#include "obs/export.hpp"
#include "skv/cluster.hpp"

namespace skv::offload {
namespace {

// A closed-loop SET client over the (clean) client link: the next SET goes
// out only after the previous reply arrived, so "acknowledged" is exact —
// key i was acked iff reply i started with '+'.
class SetDriver {
public:
    SetDriver(Cluster& c, std::string prefix)
        : cluster_(c), prefix_(std::move(prefix)) {
        auto node = c.add_client_host("driver-" + prefix_);
        c.connect_client(node, [this](net::ChannelPtr ch) {
            ch_ = std::move(ch);
        });
        c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    }

    /// Run `n` SETs to completion (bounded by `deadline` of simulated time).
    void run(int n, sim::Duration deadline = sim::seconds(30)) {
        if (!ch_) return;
        total_ = n;
        sent_ = 0;
        ch_->set_on_message([this](std::string reply) {
            if (!reply.empty() && reply[0] == '+') {
                acked_.push_back(current_key_);
            } else {
                ++rejected_;
            }
            send_next();
        });
        const auto stop_at = cluster_.sim().now() + deadline;
        send_next();
        while (sent_ <= total_ && cluster_.sim().now() < stop_at && !done_) {
            if (cluster_.sim().run_until(cluster_.sim().now() +
                                         sim::milliseconds(50)) == 0 &&
                cluster_.sim().events_pending() == 0) {
                break;
            }
        }
    }

    [[nodiscard]] const std::vector<std::string>& acked() const { return acked_; }
    [[nodiscard]] int rejected() const { return rejected_; }
    [[nodiscard]] bool connected() const { return ch_ != nullptr; }

private:
    void send_next() {
        if (sent_ >= total_) {
            done_ = true;
            return;
        }
        current_key_ = prefix_ + std::to_string(sent_++);
        ch_->send(kv::resp::command({"SET", current_key_, "v"}));
    }

    Cluster& cluster_;
    std::string prefix_;
    net::ChannelPtr ch_;
    std::string current_key_;
    std::vector<std::string> acked_;
    int total_ = 0;
    int sent_ = 0;
    int rejected_ = 0;
    bool done_ = false;
};

/// Determinism-audit hook: when a chaos test fails, print the run's seed and
/// the rolling trace digest (see sim::Trace::note), and dump the run's
/// chrome trace to chaos_trace_<seed>.json (CI uploads it as a workflow
/// artifact). A failing scenario can then be bisected by rerunning the seed
/// and diffing digests at intermediate sim times to find the first
/// divergent event — or simply read span-by-span in chrome://tracing.
class DigestReporter {
public:
    explicit DigestReporter(Cluster& c) : cluster_(c) {}
    ~DigestReporter() {
        if (::testing::Test::HasFailure()) {
            std::fprintf(stderr,
                         "[chaos-audit] seed=0x%016llx trace_digest=0x%016llx "
                         "events=%llu noted=%llu\n",
                         static_cast<unsigned long long>(cluster_.sim().seed()),
                         static_cast<unsigned long long>(
                             cluster_.sim().trace_digest()),
                         static_cast<unsigned long long>(
                             cluster_.sim().events_executed()),
                         static_cast<unsigned long long>(
                             cluster_.sim().trace().total_noted()));
            char path[64];
            std::snprintf(path, sizeof(path), "chaos_trace_%016llx.json",
                          static_cast<unsigned long long>(cluster_.sim().seed()));
            if (obs::write_chrome_trace(cluster_.tracer(), path)) {
                std::fprintf(stderr, "[chaos-audit] chrome trace written to %s\n",
                             path);
            }
        }
    }

    DigestReporter(const DigestReporter&) = delete;
    DigestReporter& operator=(const DigestReporter&) = delete;

private:
    Cluster& cluster_;
};

std::unique_ptr<Cluster> make_skv(int slaves, std::uint64_t seed,
                                  int min_slaves = 0) {
    ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = slaves;
    cfg.offload = true;
    cfg.server_tmpl.min_slaves = min_slaves;
    auto c = std::make_unique<Cluster>(cfg);
    // Chaos runs with span collection on: the determinism fingerprints
    // below double as a standing check that tracing never perturbs the
    // event stream, and a failing seed leaves a chrome trace behind.
    c->tracer().set_enabled(true);
    c->start();
    return c;
}

/// Attach `spec` to every replication link: NIC <-> slave (fan-out, probes)
/// and master <-> slave (direct sync channels, acks). The client link and
/// the master <-> NIC PCIe path stay clean.
void fault_repl_links(Cluster& c, const net::FaultSpec& spec) {
    auto& faults = c.fabric().faults();
    const auto nic_ep = c.nic_kv()->endpoint();
    const auto master_ep = c.master().node().ep;
    for (int i = 0; i < c.slave_count(); ++i) {
        const auto slave_ep = c.slave(i).node().ep;
        faults.set_link(nic_ep, slave_ep, spec);
        faults.set_link(master_ep, slave_ep, spec);
    }
}

void expect_acked_everywhere(Cluster& c, const std::vector<std::string>& keys) {
    for (int i = 0; i < c.slave_count(); ++i) {
        for (const auto& k : keys) {
            EXPECT_TRUE(c.slave(i).db().exists(k))
                << "slave" << i << " lost acknowledged key " << k;
        }
    }
}

TEST(Chaos, DropLossConvergesAcrossSeeds) {
    for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
        auto c = make_skv(3, seed);
        DigestReporter audit(*c);
        net::FaultSpec loss;
        loss.drop_prob = 0.01;
        fault_repl_links(*c, loss);

        SetDriver driver(*c, "k");
        ASSERT_TRUE(driver.connected()) << "seed " << seed;
        driver.run(200);
        EXPECT_EQ(driver.acked().size(), 200u) << "seed " << seed;

        // Drain with the faults still active: retransmission must finish
        // the job on its own.
        c->sim().run_until(c->sim().now() + sim::seconds(10));
        EXPECT_TRUE(c->converged()) << "seed " << seed;
        expect_acked_everywhere(*c, driver.acked());
        // Loss really was injected, and nobody was declared dead over it.
        EXPECT_GT(c->fabric().faults().stats().counter("drops"), 0u);
        EXPECT_EQ(c->nic_kv()->stats().counter("failures_detected"), 0u)
            << "seed " << seed;
    }
}

TEST(Chaos, DeterministicUnderChaos) {
    auto run_once = [](std::uint64_t seed) {
        auto c = make_skv(3, seed);
        DigestReporter audit(*c);
        net::FaultSpec mess;
        mess.drop_prob = 0.02;
        mess.dup_prob = 0.02;
        mess.jitter_prob = 0.2;
        mess.jitter_mean = sim::microseconds(200);
        fault_repl_links(*c, mess);
        SetDriver driver(*c, "d");
        driver.run(100);
        c->sim().run_until(c->sim().now() + sim::seconds(5));
        std::string fingerprint;
        fingerprint += std::to_string(c->sim().events_executed()) + "|";
        fingerprint += std::to_string(c->sim().trace_digest()) + "|";
        fingerprint += std::to_string(c->master().master_offset()) + "|";
        fingerprint += std::to_string(driver.acked().size()) + "|";
        fingerprint += c->fabric().faults().stats().format() + "|";
        fingerprint += c->nic_kv()->stats().format() + "|";
        fingerprint += c->master().stats().format();
        return fingerprint;
    };
    // Same seed: bit-identical trace and counters. Different seed: different
    // fault pattern (sanity that the fingerprint is actually sensitive).
    EXPECT_EQ(run_once(7), run_once(7));
    EXPECT_NE(run_once(7), run_once(8));
}

TEST(Chaos, DuplicationAndJitterAreHarmless) {
    auto c = make_skv(3, 101);
    DigestReporter audit(*c);
    net::FaultSpec mess;
    mess.dup_prob = 0.05;
    mess.jitter_prob = 0.3;
    mess.jitter_mean = sim::microseconds(500);
    fault_repl_links(*c, mess);

    SetDriver driver(*c, "j");
    driver.run(150);
    EXPECT_EQ(driver.acked().size(), 150u);
    c->sim().run_until(c->sim().now() + sim::seconds(10));

    EXPECT_GT(c->fabric().faults().stats().counter("dups"), 0u);
    EXPECT_GT(c->fabric().faults().stats().counter("delays"), 0u);
    EXPECT_TRUE(c->converged());
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(c->master().db().equals(c->slave(i).db()));
    }
}

TEST(Chaos, NoFalseFailoverUnderJitterBelowWaitingTime) {
    auto c = make_skv(3, 202);
    DigestReporter audit(*c);
    // Aggressive jitter, but far below waiting-time (1500ms): the detector
    // must not fire (paper §III-D correctness under slow links).
    net::FaultSpec jitter;
    jitter.jitter_prob = 0.8;
    jitter.jitter_mean = sim::milliseconds(50);
    fault_repl_links(*c, jitter);

    SetDriver driver(*c, "n");
    driver.run(100);
    c->sim().run_until(c->sim().now() + sim::seconds(12));

    EXPECT_EQ(c->nic_kv()->stats().counter("failures_detected"), 0u);
    EXPECT_EQ(c->nic_kv()->stats().counter("failovers"), 0u);
    EXPECT_EQ(c->nic_kv()->valid_slaves(), 3);
    EXPECT_TRUE(c->converged());
}

TEST(Chaos, AsymmetricPartitionDetectedAndHealed) {
    auto c = make_skv(2, 303);
    DigestReporter audit(*c);
    c->sim().run_until(c->sim().now() + sim::seconds(2));

    // One-directional cut: the NIC can no longer reach slave0 (probes and
    // fan-out die), but slave0 -> NIC still works. RDMA raises no error;
    // only the failure detector can catch this.
    auto& faults = c->fabric().faults();
    const auto nic_ep = c->nic_kv()->endpoint();
    const auto master_ep = c->master().node().ep;
    const auto s0 = c->slave(0).node().ep;
    net::FaultSpec cut;
    cut.blocked = true;
    faults.set_pair(nic_ep, s0, cut);
    faults.set_pair(master_ep, s0, cut);

    c->sim().run_until(c->sim().now() + sim::seconds(4));
    EXPECT_EQ(c->nic_kv()->valid_slaves(), 1);
    EXPECT_GE(c->nic_kv()->stats().counter("failures_detected"), 1u);
    EXPECT_GT(c->fabric().faults().stats().counter("partition_drops"), 0u);

    // Writes continue against the surviving replica set.
    SetDriver driver(*c, "p");
    driver.run(50);
    EXPECT_EQ(driver.acked().size(), 50u);

    // Heal: the cut slave re-registers on probe silence and is resynced via
    // the backlog partial-resync path.
    faults.clear_pair(nic_ep, s0);
    faults.clear_pair(master_ep, s0);
    c->sim().run_until(c->sim().now() + sim::seconds(12));
    EXPECT_EQ(c->nic_kv()->valid_slaves(), 2);
    EXPECT_GE(c->slave(0).stats().counter("reregistrations"), 1u);
    EXPECT_TRUE(c->converged());
    expect_acked_everywhere(*c, driver.acked());
}

TEST(Chaos, MinSlavesGatingUnderPartitionAndRecovery) {
    auto c = make_skv(3, 404, /*min_slaves=*/3);
    DigestReporter audit(*c);
    c->sim().run_until(c->sim().now() + sim::seconds(2));

    SetDriver before(*c, "a");
    before.run(20);
    EXPECT_EQ(before.acked().size(), 20u);

    // Fully partition one slave; once detected, the write gate closes.
    auto& faults = c->fabric().faults();
    const auto s2 = c->slave(2).node().ep;
    net::FaultSpec cut;
    cut.blocked = true;
    faults.set_endpoint(s2, cut);
    c->sim().run_until(c->sim().now() + sim::seconds(4));
    EXPECT_EQ(c->master().available_slaves(), 2);

    SetDriver gated(*c, "g");
    gated.run(10);
    EXPECT_EQ(gated.acked().size(), 0u);
    EXPECT_EQ(gated.rejected(), 10);
    EXPECT_GE(c->master().stats().counter("writes_rejected_min_slaves"), 10u);

    // Heal; the slave re-registers, the gate reopens, writes flow again.
    faults.clear_endpoint(s2);
    c->sim().run_until(c->sim().now() + sim::seconds(12));
    EXPECT_EQ(c->master().available_slaves(), 3);
    SetDriver after(*c, "z");
    after.run(10);
    EXPECT_EQ(after.acked().size(), 10u);
    c->sim().run_until(c->sim().now() + sim::seconds(5));
    EXPECT_TRUE(c->converged());
}

TEST(Chaos, LinkFlapsLoseNoAcknowledgedWrites) {
    auto c = make_skv(3, 505);
    DigestReporter audit(*c);
    // 150ms outage every second on the replication links: well under
    // waiting-time, so the detector must hold steady while the reliable
    // layer rides through the flaps.
    net::FaultSpec flap;
    flap.flap_period = sim::seconds(1);
    flap.flap_down = sim::milliseconds(150);
    flap.flap_phase = sim::milliseconds(250);
    fault_repl_links(*c, flap);

    SetDriver driver(*c, "f");
    driver.run(200, sim::seconds(60));
    EXPECT_EQ(driver.acked().size(), 200u);

    c->sim().run_until(c->sim().now() + sim::seconds(10));
    EXPECT_GT(c->fabric().faults().stats().counter("flap_drops"), 0u);
    EXPECT_EQ(c->nic_kv()->stats().counter("failovers"), 0u);
    EXPECT_TRUE(c->converged());
    expect_acked_everywhere(*c, driver.acked());
}

TEST(Chaos, MasterCrashFailoverStillWorksUnderLoss) {
    auto c = make_skv(2, 606);
    DigestReporter audit(*c);
    net::FaultSpec loss;
    loss.drop_prob = 0.01;
    fault_repl_links(*c, loss);

    SetDriver driver(*c, "m");
    driver.run(50);
    c->sim().run_until(c->sim().now() + sim::seconds(5));
    ASSERT_TRUE(c->converged());

    // A real crash under background loss: detect, promote a stand-in.
    c->master().crash();
    c->sim().run_until(c->sim().now() + sim::seconds(5));
    EXPECT_FALSE(c->nic_kv()->master_valid());
    EXPECT_EQ(c->nic_kv()->stats().counter("failovers"), 1u);
    int masters = 0;
    for (int i = 0; i < 2; ++i) {
        if (c->slave(i).role() == server::Role::kMaster) ++masters;
    }
    EXPECT_EQ(masters, 1);

    // Master recovery: it re-attaches and the stand-in is demoted, still
    // under loss. Acked pre-crash writes survived on the replicas.
    c->master().recover();
    c->sim().run_until(c->sim().now() + sim::seconds(8));
    EXPECT_TRUE(c->nic_kv()->master_valid());
    masters = 0;
    for (int i = 0; i < 2; ++i) {
        if (c->slave(i).role() == server::Role::kMaster) ++masters;
    }
    EXPECT_EQ(masters, 0);
    expect_acked_everywhere(*c, driver.acked());
}

} // namespace
} // namespace skv::offload
