#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/simulation.hpp"

namespace skv::obs {
namespace {

TEST(ObsRegistry, HandleAndStringApiShareCells) {
    Registry r("node");
    Counter c = r.counter_handle("ops");
    c.incr();
    c.incr(4);
    EXPECT_EQ(r.counter("ops"), 5u);
    r.incr("ops", 2);
    EXPECT_EQ(c.value(), 7u);
    // Re-resolving the same name yields the same cell.
    Counter again = r.counter_handle("ops");
    again.incr();
    EXPECT_EQ(c.value(), 8u);
}

TEST(ObsRegistry, DefaultHandlesAreInert) {
    Counter c;
    Gauge g;
    Timer t;
    c.incr();
    g.set(7);
    t.record_ns(100);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(t.histogram(), nullptr);
    EXPECT_FALSE(static_cast<bool>(c));
}

TEST(ObsRegistry, GaugeHandle) {
    Registry r;
    Gauge g = r.gauge_handle("depth");
    g.set(10);
    g.add(-3);
    EXPECT_EQ(r.gauge("depth"), 7);
    r.set_gauge("depth", 2);
    EXPECT_EQ(g.value(), 2);
}

TEST(ObsRegistry, FormatMatchesStatsRegistryLayout) {
    // Byte-compatibility contract: "k=v\n", counters sorted first, gauges
    // sorted after, timers excluded (the chaos fingerprint folds this in).
    Registry r("scope-ignored-by-format");
    r.incr("b", 2);
    r.incr("a");
    r.set_gauge("z", -1);
    r.timer_handle("t").record_ns(5);
    EXPECT_EQ(r.format(), "a=1\nb=2\nz=-1\n");
}

TEST(ObsRegistry, MissingNamesReadZero) {
    Registry r;
    EXPECT_EQ(r.counter("nope"), 0u);
    EXPECT_EQ(r.gauge("nope"), 0);
    // Reads must not create cells.
    EXPECT_EQ(r.format(), "");
}

TEST(ObsRegistry, ClearZeroesCellsButKeepsHandles) {
    Registry r;
    Counter c = r.counter_handle("x");
    Timer t = r.timer_handle("lat");
    c.incr(9);
    t.record_ns(1000);
    r.clear();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(t.histogram()->count(), 0u);
    c.incr();
    EXPECT_EQ(r.counter("x"), 1u);
}

TEST(ObsSnapshot, DeltaSubtractsCountersAndTimerSums) {
    Registry r;
    Counter c = r.counter_handle("ops");
    Timer t = r.timer_handle("lat");
    c.incr(10);
    t.record_ns(1000);
    const Snapshot before = r.snapshot();
    c.incr(5);
    t.record_ns(3000);
    r.set_gauge("depth", 42);
    const Snapshot after = r.snapshot();
    const Snapshot d = after.delta_since(before);
    EXPECT_EQ(d.counters.at("ops"), 5u);
    EXPECT_EQ(d.timers.at("lat").count, 1u);
    EXPECT_DOUBLE_EQ(d.timers.at("lat").sum_ns, 3000.0);
    EXPECT_EQ(d.gauges.at("depth"), 42);
}

TEST(ObsExport, JsonWriterProducesStableDocument) {
    JsonWriter w;
    w.begin_object()
        .kv("name", std::string_view("fig"))
        .kv("kops", 12.3456)
        .key("points")
        .begin_array()
        .value(1)
        .value(std::int64_t{-2})
        .end_array()
        .kv("ok", std::uint64_t{7})
        .end_object();
    EXPECT_EQ(w.str(),
              R"({"name":"fig","kops":12.346,"points":[1,-2],"ok":7})");
}

TEST(ObsExport, JsonEscapesControlCharacters) {
    JsonWriter w;
    w.begin_object().kv("s", std::string_view("a\"b\\c\nd")).end_object();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(ObsExport, RegistryTextIsSortedAndScoped) {
    Registry r("nodeA");
    r.incr("zz");
    r.incr("aa", 3);
    r.set_gauge("g", 5);
    const std::string text = registry_text(r);
    const auto aa = text.find("nodeA.aa=3");
    const auto zz = text.find("nodeA.zz=1");
    const auto g = text.find("nodeA.g=5");
    EXPECT_NE(aa, std::string::npos);
    EXPECT_NE(zz, std::string::npos);
    EXPECT_NE(g, std::string::npos);
    EXPECT_LT(aa, zz);
}

TEST(ObsExport, RegistryJsonIsDeterministic) {
    Registry r("n");
    r.incr("c", 2);
    r.timer_handle("t").record_ns(1500);
    const std::string a = registry_json(r);
    const std::string b = registry_json(r);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"scope\":\"n\""), std::string::npos);
    EXPECT_NE(a.find("\"c\":2"), std::string::npos);
}

TEST(ObsTracer, SpanIdsAreSeedDeterministic) {
    const auto collect = [](std::uint64_t seed) {
        sim::Simulation sim(seed);
        Tracer t(sim);
        t.set_enabled(true);
        const std::uint32_t track = t.track("client/0");
        t.complete(track, Stage::kFabricTransfer, sim.now(), sim.now());
        t.complete(track, Stage::kCqWakeup, sim.now(), sim.now());
        std::vector<std::uint64_t> ids;
        for (const auto& s : t.spans()) ids.push_back(s.id);
        return ids;
    };
    EXPECT_EQ(collect(7), collect(7));
    EXPECT_NE(collect(7), collect(8));
}

TEST(ObsTracer, DisabledTracerRecordsNothing) {
    sim::Simulation sim(1);
    Tracer t(sim);
    const std::uint32_t track = t.track("x");
    t.complete(track, Stage::kCqWakeup, sim.now(), sim.now());
    t.flow_issue(1, track);
    t.flow_server_recv(1, track);
    t.flow_server_done(1);
    t.flow_complete(1);
    EXPECT_TRUE(t.spans().empty());
    EXPECT_EQ(t.stage_accum(Stage::kClientE2e).count, 0u);
}

TEST(ObsTracer, FlowStagesTileEndToEnd) {
    sim::Simulation sim(1);
    Tracer t(sim);
    t.set_enabled(true);
    const std::uint32_t client = t.track("client/0");
    const std::uint32_t server = t.track("server/master");
    const std::uint64_t flow = 42;

    t.flow_issue(flow, client);
    sim.after(sim::microseconds(3), [] {});
    sim.run_until(sim.now() + sim::microseconds(3));
    t.flow_server_recv(flow, server);
    sim.run_until(sim.now() + sim::microseconds(5));
    t.flow_server_done(flow);
    sim.run_until(sim.now() + sim::microseconds(2));
    t.flow_complete(flow);

    EXPECT_EQ(t.stage_accum(Stage::kClientE2e).count, 1u);
    EXPECT_EQ(t.stage_accum(Stage::kRdmaWrite).sum_ns, 3000);
    EXPECT_EQ(t.stage_accum(Stage::kMasterApply).sum_ns, 5000);
    EXPECT_EQ(t.stage_accum(Stage::kReply).sum_ns, 2000);
    // The critical-path stages tile the end-to-end latency exactly.
    EXPECT_EQ(t.stage_accum(Stage::kClientE2e).sum_ns,
              t.stage_accum(Stage::kRdmaWrite).sum_ns +
                  t.stage_accum(Stage::kMasterApply).sum_ns +
                  t.stage_accum(Stage::kReply).sum_ns);
    // 4 spans: e2e + 3 component stages.
    EXPECT_EQ(t.spans().size(), 4u);
}

TEST(ObsTracer, UnstampedFlowsAreIgnored) {
    sim::Simulation sim(1);
    Tracer t(sim);
    t.set_enabled(true);
    const std::uint32_t server = t.track("server/master");
    // Server stamps for a flow the client never issued (e.g. a raw shell
    // connection) must not accumulate anything or leak state.
    t.flow_server_recv(99, server);
    t.flow_server_done(99);
    t.flow_complete(99);
    EXPECT_EQ(t.stage_accum(Stage::kClientE2e).count, 0u);
    EXPECT_TRUE(t.spans().empty());
}

TEST(ObsTracer, ReplicationStagesCorrelateByOffset) {
    sim::Simulation sim(3);
    Tracer t(sim);
    t.set_enabled(true);
    const std::uint32_t master = t.track("server/master");
    const std::uint32_t nic = t.track("nic/nic-kv");
    const std::uint32_t slave = t.track("server/slave0");

    t.repl_propagate(0, 30, master);
    sim.run_until(sim.now() + sim::microseconds(4));
    t.repl_fanout(0, nic);
    sim.run_until(sim.now() + sim::microseconds(6));
    t.repl_slave_apply(0, slave);
    sim.run_until(sim.now() + sim::microseconds(10));
    t.repl_ack(30); // cumulative ack covering the entry

    EXPECT_EQ(t.stage_accum(Stage::kOffloadRequest).sum_ns, 4000);
    EXPECT_EQ(t.stage_accum(Stage::kNicFanout).sum_ns, 6000);
    EXPECT_EQ(t.stage_accum(Stage::kSlaveAck).sum_ns, 20000);
    EXPECT_EQ(t.stage_accum(Stage::kSlaveAck).count, 1u);
    // A later cumulative ack with no matching entry is a no-op.
    t.repl_ack(500);
    EXPECT_EQ(t.stage_accum(Stage::kSlaveAck).count, 1u);
}

TEST(ObsTracer, ChromeTraceExportIsByteDeterministic) {
    const auto render = [](std::uint64_t seed) {
        sim::Simulation sim(seed);
        Tracer t(sim);
        t.set_enabled(true);
        const std::uint32_t a = t.track("client/0");
        const std::uint32_t b = t.track("server/master");
        t.flow_issue(1, a);
        sim.run_until(sim.now() + sim::microseconds(2));
        t.flow_server_recv(1, b);
        sim.run_until(sim.now() + sim::microseconds(2));
        t.flow_server_done(1);
        sim.run_until(sim.now() + sim::microseconds(1));
        t.flow_complete(1);
        return chrome_trace_json(t);
    };
    const std::string a = render(11);
    EXPECT_EQ(a, render(11));
    EXPECT_NE(a, render(12));
    EXPECT_NE(a.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(a.find("thread_name"), std::string::npos);
    EXPECT_NE(a.find("client_e2e"), std::string::npos);
}

TEST(ObsTracer, ClearKeepsTracks) {
    sim::Simulation sim(1);
    Tracer t(sim);
    t.set_enabled(true);
    const std::uint32_t track = t.track("x");
    t.complete(track, Stage::kCqWakeup, sim.now(), sim.now());
    t.clear();
    EXPECT_TRUE(t.spans().empty());
    EXPECT_EQ(t.stage_accum(Stage::kCqWakeup).count, 0u);
    EXPECT_EQ(t.track("x"), track);
}

TEST(ObsTracer, StageNamesAreSnakeCase) {
    EXPECT_STREQ(stage_name(Stage::kClientE2e), "client_e2e");
    EXPECT_STREQ(stage_name(Stage::kRdmaWrite), "rdma_write");
    EXPECT_STREQ(stage_name(Stage::kNicFanout), "nic_fanout");
    EXPECT_STREQ(stage_name(Stage::kSlaveAck), "slave_ack");
}

} // namespace
} // namespace skv::obs
