#include <gtest/gtest.h>

#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace skv::sim {
namespace {

TEST(Trace, RecordsInOrder) {
    Trace t;
    t.emit(SimTime(1), "a", "one");
    t.emit(SimTime(2), "b", "two");
    ASSERT_EQ(t.records().size(), 2u);
    EXPECT_EQ(t.records()[0].message, "one");
    EXPECT_EQ(t.records()[1].component, "b");
}

TEST(Trace, CapacityBoundsRetention) {
    Trace t(4);
    for (int i = 0; i < 10; ++i) {
        t.emit(SimTime(i), "c", std::to_string(i));
    }
    EXPECT_EQ(t.records().size(), 4u);
    EXPECT_EQ(t.records().front().message, "6");
    EXPECT_EQ(t.total_emitted(), 10u);
}

TEST(Trace, DigestIsOrderSensitive) {
    Trace a;
    Trace b;
    a.emit(SimTime(1), "x", "m1");
    a.emit(SimTime(2), "x", "m2");
    b.emit(SimTime(2), "x", "m2");
    b.emit(SimTime(1), "x", "m1");
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Trace, DigestDeterministic) {
    Trace a;
    Trace b;
    for (int i = 0; i < 100; ++i) {
        a.emit(SimTime(i), "c", "msg" + std::to_string(i));
        b.emit(SimTime(i), "c", "msg" + std::to_string(i));
    }
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(Trace, DisabledEmitsNothing) {
    Trace t;
    t.set_enabled(false);
    t.emit(SimTime(1), "a", "hidden");
    EXPECT_EQ(t.total_emitted(), 0u);
    EXPECT_TRUE(t.records().empty());
}

TEST(Trace, FormatLines) {
    Trace t;
    t.emit(SimTime(1000), "net", "hello");
    const auto lines = t.format();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("[net]"), std::string::npos);
    EXPECT_NE(lines[0].find("hello"), std::string::npos);
}

TEST(Trace, ClearResetsDigest) {
    Trace t;
    const auto d0 = t.digest();
    t.emit(SimTime(1), "a", "x");
    EXPECT_NE(t.digest(), d0);
    t.clear();
    EXPECT_EQ(t.digest(), d0);
}

TEST(Stats, CountersAccumulate) {
    StatsRegistry s;
    s.incr("ops");
    s.incr("ops", 4);
    EXPECT_EQ(s.counter("ops"), 5u);
    EXPECT_EQ(s.counter("missing"), 0u);
}

TEST(Stats, Gauges) {
    StatsRegistry s;
    s.set_gauge("depth", 7);
    s.set_gauge("depth", 3);
    EXPECT_EQ(s.gauge("depth"), 3);
    EXPECT_EQ(s.gauge("missing"), 0);
}

TEST(Stats, FormatSortedDeterministic) {
    StatsRegistry s;
    s.incr("zeta");
    s.incr("alpha", 2);
    const auto text = s.format();
    EXPECT_LT(text.find("alpha=2"), text.find("zeta=1"));
}

TEST(Stats, ClearEmpties) {
    StatsRegistry s;
    s.incr("x");
    s.clear();
    EXPECT_EQ(s.counter("x"), 0u);
    EXPECT_TRUE(s.counters().empty());
}

} // namespace
} // namespace skv::sim
