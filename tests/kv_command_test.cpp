#include <gtest/gtest.h>

#include "kv/command.hpp"

namespace skv::kv {
namespace {

/// Conformance fixture: executes commands against a fresh database with a
/// controllable clock and exposes the raw RESP replies.
class CommandTest : public ::testing::Test {
protected:
    CommandTest() : rng_(99), db_([this] { return now_ms_; }) {}

    ExecResult run(std::vector<std::string> argv, std::string* reply = nullptr) {
        std::string out;
        auto res = CommandTable::instance().execute(db_, rng_, argv, out);
        if (reply) *reply = out;
        last_reply_ = out;
        return res;
    }

    void expect_reply(std::vector<std::string> argv, std::string_view want) {
        run(std::move(argv));
        EXPECT_EQ(last_reply_, want);
    }

    std::int64_t now_ms_ = 1000;
    sim::Rng rng_;
    Database db_;
    std::string last_reply_;
};

// --- dispatch ----------------------------------------------------------------

TEST_F(CommandTest, UnknownCommand) {
    const auto res = run({"FROB", "x"});
    EXPECT_EQ(res.status, ExecResult::Status::kUnknownCommand);
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, ArityErrors) {
    EXPECT_EQ(run({"GET"}).status, ExecResult::Status::kArityError);
    EXPECT_EQ(run({"GET", "a", "b"}).status, ExecResult::Status::kArityError);
    EXPECT_EQ(run({"SET", "k"}).status, ExecResult::Status::kArityError);
}

TEST_F(CommandTest, CaseInsensitiveLookup) {
    expect_reply({"set", "k", "v"}, "+OK\r\n");
    expect_reply({"GeT", "k"}, "$1\r\nv\r\n");
}

TEST_F(CommandTest, TableHasAllFamilies) {
    const auto& t = CommandTable::instance();
    EXPECT_GE(t.size(), 70u);
    for (const char* name :
         {"GET", "SET", "DEL", "LPUSH", "SADD", "HSET", "ZADD", "PING"}) {
        EXPECT_NE(t.lookup(name), nullptr) << name;
    }
}

// --- strings ------------------------------------------------------------------

TEST_F(CommandTest, SetGet) {
    expect_reply({"SET", "k", "v"}, "+OK\r\n");
    expect_reply({"GET", "k"}, "$1\r\nv\r\n");
    expect_reply({"GET", "missing"}, "$-1\r\n");
}

TEST_F(CommandTest, SetNxXx) {
    expect_reply({"SET", "k", "v1", "NX"}, "+OK\r\n");
    expect_reply({"SET", "k", "v2", "NX"}, "$-1\r\n"); // already exists
    expect_reply({"GET", "k"}, "$2\r\nv1\r\n");
    expect_reply({"SET", "k2", "x", "XX"}, "$-1\r\n"); // does not exist
    expect_reply({"SET", "k", "v3", "XX"}, "+OK\r\n");
    expect_reply({"GET", "k"}, "$2\r\nv3\r\n");
}

TEST_F(CommandTest, SetNxXxConflict) {
    run({"SET", "k", "v", "NX", "XX"});
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, SetWithExpiry) {
    run({"SET", "k", "v", "PX", "500"});
    EXPECT_EQ(*db_.expire_at("k"), 1500);
    run({"SET", "k2", "v", "EX", "2"});
    EXPECT_EQ(*db_.expire_at("k2"), 3000);
}

TEST_F(CommandTest, SetExpiryRewrittenAbsolute) {
    const auto res = run({"SET", "k", "v", "PX", "500"});
    ASSERT_FALSE(res.repl_argv.empty());
    EXPECT_EQ(res.repl_argv[0], "SETPXAT");
    EXPECT_EQ(res.repl_argv[3], "1500");
}

TEST_F(CommandTest, SetKeepTtl) {
    run({"SET", "k", "v", "PX", "500"});
    run({"SET", "k", "v2", "KEEPTTL"});
    EXPECT_EQ(*db_.expire_at("k"), 1500);
    run({"SET", "k", "v3"});
    EXPECT_FALSE(db_.expire_at("k").has_value());
}

TEST_F(CommandTest, SetInvalidExpire) {
    run({"SET", "k", "v", "PX", "0"});
    EXPECT_EQ(last_reply_.front(), '-');
    run({"SET", "k", "v", "EX", "abc"});
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, SetnxSetexPsetex) {
    expect_reply({"SETNX", "k", "a"}, ":1\r\n");
    expect_reply({"SETNX", "k", "b"}, ":0\r\n");
    run({"SETEX", "e", "5", "v"});
    EXPECT_EQ(*db_.expire_at("e"), 6000);
    run({"PSETEX", "p", "250", "v"});
    EXPECT_EQ(*db_.expire_at("p"), 1250);
    run({"SETEX", "bad", "-1", "v"});
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, GetSet) {
    expect_reply({"GETSET", "k", "new"}, "$-1\r\n");
    expect_reply({"GETSET", "k", "newer"}, "$3\r\nnew\r\n");
}

TEST_F(CommandTest, AppendStrlen) {
    expect_reply({"APPEND", "k", "ab"}, ":2\r\n");
    expect_reply({"APPEND", "k", "cd"}, ":4\r\n");
    expect_reply({"GET", "k"}, "$4\r\nabcd\r\n");
    expect_reply({"STRLEN", "k"}, ":4\r\n");
    expect_reply({"STRLEN", "missing"}, ":0\r\n");
}

TEST_F(CommandTest, IncrDecrFamily) {
    expect_reply({"INCR", "n"}, ":1\r\n");
    expect_reply({"INCR", "n"}, ":2\r\n");
    expect_reply({"DECR", "n"}, ":1\r\n");
    expect_reply({"INCRBY", "n", "10"}, ":11\r\n");
    expect_reply({"DECRBY", "n", "5"}, ":6\r\n");
}

TEST_F(CommandTest, IncrNonNumericFails) {
    run({"SET", "k", "abc"});
    run({"INCR", "k"});
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, IncrOverflow) {
    run({"SET", "k", "9223372036854775807"});
    run({"INCR", "k"});
    EXPECT_EQ(last_reply_.front(), '-');
    expect_reply({"GET", "k"}, "$19\r\n9223372036854775807\r\n");
}

TEST_F(CommandTest, IncrByFloatReplicatesResult) {
    run({"SET", "k", "10.5"});
    const auto res = run({"INCRBYFLOAT", "k", "0.25"});
    EXPECT_EQ(last_reply_, "$5\r\n10.75\r\n");
    ASSERT_FALSE(res.repl_argv.empty());
    EXPECT_EQ(res.repl_argv[0], "SET"); // deterministic rewrite
    EXPECT_EQ(res.repl_argv[2], "10.75");
}

TEST_F(CommandTest, MsetMget) {
    expect_reply({"MSET", "a", "1", "b", "2"}, "+OK\r\n");
    expect_reply({"MGET", "a", "b", "nope"},
                 "*3\r\n$1\r\n1\r\n$1\r\n2\r\n$-1\r\n");
    run({"MSET", "a", "1", "b"}); // odd arity
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, Msetnx) {
    expect_reply({"MSETNX", "a", "1", "b", "2"}, ":1\r\n");
    expect_reply({"MSETNX", "b", "9", "c", "3"}, ":0\r\n"); // b exists
    EXPECT_FALSE(db_.exists("c"));
}

TEST_F(CommandTest, GetRangeSetRange) {
    run({"SET", "k", "Hello World"});
    expect_reply({"GETRANGE", "k", "0", "4"}, "$5\r\nHello\r\n");
    expect_reply({"GETRANGE", "k", "-5", "-1"}, "$5\r\nWorld\r\n");
    expect_reply({"GETRANGE", "missing", "0", "1"}, "$0\r\n\r\n");
    expect_reply({"SETRANGE", "k", "6", "Redis"}, ":11\r\n");
    expect_reply({"GET", "k"}, "$11\r\nHello Redis\r\n");
    expect_reply({"SETRANGE", "pad", "3", "x"}, ":4\r\n");
    std::string v = db_.lookup("pad")->string_value();
    EXPECT_EQ(v, std::string("\0\0\0x", 4));
}

TEST_F(CommandTest, WrongTypeErrors) {
    run({"LPUSH", "lst", "a"});
    run({"GET", "lst"});
    EXPECT_EQ(last_reply_.rfind("-WRONGTYPE", 0), 0u);
    run({"INCR", "lst"});
    EXPECT_EQ(last_reply_.rfind("-WRONGTYPE", 0), 0u);
    run({"SADD", "lst", "x"});
    EXPECT_EQ(last_reply_.rfind("-WRONGTYPE", 0), 0u);
}

// --- keys ---------------------------------------------------------------------

TEST_F(CommandTest, DelExists) {
    run({"MSET", "a", "1", "b", "2"});
    expect_reply({"EXISTS", "a", "b", "c", "a"}, ":3\r\n");
    expect_reply({"DEL", "a", "b", "c"}, ":2\r\n");
    expect_reply({"EXISTS", "a"}, ":0\r\n");
}

TEST_F(CommandTest, ExpireTtlPersist) {
    run({"SET", "k", "v"});
    expect_reply({"EXPIRE", "k", "10"}, ":1\r\n");
    expect_reply({"TTL", "k"}, ":10\r\n");
    expect_reply({"PTTL", "k"}, ":10000\r\n");
    expect_reply({"PERSIST", "k"}, ":1\r\n");
    expect_reply({"TTL", "k"}, ":-1\r\n");
    expect_reply({"EXPIRE", "missing", "10"}, ":0\r\n");
    expect_reply({"TTL", "missing"}, ":-2\r\n");
}

TEST_F(CommandTest, ExpireReplicatedAsPexpireat) {
    run({"SET", "k", "v"});
    const auto res = run({"EXPIRE", "k", "10"});
    ASSERT_FALSE(res.repl_argv.empty());
    EXPECT_EQ(res.repl_argv[0], "PEXPIREAT");
    EXPECT_EQ(res.repl_argv[2], "11000");
}

TEST_F(CommandTest, ExpireInPastDeletes) {
    run({"SET", "k", "v"});
    const auto res = run({"EXPIREAT", "k", "0"});
    EXPECT_FALSE(db_.exists("k"));
    ASSERT_FALSE(res.repl_argv.empty());
    EXPECT_EQ(res.repl_argv[0], "DEL"); // replicated as an explicit delete
}

TEST_F(CommandTest, TypeCommand) {
    run({"SET", "s", "v"});
    run({"LPUSH", "l", "x"});
    run({"SADD", "st", "x"});
    run({"HSET", "h", "f", "v"});
    run({"ZADD", "z", "1", "m"});
    expect_reply({"TYPE", "s"}, "+string\r\n");
    expect_reply({"TYPE", "l"}, "+list\r\n");
    expect_reply({"TYPE", "st"}, "+set\r\n");
    expect_reply({"TYPE", "h"}, "+hash\r\n");
    expect_reply({"TYPE", "z"}, "+zset\r\n");
    expect_reply({"TYPE", "none"}, "+none\r\n");
}

TEST_F(CommandTest, KeysGlob) {
    run({"MSET", "user:1", "a", "user:2", "b", "other", "c"});
    expect_reply({"KEYS", "user:*"},
                 "*2\r\n$6\r\nuser:1\r\n$6\r\nuser:2\r\n");
    expect_reply({"KEYS", "user:?"},
                 "*2\r\n$6\r\nuser:1\r\n$6\r\nuser:2\r\n");
    expect_reply({"KEYS", "user:[12]"},
                 "*2\r\n$6\r\nuser:1\r\n$6\r\nuser:2\r\n");
    expect_reply({"KEYS", "nomatch*"}, "*0\r\n");
}

TEST_F(CommandTest, RenameFamily) {
    run({"SET", "a", "v"});
    run({"EXPIRE", "a", "100"});
    expect_reply({"RENAME", "a", "b"}, "+OK\r\n");
    EXPECT_FALSE(db_.exists("a"));
    EXPECT_EQ(db_.lookup("b")->string_value(), "v");
    EXPECT_TRUE(db_.expire_at("b").has_value()); // TTL travels
    run({"RENAME", "missing", "x"});
    EXPECT_EQ(last_reply_.front(), '-');
    run({"SET", "c", "w"});
    expect_reply({"RENAMENX", "c", "b"}, ":0\r\n"); // target exists
    expect_reply({"RENAMENX", "c", "d"}, ":1\r\n");
}

TEST_F(CommandTest, ObjectEncoding) {
    run({"SET", "i", "123"});
    expect_reply({"OBJECT", "ENCODING", "i"}, "$3\r\nint\r\n");
    run({"SET", "r", "abc"});
    expect_reply({"OBJECT", "ENCODING", "r"}, "$3\r\nraw\r\n");
    run({"SADD", "s", "1"});
    expect_reply({"OBJECT", "ENCODING", "s"}, "$6\r\nintset\r\n");
    run({"SADD", "s", "word"});
    expect_reply({"OBJECT", "ENCODING", "s"}, "$9\r\nhashtable\r\n");
}

TEST_F(CommandTest, RandomKeyOnEmptyAndSingle) {
    expect_reply({"RANDOMKEY"}, "$-1\r\n");
    run({"SET", "only", "v"});
    expect_reply({"RANDOMKEY"}, "$4\r\nonly\r\n");
}

// --- lists ----------------------------------------------------------------------

TEST_F(CommandTest, PushPopBothEnds) {
    expect_reply({"RPUSH", "l", "a", "b"}, ":2\r\n");
    expect_reply({"LPUSH", "l", "z"}, ":3\r\n");
    expect_reply({"LRANGE", "l", "0", "-1"},
                 "*3\r\n$1\r\nz\r\n$1\r\na\r\n$1\r\nb\r\n");
    expect_reply({"LPOP", "l"}, "$1\r\nz\r\n");
    expect_reply({"RPOP", "l"}, "$1\r\nb\r\n");
    expect_reply({"LLEN", "l"}, ":1\r\n");
}

TEST_F(CommandTest, PopEmptiesRemoveKey) {
    run({"RPUSH", "l", "only"});
    run({"RPOP", "l"});
    EXPECT_FALSE(db_.exists("l"));
    expect_reply({"LPOP", "l"}, "$-1\r\n");
}

TEST_F(CommandTest, PushxRequiresExisting) {
    expect_reply({"LPUSHX", "nope", "v"}, ":0\r\n");
    expect_reply({"RPUSHX", "nope", "v"}, ":0\r\n");
    run({"RPUSH", "l", "a"});
    expect_reply({"RPUSHX", "l", "b"}, ":2\r\n");
}

TEST_F(CommandTest, LindexLset) {
    run({"RPUSH", "l", "a", "b", "c"});
    expect_reply({"LINDEX", "l", "1"}, "$1\r\nb\r\n");
    expect_reply({"LINDEX", "l", "-1"}, "$1\r\nc\r\n");
    expect_reply({"LINDEX", "l", "9"}, "$-1\r\n");
    expect_reply({"LSET", "l", "1", "B"}, "+OK\r\n");
    expect_reply({"LINDEX", "l", "1"}, "$1\r\nB\r\n");
    run({"LSET", "l", "9", "x"});
    EXPECT_EQ(last_reply_.front(), '-');
    run({"LSET", "missing", "0", "x"});
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, Lrem) {
    run({"RPUSH", "l", "x", "a", "x", "b", "x"});
    expect_reply({"LREM", "l", "2", "x"}, ":2\r\n"); // first two from head
    expect_reply({"LRANGE", "l", "0", "-1"},
                 "*3\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nx\r\n");
    run({"RPUSH", "l2", "x", "a", "x"});
    expect_reply({"LREM", "l2", "-1", "x"}, ":1\r\n"); // one from tail
    expect_reply({"LRANGE", "l2", "0", "-1"}, "*2\r\n$1\r\nx\r\n$1\r\na\r\n");
    run({"RPUSH", "l3", "x", "x"});
    expect_reply({"LREM", "l3", "0", "x"}, ":2\r\n"); // all
    EXPECT_FALSE(db_.exists("l3"));
}

TEST_F(CommandTest, Ltrim) {
    run({"RPUSH", "l", "a", "b", "c", "d", "e"});
    expect_reply({"LTRIM", "l", "1", "3"}, "+OK\r\n");
    expect_reply({"LRANGE", "l", "0", "-1"},
                 "*3\r\n$1\r\nb\r\n$1\r\nc\r\n$1\r\nd\r\n");
    run({"LTRIM", "l", "5", "9"}); // out of range: empties + deletes
    EXPECT_FALSE(db_.exists("l"));
}

TEST_F(CommandTest, Rpoplpush) {
    run({"RPUSH", "src", "a", "b"});
    expect_reply({"RPOPLPUSH", "src", "dst"}, "$1\r\nb\r\n");
    expect_reply({"LRANGE", "dst", "0", "-1"}, "*1\r\n$1\r\nb\r\n");
    expect_reply({"RPOPLPUSH", "missing", "dst"}, "$-1\r\n");
    // Rotation on the same key.
    run({"RPUSH", "rot", "1", "2", "3"});
    run({"RPOPLPUSH", "rot", "rot"});
    expect_reply({"LRANGE", "rot", "0", "-1"},
                 "*3\r\n$1\r\n3\r\n$1\r\n1\r\n$1\r\n2\r\n");
}

// --- sets -----------------------------------------------------------------------

TEST_F(CommandTest, SaddSremScard) {
    expect_reply({"SADD", "s", "a", "b", "a"}, ":2\r\n");
    expect_reply({"SCARD", "s"}, ":2\r\n");
    expect_reply({"SISMEMBER", "s", "a"}, ":1\r\n");
    expect_reply({"SISMEMBER", "s", "z"}, ":0\r\n");
    expect_reply({"SREM", "s", "a", "z"}, ":1\r\n");
    expect_reply({"SREM", "s", "b"}, ":1\r\n");
    EXPECT_FALSE(db_.exists("s")); // empty set removed
}

TEST_F(CommandTest, SmembersSorted) {
    run({"SADD", "s", "c", "a", "b"});
    expect_reply({"SMEMBERS", "s"}, "*3\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n");
    expect_reply({"SMEMBERS", "none"}, "*0\r\n");
}

TEST_F(CommandTest, SpopReplicatesAsSrem) {
    run({"SADD", "s", "x"});
    const auto res = run({"SPOP", "s"});
    EXPECT_EQ(last_reply_, "$1\r\nx\r\n");
    ASSERT_FALSE(res.repl_argv.empty());
    EXPECT_EQ(res.repl_argv, (std::vector<std::string>{"SREM", "s", "x"}));
    expect_reply({"SPOP", "s"}, "$-1\r\n");
}

TEST_F(CommandTest, Smove) {
    run({"SADD", "a", "m"});
    expect_reply({"SMOVE", "a", "b", "m"}, ":1\r\n");
    EXPECT_FALSE(db_.exists("a"));
    expect_reply({"SISMEMBER", "b", "m"}, ":1\r\n");
    expect_reply({"SMOVE", "a", "b", "nope"}, ":0\r\n");
}

TEST_F(CommandTest, SetOperations) {
    run({"SADD", "s1", "a", "b", "c"});
    run({"SADD", "s2", "b", "c", "d"});
    expect_reply({"SUNION", "s1", "s2"},
                 "*4\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n$1\r\nd\r\n");
    expect_reply({"SINTER", "s1", "s2"}, "*2\r\n$1\r\nb\r\n$1\r\nc\r\n");
    expect_reply({"SDIFF", "s1", "s2"}, "*1\r\n$1\r\na\r\n");
    expect_reply({"SINTER", "s1", "missing"}, "*0\r\n");
}

// --- hashes ---------------------------------------------------------------------

TEST_F(CommandTest, HsetHget) {
    expect_reply({"HSET", "h", "f1", "v1", "f2", "v2"}, ":2\r\n");
    expect_reply({"HSET", "h", "f1", "v1b"}, ":0\r\n"); // overwrite
    expect_reply({"HGET", "h", "f1"}, "$3\r\nv1b\r\n");
    expect_reply({"HGET", "h", "zz"}, "$-1\r\n");
    expect_reply({"HLEN", "h"}, ":2\r\n");
    run({"HSET", "h", "odd"});
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, HsetnxHexists) {
    expect_reply({"HSETNX", "h", "f", "v"}, ":1\r\n");
    expect_reply({"HSETNX", "h", "f", "w"}, ":0\r\n");
    expect_reply({"HGET", "h", "f"}, "$1\r\nv\r\n");
    expect_reply({"HEXISTS", "h", "f"}, ":1\r\n");
    expect_reply({"HEXISTS", "h", "g"}, ":0\r\n");
}

TEST_F(CommandTest, HdelRemovesKeyWhenEmpty) {
    run({"HSET", "h", "a", "1", "b", "2"});
    expect_reply({"HDEL", "h", "a", "zz"}, ":1\r\n");
    expect_reply({"HDEL", "h", "b"}, ":1\r\n");
    EXPECT_FALSE(db_.exists("h"));
}

TEST_F(CommandTest, HgetallSortedPairs) {
    run({"HSET", "h", "b", "2", "a", "1"});
    expect_reply({"HGETALL", "h"},
                 "*4\r\n$1\r\na\r\n$1\r\n1\r\n$1\r\nb\r\n$1\r\n2\r\n");
    expect_reply({"HKEYS", "h"}, "*2\r\n$1\r\na\r\n$1\r\nb\r\n");
    expect_reply({"HVALS", "h"}, "*2\r\n$1\r\n1\r\n$1\r\n2\r\n");
    expect_reply({"HMGET", "h", "a", "zz"}, "*2\r\n$1\r\n1\r\n$-1\r\n");
}

TEST_F(CommandTest, Hincrby) {
    expect_reply({"HINCRBY", "h", "n", "5"}, ":5\r\n");
    expect_reply({"HINCRBY", "h", "n", "-2"}, ":3\r\n");
    run({"HSET", "h", "s", "abc"});
    run({"HINCRBY", "h", "s", "1"});
    EXPECT_EQ(last_reply_.front(), '-');
}

// --- zsets ----------------------------------------------------------------------

TEST_F(CommandTest, ZaddZscoreZcard) {
    expect_reply({"ZADD", "z", "1", "a", "2", "b"}, ":2\r\n");
    expect_reply({"ZADD", "z", "3", "a"}, ":0\r\n"); // update
    expect_reply({"ZSCORE", "z", "a"}, "$1\r\n3\r\n");
    expect_reply({"ZSCORE", "z", "zz"}, "$-1\r\n");
    expect_reply({"ZCARD", "z"}, ":2\r\n");
}

TEST_F(CommandTest, ZaddFlags) {
    run({"ZADD", "z", "1", "m"});
    expect_reply({"ZADD", "z", "NX", "5", "m"}, ":0\r\n"); // NX skips update
    expect_reply({"ZSCORE", "z", "m"}, "$1\r\n1\r\n");
    expect_reply({"ZADD", "z", "XX", "5", "new"}, ":0\r\n"); // XX skips add
    EXPECT_FALSE(db_.lookup("z")->zscore("new").has_value());
    expect_reply({"ZADD", "z", "CH", "7", "m"}, ":1\r\n"); // CH counts changes
    run({"ZADD", "z", "NX", "XX", "1", "m"});
    EXPECT_EQ(last_reply_.front(), '-');
    run({"ZADD", "z", "1"}); // missing member
    EXPECT_EQ(last_reply_.front(), '-');
    run({"ZADD", "z", "notanumber", "m"});
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, ZrankZrevrank) {
    run({"ZADD", "z", "1", "a", "2", "b", "3", "c"});
    expect_reply({"ZRANK", "z", "a"}, ":0\r\n");
    expect_reply({"ZRANK", "z", "c"}, ":2\r\n");
    expect_reply({"ZREVRANK", "z", "c"}, ":0\r\n");
    expect_reply({"ZRANK", "z", "zz"}, "$-1\r\n");
}

TEST_F(CommandTest, Zrange) {
    run({"ZADD", "z", "1", "a", "2", "b", "3", "c"});
    expect_reply({"ZRANGE", "z", "0", "-1"},
                 "*3\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n");
    expect_reply({"ZRANGE", "z", "0", "0", "WITHSCORES"},
                 "*2\r\n$1\r\na\r\n$1\r\n1\r\n");
    expect_reply({"ZREVRANGE", "z", "0", "0"}, "*1\r\n$1\r\nc\r\n");
    expect_reply({"ZRANGE", "z", "5", "9"}, "*0\r\n");
}

TEST_F(CommandTest, ZrangeByScoreAndCount) {
    run({"ZADD", "z", "1", "a", "2", "b", "3", "c"});
    expect_reply({"ZRANGEBYSCORE", "z", "2", "3"},
                 "*2\r\n$1\r\nb\r\n$1\r\nc\r\n");
    expect_reply({"ZRANGEBYSCORE", "z", "(1", "3"},
                 "*2\r\n$1\r\nb\r\n$1\r\nc\r\n");
    expect_reply({"ZRANGEBYSCORE", "z", "-inf", "+inf"},
                 "*3\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n");
    expect_reply({"ZCOUNT", "z", "1", "2"}, ":2\r\n");
    expect_reply({"ZCOUNT", "z", "(1", "(3"}, ":1\r\n");
    run({"ZRANGEBYSCORE", "z", "junk", "3"});
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, ZremAndZincrby) {
    run({"ZADD", "z", "1", "a"});
    const auto res = run({"ZINCRBY", "z", "2.5", "a"});
    EXPECT_EQ(last_reply_, "$3\r\n3.5\r\n");
    ASSERT_FALSE(res.repl_argv.empty());
    EXPECT_EQ(res.repl_argv[0], "ZADD"); // absolute-score rewrite
    expect_reply({"ZREM", "z", "a", "zz"}, ":1\r\n");
    EXPECT_FALSE(db_.exists("z"));
}

// --- server ---------------------------------------------------------------------

TEST_F(CommandTest, PingEcho) {
    expect_reply({"PING"}, "+PONG\r\n");
    expect_reply({"PING", "hello"}, "$5\r\nhello\r\n");
    expect_reply({"ECHO", "x"}, "$1\r\nx\r\n");
}

TEST_F(CommandTest, DbsizeFlush) {
    run({"MSET", "a", "1", "b", "2"});
    expect_reply({"DBSIZE"}, ":2\r\n");
    expect_reply({"FLUSHDB"}, "+OK\r\n");
    expect_reply({"DBSIZE"}, ":0\r\n");
}

TEST_F(CommandTest, SelectOnlyDbZero) {
    expect_reply({"SELECT", "0"}, "+OK\r\n");
    run({"SELECT", "3"});
    EXPECT_EQ(last_reply_.front(), '-');
}

TEST_F(CommandTest, TimeReflectsClock) {
    now_ms_ = 12'345;
    expect_reply({"TIME"}, "*2\r\n$2\r\n12\r\n$6\r\n345000\r\n");
}

// --- replication metadata --------------------------------------------------------

TEST_F(CommandTest, ReadsNeverReplicate) {
    run({"SET", "k", "v"});
    const auto res = run({"GET", "k"});
    EXPECT_FALSE(res.is_write);
    EXPECT_TRUE(res.repl_argv.empty());
}

TEST_F(CommandTest, NonDirtyWritesNotReplicated) {
    const auto res = run({"DEL", "missing"}); // no-op delete
    EXPECT_TRUE(res.is_write);
    EXPECT_FALSE(res.dirty);
    EXPECT_TRUE(res.repl_argv.empty());
}

TEST_F(CommandTest, DirtyWritesReplicateVerbatimByDefault) {
    const auto res = run({"SET", "k", "v"});
    EXPECT_EQ(res.repl_argv, (std::vector<std::string>{"SET", "k", "v"}));
}

} // namespace
} // namespace skv::kv
