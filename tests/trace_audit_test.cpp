#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "kv/resp.hpp"
#include "skv/cluster.hpp"

namespace skv {
namespace {

/// The determinism auditor's tier-1 contract: the rolling FNV-1a digest over
/// the event trace (event type, sim time, endpoints) must be bit-identical
/// across two runs of the same seeded scenario. If this test ever fails, a
/// non-deterministic input (wall clock, raw RNG, unordered iteration,
/// address-dependent ordering) has leaked into a sim-visible path — bisect
/// with the digest the chaos suite prints on failure.

/// Run a replicated SET/GET workload against an SKV cluster (1 master,
/// 2 slaves, NIC-offloaded fan-out) and return the audit state.
std::tuple<std::uint64_t, std::uint64_t, std::uint64_t> run_set_get(
    std::uint64_t seed, int ops) {
    offload::ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = 2;
    cfg.offload = true;
    offload::Cluster c(cfg);
    c.start();

    auto node = c.add_client_host("audit-client");
    net::ChannelPtr ch;
    c.connect_client(node, [&ch](net::ChannelPtr got) { ch = std::move(got); });
    c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    EXPECT_TRUE(ch) << "client connect failed";
    if (!ch) return {0, 0, 0};

    // Closed loop: alternate SET k v / GET k, next command on reply.
    int sent = 0;
    int replies = 0;
    ch->set_on_message([&](std::string reply) {
        EXPECT_FALSE(reply.empty());
        ++replies;
        if (sent >= ops) return;
        const std::string key = "k" + std::to_string(sent / 2);
        ch->send(sent % 2 == 0 ? kv::resp::command({"SET", key, "v"})
                               : kv::resp::command({"GET", key}));
        ++sent;
    });
    ch->send(kv::resp::command({"SET", "k0", "v"}));
    ++sent;
    const auto deadline = c.sim().now() + sim::seconds(10);
    while (replies < sent && c.sim().now() < deadline) {
        if (c.sim().run_until(c.sim().now() + sim::milliseconds(20)) == 0 &&
            c.sim().events_pending() == 0) {
            break;
        }
    }
    EXPECT_EQ(replies, ops) << "workload did not complete";
    // Drain replication fan-out so slave-side events are audited too.
    c.sim().run_until(c.sim().now() + sim::milliseconds(200));
    EXPECT_TRUE(c.converged());
    return {c.sim().trace_digest(), c.sim().trace().total_noted(),
            c.sim().events_executed()};
}

TEST(TraceAudit, DoubleRunSameSeedIdenticalDigests) {
    const auto a = run_set_get(0xd1ce'5eedULL, 200);
    const auto b = run_set_get(0xd1ce'5eedULL, 200);
    EXPECT_EQ(std::get<0>(a), std::get<0>(b)) << "trace digests diverged";
    EXPECT_EQ(std::get<1>(a), std::get<1>(b)) << "audited event counts diverged";
    EXPECT_EQ(std::get<2>(a), std::get<2>(b)) << "executed event counts diverged";
}

TEST(TraceAudit, AuditActuallyObservesTraffic) {
    const auto [digest, noted, executed] = run_set_get(77, 50);
    // A replicated SET/GET run crosses the fabric constantly; an audit that
    // saw nothing means the hooks fell off.
    EXPECT_GT(noted, 100u);
    EXPECT_GT(executed, noted);
    EXPECT_NE(digest, 0xcbf29ce484222325ULL) << "digest still at FNV basis";
}

TEST(TraceAudit, DifferentSeedsDiverge) {
    // Different seeds jitter different costs: the event streams, and so the
    // digests, must differ.
    EXPECT_NE(std::get<0>(run_set_get(1, 100)), std::get<0>(run_set_get(2, 100)));
}

TEST(TraceAudit, FaultsFoldIntoDigest) {
    // Sever/restore and in-flight kills are part of the audited stream.
    offload::ClusterConfig cfg;
    cfg.seed = 42;
    cfg.n_slaves = 2;
    cfg.offload = true;
    auto run = [&cfg] {
        offload::Cluster c(cfg);
        c.start();
        c.sim().run_until(c.sim().now() + sim::milliseconds(50));
        c.slave(0).crash();
        c.sim().run_until(c.sim().now() + sim::seconds(2));
        c.slave(0).recover();
        c.sim().run_until(c.sim().now() + sim::seconds(3));
        return c.sim().trace_digest();
    };
    EXPECT_EQ(run(), run());
}

TEST(TraceAudit, TeardownEventsFoldIntoDigest) {
    // Channel teardown is part of the audited stream: kChannelClose and
    // kHandlerClear notes fire when links are severed and reconnected, so
    // two identical sever/reconnect runs must agree bit-for-bit, and a run
    // with the sever must diverge from one without it even though both end
    // converged on the same data.
    auto run = [](bool sever) {
        offload::ClusterConfig cfg;
        cfg.seed = 0x7e32'd0c5ULL;
        cfg.n_slaves = 2;
        cfg.offload = true;
        offload::Cluster c(cfg);
        c.start();
        c.sim().run_until(c.sim().now() + sim::milliseconds(50));
        if (sever) {
            c.slave(1).crash();
            c.sim().run_until(c.sim().now() + sim::seconds(2));
            c.slave(1).recover();
        }
        c.sim().run_until(c.sim().now() + sim::seconds(4));
        EXPECT_TRUE(c.converged());
        return c.sim().trace_digest();
    };
    const auto severed_a = run(true);
    const auto severed_b = run(true);
    const auto clean = run(false);
    EXPECT_EQ(severed_a, severed_b)
        << "teardown/reconnect event stream is non-deterministic";
    EXPECT_NE(severed_a, clean)
        << "teardown events are not reaching the digest";
}

} // namespace
} // namespace skv
