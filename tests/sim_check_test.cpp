#include <gtest/gtest.h>

#include "sim/check.hpp"
#include "sim/simulation.hpp"

namespace skv::sim {
namespace {

/// The diagnostic layer's contract: a failed check must identify the run
/// (seed), the moment (sim time), and the owner (node id) so any abort seen
/// in CI is immediately reproducible. Death tests assert each field appears
/// on stderr.

void fail_inside_sim() {
    Simulation s(0x00abcdef12345678ULL);
    s.after(microseconds(50), [] {
        NodeScope scope(7);
        SKV_CHECK(1 == 2, "boom message");
    });
    s.run();
}

TEST(CheckDeathTest, PrintsExpressionAndMessage) {
    EXPECT_DEATH(fail_inside_sim(), "SKV_CHECK failed: 1 == 2");
    EXPECT_DEATH(fail_inside_sim(), "message: boom message");
}

TEST(CheckDeathTest, PrintsSeed) {
    EXPECT_DEATH(fail_inside_sim(), "seed=0x00abcdef12345678");
}

TEST(CheckDeathTest, PrintsSimTime) {
    EXPECT_DEATH(fail_inside_sim(), "sim_time=50.000us");
}

TEST(CheckDeathTest, PrintsOwningNode) {
    EXPECT_DEATH(fail_inside_sim(), "node=7");
}

TEST(CheckDeathTest, UnreachableAborts) {
    EXPECT_DEATH(SKV_UNREACHABLE("fell off the enum"),
                 "SKV_UNREACHABLE failed");
}

TEST(CheckDeathTest, NoSimulationStillReports) {
    // Checks can fire from setup code before any Simulation exists.
    EXPECT_DEATH(SKV_CHECK(false, "early"), "no simulation registered");
}

TEST(Check, PassingCheckIsSilentAndSideEffectFree) {
    int calls = 0;
    auto bump = [&calls] {
        ++calls;
        return true;
    };
    SKV_CHECK(bump(), "must not fire");
    EXPECT_EQ(calls, 1);
}

TEST(Check, NodeScopeRestoresOnExit) {
    EXPECT_EQ(diag().node, -1);
    {
        NodeScope outer(3);
        EXPECT_EQ(diag().node, 3);
        {
            NodeScope inner(9);
            EXPECT_EQ(diag().node, 9);
        }
        EXPECT_EQ(diag().node, 3);
    }
    EXPECT_EQ(diag().node, -1);
}

TEST(Check, DcheckMatchesBuildMode) {
    int calls = 0;
    auto bump = [&calls] {
        ++calls;
        return true;
    };
    SKV_DCHECK(bump());
#ifdef NDEBUG
    EXPECT_EQ(calls, 0) << "SKV_DCHECK must compile out under NDEBUG";
#else
    EXPECT_EQ(calls, 1) << "SKV_DCHECK must evaluate in debug builds";
#endif
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckAbortsInDebug) {
    EXPECT_DEATH(SKV_DCHECK(false, "debug only"), "SKV_DCHECK failed");
}
#endif

} // namespace
} // namespace skv::sim
