#include <gtest/gtest.h>

#include <map>
#include <string>

#include "kv/skiplist.hpp"
#include "sim/rng.hpp"

namespace skv::kv {
namespace {

Sds m(int i) { return Sds("m" + std::to_string(i)); }

TEST(SkipList, EmptyInvariants) {
    SkipList sl;
    EXPECT_EQ(sl.size(), 0u);
    EXPECT_EQ(sl.head(), nullptr);
    EXPECT_EQ(sl.tail(), nullptr);
    EXPECT_TRUE(sl.check_invariants());
}

TEST(SkipList, InsertOrdering) {
    SkipList sl;
    sl.insert(3.0, m(3));
    sl.insert(1.0, m(1));
    sl.insert(2.0, m(2));
    ASSERT_EQ(sl.size(), 3u);
    const auto* n = sl.head();
    EXPECT_DOUBLE_EQ(n->score, 1.0);
    EXPECT_DOUBLE_EQ(n->level[0].forward->score, 2.0);
    EXPECT_DOUBLE_EQ(sl.tail()->score, 3.0);
    std::string why;
    EXPECT_TRUE(sl.check_invariants(&why)) << why;
}

TEST(SkipList, SameScoreOrderedByMember) {
    SkipList sl;
    sl.insert(1.0, Sds("b"));
    sl.insert(1.0, Sds("a"));
    sl.insert(1.0, Sds("c"));
    EXPECT_EQ(sl.head()->member.view(), "a");
    EXPECT_EQ(sl.tail()->member.view(), "c");
}

TEST(SkipList, EraseExisting) {
    SkipList sl;
    for (int i = 0; i < 10; ++i) sl.insert(i, m(i));
    EXPECT_TRUE(sl.erase(5.0, m(5)));
    EXPECT_EQ(sl.size(), 9u);
    EXPECT_EQ(sl.rank(5.0, m(5)), 0u);
    std::string why;
    EXPECT_TRUE(sl.check_invariants(&why)) << why;
}

TEST(SkipList, EraseMissing) {
    SkipList sl;
    sl.insert(1.0, m(1));
    EXPECT_FALSE(sl.erase(2.0, m(2)));
    EXPECT_FALSE(sl.erase(1.0, m(99))); // right score, wrong member
    EXPECT_FALSE(sl.erase(9.0, m(1)));  // right member, wrong score
}

TEST(SkipList, RankIsOneBased) {
    SkipList sl;
    for (int i = 0; i < 100; ++i) sl.insert(i, m(i));
    EXPECT_EQ(sl.rank(0.0, m(0)), 1u);
    EXPECT_EQ(sl.rank(50.0, m(50)), 51u);
    EXPECT_EQ(sl.rank(99.0, m(99)), 100u);
    EXPECT_EQ(sl.rank(1000.0, m(1000)), 0u); // absent
}

TEST(SkipList, AtRank) {
    SkipList sl;
    for (int i = 0; i < 100; ++i) sl.insert(i, m(i));
    EXPECT_EQ(sl.at_rank(1)->member.view(), "m0");
    EXPECT_EQ(sl.at_rank(100)->member.view(), "m99");
    EXPECT_EQ(sl.at_rank(0), nullptr);
    EXPECT_EQ(sl.at_rank(101), nullptr);
    for (std::size_t r = 1; r <= 100; r += 7) {
        const auto* n = sl.at_rank(r);
        ASSERT_NE(n, nullptr);
        EXPECT_EQ(sl.rank(n->score, n->member), r);
    }
}

TEST(SkipList, FirstInRange) {
    SkipList sl;
    for (int i = 0; i < 10; ++i) sl.insert(i * 10, m(i));
    EXPECT_DOUBLE_EQ(sl.first_in_range(25, false)->score, 30.0);
    EXPECT_DOUBLE_EQ(sl.first_in_range(30, false)->score, 30.0);
    EXPECT_DOUBLE_EQ(sl.first_in_range(30, true)->score, 40.0);
    EXPECT_EQ(sl.first_in_range(1000, false), nullptr);
}

TEST(SkipList, UpdateScoreInPlace) {
    SkipList sl;
    sl.insert(1.0, m(1));
    sl.insert(2.0, m(2));
    sl.insert(3.0, m(3));
    // 2 -> 2.5 stays between neighbours: in-place update.
    sl.update_score(2.0, m(2), 2.5);
    EXPECT_EQ(sl.rank(2.5, m(2)), 2u);
    EXPECT_TRUE(sl.check_invariants());
}

TEST(SkipList, UpdateScoreMoves) {
    SkipList sl;
    sl.insert(1.0, m(1));
    sl.insert(2.0, m(2));
    sl.insert(3.0, m(3));
    sl.update_score(1.0, m(1), 10.0);
    EXPECT_EQ(sl.rank(10.0, m(1)), 3u);
    EXPECT_EQ(sl.tail()->member.view(), "m1");
    EXPECT_TRUE(sl.check_invariants());
}

/// Property check against std::multimap ordered by (score, member).
class SkipListModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkipListModelTest, MatchesOrderedModel) {
    sim::Rng rng(GetParam());
    SkipList sl(GetParam());
    std::map<std::pair<double, std::string>, bool> model;

    for (int step = 0; step < 5000; ++step) {
        const int k = static_cast<int>(rng.next_below(200));
        const double score = static_cast<double>(rng.next_below(50));
        const auto mk = std::make_pair(score, m(k).str());
        if (rng.next_bool(0.6)) {
            if (!model.contains(mk)) {
                sl.insert(score, m(k));
                model[mk] = true;
            }
        } else {
            const bool a = sl.erase(score, m(k));
            const bool b = model.erase(mk) > 0;
            ASSERT_EQ(a, b);
        }
        ASSERT_EQ(sl.size(), model.size());
    }
    std::string why;
    ASSERT_TRUE(sl.check_invariants(&why)) << why;

    // Full order agreement + rank agreement.
    std::size_t r = 1;
    const SkipList::Node* n = sl.head();
    for (const auto& [key, unused] : model) {
        ASSERT_NE(n, nullptr);
        ASSERT_DOUBLE_EQ(n->score, key.first);
        ASSERT_EQ(n->member.view(), key.second);
        ASSERT_EQ(sl.rank(key.first, Sds(key.second)), r);
        ASSERT_EQ(sl.at_rank(r), n);
        n = n->level[0].forward;
        ++r;
    }
    EXPECT_EQ(n, nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListModelTest,
                         ::testing::Values(3u, 1729u, 55555u));

} // namespace
} // namespace skv::kv
