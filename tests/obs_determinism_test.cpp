#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "kv/resp.hpp"
#include "obs/export.hpp"
#include "skv/cluster.hpp"

namespace skv {
namespace {

/// Observability determinism contract (DESIGN.md §11): the tracer only
/// observes. Same-seed double runs must produce byte-identical chrome-trace
/// JSON and INFO replies, and flipping the tracer on must not move the
/// sim::Trace determinism digest by a single bit.

struct ObsRun {
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    std::string chrome_json;
    std::string info_reply;
    std::string master_stats;
    std::uint64_t spans = 0;
};

/// Replicated SET/GET workload plus a crash/recover failover against an SKV
/// cluster; collects every deterministic export the subsystem offers.
ObsRun run_scenario(std::uint64_t seed, bool tracing, int ops) {
    offload::ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = 2;
    cfg.offload = true;
    offload::Cluster c(cfg);
    c.tracer().set_enabled(tracing);
    c.start();

    auto node = c.add_client_host("obs-client");
    net::ChannelPtr ch;
    c.connect_client(node, [&ch](net::ChannelPtr got) { ch = std::move(got); });
    c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    EXPECT_TRUE(ch) << "client connect failed";
    ObsRun out;
    if (!ch) return out;

    // Stamp the request flow by hand (what BenchClient does internally), so
    // the critical-path stages are exercised without the workload runner.
    const std::uint32_t client_track = c.tracer().track("client/0");
    int sent = 0;
    int replies = 0;
    std::string last_reply;
    const auto issue = [&](std::vector<std::string> argv) {
        c.tracer().flow_issue(ch->flow_id(), client_track);
        ch->send(kv::resp::command(argv));
        ++sent;
    };
    ch->set_on_message([&](std::string reply) {
        EXPECT_FALSE(reply.empty());
        c.tracer().flow_complete(ch->flow_id());
        last_reply = reply;
        ++replies;
        if (sent >= ops) return;
        const std::string key = "k" + std::to_string(sent / 2);
        issue(sent % 2 == 0 ? std::vector<std::string>{"SET", key, "v"}
                            : std::vector<std::string>{"GET", key});
    });
    issue({"SET", "k0", "v"});
    const auto deadline = c.sim().now() + sim::seconds(10);
    while (replies < sent && c.sim().now() < deadline) {
        if (c.sim().run_until(c.sim().now() + sim::milliseconds(20)) == 0 &&
            c.sim().events_pending() == 0) {
            break;
        }
    }
    EXPECT_EQ(replies, ops) << "workload did not complete";

    // Failover leg: crash a slave mid-run, let the NIC failure detector
    // react, recover, and drain replication.
    c.slave(0).crash();
    c.sim().run_until(c.sim().now() + sim::seconds(2));
    c.slave(0).recover();
    c.sim().run_until(c.sim().now() + sim::seconds(3));
    EXPECT_TRUE(c.converged());

    // One INFO over the live connection: the reply must be deterministic
    // too (it folds command counts, offsets and latency stats together).
    const int replies_before_info = replies;
    sent = ops + 1; // stop the SET/GET alternation
    c.tracer().flow_issue(ch->flow_id(), client_track);
    ch->send(kv::resp::command({"INFO"}));
    c.sim().run_until(c.sim().now() + sim::milliseconds(50));
    EXPECT_GT(replies, replies_before_info) << "INFO got no reply";

    out.digest = c.sim().trace_digest();
    out.events = c.sim().events_executed();
    out.chrome_json = obs::chrome_trace_json(c.tracer());
    out.info_reply = last_reply;
    out.master_stats = c.master().stats().format();
    out.spans = c.tracer().spans().size();
    return out;
}

TEST(ObsDeterminism, SameSeedByteIdenticalExports) {
    const ObsRun a = run_scenario(0x0b5'feedULL, /*tracing=*/true, 200);
    const ObsRun b = run_scenario(0x0b5'feedULL, /*tracing=*/true, 200);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.chrome_json, b.chrome_json) << "chrome trace diverged";
    EXPECT_EQ(a.info_reply, b.info_reply) << "INFO reply diverged";
    EXPECT_EQ(a.master_stats, b.master_stats);
    EXPECT_GT(a.spans, 0u) << "tracer saw no spans";
}

TEST(ObsDeterminism, TracerDoesNotPerturbTheDigest) {
    // The tentpole's hard rule: enabling span collection must not change
    // what the simulation does — digest and event count stay bit-identical.
    const ObsRun off = run_scenario(0xabcdULL, /*tracing=*/false, 120);
    const ObsRun on = run_scenario(0xabcdULL, /*tracing=*/true, 120);
    EXPECT_EQ(off.digest, on.digest)
        << "tracer changed the simulation event stream";
    EXPECT_EQ(off.events, on.events);
    EXPECT_EQ(off.info_reply, on.info_reply);
    EXPECT_EQ(off.spans, 0u);
    EXPECT_GT(on.spans, 0u);
}

TEST(ObsDeterminism, TraceCoversRequestAndReplicationStages) {
    const ObsRun r = run_scenario(0x51abULL, /*tracing=*/true, 150);
    // The chrome trace must carry both the critical-path stages and the
    // offloaded replication legs, plus named tracks for every component.
    EXPECT_NE(r.chrome_json.find("client_e2e"), std::string::npos);
    EXPECT_NE(r.chrome_json.find("rdma_write"), std::string::npos);
    EXPECT_NE(r.chrome_json.find("master_apply"), std::string::npos);
    EXPECT_NE(r.chrome_json.find("reply"), std::string::npos);
    EXPECT_NE(r.chrome_json.find("offload_request"), std::string::npos);
    EXPECT_NE(r.chrome_json.find("nic_fanout"), std::string::npos);
    EXPECT_NE(r.chrome_json.find("slave_ack"), std::string::npos);
    EXPECT_NE(r.chrome_json.find("cq_wakeup"), std::string::npos);
    EXPECT_NE(r.chrome_json.find("server/master"), std::string::npos);
    EXPECT_NE(r.chrome_json.find("server/slave0"), std::string::npos);
    EXPECT_NE(r.chrome_json.find("nic/nic-kv"), std::string::npos);
    // INFO must include the new Stats/Latencystats lines.
    EXPECT_NE(r.info_reply.find("total_writes:"), std::string::npos);
    EXPECT_NE(r.info_reply.find("cmd_service_p50_usec:"), std::string::npos);
}

TEST(ObsDeterminism, SlowlogAndLatencyCommandsWork) {
    offload::ClusterConfig cfg;
    cfg.seed = 99;
    cfg.n_slaves = 1;
    cfg.offload = true;
    // Threshold zero: every command lands in the slowlog.
    cfg.server_tmpl.slowlog_threshold = sim::Duration::zero();
    offload::Cluster c(cfg);
    c.start();

    auto node = c.add_client_host("shell");
    net::ChannelPtr ch;
    c.connect_client(node, [&ch](net::ChannelPtr got) { ch = std::move(got); });
    c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    ASSERT_TRUE(ch);

    std::string last;
    int replies = 0;
    ch->set_on_message([&](std::string reply) {
        last = std::move(reply);
        ++replies;
    });
    const auto roundtrip = [&](std::vector<std::string> argv) {
        const int before = replies;
        ch->send(kv::resp::command(argv));
        c.sim().run_until(c.sim().now() + sim::milliseconds(20));
        EXPECT_GT(replies, before) << "no reply to " << argv[0];
        return last;
    };

    roundtrip({"SET", "a", "1"});
    roundtrip({"GET", "a"});
    const std::string len = roundtrip({"SLOWLOG", "LEN"});
    EXPECT_EQ(len.substr(0, 1), ":");
    EXPECT_NE(len, ":0\r\n") << "zero threshold should log every command";
    const std::string got = roundtrip({"SLOWLOG", "GET"});
    EXPECT_EQ(got.substr(0, 1), "*");
    EXPECT_NE(got.find("SET"), std::string::npos);
    const std::string latest = roundtrip({"LATENCY", "LATEST"});
    EXPECT_NE(latest.find("command-write"), std::string::npos);
    EXPECT_NE(latest.find("command-read"), std::string::npos);
    const std::string hist = roundtrip({"LATENCY", "HISTORY", "command-write"});
    EXPECT_EQ(hist.substr(0, 1), "*");
    const std::string reset = roundtrip({"SLOWLOG", "RESET"});
    EXPECT_EQ(reset, "+OK\r\n");
    const std::string len2 = roundtrip({"SLOWLOG", "LEN"});
    // Only the RESET itself (logged after clearing) can be present.
    EXPECT_TRUE(len2 == ":1\r\n" || len2 == ":0\r\n") << len2;
    const std::string lreset = roundtrip({"LATENCY", "RESET"});
    EXPECT_EQ(lreset.substr(0, 1), ":");
}

} // namespace
} // namespace skv
