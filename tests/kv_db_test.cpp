#include <gtest/gtest.h>

#include "kv/db.hpp"

namespace skv::kv {
namespace {

/// Manually advanced fake clock.
struct Clock {
    std::int64_t ms = 0;
    std::function<std::int64_t()> fn() {
        return [this] { return ms; };
    }
};

TEST(Database, SetLookup) {
    Clock clk;
    Database db(clk.fn());
    db.set("k", Object::make_string("v"));
    ASSERT_NE(db.lookup("k"), nullptr);
    EXPECT_EQ(db.lookup("k")->string_value(), "v");
    EXPECT_EQ(db.lookup("missing"), nullptr);
    EXPECT_EQ(db.size(), 1u);
}

TEST(Database, RemoveAndExists) {
    Clock clk;
    Database db(clk.fn());
    db.set("k", Object::make_string("v"));
    EXPECT_TRUE(db.exists("k"));
    EXPECT_TRUE(db.remove("k"));
    EXPECT_FALSE(db.remove("k"));
    EXPECT_FALSE(db.exists("k"));
}

TEST(Database, LazyExpiration) {
    Clock clk;
    Database db(clk.fn());
    db.set("k", Object::make_string("v"));
    db.set_expire("k", 100);
    clk.ms = 99;
    EXPECT_NE(db.lookup("k"), nullptr);
    clk.ms = 100;
    EXPECT_EQ(db.lookup("k"), nullptr); // deleted on access
    EXPECT_EQ(db.size(), 0u);
    EXPECT_EQ(db.expires_size(), 0u);
}

TEST(Database, SetClearsTtlSetKeepTtlDoesNot) {
    Clock clk;
    Database db(clk.fn());
    db.set("k", Object::make_string("v1"));
    db.set_expire("k", 500);
    db.set("k", Object::make_string("v2")); // SET semantics: ttl cleared
    EXPECT_FALSE(db.expire_at("k").has_value());

    db.set_expire("k", 500);
    db.set_keep_ttl("k", Object::make_string("v3"));
    EXPECT_EQ(*db.expire_at("k"), 500);
}

TEST(Database, TtlSemantics) {
    Clock clk;
    Database db(clk.fn());
    EXPECT_EQ(db.ttl_ms("nope"), -2);
    db.set("k", Object::make_string("v"));
    EXPECT_EQ(db.ttl_ms("k"), -1);
    db.set_expire("k", 250);
    clk.ms = 100;
    EXPECT_EQ(db.ttl_ms("k"), 150);
}

TEST(Database, Persist) {
    Clock clk;
    Database db(clk.fn());
    db.set("k", Object::make_string("v"));
    EXPECT_FALSE(db.persist("k")); // no ttl to remove
    db.set_expire("k", 100);
    EXPECT_TRUE(db.persist("k"));
    clk.ms = 1000;
    EXPECT_NE(db.lookup("k"), nullptr);
}

TEST(Database, SetExpireOnMissingKeyFails) {
    Clock clk;
    Database db(clk.fn());
    EXPECT_FALSE(db.set_expire("nope", 100));
}

TEST(Database, ActiveExpireCycle) {
    Clock clk;
    Database db(clk.fn());
    for (int i = 0; i < 100; ++i) {
        const std::string k = "k" + std::to_string(i);
        db.set(k, Object::make_string("v"));
        db.set_expire(k, 50);
    }
    clk.ms = 100;
    sim::Rng rng(1);
    std::size_t removed = 0;
    for (int round = 0; round < 200 && db.size() > 0; ++round) {
        removed += db.active_expire_cycle(rng, 20);
    }
    EXPECT_EQ(removed, 100u);
    EXPECT_EQ(db.size(), 0u);
}

TEST(Database, ActiveExpireLeavesLiveKeys) {
    Clock clk;
    Database db(clk.fn());
    db.set("live", Object::make_string("v"));
    db.set("dead", Object::make_string("v"));
    db.set_expire("dead", 10);
    db.set_expire("live", 10'000);
    clk.ms = 100;
    sim::Rng rng(2);
    for (int i = 0; i < 50; ++i) db.active_expire_cycle(rng, 10);
    EXPECT_TRUE(db.exists("live"));
    EXPECT_FALSE(db.exists("dead"));
}

TEST(Database, AllKeysSkipsExpired) {
    Clock clk;
    Database db(clk.fn());
    db.set("a", Object::make_string("1"));
    db.set("b", Object::make_string("2"));
    db.set_expire("b", 5);
    clk.ms = 10;
    const auto keys = db.all_keys();
    EXPECT_EQ(keys, std::vector<std::string>{"a"});
}

TEST(Database, RandomKeyAvoidsExpired) {
    Clock clk;
    Database db(clk.fn());
    db.set("gone", Object::make_string("x"));
    db.set_expire("gone", 1);
    db.set("here", Object::make_string("y"));
    clk.ms = 100;
    sim::Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        const auto k = db.random_key(rng);
        ASSERT_TRUE(k.has_value());
        EXPECT_EQ(*k, "here");
    }
}

TEST(Database, RandomKeyEmpty) {
    Clock clk;
    Database db(clk.fn());
    sim::Rng rng(4);
    EXPECT_FALSE(db.random_key(rng).has_value());
}

TEST(Database, EqualsDeep) {
    Clock clk;
    Database a(clk.fn());
    Database b(clk.fn());
    a.set("s", Object::make_string("v"));
    b.set("s", Object::make_string("v"));
    auto la = Object::make_list();
    la->list().push_back(Sds("e"));
    auto lb = Object::make_list();
    lb->list().push_back(Sds("e"));
    a.set("l", la);
    b.set("l", lb);
    EXPECT_TRUE(a.equals(b));
    EXPECT_TRUE(b.equals(a));
    b.set("extra", Object::make_string("x"));
    EXPECT_FALSE(a.equals(b));
}

TEST(Database, EqualsComparesExpires) {
    Clock clk;
    Database a(clk.fn());
    Database b(clk.fn());
    a.set("k", Object::make_string("v"));
    b.set("k", Object::make_string("v"));
    a.set_expire("k", 100);
    EXPECT_FALSE(a.equals(b));
    b.set_expire("k", 100);
    EXPECT_TRUE(a.equals(b));
}

TEST(Database, DirtyCounterAdvances) {
    Clock clk;
    Database db(clk.fn());
    const auto d0 = db.dirty();
    db.set("k", Object::make_string("v"));
    EXPECT_GT(db.dirty(), d0);
    const auto d1 = db.dirty();
    db.remove("k");
    EXPECT_GT(db.dirty(), d1);
}

TEST(Database, ClearEmpties) {
    Clock clk;
    Database db(clk.fn());
    db.set("k", Object::make_string("v"));
    db.set_expire("k", 100);
    db.clear();
    EXPECT_EQ(db.size(), 0u);
    EXPECT_EQ(db.expires_size(), 0u);
}

TEST(Database, MemoryBytesTracksContent) {
    Clock clk;
    Database db(clk.fn());
    const auto m0 = db.memory_bytes();
    db.set("k", Object::make_string(std::string(100'000, 'v')));
    EXPECT_GT(db.memory_bytes(), m0 + 100'000);
}

} // namespace
} // namespace skv::kv
