#include <gtest/gtest.h>

#include "rdma/verbs.hpp"

namespace skv::rdma {
namespace {

class VerbsTest : public ::testing::Test {
protected:
    VerbsTest()
        : sim(1), fabric(sim), net(sim, fabric, costs),
          core_a(sim, "a"), core_b(sim, "b") {
        ep_a = fabric.add_host("a");
        ep_b = fabric.add_host("b");
        cq_a = std::make_shared<CompletionQueue>();
        rq_a = std::make_shared<CompletionQueue>();
        cq_b = std::make_shared<CompletionQueue>();
        rq_b = std::make_shared<CompletionQueue>();
        qp_a = std::make_shared<QueuePair>(net, node_a(), cq_a, rq_a);
        qp_b = std::make_shared<QueuePair>(net, node_b(), cq_b, rq_b);
        qp_a->connect_to(qp_b);
        qp_b->connect_to(qp_a);
    }

    net::NodeRef node_a() { return {ep_a, &core_a}; }
    net::NodeRef node_b() { return {ep_b, &core_b}; }

    cpu::CostModel costs;
    sim::Simulation sim;
    net::Fabric fabric;
    RdmaNetwork net;
    cpu::Core core_a;
    cpu::Core core_b;
    net::EndpointId ep_a = 0;
    net::EndpointId ep_b = 0;
    CompletionQueuePtr cq_a, rq_a, cq_b, rq_b;
    QueuePairPtr qp_a, qp_b;
};

TEST_F(VerbsTest, MemoryRegionReadWrite) {
    auto mr = net.register_mr(node_b(), 1024);
    mr->write(10, "hello");
    EXPECT_EQ(mr->read(10, 5), "hello");
    EXPECT_EQ(mr->read(0, 1), std::string(1, '\0'));
    EXPECT_EQ(mr->size(), 1024u);
    EXPECT_NE(mr->rkey(), 0u);
}

TEST_F(VerbsTest, MemoryRegionWrapped) {
    auto mr = net.register_mr(node_b(), 8);
    mr->write_wrapped(6, "abcd"); // wraps: positions 6,7,0,1
    EXPECT_EQ(mr->read_wrapped(6, 4), "abcd");
    EXPECT_EQ(mr->read(0, 2), "cd");
}

TEST_F(VerbsTest, MrRegistryLookup) {
    auto mr = net.register_mr(node_b(), 64);
    EXPECT_EQ(net.lookup_mr(mr->rkey()), mr);
    EXPECT_EQ(net.lookup_mr(9999), nullptr);
}

TEST_F(VerbsTest, WriteLandsInRemoteMemoryNoRemoteCompletion) {
    auto mr = net.register_mr(node_b(), 256);
    SendWr wr;
    wr.wr_id = 7;
    wr.op = Opcode::kWrite;
    wr.payload = "data!";
    wr.rkey = mr->rkey();
    wr.remote_offset = 100;
    qp_a->post_send(std::move(wr));
    sim.run();
    EXPECT_EQ(mr->read(100, 5), "data!");
    EXPECT_EQ(rq_b->depth(), 0u); // plain WRITE: remote CPU sees nothing
    // Sender got its ack-driven completion.
    const auto comps = cq_a->poll();
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].wr_id, 7u);
    EXPECT_TRUE(comps[0].success);
}

TEST_F(VerbsTest, WriteWithImmConsumesRecv) {
    auto mr = net.register_mr(node_b(), 256);
    qp_b->post_recv(1, mr, 0, 0);
    SendWr wr;
    wr.op = Opcode::kWriteWithImm;
    wr.payload = "xyz";
    wr.rkey = mr->rkey();
    wr.remote_offset = 0;
    wr.has_imm = true;
    wr.imm = 3;
    qp_a->post_send(std::move(wr));
    sim.run();
    const auto comps = rq_b->poll();
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].op, Opcode::kRecv);
    EXPECT_TRUE(comps[0].has_imm);
    EXPECT_EQ(comps[0].imm, 3u);
    EXPECT_EQ(mr->read(0, 3), "xyz");
}

TEST_F(VerbsTest, SendRecvCarriesPayload) {
    auto mr = net.register_mr(node_b(), 64);
    qp_b->post_recv(42, mr, 8, 16);
    SendWr wr;
    wr.op = Opcode::kSend;
    wr.payload = "control";
    qp_a->post_send(std::move(wr));
    sim.run();
    const auto comps = rq_b->poll();
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].wr_id, 42u);
    EXPECT_EQ(comps[0].inline_payload, "control");
    EXPECT_EQ(comps[0].byte_len, 7u);
    EXPECT_EQ(mr->read(8, 7), "control"); // landed in the posted buffer
}

TEST_F(VerbsTest, RnrHoldsUntilRecvPosted) {
    auto mr = net.register_mr(node_b(), 64);
    SendWr wr;
    wr.op = Opcode::kSend;
    wr.payload = "early";
    qp_a->post_send(std::move(wr));
    sim.run();
    EXPECT_EQ(rq_b->depth(), 0u); // nothing delivered: no recv posted
    qp_b->post_recv(1, mr, 0, 32);
    sim.run();
    const auto comps = rq_b->poll();
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].inline_payload, "early");
}

TEST_F(VerbsTest, ReadReturnsRemoteBytes) {
    auto mr = net.register_mr(node_b(), 64);
    mr->write(4, "secret");
    SendWr wr;
    wr.wr_id = 11;
    wr.op = Opcode::kRead;
    wr.rkey = mr->rkey();
    wr.remote_offset = 4;
    wr.read_len = 6;
    qp_a->post_send(std::move(wr));
    sim.run();
    const auto comps = cq_a->poll();
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_TRUE(comps[0].success);
    EXPECT_EQ(comps[0].inline_payload, "secret");
}

TEST_F(VerbsTest, UnsignaledWriteNoSenderCompletion) {
    auto mr = net.register_mr(node_b(), 64);
    SendWr wr;
    wr.op = Opcode::kWrite;
    wr.payload = "q";
    wr.rkey = mr->rkey();
    wr.signaled = false;
    qp_a->post_send(std::move(wr));
    sim.run();
    EXPECT_EQ(cq_a->poll().size(), 0u);
    EXPECT_EQ(mr->read(0, 1), "q");
}

TEST_F(VerbsTest, DisconnectedQpFailsCompletion) {
    qp_a->disconnect();
    SendWr wr;
    wr.wr_id = 5;
    wr.op = Opcode::kSend;
    wr.payload = "x";
    qp_b->post_send(std::move(wr)); // b's peer (a) is still set
    qp_b->disconnect();
    SendWr wr2;
    wr2.wr_id = 6;
    wr2.op = Opcode::kSend;
    wr2.payload = "y";
    qp_b->post_send(std::move(wr2));
    sim.run();
    bool saw_failure = false;
    for (const auto& c : cq_b->poll()) {
        if (!c.success && c.wr_id == 6) saw_failure = true;
    }
    EXPECT_TRUE(saw_failure);
}

TEST_F(VerbsTest, SeveredFabricSilentlyLosesWr) {
    fabric.sever(ep_b);
    auto mr = net.register_mr(node_b(), 64);
    SendWr wr;
    wr.wr_id = 9;
    wr.op = Opcode::kWrite;
    wr.payload = "lost";
    wr.rkey = mr->rkey();
    qp_a->post_send(std::move(wr));
    sim.run();
    EXPECT_EQ(cq_a->poll().size(), 0u); // no completion, no error: hangs
    EXPECT_EQ(mr->read(0, 4), std::string(4, '\0'));
}

TEST_F(VerbsTest, CompletionChannelFiresOncePerArm) {
    auto chan_ptr = std::make_shared<CompletionChannel>(sim);
    CompletionChannel& chan = *chan_ptr;
    CompletionQueue cq(chan_ptr);
    int events = 0;
    chan.set_on_event([&] { ++events; });
    chan.req_notify();
    cq.push(Completion{});
    cq.push(Completion{}); // second push: channel already disarmed
    sim.run();
    EXPECT_EQ(events, 1);
    EXPECT_EQ(cq.depth(), 2u);
    chan.req_notify();
    cq.push(Completion{});
    sim.run();
    EXPECT_EQ(events, 2);
}

TEST_F(VerbsTest, PostCostsChargeSenderCore) {
    auto mr = net.register_mr(node_b(), 64);
    const auto busy0 = core_a.total_busy().ns();
    for (int i = 0; i < 100; ++i) {
        SendWr wr;
        wr.op = Opcode::kWrite;
        wr.payload = "z";
        wr.rkey = mr->rkey();
        wr.signaled = false;
        qp_a->post_send(std::move(wr));
    }
    sim.run();
    // ~100 x wr_post (200ns nominal + jitter + occasional stall).
    EXPECT_GT(core_a.total_busy().ns(), busy0 + 15'000);
}

TEST_F(VerbsTest, WrOrderPreservedThroughCore) {
    auto mr = net.register_mr(node_b(), 1024);
    for (int i = 0; i < 10; ++i) {
        SendWr wr;
        wr.op = Opcode::kWrite;
        wr.payload = std::string(1, static_cast<char>('0' + i));
        wr.rkey = mr->rkey();
        wr.remote_offset = static_cast<std::size_t>(i);
        wr.signaled = false;
        qp_a->post_send(std::move(wr));
    }
    sim.run();
    EXPECT_EQ(mr->read(0, 10), "0123456789");
}

} // namespace
} // namespace skv::rdma
