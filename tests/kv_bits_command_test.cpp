#include <gtest/gtest.h>

#include "kv/command.hpp"

namespace skv::kv {
namespace {

class BitsCommandTest : public ::testing::Test {
protected:
    BitsCommandTest() : rng_(21), db_([this] { return now_ms_; }) {}

    void expect_reply(std::vector<std::string> argv, std::string_view want) {
        run(std::move(argv));
        EXPECT_EQ(last_reply_, want);
    }

    ExecResult run(std::vector<std::string> argv) {
        last_reply_.clear();
        return CommandTable::instance().execute(db_, rng_, argv, last_reply_);
    }

    [[nodiscard]] bool errored() const {
        return !last_reply_.empty() && last_reply_.front() == '-';
    }

    std::int64_t now_ms_ = 1000;
    sim::Rng rng_;
    Database db_;
    std::string last_reply_;
};

TEST_F(BitsCommandTest, SetbitGetbitRoundTrip) {
    expect_reply({"SETBIT", "b", "7", "1"}, ":0\r\n"); // old value 0
    expect_reply({"GETBIT", "b", "7"}, ":1\r\n");
    expect_reply({"GETBIT", "b", "6"}, ":0\r\n");
    expect_reply({"SETBIT", "b", "7", "0"}, ":1\r\n"); // old value 1
    expect_reply({"GETBIT", "b", "7"}, ":0\r\n");
}

TEST_F(BitsCommandTest, SetbitMsbFirstNumbering) {
    run({"SETBIT", "b", "0", "1"}); // MSB of byte 0 -> 0x80
    EXPECT_EQ(db_.lookup("b")->string_value(), std::string(1, '\x80'));
    run({"SETBIT", "b", "15", "1"}); // LSB of byte 1 -> extends the string
    EXPECT_EQ(db_.lookup("b")->string_value(), std::string("\x80\x01", 2));
}

TEST_F(BitsCommandTest, GetbitBeyondStringIsZero) {
    run({"SET", "b", "a"});
    expect_reply({"GETBIT", "b", "1000"}, ":0\r\n");
    expect_reply({"GETBIT", "missing", "3"}, ":0\r\n");
}

TEST_F(BitsCommandTest, SetbitValidation) {
    run({"SETBIT", "b", "-1", "1"});
    EXPECT_TRUE(errored());
    run({"SETBIT", "b", "abc", "1"});
    EXPECT_TRUE(errored());
    run({"SETBIT", "b", "0", "2"});
    EXPECT_TRUE(errored());
}

TEST_F(BitsCommandTest, Bitcount) {
    run({"SET", "b", "foobar"});
    expect_reply({"BITCOUNT", "b"}, ":26\r\n");
    expect_reply({"BITCOUNT", "b", "0", "0"}, ":4\r\n");
    expect_reply({"BITCOUNT", "b", "1", "1"}, ":6\r\n");
    expect_reply({"BITCOUNT", "b", "-2", "-1"}, ":7\r\n"); // "ar"
    expect_reply({"BITCOUNT", "missing"}, ":0\r\n");
}

TEST_F(BitsCommandTest, Bitpos) {
    run({"SET", "b", std::string("\x00\x0f", 2)});
    expect_reply({"BITPOS", "b", "1"}, ":12\r\n");
    expect_reply({"BITPOS", "b", "0"}, ":0\r\n");
    run({"SET", "full", "\xff"});
    expect_reply({"BITPOS", "full", "0"}, ":8\r\n"); // implicit zero padding
    expect_reply({"BITPOS", "full", "0", "0", "0"}, ":-1\r\n"); // bounded
    expect_reply({"BITPOS", "missing", "1"}, ":-1\r\n");
    expect_reply({"BITPOS", "missing", "0"}, ":0\r\n");
}

TEST_F(BitsCommandTest, BitopAndOrXorNot) {
    run({"SET", "a", "abc"});
    run({"SET", "b", "abd"});
    expect_reply({"BITOP", "AND", "dst", "a", "b"}, ":3\r\n");
    EXPECT_EQ(db_.lookup("dst")->string_value(), std::string("ab`"));
    run({"BITOP", "OR", "dst", "a", "b"});
    EXPECT_EQ(db_.lookup("dst")->string_value(), std::string("abg"));
    run({"BITOP", "XOR", "dst", "a", "b"});
    EXPECT_EQ(db_.lookup("dst")->string_value(),
              std::string("\x00\x00\x07", 3));
    run({"BITOP", "NOT", "dst", "a"});
    EXPECT_EQ(db_.lookup("dst")->string_value()[0], static_cast<char>(~'a'));
}

TEST_F(BitsCommandTest, BitopDifferentLengthsZeroPad) {
    run({"SET", "short", "\xff"});
    run({"SET", "long", "\xff\xff\xff"});
    expect_reply({"BITOP", "AND", "dst", "short", "long"}, ":3\r\n");
    EXPECT_EQ(db_.lookup("dst")->string_value(),
              std::string("\xff\x00\x00", 3));
}

TEST_F(BitsCommandTest, BitopEmptySourcesRemovesDest) {
    run({"SET", "dst", "old"});
    expect_reply({"BITOP", "OR", "dst", "missing1", "missing2"}, ":0\r\n");
    EXPECT_FALSE(db_.exists("dst"));
}

TEST_F(BitsCommandTest, BitopNotSingleSourceOnly) {
    run({"SET", "a", "x"});
    run({"BITOP", "NOT", "dst", "a", "a"});
    EXPECT_TRUE(errored());
}

TEST_F(BitsCommandTest, Linsert) {
    run({"RPUSH", "l", "a", "c"});
    expect_reply({"LINSERT", "l", "BEFORE", "c", "b"}, ":3\r\n");
    expect_reply({"LRANGE", "l", "0", "-1"},
                 "*3\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n");
    expect_reply({"LINSERT", "l", "AFTER", "c", "d"}, ":4\r\n");
    expect_reply({"LINSERT", "l", "BEFORE", "zzz", "x"}, ":-1\r\n");
    expect_reply({"LINSERT", "missing", "BEFORE", "a", "x"}, ":0\r\n");
    run({"LINSERT", "l", "SIDEWAYS", "a", "x"});
    EXPECT_TRUE(errored());
}

TEST_F(BitsCommandTest, Zremrangebyrank) {
    run({"ZADD", "z", "1", "a", "2", "b", "3", "c", "4", "d"});
    expect_reply({"ZREMRANGEBYRANK", "z", "0", "1"}, ":2\r\n");
    expect_reply({"ZRANGE", "z", "0", "-1"}, "*2\r\n$1\r\nc\r\n$1\r\nd\r\n");
    expect_reply({"ZREMRANGEBYRANK", "z", "-1", "-1"}, ":1\r\n");
    expect_reply({"ZREMRANGEBYRANK", "z", "0", "-1"}, ":1\r\n");
    EXPECT_FALSE(db_.exists("z"));
}

TEST_F(BitsCommandTest, Zremrangebyscore) {
    run({"ZADD", "z", "1", "a", "2", "b", "3", "c"});
    expect_reply({"ZREMRANGEBYSCORE", "z", "(1", "2"}, ":1\r\n");
    expect_reply({"ZRANGE", "z", "0", "-1"}, "*2\r\n$1\r\na\r\n$1\r\nc\r\n");
    expect_reply({"ZREMRANGEBYSCORE", "z", "-inf", "+inf"}, ":2\r\n");
    EXPECT_FALSE(db_.exists("z"));
    expect_reply({"ZREMRANGEBYSCORE", "missing", "0", "1"}, ":0\r\n");
}

TEST_F(BitsCommandTest, Hstrlen) {
    run({"HSET", "h", "f", "hello"});
    expect_reply({"HSTRLEN", "h", "f"}, ":5\r\n");
    expect_reply({"HSTRLEN", "h", "missing"}, ":0\r\n");
    expect_reply({"HSTRLEN", "missing", "f"}, ":0\r\n");
}

TEST_F(BitsCommandTest, Sintercard) {
    run({"SADD", "a", "1", "2", "3", "4"});
    run({"SADD", "b", "2", "3", "4", "5"});
    expect_reply({"SINTERCARD", "2", "a", "b"}, ":3\r\n");
    expect_reply({"SINTERCARD", "2", "a", "b", "LIMIT", "2"}, ":2\r\n");
    expect_reply({"SINTERCARD", "2", "a", "b", "LIMIT", "0"}, ":3\r\n");
    expect_reply({"SINTERCARD", "2", "a", "missing"}, ":0\r\n");
    run({"SINTERCARD", "0", "a"});
    EXPECT_TRUE(errored());
}

TEST_F(BitsCommandTest, BitOpsReplicate) {
    const auto res = run({"SETBIT", "b", "3", "1"});
    EXPECT_TRUE(res.is_write);
    EXPECT_EQ(res.repl_argv,
              (std::vector<std::string>{"SETBIT", "b", "3", "1"}));
}

} // namespace
} // namespace skv::kv
