#include <gtest/gtest.h>

#include "kv/resp.hpp"
#include "skv/cluster.hpp"

namespace skv::offload {
namespace {

TEST(Cluster, BaselineAndSkvBuildTheRightTopology) {
    ClusterConfig base;
    base.n_slaves = 2;
    base.offload = false;
    Cluster cb(base);
    cb.start();
    EXPECT_EQ(cb.nic_kv(), nullptr);
    EXPECT_EQ(cb.smartnic(), nullptr);
    EXPECT_EQ(cb.slave_count(), 2);

    ClusterConfig skv;
    skv.n_slaves = 2;
    skv.offload = true;
    Cluster cs(skv);
    cs.start();
    EXPECT_NE(cs.nic_kv(), nullptr);
    EXPECT_NE(cs.smartnic(), nullptr);
    EXPECT_TRUE(cs.fabric().is_companion(cs.nic_kv()->endpoint()));
}

TEST(Cluster, TcpTransportWorksEndToEnd) {
    ClusterConfig cfg;
    cfg.n_slaves = 1;
    cfg.transport = server::Transport::kTcp;
    cfg.offload = false;
    Cluster c(cfg);
    c.start();
    auto node = c.add_client_host("cli");
    net::ChannelPtr ch;
    c.connect_client(node, [&](net::ChannelPtr x) { ch = std::move(x); });
    c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    ASSERT_TRUE(ch);
    std::string reply;
    ch->set_on_message([&](std::string m) { reply += m; });
    ch->send(kv::resp::command({"SET", "k", "v"}));
    c.sim().run_until(c.sim().now() + sim::milliseconds(100));
    EXPECT_NE(reply.find("+OK"), std::string::npos);
    EXPECT_TRUE(c.converged());
}

TEST(Cluster, ConvergedReflectsOffsets) {
    ClusterConfig cfg;
    cfg.n_slaves = 1;
    cfg.offload = true;
    Cluster c(cfg);
    c.start();
    EXPECT_TRUE(c.converged()); // nothing written yet
    // Write directly through the master's db? No: converged() compares
    // replication offsets, which only move via the command path.
    auto node = c.add_client_host("cli");
    net::ChannelPtr ch;
    c.connect_client(node, [&](net::ChannelPtr x) { ch = std::move(x); });
    c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    ch->set_on_message([](std::string) {});
    ch->send(kv::resp::command({"SET", "a", "b"}));
    c.sim().run_until(c.sim().now() + sim::milliseconds(100));
    EXPECT_TRUE(c.converged());
    EXPECT_GT(c.master().master_offset(), 0);
}

/// Determinism: two simulations with the same seed produce identical
/// results; a different seed produces a different (but valid) execution.
TEST(Cluster, DeterministicAcrossRuns) {
    auto run_once = [](std::uint64_t seed) {
        ClusterConfig cfg;
        cfg.seed = seed;
        cfg.n_slaves = 3;
        cfg.offload = true;
        Cluster c(cfg);
        c.start();
        auto node = c.add_client_host("cli");
        net::ChannelPtr ch;
        c.connect_client(node, [&](net::ChannelPtr x) { ch = std::move(x); });
        c.sim().run_until(c.sim().now() + sim::milliseconds(10));
        ch->set_on_message([](std::string) {});
        for (int i = 0; i < 100; ++i) {
            ch->send(kv::resp::command({"SET", "k" + std::to_string(i % 10),
                                        "v" + std::to_string(i)}));
        }
        c.sim().run_until(c.sim().now() + sim::milliseconds(200));
        return std::tuple{c.sim().events_executed(),
                          c.master().master_offset(),
                          c.master().node().core->total_busy().ns()};
    };
    const auto a = run_once(77);
    const auto b = run_once(77);
    const auto c = run_once(78);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Cluster, SettleCompletesInitialSyncForAllSlaves) {
    ClusterConfig cfg;
    cfg.n_slaves = 5;
    cfg.offload = true;
    Cluster c(cfg);
    c.start();
    EXPECT_EQ(c.nic_kv()->valid_slaves(), 5);
    EXPECT_EQ(c.master().slave_count(), 5u);
    EXPECT_TRUE(c.converged());
}

TEST(Cluster, AddClientHostCreatesDistinctEndpoints) {
    ClusterConfig cfg;
    cfg.n_slaves = 0;
    Cluster c(cfg);
    c.start();
    const auto a = c.add_client_host("a");
    const auto b = c.add_client_host("b");
    EXPECT_NE(a.ep, b.ep);
    EXPECT_NE(a.core, b.core);
}

} // namespace
} // namespace skv::offload
