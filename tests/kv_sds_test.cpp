#include <gtest/gtest.h>

#include <climits>
#include <cmath>

#include "kv/sds.hpp"

namespace skv::kv {
namespace {

TEST(Sds, EmptyByDefault) {
    Sds s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
}

TEST(Sds, AppendGrows) {
    Sds s;
    s.append("hello");
    s.append(", ");
    s.append("world");
    EXPECT_EQ(s.view(), "hello, world");
    EXPECT_EQ(s.size(), 12u);
}

TEST(Sds, BinarySafe) {
    Sds s;
    s.append(std::string_view("a\0b", 3));
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s[1], '\0');
}

TEST(Sds, GrowthPolicyDoublesSmall) {
    Sds s;
    s.append("x");
    const auto cap1 = s.capacity();
    EXPECT_GE(cap1, 2u); // doubled beyond the single byte
    std::string big(100, 'y');
    s.append(big);
    EXPECT_GE(s.capacity(), 2 * s.size()); // still in the doubling regime
}

TEST(Sds, GrowthPolicyLinearLarge) {
    Sds s;
    std::string big(Sds::kMaxPrealloc + 10, 'z');
    s.append(big);
    // Past 1MB the preallocation is +1MB, not double.
    EXPECT_LE(s.capacity(), s.size() + Sds::kMaxPrealloc + 1);
}

TEST(Sds, RangePositive) {
    Sds s("Hello World");
    s.range(0, 4);
    EXPECT_EQ(s.view(), "Hello");
}

TEST(Sds, RangeNegativeIndexes) {
    Sds s("Hello World");
    s.range(-5, -1);
    EXPECT_EQ(s.view(), "World");
}

TEST(Sds, RangeOutOfBoundsEmpties) {
    Sds s("abc");
    s.range(5, 10);
    EXPECT_TRUE(s.empty());
}

TEST(Sds, RangeClampsEnd) {
    Sds s("abc");
    s.range(1, 100);
    EXPECT_EQ(s.view(), "bc");
}

TEST(Sds, TrimBothEnds) {
    Sds s("xxyabcyxx");
    s.trim("xy");
    EXPECT_EQ(s.view(), "abc");
}

TEST(Sds, TrimAllCharacters) {
    Sds s("aaaa");
    s.trim("a");
    EXPECT_TRUE(s.empty());
}

TEST(Sds, CaseFolding) {
    Sds s("MiXeD123");
    s.tolower();
    EXPECT_EQ(s.view(), "mixed123");
    s.toupper();
    EXPECT_EQ(s.view(), "MIXED123");
}

TEST(Sds, CompareLexicographic) {
    EXPECT_LT(Sds("abc").compare(Sds("abd")), 0);
    EXPECT_GT(Sds("abd").compare(Sds("abc")), 0);
    EXPECT_EQ(Sds("abc").compare(Sds("abc")), 0);
    EXPECT_LT(Sds("ab").compare(Sds("abc")), 0); // prefix is smaller
}

TEST(Sds, IEquals) {
    EXPECT_TRUE(Sds("GET").iequals("get"));
    EXPECT_TRUE(Sds("SeT").iequals("SET"));
    EXPECT_FALSE(Sds("GET").iequals("GETS"));
    EXPECT_FALSE(Sds("GET").iequals("PUT"));
}

TEST(SdsSplitArgs, SimpleWords) {
    const auto args = Sds::split_args("SET key value");
    ASSERT_TRUE(args.has_value());
    ASSERT_EQ(args->size(), 3u);
    EXPECT_EQ((*args)[0].view(), "SET");
    EXPECT_EQ((*args)[2].view(), "value");
}

TEST(SdsSplitArgs, DoubleQuotesWithEscapes) {
    const auto args = Sds::split_args("SET k \"a b\\n\\t\"");
    ASSERT_TRUE(args.has_value());
    ASSERT_EQ(args->size(), 3u);
    EXPECT_EQ((*args)[2].view(), "a b\n\t");
}

TEST(SdsSplitArgs, HexEscapes) {
    const auto args = Sds::split_args("\"\\x41\\x42\"");
    ASSERT_TRUE(args.has_value());
    EXPECT_EQ((*args)[0].view(), "AB");
}

TEST(SdsSplitArgs, SingleQuotes) {
    const auto args = Sds::split_args("echo 'hello \\' world'");
    ASSERT_TRUE(args.has_value());
    ASSERT_EQ(args->size(), 2u);
    EXPECT_EQ((*args)[1].view(), "hello ' world");
}

TEST(SdsSplitArgs, UnbalancedQuotesFail) {
    EXPECT_FALSE(Sds::split_args("SET k \"oops").has_value());
    EXPECT_FALSE(Sds::split_args("SET k 'oops").has_value());
}

TEST(SdsSplitArgs, QuoteMustBeFollowedBySpace) {
    EXPECT_FALSE(Sds::split_args("\"a\"b").has_value());
}

TEST(SdsSplitArgs, EmptyLine) {
    const auto args = Sds::split_args("   \t  ");
    ASSERT_TRUE(args.has_value());
    EXPECT_TRUE(args->empty());
}

TEST(Ll2String, Values) {
    EXPECT_EQ(ll2string(0), "0");
    EXPECT_EQ(ll2string(42), "42");
    EXPECT_EQ(ll2string(-7), "-7");
    EXPECT_EQ(ll2string(LLONG_MAX), "9223372036854775807");
    EXPECT_EQ(ll2string(LLONG_MIN), "-9223372036854775808");
}

struct LlCase {
    const char* in;
    bool ok;
    long long v;
};

class String2llTest : public ::testing::TestWithParam<LlCase> {};

TEST_P(String2llTest, ParsesStrictly) {
    const auto& c = GetParam();
    const auto got = string2ll(c.in);
    EXPECT_EQ(got.has_value(), c.ok) << c.in;
    if (c.ok && got.has_value()) {
        EXPECT_EQ(*got, c.v) << c.in;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, String2llTest,
    ::testing::Values(
        LlCase{"0", true, 0}, LlCase{"42", true, 42}, LlCase{"-1", true, -1},
        LlCase{"9223372036854775807", true, LLONG_MAX},
        LlCase{"-9223372036854775808", true, LLONG_MIN},
        LlCase{"9223372036854775808", false, 0},   // overflow
        LlCase{"-9223372036854775809", false, 0},  // underflow
        LlCase{"", false, 0}, LlCase{"-", false, 0},
        LlCase{"007", false, 0},                    // leading zeros rejected
        LlCase{"1.5", false, 0}, LlCase{" 1", false, 0},
        LlCase{"1 ", false, 0}, LlCase{"abc", false, 0},
        LlCase{"+1", false, 0}));

TEST(String2d, AcceptsFloats) {
    EXPECT_DOUBLE_EQ(*string2d("1.5"), 1.5);
    EXPECT_DOUBLE_EQ(*string2d("-2e3"), -2000.0);
    EXPECT_DOUBLE_EQ(*string2d("0"), 0.0);
    EXPECT_TRUE(std::isinf(*string2d("inf")));
    EXPECT_TRUE(std::isinf(*string2d("-inf")));
}

TEST(String2d, RejectsJunk) {
    EXPECT_FALSE(string2d("").has_value());
    EXPECT_FALSE(string2d("1.5x").has_value());
    EXPECT_FALSE(string2d("nan").has_value());
}

} // namespace
} // namespace skv::kv
