#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_map>

#include "kv/dict.hpp"

namespace skv::kv {
namespace {

Sds key(int i) { return Sds("key:" + std::to_string(i)); }

TEST(Dict, InsertFind) {
    Dict<int> d;
    EXPECT_TRUE(d.insert(key(1), 10));
    EXPECT_TRUE(d.insert(key(2), 20));
    EXPECT_FALSE(d.insert(key(1), 99)); // duplicate
    ASSERT_NE(d.find(key(1)), nullptr);
    EXPECT_EQ(*d.find(key(1)), 10);
    EXPECT_EQ(d.find(key(3)), nullptr);
    EXPECT_EQ(d.size(), 2u);
}

TEST(Dict, SetOverwrites) {
    Dict<int> d;
    EXPECT_TRUE(d.set(key(1), 1));
    EXPECT_FALSE(d.set(key(1), 2));
    EXPECT_EQ(*d.find(key(1)), 2);
    EXPECT_EQ(d.size(), 1u);
}

TEST(Dict, Erase) {
    Dict<int> d;
    d.insert(key(1), 1);
    EXPECT_TRUE(d.erase(key(1)));
    EXPECT_FALSE(d.erase(key(1)));
    EXPECT_EQ(d.size(), 0u);
    EXPECT_EQ(d.find(key(1)), nullptr);
}

TEST(Dict, GrowsAndRehashesIncrementally) {
    Dict<int> d;
    // Enough inserts to trigger several expansions.
    for (int i = 0; i < 5000; ++i) d.insert(key(i), i);
    EXPECT_EQ(d.size(), 5000u);
    for (int i = 0; i < 5000; ++i) {
        ASSERT_NE(d.find(key(i)), nullptr) << i;
        ASSERT_EQ(*d.find(key(i)), i);
    }
}

TEST(Dict, RehashStepCompletesMigration) {
    Dict<int> d;
    for (int i = 0; i < 100; ++i) d.insert(key(i), i);
    // Force the rehash to finish without further mutating operations.
    int guard = 0;
    while (d.rehashing() && guard++ < 10'000) d.rehash_step(1);
    EXPECT_FALSE(d.rehashing());
    for (int i = 0; i < 100; ++i) ASSERT_NE(d.find(key(i)), nullptr);
}

TEST(Dict, ShrinksWhenSparse) {
    Dict<int> d;
    for (int i = 0; i < 4096; ++i) d.insert(key(i), i);
    while (d.rehashing()) d.rehash_step(64);
    const auto grown = d.bucket_count();
    for (int i = 0; i < 4090; ++i) d.erase(key(i));
    while (d.rehashing()) d.rehash_step(64);
    EXPECT_LT(d.bucket_count(), grown);
    for (int i = 4090; i < 4096; ++i) ASSERT_NE(d.find(key(i)), nullptr);
}

TEST(Dict, ForEachVisitsAll) {
    Dict<int> d;
    for (int i = 0; i < 500; ++i) d.insert(key(i), i);
    std::set<std::string> seen;
    int sum = 0;
    d.for_each([&](const Sds& k, int& v) {
        seen.insert(k.str());
        sum += v;
    });
    EXPECT_EQ(seen.size(), 500u);
    EXPECT_EQ(sum, 499 * 500 / 2);
}

TEST(Dict, ForEachDuringRehashVisitsBothTables) {
    Dict<int> d;
    for (int i = 0; i < 64; ++i) d.insert(key(i), i);
    // d is likely mid-rehash now; for_each must still see everything.
    std::size_t n = 0;
    d.for_each([&](const Sds&, int&) { ++n; });
    EXPECT_EQ(n, d.size());
}

TEST(Dict, RandomEntryCoversKeys) {
    Dict<int> d;
    for (int i = 0; i < 16; ++i) d.insert(key(i), i);
    sim::Rng rng(3);
    std::set<std::string> seen;
    for (int i = 0; i < 2000; ++i) {
        auto [k, v] = d.random_entry(rng);
        ASSERT_NE(k, nullptr);
        seen.insert(k->str());
    }
    EXPECT_EQ(seen.size(), 16u); // every key sampled eventually
}

TEST(Dict, RandomEntryEmpty) {
    Dict<int> d;
    sim::Rng rng(4);
    auto [k, v] = d.random_entry(rng);
    EXPECT_EQ(k, nullptr);
    EXPECT_EQ(v, nullptr);
}

TEST(Dict, ScanVisitsEveryKeyOnce) {
    Dict<int> d;
    for (int i = 0; i < 1000; ++i) d.insert(key(i), i);
    std::set<std::string> seen;
    std::uint64_t cursor = 0;
    int guard = 0;
    do {
        cursor = d.scan(cursor, [&](const Sds& k, const int&) {
            seen.insert(k.str());
        });
    } while (cursor != 0 && guard++ < 100'000);
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Dict, ScanWithConcurrentInsertsSeesAllOldKeys) {
    Dict<int> d;
    for (int i = 0; i < 256; ++i) d.insert(key(i), i);
    std::set<std::string> seen;
    std::uint64_t cursor = 0;
    int added = 1000;
    int guard = 0;
    do {
        cursor = d.scan(cursor, [&](const Sds& k, const int&) {
            seen.insert(k.str());
        });
        // Mutate between scan calls: triggers growth + rehash mid-scan.
        d.insert(key(added), added);
        ++added;
    } while (cursor != 0 && guard++ < 100'000);
    // SCAN guarantees: keys present for the whole scan are seen.
    for (int i = 0; i < 256; ++i) {
        EXPECT_TRUE(seen.contains(key(i).str())) << i;
    }
}

TEST(Dict, ClearEmpties) {
    Dict<int> d;
    for (int i = 0; i < 100; ++i) d.insert(key(i), i);
    d.clear();
    EXPECT_EQ(d.size(), 0u);
    EXPECT_FALSE(d.rehashing());
    EXPECT_TRUE(d.insert(key(1), 1));
}

TEST(DictHash, SpreadsKeys) {
    std::set<std::uint64_t> hashes;
    for (int i = 0; i < 1000; ++i) hashes.insert(dict_hash(key(i).view()));
    EXPECT_EQ(hashes.size(), 1000u); // no collisions in this tiny sample
}

TEST(DictHash, EmptyAndBinary) {
    EXPECT_NE(dict_hash(""), dict_hash(std::string_view("\0", 1)));
    EXPECT_NE(dict_hash("a"), dict_hash("b"));
}

/// Model check: drive the dict and a std::unordered_map with the same
/// random operations and compare after every step.
class DictModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DictModelTest, MatchesUnorderedMap) {
    sim::Rng rng(GetParam());
    Dict<int> d;
    std::unordered_map<std::string, int> model;
    for (int step = 0; step < 20'000; ++step) {
        const int k = static_cast<int>(rng.next_below(300));
        const int op = static_cast<int>(rng.next_below(4));
        switch (op) {
            case 0: { // insert
                const bool a = d.insert(key(k), step);
                const bool b = model.emplace(key(k).str(), step).second;
                ASSERT_EQ(a, b);
                break;
            }
            case 1: { // set
                d.set(key(k), step);
                model[key(k).str()] = step;
                break;
            }
            case 2: { // erase
                const bool a = d.erase(key(k));
                const bool b = model.erase(key(k).str()) > 0;
                ASSERT_EQ(a, b);
                break;
            }
            case 3: { // find
                int* a = d.find(key(k));
                auto it = model.find(key(k).str());
                ASSERT_EQ(a != nullptr, it != model.end());
                if (a != nullptr) {
                    ASSERT_EQ(*a, it->second);
                }
                break;
            }
        }
        ASSERT_EQ(d.size(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictModelTest,
                         ::testing::Values(1u, 17u, 23456u, 987654321u));

} // namespace
} // namespace skv::kv
