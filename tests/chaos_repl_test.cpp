#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos_support.hpp"
#include "check/history.hpp"
#include "check/linearize.hpp"
#include "kv/resp.hpp"
#include "net/fault.hpp"
#include "skv/cluster.hpp"
#include "workload/retry_client.hpp"

// Protocol-matrix chaos suite (DESIGN.md §13): every replication protocol
// Nic-KV can execute — async fan-out, chain, majority quorum — must pass
// the same fault scenarios under the linearizability checker, across
// three seeds each. The TEST blocks are grouped per protocol
// (ChaosReplFanout / ChaosReplChain / ChaosReplQuorum) so CI can run one
// protocol per sanitizer job with --gtest_filter.

namespace skv::offload {
namespace {

using chaos::CrashClusterOpts;
using chaos::Fleet;
using chaos::RawConn;
using chaos::gate_linearizable;
using chaos::make_crash_cluster;
using server::ReplicationMode;

CrashClusterOpts opts_for(ReplicationMode m, int n_slaves = 2) {
    CrashClusterOpts o;
    o.n_slaves = n_slaves;
    o.replication_mode = m;
    return o;
}

/// Which slave is the current chain tail (-1 when no chain exists). Node
/// names in the chain are full "<name>@<ep>" identities.
int tail_slave_index(Cluster& c) {
    const auto order = c.nic_kv()->chain_order();
    if (order.empty()) return -1;
    for (int i = 0; i < c.slave_count(); ++i) {
        if (order.back().rfind("slave" + std::to_string(i) + "@", 0) == 0) {
            return i;
        }
    }
    return -1;
}

/// Chain fleets read from the tail first (the protocol's read-path win);
/// the other protocols keep the sticky master-first rotation.
void maybe_route_reads(Cluster& c, Fleet& fleet, ReplicationMode m) {
    if (m != ReplicationMode::kChain) return;
    const int tail = tail_slave_index(c);
    if (tail >= 0) fleet.read_first = static_cast<std::size_t>(1 + tail);
}

/// Attach `spec` to every replication path: NIC <-> slave (fan-out,
/// probes, quorum acks), master <-> slave (direct sync, acks), and
/// slave <-> slave (chain relay hops). Client links stay clean.
void fault_all_repl_links(Cluster& c, const net::FaultSpec& spec) {
    auto& faults = c.fabric().faults();
    const auto nic_ep = c.nic_kv()->endpoint();
    const auto master_ep = c.master().node().ep;
    for (int i = 0; i < c.slave_count(); ++i) {
        const auto si = c.slave(i).node().ep;
        faults.set_link(nic_ep, si, spec);
        faults.set_link(master_ep, si, spec);
        for (int j = i + 1; j < c.slave_count(); ++j) {
            faults.set_link(si, c.slave(j).node().ep, spec);
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario bodies, parameterized by protocol. Each runs 3 seeds.

void run_network_faults(ReplicationMode m, std::uint64_t seed) {
    auto c = make_crash_cluster(seed, opts_for(m));
    net::FaultSpec mess;
    mess.drop_prob = 0.01;
    mess.dup_prob = 0.02;
    mess.jitter_prob = 0.2;
    mess.jitter_mean = sim::microseconds(200);
    fault_all_repl_links(*c, mess);

    Fleet fleet;
    maybe_route_reads(*c, fleet, m);
    fleet.spawn(*c, 3, 30, 0.5);
    ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
    EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
    EXPECT_GT(c->fabric().faults().stats().counter("drops"), 0u);
    gate_linearizable(*c, fleet.history,
                      std::string("net-faults/") + to_string(m));
    // Retransmission (and, for chain/quorum, stall resync) must finish the
    // job with the faults still active.
    c->sim().run_until(c->sim().now() + sim::seconds(10));
    EXPECT_TRUE(c->converged()) << "seed " << seed;
}

void run_partition_heal(ReplicationMode m, std::uint64_t seed) {
    auto c = make_crash_cluster(seed, opts_for(m));
    // Partition the chain tail when there is one (the most interesting
    // victim: its lease must lapse before the detector shrinks the commit
    // set); otherwise the last slave.
    int victim = m == ReplicationMode::kChain ? tail_slave_index(*c) : -1;
    if (victim < 0) victim = c->slave_count() - 1;

    Fleet fleet;
    maybe_route_reads(*c, fleet, m);
    fleet.spawn(*c, 3, 30, 0.5);
    c->sim().run_until(c->sim().now() + sim::milliseconds(300));
    ASSERT_FALSE(fleet.all_idle()) << "workload finished pre-fault";

    net::FaultSpec cut;
    cut.blocked = true;
    c->fabric().faults().set_endpoint(c->slave(victim).node().ep, cut);
    c->sim().run_until(c->sim().now() + sim::milliseconds(1500));
    c->fabric().faults().clear_endpoint(c->slave(victim).node().ep);

    ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
    EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
    gate_linearizable(*c, fleet.history,
                      std::string("partition-heal/") + to_string(m));
    c->sim().run_until(c->sim().now() + sim::seconds(10));
    EXPECT_TRUE(c->converged()) << "seed " << seed;
}

void run_master_crash(ReplicationMode m, std::uint64_t seed) {
    auto c = make_crash_cluster(seed, opts_for(m));
    Fleet fleet;
    maybe_route_reads(*c, fleet, m);
    fleet.spawn(*c, 3, 30, 0.5);
    c->sim().run_until(c->sim().now() + sim::milliseconds(400));
    ASSERT_FALSE(fleet.all_idle()) << "workload finished pre-crash";
    const auto crash_at = c->sim().now();
    c->crash_node(-1);

    ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
    EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
    EXPECT_EQ(c->nic_kv()->stats().counter("failovers"), 1u) << "seed " << seed;
    int promoted = 0;
    for (int i = 0; i < c->slave_count(); ++i) {
        if (c->slave(i).role() == server::Role::kMaster) ++promoted;
    }
    EXPECT_EQ(promoted, 1) << "seed " << seed;
    bool ok_after_crash = false;
    for (const auto& cl : fleet.clients) {
        if (cl->last_ok_at() > crash_at) ok_after_crash = true;
    }
    EXPECT_TRUE(ok_after_crash) << "seed " << seed;
    gate_linearizable(*c, fleet.history,
                      std::string("master-crash/") + to_string(m));
}

void run_slave_crash(ReplicationMode m, std::uint64_t seed) {
    auto c = make_crash_cluster(seed, opts_for(m));
    Fleet fleet;
    maybe_route_reads(*c, fleet, m);
    fleet.spawn(*c, 3, 30, 0.7);
    c->sim().run_until(c->sim().now() + sim::milliseconds(300));
    ASSERT_FALSE(fleet.all_idle()) << "workload finished pre-crash";
    c->crash_node(0);
    c->sim().run_until(c->sim().now() + sim::milliseconds(800));
    c->restart_node(0, server::KvServer::RecoveryMode::kWarm);

    ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
    EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
    // Commit gating was actually exercised (all three protocols park the
    // reply for at least the replication round trip).
    EXPECT_GT(c->master().stats().counter("writes_parked"), 0u)
        << "seed " << seed;
    gate_linearizable(*c, fleet.history,
                      std::string("slave-crash/") + to_string(m));
    c->sim().run_until(c->sim().now() + sim::seconds(10));
    EXPECT_TRUE(c->converged()) << "seed " << seed;
    EXPECT_TRUE(c->master().db().equals(c->slave(0).db())) << "seed " << seed;
}

void run_crash_plus_partition(ReplicationMode m, std::uint64_t seed) {
    auto c = make_crash_cluster(seed, opts_for(m, /*n_slaves=*/3));
    Fleet fleet;
    maybe_route_reads(*c, fleet, m);
    fleet.spawn(*c, 3, 30, 0.5);
    c->sim().run_until(c->sim().now() + sim::milliseconds(300));
    ASSERT_FALSE(fleet.all_idle()) << "workload finished pre-fault";

    net::FaultSpec cut;
    cut.blocked = true;
    c->fabric().faults().set_endpoint(c->slave(2).node().ep, cut);
    c->sim().run_until(c->sim().now() + sim::milliseconds(200));
    c->crash_node(1);
    c->sim().run_until(c->sim().now() + sim::seconds(1));
    c->restart_node(1, server::KvServer::RecoveryMode::kWarm);
    c->fabric().faults().clear_endpoint(c->slave(2).node().ep);

    // Quorum note: while 2 of 4 replicas are impaired the majority is
    // unreachable, so writes park and time out explicitly until the heal —
    // the gate checks consistency, not availability.
    ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
    EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
    gate_linearizable(*c, fleet.history,
                      std::string("crash+partition/") + to_string(m));
    c->sim().run_until(c->sim().now() + sim::seconds(10));
    EXPECT_TRUE(c->converged()) << "seed " << seed;
}

void run_restart_storm(ReplicationMode m, std::uint64_t seed) {
    auto c = make_crash_cluster(seed, opts_for(m, /*n_slaves=*/3));
    Fleet fleet;
    maybe_route_reads(*c, fleet, m);
    fleet.spawn(*c, 4, 40, 0.5, sim::milliseconds(60));
    Cluster::CrashStormSpec storm;
    storm.crashes = 6;
    storm.downtime = sim::milliseconds(400);
    EXPECT_GT(c->schedule_crash_storm(storm), 0) << "seed " << seed;

    ASSERT_TRUE(fleet.drain(*c, sim::seconds(90))) << "seed " << seed;
    EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
    EXPECT_EQ(c->master().role(), server::Role::kMaster) << "seed " << seed;
    gate_linearizable(*c, fleet.history,
                      std::string("restart-storm/") + to_string(m));
    c->sim().run_until(c->sim().now() + sim::seconds(10));
    EXPECT_TRUE(c->converged()) << "seed " << seed;
}

/// Double-run determinism: the full crash scenario — retries, backoff
/// jitter, failover, protocol-specific repair — is a pure function of the
/// seed under every protocol.
std::string determinism_fingerprint(ReplicationMode m, std::uint64_t seed) {
    auto c = make_crash_cluster(seed, opts_for(m));
    Fleet fleet;
    maybe_route_reads(*c, fleet, m);
    fleet.spawn(*c, 2, 20, 0.5);
    c->sim().run_until(c->sim().now() + sim::milliseconds(300));
    EXPECT_FALSE(fleet.all_idle());
    c->crash_node(-1);
    c->sim().run_until(c->sim().now() + sim::milliseconds(400));
    c->crash_node(0);
    c->sim().run_until(c->sim().now() + sim::milliseconds(500));
    c->restart_node(0, server::KvServer::RecoveryMode::kWarm);
    EXPECT_TRUE(fleet.drain(*c, sim::seconds(60)));
    std::string fp;
    fp += std::to_string(c->sim().events_executed()) + "|";
    fp += std::to_string(c->sim().trace_digest()) + "|";
    fp += fleet.history.to_json() + "|";
    fp += c->nic_kv()->stats().format() + "|";
    fp += std::to_string(fleet.ok());
    return fp;
}

// ---------------------------------------------------------------------------
// Fan-out (the PR2/PR6 baseline protocol, now selected explicitly).

TEST(ChaosReplFanout, NetworkFaultsLinearizable) {
    for (const std::uint64_t seed : {60011ull, 60012ull, 60013ull}) {
        run_network_faults(ReplicationMode::kFanout, seed);
    }
}
TEST(ChaosReplFanout, PartitionHealLinearizable) {
    for (const std::uint64_t seed : {60021ull, 60022ull, 60023ull}) {
        run_partition_heal(ReplicationMode::kFanout, seed);
    }
}
TEST(ChaosReplFanout, MasterCrashFailoverLinearizable) {
    for (const std::uint64_t seed : {60031ull, 60032ull, 60033ull}) {
        run_master_crash(ReplicationMode::kFanout, seed);
    }
}
TEST(ChaosReplFanout, SlaveCrashDuringReplLinearizable) {
    for (const std::uint64_t seed : {60041ull, 60042ull, 60043ull}) {
        run_slave_crash(ReplicationMode::kFanout, seed);
    }
}
TEST(ChaosReplFanout, CrashPlusPartitionLinearizable) {
    for (const std::uint64_t seed : {60051ull, 60052ull, 60053ull}) {
        run_crash_plus_partition(ReplicationMode::kFanout, seed);
    }
}
TEST(ChaosReplFanout, RestartStormLinearizable) {
    for (const std::uint64_t seed : {60061ull, 60062ull, 60063ull}) {
        run_restart_storm(ReplicationMode::kFanout, seed);
    }
}
TEST(ChaosReplFanout, DeterministicDoubleRun) {
    EXPECT_EQ(determinism_fingerprint(ReplicationMode::kFanout, 71),
              determinism_fingerprint(ReplicationMode::kFanout, 71));
    EXPECT_NE(determinism_fingerprint(ReplicationMode::kFanout, 71),
              determinism_fingerprint(ReplicationMode::kFanout, 72));
}

// ---------------------------------------------------------------------------
// Chain replication: NIC -> head -> ... -> tail, tail serves reads.

TEST(ChaosReplChain, NetworkFaultsLinearizable) {
    for (const std::uint64_t seed : {61011ull, 61012ull, 61013ull}) {
        run_network_faults(ReplicationMode::kChain, seed);
    }
}
TEST(ChaosReplChain, PartitionHealLinearizable) {
    for (const std::uint64_t seed : {61021ull, 61022ull, 61023ull}) {
        run_partition_heal(ReplicationMode::kChain, seed);
    }
}
TEST(ChaosReplChain, MasterCrashFailoverLinearizable) {
    for (const std::uint64_t seed : {61031ull, 61032ull, 61033ull}) {
        run_master_crash(ReplicationMode::kChain, seed);
    }
}
TEST(ChaosReplChain, SlaveCrashDuringReplLinearizable) {
    for (const std::uint64_t seed : {61041ull, 61042ull, 61043ull}) {
        run_slave_crash(ReplicationMode::kChain, seed);
    }
}
TEST(ChaosReplChain, CrashPlusPartitionLinearizable) {
    for (const std::uint64_t seed : {61051ull, 61052ull, 61053ull}) {
        run_crash_plus_partition(ReplicationMode::kChain, seed);
    }
}
TEST(ChaosReplChain, RestartStormLinearizable) {
    for (const std::uint64_t seed : {61061ull, 61062ull, 61063ull}) {
        run_restart_storm(ReplicationMode::kChain, seed);
    }
}
TEST(ChaosReplChain, DeterministicDoubleRun) {
    EXPECT_EQ(determinism_fingerprint(ReplicationMode::kChain, 81),
              determinism_fingerprint(ReplicationMode::kChain, 81));
    EXPECT_NE(determinism_fingerprint(ReplicationMode::kChain, 81),
              determinism_fingerprint(ReplicationMode::kChain, 82));
}

// Steady state: the NIC pays one send per write regardless of chain
// length, frames relay member-to-member, and the tail genuinely serves
// reads (the fleet routes them there) — all under the checker.
TEST(ChaosReplChain, TailServesLinearizableReads) {
    auto c = make_crash_cluster(61071, opts_for(ReplicationMode::kChain));
    ASSERT_EQ(c->nic_kv()->chain_order().size(), 2u);
    Fleet fleet;
    maybe_route_reads(*c, fleet, ReplicationMode::kChain);
    ASSERT_NE(fleet.read_first, SIZE_MAX);
    fleet.spawn(*c, 3, 30, 0.3);
    ASSERT_TRUE(fleet.drain(*c, sim::seconds(60)));
    EXPECT_EQ(fleet.history.size(), fleet.ops_issued);

    std::uint64_t tail_reads = 0;
    std::uint64_t relayed = 0;
    for (int i = 0; i < c->slave_count(); ++i) {
        tail_reads += c->slave(i).stats().counter("chain_tail_reads");
        relayed += c->slave(i).stats().counter("chain_forwards");
    }
    EXPECT_GT(tail_reads, 0u) << "reads never reached the tail";
    EXPECT_GT(relayed, 0u) << "no frame was relayed down the chain";
    // One NIC send per replication request: the chain's bandwidth win.
    EXPECT_EQ(c->nic_kv()->stats().counter("fanout_sends"),
              c->nic_kv()->stats().counter("repl_requests"));
    gate_linearizable(*c, fleet.history, "chain-tail-reads");
}

// Consistency-trap self-test: with the protocol's signature bug injected
// — a tail lease far above the detector's invalidation latency — an
// isolated tail keeps serving a value the re-spliced chain has already
// overwritten, and the checker MUST reject the recorded history.
TEST(ChaosReplChain, CheckerRejectsInjectedStaleTailRead) {
    CrashClusterOpts o = opts_for(ReplicationMode::kChain);
    o.chain_read_lease = sim::seconds(60); // the injected bug
    auto c = make_crash_cluster(61081, o);
    const int tail = tail_slave_index(*c);
    ASSERT_GE(tail, 0);
    const int head = tail == 0 ? 1 : 0;

    check::History hist;
    auto record = [&](check::OpType type, const std::string& value,
                      std::int64_t invoke, std::int64_t complete) {
        check::Op op;
        op.client = type == check::OpType::kWrite ? 1 : 2;
        op.seq = static_cast<std::uint64_t>(invoke);
        op.type = type;
        op.key = "tk";
        op.value = value;
        op.invoke_ns = invoke;
        op.complete_ns = complete;
        hist.record(op);
    };

    RawConn master(*c, c->master().node().ep, c->master().config().port, "w");
    ASSERT_TRUE(master.connected());
    std::int64_t t0 = c->sim().now().ns();
    EXPECT_TRUE(master.call({"SET", "tk", "v1"}).is_ok());
    record(check::OpType::kWrite, "v1", t0, c->sim().now().ns());
    c->sim().run_until(c->sim().now() + sim::seconds(1));
    ASSERT_TRUE(c->converged());

    // Isolate the tail from the NIC, the master, and its chain
    // predecessor — clients can still reach it.
    net::FaultSpec cut;
    cut.blocked = true;
    auto& faults = c->fabric().faults();
    const auto tail_ep = c->slave(tail).node().ep;
    for (const auto peer : {c->nic_kv()->endpoint(), c->master().node().ep,
                            c->slave(head).node().ep}) {
        faults.set_pair(peer, tail_ep, cut);
        faults.set_pair(tail_ep, peer, cut);
    }

    // Overwrite through the surviving chain. The write parks on the full
    // commit set until the detector drops the tail, so retry until the
    // re-spliced chain commits it (same value — idempotent).
    t0 = c->sim().now().ns();
    bool v2_ok = false;
    for (int i = 0; i < 20 && !v2_ok; ++i) {
        v2_ok = master.call({"SET", "tk", "v2"}).is_ok();
    }
    ASSERT_TRUE(v2_ok) << "re-spliced chain never committed the overwrite";
    record(check::OpType::kWrite, "v2", t0, c->sim().now().ns());
    EXPECT_EQ(c->nic_kv()->valid_slaves(), 1);

    // The isolated tail still thinks its lease is fresh (60s bug) and
    // serves the stale value.
    RawConn stale(*c, tail_ep, c->slave(tail).config().port, "r");
    ASSERT_TRUE(stale.connected());
    t0 = c->sim().now().ns();
    const auto v = stale.call({"GET", "tk"});
    ASSERT_EQ(v.kind, kv::resp::Value::Kind::kBulk);
    EXPECT_EQ(v.str, "v1") << "expected the injected stale tail read";
    record(check::OpType::kRead, v.str, t0, c->sim().now().ns());

    const auto res = check::check_history(hist);
    EXPECT_FALSE(res.linearizable)
        << "checker failed to reject an injected stale tail read";
    EXPECT_EQ(res.offending_key, "tk");
}

// The production lease is shorter than the detector's invalidation
// latency: the same isolation makes the tail refuse reads instead.
TEST(ChaosReplChain, DefaultLeaseRefusesIsolatedTailReads) {
    auto c = make_crash_cluster(61091, opts_for(ReplicationMode::kChain));
    const int tail = tail_slave_index(*c);
    ASSERT_GE(tail, 0);
    const int head = tail == 0 ? 1 : 0;
    RawConn master(*c, c->master().node().ep, c->master().config().port, "w");
    ASSERT_TRUE(master.connected());
    EXPECT_TRUE(master.call({"SET", "tk", "v1"}).is_ok());
    c->sim().run_until(c->sim().now() + sim::seconds(1));
    ASSERT_TRUE(c->converged());

    net::FaultSpec cut;
    cut.blocked = true;
    auto& faults = c->fabric().faults();
    const auto tail_ep = c->slave(tail).node().ep;
    for (const auto peer : {c->nic_kv()->endpoint(), c->master().node().ep,
                            c->slave(head).node().ep}) {
        faults.set_pair(peer, tail_ep, cut);
        faults.set_pair(tail_ep, peer, cut);
    }
    // Past the lease (400ms) but with the isolation still in place.
    c->sim().run_until(c->sim().now() + sim::seconds(2));

    RawConn reader(*c, tail_ep, c->slave(tail).config().port, "r");
    ASSERT_TRUE(reader.connected());
    const auto v = reader.call({"GET", "tk"});
    EXPECT_TRUE(v.is_error()) << "isolated tail served a read past its lease";
    EXPECT_EQ(v.str.find("READONLY"), 0u);
}

// ---------------------------------------------------------------------------
// Majority quorum: NIC-side ack aggregation releases commits.

TEST(ChaosReplQuorum, NetworkFaultsLinearizable) {
    for (const std::uint64_t seed : {62011ull, 62012ull, 62013ull}) {
        run_network_faults(ReplicationMode::kQuorum, seed);
    }
}
TEST(ChaosReplQuorum, PartitionHealLinearizable) {
    for (const std::uint64_t seed : {62021ull, 62022ull, 62023ull}) {
        run_partition_heal(ReplicationMode::kQuorum, seed);
    }
}
TEST(ChaosReplQuorum, MasterCrashFailoverLinearizable) {
    for (const std::uint64_t seed : {62031ull, 62032ull, 62033ull}) {
        run_master_crash(ReplicationMode::kQuorum, seed);
    }
}
TEST(ChaosReplQuorum, SlaveCrashDuringReplLinearizable) {
    for (const std::uint64_t seed : {62041ull, 62042ull, 62043ull}) {
        run_slave_crash(ReplicationMode::kQuorum, seed);
    }
}
TEST(ChaosReplQuorum, CrashPlusPartitionLinearizable) {
    for (const std::uint64_t seed : {62051ull, 62052ull, 62053ull}) {
        run_crash_plus_partition(ReplicationMode::kQuorum, seed);
    }
}
TEST(ChaosReplQuorum, RestartStormLinearizable) {
    for (const std::uint64_t seed : {62061ull, 62062ull, 62063ull}) {
        run_restart_storm(ReplicationMode::kQuorum, seed);
    }
}
TEST(ChaosReplQuorum, DeterministicDoubleRun) {
    EXPECT_EQ(determinism_fingerprint(ReplicationMode::kQuorum, 91),
              determinism_fingerprint(ReplicationMode::kQuorum, 91));
    EXPECT_NE(determinism_fingerprint(ReplicationMode::kQuorum, 91),
              determinism_fingerprint(ReplicationMode::kQuorum, 92));
}

// Steady state: commits are released by the NIC's watermark, not by the
// master's own ack counting.
TEST(ChaosReplQuorum, WatermarkReleasesCommits) {
    auto c = make_crash_cluster(62071, opts_for(ReplicationMode::kQuorum));
    RawConn conn(*c, c->master().node().ep, c->master().config().port, "q");
    ASSERT_TRUE(conn.connected());
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(conn.call({"SET", "qk" + std::to_string(i), "v"}).is_ok());
    }
    c->sim().run_until(c->sim().now() + sim::seconds(1));
    EXPECT_GT(c->nic_kv()->stats().counter("quorum_acks"), 0u);
    EXPECT_GT(c->nic_kv()->stats().counter("quorum_commits"), 0u);
    EXPECT_GT(c->master().stats().counter("quorum_commit_updates"), 0u);
    EXPECT_EQ(c->nic_kv()->quorum_watermark(), c->master().master_offset());
    EXPECT_GE(c->master().quorum_commit_offset(), c->master().master_offset());
}

// Consistency-trap self-test: with the protocol's signature bug injected
// — the NIC accepting zero slave acks as a majority (split-brain) — a
// write "commits" on the master's copy alone, the master dies, failover
// promotes a replica that never saw it, and the checker MUST reject the
// resulting stale read.
TEST(ChaosReplQuorum, CheckerRejectsInjectedSplitBrainAck) {
    CrashClusterOpts o = opts_for(ReplicationMode::kQuorum);
    o.quorum_slave_acks_override = 0; // the injected bug
    auto c = make_crash_cluster(62081, o);

    check::History hist;
    auto record = [&](check::OpType type, const std::string& value,
                      std::int64_t invoke, std::int64_t complete) {
        check::Op op;
        op.client = type == check::OpType::kWrite ? 1 : 2;
        op.seq = static_cast<std::uint64_t>(invoke);
        op.type = type;
        op.key = "qk";
        op.value = value;
        op.invoke_ns = invoke;
        op.complete_ns = complete;
        hist.record(op);
    };

    RawConn master(*c, c->master().node().ep, c->master().config().port, "w");
    ASSERT_TRUE(master.connected());
    std::int64_t t0 = c->sim().now().ns();
    EXPECT_TRUE(master.call({"SET", "qk", "v1"}).is_ok());
    record(check::OpType::kWrite, "v1", t0, c->sim().now().ns());
    c->sim().run_until(c->sim().now() + sim::seconds(1));
    ASSERT_TRUE(c->converged());

    // Both replicas die; the zero-ack "majority" still commits the
    // overwrite on the master's copy alone.
    c->crash_node(0);
    c->crash_node(1);
    c->sim().run_until(c->sim().now() + sim::milliseconds(50));
    t0 = c->sim().now().ns();
    const auto v2 = master.call({"SET", "qk", "v2"});
    ASSERT_TRUE(v2.is_ok()) << "split-brain override failed to commit solo";
    record(check::OpType::kWrite, "v2", t0, c->sim().now().ns());

    // The master dies with the only copy of v2; the replicas come back
    // and one of them — holding only v1 — is promoted.
    c->crash_node(-1);
    c->sim().run_until(c->sim().now() + sim::milliseconds(200));
    c->restart_node(0, server::KvServer::RecoveryMode::kWarm);
    c->restart_node(1, server::KvServer::RecoveryMode::kWarm);
    c->sim().run_until(c->sim().now() + sim::seconds(4));
    ASSERT_EQ(c->nic_kv()->stats().counter("failovers"), 1u);
    int promoted = -1;
    for (int i = 0; i < c->slave_count(); ++i) {
        if (c->slave(i).role() == server::Role::kMaster) promoted = i;
    }
    ASSERT_GE(promoted, 0) << "no stand-in was promoted";

    RawConn stale(*c, c->slave(promoted).node().ep,
                  c->slave(promoted).config().port, "r");
    ASSERT_TRUE(stale.connected());
    t0 = c->sim().now().ns();
    const auto v = stale.call({"GET", "qk"});
    ASSERT_EQ(v.kind, kv::resp::Value::Kind::kBulk);
    EXPECT_EQ(v.str, "v1") << "expected the acked-write loss to surface";
    record(check::OpType::kRead, v.str, t0, c->sim().now().ns());

    const auto res = check::check_history(hist);
    EXPECT_FALSE(res.linearizable)
        << "checker failed to reject an injected split-brain ack";
    EXPECT_EQ(res.offending_key, "qk");
}

} // namespace
} // namespace skv::offload
