#include <gtest/gtest.h>

#include "skv/cluster.hpp"
#include "workload/runner.hpp"

namespace skv {
namespace {

/// Whole-stack determinism: the property every experiment in this
/// repository relies on. A full workload run — cluster bring-up, RDMA
/// handshakes, jittered costs, closed-loop clients — must be bit-for-bit
/// reproducible from its seed.

workload::RunResult run_full(std::uint64_t seed, bool offload,
                             server::Transport transport) {
    offload::ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = 3;
    cfg.offload = offload;
    cfg.transport = transport;
    offload::Cluster c(cfg);
    c.start();
    workload::RunOptions opts;
    opts.clients = 4;
    opts.warmup = sim::milliseconds(50);
    opts.measure = sim::milliseconds(400);
    return workload::run_workload(c, opts);
}

void expect_identical(const workload::RunResult& a,
                      const workload::RunResult& b) {
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.errors, b.errors);
    EXPECT_DOUBLE_EQ(a.throughput_kops, b.throughput_kops);
    EXPECT_DOUBLE_EQ(a.mean_us, b.mean_us);
    EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
    EXPECT_DOUBLE_EQ(a.max_us, b.max_us);
    EXPECT_DOUBLE_EQ(a.master_cpu_util, b.master_cpu_util);
}

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<bool, server::Transport>> {};

TEST_P(DeterminismTest, IdenticalResultsForIdenticalSeeds) {
    const auto [offload, transport] = GetParam();
    const auto a = run_full(1234, offload, transport);
    const auto b = run_full(1234, offload, transport);
    expect_identical(a, b);
}

TEST_P(DeterminismTest, DifferentSeedsDiverge) {
    const auto [offload, transport] = GetParam();
    const auto a = run_full(1, offload, transport);
    const auto b = run_full(2, offload, transport);
    // Throughput will be close, but the exact op count of a jittered run
    // differing by seed matching exactly would be a one-in-millions fluke.
    EXPECT_NE(a.ops, b.ops);
}

std::string system_name(
    const ::testing::TestParamInfo<std::tuple<bool, server::Transport>>& info) {
    if (std::get<0>(info.param)) return "Skv";
    return std::get<1>(info.param) == server::Transport::kTcp ? "TcpRedis"
                                                              : "RdmaRedis";
}

INSTANTIATE_TEST_SUITE_P(
    Systems, DeterminismTest,
    ::testing::Values(
        std::make_tuple(false, server::Transport::kTcp),
        std::make_tuple(false, server::Transport::kRdma),
        std::make_tuple(true, server::Transport::kRdma)),
    system_name);

TEST(DeterminismFaults, CrashRecoveryRunsReproduce) {
    auto run = [](std::uint64_t seed) {
        offload::ClusterConfig cfg;
        cfg.seed = seed;
        cfg.n_slaves = 2;
        cfg.offload = true;
        offload::Cluster c(cfg);
        c.start();
        workload::RunOptions opts;
        opts.clients = 2;
        opts.warmup = sim::milliseconds(20);
        opts.measure = sim::seconds(5);
        opts.faults.push_back({sim::seconds(1), 0, false});
        opts.faults.push_back({sim::seconds(3), 0, true});
        const auto r = workload::run_workload(c, opts);
        return std::tuple{r.ops, r.errors, c.sim().events_executed(),
                          c.slave(0).slave_applied_offset()};
    };
    EXPECT_EQ(run(55), run(55));
}

} // namespace
} // namespace skv
