#include <gtest/gtest.h>

#include <set>

#include "server/protocol.hpp"

namespace skv::server {
namespace {

// Driven by kNodeMsgTypes so a newly added enum value is covered the moment
// it lands in the authoritative list (and simlint3's unhandled-tag rule
// fails if the list itself goes stale).
TEST(NodeMsg, RoundTripAllTypes) {
    for (const auto type : kNodeMsgTypes) {
        NodeMsg m{type, 0x1122334455667788LL, "payload bytes"};
        const auto decoded = NodeMsg::decode(m.encode());
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->type, type);
        EXPECT_EQ(decoded->field, 0x1122334455667788LL);
        EXPECT_EQ(decoded->body, "payload bytes");
    }
}

TEST(NodeMsg, TagCharsAreUnique) {
    // A colliding tag byte would silently misroute frames: decode() keys on
    // the first wire byte alone.
    std::set<char> seen;
    for (const auto type : kNodeMsgTypes) {
        const char tag = static_cast<char>(type);
        EXPECT_TRUE(seen.insert(tag).second)
            << "duplicate NodeMsg tag char '" << tag << "'";
    }
    EXPECT_EQ(seen.size(), std::size(kNodeMsgTypes));
}

TEST(NodeMsg, DecodeAcceptsExactlyTheListedTags) {
    std::set<char> valid;
    for (const auto type : kNodeMsgTypes) valid.insert(static_cast<char>(type));
    for (int c = 0; c < 256; ++c) {
        std::string wire(9, '\0');
        wire[0] = static_cast<char>(c);
        const auto d = NodeMsg::decode(wire);
        EXPECT_EQ(d.has_value(), valid.count(static_cast<char>(c)) != 0)
            << "tag byte " << c;
        if (d) EXPECT_EQ(static_cast<char>(d->type), static_cast<char>(c));
    }
}

TEST(NodeMsg, NegativeField) {
    NodeMsg m{NodeMsg::Type::kAck, -42, ""};
    const auto d = NodeMsg::decode(m.encode());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->field, -42);
}

TEST(NodeMsg, BinaryBody) {
    std::string body;
    for (int i = 0; i < 256; ++i) body.push_back(static_cast<char>(i));
    NodeMsg m{NodeMsg::Type::kFullSync, 7, body};
    const auto d = NodeMsg::decode(m.encode());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->body, body);
}

TEST(NodeMsg, EmptyBody) {
    NodeMsg m{NodeMsg::Type::kProbe, 3, ""};
    const auto wire = m.encode();
    EXPECT_EQ(wire.size(), 9u);
    const auto d = NodeMsg::decode(wire);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->body.empty());
}

TEST(NodeMsg, TooShortRejected) {
    EXPECT_FALSE(NodeMsg::decode("").has_value());
    EXPECT_FALSE(NodeMsg::decode("R1234567").has_value()); // 8 bytes
}

TEST(NodeMsg, UnknownTagRejected) {
    std::string wire = NodeMsg{NodeMsg::Type::kProbe, 0, ""}.encode();
    wire[0] = 'z';
    EXPECT_FALSE(NodeMsg::decode(wire).has_value());
}

} // namespace
} // namespace skv::server
