#include <gtest/gtest.h>

#include "server/protocol.hpp"

namespace skv::server {
namespace {

TEST(NodeMsg, RoundTripAllTypes) {
    for (const auto type :
         {NodeMsg::Type::kInitSync, NodeMsg::Type::kSyncNotify,
          NodeMsg::Type::kFullSync, NodeMsg::Type::kBacklog,
          NodeMsg::Type::kReplData, NodeMsg::Type::kAck, NodeMsg::Type::kProbe,
          NodeMsg::Type::kProbeAck, NodeMsg::Type::kResyncRequest,
          NodeMsg::Type::kPromote, NodeMsg::Type::kDemote, NodeMsg::Type::kSync,
          NodeMsg::Type::kSlaveCount}) {
        NodeMsg m{type, 0x1122334455667788LL, "payload bytes"};
        const auto decoded = NodeMsg::decode(m.encode());
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->type, type);
        EXPECT_EQ(decoded->field, 0x1122334455667788LL);
        EXPECT_EQ(decoded->body, "payload bytes");
    }
}

TEST(NodeMsg, NegativeField) {
    NodeMsg m{NodeMsg::Type::kAck, -42, ""};
    const auto d = NodeMsg::decode(m.encode());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->field, -42);
}

TEST(NodeMsg, BinaryBody) {
    std::string body;
    for (int i = 0; i < 256; ++i) body.push_back(static_cast<char>(i));
    NodeMsg m{NodeMsg::Type::kFullSync, 7, body};
    const auto d = NodeMsg::decode(m.encode());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->body, body);
}

TEST(NodeMsg, EmptyBody) {
    NodeMsg m{NodeMsg::Type::kProbe, 3, ""};
    const auto wire = m.encode();
    EXPECT_EQ(wire.size(), 9u);
    const auto d = NodeMsg::decode(wire);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->body.empty());
}

TEST(NodeMsg, TooShortRejected) {
    EXPECT_FALSE(NodeMsg::decode("").has_value());
    EXPECT_FALSE(NodeMsg::decode("R1234567").has_value()); // 8 bytes
}

TEST(NodeMsg, UnknownTagRejected) {
    std::string wire = NodeMsg{NodeMsg::Type::kProbe, 0, ""}.encode();
    wire[0] = 'z';
    EXPECT_FALSE(NodeMsg::decode(wire).has_value());
}

} // namespace
} // namespace skv::server
