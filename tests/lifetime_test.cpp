#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kv/resp.hpp"
#include "net/channel.hpp"
#include "rdma/verbs.hpp"
#include "skv/cluster.hpp"

namespace skv::offload {
namespace {

// Lifetime regression suite: connection object graphs must be reclaimed
// *while the simulation is still running*, at the moment their link dies —
// not at process exit when the Cluster is torn down. Before the weak-capture
// refactor the conn->channel->handler->conn shared_ptr cycle kept every
// connection ever made alive forever; these tests pin the fix with the
// live-object counters on Channel, QueuePair and MemoryRegion.

ClusterConfig base_config(server::Transport transport, bool offload,
                          int slaves) {
    ClusterConfig cfg;
    cfg.seed = 0x11fe;
    cfg.n_slaves = slaves;
    cfg.transport = transport;
    cfg.offload = offload;
    return cfg;
}

void settle(Cluster& c, sim::Duration d) {
    c.sim().run_until(c.sim().now() + d);
}

// A closed TCP client connection must be fully reclaimed on both sides:
// the server's ClientConn record (pruned by cron once the FIN lands) and
// the channel objects themselves, mid-simulation.
TEST(LifetimeTest, TcpClientCloseReclaimsBothSides) {
    Cluster c(base_config(server::Transport::kTcp, false, 1));
    c.start();

    const long channels_before = net::Channel::live_count();
    const std::size_t conns_before = c.master().client_conns();

    auto node = c.add_client_host("probe");
    net::ChannelPtr ch;
    c.connect_client(node, [&](net::ChannelPtr got) { ch = std::move(got); });
    settle(c, sim::milliseconds(50));
    ASSERT_NE(ch, nullptr);
    EXPECT_GT(net::Channel::live_count(), channels_before);
    EXPECT_EQ(c.master().client_conns(), conns_before + 1);

    // Exercise the link so a handler has actually been stored and invoked.
    std::string reply;
    ch->set_on_message([&](std::string payload) { reply = std::move(payload); });
    ch->send(kv::resp::command({"SET", "k", "v"}));
    settle(c, sim::milliseconds(50));
    EXPECT_FALSE(reply.empty());

    ch->close();
    ch.reset();
    settle(c, sim::milliseconds(500)); // FIN + cron prune

    EXPECT_GT(c.sim().events_pending(), 0u); // still mid-simulation
    EXPECT_EQ(c.master().client_conns(), conns_before);
    EXPECT_EQ(net::Channel::live_count(), channels_before);
}

// Crashing a slave in the offloaded cluster must release RDMA state on
// every peer while the cluster keeps running: the slave drops its rings at
// crash time, Nic-KV closes its fan-out channel when the failure detector
// declares death, and the master's direct sync channel breaks via RTO.
TEST(LifetimeTest, OffloadSlaveCrashReleasesRdmaState) {
    Cluster c(base_config(server::Transport::kRdma, true, 3));
    c.start();
    ASSERT_TRUE(c.converged());

    const long channels_before = net::Channel::live_count();
    const long qps_before = rdma::QueuePair::live_count();
    const long mrs_before = rdma::MemoryRegion::live_count();

    c.slave(0).crash();
    settle(c, sim::seconds(5)); // probes time out, links break, teardown runs

    EXPECT_GT(c.sim().events_pending(), 0u); // still mid-simulation
    EXPECT_LT(net::Channel::live_count(), channels_before);
    EXPECT_LT(rdma::QueuePair::live_count(), qps_before);
    EXPECT_LT(rdma::MemoryRegion::live_count(), mrs_before);

    // The surviving replicas still make progress.
    const auto offset_before = c.master().master_offset();
    auto node = c.add_client_host("writer");
    net::ChannelPtr ch;
    c.connect_client(node, [&](net::ChannelPtr got) { ch = std::move(got); });
    settle(c, sim::milliseconds(50));
    ASSERT_NE(ch, nullptr);
    ch->send(kv::resp::command({"SET", "after-crash", "1"}));
    settle(c, sim::milliseconds(200));
    EXPECT_GT(c.master().master_offset(), offset_before);
}

// Re-pointing a baseline slave at its master over and over must not
// accumulate connection state: each slaveof_baseline releases the previous
// master link (slave side) and the superseded sync channel (master side).
TEST(LifetimeTest, RepeatedSlaveofDoesNotAccumulateChannels) {
    Cluster c(base_config(server::Transport::kRdma, false, 1));
    c.start();
    ASSERT_TRUE(c.converged());

    const auto master_ep = c.master().node().ep;
    const auto node_port =
        static_cast<std::uint16_t>(c.master().config().port + 1);

    c.slave(0).slaveof_baseline(master_ep, node_port);
    settle(c, sim::seconds(2));
    const long channels_after_first = net::Channel::live_count();
    const long qps_after_first = rdma::QueuePair::live_count();

    for (int i = 0; i < 5; ++i) {
        c.slave(0).slaveof_baseline(master_ep, node_port);
        settle(c, sim::seconds(2));
    }

    // Pre-fix this grew by >= 2 channels per re-point (both sides leaked).
    EXPECT_LE(net::Channel::live_count(), channels_after_first + 2);
    EXPECT_LE(rdma::QueuePair::live_count(), qps_after_first + 2);
    EXPECT_TRUE(c.converged());
}

// A rejected connection attempt (nobody listening on the port) must tear
// down the initiator's pre-allocated ring: CQs, QP-less channel, and the
// receive MR that was registered for the handshake.
TEST(LifetimeTest, ConnectionRejectReclaimsInitiatorRing) {
    Cluster c(base_config(server::Transport::kRdma, false, 1));
    c.start();

    const long channels_before = net::Channel::live_count();
    const long mrs_before = rdma::MemoryRegion::live_count();

    auto node = c.add_client_host("dialer");
    bool called = false;
    net::ChannelPtr got;
    c.cm().connect(node, c.master().node().ep, /*port=*/59999,
                   [&](net::ChannelPtr ch) {
                       called = true;
                       got = std::move(ch);
                   });
    settle(c, sim::milliseconds(100));

    EXPECT_TRUE(called);
    EXPECT_EQ(got, nullptr);
    EXPECT_EQ(net::Channel::live_count(), channels_before);
    EXPECT_EQ(rdma::MemoryRegion::live_count(), mrs_before);
}

} // namespace
} // namespace skv::offload
