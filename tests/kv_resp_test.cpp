#include <gtest/gtest.h>

#include "kv/resp.hpp"

namespace skv::kv::resp {
namespace {

TEST(RespEncode, Primitives) {
    EXPECT_EQ(simple("OK"), "+OK\r\n");
    EXPECT_EQ(error("ERR boom"), "-ERR boom\r\n");
    EXPECT_EQ(integer(42), ":42\r\n");
    EXPECT_EQ(integer(-1), ":-1\r\n");
    EXPECT_EQ(bulk("hi"), "$2\r\nhi\r\n");
    EXPECT_EQ(bulk(""), "$0\r\n\r\n");
    EXPECT_EQ(null_bulk(), "$-1\r\n");
    EXPECT_EQ(null_array(), "*-1\r\n");
    EXPECT_EQ(array_header(3), "*3\r\n");
}

TEST(RespEncode, Command) {
    EXPECT_EQ(command({"GET", "k"}), "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
}

TEST(RequestParser, SingleMultibulk) {
    RequestParser p;
    p.feed("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
    std::vector<std::string> argv;
    ASSERT_EQ(p.next(&argv), Status::kOk);
    EXPECT_EQ(argv, (std::vector<std::string>{"SET", "k", "v"}));
    EXPECT_EQ(p.next(&argv), Status::kNeedMore);
}

TEST(RequestParser, PipelinedCommands) {
    RequestParser p;
    p.feed(command({"SET", "a", "1"}) + command({"GET", "a"}));
    std::vector<std::string> argv;
    ASSERT_EQ(p.next(&argv), Status::kOk);
    EXPECT_EQ(argv[0], "SET");
    ASSERT_EQ(p.next(&argv), Status::kOk);
    EXPECT_EQ(argv[0], "GET");
    EXPECT_EQ(p.next(&argv), Status::kNeedMore);
}

TEST(RequestParser, ByteByByteFeeding) {
    const std::string wire = command({"SET", "key", "value"});
    RequestParser p;
    std::vector<std::string> argv;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        p.feed(wire.substr(i, 1));
        ASSERT_EQ(p.next(&argv), Status::kNeedMore) << "at byte " << i;
    }
    p.feed(wire.substr(wire.size() - 1));
    ASSERT_EQ(p.next(&argv), Status::kOk);
    EXPECT_EQ(argv, (std::vector<std::string>{"SET", "key", "value"}));
}

TEST(RequestParser, BinarySafeBulk) {
    RequestParser p;
    const std::string payload("a\0\r\nb", 5);
    p.feed(command({"SET", "k", payload}));
    std::vector<std::string> argv;
    ASSERT_EQ(p.next(&argv), Status::kOk);
    EXPECT_EQ(argv[2], payload);
}

TEST(RequestParser, InlineCommand) {
    RequestParser p;
    p.feed("PING\r\n");
    std::vector<std::string> argv;
    ASSERT_EQ(p.next(&argv), Status::kOk);
    EXPECT_EQ(argv, std::vector<std::string>{"PING"});
}

TEST(RequestParser, InlineWithQuotes) {
    RequestParser p;
    p.feed("SET k \"a b\"\r\n");
    std::vector<std::string> argv;
    ASSERT_EQ(p.next(&argv), Status::kOk);
    EXPECT_EQ(argv[2], "a b");
}

TEST(RequestParser, InlineUnbalancedQuotesError) {
    RequestParser p;
    p.feed("SET k \"oops\r\n");
    std::vector<std::string> argv;
    std::string err;
    EXPECT_EQ(p.next(&argv, &err), Status::kError);
    EXPECT_NE(err.find("quotes"), std::string::npos);
}

TEST(RequestParser, InvalidMultibulkLength) {
    RequestParser p;
    p.feed("*abc\r\n");
    std::vector<std::string> argv;
    std::string err;
    EXPECT_EQ(p.next(&argv, &err), Status::kError);
}

TEST(RequestParser, OversizedMultibulkRejected) {
    RequestParser p;
    p.feed("*99999999\r\n");
    std::vector<std::string> argv;
    EXPECT_EQ(p.next(&argv), Status::kError);
}

TEST(RequestParser, MissingBulkDollarError) {
    RequestParser p;
    p.feed("*1\r\n:3\r\n");
    std::vector<std::string> argv;
    std::string err;
    EXPECT_EQ(p.next(&argv, &err), Status::kError);
    EXPECT_NE(err.find("'$'"), std::string::npos);
}

TEST(RequestParser, BulkNotCrlfTerminated) {
    RequestParser p;
    p.feed("*1\r\n$3\r\nabcXX");
    std::vector<std::string> argv;
    EXPECT_EQ(p.next(&argv), Status::kError);
}

TEST(RequestParser, EmptyArrayIsSkipped) {
    RequestParser p;
    p.feed("*0\r\n" + command({"PING"}));
    std::vector<std::string> argv;
    ASSERT_EQ(p.next(&argv), Status::kOk);
    EXPECT_EQ(argv[0], "PING");
}

TEST(ReplyParser, SimpleKinds) {
    ReplyParser p;
    p.feed("+OK\r\n-ERR x\r\n:7\r\n$3\r\nabc\r\n$-1\r\n");
    Value v;
    ASSERT_EQ(p.next(&v), Status::kOk);
    EXPECT_TRUE(v.is_ok());
    ASSERT_EQ(p.next(&v), Status::kOk);
    EXPECT_TRUE(v.is_error());
    EXPECT_EQ(v.str, "ERR x");
    ASSERT_EQ(p.next(&v), Status::kOk);
    EXPECT_EQ(v.num, 7);
    ASSERT_EQ(p.next(&v), Status::kOk);
    EXPECT_EQ(v.str, "abc");
    ASSERT_EQ(p.next(&v), Status::kOk);
    EXPECT_EQ(v.kind, Value::Kind::kNull);
    EXPECT_EQ(p.next(&v), Status::kNeedMore);
}

TEST(ReplyParser, NestedArray) {
    ReplyParser p;
    p.feed("*2\r\n*2\r\n:1\r\n:2\r\n$1\r\nx\r\n");
    Value v;
    ASSERT_EQ(p.next(&v), Status::kOk);
    ASSERT_EQ(v.kind, Value::Kind::kArray);
    ASSERT_EQ(v.elems.size(), 2u);
    EXPECT_EQ(v.elems[0].elems[1].num, 2);
    EXPECT_EQ(v.elems[1].str, "x");
}

TEST(ReplyParser, NullArray) {
    ReplyParser p;
    p.feed("*-1\r\n");
    Value v;
    ASSERT_EQ(p.next(&v), Status::kOk);
    EXPECT_EQ(v.kind, Value::Kind::kNull);
}

TEST(ReplyParser, PartialArrayNeedsMore) {
    ReplyParser p;
    p.feed("*2\r\n:1\r\n");
    Value v;
    EXPECT_EQ(p.next(&v), Status::kNeedMore);
    p.feed(":2\r\n");
    ASSERT_EQ(p.next(&v), Status::kOk);
    EXPECT_EQ(v.elems.size(), 2u);
}

TEST(ReplyParser, DepthLimit) {
    ReplyParser p;
    std::string wire;
    for (int i = 0; i < 20; ++i) wire += "*1\r\n";
    wire += ":1\r\n";
    p.feed(wire);
    Value v;
    EXPECT_EQ(p.next(&v), Status::kError);
}

TEST(ReplyParser, UnknownTagError) {
    ReplyParser p;
    p.feed("@weird\r\n");
    Value v;
    EXPECT_EQ(p.next(&v), Status::kError);
}

TEST(ReplyParser, DebugString) {
    ReplyParser p;
    p.feed("*2\r\n+OK\r\n:3\r\n");
    Value v;
    ASSERT_EQ(p.next(&v), Status::kOk);
    EXPECT_EQ(v.to_debug_string(), "[+OK, :3]");
}

TEST(RoundTrip, CommandThroughBothParsers) {
    // A command encoded by the client parses identically server-side.
    const std::vector<std::string> argv{"ZADD", "scores", "1.5", "alice"};
    RequestParser p;
    p.feed(command(argv));
    std::vector<std::string> parsed;
    ASSERT_EQ(p.next(&parsed), Status::kOk);
    EXPECT_EQ(parsed, argv);
}

} // namespace
} // namespace skv::kv::resp
