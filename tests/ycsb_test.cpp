#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>

#include "sim/rng.hpp"
#include "skv/cluster.hpp"
#include "workload/generator.hpp"
#include "workload/runner.hpp"
#include "workload/ycsb/open_loop.hpp"
#include "workload/ycsb/workload_mix.hpp"

namespace skv {
namespace {

using workload::Generator;
using workload::KeyDist;
using workload::KeyFrontier;
using workload::WorkloadSpec;
using workload::ycsb::MixGenerator;
using workload::ycsb::OpenLoopOptions;
using workload::ycsb::Workload;
using workload::ycsb::YcsbOp;
using workload::ycsb::YcsbOptions;

// --- key choosers --------------------------------------------------------

TEST(YcsbChoosers, ZipfianFrequencyDecreasesWithRank) {
    sim::Rng rng(7);
    sim::ZipfianGenerator zipf(1000, 0.99);
    std::map<std::uint64_t, int> freq;
    for (int i = 0; i < 100'000; ++i) ++freq[zipf.next(rng)];
    // Rank-frequency sanity: the head dominates, and frequency decays.
    EXPECT_GT(freq[0], freq[10]);
    EXPECT_GT(freq[10], freq[100]);
    EXPECT_GT(freq[0], 5'000); // ~1/zeta(1000) of 100k draws, loose bound
}

TEST(YcsbChoosers, GrowingZipfianCoversNewItems) {
    sim::Rng rng(11);
    sim::ZipfianGenerator zipf(100, 0.99);
    for (int i = 0; i < 1'000; ++i) EXPECT_LT(zipf.next(rng, 100), 100u);
    bool saw_new = false;
    for (int i = 0; i < 20'000; ++i) {
        const auto v = zipf.next(rng, 200);
        EXPECT_LT(v, 200u);
        if (v >= 100) saw_new = true;
    }
    EXPECT_TRUE(saw_new) << "grown tail never drawn";
    EXPECT_EQ(zipf.n(), 200u);
}

TEST(YcsbChoosers, LatestConcentratesOnNewestInserts) {
    WorkloadSpec spec;
    spec.key_dist = KeyDist::kLatest;
    spec.key_count = 1'000;
    Generator gen(spec, sim::Rng(3));
    auto frontier = std::make_shared<KeyFrontier>(1'000);
    gen.set_frontier(frontier);

    std::uint64_t top10 = 0;
    for (int i = 0; i < 20'000; ++i) {
        const auto idx = gen.next_key_index();
        ASSERT_LT(idx, 1'000u);
        if (idx >= 990) ++top10;
    }
    // YCSB's latest chooser: the newest keys are by far the hottest (a
    // uniform chooser would put ~1% in the top 10 of 1000).
    EXPECT_GT(top10, 20'000u / 4);

    // Advance the frontier: the hottest keys must chase it.
    for (int i = 0; i < 500; ++i) frontier->acquire_insert();
    std::uint64_t above_old_frontier = 0;
    for (int i = 0; i < 20'000; ++i) {
        const auto idx = gen.next_key_index();
        ASSERT_LT(idx, 1'500u);
        if (idx >= 1'000) ++above_old_frontier;
    }
    EXPECT_GT(above_old_frontier, 20'000u / 2);
}

TEST(YcsbChoosers, ScanStartCoversLiveFrontier) {
    WorkloadSpec spec;
    spec.key_dist = KeyDist::kScan;
    spec.key_count = 100;
    Generator gen(spec, sim::Rng(5));
    auto frontier = std::make_shared<KeyFrontier>(100);
    gen.set_frontier(frontier);
    for (int i = 0; i < 50; ++i) frontier->acquire_insert();
    bool saw_inserted = false;
    for (int i = 0; i < 5'000; ++i) {
        const auto idx = gen.next_key_index();
        ASSERT_LT(idx, 150u);
        if (idx >= 100) saw_inserted = true;
    }
    EXPECT_TRUE(saw_inserted);
}

// --- mix layer -----------------------------------------------------------

std::array<int, YcsbOp::kKindCount> count_kinds(Workload w, int n) {
    auto frontier = std::make_shared<KeyFrontier>(10'000);
    MixGenerator mix(YcsbOptions::standard(w), sim::Rng(17), frontier);
    std::array<int, YcsbOp::kKindCount> counts{};
    for (int i = 0; i < n; ++i) {
        ++counts[static_cast<std::size_t>(mix.next().kind)];
    }
    return counts;
}

TEST(YcsbMix, WorkloadRatiosMatchTheStandardDefinitions) {
    constexpr int kN = 20'000;
    const auto a = count_kinds(Workload::kA, kN);
    EXPECT_NEAR(a[0], kN / 2, kN / 50); // reads ~50%
    EXPECT_NEAR(a[1], kN / 2, kN / 50); // updates ~50%

    const auto c = count_kinds(Workload::kC, kN);
    EXPECT_EQ(c[0], kN); // 100% reads

    const auto d = count_kinds(Workload::kD, kN);
    EXPECT_NEAR(d[2], kN / 20, kN / 100); // inserts ~5%

    const auto e = count_kinds(Workload::kE, kN);
    EXPECT_NEAR(e[3], kN * 95 / 100, kN / 50); // scans ~95%

    const auto f = count_kinds(Workload::kF, kN);
    EXPECT_NEAR(f[4], kN / 2, kN / 50); // RMW ~50%
}

TEST(YcsbMix, InsertsClaimSequentialKeysAndGrowTheFrontier) {
    auto frontier = std::make_shared<KeyFrontier>(100);
    auto opts = YcsbOptions::standard(Workload::kD);
    opts.record_count = 100;
    MixGenerator mix(opts, sim::Rng(23), frontier);
    std::uint64_t next_expected = 100;
    for (int i = 0; i < 5'000; ++i) {
        const auto op = mix.next();
        if (op.kind != YcsbOp::Kind::kInsert) continue;
        EXPECT_EQ(op.key, "key:" + std::to_string(next_expected));
        ++next_expected;
    }
    EXPECT_EQ(frontier->size(), next_expected);
    EXPECT_GT(next_expected, 100u);
}

TEST(YcsbMix, ScanWindowsAreBoundedAndConsecutive) {
    auto frontier = std::make_shared<KeyFrontier>(500);
    auto opts = YcsbOptions::standard(Workload::kE);
    opts.record_count = 500;
    opts.scan_len_max = 8;
    MixGenerator mix(opts, sim::Rng(29), frontier);
    int scans = 0;
    for (int i = 0; i < 2'000 && scans < 200; ++i) {
        const auto op = mix.next();
        if (op.kind != YcsbOp::Kind::kScan) continue;
        ++scans;
        ASSERT_FALSE(op.scan_keys.empty());
        ASSERT_LE(op.scan_keys.size(), 8u);
        EXPECT_EQ(op.scan_keys.front(), op.key);
    }
    EXPECT_EQ(scans, 200);
}

TEST(YcsbMix, SameSeedSameStream) {
    auto f1 = std::make_shared<KeyFrontier>(1'000);
    auto f2 = std::make_shared<KeyFrontier>(1'000);
    auto opts = YcsbOptions::standard(Workload::kA);
    opts.record_count = 1'000;
    MixGenerator m1(opts, sim::Rng(31), f1);
    MixGenerator m2(opts, sim::Rng(31), f2);
    for (int i = 0; i < 2'000; ++i) {
        const auto a = m1.next();
        const auto b = m2.next();
        ASSERT_EQ(a.kind, b.kind);
        ASSERT_EQ(a.key, b.key);
        ASSERT_EQ(a.value, b.value);
    }
}

// --- open-loop driver ----------------------------------------------------

std::unique_ptr<offload::Cluster> make_skv(std::uint64_t seed) {
    offload::ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = 2;
    cfg.offload = true;
    auto c = std::make_unique<offload::Cluster>(cfg);
    c->start();
    return c;
}

TEST(OpenLoop, AchievesOfferedRateOnAHealthyCluster) {
    auto cluster = make_skv(101);
    OpenLoopOptions opts;
    opts.ycsb = YcsbOptions::standard(Workload::kA);
    opts.ycsb.record_count = 2'000;
    opts.connections = 64;
    opts.offered_kops = 20.0;
    opts.warmup = sim::milliseconds(100);
    opts.measure = sim::milliseconds(500);
    const auto r = run_open_loop(*cluster, opts);

    EXPECT_EQ(r.completed, r.arrivals); // healthy cluster drains fully
    EXPECT_EQ(r.failed + r.timed_out, 0u);
    EXPECT_NEAR(r.achieved_kops, r.offered_kops, r.offered_kops * 0.1);
    std::uint64_t per_type_sum = 0;
    for (const auto& s : r.per_type) per_type_sum += s.ops;
    EXPECT_EQ(per_type_sum, r.completed);
    EXPECT_GT(r.run.p50_us, 0.0);
    EXPECT_GE(r.run.p999_us, r.run.p99_us);
    EXPECT_GE(r.run.p99_us, r.run.p95_us);
    EXPECT_GE(r.run.p95_us, r.run.p50_us);
}

TEST(OpenLoop, TenThousandConnectionsDoubleRunBitIdentical) {
    auto run = [](std::uint64_t seed) {
        auto cluster = make_skv(seed);
        OpenLoopOptions opts;
        opts.ycsb = YcsbOptions::standard(Workload::kB);
        opts.ycsb.record_count = 2'000;
        opts.connections = 10'000; // ISSUE: 10k+ multiplexed connections
        opts.connections_per_host = 256;
        opts.offered_kops = 60.0;
        opts.warmup = sim::milliseconds(50);
        opts.measure = sim::milliseconds(250);
        const auto r = run_open_loop(*cluster, opts);
        return std::tuple{r.completed,
                          r.arrivals,
                          r.run.p99_us,
                          r.run.mean_us,
                          cluster->sim().events_executed(),
                          cluster->sim().trace_digest()};
    };
    const auto a = run(909);
    const auto b = run(909);
    EXPECT_EQ(a, b);
    EXPECT_NE(std::get<5>(a), std::get<5>(run(910))); // seeds diverge
}

// The coordinated-omission self-test (ISSUE): stall the master's core
// mid-window. The open-loop driver keeps timestamping arrivals while they
// queue, so its p99 must absorb the stall; closed-loop clients simply stop
// issuing (their in-flight op blocks), so their recorded p99 hides it —
// only ~one op per client ever observes the stall.
TEST(OpenLoop, CoordinatedOmissionStallShowsInOpenLoopTailOnly) {
    const sim::Duration stall = sim::milliseconds(80);
    const sim::Duration warmup = sim::milliseconds(100);
    const sim::Duration measure = sim::seconds(1);

    auto open_cluster = make_skv(4242);
    {
        auto& s = open_cluster->sim();
        auto* core = open_cluster->master().node().core;
        s.at(s.now() + warmup + sim::milliseconds(200),
             [core, stall]() { core->consume(stall); });
    }
    OpenLoopOptions oopts;
    oopts.ycsb = YcsbOptions::standard(Workload::kA);
    oopts.ycsb.record_count = 2'000;
    oopts.connections = 256;
    oopts.offered_kops = 40.0;
    oopts.warmup = warmup;
    oopts.measure = measure;
    const auto open = run_open_loop(*open_cluster, oopts);

    auto closed_cluster = make_skv(4242);
    {
        auto& s = closed_cluster->sim();
        auto* core = closed_cluster->master().node().core;
        s.at(s.now() + warmup + sim::milliseconds(200),
             [core, stall]() { core->consume(stall); });
    }
    workload::RunOptions copts;
    copts.clients = 16;
    copts.spec.set_ratio = 0.5;
    copts.spec.key_count = 2'000;
    copts.warmup = warmup;
    copts.measure = measure;
    copts.preload = true;
    const auto closed = workload::run_workload(*closed_cluster, copts);

    // ~3200 of ~40k open-loop arrivals queue behind the 80 ms stall: far
    // more than 1%, so the open-loop p99 includes tens of ms of queue wait.
    EXPECT_GT(open.run.p99_us, 10'000.0) << open.summary();
    EXPECT_GT(open.peak_queued, 0u);
    // The closed-loop fleet saw the same stall but recorded it in only ~16
    // samples out of >100k: its p99 stays at microseconds — the
    // coordinated-omission blind spot this driver exists to avoid.
    EXPECT_LT(closed.p99_us, 5'000.0) << closed.summary();
    EXPECT_GT(closed.max_us, 50'000.0); // the stall *was* observable
    EXPECT_EQ(open.failed + open.timed_out, 0u);
}

} // namespace
} // namespace skv
