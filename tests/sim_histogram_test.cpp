#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/histogram.hpp"
#include "sim/rng.hpp"

namespace skv::sim {
namespace {

TEST(Histogram, EmptyIsZero) {
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min_ns(), 0);
    EXPECT_EQ(h.max_ns(), 0);
    EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
    EXPECT_EQ(h.p99_ns(), 0);
}

TEST(Histogram, SingleSample) {
    LatencyHistogram h;
    h.record_ns(1234);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min_ns(), 1234);
    EXPECT_EQ(h.max_ns(), 1234);
    EXPECT_DOUBLE_EQ(h.mean_ns(), 1234.0);
    // One sample: every quantile is that sample (within bucket error).
    EXPECT_NEAR(static_cast<double>(h.p50_ns()), 1234, 1234 * 0.04);
}

TEST(Histogram, NegativeClampsToZero) {
    LatencyHistogram h;
    h.record_ns(-5);
    EXPECT_EQ(h.min_ns(), 0);
    EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, ExactMeanAndExtremes) {
    LatencyHistogram h;
    for (int i = 1; i <= 100; ++i) h.record_ns(i * 1000);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.min_ns(), 1000);
    EXPECT_EQ(h.max_ns(), 100'000);
    EXPECT_DOUBLE_EQ(h.mean_ns(), 50'500.0);
}

TEST(Histogram, QuantileWithinRelativeError) {
    LatencyHistogram h;
    std::vector<std::int64_t> vals;
    Rng rng(5);
    for (int i = 0; i < 50'000; ++i) {
        const auto v = static_cast<std::int64_t>(rng.next_below(10'000'000)) + 1;
        vals.push_back(v);
        h.record_ns(v);
    }
    std::sort(vals.begin(), vals.end());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        const auto exact =
            vals[static_cast<std::size_t>(q * static_cast<double>(vals.size() - 1))];
        const auto approx = h.quantile_ns(q);
        EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                    static_cast<double>(exact) * 0.05)
            << "q=" << q;
    }
}

TEST(Histogram, QuantileMonotonicInQ) {
    LatencyHistogram h;
    Rng rng(6);
    for (int i = 0; i < 10'000; ++i) {
        h.record_ns(static_cast<std::int64_t>(rng.next_below(1'000'000)));
    }
    std::int64_t prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const auto v = h.quantile_ns(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Histogram, QuantileNeverExceedsMax) {
    LatencyHistogram h;
    h.record_ns(777);
    h.record_ns(999'999);
    EXPECT_LE(h.quantile_ns(1.0), h.max_ns());
}

TEST(Histogram, MergeMatchesCombined) {
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram both;
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const auto v = static_cast<std::int64_t>(rng.next_below(5'000'000));
        if (i % 2 == 0) {
            a.record_ns(v);
        } else {
            b.record_ns(v);
        }
        both.record_ns(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.min_ns(), both.min_ns());
    EXPECT_EQ(a.max_ns(), both.max_ns());
    EXPECT_DOUBLE_EQ(a.mean_ns(), both.mean_ns());
    EXPECT_EQ(a.p99_ns(), both.p99_ns());
}

TEST(Histogram, ClearResets) {
    LatencyHistogram h;
    h.record_ns(5000);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max_ns(), 0);
    h.record_ns(10);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.max_ns(), 10);
}

TEST(Histogram, HugeValuesDoNotOverflow) {
    LatencyHistogram h;
    h.record_ns(INT64_MAX / 2);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GT(h.quantile_ns(0.5), INT64_MAX / 4);
}

TEST(Histogram, SingleSampleQuantilesAreExact) {
    LatencyHistogram h;
    h.record_ns(12345);
    // Every quantile of a one-sample distribution is that sample; the
    // interpolated rank must clamp to [min, max] instead of reporting the
    // bucket upper bound.
    EXPECT_EQ(h.quantile_ns(0.0), 12345);
    EXPECT_EQ(h.p50_ns(), 12345);
    EXPECT_EQ(h.p99_ns(), 12345);
    EXPECT_EQ(h.p999_ns(), 12345);
    EXPECT_EQ(h.quantile_ns(1.0), 12345);
}

TEST(Histogram, SmallCountP99DoesNotOvershootMax) {
    // With n samples, p99 must never exceed the largest recorded value —
    // the old behavior returned the containing bucket's upper edge, which
    // for n=10 identical samples overshot by the bucket width.
    LatencyHistogram h;
    for (int i = 0; i < 10; ++i) h.record_ns(1000);
    EXPECT_EQ(h.p99_ns(), 1000);
    EXPECT_EQ(h.p999_ns(), 1000);
}

TEST(Histogram, QuantilesAreMonotoneAndBounded) {
    LatencyHistogram h;
    for (int i = 1; i <= 100; ++i) h.record_ns(i * 100);
    std::int64_t prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const std::int64_t v = h.quantile_ns(q);
        EXPECT_GE(v, prev);
        EXPECT_GE(v, h.min_ns());
        EXPECT_LE(v, h.max_ns());
        prev = v;
    }
    // The p50 of 100..10000 uniform must land near 5000 (within the ~3%
    // log-linear bucket resolution plus interpolation).
    EXPECT_NEAR(static_cast<double>(h.p50_ns()), 5050.0, 200.0);
    EXPECT_NEAR(static_cast<double>(h.p99_ns()), 9910.0, 350.0);
}

TEST(Histogram, MergedQuantilesStayBounded) {
    LatencyHistogram a;
    LatencyHistogram b;
    for (int i = 0; i < 5; ++i) a.record_ns(1000);
    for (int i = 0; i < 5; ++i) b.record_ns(9000);
    a.merge(b);
    EXPECT_EQ(a.count(), 10u);
    EXPECT_LE(a.p99_ns(), 9000);
    EXPECT_GE(a.quantile_ns(0.0), 1000);
}

TEST(Histogram, SummaryMentionsCount) {
    LatencyHistogram h;
    h.record(microseconds(10));
    EXPECT_NE(h.summary().find("n=1"), std::string::npos);
}

} // namespace
} // namespace skv::sim
