#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "check/linearize.hpp"
#include "kv/resp.hpp"
#include "net/fault.hpp"
#include "skv/cluster.hpp"
#include "workload/retry_client.hpp"

namespace skv::offload {
namespace {

/// Crash-chaos cluster: SKV topology with a fast failure detector (so
/// failover completes well inside client op deadlines), immediate apply
/// acks, commit gating on one replica, and linearizable read routing
/// (replicas refuse reads, so retrying clients always find the master).
struct CrashClusterOpts {
    int n_slaves = 2;
    int wait_for_slaves = 1;
    sim::Duration persist_interval{};
    bool serve_stale_reads = false;
    sim::Duration waiting_time{sim::milliseconds(450)};
};

std::unique_ptr<Cluster> make_crash_cluster(std::uint64_t seed,
                                            const CrashClusterOpts& o = {}) {
    ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = o.n_slaves;
    cfg.offload = true;
    cfg.nic_cfg.probe_interval = sim::milliseconds(200);
    cfg.nic_cfg.waiting_time = o.waiting_time;
    cfg.server_tmpl.ack_interval = sim::milliseconds(20);
    cfg.server_tmpl.ack_on_apply = true;
    cfg.server_tmpl.wait_for_slaves = o.wait_for_slaves;
    cfg.server_tmpl.wait_timeout = sim::milliseconds(150);
    cfg.server_tmpl.serve_stale_reads = o.serve_stale_reads;
    cfg.server_tmpl.persist_interval = o.persist_interval;
    cfg.server_tmpl.probe_silence_timeout = sim::seconds(1);
    auto c = std::make_unique<Cluster>(cfg);
    c->tracer().set_enabled(true);
    c->start();
    return c;
}

/// A fleet of retrying clients sharing one recorded history.
struct Fleet {
    check::History history;
    std::vector<std::shared_ptr<workload::RetryClient>> clients;
    std::uint64_t ops_issued = 0;

    /// `turnaround` paces the clients so the workload genuinely overlaps
    /// the injected faults instead of finishing before the first crash.
    void spawn(Cluster& c, int n, std::uint64_t ops_each, double set_ratio,
               sim::Duration turnaround = sim::milliseconds(25)) {
        std::vector<workload::RetryClient::Target> targets;
        targets.push_back({c.master().node().ep, c.master().config().port});
        for (int i = 0; i < c.slave_count(); ++i) {
            targets.push_back(
                {c.slave(i).node().ep, c.slave(i).config().port});
        }
        auto dial = [&c](net::NodeRef from, workload::RetryClient::Target t,
                         std::function<void(net::ChannelPtr)> cb) {
            c.cm().connect(from, t.ep, t.port, std::move(cb));
        };
        workload::RetryPolicy pol;
        pol.attempt_timeout = sim::milliseconds(120);
        pol.op_deadline = sim::seconds(4);
        pol.turnaround = turnaround;
        for (int i = 0; i < n; ++i) {
            workload::WorkloadSpec spec;
            spec.set_ratio = set_ratio;
            spec.key_count = 8; // small keyspace: real read/write contention
            spec.value_bytes = 16;
            spec.key_prefix = "ck:";
            workload::Generator gen(spec, c.sim().fork_rng());
            auto node = c.add_client_host("rc" + std::to_string(i));
            clients.push_back(std::make_shared<workload::RetryClient>(
                c.sim(), c.costs(), node, 100 + static_cast<std::uint64_t>(i),
                std::move(gen), pol, targets, dial, &history));
        }
        for (auto& cl : clients) cl->start(ops_each);
        ops_issued += static_cast<std::uint64_t>(n) * ops_each;
    }

    [[nodiscard]] bool all_idle() const {
        for (const auto& cl : clients) {
            if (!cl->idle()) return false;
        }
        return true;
    }

    /// Run the sim until every client finished its ops. Returning false
    /// means a client hung — itself an acceptance failure.
    [[nodiscard]] bool drain(Cluster& c, sim::Duration cap) {
        const auto stop = c.sim().now() + cap;
        while (c.sim().now() < stop) {
            if (all_idle()) return true;
            c.sim().run_until(c.sim().now() + sim::milliseconds(20));
        }
        return all_idle();
    }

    [[nodiscard]] std::uint64_t ok() const {
        std::uint64_t n = 0;
        for (const auto& cl : clients) n += cl->ops_ok();
        return n;
    }

    /// Nonzero retries prove the workload was live while faults were in.
    [[nodiscard]] std::uint64_t total_retries() const {
        std::uint64_t n = 0;
        for (const auto& cl : clients) n += cl->retries();
        return n;
    }
};

/// The linearizability gate. On violation the raw history is dumped to
/// chaos_history_<seed>.json (CI uploads it together with the chrome
/// trace) so the offending schedule can be replayed offline.
void gate_linearizable(Cluster& c, const check::History& hist,
                       const std::string& tag) {
    const auto res = check::check_history(hist);
    EXPECT_FALSE(res.budget_exhausted) << tag << ": checker budget exhausted";
    if (!res.linearizable) {
        char path[64];
        std::snprintf(path, sizeof(path), "chaos_history_%016llx.json",
                      static_cast<unsigned long long>(c.sim().seed()));
        if (std::FILE* f = std::fopen(path, "wb")) {
            const std::string json = hist.to_json();
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::fprintf(
                stderr,
                "[chaos-audit] non-linearizable history written to %s\n",
                path);
        }
    }
    EXPECT_TRUE(res.linearizable) << tag << ": " << res.reason;
}

/// Minimal synchronous command shell over a raw channel, for tests that
/// need precise control over which node serves which request.
class RawConn {
public:
    RawConn(Cluster& c, net::EndpointId ep, std::uint16_t port,
            const std::string& name)
        : cluster_(c) {
        node_ = c.add_client_host(name);
        c.cm().connect(node_, ep, port, [this](net::ChannelPtr ch) {
            ch_ = std::move(ch);
            ch_->set_on_message([this](std::string payload) {
                parser_.feed(payload);
            });
        });
        c.sim().run_until(c.sim().now() + sim::milliseconds(20));
    }

    [[nodiscard]] bool connected() const { return ch_ != nullptr; }

    /// Send and wait (bounded) for the reply.
    kv::resp::Value call(const std::vector<std::string>& argv,
                         sim::Duration timeout = sim::seconds(2)) {
        ch_->send(kv::resp::command(argv));
        const auto stop = cluster_.sim().now() + timeout;
        kv::resp::Value v;
        while (cluster_.sim().now() < stop) {
            if (parser_.next(&v) == kv::resp::Status::kOk) return v;
            cluster_.sim().run_until(cluster_.sim().now() +
                                     sim::milliseconds(1));
        }
        ADD_FAILURE() << "no reply to " << argv[0] << " within timeout";
        return v;
    }

private:
    Cluster& cluster_;
    net::NodeRef node_;
    net::ChannelPtr ch_;
    kv::resp::ReplyParser parser_;
};

// ---------------------------------------------------------------------------
// Scenario 1: master crash + failover. The master dies mid-workload and
// stays dead; clients must ride over to the promoted stand-in and every
// op must complete (successfully or with an explicit failure) inside its
// deadline. The recorded history must be linearizable.
TEST(ChaosCrash, MasterCrashFailoverLinearizable) {
    for (const std::uint64_t seed : {9101ull, 9202ull, 9303ull}) {
        auto c = make_crash_cluster(seed);
        Fleet fleet;
        fleet.spawn(*c, 3, 40, 0.5);
        c->sim().run_until(c->sim().now() + sim::milliseconds(400));
        ASSERT_FALSE(fleet.all_idle()) << "workload finished pre-crash";
        const auto crash_at = c->sim().now();
        c->crash_node(-1);

        ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
        EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
        EXPECT_GT(fleet.total_retries(), 0u) << "seed " << seed;
        EXPECT_EQ(c->nic_kv()->stats().counter("failovers"), 1u)
            << "seed " << seed;
        int promoted = 0;
        for (int i = 0; i < c->slave_count(); ++i) {
            if (c->slave(i).role() == server::Role::kMaster) ++promoted;
        }
        EXPECT_EQ(promoted, 1) << "seed " << seed;
        // Progress resumed after the crash, not just before it.
        bool ok_after_crash = false;
        for (const auto& cl : fleet.clients) {
            if (cl->last_ok_at() > crash_at) ok_after_crash = true;
        }
        EXPECT_TRUE(ok_after_crash) << "seed " << seed;
        gate_linearizable(*c, fleet.history,
                          "master-crash seed " + std::to_string(seed));
    }
}

// Scenario 2: slave crash during replication fan-out under commit gating.
// Writes park on replica acks; the crash must unblock them via the
// detector (flush or -WAITTIMEOUT + retry), and the warm restart must
// partially resync without corrupting the history.
TEST(ChaosCrash, SlaveCrashDuringFanoutLinearizable) {
    for (const std::uint64_t seed : {9404ull, 9505ull, 9606ull}) {
        auto c = make_crash_cluster(seed);
        Fleet fleet;
        fleet.spawn(*c, 3, 40, 0.7);
        c->sim().run_until(c->sim().now() + sim::milliseconds(300));
        ASSERT_FALSE(fleet.all_idle()) << "workload finished pre-crash";
        c->crash_node(0);
        c->sim().run_until(c->sim().now() + sim::milliseconds(800));
        c->restart_node(0, server::KvServer::RecoveryMode::kWarm);

        ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
        EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
        // Gating was actually exercised.
        EXPECT_GT(c->master().stats().counter("writes_parked"), 0u)
            << "seed " << seed;
        gate_linearizable(*c, fleet.history,
                          "slave-crash seed " + std::to_string(seed));
        // The restarted slave rejoins and converges.
        c->sim().run_until(c->sim().now() + sim::seconds(8));
        EXPECT_TRUE(c->converged()) << "seed " << seed;
        EXPECT_TRUE(c->master().db().equals(c->slave(0).db()))
            << "seed " << seed;
    }
}

// Scenario 3: crash + partition at the same time. One slave is fully
// partitioned, another crashes; the master keeps serving through the
// survivor, then both impairments heal.
TEST(ChaosCrash, CrashPlusPartitionLinearizable) {
    for (const std::uint64_t seed : {9707ull, 9808ull, 9909ull}) {
        CrashClusterOpts o;
        o.n_slaves = 3;
        auto c = make_crash_cluster(seed, o);
        Fleet fleet;
        fleet.spawn(*c, 3, 40, 0.5);
        c->sim().run_until(c->sim().now() + sim::milliseconds(300));
        ASSERT_FALSE(fleet.all_idle()) << "workload finished pre-fault";

        net::FaultSpec cut;
        cut.blocked = true;
        c->fabric().faults().set_endpoint(c->slave(2).node().ep, cut);
        c->sim().run_until(c->sim().now() + sim::milliseconds(200));
        c->crash_node(1);
        c->sim().run_until(c->sim().now() + sim::seconds(1));
        c->restart_node(1, server::KvServer::RecoveryMode::kWarm);
        c->fabric().faults().clear_endpoint(c->slave(2).node().ep);

        ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
        EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
        gate_linearizable(*c, fleet.history,
                          "crash+partition seed " + std::to_string(seed));
        c->sim().run_until(c->sim().now() + sim::seconds(10));
        EXPECT_TRUE(c->converged()) << "seed " << seed;
    }
}

// Scenario 4: seeded restart storm across the slaves (warm restarts) with
// the workload running throughout.
TEST(ChaosCrash, RestartStormLinearizable) {
    for (const std::uint64_t seed : {8111ull, 8222ull, 8333ull}) {
        CrashClusterOpts o;
        o.n_slaves = 3;
        auto c = make_crash_cluster(seed, o);
        Fleet fleet;
        fleet.spawn(*c, 4, 60, 0.5, sim::milliseconds(60));
        Cluster::CrashStormSpec storm;
        storm.crashes = 6;
        storm.downtime = sim::milliseconds(400);
        const int scheduled = c->schedule_crash_storm(storm);
        EXPECT_GT(scheduled, 0) << "seed " << seed;
        // The storm spans at most ~6 * 900ms; the paced workload runs
        // ~3.6s, so crashes land while clients are live.
        ASSERT_TRUE(fleet.drain(*c, sim::seconds(90))) << "seed " << seed;
        EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
        EXPECT_EQ(c->master().role(), server::Role::kMaster)
            << "seed " << seed;
        gate_linearizable(*c, fleet.history,
                          "restart-storm seed " + std::to_string(seed));
        c->sim().run_until(c->sim().now() + sim::seconds(10));
        EXPECT_TRUE(c->converged()) << "seed " << seed;
    }
}

// Scenario 5: cold restarts recover from the periodic RDB snapshot plus
// backlog partial resync instead of process memory.
TEST(ChaosCrash, ColdRestartStormRecoversFromSnapshot) {
    for (const std::uint64_t seed : {8444ull, 8555ull, 8666ull}) {
        CrashClusterOpts o;
        o.persist_interval = sim::milliseconds(200);
        auto c = make_crash_cluster(seed, o);
        Fleet fleet;
        fleet.spawn(*c, 3, 50, 0.7, sim::milliseconds(60));
        Cluster::CrashStormSpec storm;
        storm.crashes = 4;
        storm.min_gap = sim::milliseconds(400);
        storm.max_gap = sim::seconds(1);
        storm.downtime = sim::milliseconds(500);
        storm.mode = server::KvServer::RecoveryMode::kCold;
        EXPECT_GT(c->schedule_crash_storm(storm), 0) << "seed " << seed;

        ASSERT_TRUE(fleet.drain(*c, sim::seconds(90))) << "seed " << seed;
        EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
        gate_linearizable(*c, fleet.history,
                          "cold-storm seed " + std::to_string(seed));

        c->sim().run_until(c->sim().now() + sim::seconds(10));
        EXPECT_TRUE(c->converged()) << "seed " << seed;
        std::uint64_t cold = 0;
        std::uint64_t snaps = 0;
        for (int i = 0; i < c->slave_count(); ++i) {
            cold += c->slave(i).stats().counter("cold_recoveries");
            snaps += c->slave(i).stats().counter("snapshots_persisted");
        }
        EXPECT_GT(cold, 0u) << "seed " << seed;
        EXPECT_GT(snaps, 0u) << "seed " << seed;
        for (int i = 0; i < c->slave_count(); ++i) {
            EXPECT_TRUE(c->master().db().equals(c->slave(i).db()))
                << "seed " << seed << " slave" << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Self-test: the checker must provably reject a real injected consistency
// bug. With stale replica reads enabled and no commit gating, a read
// served by a replication-cut slave observes an old value; the recorded
// history is genuinely non-linearizable and the gate must say so.
TEST(ChaosCrash, CheckerRejectsInjectedStaleRead) {
    CrashClusterOpts o;
    o.wait_for_slaves = 0;
    o.serve_stale_reads = true; // the injected bug
    auto c = make_crash_cluster(7777, o);
    check::History hist;
    auto record = [&](check::OpType type, const std::string& value, bool found,
                      std::int64_t invoke, std::int64_t complete) {
        check::Op op;
        op.client = type == check::OpType::kWrite ? 1 : 2;
        op.seq = static_cast<std::uint64_t>(invoke);
        op.type = type;
        op.key = "sk";
        op.value = value;
        op.found = found;
        op.invoke_ns = invoke;
        op.complete_ns = complete;
        hist.record(op);
    };

    RawConn master(*c, c->master().node().ep, c->master().config().port, "w");
    ASSERT_TRUE(master.connected());
    std::int64_t t0 = c->sim().now().ns();
    EXPECT_TRUE(master.call({"SET", "sk", "v1"}).is_ok());
    record(check::OpType::kWrite, "v1", true, t0, c->sim().now().ns());
    c->sim().run_until(c->sim().now() + sim::seconds(1));
    ASSERT_TRUE(c->converged());

    // Cut replication to slave0 (both the NIC fan-out and the direct
    // master link), then overwrite the key. slave0 keeps v1 forever.
    net::FaultSpec cut;
    cut.blocked = true;
    c->fabric().faults().set_pair(c->nic_kv()->endpoint(),
                                  c->slave(0).node().ep, cut);
    c->fabric().faults().set_pair(c->master().node().ep,
                                  c->slave(0).node().ep, cut);
    t0 = c->sim().now().ns();
    EXPECT_TRUE(master.call({"SET", "sk", "v2"}).is_ok());
    record(check::OpType::kWrite, "v2", true, t0, c->sim().now().ns());
    c->sim().run_until(c->sim().now() + sim::milliseconds(100));

    RawConn stale(*c, c->slave(0).node().ep, c->slave(0).config().port, "r");
    ASSERT_TRUE(stale.connected());
    t0 = c->sim().now().ns();
    const auto v = stale.call({"GET", "sk"});
    ASSERT_EQ(v.kind, kv::resp::Value::Kind::kBulk);
    EXPECT_EQ(v.str, "v1") << "expected the injected stale read";
    record(check::OpType::kRead, v.str, true, t0, c->sim().now().ns());

    const auto res = check::check_history(hist);
    EXPECT_FALSE(res.linearizable)
        << "checker failed to reject an injected stale read";
}

// Duplicate-suppressed write retries never double-apply, across both the
// direct-retry path and the replicated stream (APPEND makes re-execution
// visible as a doubled suffix).
TEST(ChaosCrash, DuplicateWriteRetryNeverDoubleApplies) {
    CrashClusterOpts o;
    o.wait_for_slaves = 0;
    auto c = make_crash_cluster(4242, o);
    RawConn conn(*c, c->master().node().ep, c->master().config().port, "dup");
    ASSERT_TRUE(conn.connected());

    auto v1 = conn.call({"WSEQ", "7", "1", "APPEND", "dk", "x"});
    ASSERT_EQ(v1.kind, kv::resp::Value::Kind::kInteger);
    EXPECT_EQ(v1.num, 1);
    // The "retry": same client, same sequence. The cached reply comes
    // back; the command must NOT run again.
    auto v2 = conn.call({"WSEQ", "7", "1", "APPEND", "dk", "x"});
    ASSERT_EQ(v2.kind, kv::resp::Value::Kind::kInteger);
    EXPECT_EQ(v2.num, 1);
    EXPECT_GE(c->master().stats().counter("dup_suppressed"), 1u);

    auto v3 = conn.call({"WSEQ", "7", "2", "APPEND", "dk", "y"});
    ASSERT_EQ(v3.kind, kv::resp::Value::Kind::kInteger);
    EXPECT_EQ(v3.num, 2);
    // A stale (superseded) sequence is refused outright.
    auto v4 = conn.call({"WSEQ", "7", "1", "APPEND", "dk", "z"});
    EXPECT_TRUE(v4.is_error());
    EXPECT_EQ(v4.str.find("DUPSEQ"), 0u);

    auto got = conn.call({"GET", "dk"});
    ASSERT_EQ(got.kind, kv::resp::Value::Kind::kBulk);
    EXPECT_EQ(got.str, "xy");

    // The replicated stream carried the tags: slaves applied each write
    // exactly once too.
    c->sim().run_until(c->sim().now() + sim::seconds(2));
    ASSERT_TRUE(c->converged());
    for (int i = 0; i < c->slave_count(); ++i) {
        EXPECT_TRUE(c->master().db().equals(c->slave(i).db())) << i;
    }
}

// Satellite: retransmit exhaustion. A one-directional NIC->slave cut with
// a deliberately slow probe detector: the reliable layer must reach its
// terminal broken state first and that event alone must invalidate the
// slave in Nic-KV's node table and the master's replica count.
TEST(ChaosCrash, RetransmitExhaustionBreaksLinkAndInvalidates) {
    CrashClusterOpts o;
    o.waiting_time = sim::seconds(30); // probes can't win this race
    auto c = make_crash_cluster(5151, o);
    ASSERT_EQ(c->nic_kv()->valid_slaves(), 2);
    ASSERT_EQ(c->master().available_slaves(), 2);

    net::FaultSpec cut;
    cut.blocked = true;
    c->fabric().faults().set_pair(c->nic_kv()->endpoint(),
                                  c->slave(0).node().ep, cut);

    // Traffic to retransmit: fan-out frames pile up unacked on the cut
    // link while the healthy replica keeps the writes committing.
    RawConn conn(*c, c->master().node().ep, c->master().config().port, "rt");
    ASSERT_TRUE(conn.connected());
    for (int i = 0; i < 20; ++i) {
        conn.call({"SET", "rk" + std::to_string(i), "v"});
    }
    // Default ReliableParams: 8 retries, RTO 5ms doubling to 160ms —
    // terminal broken well under 3 seconds.
    c->sim().run_until(c->sim().now() + sim::seconds(3));

    EXPECT_GE(c->nic_kv()->stats().counter("links_broken"), 1u);
    EXPECT_GE(c->nic_kv()->stats().counter("failures_detected"), 1u);
    EXPECT_EQ(c->nic_kv()->valid_slaves(), 1);
    EXPECT_EQ(c->master().available_slaves(), 1);
    EXPECT_GT(c->nic_kv()->stats().counter("rel.retransmits"), 0u);
}

// Acceptance: with every server down, ops never hang — each completes
// with an explicit failure/timeout inside its deadline.
TEST(ChaosCrash, TotalOutageOpsFailExplicitlyWithinDeadline) {
    CrashClusterOpts o;
    o.n_slaves = 1;
    auto c = make_crash_cluster(6161, o);
    Fleet fleet;
    fleet.spawn(*c, 2, 6, 1.0, sim::milliseconds(150));
    c->sim().run_until(c->sim().now() + sim::milliseconds(300));
    ASSERT_FALSE(fleet.all_idle());
    const auto outage_at = c->sim().now();
    c->crash_node(-1);
    c->crash_node(0);

    ASSERT_TRUE(fleet.drain(*c, sim::seconds(40))) << "clients hung";
    EXPECT_EQ(fleet.history.size(), fleet.ops_issued);
    const auto deadline = sim::seconds(4);
    for (const auto& op : fleet.history.ops()) {
        EXPECT_LE(op.complete_ns - op.invoke_ns, deadline.ns())
            << "op exceeded its deadline";
        if (op.invoke_ns > outage_at.ns()) {
            EXPECT_NE(op.outcome, check::Outcome::kOk)
                << "op succeeded against a fully crashed cluster";
        }
    }
}

// Satellite: timeout/backoff determinism. The full crash scenario — with
// retries, backoff jitter, and failover — is a pure function of the seed:
// double-running it yields bit-identical trace digests and histories.
TEST(ChaosCrash, CrashScenarioDeterministicWithRetries) {
    auto run_once = [](std::uint64_t seed) {
        auto c = make_crash_cluster(seed);
        Fleet fleet;
        fleet.spawn(*c, 2, 25, 0.5);
        c->sim().run_until(c->sim().now() + sim::milliseconds(300));
        EXPECT_FALSE(fleet.all_idle());
        c->crash_node(-1);
        c->sim().run_until(c->sim().now() + sim::milliseconds(400));
        c->crash_node(0);
        c->sim().run_until(c->sim().now() + sim::milliseconds(500));
        c->restart_node(0, server::KvServer::RecoveryMode::kWarm);
        EXPECT_TRUE(fleet.drain(*c, sim::seconds(60)));
        std::string fp;
        fp += std::to_string(c->sim().events_executed()) + "|";
        fp += std::to_string(c->sim().trace_digest()) + "|";
        fp += fleet.history.to_json() + "|";
        fp += c->nic_kv()->stats().format() + "|";
        fp += std::to_string(fleet.ok());
        return fp;
    };
    EXPECT_EQ(run_once(31), run_once(31));
    EXPECT_NE(run_once(31), run_once(32));
}

} // namespace
} // namespace skv::offload
