#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos_support.hpp"
#include "check/history.hpp"
#include "check/linearize.hpp"
#include "kv/resp.hpp"
#include "net/fault.hpp"
#include "skv/cluster.hpp"
#include "workload/retry_client.hpp"

namespace skv::offload {
namespace {

// The cluster factory, client fleet, linearizability gate, and raw shell
// live in chaos_support.hpp, shared with the protocol-matrix suite.
using chaos::CrashClusterOpts;
using chaos::Fleet;
using chaos::RawConn;
using chaos::gate_linearizable;
using chaos::make_crash_cluster;

// ---------------------------------------------------------------------------
// Scenario 1: master crash + failover. The master dies mid-workload and
// stays dead; clients must ride over to the promoted stand-in and every
// op must complete (successfully or with an explicit failure) inside its
// deadline. The recorded history must be linearizable.
TEST(ChaosCrash, MasterCrashFailoverLinearizable) {
    for (const std::uint64_t seed : {9101ull, 9202ull, 9303ull}) {
        auto c = make_crash_cluster(seed);
        Fleet fleet;
        fleet.spawn(*c, 3, 40, 0.5);
        c->sim().run_until(c->sim().now() + sim::milliseconds(400));
        ASSERT_FALSE(fleet.all_idle()) << "workload finished pre-crash";
        const auto crash_at = c->sim().now();
        c->crash_node(-1);

        ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
        EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
        EXPECT_GT(fleet.total_retries(), 0u) << "seed " << seed;
        EXPECT_EQ(c->nic_kv()->stats().counter("failovers"), 1u)
            << "seed " << seed;
        int promoted = 0;
        for (int i = 0; i < c->slave_count(); ++i) {
            if (c->slave(i).role() == server::Role::kMaster) ++promoted;
        }
        EXPECT_EQ(promoted, 1) << "seed " << seed;
        // Progress resumed after the crash, not just before it.
        bool ok_after_crash = false;
        for (const auto& cl : fleet.clients) {
            if (cl->last_ok_at() > crash_at) ok_after_crash = true;
        }
        EXPECT_TRUE(ok_after_crash) << "seed " << seed;
        gate_linearizable(*c, fleet.history, "master-crash");
    }
}

// Scenario 2: slave crash during replication fan-out under commit gating.
// Writes park on replica acks; the crash must unblock them via the
// detector (flush or -WAITTIMEOUT + retry), and the warm restart must
// partially resync without corrupting the history.
TEST(ChaosCrash, SlaveCrashDuringFanoutLinearizable) {
    for (const std::uint64_t seed : {9404ull, 9505ull, 9606ull}) {
        auto c = make_crash_cluster(seed);
        Fleet fleet;
        fleet.spawn(*c, 3, 40, 0.7);
        c->sim().run_until(c->sim().now() + sim::milliseconds(300));
        ASSERT_FALSE(fleet.all_idle()) << "workload finished pre-crash";
        c->crash_node(0);
        c->sim().run_until(c->sim().now() + sim::milliseconds(800));
        c->restart_node(0, server::KvServer::RecoveryMode::kWarm);

        ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
        EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
        // Gating was actually exercised.
        EXPECT_GT(c->master().stats().counter("writes_parked"), 0u)
            << "seed " << seed;
        gate_linearizable(*c, fleet.history, "slave-crash");
        // The restarted slave rejoins and converges.
        c->sim().run_until(c->sim().now() + sim::seconds(8));
        EXPECT_TRUE(c->converged()) << "seed " << seed;
        EXPECT_TRUE(c->master().db().equals(c->slave(0).db()))
            << "seed " << seed;
    }
}

// Scenario 3: crash + partition at the same time. One slave is fully
// partitioned, another crashes; the master keeps serving through the
// survivor, then both impairments heal.
TEST(ChaosCrash, CrashPlusPartitionLinearizable) {
    for (const std::uint64_t seed : {9707ull, 9808ull, 9909ull}) {
        CrashClusterOpts o;
        o.n_slaves = 3;
        auto c = make_crash_cluster(seed, o);
        Fleet fleet;
        fleet.spawn(*c, 3, 40, 0.5);
        c->sim().run_until(c->sim().now() + sim::milliseconds(300));
        ASSERT_FALSE(fleet.all_idle()) << "workload finished pre-fault";

        net::FaultSpec cut;
        cut.blocked = true;
        c->fabric().faults().set_endpoint(c->slave(2).node().ep, cut);
        c->sim().run_until(c->sim().now() + sim::milliseconds(200));
        c->crash_node(1);
        c->sim().run_until(c->sim().now() + sim::seconds(1));
        c->restart_node(1, server::KvServer::RecoveryMode::kWarm);
        c->fabric().faults().clear_endpoint(c->slave(2).node().ep);

        ASSERT_TRUE(fleet.drain(*c, sim::seconds(60))) << "seed " << seed;
        EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
        gate_linearizable(*c, fleet.history, "crash+partition");
        c->sim().run_until(c->sim().now() + sim::seconds(10));
        EXPECT_TRUE(c->converged()) << "seed " << seed;
    }
}

// Scenario 4: seeded restart storm across the slaves (warm restarts) with
// the workload running throughout.
TEST(ChaosCrash, RestartStormLinearizable) {
    for (const std::uint64_t seed : {8111ull, 8222ull, 8333ull}) {
        CrashClusterOpts o;
        o.n_slaves = 3;
        auto c = make_crash_cluster(seed, o);
        Fleet fleet;
        fleet.spawn(*c, 4, 60, 0.5, sim::milliseconds(60));
        Cluster::CrashStormSpec storm;
        storm.crashes = 6;
        storm.downtime = sim::milliseconds(400);
        const int scheduled = c->schedule_crash_storm(storm);
        EXPECT_GT(scheduled, 0) << "seed " << seed;
        // The storm spans at most ~6 * 900ms; the paced workload runs
        // ~3.6s, so crashes land while clients are live.
        ASSERT_TRUE(fleet.drain(*c, sim::seconds(90))) << "seed " << seed;
        EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
        EXPECT_EQ(c->master().role(), server::Role::kMaster)
            << "seed " << seed;
        gate_linearizable(*c, fleet.history, "restart-storm");
        c->sim().run_until(c->sim().now() + sim::seconds(10));
        EXPECT_TRUE(c->converged()) << "seed " << seed;
    }
}

// Scenario 5: cold restarts recover from the periodic RDB snapshot plus
// backlog partial resync instead of process memory.
TEST(ChaosCrash, ColdRestartStormRecoversFromSnapshot) {
    for (const std::uint64_t seed : {8444ull, 8555ull, 8666ull}) {
        CrashClusterOpts o;
        o.persist_interval = sim::milliseconds(200);
        auto c = make_crash_cluster(seed, o);
        Fleet fleet;
        fleet.spawn(*c, 3, 50, 0.7, sim::milliseconds(60));
        Cluster::CrashStormSpec storm;
        storm.crashes = 4;
        storm.min_gap = sim::milliseconds(400);
        storm.max_gap = sim::seconds(1);
        storm.downtime = sim::milliseconds(500);
        storm.mode = server::KvServer::RecoveryMode::kCold;
        EXPECT_GT(c->schedule_crash_storm(storm), 0) << "seed " << seed;

        ASSERT_TRUE(fleet.drain(*c, sim::seconds(90))) << "seed " << seed;
        EXPECT_EQ(fleet.history.size(), fleet.ops_issued) << "seed " << seed;
        gate_linearizable(*c, fleet.history, "cold-storm");

        c->sim().run_until(c->sim().now() + sim::seconds(10));
        EXPECT_TRUE(c->converged()) << "seed " << seed;
        std::uint64_t cold = 0;
        std::uint64_t snaps = 0;
        for (int i = 0; i < c->slave_count(); ++i) {
            cold += c->slave(i).stats().counter("cold_recoveries");
            snaps += c->slave(i).stats().counter("snapshots_persisted");
        }
        EXPECT_GT(cold, 0u) << "seed " << seed;
        EXPECT_GT(snaps, 0u) << "seed " << seed;
        for (int i = 0; i < c->slave_count(); ++i) {
            EXPECT_TRUE(c->master().db().equals(c->slave(i).db()))
                << "seed " << seed << " slave" << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Self-test: the checker must provably reject a real injected consistency
// bug. With stale replica reads enabled and no commit gating, a read
// served by a replication-cut slave observes an old value; the recorded
// history is genuinely non-linearizable and the gate must say so.
TEST(ChaosCrash, CheckerRejectsInjectedStaleRead) {
    CrashClusterOpts o;
    o.wait_for_slaves = 0;
    o.serve_stale_reads = true; // the injected bug
    auto c = make_crash_cluster(7777, o);
    check::History hist;
    auto record = [&](check::OpType type, const std::string& value, bool found,
                      std::int64_t invoke, std::int64_t complete) {
        check::Op op;
        op.client = type == check::OpType::kWrite ? 1 : 2;
        op.seq = static_cast<std::uint64_t>(invoke);
        op.type = type;
        op.key = "sk";
        op.value = value;
        op.found = found;
        op.invoke_ns = invoke;
        op.complete_ns = complete;
        hist.record(op);
    };

    RawConn master(*c, c->master().node().ep, c->master().config().port, "w");
    ASSERT_TRUE(master.connected());
    std::int64_t t0 = c->sim().now().ns();
    EXPECT_TRUE(master.call({"SET", "sk", "v1"}).is_ok());
    record(check::OpType::kWrite, "v1", true, t0, c->sim().now().ns());
    c->sim().run_until(c->sim().now() + sim::seconds(1));
    ASSERT_TRUE(c->converged());

    // Cut replication to slave0 (both the NIC fan-out and the direct
    // master link), then overwrite the key. slave0 keeps v1 forever.
    net::FaultSpec cut;
    cut.blocked = true;
    c->fabric().faults().set_pair(c->nic_kv()->endpoint(),
                                  c->slave(0).node().ep, cut);
    c->fabric().faults().set_pair(c->master().node().ep,
                                  c->slave(0).node().ep, cut);
    t0 = c->sim().now().ns();
    EXPECT_TRUE(master.call({"SET", "sk", "v2"}).is_ok());
    record(check::OpType::kWrite, "v2", true, t0, c->sim().now().ns());
    c->sim().run_until(c->sim().now() + sim::milliseconds(100));

    RawConn stale(*c, c->slave(0).node().ep, c->slave(0).config().port, "r");
    ASSERT_TRUE(stale.connected());
    t0 = c->sim().now().ns();
    const auto v = stale.call({"GET", "sk"});
    ASSERT_EQ(v.kind, kv::resp::Value::Kind::kBulk);
    EXPECT_EQ(v.str, "v1") << "expected the injected stale read";
    record(check::OpType::kRead, v.str, true, t0, c->sim().now().ns());

    const auto res = check::check_history(hist);
    EXPECT_FALSE(res.linearizable)
        << "checker failed to reject an injected stale read";
}

// Duplicate-suppressed write retries never double-apply, across both the
// direct-retry path and the replicated stream (APPEND makes re-execution
// visible as a doubled suffix).
TEST(ChaosCrash, DuplicateWriteRetryNeverDoubleApplies) {
    CrashClusterOpts o;
    o.wait_for_slaves = 0;
    auto c = make_crash_cluster(4242, o);
    RawConn conn(*c, c->master().node().ep, c->master().config().port, "dup");
    ASSERT_TRUE(conn.connected());

    auto v1 = conn.call({"WSEQ", "7", "1", "APPEND", "dk", "x"});
    ASSERT_EQ(v1.kind, kv::resp::Value::Kind::kInteger);
    EXPECT_EQ(v1.num, 1);
    // The "retry": same client, same sequence. The cached reply comes
    // back; the command must NOT run again.
    auto v2 = conn.call({"WSEQ", "7", "1", "APPEND", "dk", "x"});
    ASSERT_EQ(v2.kind, kv::resp::Value::Kind::kInteger);
    EXPECT_EQ(v2.num, 1);
    EXPECT_GE(c->master().stats().counter("dup_suppressed"), 1u);

    auto v3 = conn.call({"WSEQ", "7", "2", "APPEND", "dk", "y"});
    ASSERT_EQ(v3.kind, kv::resp::Value::Kind::kInteger);
    EXPECT_EQ(v3.num, 2);
    // A stale (superseded) sequence is refused outright.
    auto v4 = conn.call({"WSEQ", "7", "1", "APPEND", "dk", "z"});
    EXPECT_TRUE(v4.is_error());
    EXPECT_EQ(v4.str.find("DUPSEQ"), 0u);

    auto got = conn.call({"GET", "dk"});
    ASSERT_EQ(got.kind, kv::resp::Value::Kind::kBulk);
    EXPECT_EQ(got.str, "xy");

    // The replicated stream carried the tags: slaves applied each write
    // exactly once too.
    c->sim().run_until(c->sim().now() + sim::seconds(2));
    ASSERT_TRUE(c->converged());
    for (int i = 0; i < c->slave_count(); ++i) {
        EXPECT_TRUE(c->master().db().equals(c->slave(i).db())) << i;
    }
}

// Satellite: retransmit exhaustion. A one-directional NIC->slave cut with
// a deliberately slow probe detector: the reliable layer must reach its
// terminal broken state first and that event alone must invalidate the
// slave in Nic-KV's node table and the master's replica count.
TEST(ChaosCrash, RetransmitExhaustionBreaksLinkAndInvalidates) {
    CrashClusterOpts o;
    o.waiting_time = sim::seconds(30); // probes can't win this race
    auto c = make_crash_cluster(5151, o);
    ASSERT_EQ(c->nic_kv()->valid_slaves(), 2);
    ASSERT_EQ(c->master().available_slaves(), 2);

    net::FaultSpec cut;
    cut.blocked = true;
    c->fabric().faults().set_pair(c->nic_kv()->endpoint(),
                                  c->slave(0).node().ep, cut);

    // Traffic to retransmit: fan-out frames pile up unacked on the cut
    // link while the healthy replica keeps the writes committing.
    RawConn conn(*c, c->master().node().ep, c->master().config().port, "rt");
    ASSERT_TRUE(conn.connected());
    for (int i = 0; i < 20; ++i) {
        conn.call({"SET", "rk" + std::to_string(i), "v"});
    }
    // Default ReliableParams: 8 retries, RTO 5ms doubling to 160ms —
    // terminal broken well under 3 seconds.
    c->sim().run_until(c->sim().now() + sim::seconds(3));

    EXPECT_GE(c->nic_kv()->stats().counter("links_broken"), 1u);
    EXPECT_GE(c->nic_kv()->stats().counter("failures_detected"), 1u);
    EXPECT_EQ(c->nic_kv()->valid_slaves(), 1);
    EXPECT_EQ(c->master().available_slaves(), 1);
    EXPECT_GT(c->nic_kv()->stats().counter("rel.retransmits"), 0u);
}

// Acceptance: with every server down, ops never hang — each completes
// with an explicit failure/timeout inside its deadline.
TEST(ChaosCrash, TotalOutageOpsFailExplicitlyWithinDeadline) {
    CrashClusterOpts o;
    o.n_slaves = 1;
    auto c = make_crash_cluster(6161, o);
    Fleet fleet;
    fleet.spawn(*c, 2, 6, 1.0, sim::milliseconds(150));
    c->sim().run_until(c->sim().now() + sim::milliseconds(300));
    ASSERT_FALSE(fleet.all_idle());
    const auto outage_at = c->sim().now();
    c->crash_node(-1);
    c->crash_node(0);

    ASSERT_TRUE(fleet.drain(*c, sim::seconds(40))) << "clients hung";
    EXPECT_EQ(fleet.history.size(), fleet.ops_issued);
    const auto deadline = sim::seconds(4);
    for (const auto& op : fleet.history.ops()) {
        EXPECT_LE(op.complete_ns - op.invoke_ns, deadline.ns())
            << "op exceeded its deadline";
        if (op.invoke_ns > outage_at.ns()) {
            EXPECT_NE(op.outcome, check::Outcome::kOk)
                << "op succeeded against a fully crashed cluster";
        }
    }
}

// Satellite: timeout/backoff determinism. The full crash scenario — with
// retries, backoff jitter, and failover — is a pure function of the seed:
// double-running it yields bit-identical trace digests and histories.
TEST(ChaosCrash, CrashScenarioDeterministicWithRetries) {
    auto run_once = [](std::uint64_t seed) {
        auto c = make_crash_cluster(seed);
        Fleet fleet;
        fleet.spawn(*c, 2, 25, 0.5);
        c->sim().run_until(c->sim().now() + sim::milliseconds(300));
        EXPECT_FALSE(fleet.all_idle());
        c->crash_node(-1);
        c->sim().run_until(c->sim().now() + sim::milliseconds(400));
        c->crash_node(0);
        c->sim().run_until(c->sim().now() + sim::milliseconds(500));
        c->restart_node(0, server::KvServer::RecoveryMode::kWarm);
        EXPECT_TRUE(fleet.drain(*c, sim::seconds(60)));
        std::string fp;
        fp += std::to_string(c->sim().events_executed()) + "|";
        fp += std::to_string(c->sim().trace_digest()) + "|";
        fp += fleet.history.to_json() + "|";
        fp += c->nic_kv()->stats().format() + "|";
        fp += std::to_string(fleet.ok());
        return fp;
    };
    EXPECT_EQ(run_once(31), run_once(31));
    EXPECT_NE(run_once(31), run_once(32));
}

} // namespace
} // namespace skv::offload
