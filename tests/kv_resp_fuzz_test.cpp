#include <gtest/gtest.h>

#include "kv/resp.hpp"
#include "sim/rng.hpp"

namespace skv::kv::resp {
namespace {

/// Robustness sweeps: the parsers face bytes from the network, so they
/// must never crash, hang, or mis-signal on arbitrary input, and must
/// always make progress (consume bytes or ask for more).

class RespFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RespFuzzTest, RequestParserSurvivesRandomBytes) {
    sim::Rng rng(GetParam());
    RequestParser p;
    std::vector<std::string> argv;
    std::string err;
    for (int round = 0; round < 2000; ++round) {
        std::string junk;
        const auto len = rng.next_below(64) + 1;
        for (std::size_t i = 0; i < len; ++i) {
            // Bias toward protocol-significant bytes to reach deep states.
            const char interesting[] = "*$:+-\r\n0123456789abc \"'";
            junk.push_back(rng.next_bool(0.7)
                               ? interesting[rng.next_below(sizeof(interesting) - 1)]
                               : static_cast<char>(rng.next_u64()));
        }
        p.feed(junk);
        // Drain until the parser stalls; a protocol error resets the state
        // (a real server would close the connection).
        for (int guard = 0; guard < 10'000; ++guard) {
            const auto st = p.next(&argv, &err);
            if (st == Status::kNeedMore) break;
            if (st == Status::kError) {
                p.reset();
                break;
            }
            ASSERT_FALSE(argv.empty());
        }
    }
    SUCCEED();
}

TEST_P(RespFuzzTest, ReplyParserSurvivesRandomBytes) {
    sim::Rng rng(GetParam() ^ 0x5A5A);
    ReplyParser p;
    Value v;
    for (int round = 0; round < 2000; ++round) {
        std::string junk;
        const auto len = rng.next_below(64) + 1;
        for (std::size_t i = 0; i < len; ++i) {
            const char interesting[] = "*$:+-\r\n0123456789abc";
            junk.push_back(rng.next_bool(0.7)
                               ? interesting[rng.next_below(sizeof(interesting) - 1)]
                               : static_cast<char>(rng.next_u64()));
        }
        p.feed(junk);
        for (int guard = 0; guard < 10'000; ++guard) {
            const auto st = p.next(&v);
            if (st == Status::kNeedMore) break;
            if (st == Status::kError) {
                p.reset();
                break;
            }
        }
    }
    SUCCEED();
}

TEST_P(RespFuzzTest, ValidCommandsSurviveArbitraryChunking) {
    // Encode a pipeline of valid commands, then feed it in random-sized
    // chunks: every command must come out intact and in order.
    sim::Rng rng(GetParam() ^ 0xC0FFEE);
    std::vector<std::vector<std::string>> cmds;
    std::string wire;
    for (int i = 0; i < 50; ++i) {
        std::vector<std::string> argv{"SET", "key:" + std::to_string(i)};
        std::string value;
        const auto len = rng.next_below(100);
        for (std::size_t b = 0; b < len; ++b) {
            value.push_back(static_cast<char>(rng.next_u64()));
        }
        argv.push_back(value);
        wire += command(argv);
        cmds.push_back(std::move(argv));
    }

    RequestParser p;
    std::size_t fed = 0;
    std::size_t parsed = 0;
    std::vector<std::string> argv;
    while (fed < wire.size() || parsed < cmds.size()) {
        if (fed < wire.size()) {
            const auto n = std::min<std::size_t>(rng.next_below(40) + 1,
                                                 wire.size() - fed);
            p.feed(wire.substr(fed, n));
            fed += n;
        }
        for (;;) {
            const auto st = p.next(&argv);
            if (st != Status::kOk) {
                ASSERT_EQ(st, Status::kNeedMore);
                break;
            }
            ASSERT_LT(parsed, cmds.size());
            ASSERT_EQ(argv, cmds[parsed]);
            ++parsed;
        }
    }
    EXPECT_EQ(parsed, cmds.size());
}

TEST_P(RespFuzzTest, NestedRepliesSurviveChunking) {
    sim::Rng rng(GetParam() ^ 0xBEEF);
    // Build a deep-ish but legal reply and a few flat ones.
    std::string wire = array_header(3) + integer(1) +
                       (array_header(2) + bulk("x") + null_bulk()) +
                       simple("OK");
    wire += error("ERR nope") + bulk(std::string(1000, 'z'));

    ReplyParser p;
    std::size_t fed = 0;
    int values = 0;
    Value v;
    while (fed < wire.size() || values < 3) {
        if (fed < wire.size()) {
            const auto n = std::min<std::size_t>(rng.next_below(7) + 1,
                                                 wire.size() - fed);
            p.feed(wire.substr(fed, n));
            fed += n;
        }
        for (;;) {
            const auto st = p.next(&v);
            if (st != Status::kOk) {
                ASSERT_EQ(st, Status::kNeedMore);
                break;
            }
            ++values;
        }
        if (fed >= wire.size() && values >= 3) break;
    }
    EXPECT_EQ(values, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RespFuzzTest,
                         ::testing::Values(1u, 42u, 777u, 31337u));

} // namespace
} // namespace skv::kv::resp
