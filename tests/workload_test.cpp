#include <gtest/gtest.h>

#include "skv/cluster.hpp"
#include "workload/runner.hpp"

namespace skv::workload {
namespace {

TEST(Generator, DeterministicPerSeed) {
    WorkloadSpec spec;
    Generator a(spec, sim::Rng(4));
    Generator b(spec, sim::Rng(4));
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Generator, PureSetAndPureGet) {
    WorkloadSpec set_spec;
    set_spec.set_ratio = 1.0;
    Generator gs(set_spec, sim::Rng(1));
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(gs.next()[0], "SET");
    }
    WorkloadSpec get_spec;
    get_spec.set_ratio = 0.0;
    Generator gg(get_spec, sim::Rng(1));
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(gg.next()[0], "GET");
    }
}

TEST(Generator, MixedRatioRoughlyHolds) {
    WorkloadSpec spec;
    spec.set_ratio = 0.3;
    Generator g(spec, sim::Rng(2));
    for (int i = 0; i < 20'000; ++i) g.next();
    const double ratio = static_cast<double>(g.sets_generated()) /
                         static_cast<double>(g.sets_generated() + g.gets_generated());
    EXPECT_NEAR(ratio, 0.3, 0.02);
}

TEST(Generator, KeysWithinKeyspace) {
    WorkloadSpec spec;
    spec.key_count = 10;
    spec.key_prefix = "p:";
    Generator g(spec, sim::Rng(3));
    for (int i = 0; i < 1000; ++i) {
        const auto cmd = g.next();
        ASSERT_EQ(cmd[1].rfind("p:", 0), 0u);
        const int idx = std::stoi(cmd[1].substr(2));
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, 10);
    }
}

TEST(Generator, ValueSizeExact) {
    WorkloadSpec spec;
    spec.value_bytes = 137;
    Generator g(spec, sim::Rng(4));
    const auto cmd = g.next();
    ASSERT_EQ(cmd[0], "SET");
    EXPECT_EQ(cmd[2].size(), 137u);
}

TEST(Generator, ZipfianConcentratesOnHotKeys) {
    WorkloadSpec spec;
    spec.key_dist = KeyDist::kZipfian;
    spec.zipf_theta = 0.99;
    spec.key_count = 1000;
    Generator g(spec, sim::Rng(5));
    std::map<std::string, int> counts;
    for (int i = 0; i < 20'000; ++i) ++counts[g.next()[1]];
    // The hottest key should dominate the median key by a wide margin.
    int max_count = 0;
    for (const auto& [k, v] : counts) max_count = std::max(max_count, v);
    EXPECT_GT(max_count, 1000);
}

TEST(Runner, SmokeRunProducesSaneNumbers) {
    offload::ClusterConfig cfg;
    cfg.n_slaves = 0;
    offload::Cluster c(cfg);
    c.start();
    RunOptions opts;
    opts.clients = 4;
    opts.warmup = sim::milliseconds(50);
    opts.measure = sim::milliseconds(300);
    const auto r = run_workload(c, opts);
    EXPECT_GT(r.throughput_kops, 50.0);
    EXPECT_GT(r.ops, 10'000u);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_GT(r.mean_us, 1.0);
    EXPECT_GE(r.p99_us, r.p50_us);
    EXPECT_GE(r.max_us, r.p99_us);
    EXPECT_GT(r.master_cpu_util, 0.1);
    EXPECT_LE(r.master_cpu_util, 1.01);
}

TEST(Runner, TimelineBinsSumToOps) {
    offload::ClusterConfig cfg;
    cfg.n_slaves = 0;
    offload::Cluster c(cfg);
    c.start();
    RunOptions opts;
    opts.clients = 2;
    opts.warmup = sim::milliseconds(20);
    opts.measure = sim::milliseconds(200);
    opts.timeline_bin = sim::milliseconds(50);
    const auto r = run_workload(c, opts);
    ASSERT_FALSE(r.timeline_kops.empty());
    double total = 0;
    for (const double kops : r.timeline_kops) total += kops * 0.05 * 1e3;
    EXPECT_NEAR(total, static_cast<double>(r.ops),
                static_cast<double>(r.ops) * 0.02);
}

TEST(Runner, PreloadPopulatesAllNodes) {
    offload::ClusterConfig cfg;
    cfg.n_slaves = 2;
    cfg.offload = true;
    offload::Cluster c(cfg);
    c.start();
    RunOptions opts;
    opts.clients = 1;
    opts.spec.set_ratio = 0.0;
    opts.spec.key_count = 100;
    opts.preload = true;
    opts.warmup = sim::milliseconds(10);
    opts.measure = sim::milliseconds(50);
    const auto r = run_workload(c, opts);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(c.master().db().size(), 100u);
    EXPECT_EQ(c.slave(0).db().size(), 100u);
    EXPECT_EQ(c.slave(1).db().size(), 100u);
}

TEST(Runner, FaultInjectionCrashesAndRecovers) {
    offload::ClusterConfig cfg;
    cfg.n_slaves = 2;
    cfg.offload = true;
    offload::Cluster c(cfg);
    c.start();
    RunOptions opts;
    opts.clients = 2;
    opts.warmup = sim::milliseconds(20);
    opts.measure = sim::seconds(6);
    opts.faults.push_back({sim::seconds(1), 0, false});
    opts.faults.push_back({sim::seconds(3), 0, true});
    const auto r = run_workload(c, opts);
    EXPECT_GT(r.ops, 0u);
    EXPECT_FALSE(c.slave(0).crashed());
    EXPECT_EQ(c.slave(0).stats().counter("crashes"), 1u);
    EXPECT_EQ(c.slave(0).stats().counter("recoveries"), 1u);
}

TEST(RunResult, SummaryFormats) {
    RunResult r;
    r.throughput_kops = 123.4;
    r.ops = 10;
    EXPECT_NE(r.summary().find("123.4"), std::string::npos);
}

} // namespace
} // namespace skv::workload
