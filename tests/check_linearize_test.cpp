#include <gtest/gtest.h>

#include <string>

#include "check/history.hpp"
#include "check/linearize.hpp"

namespace skv::check {
namespace {

// History-building helpers: times are plain integers (ns), ops complete
// instantly unless an interval is given.
Op w(std::uint64_t client, const std::string& key, const std::string& value,
     std::int64_t invoke, std::int64_t complete, Outcome out = Outcome::kOk) {
    Op op;
    op.client = client;
    op.seq = static_cast<std::uint64_t>(invoke);
    op.type = OpType::kWrite;
    op.key = key;
    op.value = value;
    op.outcome = out;
    op.invoke_ns = invoke;
    op.complete_ns = complete;
    return op;
}

Op r(std::uint64_t client, const std::string& key, const std::string& value,
     bool found, std::int64_t invoke, std::int64_t complete,
     Outcome out = Outcome::kOk) {
    Op op;
    op.client = client;
    op.seq = static_cast<std::uint64_t>(invoke);
    op.type = OpType::kRead;
    op.key = key;
    op.value = value;
    op.found = found;
    op.outcome = out;
    op.invoke_ns = invoke;
    op.complete_ns = complete;
    return op;
}

TEST(Linearize, EmptyHistoryIsLinearizable) {
    History h;
    const auto res = check_history(h);
    EXPECT_TRUE(res.linearizable);
    EXPECT_FALSE(res.budget_exhausted);
    EXPECT_EQ(res.keys_checked, 0u);
}

TEST(Linearize, SequentialRegisterHistoryFastPath) {
    History h;
    h.record(w(1, "k", "a", 0, 10));
    h.record(r(1, "k", "a", true, 20, 30));
    h.record(w(1, "k", "b", 40, 50));
    h.record(r(2, "k", "b", true, 60, 70));
    const auto res = check_history(h);
    EXPECT_TRUE(res.linearizable) << res.reason;
    EXPECT_EQ(res.keys_checked, 1u);
    // Real-time order is total here: the O(n) pass must settle it.
    EXPECT_EQ(res.keys_fast_path, 1u);
    EXPECT_EQ(res.nodes_explored, 0u);
}

TEST(Linearize, StaleReadRejected) {
    History h;
    h.record(w(1, "k", "v1", 0, 10));
    h.record(w(1, "k", "v2", 20, 30));
    // Sequentially after v2 committed, a read must not observe v1.
    h.record(r(2, "k", "v1", true, 40, 50));
    const auto res = check_history(h);
    EXPECT_FALSE(res.linearizable);
    EXPECT_NE(res.reason.find("k"), std::string::npos);
}

TEST(Linearize, ReadOfNeverWrittenValueRejected) {
    History h;
    h.record(w(1, "k", "a", 0, 10));
    h.record(r(2, "k", "ghost", true, 20, 30));
    EXPECT_FALSE(check_history(h).linearizable);
}

TEST(Linearize, MissBeforeWriteOkMissAfterWriteRejected) {
    History ok;
    ok.record(r(2, "k", "", false, 0, 5));
    ok.record(w(1, "k", "a", 10, 20));
    EXPECT_TRUE(check_history(ok).linearizable);

    History bad;
    bad.record(w(1, "k", "a", 0, 10));
    bad.record(r(2, "k", "", false, 20, 30));
    EXPECT_FALSE(check_history(bad).linearizable);
}

TEST(Linearize, ConcurrentWritesEitherOrderAccepted) {
    // w(a) and w(b) overlap; a later read may see either.
    for (const std::string seen : {"a", "b"}) {
        History h;
        h.record(w(1, "k", "a", 0, 100));
        h.record(w(2, "k", "b", 10, 90));
        h.record(r(3, "k", seen, true, 200, 210));
        EXPECT_TRUE(check_history(h).linearizable) << "seen=" << seen;
    }
}

TEST(Linearize, SequentialReadsDisagreeingOnWriteOrderRejected) {
    // Both writes complete, then two sequential reads observe different
    // values with no intervening write: no single write order explains it.
    History h;
    h.record(w(1, "k", "a", 0, 100));
    h.record(w(2, "k", "b", 10, 90));
    h.record(r(3, "k", "b", true, 200, 210));
    h.record(r(3, "k", "a", true, 220, 230));
    EXPECT_FALSE(check_history(h).linearizable);
}

TEST(Linearize, ReadConcurrentWithWriteSeesOldOrNew) {
    for (const bool sees_new : {false, true}) {
        History h;
        h.record(w(1, "k", "old", 0, 10));
        h.record(w(1, "k", "new", 100, 200));
        h.record(r(2, "k", sees_new ? "new" : "old", true, 150, 160));
        EXPECT_TRUE(check_history(h).linearizable) << "sees_new=" << sees_new;
    }
}

TEST(Linearize, TimedOutWriteMayTakeEffect) {
    // The client gave up, but the write reached the store: a later read
    // observing it is fine (open-ended op linearized before the read).
    History h;
    h.record(w(1, "k", "v", 0, 50, Outcome::kTimeout));
    h.record(r(2, "k", "v", true, 100, 110));
    EXPECT_TRUE(check_history(h).linearizable);
}

TEST(Linearize, TimedOutWriteMayVanish) {
    History h;
    h.record(w(1, "k", "a", 0, 10));
    h.record(w(2, "k", "lost", 20, 30, Outcome::kTimeout));
    h.record(r(3, "k", "a", true, 100, 110));
    EXPECT_TRUE(check_history(h).linearizable);
}

TEST(Linearize, FailedWriteMustNotBeObserved) {
    // kFail promises "definitely not applied"; observing its value means
    // either the client lied or the store leaked a rejected write.
    History h;
    h.record(w(1, "k", "rejected", 0, 10, Outcome::kFail));
    h.record(r(2, "k", "rejected", true, 20, 30));
    EXPECT_FALSE(check_history(h).linearizable);
}

TEST(Linearize, KeysArePartitionedIndependently) {
    History h;
    h.record(w(1, "good", "x", 0, 10));
    h.record(r(2, "good", "x", true, 20, 30));
    h.record(w(1, "bad", "p", 0, 10));
    h.record(w(1, "bad", "q", 20, 30));
    h.record(r(2, "bad", "p", true, 40, 50)); // stale
    const auto res = check_history(h);
    EXPECT_FALSE(res.linearizable);
    // The checker stops at the first offending key ("bad" sorts first);
    // the healthy key never taints the verdict.
    EXPECT_NE(res.reason.find("bad"), std::string::npos);

    History healthy;
    healthy.record(w(1, "good", "x", 0, 10));
    healthy.record(r(2, "good", "x", true, 20, 30));
    EXPECT_TRUE(check_history(healthy).linearizable);
}

TEST(Linearize, BudgetExhaustionIsFlaggedNotFailed) {
    // Heavily overlapped ops defeat the fast pass; a 1-node budget cannot
    // finish the search. The verdict must be "indeterminate", not "bug".
    History h;
    h.record(w(1, "k", "a", 0, 100));
    h.record(w(2, "k", "b", 0, 100));
    h.record(w(3, "k", "c", 0, 100));
    h.record(r(4, "k", "b", true, 0, 100));
    CheckOptions opts;
    opts.max_nodes_per_key = 1;
    const auto res = check_history(h, opts);
    EXPECT_TRUE(res.budget_exhausted);
    EXPECT_TRUE(res.linearizable);
}

TEST(Linearize, DeepConcurrencySearchCompletes) {
    // A pile of pairwise-overlapping writes plus consistent reads: forces
    // the DFS (no total order) but must stay well within budget thanks to
    // the memo cache.
    History h;
    for (int i = 0; i < 12; ++i) {
        h.record(w(static_cast<std::uint64_t>(i), "k",
                   "v" + std::to_string(i), i, 1000 + i));
    }
    h.record(r(99, "k", "v7", true, 2000, 2010));
    const auto res = check_history(h);
    EXPECT_TRUE(res.linearizable) << res.reason;
    EXPECT_FALSE(res.budget_exhausted);
    EXPECT_GT(res.nodes_explored, 0u);
}

TEST(Linearize, HistoryJsonRoundTripsSchemaMarker) {
    History h;
    h.record(w(1, "k", "a\"b", 0, 10));
    const std::string json = h.to_json();
    EXPECT_NE(json.find("skv-history-v1"), std::string::npos);
    EXPECT_NE(json.find("\\\""), std::string::npos);
}

} // namespace
} // namespace skv::check
