#include <gtest/gtest.h>

#include "kv/rdb.hpp"

namespace skv::kv::rdb {
namespace {

Database make_db() {
    return Database([] { return std::int64_t{1000}; });
}

void fill(Database& db) {
    db.set("str", Object::make_string("value"));
    db.set("num", Object::make_string("12345"));
    auto lst = Object::make_list();
    lst->list().push_back(Sds("a"));
    lst->list().push_back(Sds("b"));
    db.set("lst", lst);
    auto st = Object::make_set();
    st->set_add("1");
    st->set_add("2");
    st->set_add("word");
    db.set("set", st);
    auto h = Object::make_hash();
    h->hash().set(Sds("f1"), Sds("v1"));
    h->hash().set(Sds("f2"), Sds("v2"));
    db.set("hsh", h);
    auto z = Object::make_zset();
    z->zadd(1.5, "alice");
    z->zadd(-2.0, "bob");
    db.set("zst", z);
    db.set_expire("str", 5000);
}

TEST(Rdb, RoundTripAllTypes) {
    Database src = make_db();
    fill(src);
    const std::string bytes = save(src);
    Database dst = make_db();
    ASSERT_EQ(load(bytes, dst), LoadStatus::kOk);
    EXPECT_TRUE(src.equals(dst));
    EXPECT_TRUE(dst.equals(src));
    EXPECT_EQ(*dst.expire_at("str"), 5000);
}

TEST(Rdb, EmptyDatabase) {
    Database src = make_db();
    const std::string bytes = save(src);
    Database dst = make_db();
    dst.set("leftover", Object::make_string("x"));
    ASSERT_EQ(load(bytes, dst), LoadStatus::kOk);
    EXPECT_EQ(dst.size(), 0u); // load replaces contents
}

TEST(Rdb, SaveIsDeterministic) {
    Database a = make_db();
    Database b = make_db();
    fill(a);
    fill(b);
    EXPECT_EQ(save(a), save(b));
}

TEST(Rdb, BadMagic) {
    Database dst = make_db();
    EXPECT_EQ(load("NOTANRDBFILE0123456789", dst), LoadStatus::kBadMagic);
}

TEST(Rdb, Truncated) {
    Database src = make_db();
    fill(src);
    const std::string bytes = save(src);
    Database dst = make_db();
    EXPECT_EQ(load(bytes.substr(0, 4), dst), LoadStatus::kTruncated);
    EXPECT_EQ(dst.size(), 0u);
}

TEST(Rdb, CorruptionDetectedByChecksum) {
    Database src = make_db();
    fill(src);
    std::string bytes = save(src);
    bytes[bytes.size() / 2] ^= 0x5A; // flip bits mid-payload
    Database dst = make_db();
    EXPECT_EQ(load(bytes, dst), LoadStatus::kBadChecksum);
    EXPECT_EQ(dst.size(), 0u); // half-loaded state not served
}

TEST(Rdb, TamperedChecksum) {
    Database src = make_db();
    fill(src);
    std::string bytes = save(src);
    bytes.back() = static_cast<char>(bytes.back() + 1);
    Database dst = make_db();
    EXPECT_EQ(load(bytes, dst), LoadStatus::kBadChecksum);
}

TEST(Rdb, LargeValuesRoundTrip) {
    Database src = make_db();
    src.set("big", Object::make_string(std::string(300'000, 'x')));
    const std::string bytes = save(src);
    Database dst = make_db();
    ASSERT_EQ(load(bytes, dst), LoadStatus::kOk);
    EXPECT_EQ(dst.lookup("big")->string_len(), 300'000u);
}

TEST(Rdb, ManyKeysRoundTrip) {
    Database src = make_db();
    for (int i = 0; i < 5000; ++i) {
        src.set("key:" + std::to_string(i),
                Object::make_string("val:" + std::to_string(i)));
    }
    const std::string bytes = save(src);
    Database dst = make_db();
    ASSERT_EQ(load(bytes, dst), LoadStatus::kOk);
    EXPECT_EQ(dst.size(), 5000u);
    EXPECT_TRUE(src.equals(dst));
}

TEST(Crc64, KnownProperties) {
    EXPECT_EQ(crc64(0, ""), 0u);
    const auto a = crc64(0, "hello");
    const auto b = crc64(0, "hello");
    const auto c = crc64(0, "hellp");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // Incremental == one-shot.
    const auto inc = crc64(crc64(0, "he"), "llo");
    EXPECT_EQ(inc, a);
}

TEST(LoadStatusNames, AllDistinct) {
    EXPECT_STREQ(to_string(LoadStatus::kOk), "ok");
    EXPECT_STREQ(to_string(LoadStatus::kBadMagic), "bad-magic");
    EXPECT_STREQ(to_string(LoadStatus::kBadChecksum), "bad-checksum");
}

} // namespace
} // namespace skv::kv::rdb
