#include <gtest/gtest.h>

#include "kv/rdb.hpp"
#include "sim/rng.hpp"

namespace skv::kv::rdb {
namespace {

Database make_db() {
    return Database([] { return std::int64_t{1000}; });
}

void fill(Database& db) {
    db.set("str", Object::make_string("value"));
    db.set("num", Object::make_string("12345"));
    auto lst = Object::make_list();
    lst->list().push_back(Sds("a"));
    lst->list().push_back(Sds("b"));
    db.set("lst", lst);
    auto st = Object::make_set();
    st->set_add("1");
    st->set_add("2");
    st->set_add("word");
    db.set("set", st);
    auto h = Object::make_hash();
    h->hash().set(Sds("f1"), Sds("v1"));
    h->hash().set(Sds("f2"), Sds("v2"));
    db.set("hsh", h);
    auto z = Object::make_zset();
    z->zadd(1.5, "alice");
    z->zadd(-2.0, "bob");
    db.set("zst", z);
    db.set_expire("str", 5000);
}

TEST(Rdb, RoundTripAllTypes) {
    Database src = make_db();
    fill(src);
    const std::string bytes = save(src);
    Database dst = make_db();
    ASSERT_EQ(load(bytes, dst), LoadStatus::kOk);
    EXPECT_TRUE(src.equals(dst));
    EXPECT_TRUE(dst.equals(src));
    EXPECT_EQ(*dst.expire_at("str"), 5000);
}

TEST(Rdb, EmptyDatabase) {
    Database src = make_db();
    const std::string bytes = save(src);
    Database dst = make_db();
    dst.set("leftover", Object::make_string("x"));
    ASSERT_EQ(load(bytes, dst), LoadStatus::kOk);
    EXPECT_EQ(dst.size(), 0u); // load replaces contents
}

TEST(Rdb, SaveIsDeterministic) {
    Database a = make_db();
    Database b = make_db();
    fill(a);
    fill(b);
    EXPECT_EQ(save(a), save(b));
}

TEST(Rdb, BadMagic) {
    Database dst = make_db();
    EXPECT_EQ(load("NOTANRDBFILE0123456789", dst), LoadStatus::kBadMagic);
}

TEST(Rdb, Truncated) {
    Database src = make_db();
    fill(src);
    const std::string bytes = save(src);
    Database dst = make_db();
    EXPECT_EQ(load(bytes.substr(0, 4), dst), LoadStatus::kTruncated);
    EXPECT_EQ(dst.size(), 0u);
}

TEST(Rdb, CorruptionDetectedByChecksum) {
    Database src = make_db();
    fill(src);
    std::string bytes = save(src);
    bytes[bytes.size() / 2] ^= 0x5A; // flip bits mid-payload
    Database dst = make_db();
    EXPECT_EQ(load(bytes, dst), LoadStatus::kBadChecksum);
    EXPECT_EQ(dst.size(), 0u); // half-loaded state not served
}

TEST(Rdb, TamperedChecksum) {
    Database src = make_db();
    fill(src);
    std::string bytes = save(src);
    bytes.back() = static_cast<char>(bytes.back() + 1);
    Database dst = make_db();
    EXPECT_EQ(load(bytes, dst), LoadStatus::kBadChecksum);
}

TEST(Rdb, LargeValuesRoundTrip) {
    Database src = make_db();
    src.set("big", Object::make_string(std::string(300'000, 'x')));
    const std::string bytes = save(src);
    Database dst = make_db();
    ASSERT_EQ(load(bytes, dst), LoadStatus::kOk);
    EXPECT_EQ(dst.lookup("big")->string_len(), 300'000u);
}

TEST(Rdb, ManyKeysRoundTrip) {
    Database src = make_db();
    for (int i = 0; i < 5000; ++i) {
        src.set("key:" + std::to_string(i),
                Object::make_string("val:" + std::to_string(i)));
    }
    const std::string bytes = save(src);
    Database dst = make_db();
    ASSERT_EQ(load(bytes, dst), LoadStatus::kOk);
    EXPECT_EQ(dst.size(), 5000u);
    EXPECT_TRUE(src.equals(dst));
}

TEST(Rdb, ExpiryMetadataRoundTripsBitIdentically) {
    // Cold recovery reloads snapshots verbatim; expiry timestamps — even
    // zero, negative, or already-past ones — must survive exactly, or a
    // restarted node resurrects dead keys as immortal ones.
    Database src = make_db(); // clock pinned at 1000ms
    src.set("future", Object::make_string("a"));
    ASSERT_TRUE(src.set_expire("future", 5000));
    src.set("past", Object::make_string("b"));
    ASSERT_TRUE(src.set_expire("past", 500));
    src.set("zero", Object::make_string("c"));
    ASSERT_TRUE(src.set_expire("zero", 0));
    src.set("negative", Object::make_string("d"));
    ASSERT_TRUE(src.set_expire("negative", -7));

    const std::string bytes = save(src);
    Database dst = make_db();
    ASSERT_EQ(load(bytes, dst), LoadStatus::kOk);
    EXPECT_EQ(*dst.expire_at("future"), 5000);
    EXPECT_EQ(*dst.expire_at("past"), 500);
    EXPECT_EQ(*dst.expire_at("zero"), 0);
    EXPECT_EQ(*dst.expire_at("negative"), -7);
    // Re-serializing the loaded copy reproduces the snapshot byte for
    // byte — the round trip loses nothing.
    EXPECT_EQ(save(dst), bytes);
}

TEST(Rdb, RandomizedRoundTripSeeded) {
    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
        sim::Rng rng(seed);
        auto rand_str = [&rng]() {
            const std::size_t len = 1 + rng.next_below(24);
            std::string s;
            for (std::size_t i = 0; i < len; ++i) {
                s.push_back(static_cast<char>('a' + rng.next_below(26)));
            }
            return s;
        };
        Database src = make_db();
        for (int i = 0; i < 200; ++i) {
            const std::string key =
                "rk:" + std::to_string(rng.next_below(400));
            switch (rng.next_below(5)) {
            case 0:
                src.set(key, Object::make_string(rand_str()));
                break;
            case 1: {
                auto lst = Object::make_list();
                const std::size_t n = 1 + rng.next_below(5);
                for (std::size_t j = 0; j < n; ++j) {
                    lst->list().push_back(Sds(rand_str()));
                }
                src.set(key, lst);
                break;
            }
            case 2: {
                auto st = Object::make_set();
                const std::size_t n = 1 + rng.next_below(5);
                for (std::size_t j = 0; j < n; ++j) st->set_add(rand_str());
                src.set(key, st);
                break;
            }
            case 3: {
                auto h = Object::make_hash();
                const std::size_t n = 1 + rng.next_below(5);
                for (std::size_t j = 0; j < n; ++j) {
                    h->hash().set(Sds(rand_str()), Sds(rand_str()));
                }
                src.set(key, h);
                break;
            }
            default: {
                auto z = Object::make_zset();
                const std::size_t n = 1 + rng.next_below(5);
                for (std::size_t j = 0; j < n; ++j) {
                    z->zadd(rng.next_double() * 200.0 - 100.0, rand_str());
                }
                src.set(key, z);
                break;
            }
            }
            // ~1 in 3 keys carries an expiry, sometimes already past.
            if (rng.next_below(3) == 0) {
                src.set_expire(key, rng.next_range(-5, 5000));
            }
        }
        const std::string bytes = save(src);
        Database dst = make_db();
        ASSERT_EQ(load(bytes, dst), LoadStatus::kOk) << "seed " << seed;
        EXPECT_TRUE(src.equals(dst)) << "seed " << seed;
        EXPECT_TRUE(dst.equals(src)) << "seed " << seed;
        EXPECT_EQ(save(dst), bytes) << "seed " << seed;
    }
}

TEST(Crc64, KnownProperties) {
    EXPECT_EQ(crc64(0, ""), 0u);
    const auto a = crc64(0, "hello");
    const auto b = crc64(0, "hello");
    const auto c = crc64(0, "hellp");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // Incremental == one-shot.
    const auto inc = crc64(crc64(0, "he"), "llo");
    EXPECT_EQ(inc, a);
}

TEST(LoadStatusNames, AllDistinct) {
    EXPECT_STREQ(to_string(LoadStatus::kOk), "ok");
    EXPECT_STREQ(to_string(LoadStatus::kBadMagic), "bad-magic");
    EXPECT_STREQ(to_string(LoadStatus::kBadChecksum), "bad-checksum");
}

} // namespace
} // namespace skv::kv::rdb
