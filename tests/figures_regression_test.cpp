#include <gtest/gtest.h>

#include "skv/cluster.hpp"
#include "workload/runner.hpp"

namespace skv {
namespace {

/// Figure-shape regression guards: compact versions of the paper's key
/// experiments with loose bands around the expected shapes, so a change
/// that silently breaks the reproduction fails ctest rather than only
/// being visible in the bench output. (The full sweeps live in bench/.)

workload::RunResult run(server::Transport transport, bool offload,
                        int n_slaves, int clients, double set_ratio,
                        std::size_t value_bytes = 64) {
    offload::ClusterConfig cfg;
    cfg.seed = 42;
    cfg.n_slaves = n_slaves;
    cfg.transport = transport;
    cfg.offload = offload;
    offload::Cluster c(cfg);
    c.start();
    workload::RunOptions opts;
    opts.clients = clients;
    opts.spec.set_ratio = set_ratio;
    opts.spec.value_bytes = value_bytes;
    opts.preload = set_ratio < 1.0;
    opts.warmup = sim::milliseconds(200);
    opts.measure = sim::seconds(1);
    return workload::run_workload(c, opts);
}

TEST(FigureRegression, Fig10_TcpCapsFarBelowRdma) {
    const auto tcp = run(server::Transport::kTcp, false, 0, 16, 1.0);
    const auto rdma = run(server::Transport::kRdma, false, 0, 16, 1.0);
    // Paper: ~130 vs >330 kops/s.
    EXPECT_GT(tcp.throughput_kops, 100.0);
    EXPECT_LT(tcp.throughput_kops, 170.0);
    EXPECT_GT(rdma.throughput_kops, 300.0);
    EXPECT_GT(rdma.throughput_kops / tcp.throughput_kops, 2.0);
    // Tail latency roughly doubles on the kernel path.
    EXPECT_GT(tcp.p99_us / rdma.p99_us, 1.6);
}

TEST(FigureRegression, Fig7_SlavesDegradeTheBaselineMaster) {
    const auto none = run(server::Transport::kRdma, false, 0, 4, 1.0);
    const auto three = run(server::Transport::kRdma, false, 3, 4, 1.0);
    EXPECT_LT(three.throughput_kops, none.throughput_kops * 0.92);
    EXPECT_GT(three.p99_us, none.p99_us * 1.25); // paper: tail > +25%
}

TEST(FigureRegression, Fig11_SkvBeatsBaselineOnWrites) {
    const auto base = run(server::Transport::kRdma, false, 3, 8, 1.0);
    const auto skv = run(server::Transport::kRdma, true, 3, 8, 1.0);
    const double gain = skv.throughput_kops / base.throughput_kops - 1.0;
    // Paper: +14%. Accept a band around it.
    EXPECT_GT(gain, 0.08);
    EXPECT_LT(gain, 0.25);
    EXPECT_LT(skv.mean_us, base.mean_us);   // paper: -14%
    EXPECT_LT(skv.p99_us, base.p99_us);     // paper: -21%
    EXPECT_EQ(base.errors, 0u);
    EXPECT_EQ(skv.errors, 0u);
}

TEST(FigureRegression, Fig13_GetIsAWash) {
    const auto base = run(server::Transport::kRdma, false, 3, 8, 0.0);
    const auto skv = run(server::Transport::kRdma, true, 3, 8, 0.0);
    // Paper: no difference on the read path.
    EXPECT_NEAR(skv.throughput_kops, base.throughput_kops,
                base.throughput_kops * 0.02);
}

TEST(FigureRegression, Fig14_ThroughputFlatAcrossSlaveFailure) {
    offload::ClusterConfig cfg;
    cfg.seed = 42;
    cfg.n_slaves = 3;
    cfg.offload = true;
    offload::Cluster c(cfg);
    c.start();
    workload::RunOptions opts;
    opts.clients = 8;
    opts.warmup = sim::milliseconds(200);
    opts.measure = sim::seconds(6);
    opts.timeline_bin = sim::milliseconds(500);
    opts.faults.push_back({sim::seconds(2), 1, false});
    opts.faults.push_back({sim::seconds(4), 1, true});
    const auto r = workload::run_workload(c, opts);
    ASSERT_GE(r.timeline_kops.size(), 12u);
    double healthy = 0;
    for (std::size_t i = 0; i < 3; ++i) healthy = std::max(healthy, r.timeline_kops[i]);
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_GT(r.timeline_kops[i], healthy * 0.95)
            << "throughput dipped in bin " << i;
    }
    EXPECT_EQ(r.errors, 0u);
    // The crashed slave re-converged after recovery.
    c.sim().run_until(c.sim().now() + sim::seconds(3));
    EXPECT_EQ(c.slave(1).slave_applied_offset(), c.master().master_offset());
}

} // namespace
} // namespace skv
