#include <gtest/gtest.h>

#include "rdma/cm.hpp"
#include "rdma/ring_channel.hpp"

namespace skv::rdma {
namespace {

class RingTest : public ::testing::Test {
protected:
    RingTest()
        : sim(1), fabric(sim), net(sim, fabric, costs), cm(net),
          core_a(sim, "a"), core_b(sim, "b") {
        ep_a = fabric.add_host("a");
        ep_b = fabric.add_host("b");
    }

    /// CM-establish a channel pair with the given ring parameters.
    void connect(RingParams params = {}) {
        cm.listen({ep_b, &core_b}, 7000,
                  [&](RingChannelPtr ch) { server = std::move(ch); }, params);
        cm.connect({ep_a, &core_a}, ep_b, 7000,
                   [&](RingChannelPtr ch) { client = std::move(ch); }, params);
        sim.run();
        ASSERT_TRUE(client);
        ASSERT_TRUE(server);
    }

    cpu::CostModel costs;
    sim::Simulation sim;
    net::Fabric fabric;
    RdmaNetwork net;
    ConnectionManager cm;
    cpu::Core core_a;
    cpu::Core core_b;
    net::EndpointId ep_a = 0;
    net::EndpointId ep_b = 0;
    RingChannelPtr client;
    RingChannelPtr server;
};

TEST_F(RingTest, ConnectRejectedWithoutListener) {
    bool called = false;
    RingChannelPtr ch;
    cm.connect({ep_a, &core_a}, ep_b, 7777, [&](RingChannelPtr c) {
        called = true;
        ch = std::move(c);
    });
    sim.run();
    EXPECT_TRUE(called);
    EXPECT_EQ(ch, nullptr);
}

TEST_F(RingTest, RoundTripMessages) {
    connect();
    std::string at_server;
    std::string at_client;
    server->set_on_message([&](std::string m) {
        at_server = std::move(m);
        server->send("reply:" + at_server);
    });
    client->set_on_message([&](std::string m) { at_client = std::move(m); });
    client->send("hello");
    sim.run();
    EXPECT_EQ(at_server, "hello");
    EXPECT_EQ(at_client, "reply:hello");
}

TEST_F(RingTest, OrderedDelivery) {
    connect();
    std::vector<std::string> got;
    server->set_on_message([&](std::string m) { got.push_back(std::move(m)); });
    for (int i = 0; i < 100; ++i) client->send("msg" + std::to_string(i));
    sim.run();
    ASSERT_EQ(got.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)], "msg" + std::to_string(i));
    }
}

TEST_F(RingTest, BinaryPayloadsSurvive) {
    connect();
    std::string got;
    server->set_on_message([&](std::string m) { got = std::move(m); });
    std::string payload;
    for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
    client->send(payload);
    sim.run();
    EXPECT_EQ(got, payload);
}

TEST_F(RingTest, CreditFlowControlUnderPressure) {
    RingParams params;
    params.ring_bytes = 4096;
    params.credit_threshold = 1024;
    connect(params);
    int received = 0;
    server->set_on_message([&](std::string) { ++received; });
    // Far more data than the ring holds: must stall and resume on credits.
    for (int i = 0; i < 300; ++i) client->send(std::string(100, 'x'));
    sim.run();
    EXPECT_EQ(received, 300);
    EXPECT_GT(client->credit_messages() + server->credit_messages(), 5u);
    EXPECT_EQ(client->backlog_bytes(), 0u);
}

TEST_F(RingTest, LargeMessageFragmentsAndReassembles) {
    RingParams params;
    params.ring_bytes = 4096;
    params.credit_threshold = 1024;
    connect(params);
    std::string got;
    server->set_on_message([&](std::string m) { got = std::move(m); });
    std::string big(50'000, '?');
    for (std::size_t i = 0; i < big.size(); ++i) {
        big[i] = static_cast<char>('a' + i % 26);
    }
    client->send(big);
    sim.run();
    EXPECT_EQ(got, big); // reassembled exactly despite a 4KB ring
}

TEST_F(RingTest, InterleavedLargeAndSmall) {
    connect();
    std::vector<std::size_t> sizes;
    server->set_on_message([&](std::string m) { sizes.push_back(m.size()); });
    client->send(std::string(300'000, 'A'));
    client->send("tiny");
    client->send(std::string(100'000, 'B'));
    sim.run();
    ASSERT_EQ(sizes.size(), 3u);
    EXPECT_EQ(sizes[0], 300'000u);
    EXPECT_EQ(sizes[1], 4u);
    EXPECT_EQ(sizes[2], 100'000u);
}

TEST_F(RingTest, MrReregistrationAfterRingFills) {
    RingParams params;
    params.ring_bytes = 2048;
    params.credit_threshold = 4096; // clamped to ring/2 by the channel
    connect(params);
    int received = 0;
    server->set_on_message([&](std::string) { ++received; });
    // Stall the receiver so the sender fills the entire ring, then let the
    // receiver drain it all in one CQ batch: the full-drain condition.
    core_b.consume(sim::milliseconds(1));
    for (int i = 0; i < 50; ++i) client->send(std::string(200, 'r'));
    sim.run();
    EXPECT_EQ(received, 50);
    EXPECT_GT(server->mr_reregistrations(), 0u);
}

TEST_F(RingTest, CloseStopsDelivery) {
    connect();
    int received = 0;
    server->set_on_message([&](std::string) { ++received; });
    client->send("one");
    sim.run();
    server->close();
    client->send("two");
    sim.run();
    EXPECT_EQ(received, 1);
    EXPECT_FALSE(server->open());
}

TEST_F(RingTest, PendingBufferedBeforeHandler) {
    connect();
    client->send("early");
    sim.run();
    std::string got;
    server->set_on_message([&](std::string m) { got = std::move(m); });
    EXPECT_EQ(got, "early");
}

TEST_F(RingTest, StatsCountFrames) {
    connect();
    server->set_on_message([](std::string) {});
    for (int i = 0; i < 10; ++i) client->send("x");
    sim.run();
    EXPECT_EQ(client->frames_sent(), 10u);
    EXPECT_EQ(server->frames_received(), 10u);
}

TEST_F(RingTest, HaltedReceiverStallsChannel) {
    connect();
    int received = 0;
    server->set_on_message([&](std::string) { ++received; });
    core_b.halt();
    client->send("while-down");
    sim.run();
    EXPECT_EQ(received, 0); // the crashed host consumed nothing
}

} // namespace
} // namespace skv::rdma
