#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace skv::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
    EXPECT_EQ(SimTime().ns(), 0);
    EXPECT_EQ(SimTime::zero().ns(), 0);
}

TEST(SimTime, UnitConversions) {
    const SimTime t(1'500'000'000);
    EXPECT_DOUBLE_EQ(t.us(), 1'500'000.0);
    EXPECT_DOUBLE_EQ(t.ms(), 1'500.0);
    EXPECT_DOUBLE_EQ(t.sec(), 1.5);
}

TEST(SimTime, Ordering) {
    EXPECT_LT(SimTime(1), SimTime(2));
    EXPECT_EQ(SimTime(5), SimTime(5));
    EXPECT_GT(SimTime::max(), SimTime(1'000'000'000));
}

TEST(Duration, Constructors) {
    EXPECT_EQ(nanoseconds(42).ns(), 42);
    EXPECT_EQ(microseconds(3).ns(), 3'000);
    EXPECT_EQ(milliseconds(2).ns(), 2'000'000);
    EXPECT_EQ(seconds(1).ns(), 1'000'000'000);
}

TEST(Duration, Arithmetic) {
    EXPECT_EQ((microseconds(2) + microseconds(3)).ns(), 5'000);
    EXPECT_EQ((microseconds(5) - microseconds(3)).ns(), 2'000);
    EXPECT_EQ((microseconds(2) * 4).ns(), 8'000);
    EXPECT_EQ((microseconds(8) / 2).ns(), 4'000);
    Duration d = microseconds(1);
    d += nanoseconds(500);
    EXPECT_EQ(d.ns(), 1'500);
    d -= nanoseconds(500);
    EXPECT_EQ(d.ns(), 1'000);
}

TEST(Duration, ScaledRoundsToNearest) {
    EXPECT_EQ(nanoseconds(100).scaled(2.5).ns(), 250);
    EXPECT_EQ(nanoseconds(3).scaled(0.5).ns(), 2); // 1.5 rounds to 2
    EXPECT_EQ(nanoseconds(1000).scaled(1.0).ns(), 1000);
}

TEST(TimeDuration, MixedArithmetic) {
    const SimTime t = SimTime(1'000) + microseconds(1);
    EXPECT_EQ(t.ns(), 2'000);
    EXPECT_EQ((t - SimTime(500)).ns(), 1'500);
    EXPECT_EQ((t - microseconds(1)).ns(), 1'000);
}

TEST(TimeFormat, HumanReadable) {
    EXPECT_EQ(to_string(SimTime(999)), "999ns");
    EXPECT_EQ(to_string(nanoseconds(42)), "42ns");
    EXPECT_NE(to_string(microseconds(500)).find("us"), std::string::npos);
    EXPECT_NE(to_string(milliseconds(50)).find("ms"), std::string::npos);
    EXPECT_NE(to_string(seconds(20)).find("s"), std::string::npos);
}

} // namespace
} // namespace skv::sim
