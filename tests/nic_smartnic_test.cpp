#include <gtest/gtest.h>

#include "nic/smartnic.hpp"

namespace skv::nic {
namespace {

class SmartNicTest : public ::testing::Test {
protected:
    SmartNicTest() : sim(1), fabric(sim) {
        host = fabric.add_host("h");
    }

    sim::Simulation sim;
    net::Fabric fabric;
    net::EndpointId host = 0;
};

TEST_F(SmartNicTest, CreatesCompanionEndpointAndCores) {
    SmartNic nic(sim, fabric, host, "bf2");
    EXPECT_TRUE(fabric.is_companion(nic.endpoint()));
    EXPECT_TRUE(fabric.same_port(host, nic.endpoint()));
    EXPECT_EQ(nic.core_count(), 8);
    EXPECT_DOUBLE_EQ(nic.core(0).speed_factor(), 2.5);
    EXPECT_EQ(nic.host_endpoint(), host);
}

TEST_F(SmartNicTest, CustomParams) {
    SmartNicParams p;
    p.arm_cores = 4;
    p.core_slowdown = 5.0;
    p.dram_bytes = 1024;
    SmartNic nic(sim, fabric, host, "bf2", p);
    EXPECT_EQ(nic.core_count(), 4);
    EXPECT_DOUBLE_EQ(nic.core(3).speed_factor(), 5.0);
    EXPECT_EQ(nic.memory_capacity(), 1024u);
}

TEST_F(SmartNicTest, MemoryBudgetEnforced) {
    SmartNicParams p;
    p.dram_bytes = 1000;
    SmartNic nic(sim, fabric, host, "bf2", p);
    EXPECT_TRUE(nic.reserve_memory(600));
    EXPECT_EQ(nic.memory_used(), 600u);
    EXPECT_FALSE(nic.reserve_memory(500)); // would exceed 1000
    EXPECT_TRUE(nic.reserve_memory(400));
    nic.release_memory(1000);
    EXPECT_EQ(nic.memory_used(), 0u);
}

TEST_F(SmartNicTest, SteeringDefaultsToHost) {
    SmartNic nic(sim, fabric, host, "bf2");
    EXPECT_EQ(nic.steering(6379), SteerTarget::kHost);
    EXPECT_EQ(nic.resolve(6379), host);
    EXPECT_EQ(nic.steering_rules(), 0u);
}

TEST_F(SmartNicTest, SteerToNicCores) {
    SmartNic nic(sim, fabric, host, "bf2");
    nic.steer(7000, SteerTarget::kNicCores);
    EXPECT_EQ(nic.steering(7000), SteerTarget::kNicCores);
    EXPECT_EQ(nic.resolve(7000), nic.endpoint());
    EXPECT_EQ(nic.resolve(6379), host); // other flows bypass the ARM cores
    nic.steer(7000, SteerTarget::kHost);
    EXPECT_EQ(nic.steering_rules(), 0u);
}

TEST_F(SmartNicTest, NamedCores) {
    SmartNic nic(sim, fabric, host, "bf2");
    EXPECT_EQ(nic.core(0).name(), "bf2/arm0");
    EXPECT_EQ(nic.core(7).name(), "bf2/arm7");
}

TEST_F(SmartNicTest, ArmCoresAreSlower) {
    SmartNic nic(sim, fabric, host, "bf2");
    cpu::Core host_core(sim, "host");
    sim::SimTime host_done;
    sim::SimTime arm_done;
    host_core.submit(sim::microseconds(4), [&] { host_done = sim.now(); });
    nic.core(0).submit(sim::microseconds(4), [&] { arm_done = sim.now(); });
    sim.run();
    EXPECT_EQ(host_done.ns(), 4'000);
    EXPECT_EQ(arm_done.ns(), 10'000); // 2.5x
}

} // namespace
} // namespace skv::nic
