#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace skv::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(SimTime(30), [&] { order.push_back(3); });
    q.schedule(SimTime(10), [&] { order.push_back(1); });
    q.schedule(SimTime(20), [&] { order.push_back(2); });
    while (!q.empty()) q.pop().second();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesAreFifo) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        q.schedule(SimTime(5), [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.pop().second();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(SimTime(1), [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
    EventQueue q;
    const EventId id = q.schedule(SimTime(1), [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(EventId{})); // invalid id
}

TEST(EventQueue, CancelledEventSkippedByPop) {
    EventQueue q;
    std::vector<int> order;
    const EventId a = q.schedule(SimTime(1), [&] { order.push_back(1); });
    q.schedule(SimTime(2), [&] { order.push_back(2); });
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.next_time(), SimTime(2));
    q.pop().second();
    EXPECT_EQ(order, std::vector<int>{2});
}

TEST(EventQueue, NextTimeEmpty) {
    EventQueue q;
    EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(Simulation, ClockAdvancesToEventTime) {
    Simulation sim(1);
    SimTime seen;
    sim.after(microseconds(5), [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, SimTime(5'000));
    EXPECT_EQ(sim.now(), SimTime(5'000));
}

TEST(Simulation, RunUntilStopsAtDeadline) {
    Simulation sim(1);
    int ran = 0;
    sim.after(microseconds(1), [&] { ++ran; });
    sim.after(microseconds(10), [&] { ++ran; });
    sim.run_until(SimTime(5'000));
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(sim.now(), SimTime(5'000)); // clock advanced to the deadline
    sim.run();
    EXPECT_EQ(ran, 2);
}

TEST(Simulation, NestedScheduling) {
    Simulation sim(1);
    std::vector<std::int64_t> times;
    sim.after(microseconds(1), [&] {
        times.push_back(sim.now().ns());
        sim.after(microseconds(1), [&] { times.push_back(sim.now().ns()); });
    });
    sim.run();
    EXPECT_EQ(times, (std::vector<std::int64_t>{1'000, 2'000}));
}

TEST(Simulation, StepExecutesOne) {
    Simulation sim(1);
    int ran = 0;
    sim.after(microseconds(1), [&] { ++ran; });
    sim.after(microseconds(2), [&] { ++ran; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(ran, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(ran, 2);
    EXPECT_FALSE(sim.step());
}

TEST(Simulation, CancelPendingEvent) {
    Simulation sim(1);
    bool ran = false;
    const EventId id = sim.after(microseconds(1), [&] { ran = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_FALSE(ran);
}

TEST(Simulation, EventsExecutedCounter) {
    Simulation sim(1);
    for (int i = 0; i < 7; ++i) sim.after(microseconds(i + 1), [] {});
    sim.run();
    EXPECT_EQ(sim.events_executed(), 7u);
}

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, ManyInterleavedEventsStayOrdered) {
    Simulation sim(GetParam());
    Rng rng(GetParam());
    std::int64_t last = -1;
    bool monotonic = true;
    for (int i = 0; i < 5000; ++i) {
        sim.after(Duration(static_cast<std::int64_t>(rng.next_below(1'000'000))),
                  [&] {
                      if (sim.now().ns() < last) monotonic = false;
                      last = sim.now().ns();
                  });
    }
    sim.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(sim.events_executed(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::Values(1u, 7u, 99u));

} // namespace
} // namespace skv::sim
