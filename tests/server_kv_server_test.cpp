#include <gtest/gtest.h>

#include "kv/resp.hpp"
#include "server/kv_server.hpp"

namespace skv::server {
namespace {

/// A scriptable test client speaking RESP over any channel.
class TestClient {
public:
    void attach(net::ChannelPtr ch) {
        channel_ = std::move(ch);
        channel_->set_on_message([this](std::string payload) {
            parser_.feed(payload);
            kv::resp::Value v;
            while (parser_.next(&v) == kv::resp::Status::kOk) {
                replies.push_back(v);
            }
        });
    }

    void send(const std::vector<std::string>& argv) {
        channel_->send(kv::resp::command(argv));
    }
    void send_raw(std::string bytes) { channel_->send(std::move(bytes)); }

    [[nodiscard]] bool connected() const { return channel_ != nullptr; }

    std::vector<kv::resp::Value> replies;

private:
    net::ChannelPtr channel_;
    kv::resp::ReplyParser parser_;
};

class ServerTest : public ::testing::TestWithParam<Transport> {
protected:
    ServerTest()
        : sim(1), fabric(sim), tcp(sim, fabric, costs),
          rdma(sim, fabric, costs), cm(rdma), server_core(sim, "srv"),
          client_core(sim, "cli") {
        server_ep = fabric.add_host("server");
        client_ep = fabric.add_host("client");
        ServerConfig cfg;
        cfg.name = "test-server";
        cfg.transport = GetParam();
        server = std::make_unique<KvServer>(
            sim, costs, KvServer::Transports{&fabric, &tcp, &cm},
            net::NodeRef{server_ep, &server_core}, cfg);
        server->start();
    }

    TestClient connect() {
        TestClient c;
        net::ChannelPtr got;
        if (GetParam() == Transport::kTcp) {
            tcp.connect({client_ep, &client_core}, server_ep, 6379,
                        [&](net::ChannelPtr ch) { got = std::move(ch); });
        } else {
            cm.connect({client_ep, &client_core}, server_ep, 6379,
                       [&](net::ChannelPtr ch) { got = std::move(ch); });
        }
        sim.run_until(sim.now() + sim::milliseconds(5));
        c.attach(got);
        return c;
    }

    void settle() { sim.run_until(sim.now() + sim::milliseconds(10)); }

    cpu::CostModel costs;
    sim::Simulation sim;
    net::Fabric fabric;
    net::TcpNetwork tcp;
    rdma::RdmaNetwork rdma;
    rdma::ConnectionManager cm;
    cpu::Core server_core;
    cpu::Core client_core;
    net::EndpointId server_ep = 0;
    net::EndpointId client_ep = 0;
    std::unique_ptr<KvServer> server;
};

TEST_P(ServerTest, SetGetRoundTrip) {
    auto c = connect();
    ASSERT_TRUE(c.connected());
    c.send({"SET", "k", "v"});
    c.send({"GET", "k"});
    settle();
    ASSERT_EQ(c.replies.size(), 2u);
    EXPECT_TRUE(c.replies[0].is_ok());
    EXPECT_EQ(c.replies[1].str, "v");
    EXPECT_EQ(server->db().lookup("k")->string_value(), "v");
}

TEST_P(ServerTest, PipelinedCommandsInOneMessage) {
    auto c = connect();
    c.send_raw(kv::resp::command({"SET", "a", "1"}) +
               kv::resp::command({"INCR", "a"}) +
               kv::resp::command({"GET", "a"}));
    settle();
    ASSERT_EQ(c.replies.size(), 3u);
    EXPECT_TRUE(c.replies[0].is_ok());
    EXPECT_EQ(c.replies[1].num, 2);
    EXPECT_EQ(c.replies[2].str, "2");
}

TEST_P(ServerTest, UnknownCommandGetsError) {
    auto c = connect();
    c.send({"NOSUCH", "x"});
    settle();
    ASSERT_EQ(c.replies.size(), 1u);
    EXPECT_TRUE(c.replies[0].is_error());
}

TEST_P(ServerTest, MultipleClientsIsolatedParsers) {
    auto c1 = connect();
    auto c2 = connect();
    c1.send({"SET", "from1", "a"});
    c2.send({"SET", "from2", "b"});
    c1.send({"GET", "from2"});
    settle();
    ASSERT_EQ(c1.replies.size(), 2u);
    EXPECT_EQ(c1.replies[1].str, "b"); // shared keyspace, separate parsers
}

TEST_P(ServerTest, ProtocolErrorClosesConnection) {
    auto c = connect();
    c.send_raw("*zzz\r\n");
    settle();
    ASSERT_GE(c.replies.size(), 1u);
    EXPECT_TRUE(c.replies[0].is_error());
    EXPECT_EQ(server->stats().counter("protocol_errors"), 1u);
    // Further commands are ignored: the server closed the channel.
    const auto replies_before = c.replies.size();
    c.send({"PING"});
    settle();
    EXPECT_EQ(c.replies.size(), replies_before);
}

TEST_P(ServerTest, ExpiryIntegratedWithSimClock) {
    auto c = connect();
    c.send({"SET", "k", "v", "PX", "50"});
    settle(); // ~10ms: still alive
    c.send({"GET", "k"});
    settle();
    sim.run_until(sim.now() + sim::milliseconds(60));
    c.send({"GET", "k"});
    settle();
    ASSERT_EQ(c.replies.size(), 3u);
    EXPECT_EQ(c.replies[1].str, "v");
    EXPECT_EQ(c.replies[2].kind, kv::resp::Value::Kind::kNull);
}

TEST_P(ServerTest, ActiveExpireEvictsWithoutAccess) {
    auto c = connect();
    for (int i = 0; i < 20; ++i) {
        c.send({"SET", "gone" + std::to_string(i), "v", "PX", "30"});
    }
    settle();
    // Far past the TTL: cron's active cycle should collect them unaided.
    sim.run_until(sim.now() + sim::seconds(2));
    EXPECT_EQ(server->db().size(), 0u);
    EXPECT_GT(server->stats().counter("expired_keys"), 0u);
}

TEST_P(ServerTest, CommandsProcessedCounter) {
    auto c = connect();
    c.send({"PING"});
    c.send({"PING"});
    settle();
    EXPECT_EQ(server->commands_processed(), 2u);
    EXPECT_EQ(server->stats().counter("reads"), 2u);
}

TEST_P(ServerTest, CrashedServerStopsResponding) {
    auto c = connect();
    c.send({"PING"});
    settle();
    ASSERT_EQ(c.replies.size(), 1u);
    server->crash();
    c.send({"PING"});
    settle();
    EXPECT_EQ(c.replies.size(), 1u);
    EXPECT_TRUE(server->crashed());
}

TEST_P(ServerTest, InfoCommandReportsSections) {
    auto c = connect();
    c.send({"INFO"});
    settle();
    ASSERT_EQ(c.replies.size(), 1u);
    ASSERT_EQ(c.replies[0].kind, kv::resp::Value::Kind::kBulk);
    const std::string& body = c.replies[0].str;
    EXPECT_NE(body.find("# Replication"), std::string::npos);
    EXPECT_NE(body.find("role:standalone"), std::string::npos);
    EXPECT_NE(body.find("server_name:test-server"), std::string::npos);
    EXPECT_NE(body.find("connected_clients:1"), std::string::npos);
    EXPECT_NE(body.find("db0:keys=0"), std::string::npos);
}

TEST_P(ServerTest, InfoTracksKeyspaceAndOffsets) {
    auto c = connect();
    c.send({"SET", "k", "v"});
    c.send({"INFO"});
    settle();
    ASSERT_EQ(c.replies.size(), 2u);
    const std::string& body = c.replies[1].str;
    EXPECT_NE(body.find("db0:keys=1"), std::string::npos);
    EXPECT_NE(body.find("total_commands_processed:2"), std::string::npos);
}

TEST_P(ServerTest, InfoMentionsRole) {
    EXPECT_NE(server->info().find("standalone"), std::string::npos);
    EXPECT_NE(server->info().find("test-server"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Transports, ServerTest,
                         ::testing::Values(Transport::kTcp, Transport::kRdma),
                         [](const auto& info) {
                             return info.param == Transport::kTcp ? "Tcp"
                                                                  : "Rdma";
                         });

} // namespace
} // namespace skv::server
