#pragma once

// Shared chaos-test scaffolding: the crash-tuned cluster factory, the
// retrying client fleet, the linearizability gate (with minimal-artifact
// dumps and a per-scenario budget-exhaustion summary), and a synchronous
// raw-connection shell. Used by chaos_crash_test.cpp (fan-out protocol)
// and chaos_repl_test.cpp (protocol menu matrix).

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "check/linearize.hpp"
#include "kv/resp.hpp"
#include "skv/cluster.hpp"
#include "workload/retry_client.hpp"

namespace skv::offload::chaos {

/// Crash-chaos cluster: SKV topology with a fast failure detector (so
/// failover completes well inside client op deadlines), immediate apply
/// acks, commit gating on one replica, and linearizable read routing
/// (replicas refuse reads unless the protocol says otherwise, so
/// retrying clients always find a legitimate server).
struct CrashClusterOpts {
    int n_slaves = 2;
    int wait_for_slaves = 1;
    sim::Duration persist_interval{};
    bool serve_stale_reads = false;
    sim::Duration waiting_time{sim::milliseconds(450)};
    /// Which replication protocol the cluster runs (DESIGN.md §13).
    server::ReplicationMode replication_mode = server::ReplicationMode::kFanout;
    /// Test-only quorum fault injection (see NicKvConfig).
    int quorum_slave_acks_override = -1;
    /// Chain-mode tail read lease; must stay below the detector's
    /// invalidation latency (waiting_time + probe_interval).
    sim::Duration chain_read_lease{sim::milliseconds(400)};
};

inline std::unique_ptr<Cluster> make_crash_cluster(
    std::uint64_t seed, const CrashClusterOpts& o = {}) {
    ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = o.n_slaves;
    cfg.offload = true;
    cfg.nic_cfg.probe_interval = sim::milliseconds(200);
    cfg.nic_cfg.waiting_time = o.waiting_time;
    cfg.nic_cfg.quorum_slave_acks_override = o.quorum_slave_acks_override;
    cfg.server_tmpl.ack_interval = sim::milliseconds(20);
    cfg.server_tmpl.ack_on_apply = true;
    cfg.server_tmpl.wait_for_slaves = o.wait_for_slaves;
    cfg.server_tmpl.wait_timeout = sim::milliseconds(150);
    cfg.server_tmpl.serve_stale_reads = o.serve_stale_reads;
    cfg.server_tmpl.persist_interval = o.persist_interval;
    cfg.server_tmpl.probe_silence_timeout = sim::seconds(1);
    cfg.server_tmpl.replication_mode = o.replication_mode;
    cfg.server_tmpl.chain_read_lease = o.chain_read_lease;
    auto c = std::make_unique<Cluster>(cfg);
    c->tracer().set_enabled(true);
    c->start();
    return c;
}

/// A fleet of retrying clients sharing one recorded history.
struct Fleet {
    check::History history;
    std::vector<std::shared_ptr<workload::RetryClient>> clients;
    std::uint64_t ops_issued = 0;
    /// Protocol-aware read routing: when set, each read's first attempt
    /// goes to this target index (0 = master, 1+i = slave i). Chain-mode
    /// fleets point it at the tail; retries still rotate everywhere.
    std::size_t read_first = SIZE_MAX;

    /// `turnaround` paces the clients so the workload genuinely overlaps
    /// the injected faults instead of finishing before the first crash.
    void spawn(Cluster& c, int n, std::uint64_t ops_each, double set_ratio,
               sim::Duration turnaround = sim::milliseconds(25)) {
        std::vector<workload::RetryClient::Target> targets;
        targets.push_back({c.master().node().ep, c.master().config().port});
        for (int i = 0; i < c.slave_count(); ++i) {
            targets.push_back(
                {c.slave(i).node().ep, c.slave(i).config().port});
        }
        auto dial = [&c](net::NodeRef from, workload::RetryClient::Target t,
                         std::function<void(net::ChannelPtr)> cb) {
            c.cm().connect(from, t.ep, t.port, std::move(cb));
        };
        workload::RetryPolicy pol;
        pol.attempt_timeout = sim::milliseconds(120);
        pol.op_deadline = sim::seconds(4);
        pol.turnaround = turnaround;
        for (int i = 0; i < n; ++i) {
            workload::WorkloadSpec spec;
            spec.set_ratio = set_ratio;
            spec.key_count = 8; // small keyspace: real read/write contention
            spec.value_bytes = 16;
            spec.key_prefix = "ck:";
            workload::Generator gen(spec, c.sim().fork_rng());
            auto node = c.add_client_host("rc" + std::to_string(i));
            clients.push_back(std::make_shared<workload::RetryClient>(
                c.sim(), c.costs(), node, 100 + static_cast<std::uint64_t>(i),
                std::move(gen), pol, targets, dial, &history));
            if (read_first != SIZE_MAX) {
                clients.back()->set_read_first(read_first);
            }
        }
        for (auto& cl : clients) cl->start(ops_each);
        ops_issued += static_cast<std::uint64_t>(n) * ops_each;
    }

    [[nodiscard]] bool all_idle() const {
        for (const auto& cl : clients) {
            if (!cl->idle()) return false;
        }
        return true;
    }

    /// Run the sim until every client finished its ops. Returning false
    /// means a client hung — itself an acceptance failure.
    [[nodiscard]] bool drain(Cluster& c, sim::Duration cap) {
        const auto stop = c.sim().now() + cap;
        while (c.sim().now() < stop) {
            if (all_idle()) return true;
            c.sim().run_until(c.sim().now() + sim::milliseconds(20));
        }
        return all_idle();
    }

    [[nodiscard]] std::uint64_t ok() const {
        std::uint64_t n = 0;
        for (const auto& cl : clients) n += cl->ops_ok();
        return n;
    }

    /// Nonzero retries prove the workload was live while faults were in.
    [[nodiscard]] std::uint64_t total_retries() const {
        std::uint64_t n = 0;
        for (const auto& cl : clients) n += cl->retries();
        return n;
    }
};

/// Per-scenario count of checker budget exhaustions across the whole test
/// binary, reported in the suite summary so an under-sized search budget
/// is visible even when retries make the gate flaky-green elsewhere.
inline std::map<std::string, int>& budget_exhaustions() {
    static std::map<std::string, int> counts;
    return counts;
}

class ChaosSummaryEnv : public ::testing::Environment {
public:
    void TearDown() override {
        const auto& counts = budget_exhaustions();
        if (counts.empty()) {
            std::fprintf(stderr,
                         "[chaos-summary] checker budget exhaustions: none\n");
            return;
        }
        for (const auto& [scenario, n] : counts) {
            std::fprintf(stderr,
                         "[chaos-summary] checker budget exhausted %d time(s) "
                         "in scenario '%s'\n",
                         n, scenario.c_str());
        }
    }
};

inline const bool chaos_summary_registered =
    (::testing::AddGlobalTestEnvironment(new ChaosSummaryEnv), true);

/// The linearizability gate. On a violation — or an indeterminate verdict
/// from budget exhaustion — the *minimal offending per-key sub-history*
/// is dumped to chaos_history_<seed>.json (CI uploads it together with
/// the chrome trace) so the offending schedule can be replayed offline
/// without wading through every other key's ops.
inline void gate_linearizable(Cluster& c, const check::History& hist,
                              const std::string& scenario) {
    const auto res = check::check_history(hist);
    const std::string tag =
        scenario + " seed " + std::to_string(c.sim().seed());
    if (res.budget_exhausted) ++budget_exhaustions()[scenario];
    if (!res.linearizable || res.budget_exhausted) {
        char path[64];
        std::snprintf(path, sizeof(path), "chaos_history_%016llx.json",
                      static_cast<unsigned long long>(c.sim().seed()));
        if (std::FILE* f = std::fopen(path, "wb")) {
            const std::string json = res.offending_key.empty()
                                         ? hist.to_json()
                                         : hist.to_json_for_key(res.offending_key);
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::fprintf(stderr,
                         "[chaos-audit] offending sub-history (key '%s') "
                         "written to %s\n",
                         res.offending_key.c_str(), path);
        }
    }
    EXPECT_FALSE(res.budget_exhausted) << tag << ": " << res.reason;
    EXPECT_TRUE(res.linearizable) << tag << ": " << res.reason;
}

/// Minimal synchronous command shell over a raw channel, for tests that
/// need precise control over which node serves which request.
class RawConn {
public:
    RawConn(Cluster& c, net::EndpointId ep, std::uint16_t port,
            const std::string& name)
        : cluster_(c) {
        node_ = c.add_client_host(name);
        c.cm().connect(node_, ep, port, [this](net::ChannelPtr ch) {
            ch_ = std::move(ch);
            ch_->set_on_message([this](std::string payload) {
                parser_.feed(payload);
            });
        });
        c.sim().run_until(c.sim().now() + sim::milliseconds(20));
    }

    [[nodiscard]] bool connected() const { return ch_ != nullptr; }

    /// Send and wait (bounded) for the reply.
    kv::resp::Value call(const std::vector<std::string>& argv,
                         sim::Duration timeout = sim::seconds(2)) {
        ch_->send(kv::resp::command(argv));
        const auto stop = cluster_.sim().now() + timeout;
        kv::resp::Value v;
        while (cluster_.sim().now() < stop) {
            if (parser_.next(&v) == kv::resp::Status::kOk) return v;
            cluster_.sim().run_until(cluster_.sim().now() +
                                     sim::milliseconds(1));
        }
        ADD_FAILURE() << "no reply to " << argv[0] << " within timeout";
        return v;
    }

private:
    Cluster& cluster_;
    net::NodeRef node_;
    net::ChannelPtr ch_;
    kv::resp::ReplyParser parser_;
};

} // namespace skv::offload::chaos
