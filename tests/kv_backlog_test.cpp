#include <gtest/gtest.h>

#include <string>

#include "kv/backlog.hpp"
#include "sim/rng.hpp"

namespace skv::kv {
namespace {

TEST(Backlog, StartsEmpty) {
    ReplBacklog b(64);
    EXPECT_EQ(b.master_offset(), 0);
    EXPECT_EQ(b.min_offset(), 0);
    EXPECT_EQ(b.used(), 0u);
    EXPECT_TRUE(b.can_serve(0));
}

TEST(Backlog, AppendAdvancesOffset) {
    ReplBacklog b(64);
    b.append("hello");
    EXPECT_EQ(b.master_offset(), 5);
    EXPECT_EQ(b.read_from(0), "hello");
    EXPECT_EQ(b.read_from(2), "llo");
    EXPECT_EQ(b.read_from(5), "");
}

TEST(Backlog, WrapAround) {
    ReplBacklog b(8);
    b.append("abcdef");   // offset 6
    b.append("ghij");     // offset 10, ring holds "cdefghij"
    EXPECT_EQ(b.master_offset(), 10);
    EXPECT_EQ(b.min_offset(), 2);
    EXPECT_FALSE(b.can_serve(1));
    EXPECT_TRUE(b.can_serve(2));
    EXPECT_EQ(b.read_from(2), "cdefghij");
    EXPECT_EQ(b.read_from(7), "hij");
}

TEST(Backlog, AppendLargerThanCapacity) {
    ReplBacklog b(4);
    b.append("0123456789");
    EXPECT_EQ(b.master_offset(), 10);
    EXPECT_EQ(b.min_offset(), 6);
    EXPECT_EQ(b.read_from(6), "6789");
}

TEST(Backlog, ExactCapacityAppend) {
    ReplBacklog b(4);
    b.append("abcd");
    EXPECT_EQ(b.read_from(0), "abcd");
    b.append("efgh");
    EXPECT_EQ(b.read_from(4), "efgh");
}

TEST(Backlog, CanServeBounds) {
    ReplBacklog b(8);
    b.append("0123456789ab"); // offset 12, retains last 8
    EXPECT_TRUE(b.can_serve(12));  // empty range
    EXPECT_TRUE(b.can_serve(4));
    EXPECT_FALSE(b.can_serve(3));
    EXPECT_TRUE(b.can_serve(12));
}

TEST(Backlog, ClearKeepsOffset) {
    ReplBacklog b(16);
    b.append("some data");
    const auto off = b.master_offset();
    b.clear();
    EXPECT_EQ(b.master_offset(), off);
    EXPECT_EQ(b.used(), 0u);
    EXPECT_FALSE(b.can_serve(0));
    EXPECT_TRUE(b.can_serve(off));
}

TEST(Backlog, ResetRebasesToSnapshotOffset) {
    // Cold master restart: the stream resumes at the snapshot's offset
    // with no retained bytes — pre-reset history must not be servable.
    ReplBacklog b(16);
    b.append("0123456789");
    b.reset(4);
    EXPECT_EQ(b.master_offset(), 4);
    EXPECT_EQ(b.used(), 0u);
    EXPECT_FALSE(b.can_serve(3));
    EXPECT_TRUE(b.can_serve(4)); // empty range at the rebased offset
    b.append("abc");
    EXPECT_EQ(b.master_offset(), 7);
    EXPECT_EQ(b.read_from(4), "abc");

    // Rebasing forward past the ever-written offset is equally legal (the
    // snapshot may be newer than anything this ring instance saw).
    b.reset(100);
    EXPECT_EQ(b.master_offset(), 100);
    b.append("xy");
    EXPECT_EQ(b.read_from(100), "xy");
    EXPECT_FALSE(b.can_serve(7));
}

class BacklogModelTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BacklogModelTest, MatchesStringReference) {
    const std::size_t cap = GetParam();
    ReplBacklog b(cap);
    std::string history;
    sim::Rng rng(static_cast<std::uint64_t>(cap));
    for (int step = 0; step < 2000; ++step) {
        const auto len = rng.next_below(2 * cap) + 1;
        std::string chunk;
        for (std::size_t i = 0; i < len; ++i) {
            chunk.push_back(static_cast<char>('a' + rng.next_below(26)));
        }
        b.append(chunk);
        history += chunk;
        ASSERT_EQ(b.master_offset(), static_cast<std::int64_t>(history.size()));
        // Whatever the ring claims it can serve must match the history.
        const auto lo = b.min_offset();
        ASSERT_GE(lo, 0);
        ASSERT_EQ(b.read_from(lo),
                  history.substr(static_cast<std::size_t>(lo)));
        // A mid-range read too.
        const auto mid = lo + (b.master_offset() - lo) / 2;
        ASSERT_EQ(b.read_from(mid),
                  history.substr(static_cast<std::size_t>(mid)));
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, BacklogModelTest,
                         ::testing::Values(7u, 64u, 1024u));

} // namespace
} // namespace skv::kv
