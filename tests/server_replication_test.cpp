#include <gtest/gtest.h>

#include "kv/resp.hpp"
#include "skv/cluster.hpp"

namespace skv::server {
namespace {

using offload::Cluster;
using offload::ClusterConfig;

/// Baseline (host-side fan-out) replication tests, run over the RDMA
/// transport like the paper's RDMA-Redis.
class BaselineReplTest : public ::testing::Test {
protected:
    std::unique_ptr<Cluster> make(int slaves, std::uint64_t seed = 5) {
        ClusterConfig cfg;
        cfg.seed = seed;
        cfg.n_slaves = slaves;
        cfg.offload = false;
        cfg.transport = Transport::kRdma;
        auto c = std::make_unique<Cluster>(cfg);
        c->start();
        return c;
    }

    /// Issue commands through a real client connection and wait.
    void run_commands(Cluster& c,
                      const std::vector<std::vector<std::string>>& cmds) {
        auto node = c.add_client_host("tester");
        net::ChannelPtr ch;
        c.connect_client(node, [&](net::ChannelPtr x) { ch = std::move(x); });
        c.sim().run_until(c.sim().now() + sim::milliseconds(10));
        ASSERT_TRUE(ch);
        ch->set_on_message([](std::string) {});
        for (const auto& cmd : cmds) ch->send(kv::resp::command(cmd));
        c.sim().run_until(c.sim().now() + sim::milliseconds(100));
    }
};

TEST_F(BaselineReplTest, SlavesRegisterWithMaster) {
    auto c = make(3);
    EXPECT_EQ(c->master().role(), Role::kMaster);
    EXPECT_EQ(c->master().slave_count(), 3u);
    EXPECT_EQ(c->master().available_slaves(), 3);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(c->slave(i).role(), Role::kSlave);
    }
}

TEST_F(BaselineReplTest, WritesReachEverySlave) {
    auto c = make(3);
    run_commands(*c, {{"SET", "k1", "v1"},
                      {"SET", "k2", "v2"},
                      {"LPUSH", "l", "a", "b"},
                      {"HSET", "h", "f", "x"}});
    EXPECT_TRUE(c->converged());
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(c->master().db().equals(c->slave(i).db())) << i;
    }
}

TEST_F(BaselineReplTest, ReadsAreNotReplicated) {
    auto c = make(1);
    run_commands(*c, {{"SET", "k", "v"}, {"GET", "k"}, {"GET", "k"}});
    // Only the SET went into the replication stream.
    EXPECT_EQ(c->master().stats().counter("repl_sends"), 1u);
}

TEST_F(BaselineReplTest, FailedWritesNotReplicated) {
    auto c = make(1);
    run_commands(*c, {{"SET", "s", "str"}, {"INCR", "s"}, {"DEL", "nope"}});
    // INCR failed (-ERR) and DEL was a no-op: one replicated command only.
    EXPECT_EQ(c->master().stats().counter("repl_sends"), 1u);
    EXPECT_TRUE(c->converged());
}

TEST_F(BaselineReplTest, LateSlaveFullSyncsExistingData) {
    ClusterConfig cfg;
    cfg.n_slaves = 0;
    // A tiny backlog guarantees the late slave's offset 0 has already been
    // evicted, forcing the full-RDB path rather than a partial resync.
    cfg.server_tmpl.backlog_bytes = 64;
    auto c = std::make_unique<Cluster>(cfg);
    c->start();
    run_commands(*c, {{"SET", "pre", "existing"}, {"SET", "pre2", "more"},
                      {"SET", "pre3", "even-more"}});

    // Attach a brand-new slave after the fact through the harness parts:
    // re-use slave machinery by building a second cluster is complex, so
    // drive the protocol directly: a fresh server + slaveof_baseline.
    auto node = c->add_client_host("late-slave");
    ServerConfig scfg;
    scfg.name = "late";
    scfg.transport = Transport::kRdma;
    KvServer late(c->sim(), c->costs(),
                  KvServer::Transports{&c->fabric(), &c->tcp(), &c->cm()}, node,
                  scfg);
    late.start();
    late.slaveof_baseline(c->master().node().ep, 6380);
    c->sim().run_until(c->sim().now() + sim::milliseconds(100));

    EXPECT_EQ(c->master().stats().counter("sync_full"), 1u);
    EXPECT_TRUE(late.db().equals(c->master().db()));
    EXPECT_EQ(late.slave_applied_offset(), c->master().master_offset());

    // And the steady-state stream now flows to it.
    run_commands(*c, {{"SET", "post", "streamed"}});
    c->sim().run_until(c->sim().now() + sim::milliseconds(50));
    EXPECT_NE(late.db().lookup("post"), nullptr);
}

TEST_F(BaselineReplTest, SlaveRejectsDirectWrites) {
    auto c = make(1);
    // Connect a client to the slave directly.
    auto node = c->add_client_host("writer");
    net::ChannelPtr ch;
    c->cm().connect(node, c->slave(0).node().ep, 6379,
                    [&](rdma::RingChannelPtr x) { ch = x; });
    c->sim().run_until(c->sim().now() + sim::milliseconds(5));
    ASSERT_TRUE(ch);
    std::string reply;
    ch->set_on_message([&](std::string m) { reply += m; });
    ch->send(kv::resp::command({"SET", "k", "v"}));
    ch->send(kv::resp::command({"GET", "k"}));
    c->sim().run_until(c->sim().now() + sim::milliseconds(10));
    EXPECT_NE(reply.find("-READONLY"), std::string::npos);
    EXPECT_NE(reply.find("$-1"), std::string::npos); // GET is served
}

TEST_F(BaselineReplTest, NonDeterministicCommandsConverge) {
    auto c = make(2);
    run_commands(*c, {{"SADD", "s", "a", "b", "c", "d"},
                      {"SPOP", "s"},
                      {"SPOP", "s"},
                      {"INCRBYFLOAT", "f", "0.1"},
                      {"INCRBYFLOAT", "f", "0.2"}});
    EXPECT_TRUE(c->converged());
    for (int i = 0; i < 2; ++i) {
        EXPECT_TRUE(c->master().db().equals(c->slave(i).db()))
            << "slave " << i << " diverged on effect-replicated commands";
    }
}

TEST_F(BaselineReplTest, ExpiresConvergeViaAbsoluteDeadlines) {
    auto c = make(1);
    run_commands(*c, {{"SET", "k", "v"}, {"EXPIRE", "k", "100"}});
    EXPECT_TRUE(c->converged());
    const auto m = c->master().db().expire_at("k");
    const auto s = c->slave(0).db().expire_at("k");
    ASSERT_TRUE(m.has_value());
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(*m, *s); // PEXPIREAT rewrite: identical absolute deadline
}

TEST_F(BaselineReplTest, AcksAdvanceSlaveOffsets) {
    auto c = make(2);
    run_commands(*c, {{"SET", "a", "1"}, {"SET", "b", "2"}});
    c->sim().run_until(c->sim().now() + sim::milliseconds(300));
    // After a few ack intervals the master knows the slaves are current.
    EXPECT_TRUE(c->converged());
}

/// Property test: a random command stream leaves master and slaves with
/// byte-identical databases.
class ReplConvergenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplConvergenceTest, RandomStreamConverges) {
    ClusterConfig cfg;
    cfg.seed = GetParam();
    cfg.n_slaves = 2;
    cfg.offload = false;
    Cluster c(cfg);
    c.start();

    auto node = c.add_client_host("fuzzer");
    net::ChannelPtr ch;
    c.connect_client(node, [&](net::ChannelPtr x) { ch = std::move(x); });
    c.sim().run_until(c.sim().now() + sim::milliseconds(10));
    ASSERT_TRUE(ch);
    ch->set_on_message([](std::string) {});

    sim::Rng rng(GetParam() ^ 0xABCD);
    auto key = [&] { return "k" + std::to_string(rng.next_below(20)); };
    for (int i = 0; i < 400; ++i) {
        std::vector<std::string> cmd;
        switch (rng.next_below(10)) {
            case 0: cmd = {"SET", key(), "v" + std::to_string(i)}; break;
            case 1: cmd = {"DEL", key()}; break;
            case 2: cmd = {"INCR", "ctr" + std::to_string(rng.next_below(3))}; break;
            case 3: cmd = {"LPUSH", "l" + std::to_string(rng.next_below(3)),
                           "e" + std::to_string(i)}; break;
            case 4: cmd = {"RPOP", "l" + std::to_string(rng.next_below(3))}; break;
            case 5: cmd = {"SADD", "s", std::to_string(rng.next_below(50))}; break;
            case 6: cmd = {"SPOP", "s"}; break;
            case 7: cmd = {"HSET", "h", "f" + std::to_string(rng.next_below(5)),
                           std::to_string(i)}; break;
            case 8: cmd = {"ZADD", "z", std::to_string(rng.next_below(100)),
                           "m" + std::to_string(rng.next_below(10))}; break;
            case 9: cmd = {"APPEND", key(), "x"}; break;
        }
        ch->send(kv::resp::command(cmd));
    }
    c.sim().run_until(c.sim().now() + sim::milliseconds(500));

    ASSERT_TRUE(c.converged());
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(c.master().db().equals(c.slave(i).db())) << "slave " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplConvergenceTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

/// WSEQ duplicate-suppression table: bounded by dup_table_max with LRU
/// eviction, and evictions are replicated so replica tables track the
/// master's in exact lockstep (a promoted stand-in must agree on which
/// retries are still suppressed).
class DupTableLruTest : public ::testing::Test {
protected:
    std::unique_ptr<Cluster> make(std::size_t cap) {
        ClusterConfig cfg;
        cfg.seed = 7;
        cfg.n_slaves = 1;
        cfg.offload = false;
        cfg.server_tmpl.dup_table_max = cap;
        auto c = std::make_unique<Cluster>(cfg);
        c->start();
        return c;
    }

    /// Send commands in order on one connection and let them all land.
    void run_commands(Cluster& c,
                      const std::vector<std::vector<std::string>>& cmds) {
        auto node = c.add_client_host("dup-tester");
        net::ChannelPtr ch;
        c.connect_client(node, [&](net::ChannelPtr x) { ch = std::move(x); });
        c.sim().run_until(c.sim().now() + sim::milliseconds(10));
        ASSERT_TRUE(ch);
        ch->set_on_message([](std::string) {});
        for (const auto& cmd : cmds) ch->send(kv::resp::command(cmd));
        c.sim().run_until(c.sim().now() + sim::milliseconds(200));
    }

    static std::vector<std::string> tagged_set(std::uint64_t client,
                                               std::uint64_t seq) {
        return {"WSEQ", std::to_string(client), std::to_string(seq),
                "SET", "dk" + std::to_string(client), "v"};
    }
};

TEST_F(DupTableLruTest, CapEvictsLeastRecentClient) {
    auto c = make(/*cap=*/4);
    std::vector<std::vector<std::string>> cmds;
    for (std::uint64_t cl = 1; cl <= 8; ++cl) cmds.push_back(tagged_set(cl, 1));
    run_commands(*c, cmds);

    EXPECT_EQ(c->master().dup_entries(), 4u);
    EXPECT_EQ(c->master().stats().counter("dup_evictions"), 4u);
    for (std::uint64_t cl = 1; cl <= 4; ++cl) {
        EXPECT_FALSE(c->master().dup_has(cl)) << "client " << cl;
    }
    for (std::uint64_t cl = 5; cl <= 8; ++cl) {
        EXPECT_TRUE(c->master().dup_has(cl)) << "client " << cl;
    }
}

TEST_F(DupTableLruTest, RetryTouchKeepsLiveClientResident) {
    auto c = make(/*cap=*/4);
    std::vector<std::vector<std::string>> cmds;
    for (std::uint64_t cl = 1; cl <= 4; ++cl) cmds.push_back(tagged_set(cl, 1));
    // Client 1 retries its write mid-stream: the dup hit must refresh its
    // LRU position (and never re-apply the command).
    cmds.push_back(tagged_set(1, 1));
    for (std::uint64_t cl = 5; cl <= 7; ++cl) cmds.push_back(tagged_set(cl, 1));
    run_commands(*c, cmds);

    EXPECT_EQ(c->master().stats().counter("dup_suppressed"), 1u);
    EXPECT_EQ(c->master().stats().counter("dup_evictions"), 3u);
    EXPECT_TRUE(c->master().dup_has(1)) << "live retrier was evicted";
    for (std::uint64_t cl = 2; cl <= 4; ++cl) {
        EXPECT_FALSE(c->master().dup_has(cl)) << "client " << cl;
    }
    // The retry replayed the cached result: the write applied exactly once.
    EXPECT_EQ(c->master().stats().counter("repl_sends"),
              7u + 3u); // 7 writes + 3 replicated evictions
}

TEST_F(DupTableLruTest, ReplicaTableTracksMasterInLockstep) {
    auto c = make(/*cap=*/4);
    std::vector<std::vector<std::string>> cmds;
    for (std::uint64_t cl = 1; cl <= 4; ++cl) cmds.push_back(tagged_set(cl, 1));
    cmds.push_back(tagged_set(2, 1)); // touch: master-side LRU refresh only
    for (std::uint64_t cl = 5; cl <= 7; ++cl) cmds.push_back(tagged_set(cl, 1));
    run_commands(*c, cmds);
    ASSERT_TRUE(c->converged());

    // The replica never runs its own LRU scan — it obeys the replicated
    // WSEQEVICT stream — so even though the touch that saved client 2 was
    // invisible to it, its table is byte-for-byte the master's.
    EXPECT_EQ(c->slave(0).stats().counter("dup_evictions_applied"),
              c->master().stats().counter("dup_evictions"));
    EXPECT_EQ(c->slave(0).dup_entries(), c->master().dup_entries());
    for (std::uint64_t cl = 1; cl <= 7; ++cl) {
        EXPECT_EQ(c->slave(0).dup_has(cl), c->master().dup_has(cl))
            << "client " << cl;
    }
    EXPECT_TRUE(c->master().dup_has(2)) << "touched client should survive";
}

} // namespace
} // namespace skv::server
