// An interactive redis-cli-style shell against a simulated SKV cluster:
// each line you type is parsed like an inline Redis command, executed on
// the simulated master (replicating through the SmartNIC to 2 slaves),
// and the reply printed. Special commands:
//
//   .info       cluster status
//   .slaves     compare master and slave keyspaces
//   .time       advance simulated time by one second
//   .quit       exit
//
//   ./build/examples/kv_shell            (interactive)
//   echo "SET k v\nGET k" | ./build/examples/kv_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "kv/resp.hpp"
#include "kv/sds.hpp"
#include "skv/cluster.hpp"

using namespace skv;

int main() {
    offload::ClusterConfig cfg;
    cfg.n_slaves = 2;
    cfg.offload = true;
    offload::Cluster cluster(cfg);
    cluster.start();

    auto client_node = cluster.add_client_host("shell");
    net::ChannelPtr ch;
    cluster.connect_client(client_node,
                           [&](net::ChannelPtr c) { ch = std::move(c); });
    cluster.sim().run_until(cluster.sim().now() + sim::milliseconds(10));
    if (!ch) {
        std::fprintf(stderr, "failed to connect to the simulated master\n");
        return 1;
    }

    kv::resp::ReplyParser parser;
    ch->set_on_message([&](std::string payload) {
        parser.feed(payload);
        kv::resp::Value v;
        while (parser.next(&v) == kv::resp::Status::kOk) {
            std::printf("%s\n", v.to_debug_string().c_str());
        }
    });

    std::printf("skv-shell: 1 master + 2 slaves behind a simulated "
                "BlueField SmartNIC.\nType Redis commands ('.quit' to "
                "exit, '.info' for status).\n");

    std::string line;
    while (std::printf("skv> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
        if (line == ".quit" || line == ".exit") break;
        if (line.empty()) continue;
        if (line == ".info") {
            std::printf("%s\n", cluster.master().info().c_str());
            for (int i = 0; i < cluster.slave_count(); ++i) {
                std::printf("%s\n", cluster.slave(i).info().c_str());
            }
            std::printf("nic-kv: %d/%zu slaves valid, fan-out offset %lld\n",
                        cluster.nic_kv()->valid_slaves(),
                        cluster.nic_kv()->slave_count(),
                        static_cast<long long>(cluster.nic_kv()->fanout_offset()));
            continue;
        }
        if (line == ".slaves") {
            for (int i = 0; i < cluster.slave_count(); ++i) {
                std::printf("slave%d: %zu keys, %s master\n", i,
                            cluster.slave(i).db().size(),
                            cluster.master().db().equals(cluster.slave(i).db())
                                ? "identical to"
                                : "DIVERGED from");
            }
            continue;
        }
        if (line == ".time") {
            cluster.sim().run_until(cluster.sim().now() + sim::seconds(1));
            std::printf("simulated clock: %.3fs\n", cluster.sim().now().sec());
            continue;
        }
        const auto argv = kv::Sds::split_args(line);
        if (!argv.has_value() || argv->empty()) {
            std::printf("(parse error)\n");
            continue;
        }
        std::vector<std::string> cmd;
        cmd.reserve(argv->size());
        for (const auto& a : *argv) cmd.push_back(a.str());
        ch->send(kv::resp::command(cmd));
        // Run the simulation until the reply has been printed.
        cluster.sim().run_until(cluster.sim().now() + sim::milliseconds(50));
    }
    return 0;
}
