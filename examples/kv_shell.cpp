// An interactive redis-cli-style shell against a simulated SKV cluster:
// each line you type is parsed like an inline Redis command, executed on
// the simulated master (replicating through the SmartNIC to 2 slaves),
// and the reply printed. Special commands:
//
//   .info         cluster status
//   .slaves       compare master and slave keyspaces
//   .time         advance simulated time by one second
//   .trace FILE   dump collected spans as chrome://tracing JSON
//   .quit         exit
//
// Server-side introspection works like on real Redis: INFO, SLOWLOG
// GET/LEN/RESET and LATENCY LATEST/HISTORY/RESET are ordinary commands
// answered by the simulated master.
//
//   ./build/examples/kv_shell            (interactive)
//   echo "SET k v\nGET k" | ./build/examples/kv_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "kv/resp.hpp"
#include "kv/sds.hpp"
#include "obs/export.hpp"
#include "skv/cluster.hpp"

using namespace skv;

int main() {
    offload::ClusterConfig cfg;
    cfg.n_slaves = 2;
    cfg.offload = true;
    offload::Cluster cluster(cfg);
    // Collect spans so `.trace FILE` has something to dump; harmless for
    // everything else (the tracer only observes).
    cluster.tracer().set_enabled(true);
    cluster.start();

    auto client_node = cluster.add_client_host("shell");
    net::ChannelPtr ch;
    cluster.connect_client(client_node,
                           [&](net::ChannelPtr c) { ch = std::move(c); });
    cluster.sim().run_until(cluster.sim().now() + sim::milliseconds(10));
    if (!ch) {
        std::fprintf(stderr, "failed to connect to the simulated master\n");
        return 1;
    }

    const std::uint32_t shell_track = cluster.tracer().track("client/shell");
    kv::resp::ReplyParser parser;
    ch->set_on_message([&](std::string payload) {
        cluster.tracer().flow_complete(ch->flow_id());
        parser.feed(payload);
        kv::resp::Value v;
        while (parser.next(&v) == kv::resp::Status::kOk) {
            std::printf("%s\n", v.to_debug_string().c_str());
        }
    });

    std::printf("skv-shell: 1 master + 2 slaves behind a simulated "
                "BlueField SmartNIC.\nType Redis commands ('.quit' to "
                "exit, '.info' for status).\n");

    std::string line;
    while (std::printf("skv> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
        if (line == ".quit" || line == ".exit") break;
        if (line.empty()) continue;
        if (line == ".info") {
            std::printf("%s\n", cluster.master().info().c_str());
            for (int i = 0; i < cluster.slave_count(); ++i) {
                std::printf("%s\n", cluster.slave(i).info().c_str());
            }
            std::printf("nic-kv: %d/%zu slaves valid, fan-out offset %lld\n",
                        cluster.nic_kv()->valid_slaves(),
                        cluster.nic_kv()->slave_count(),
                        static_cast<long long>(cluster.nic_kv()->fanout_offset()));
            continue;
        }
        if (line == ".slaves") {
            for (int i = 0; i < cluster.slave_count(); ++i) {
                std::printf("slave%d: %zu keys, %s master\n", i,
                            cluster.slave(i).db().size(),
                            cluster.master().db().equals(cluster.slave(i).db())
                                ? "identical to"
                                : "DIVERGED from");
            }
            continue;
        }
        if (line == ".time") {
            cluster.sim().run_until(cluster.sim().now() + sim::seconds(1));
            std::printf("simulated clock: %.3fs\n", cluster.sim().now().sec());
            continue;
        }
        if (line.rfind(".trace", 0) == 0) {
            const auto sp = line.find(' ');
            const std::string path =
                sp == std::string::npos ? "" : line.substr(sp + 1);
            if (path.empty()) {
                std::printf("usage: .trace FILE\n");
            } else if (obs::write_chrome_trace(cluster.tracer(), path)) {
                std::printf("wrote %zu spans to %s (open in "
                            "chrome://tracing or https://ui.perfetto.dev)\n",
                            cluster.tracer().spans().size(), path.c_str());
            } else {
                std::printf("failed to write %s\n", path.c_str());
            }
            continue;
        }
        const auto argv = kv::Sds::split_args(line);
        if (!argv.has_value() || argv->empty()) {
            std::printf("(parse error)\n");
            continue;
        }
        std::vector<std::string> cmd;
        cmd.reserve(argv->size());
        for (const auto& a : *argv) cmd.push_back(a.str());
        cluster.tracer().flow_issue(ch->flow_id(), shell_track);
        ch->send(kv::resp::command(cmd));
        // Run the simulation until the reply has been printed.
        cluster.sim().run_until(cluster.sim().now() + sim::milliseconds(50));
    }
    return 0;
}
