// Side-by-side demo of the paper's three systems under an identical SET
// workload: TCP Redis, RDMA-Redis (host-side replication fan-out) and SKV
// (fan-out offloaded to the SmartNIC). Prints throughput/latency, the
// master's CPU utilization, and the offload bookkeeping that explains the
// difference — the paper's core argument in one run.
//
//   ./build/examples/replicated_cluster [clients] [seconds]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "skv/cluster.hpp"
#include "workload/runner.hpp"

using namespace skv;

namespace {

struct SystemSpec {
    const char* name;
    server::Transport transport;
    bool offload;
};

void run_system(const SystemSpec& spec, int clients, int seconds) {
    offload::ClusterConfig cfg;
    cfg.n_slaves = 3;
    cfg.transport = spec.transport;
    cfg.offload = spec.offload;
    offload::Cluster cluster(cfg);
    cluster.start();

    workload::RunOptions opts;
    opts.clients = clients;
    opts.spec.set_ratio = 1.0;
    opts.spec.value_bytes = 64;
    opts.measure = sim::seconds(seconds);
    const auto r = workload::run_workload(cluster, opts);

    std::printf("%-11s %10.1f %9.1f %9.1f %7.0f%%",
                spec.name, r.throughput_kops, r.mean_us, r.p99_us,
                r.master_cpu_util * 100.0);
    if (spec.offload) {
        std::printf("   (master posted %llu WRs for replication; Nic-KV fanned "
                    "out %llu)",
                    static_cast<unsigned long long>(
                        cluster.master().stats().counter("repl_offload_requests")),
                    static_cast<unsigned long long>(
                        cluster.nic_kv()->stats().counter("fanout_sends")));
    } else {
        std::printf("   (master posted %llu per-slave replication WRs itself)",
                    static_cast<unsigned long long>(
                        cluster.master().stats().counter("repl_sends")));
    }
    std::printf("\n");

    // Let in-flight replication drain before checking convergence.
    cluster.sim().run_until(cluster.sim().now() + sim::milliseconds(500));
    if (!cluster.converged()) {
        std::printf("  WARNING: slaves had not fully drained the stream\n");
    }
}

} // namespace

int main(int argc, char** argv) {
    const int clients = argc > 1 ? std::atoi(argv[1]) : 8;
    const int seconds = argc > 2 ? std::atoi(argv[2]) : 2;

    std::printf("SET workload, 1 master + 3 slaves, %d clients, %ds "
                "(simulated)\n\n",
                clients, seconds);
    std::printf("%-11s %10s %9s %9s %8s\n", "system", "kops/s", "avg us",
                "p99 us", "cpu");

    run_system({"Redis", server::Transport::kTcp, false}, clients, seconds);
    run_system({"RDMA-Redis", server::Transport::kRdma, false}, clients, seconds);
    run_system({"SKV", server::Transport::kRdma, true}, clients, seconds);

    std::printf("\nSKV's gain comes from the master posting one work request "
                "per write\ninstead of one per slave; the SmartNIC's ARM "
                "cores do the fan-out.\n");
    return 0;
}
