// Quickstart: stand up a one-master/three-slave SKV cluster in the
// simulator, issue a few commands through a client channel, and watch
// replication reach the slaves through Nic-KV on the SmartNIC.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "kv/resp.hpp"
#include "skv/cluster.hpp"

using namespace skv;

int main() {
    offload::ClusterConfig cfg;
    cfg.n_slaves = 3;
    cfg.offload = true; // SKV mode: replication runs on the SmartNIC
    cfg.transport = server::Transport::kRdma;

    offload::Cluster cluster(cfg);
    cluster.start();

    std::printf("cluster up:\n  %s\n", cluster.master().info().c_str());
    for (int i = 0; i < cluster.slave_count(); ++i) {
        std::printf("  %s\n", cluster.slave(i).info().c_str());
    }
    std::printf("  nic-kv: %zu nodes in the node list, %d valid slaves\n",
                cluster.nic_kv()->nodes().size(),
                cluster.nic_kv()->valid_slaves());

    // Connect one client and run a tiny session.
    auto client_node = cluster.add_client_host("app");
    net::ChannelPtr ch;
    cluster.connect_client(client_node,
                           [&](net::ChannelPtr c) { ch = std::move(c); });
    cluster.sim().run_until(cluster.sim().now() + sim::milliseconds(10));
    if (!ch) {
        std::fprintf(stderr, "client failed to connect\n");
        return 1;
    }

    kv::resp::ReplyParser replies;
    ch->set_on_message([&](std::string payload) {
        replies.feed(payload);
        kv::resp::Value v;
        while (replies.next(&v) == kv::resp::Status::kOk) {
            std::printf("  reply: %s\n", v.to_debug_string().c_str());
        }
    });

    std::printf("issuing commands:\n");
    ch->send(kv::resp::command({"SET", "greeting", "hello, smartnic"}));
    ch->send(kv::resp::command({"SET", "counter", "41"}));
    ch->send(kv::resp::command({"INCR", "counter"}));
    ch->send(kv::resp::command({"GET", "greeting"}));
    ch->send(kv::resp::command({"LPUSH", "jobs", "a", "b", "c"}));
    ch->send(kv::resp::command({"LRANGE", "jobs", "0", "-1"}));

    // Let the commands execute and replication drain.
    cluster.sim().run_until(cluster.sim().now() + sim::milliseconds(500));

    std::printf("after replication:\n  %s\n", cluster.master().info().c_str());
    for (int i = 0; i < cluster.slave_count(); ++i) {
        std::printf("  %s\n", cluster.slave(i).info().c_str());
    }
    std::printf("slaves converged with master: %s\n",
                cluster.converged() ? "yes" : "NO");
    std::printf("master db == slave0 db: %s\n",
                cluster.master().db().equals(cluster.slave(0).db()) ? "yes"
                                                                    : "NO");
    return cluster.converged() ? 0 : 1;
}
