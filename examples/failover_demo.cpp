// Failure-detection walkthrough (paper §III-D): Nic-KV probes every node
// each second; a node that misses `waiting-time` is marked invalid in the
// node list and skipped during fan-out. This demo crashes a slave, then
// the master, and narrates what the failure detector does — including
// master failover to a stand-in slave and demotion when the master
// returns.
//
//   ./build/examples/failover_demo

#include <cstdio>

#include "kv/resp.hpp"
#include "skv/cluster.hpp"

using namespace skv;

namespace {

void status(offload::Cluster& c, const char* when) {
    auto* nic = c.nic_kv();
    std::printf("[t=%6.1fs] %s\n", c.sim().now().sec(), when);
    std::printf("           master=%s valid=%s | slaves valid %d/%zu",
                server::to_string(c.master().role()),
                nic->master_valid() ? "yes" : "NO", nic->valid_slaves(),
                nic->slave_count());
    for (int i = 0; i < c.slave_count(); ++i) {
        std::printf(" | slave%d=%s%s", i, server::to_string(c.slave(i).role()),
                    c.slave(i).crashed() ? "(down)" : "");
    }
    std::printf("\n");
}

void wait(offload::Cluster& c, double seconds) {
    c.sim().run_until(c.sim().now() +
                      sim::milliseconds(static_cast<std::int64_t>(seconds * 1e3)));
}

} // namespace

int main() {
    offload::ClusterConfig cfg;
    cfg.n_slaves = 2;
    cfg.offload = true;
    cfg.server_tmpl.min_slaves = 1; // writes need one live replica
    offload::Cluster cluster(cfg);
    cluster.start();

    // A client that keeps writing throughout.
    auto client_node = cluster.add_client_host("app");
    net::ChannelPtr ch;
    cluster.connect_client(client_node,
                           [&](net::ChannelPtr c) { ch = std::move(c); });
    wait(cluster, 0.01);
    int oks = 0;
    int errors = 0;
    kv::resp::ReplyParser parser;
    ch->set_on_message([&](std::string payload) {
        parser.feed(payload);
        kv::resp::Value v;
        while (parser.next(&v) == kv::resp::Status::kOk) {
            (v.is_error() ? errors : oks)++;
        }
    });
    auto write = [&](const std::string& k) {
        ch->send(kv::resp::command({"SET", k, "value"}));
    };

    status(cluster, "cluster up, all nodes healthy");
    write("before-failure");
    wait(cluster, 1.0);

    std::printf("\n--- crashing slave 0 ---\n");
    cluster.slave(0).crash();
    wait(cluster, 3.5); // probe interval + waiting-time
    status(cluster, "slave 0 detected as failed; fan-out now skips it");
    write("during-slave-outage");
    wait(cluster, 0.5);
    std::printf("           writes so far: %d OK, %d errors (clients are "
                "unaware of the failure)\n",
                oks, errors);

    std::printf("\n--- slave 0 recovers ---\n");
    cluster.slave(0).recover();
    wait(cluster, 3.5);
    status(cluster, "slave 0 re-registered; Nic-KV arranged a resync");
    std::printf("           slave0 applied=%lld master offset=%lld (%s)\n",
                static_cast<long long>(cluster.slave(0).slave_applied_offset()),
                static_cast<long long>(cluster.master().master_offset()),
                cluster.slave(0).slave_applied_offset() ==
                        cluster.master().master_offset()
                    ? "converged"
                    : "catching up");

    std::printf("\n--- crashing the master ---\n");
    cluster.master().crash();
    wait(cluster, 4.0);
    status(cluster, "master failed; a stand-in slave was promoted");

    std::printf("\n--- master returns ---\n");
    cluster.master().recover();
    wait(cluster, 4.0);
    status(cluster, "master resumed mastership; stand-in demoted");

    std::printf("\nfailure detector counters: %llu failures, %llu recoveries, "
                "%llu failovers\n",
                static_cast<unsigned long long>(
                    cluster.nic_kv()->stats().counter("failures_detected")),
                static_cast<unsigned long long>(
                    cluster.nic_kv()->stats().counter("recoveries_detected")),
                static_cast<unsigned long long>(
                    cluster.nic_kv()->stats().counter("failovers")));
    return 0;
}
