#!/usr/bin/env python3
"""Self-test for simlint: runs the checker over the fixture files and
asserts that each rule fires where seeded, the clean file passes, and
suppression comments behave. Registered as the ctest `simlint_selftest`."""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
SIMLINT = HERE / "simlint.py"
FIXTURES = HERE / "fixtures"

failures: list[str] = []


def run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SIMLINT), *args],
        capture_output=True,
        text=True,
    )


def expect(name: str, cond: bool, context: str = "") -> None:
    if cond:
        print(f"  ok  {name}")
    else:
        failures.append(name)
        print(f"FAIL  {name}\n{context}")


def check_bad(fixture: str, rule: str, min_findings: int) -> None:
    r = run(str(FIXTURES / fixture))
    hits = [l for l in r.stdout.splitlines() if f"[{rule}]" in l]
    expect(
        f"{fixture} triggers [{rule}] x{min_findings}",
        r.returncode == 1 and len(hits) >= min_findings,
        f"  exit={r.returncode}\n  stdout:\n{r.stdout}",
    )
    # Findings must be file:line-addressable for CI triage.
    expect(
        f"{fixture} findings carry file:line",
        all(f"{fixture}:" in l for l in hits) and all(
            l.split(":")[1].isdigit() for l in hits
        ),
        f"  stdout:\n{r.stdout}",
    )


def main() -> int:
    check_bad("bad_raw_rng.cpp", "raw-rng", 4)
    check_bad("bad_wall_clock.cpp", "wall-clock", 5)
    check_bad("bad_unordered_iteration.cpp", "unordered-iteration", 2)
    check_bad("bad_bare_assert.cpp", "bare-assert", 1)
    check_bad("bad_stdout_io.cpp", "stdout-io", 3)

    # Rules must not bleed into each other's fixtures beyond what's seeded:
    r = run(str(FIXTURES / "bad_bare_assert.cpp"))
    expect(
        "static_assert is not flagged",
        len([l for l in r.stdout.splitlines() if "[bare-assert]" in l]) == 1,
        r.stdout,
    )
    r = run(str(FIXTURES / "bad_stdout_io.cpp"))
    expect(
        "snprintf/fprintf(stderr) are not flagged",
        len([l for l in r.stdout.splitlines() if "[stdout-io]" in l]) == 3,
        r.stdout,
    )
    r = run(str(FIXTURES / "bad_unordered_iteration.cpp"))
    expect(
        "point lookups on unordered containers are not flagged",
        len([l for l in r.stdout.splitlines() if "unordered" in l]) == 2,
        r.stdout,
    )

    r = run(str(FIXTURES / "clean.cpp"))
    expect("clean.cpp passes", r.returncode == 0 and not r.stdout.strip(),
           f"  exit={r.returncode}\n{r.stdout}")

    r = run(str(FIXTURES / "suppressed.cpp"))
    expect("suppression comments with reasons silence findings",
           r.returncode == 0 and not r.stdout.strip(),
           f"  exit={r.returncode}\n{r.stdout}")

    r = run(str(FIXTURES / "bad_allow_missing_reason.cpp"))
    expect("allow-comment without reason is a config error (exit 2)",
           r.returncode == 2 and "missing the mandatory reason" in r.stderr,
           f"  exit={r.returncode}\n{r.stderr}")

    # The blessed implementations keep their exemptions.
    with tempfile.TemporaryDirectory() as td:
        root = Path(td) / "src" / "sim"
        root.mkdir(parents=True)
        rng = root / "rng.cpp"
        rng.write_text("#include <random>\nstd::mt19937 g; // blessed home\n")
        clock = root / "time.cpp"
        clock.write_text("#include <chrono>\nauto t = "
                         "std::chrono::steady_clock::now();\n")
        r = run(str(rng), str(clock))
        expect("src/sim/rng.* and src/sim/time.* are exempt from their rules",
               r.returncode == 0,
               f"  exit={r.returncode}\n{r.stdout}")

        # src/obs/export* is the single blessed stdout writer in library
        # code; any other obs file writing to stdout is still a finding.
        obs = Path(td) / "src" / "obs"
        obs.mkdir(parents=True)
        exporter = obs / "export.cpp"
        exporter.write_text('#include <cstdio>\n'
                            'void emit() { printf("JSON: {}\\n"); }\n')
        other = obs / "metrics.cpp"
        other.write_text('#include <cstdio>\n'
                         'void leak() { printf("nope\\n"); }\n')
        r = run(str(exporter))
        expect("src/obs/export* is exempt from stdout-io",
               r.returncode == 0 and not r.stdout.strip(),
               f"  exit={r.returncode}\n{r.stdout}")
        r = run(str(other))
        expect("other src/obs files still trigger stdout-io",
               r.returncode == 1 and "[stdout-io]" in r.stdout,
               f"  exit={r.returncode}\n{r.stdout}")

        # compile_commands.json driving: only files under --src-root are
        # linted, and headers are swept in.
        outside = Path(td) / "bench.cpp"
        outside.write_text("int x = rand();\n")
        bad_hdr = Path(td) / "src" / "bad.hpp"
        bad_hdr.write_text("#include <cstdlib>\ninline int r() { return rand(); }\n")
        db = Path(td) / "compile_commands.json"
        db.write_text(json.dumps([
            {"directory": td, "file": str(rng), "command": "c++ -c"},
            {"directory": td, "file": str(outside), "command": "c++ -c"},
        ]))
        r = run("--compile-commands", str(db), "--src-root", str(Path(td) / "src"))
        expect(
            "compile-commands mode scopes to src-root and sweeps headers",
            r.returncode == 1 and "bad.hpp" in r.stdout
            and "bench.cpp" not in r.stdout,
            f"  exit={r.returncode}\n{r.stdout}",
        )

    if failures:
        print(f"\nsimlint selftest: {len(failures)} failure(s)")
        return 1
    print("\nsimlint selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
