// Fixture: the assert() must trigger [bare-assert]; static_assert must not.
#include <cassert>

static_assert(sizeof(int) >= 4, "ok: compile-time");

int half(int x) {
    assert(x % 2 == 0);  // finding
    return x / 2;
}
