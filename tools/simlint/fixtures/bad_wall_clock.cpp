// Fixture: every marked line must trigger [wall-clock].
#include <chrono>
#include <ctime>
#include <sys/time.h>

long now_ns() {
    auto t0 = std::chrono::steady_clock::now();          // finding
    auto t1 = std::chrono::system_clock::now();          // finding
    auto t2 = std::chrono::high_resolution_clock::now(); // finding
    std::time_t t = time(nullptr);                       // finding
    struct timeval tv;
    gettimeofday(&tv, nullptr);                          // finding
    (void)t0; (void)t1; (void)t2;
    return static_cast<long>(t) + tv.tv_sec;
}
