// Fixture: every line below must trigger [raw-rng].
#include <cstdlib>
#include <random>

int draw() {
    std::random_device rd;                       // finding
    std::mt19937 gen(rd());                      // finding
    std::uniform_int_distribution<int> d(0, 9);  // finding
    int x = rand();                              // finding
    return d(gen) + x;
}
