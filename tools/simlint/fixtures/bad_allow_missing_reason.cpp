// Fixture: an allow-comment without a reason is a configuration error
// (exit 2), keeping exceptions self-documenting.
#include <cstdio>

void out() {
    printf("hi\n");  // simlint:allow(stdout-io)
}
