// Fixture: the marked lines must trigger [stdout-io]; fprintf(stderr) and
// snprintf must not.
#include <cstdio>
#include <iostream>

void report(int n) {
    std::cout << "n=" << n << "\n";          // finding
    printf("n=%d\n", n);                     // finding
    puts("done");                            // finding
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", n);  // ok
    std::fprintf(stderr, "diag %s\n", buf);    // ok
}
