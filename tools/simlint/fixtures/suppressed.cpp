// Fixture: every violation carries a simlint:allow with a reason, so the
// file must lint clean.
#include <cassert>
#include <cstdio>
#include <string>
#include <unordered_map>

void diagnostics(int n) {
    // simlint:allow(stdout-io) CLI entry point, stdout is the product
    printf("result=%d\n", n);
}

int checked(int x) {
    assert(x > 0);  // simlint:allow(bare-assert) host-side tool, no sim context to report
    return x;
}

int drain(const std::unordered_map<std::string, int>& m) {
    int s = 0;
    // simlint:allow(unordered-iteration) order-insensitive sum, result does not feed the sim
    for (const auto& [k, v] : m) s += v;
    return s;
}
