// Fixture: must produce zero findings. Mentions of banned names inside
// comments and string literals are not code:
//   std::random_device, steady_clock, assert(x), std::cout
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>

static const char* kDoc = "call rand() and time(nullptr) at your peril";

struct Clean {
    std::unordered_map<std::string, int> index_;  // ok: declared, never iterated
    std::map<std::string, int> ordered_;

    int lookup(const std::string& k) const {
        auto it = index_.find(k);  // ok: point lookup
        return it == index_.end() ? 0 : it->second;
    }

    int total() const {
        int s = 0;
        for (const auto& [k, v] : ordered_) s += v;  // ok: ordered container
        return s;
    }
};

const char* doc() { return kDoc; }
