// Fixture: the loops below must trigger [unordered-iteration];
// point lookup and insert must NOT.
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Registry {
    std::unordered_map<std::string, int> table_;
    std::unordered_set<int> live_;

    int sum() const {
        int s = 0;
        for (const auto& [k, v] : table_) {  // finding: range-for
            s += v;
        }
        for (auto it = live_.begin(); it != live_.end(); ++it) {  // finding: begin()
            s += *it;
        }
        return s;
    }

    bool fine(const std::string& k) const {
        return table_.contains(k) && live_.count(1) > 0;  // ok: point lookups
    }
};
