#!/usr/bin/env python3
"""simlint — project-specific determinism / safety lint for the SKV DES.

Every guarantee this repository makes (bit-identical reruns, the figure
regression curves, the chaos suite) rests on the discrete-event simulation
staying deterministic. This checker enforces the source-level rules that
keep it that way; see DESIGN.md "Determinism rules" for the rationale.

Rules
  raw-rng             rand()/srand()/std::random_device/std::mt19937/... are
                      banned outside src/sim/rng.* — all randomness must flow
                      from the seeded xoshiro Rng.
  wall-clock          system_clock/steady_clock/time()/gettimeofday/... are
                      banned outside src/sim/time.* — sim code may only
                      observe SimTime.
  unordered-iteration iterating a std::unordered_{map,set} is banned in
                      sim-visible code: iteration order is
                      implementation-defined and leaks into event scheduling.
                      Lookup/insert/erase are fine.
  bare-assert         assert() is banned in src/ — use SKV_CHECK/SKV_DCHECK
                      (sim/check.hpp), which print seed, sim time and owning
                      node on failure.
  stdout-io           std::cout / printf / puts are banned in library code —
                      components report through sim::Trace / StatsRegistry;
                      diagnostics go to stderr.

Suppressions
  A finding on line N is suppressed by a comment on line N or line N-1:
      // simlint:allow(<rule>) <reason>
  The reason is mandatory; an allow-comment without one is itself an error,
  so every intentional exception stays self-documenting.

Usage
  simlint.py --compile-commands build/compile_commands.json --src-root src
  simlint.py file1.cpp file2.hpp          # explicit files (fixture testing)

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
import lintcommon

# ---------------------------------------------------------------------------
# Rule definitions

RAW_RNG = re.compile(
    r"""(?<![\w:])(?:
        rand\s*\( |
        srand\s*\( |
        [ld]rand48\s*\( |
        (?:std\s*::\s*)?random_device\b |
        (?:std\s*::\s*)?mt19937(?:_64)?\b |
        (?:std\s*::\s*)?minstd_rand0?\b |
        (?:std\s*::\s*)?default_random_engine\b |
        (?:std\s*::\s*)?(?:uniform_int|uniform_real|bernoulli|normal|
                          exponential|poisson)_distribution\b |
        (?:std\s*::\s*)?(?:random_)?shuffle\s*[(<]
    )""",
    re.X,
)

WALL_CLOCK = re.compile(
    r"""(?<![\w:])(?:
        (?:std\s*::\s*)?(?:chrono\s*::\s*)?(?:system_clock|steady_clock|
                                             high_resolution_clock)\b |
        time\s*\(\s*(?:NULL|nullptr|0|&)?[\w\s]*\) |
        clock\s*\(\s*\) |
        gettimeofday\s*\( |
        clock_gettime\s*\( |
        localtime(?:_r)?\s*\( |
        gmtime(?:_r)?\s*\(
    )""",
    re.X,
)

BARE_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")

STDOUT_IO = re.compile(
    r"""(?:
        (?<![\w:])std\s*::\s*cout\b |
        (?<![\w:])printf\s*\( |
        (?<![\w:])puts\s*\(
    )""",
    re.X,
)

UNORDERED_DECL = re.compile(r"(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")

RULES = {
    "raw-rng": "raw RNG source; use sim::Rng (src/sim/rng.hpp) so results are seed-determined",
    "wall-clock": "wall-clock read; sim code must use sim::SimTime (src/sim/time.hpp)",
    "unordered-iteration": "iteration over an unordered container; order is implementation-defined and leaks into event scheduling",
    "bare-assert": "bare assert(); use SKV_CHECK/SKV_DCHECK (sim/check.hpp) for seed/sim-time/node diagnostics",
    "stdout-io": "stdout in library code; report via sim::Trace/StatsRegistry, diagnostics to stderr",
}

# Files where a rule is allowed by design (the single blessed implementation).
EXEMPT = {
    "raw-rng": (re.compile(r"(?:^|/)src/sim/rng\.(?:hpp|cpp)$"),),
    "wall-clock": (re.compile(r"(?:^|/)src/sim/time\.(?:hpp|cpp)$"),),
    # The observability exporters are the single place library code may
    # write to stdout (obs::print_stdout/print_line/print_bench_json);
    # everything else routes its output through them.
    "stdout-io": (re.compile(r"(?:^|/)src/obs/export[^/]*$"),),
}


class Finding(lintcommon.Finding):
    rules = RULES


def exempt(rule: str, path: Path) -> bool:
    posix = path.as_posix()
    return any(pat.search(posix) for pat in EXEMPT.get(rule, ()))


def unordered_names(code_lines: list[str]) -> set[str]:
    """Names of variables/members declared with an unordered container type
    anywhere in the file (heuristic: identifier following the closing '>' of
    an unordered_* template argument list, also through alias declarations)."""
    text = "\n".join(code_lines)
    names: set[str] = set()
    aliases: set[str] = set()
    for m in UNORDERED_DECL.finditer(text):
        # walk the balanced <...> to its end
        i = text.index("<", m.start())
        depth = 0
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = text[i + 1 : i + 200]
        # using Alias = std::unordered_map<...>;
        head = text[max(0, m.start() - 120) : m.start()]
        am = re.search(r"using\s+(\w+)\s*=\s*$", head)
        if am:
            aliases.add(am.group(1))
            continue
        dm = re.match(r"[&\s]*(\w+)\s*[;={(]", tail)
        if dm and dm.group(1) not in ("const", "final", "override"):
            names.add(dm.group(1))
    for alias in aliases:
        for m in re.finditer(rf"(?<![\w:]){alias}\s+(\w+)\s*[;={{(]", text):
            names.add(m.group(1))
    return names


def check_file(path: Path, library_code: bool) -> list[Finding]:
    sf = lintcommon.SourceFile(path, "simlint", RULES)
    findings: list[Finding] = []
    code_lines = sf.code

    unordered = unordered_names(code_lines)

    seen: set[tuple[int, str]] = set()

    for lineno, code in enumerate(code_lines, 1):
        def report(rule: str, detail: str = "") -> None:
            if exempt(rule, path) or sf.suppressed(lineno, rule):
                return
            if (lineno, rule) in seen:
                return
            seen.add((lineno, rule))
            findings.append(Finding(path, lineno, rule, detail))

        if RAW_RNG.search(code):
            report("raw-rng")
        if WALL_CLOCK.search(code):
            report("wall-clock")
        if BARE_ASSERT.search(code):
            report("bare-assert")
        if library_code and STDOUT_IO.search(code):
            report("stdout-io")
        # unordered-iteration: range-for over a tracked name, begin()/cbegin()
        # on a tracked name, or range-for directly over an unordered temporary.
        for m in re.finditer(r"for\s*\([^;)]*:\s*([\w.\->]+)\s*\)", code):
            base = m.group(1).split(".")[-1].split("->")[-1]
            if base in unordered:
                report("unordered-iteration", f"range-for over '{base}'")
        # begin() starts an iteration; a lone end() is the find()-idiom
        # sentinel and stays legal.
        for m in re.finditer(r"(\w+)\s*\.\s*c?r?begin\s*\(", code):
            if m.group(1) in unordered:
                report("unordered-iteration", f"'{m.group(1)}.begin()'")
        if re.search(r"for\s*\([^;)]*:\s*[^)]*unordered_(?:map|set)", code):
            report("unordered-iteration", "range-for over unordered temporary")

    return findings


def files_from_compile_commands(db_path: Path, src_root: Path) -> list[Path]:
    return lintcommon.files_from_compile_commands(db_path, src_root, "simlint")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--compile-commands", type=Path,
                    help="compile_commands.json to take the file list from")
    ap.add_argument("--src-root", type=Path, default=Path("src"),
                    help="only lint files under this root (default: src)")
    ap.add_argument("--no-library-rules", action="store_true",
                    help="skip rules that only apply to library code (stdout-io)")
    ap.add_argument("files", nargs="*", type=Path,
                    help="explicit files to lint (overrides --compile-commands)")
    args = ap.parse_args()

    if args.files:
        files = args.files
    elif args.compile_commands:
        files = files_from_compile_commands(args.compile_commands, args.src_root)
    else:
        ap.error("need either explicit files or --compile-commands")

    if not files:
        print("simlint: no files to lint", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(check_file(f, library_code=not args.no_library_rules))

    return lintcommon.report(findings, len(files), "simlint")


if __name__ == "__main__":
    sys.exit(main())
