#!/usr/bin/env python3
"""simlint — project-specific determinism / safety lint for the SKV DES.

Every guarantee this repository makes (bit-identical reruns, the figure
regression curves, the chaos suite) rests on the discrete-event simulation
staying deterministic. This checker enforces the source-level rules that
keep it that way; see DESIGN.md "Determinism rules" for the rationale.

Rules
  raw-rng             rand()/srand()/std::random_device/std::mt19937/... are
                      banned outside src/sim/rng.* — all randomness must flow
                      from the seeded xoshiro Rng.
  wall-clock          system_clock/steady_clock/time()/gettimeofday/... are
                      banned outside src/sim/time.* — sim code may only
                      observe SimTime.
  unordered-iteration iterating a std::unordered_{map,set} is banned in
                      sim-visible code: iteration order is
                      implementation-defined and leaks into event scheduling.
                      Lookup/insert/erase are fine.
  bare-assert         assert() is banned in src/ — use SKV_CHECK/SKV_DCHECK
                      (sim/check.hpp), which print seed, sim time and owning
                      node on failure.
  stdout-io           std::cout / printf / puts are banned in library code —
                      components report through sim::Trace / StatsRegistry;
                      diagnostics go to stderr.

Suppressions
  A finding on line N is suppressed by a comment on line N or line N-1:
      // simlint:allow(<rule>) <reason>
  The reason is mandatory; an allow-comment without one is itself an error,
  so every intentional exception stays self-documenting.

Usage
  simlint.py --compile-commands build/compile_commands.json --src-root src
  simlint.py file1.cpp file2.hpp          # explicit files (fixture testing)

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Rule definitions

RAW_RNG = re.compile(
    r"""(?<![\w:])(?:
        rand\s*\( |
        srand\s*\( |
        [ld]rand48\s*\( |
        (?:std\s*::\s*)?random_device\b |
        (?:std\s*::\s*)?mt19937(?:_64)?\b |
        (?:std\s*::\s*)?minstd_rand0?\b |
        (?:std\s*::\s*)?default_random_engine\b |
        (?:std\s*::\s*)?(?:uniform_int|uniform_real|bernoulli|normal|
                          exponential|poisson)_distribution\b |
        (?:std\s*::\s*)?(?:random_)?shuffle\s*[(<]
    )""",
    re.X,
)

WALL_CLOCK = re.compile(
    r"""(?<![\w:])(?:
        (?:std\s*::\s*)?(?:chrono\s*::\s*)?(?:system_clock|steady_clock|
                                             high_resolution_clock)\b |
        time\s*\(\s*(?:NULL|nullptr|0|&)?[\w\s]*\) |
        clock\s*\(\s*\) |
        gettimeofday\s*\( |
        clock_gettime\s*\( |
        localtime(?:_r)?\s*\( |
        gmtime(?:_r)?\s*\(
    )""",
    re.X,
)

BARE_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")

STDOUT_IO = re.compile(
    r"""(?:
        (?<![\w:])std\s*::\s*cout\b |
        (?<![\w:])printf\s*\( |
        (?<![\w:])puts\s*\(
    )""",
    re.X,
)

UNORDERED_DECL = re.compile(r"(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")

ALLOW = re.compile(r"//\s*simlint:allow\(([\w-]+)\)\s*(.*)")

RULES = {
    "raw-rng": "raw RNG source; use sim::Rng (src/sim/rng.hpp) so results are seed-determined",
    "wall-clock": "wall-clock read; sim code must use sim::SimTime (src/sim/time.hpp)",
    "unordered-iteration": "iteration over an unordered container; order is implementation-defined and leaks into event scheduling",
    "bare-assert": "bare assert(); use SKV_CHECK/SKV_DCHECK (sim/check.hpp) for seed/sim-time/node diagnostics",
    "stdout-io": "stdout in library code; report via sim::Trace/StatsRegistry, diagnostics to stderr",
}

# Files where a rule is allowed by design (the single blessed implementation).
EXEMPT = {
    "raw-rng": (re.compile(r"(?:^|/)src/sim/rng\.(?:hpp|cpp)$"),),
    "wall-clock": (re.compile(r"(?:^|/)src/sim/time\.(?:hpp|cpp)$"),),
    # The observability exporters are the single place library code may
    # write to stdout (obs::print_stdout/print_line/print_bench_json);
    # everything else routes its output through them.
    "stdout-io": (re.compile(r"(?:^|/)src/obs/export[^/]*$"),),
}


class Finding:
    def __init__(self, path: Path, line: int, rule: str, detail: str = ""):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def __str__(self) -> str:
        msg = RULES[self.rule]
        if self.detail:
            msg = f"{msg} ({self.detail})"
        return f"{self.path}:{self.line}: [{self.rule}] {msg}"


def strip_code(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Blank out string/char literals and comments so rule regexes only see
    code. Returns (code, still_in_block_comment). Column positions are
    preserved so findings stay on the right line."""
    out = []
    i = 0
    n = len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        if state == "code":
            if c == '"':
                # raw strings R"( ... )" are rare here; handle the plain form
                out.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        out.append("  ")
                        i += 2
                        continue
                    if line[i] == '"':
                        out.append(" ")
                        i += 1
                        break
                    out.append(" ")
                    i += 1
                continue
            if c == "'":
                out.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        out.append("  ")
                        i += 2
                        continue
                    if line[i] == "'":
                        out.append(" ")
                        i += 1
                        break
                    out.append(" ")
                    i += 1
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                out.append(" " * (n - i))
                i = n
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            out.append(c)
            i += 1
        else:  # block comment
            if c == "*" and i + 1 < n and line[i + 1] == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            i += 1
    return "".join(out), state == "block"


def exempt(rule: str, path: Path) -> bool:
    posix = path.as_posix()
    return any(pat.search(posix) for pat in EXEMPT.get(rule, ()))


def unordered_names(code_lines: list[str]) -> set[str]:
    """Names of variables/members declared with an unordered container type
    anywhere in the file (heuristic: identifier following the closing '>' of
    an unordered_* template argument list, also through alias declarations)."""
    text = "\n".join(code_lines)
    names: set[str] = set()
    aliases: set[str] = set()
    for m in UNORDERED_DECL.finditer(text):
        # walk the balanced <...> to its end
        i = text.index("<", m.start())
        depth = 0
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = text[i + 1 : i + 200]
        # using Alias = std::unordered_map<...>;
        head = text[max(0, m.start() - 120) : m.start()]
        am = re.search(r"using\s+(\w+)\s*=\s*$", head)
        if am:
            aliases.add(am.group(1))
            continue
        dm = re.match(r"[&\s]*(\w+)\s*[;={(]", tail)
        if dm and dm.group(1) not in ("const", "final", "override"):
            names.add(dm.group(1))
    for alias in aliases:
        for m in re.finditer(rf"(?<![\w:]){alias}\s+(\w+)\s*[;={{(]", text):
            names.add(m.group(1))
    return names


def check_file(path: Path, library_code: bool) -> list[Finding]:
    try:
        raw_lines = path.read_text(errors="replace").split("\n")
    except OSError as e:
        print(f"simlint: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    # Pass 1: collect suppressions and comment-stripped code.
    allows: dict[int, str] = {}  # line no -> rule
    findings: list[Finding] = []
    code_lines: list[str] = []
    in_block = False
    for lineno, line in enumerate(raw_lines, 1):
        am = ALLOW.search(line)
        if am:
            rule, reason = am.group(1), am.group(2).strip()
            if rule not in RULES:
                # Unknown rule names are configuration errors, not findings.
                print(
                    f"{path}:{lineno}: simlint:allow names unknown rule "
                    f"'{rule}' (known: {', '.join(sorted(RULES))})",
                    file=sys.stderr,
                )
                sys.exit(2)
            if not reason:
                print(
                    f"{path}:{lineno}: simlint:allow({rule}) is missing the "
                    f"mandatory reason text",
                    file=sys.stderr,
                )
                sys.exit(2)
            allows[lineno] = rule
        code, in_block = strip_code(line, in_block)
        code_lines.append(code)

    def suppressed(lineno: int, rule: str) -> bool:
        return allows.get(lineno) == rule or allows.get(lineno - 1) == rule

    unordered = unordered_names(code_lines)

    seen: set[tuple[int, str]] = set()

    for lineno, code in enumerate(code_lines, 1):
        def report(rule: str, detail: str = "") -> None:
            if exempt(rule, path) or suppressed(lineno, rule):
                return
            if (lineno, rule) in seen:
                return
            seen.add((lineno, rule))
            findings.append(Finding(path, lineno, rule, detail))

        if RAW_RNG.search(code):
            report("raw-rng")
        if WALL_CLOCK.search(code):
            report("wall-clock")
        if BARE_ASSERT.search(code):
            report("bare-assert")
        if library_code and STDOUT_IO.search(code):
            report("stdout-io")
        # unordered-iteration: range-for over a tracked name, begin()/cbegin()
        # on a tracked name, or range-for directly over an unordered temporary.
        for m in re.finditer(r"for\s*\([^;)]*:\s*([\w.\->]+)\s*\)", code):
            base = m.group(1).split(".")[-1].split("->")[-1]
            if base in unordered:
                report("unordered-iteration", f"range-for over '{base}'")
        # begin() starts an iteration; a lone end() is the find()-idiom
        # sentinel and stays legal.
        for m in re.finditer(r"(\w+)\s*\.\s*c?r?begin\s*\(", code):
            if m.group(1) in unordered:
                report("unordered-iteration", f"'{m.group(1)}.begin()'")
        if re.search(r"for\s*\([^;)]*:\s*[^)]*unordered_(?:map|set)", code):
            report("unordered-iteration", "range-for over unordered temporary")

    return findings


def files_from_compile_commands(db_path: Path, src_root: Path) -> list[Path]:
    try:
        entries = json.loads(db_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"simlint: cannot load {db_path}: {e}", file=sys.stderr)
        sys.exit(2)
    root = src_root.resolve()
    out: set[Path] = set()
    for entry in entries:
        f = Path(entry["directory"], entry["file"]).resolve() \
            if not Path(entry["file"]).is_absolute() else Path(entry["file"])
        try:
            f.relative_to(root)
        except ValueError:
            continue
        out.add(f)
    # Headers never appear in the compile database; lint them too.
    for h in root.rglob("*.hpp"):
        out.add(h.resolve())
    for h in root.rglob("*.h"):
        out.add(h.resolve())
    return sorted(out)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--compile-commands", type=Path,
                    help="compile_commands.json to take the file list from")
    ap.add_argument("--src-root", type=Path, default=Path("src"),
                    help="only lint files under this root (default: src)")
    ap.add_argument("--no-library-rules", action="store_true",
                    help="skip rules that only apply to library code (stdout-io)")
    ap.add_argument("files", nargs="*", type=Path,
                    help="explicit files to lint (overrides --compile-commands)")
    args = ap.parse_args()

    if args.files:
        files = args.files
    elif args.compile_commands:
        files = files_from_compile_commands(args.compile_commands, args.src_root)
    else:
        ap.error("need either explicit files or --compile-commands")

    if not files:
        print("simlint: no files to lint", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(check_file(f, library_code=not args.no_library_rules))

    for fi in findings:
        print(fi)
    if findings:
        print(f"simlint: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"simlint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
