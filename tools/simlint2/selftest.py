#!/usr/bin/env python3
"""Self-test for simlint2: runs the checker against the fixtures and
asserts findings, suppressions, exit codes and the compile-commands file
scoping all behave. Wired into ctest as `simlint2_selftest`.

The text frontend is pinned (`--frontend text`) so the test is
deterministic on machines with and without libclang; a separate check
verifies that `--frontend auto` degrades gracefully either way.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).parent
LINT = HERE / "simlint2.py"
FIXTURES = HERE / "fixtures"

failures: list[str] = []


def run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True)


def expect(name: str, cond: bool, context: str = "") -> None:
    if cond:
        print(f"  ok  {name}")
    else:
        print(f"FAIL  {name}\n{context}")
        failures.append(name)


def check_bad(fixture: str, rule: str, min_findings: int = 1) -> str:
    """A bad fixture must exit 1 with >= min_findings of the given rule,
    each carrying a file:line prefix. Returns stdout for extra checks."""
    r = run("--frontend", "text", str(FIXTURES / fixture))
    hits = [l for l in r.stdout.splitlines() if f"[{rule}]" in l]
    expect(f"{fixture} exits 1", r.returncode == 1,
           f"rc={r.returncode}\n{r.stdout}{r.stderr}")
    expect(f"{fixture} reports >= {min_findings} [{rule}]",
           len(hits) >= min_findings, r.stdout)
    for l in hits:
        loc = l.split(" ")[0]  # path:line:
        parts = loc.rstrip(":").rsplit(":", 1)
        addressable = len(parts) == 2 and parts[1].isdigit()
        expect(f"{fixture} finding is file:line addressable", addressable, l)
    return r.stdout


# --- clean fixtures pass -----------------------------------------------------
for clean in ("clean_weak.cpp", "suppressed.cpp"):
    r = run("--frontend", "text", str(FIXTURES / clean))
    expect(f"{clean} passes", r.returncode == 0,
           f"rc={r.returncode}\n{r.stdout}{r.stderr}")

# --- each rule fires on its fixture ------------------------------------------
out = check_bad("cycle_basic.cpp", "cycle")
expect("cycle path names the member edge", "member 'channel'" in out, out)
expect("cycle path names the capture edge",
       "set_on_message handler captures" in out, out)
expect("cycle path carries both classes",
       "ClientConn -> Channel" in out and "Channel -> ClientConn" in out, out)

out = check_bad("bad_use_after_move.cpp", "use-after-move")
expect("use-after-move reports exactly the one bad function",
       out.count("[use-after-move]") == 1, out)
expect("use-after-move names the moved identifier", "'payload'" in out, out)

out = check_bad("bad_unchecked_status.cpp", "unchecked-status", 2)
expect("unchecked-status flags discarded poll",
       "polled and discarded" in out, out)
expect("unchecked-status flags unread batch",
       "never reads .success" in out, out)

out = check_bad("bad_reentrant_handler.cpp", "reentrant-handler")
expect("reentrant-handler reports only the synchronous handler",
       out.count("[reentrant-handler]") == 1, out)

# --- suppression plumbing ----------------------------------------------------
r = run("--frontend", "text", str(FIXTURES / "bad_allow_missing_reason.cpp"))
expect("allow without reason exits 2", r.returncode == 2,
       f"rc={r.returncode}\n{r.stdout}{r.stderr}")
expect("allow without reason names the problem",
       "missing the mandatory reason" in r.stderr, r.stderr)

with tempfile.TemporaryDirectory() as td:
    bad = Path(td) / "unknown_rule.cpp"
    bad.write_text("// simlint2:allow(not-a-rule) whatever\nint x;\n")
    r = run("--frontend", "text", str(bad))
    expect("allow with unknown rule exits 2", r.returncode == 2,
           f"rc={r.returncode}\n{r.stdout}{r.stderr}")
    expect("unknown rule message lists known rules",
           "unknown rule" in r.stderr and "cycle" in r.stderr, r.stderr)

# --- frontend gating ---------------------------------------------------------
# auto must work (clang when importable, text fallback otherwise) and agree
# with text on a clean fixture.
r = run("--frontend", "auto", str(FIXTURES / "clean_weak.cpp"))
expect("frontend auto degrades gracefully", r.returncode == 0,
       f"rc={r.returncode}\n{r.stdout}{r.stderr}")

# --- compile-commands scoping + header sweep ---------------------------------
with tempfile.TemporaryDirectory() as td:
    root = Path(td)
    src = root / "src"
    src.mkdir()
    (src / "inside.cpp").write_text(
        "struct Cq { int poll(); };\n"
        "void f(Cq* cq) {\n"
        "    cq->poll();\n"
        "}\n")
    (src / "swept.hpp").write_text(
        "struct Cq2 { int poll(); };\n"
        "inline void g(Cq2* cq) {\n"
        "    cq->poll();\n"
        "}\n")
    outside = root / "outside.cpp"
    outside.write_text(
        "struct Cq3 { int poll(); };\n"
        "void h(Cq3* cq) {\n"
        "    cq->poll();\n"
        "}\n")
    db = root / "compile_commands.json"
    db.write_text(json.dumps([
        {"directory": str(root), "file": str(src / "inside.cpp"),
         "command": "c++ -c inside.cpp"},
        {"directory": str(root), "file": str(outside),
         "command": "c++ -c outside.cpp"},
    ]))
    r = run("--frontend", "text", "--compile-commands", str(db),
            "--src-root", str(src))
    expect("compile-commands: src file linted", "inside.cpp:3" in r.stdout,
           r.stdout)
    expect("compile-commands: headers under src swept",
           "swept.hpp:3" in r.stdout, r.stdout)
    expect("compile-commands: files outside src-root ignored",
           "outside.cpp" not in r.stdout, r.stdout)

# -----------------------------------------------------------------------------
if failures:
    print(f"\nsimlint2 selftest: {len(failures)} failure(s)")
    sys.exit(1)
print("\nsimlint2 selftest: all checks passed")
sys.exit(0)
