#!/usr/bin/env python3
"""simlint2 — ownership & lifetime lint for the SKV DES.

Where simlint guards determinism, simlint2 guards object lifetime: the
repository's connection graphs (channels, queue pairs, rings, server
connection records) are shared_ptr-owned and wired together by stored
callbacks, which is exactly the shape that produces reference cycles —
a handler stored *inside* a channel capturing an owning pointer to the
object that owns the channel. Such a graph is unreachable but never
freed; LeakSanitizer reports it at exit, and long simulations retain
every dead connection ever made. See DESIGN.md "Ownership model".

The checker builds a whole-program ownership graph over the sources:

  nodes  classes (by unqualified name)
  edges  * member fields holding shared_ptr<T> (directly or through a
           *Ptr alias, or inside vector/deque/map/multimap containers)
         * lambda captures of shared_ptr-typed values in handlers
           installed with set_on_message / set_on_broken / set_on_event
           (those setters *store* the callable inside the receiver, so
           the capture is owned by the receiver's class)

and reports every strongly-connected component as a [cycle], with the
full edge path (file:line per edge). weak_ptr fields and captures never
create edges — locking a weak_ptr per message is the sanctioned fix.

The analysis is interface-level: a handler installed through a
ChannelPtr-typed expression attaches to the `Channel` node, which is
where the cycle through `net::Channel`-owning records closes. Cycles
that only exist through a subclass-specific field are out of scope.

Flow rules (per file, lexical):
  use-after-move     a bare identifier moved with std::move(x) and then
                     used before reinitialisation (x = ..., x.reset(),
                     x.clear(), x.assign()) in the same scope. x =
                     std::move(x) (the init-capture shadowing idiom) is
                     a reinitialisation, not a move. Leaving the brace
                     scope the move happened in clears the mark, so
                     branch-alternative moves do not cross-fire.
  unchecked-status   RDMA completion results that are dropped on the
                     floor: a bare `...poll();` statement discards
                     completions unseen; a polled batch whose bound
                     variable is locally consumed without ever reading
                     `.success` (and without delegating the completion
                     to a same-file function that reads it — the check
                     is one hop deep) hides transport errors.
  reentrant-handler  a handler lambda (set_on_message / set_on_broken)
                     that calls Fabric::send at its top nesting level.
                     Handlers run inside a delivery; re-entering the
                     fabric synchronously reorders events that the
                     event queue would serialise. Posting through
                     core->submit / sim.after / a channel send is fine.

Suppressions
  A finding on line N is suppressed by a comment on line N or N-1:
      // simlint2:allow(<rule>) <reason>
  The reason is mandatory; an allow-comment without one is itself an
  error. A [cycle] is suppressed if any of its edges carries an allow.

Frontends
  --frontend auto    (default) use libclang when the python bindings can
                     load, otherwise fall back to the text frontend with
                     a warning on stderr.
  --frontend clang   require libclang (clang.cindex); exit 2 if absent.
  --frontend text    the dependency-free lexical frontend. The flow
                     rules are lexical in both frontends; the frontend
                     choice affects ownership-graph extraction only.

Usage
  simlint2.py --compile-commands build/compile_commands.json --src-root src
  simlint2.py --frontend text file1.cpp file2.hpp   # fixture testing

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
import lintcommon
from lintcommon import match_paren, split_top_commas

# ---------------------------------------------------------------------------
# Shared plumbing (tools/lintcommon)

RULES = {
    "cycle": "shared_ptr ownership cycle; break it with a weak_ptr capture or an explicit close() teardown",
    "use-after-move": "identifier used after std::move without reinitialisation",
    "unchecked-status": "RDMA completion consumed without reading .success; transport errors vanish",
    "reentrant-handler": "handler re-enters Fabric::send synchronously; post through the event queue instead",
}

HANDLER_SETTERS = ("set_on_message", "set_on_broken", "set_on_event")


class Finding(lintcommon.Finding):
    rules = RULES


class SourceFile(lintcommon.SourceFile):
    """One parsed file: raw lines, comment-stripped lines, suppressions."""

    def __init__(self, path: Path):
        super().__init__(path, "simlint2", RULES)


# ---------------------------------------------------------------------------
# Ownership model (frontend-independent)

def base_name(type_name: str) -> str:
    """`skv::net::Channel` -> `Channel`; template args stripped by callers."""
    return type_name.split("<")[0].split("::")[-1].strip()


class Edge:
    def __init__(self, src: str, dst: str, path: Path, line: int, via: str):
        self.src = src
        self.dst = dst
        self.path = path
        self.line = line
        self.via = via

    def __str__(self) -> str:
        return f"{self.src} -> {self.dst} ({self.path}:{self.line}: {self.via})"


class Model:
    """Whole-program ownership graph plus alias knowledge."""

    def __init__(self):
        # alias name -> pointee class (unqualified), e.g. ChannelPtr -> Channel
        self.shared_aliases: dict[str, str] = {}
        self.weak_aliases: set[str] = set()
        self.edges: list[Edge] = []
        self.classes: set[str] = set()

    def add_edge(self, edge: Edge) -> None:
        self.edges.append(edge)
        self.classes.add(edge.src)
        self.classes.add(edge.dst)

    def resolve_shared(self, type_text: str) -> str | None:
        """If `type_text` denotes a shared_ptr (directly, via alias, or one
        level inside a standard container), return the pointee class name."""
        t = type_text.strip()
        t = re.sub(r"^(?:const\s+|constexpr\s+|mutable\s+|static\s+)+", "", t)
        t = t.rstrip("&* ")
        m = re.match(r"(?:std\s*::\s*)?shared_ptr\s*<\s*([\w:]+)\s*>", t)
        if m:
            return base_name(m.group(1))
        m = re.match(
            r"(?:std\s*::\s*)?(?:vector|deque|list|set|multiset)\s*<\s*(.+?)\s*>$", t)
        if m:
            return self.resolve_shared(m.group(1))
        m = re.match(
            r"(?:std\s*::\s*)?(?:map|multimap|unordered_map)\s*<\s*[^,]+,\s*(.+?)\s*>$",
            t)
        if m:
            return self.resolve_shared(m.group(1))
        simple = base_name(t)
        if simple in self.shared_aliases:
            return self.shared_aliases[simple]
        return None

    def is_weak(self, type_text: str) -> bool:
        t = type_text.strip()
        if re.match(r"(?:std\s*::\s*)?weak_ptr\s*<", t):
            return True
        return base_name(t.rstrip("&* ")) in self.weak_aliases


# ---------------------------------------------------------------------------
# Text frontend: alias + class-member + handler-capture extraction

ALIAS_DECL = re.compile(
    r"using\s+(\w+)\s*=\s*((?:std\s*::\s*)?(?:shared|weak)_ptr\s*<\s*[\w:]+\s*>)\s*;")
CLASS_DECL = re.compile(r"\b(?:class|struct)\s+(\w+)[^;{]*\{")
MEMBER_DECL = re.compile(
    r"^\s*(?:mutable\s+|static\s+|inline\s+|const\s+)*"
    r"((?:std\s*::\s*)?[\w:]+(?:\s*<[^;()]*>)?)\s+(\w+)\s*(?:=[^;]*)?;")
METHOD_DEF = re.compile(r"^[\w:<>,&*\s]*?\b(\w+)\s*::\s*~?\w+\s*\(")
LOCAL_MAKE_SHARED = re.compile(
    r"\b(?:auto|[\w:<>]+)\s+(\w+)\s*=\s*std\s*::\s*make_shared\s*<\s*([\w:]+)\s*>")
LOCAL_SHARED_FROM_THIS = re.compile(
    r"\b(?:auto|[\w:<>]+)\s+(\w+)\s*=\s*(?:this\s*->\s*)?shared_from_this\s*\(")
LOCAL_WEAK_FROM_THIS = re.compile(
    r"\b(?:auto|[\w:<>]+)\s+(\w+)\s*=\s*(?:this\s*->\s*)?weak_from_this\s*\(")
LOCAL_TYPED = re.compile(
    r"\b((?:std\s*::\s*)?[\w:]+(?:\s*<[^;()={}]*>)?)\s*(?:&|\s)\s*(\w+)\s*(?:=|;|,|\))")
WEAK_DECL = re.compile(
    r"\b((?:std\s*::\s*)?weak_ptr\s*<\s*[\w:]+\s*>|\w*[Ww]eak\w*)\s+(\w+)\s*=")


def collect_aliases(files: list[SourceFile], model: Model) -> None:
    for sf in files:
        for code in sf.code:
            for m in ALIAS_DECL.finditer(code):
                alias, target = m.group(1), m.group(2)
                pointee = re.search(r"<\s*([\w:]+)\s*>", target)
                if not pointee:
                    continue
                if "weak_ptr" in target:
                    model.weak_aliases.add(alias)
                else:
                    model.shared_aliases[alias] = base_name(pointee.group(1))


def collect_member_edges(sf: SourceFile, model: Model) -> None:
    """Walk class/struct bodies (including nested ones) and record every
    member field that owns a shared_ptr."""
    # Stack of (class_name, brace_depth_at_open) — depth measured before '{'.
    stack: list[tuple[str, int]] = []
    depth = 0
    for lineno, code in enumerate(sf.code, 1):
        m = CLASS_DECL.search(code)
        if m:
            # Depth at which this class's members sit = depth when '{' opens.
            opens_before = code[: m.end() - 1].count("{") - code[
                : m.end() - 1].count("}")
            stack.append((m.group(1), depth + opens_before))
        if stack and not m:
            cls, cls_depth = stack[-1]
            # Members live exactly one level inside the class braces and are
            # not statements inside methods (heuristic: depth match).
            if depth == cls_depth + 1:
                dm = MEMBER_DECL.match(code)
                if dm:
                    type_text, field = dm.group(1), dm.group(2)
                    if not model.is_weak(type_text):
                        pointee = model.resolve_shared(type_text)
                        if pointee:
                            model.add_edge(Edge(
                                cls, pointee, sf.path, lineno,
                                f"member '{field}' owns shared_ptr<{pointee}>"))
        depth += code.count("{") - code.count("}")
        while stack and depth <= stack[-1][1]:
            stack.pop()


def local_shared_types(code_text: str, current_class: str | None,
                       model: Model) -> dict[str, str | None]:
    """identifier -> pointee class for shared-typed locals/params in a
    region of code; identifiers known to be weak map to None."""
    types: dict[str, str | None] = {}
    for m in LOCAL_MAKE_SHARED.finditer(code_text):
        types[m.group(1)] = base_name(m.group(2))
    for m in LOCAL_SHARED_FROM_THIS.finditer(code_text):
        types[m.group(1)] = current_class or "Channel"
    for m in LOCAL_WEAK_FROM_THIS.finditer(code_text):
        types[m.group(1)] = None
    for m in WEAK_DECL.finditer(code_text):
        types[m.group(2)] = None
    for m in LOCAL_TYPED.finditer(code_text):
        type_text, name = m.group(1), m.group(2)
        if name in types:
            continue
        if model.is_weak(type_text):
            types[name] = None
            continue
        pointee = model.resolve_shared(type_text)
        if pointee:
            types[name] = pointee
    return types


def collect_handler_edges(sf: SourceFile, model: Model) -> None:
    """Find handler installations and record owning captures as edges from
    the receiver's class to the captured pointee class."""
    text = "\n".join(sf.code)
    line_of = lintcommon.line_index(text)

    # Method-definition context gives shared_from_this() its class. Only
    # depth-0 lines qualify: `Foo::bar(` inside a body is a call, not a
    # definition.
    class_regions: list[tuple[int, str]] = []  # (offset, class)
    offset = 0
    depth = 0
    for code in sf.code:
        # Definitions sit at depth 0, or depth 1 inside a namespace block;
        # the line-start anchor keeps `foo(kv::resp::command(x));` body
        # statements (deeper and expression-positioned) out.
        if depth <= 1:
            dm = re.match(r"[\w:<>,&*~\s]*?\b(\w+)\s*::\s*~?\w+\s*\(", code)
            if dm and dm.group(1) != "std" and not code.rstrip().endswith(";"):
                class_regions.append((offset + dm.start(1), dm.group(1)))
        depth += code.count("{") - code.count("}")
        offset += len(code) + 1

    def enclosing_class(offset: int) -> str | None:
        cls = None
        for off, name in class_regions:
            if off <= offset:
                cls = name
            else:
                break
        return cls

    for m in re.finditer(r"([\w\.\->\(\)_]*?)(?:->|\.)\s*(set_on_message|set_on_broken|set_on_event)\s*\(", text):
        setter = m.group(2)
        recv_expr = m.group(1)
        call_open = m.end() - 1
        call_close = match_paren(text, call_open)
        arg = text[call_open + 1 : call_close].lstrip()
        if not arg.startswith("["):
            continue  # not a literal lambda (nullptr, std::move(handler), ...)
        lam_open = text.index("[", call_open + 1)
        lam_close = match_paren(text, lam_open)
        captures = text[lam_open + 1 : lam_close]
        body_open = text.find("{", lam_close)
        if body_open < 0:
            continue
        body_close = match_paren(text, body_open)

        current_class = enclosing_class(m.start())
        # Type knowledge from the surrounding function region: from the
        # previous blank-slate boundary (very coarse: previous 80 lines).
        region_start = max(0, m.start() - 4000)
        types = local_shared_types(text[region_start : m.start()],
                                   current_class, model)

        # Receiver class: resolved type of the receiver expression when it is
        # a known identifier, else the interface-level Channel node
        # (set_on_event setters resolve to their owner the same way).
        recv_base = recv_expr.split(".")[-1].split("->")[-1].strip("() ")
        src_cls = types.get(recv_base) or "Channel"
        if setter == "set_on_event" and src_cls == "Channel":
            src_cls = "CompletionChannel"
        lineno = line_of(m.start())

        for item in split_top_commas(captures):
            item = item.strip()
            if not item or item in ("this", "*this", "&", "="):
                if item == "=":
                    # default copy capture: every known shared local in the
                    # body is potentially captured by copy
                    body = text[body_open : body_close]
                    for name, pointee in types.items():
                        if pointee and re.search(rf"\b{re.escape(name)}\b",
                                                 body):
                            model.add_edge(Edge(
                                src_cls, pointee, sf.path, lineno,
                                f"{setter} handler copy-captures "
                                f"shared_ptr<{pointee}> '{name}' via [=]"))
                continue
            if item.startswith("&"):
                continue  # by-reference: no ownership
            im = re.match(r"(\w+)\s*=\s*(.*)", item, re.S)
            if im:
                init = im.group(2).strip()
                name = im.group(1)
                mv = re.match(r"std\s*::\s*move\s*\(\s*(\w+)\s*\)$", init)
                src_ident = mv.group(1) if mv else init.strip("() ")
                pointee = None
                ms = re.match(r"std\s*::\s*make_shared\s*<\s*([\w:]+)", init)
                if ms:
                    pointee = base_name(ms.group(1))
                elif re.match(r"(?:this\s*->\s*)?shared_from_this\s*\(", init):
                    pointee = current_class or "Channel"
                elif re.match(r"\w+$", src_ident):
                    pointee = types.get(src_ident)
                if pointee:
                    model.add_edge(Edge(
                        src_cls, pointee, sf.path, lineno,
                        f"{setter} handler init-captures "
                        f"shared_ptr<{pointee}> '{name}'"))
                continue
            if re.match(r"\w+$", item):
                pointee = types.get(item)
                if pointee:
                    model.add_edge(Edge(
                        src_cls, pointee, sf.path, lineno,
                        f"{setter} handler captures "
                        f"shared_ptr<{pointee}> '{item}'"))


def extract_model_text(files: list[SourceFile]) -> Model:
    model = Model()
    collect_aliases(files, model)
    for sf in files:
        collect_member_edges(sf, model)
    for sf in files:
        collect_handler_edges(sf, model)
    return model


# ---------------------------------------------------------------------------
# Clang frontend (optional): same Model, AST-derived edges.

def extract_model_clang(files: list[SourceFile],
                        compile_db: Path | None) -> Model:
    import clang.cindex as ci  # may raise ImportError / LibclangError

    index = ci.Index.create()
    db = None
    if compile_db:
        db = ci.CompilationDatabase.fromDirectory(str(compile_db.parent))
    model = Model()
    by_path = {str(sf.path): sf for sf in files}

    def shared_pointee(t) -> str | None:
        spelling = t.get_canonical().spelling
        m = re.search(r"shared_ptr<([\w:\s]+?)[\s,>]", spelling)
        return base_name(m.group(1)) if m else None

    for sf in files:
        if sf.path.suffix not in (".cpp", ".cc", ".cxx"):
            continue
        args = ["-std=c++20"]
        if db:
            cmds = db.getCompileCommands(str(sf.path))
            if cmds:
                raw = list(cmds[0].arguments)[1:-1]
                args = [a for a in raw if a.startswith(("-I", "-D", "-std"))]
        tu = index.parse(str(sf.path), args=args)
        for cur in tu.cursor.walk_preorder():
            if str(cur.location.file) not in by_path:
                continue
            if cur.kind == ci.CursorKind.FIELD_DECL:
                pointee = shared_pointee(cur.type)
                if pointee and "weak_ptr" not in cur.type.spelling:
                    model.add_edge(Edge(
                        base_name(cur.semantic_parent.spelling), pointee,
                        Path(str(cur.location.file)), cur.location.line,
                        f"member '{cur.spelling}' owns shared_ptr<{pointee}>"))
            if cur.kind == ci.CursorKind.CALL_EXPR and \
                    cur.spelling in HANDLER_SETTERS:
                for child in cur.walk_preorder():
                    if child.kind != ci.CursorKind.LAMBDA_EXPR:
                        continue
                    for ref in child.get_children():
                        if ref.kind not in (ci.CursorKind.DECL_REF_EXPR,
                                            ci.CursorKind.VAR_DECL):
                            continue
                        pointee = shared_pointee(ref.type)
                        if pointee and "weak_ptr" not in ref.type.spelling:
                            model.add_edge(Edge(
                                "Channel", pointee,
                                Path(str(cur.location.file)),
                                cur.location.line,
                                f"{cur.spelling} handler captures "
                                f"shared_ptr<{pointee}> '{ref.spelling}'"))
    # Aliases still come from the lexical pass (cheap, and the clang TU may
    # not include every header of interest).
    collect_aliases(files, model)
    return model


# ---------------------------------------------------------------------------
# Cycle detection: Tarjan SCC over the ownership graph.

def find_cycles(model: Model) -> list[list[Edge]]:
    adj: dict[str, list[Edge]] = {}
    for e in model.edges:
        adj.setdefault(e.src, []).append(e)

    index_counter = [0]
    stack: list[str] = []
    lowlink: dict[str, int] = {}
    index: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    sccs: list[set[str]] = []

    def strongconnect(v: str) -> None:
        # Iterative Tarjan (deep graphs must not hit the recursion limit).
        work = [(v, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = index_counter[0]
                lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            recurse = False
            edges = adj.get(node, [])
            for i in range(pi, len(edges)):
                w = edges[i].dst
                if w not in index:
                    work[-1] = (node, i + 1)
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack.get(w):
                    lowlink[node] = min(lowlink[node], index[w])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                scc = set()
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    scc.add(w)
                    if w == node:
                        break
                sccs.append(scc)
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for v in list(adj):
        if v not in index:
            strongconnect(v)

    cycles: list[list[Edge]] = []
    for scc in sccs:
        intra = [e for e in model.edges if e.src in scc and e.dst in scc]
        if len(scc) > 1:
            cycles.append(intra)
        elif any(e.src == e.dst for e in intra):
            cycles.append([e for e in intra if e.src == e.dst])
    return cycles


def cycle_findings(model: Model,
                   files_by_path: dict[Path, SourceFile]) -> list[Finding]:
    findings = []
    for edges in find_cycles(model):
        if not edges:
            continue
        if any(
            (sf := files_by_path.get(e.path)) and sf.suppressed(e.line, "cycle")
            for e in edges
        ):
            continue
        edges = sorted(edges, key=lambda e: (str(e.path), e.line))
        path_desc = "; ".join(str(e) for e in edges)
        head = edges[0]
        findings.append(Finding(head.path, head.line, "cycle", path_desc))
    return findings


# ---------------------------------------------------------------------------
# Flow rules (lexical, per file)

MOVE = re.compile(r"std\s*::\s*move\s*\(\s*(\w+)\s*\)")
SELF_REINIT = re.compile(r"\b(\w+)\s*=\s*std\s*::\s*move\s*\(\s*\1\s*\)")


def check_use_after_move(sf: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    moved: dict[str, tuple[int, int]] = {}  # name -> (line, depth at move)
    depth = 0
    for lineno, code in enumerate(sf.code, 1):
        # Scope exits clear marks made in scopes this line leaves. Track the
        # minimum depth reached anywhere in the line: `} else {` dips below
        # its start depth even though it ends back where it began.
        opens = code.count("{")
        d, low = depth, depth
        for c in code:
            if c == "{":
                d += 1
            elif c == "}":
                d -= 1
                low = min(low, d)
        depth_after = d
        for name in [n for n, (_, md) in moved.items() if md > low]:
            del moved[name]
        if depth_after <= 0:
            moved.clear()

        self_reinits = {m.group(1) for m in SELF_REINIT.finditer(code)}
        new_moves = []
        for m in MOVE.finditer(code):
            name = m.group(1)
            if name in self_reinits:
                continue
            new_moves.append(name)

        # Reinitialisation on this line neutralises earlier moves (and moves
        # feeding an assignment to the same name, `x = f(std::move(x))`).
        for name in list(moved):
            if re.search(
                rf"\b{re.escape(name)}\s*(?:=[^=]|\.reset\s*\(|\.clear\s*\(|\.assign\s*\()",
                code,
            ):
                del moved[name]

        # Uses of still-marked names (before this line's own moves land).
        for name, (mline, _) in list(moved.items()):
            if re.search(
                rf"\b{re.escape(name)}\s*(?:=[^=]|\.reset\s*\(|\.clear\s*\(|\.assign\s*\()",
                code,
            ):
                continue
            if re.search(rf"\b{re.escape(name)}\b", code):
                if not sf.suppressed(lineno, "use-after-move"):
                    findings.append(Finding(
                        sf.path, lineno, "use-after-move",
                        f"'{name}' moved at line {mline}"))
                del moved[name]

        for name in new_moves:
            if re.search(
                rf"\b{re.escape(name)}\s*=[^=]", code.split("std::move")[0]
            ) or re.search(
                rf"\b{re.escape(name)}\s*=\s*[\w:]+.*std\s*::\s*move\s*\(\s*{re.escape(name)}\s*\)",
                code,
            ):
                # `x = f(std::move(x))`: net effect is a reinitialisation.
                moved.pop(name, None)
                continue
            moved[name] = (lineno, depth + opens)
        depth = depth_after
    return findings


BARE_POLL = re.compile(r"^\s*[\w\.\->_]*\bpoll\s*\([^;]*\)\s*;\s*$")
POLL_BOUND = re.compile(
    r"for\s*\(\s*(?:const\s+)?auto\s*&?\s*(\w+)\s*:\s*[\w\.\->_]*\bpoll\s*\(")
COMPLETION_PARAM_FN = re.compile(
    r"\b(\w+)\s*\(\s*(?:const\s+)?Completion\s*&\s*(\w+)\s*\)")


def check_unchecked_status(sf: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    text = "\n".join(sf.code)

    # One-hop delegation knowledge: functions taking a Completion& and
    # whether their body (approximated by the following brace block) reads
    # `.success`.
    delegates: dict[str, bool] = {}
    for m in COMPLETION_PARAM_FN.finditer(text):
        fn, param = m.group(1), m.group(2)
        body_open = text.find("{", m.end())
        semi = text.find(";", m.end())
        if body_open < 0 or (0 <= semi < body_open):
            continue  # declaration only: body unknown, benefit of the doubt
        body = text[body_open : match_paren(text, body_open) + 1]
        delegates[fn] = bool(
            re.search(rf"\b{re.escape(param)}\s*\.\s*success\b", body))

    # Brace depth after each line, to bound poll regions to their function.
    depth_after_line = []
    d = 0
    for code in sf.code:
        d += code.count("{") - code.count("}")
        depth_after_line.append(d)

    for lineno, code in enumerate(sf.code, 1):
        if BARE_POLL.match(code):
            if not sf.suppressed(lineno, "unchecked-status"):
                findings.append(Finding(
                    sf.path, lineno, "unchecked-status",
                    "completions polled and discarded"))
            continue
        pm = POLL_BOUND.search(code)
        if pm:
            var = pm.group(1)
            # Scope of interest: from the poll to the end of the enclosing
            # function (first line whose depth returns to 0).
            end = lineno
            while end < len(sf.code) and depth_after_line[end - 1] > 0:
                end += 1
            region = "\n".join(sf.code[lineno - 1 : end])
            if re.search(rf"\b{re.escape(var)}\s*\.\s*success\b", region):
                continue
            dm = re.search(rf"\b(\w+)\s*\(\s*{re.escape(var)}\s*[,)]", region)
            if dm and delegates.get(dm.group(1), dm.group(1) not in delegates):
                # Delegated to a function that reads .success (or to one we
                # cannot see — give cross-file delegation the benefit of the
                # doubt).
                continue
            if not sf.suppressed(lineno, "unchecked-status"):
                detail = f"polled batch '{var}' never reads .success"
                if dm and dm.group(1) in delegates:
                    detail += (f"; delegated to '{dm.group(1)}' which never "
                               f"reads .success either")
                findings.append(Finding(sf.path, lineno, "unchecked-status",
                                        detail))
    return findings


FABRIC_SEND = re.compile(r"\bfabric(?:\(\)|_)\s*(?:\.|->)\s*send\s*\(")


def check_reentrant_handler(sf: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    text = "\n".join(sf.code)
    line_of = lintcommon.line_index(text)
    for m in re.finditer(
        r"(?:->|\.)\s*(?:set_on_message|set_on_broken)\s*\(\s*\[", text
    ):
        lam_open = text.index("[", m.start())
        lam_close = match_paren(text, lam_open)
        body_open = text.find("{", lam_close)
        if body_open < 0:
            continue
        body_close = match_paren(text, body_open)
        body = text[body_open + 1 : body_close]
        # Mask nested lambdas: a fabric send inside a core->submit / after
        # callback goes through the event queue and is fine.
        masked = []
        i = 0
        while i < len(body):
            if body[i] == "[":
                # Potential nested lambda: [caps] (params)? { body }
                cap_close = match_paren(body, i)
                j = cap_close + 1
                while j < len(body) and body[j] in " \n\t":
                    j += 1
                if j < len(body) and body[j] == "(":
                    j = match_paren(body, j) + 1
                    while j < len(body) and body[j] in " \n\t":
                        j += 1
                if j < len(body) and body[j] == "{":
                    nested_close = match_paren(body, j)
                    masked.append(" " * (nested_close - i + 1))
                    i = nested_close + 1
                    continue
            masked.append(body[i])
            i += 1
        flat = "".join(masked)
        fm = FABRIC_SEND.search(flat)
        if fm:
            lineno = line_of(body_open + 1 + fm.start())
            if not sf.suppressed(lineno, "reentrant-handler"):
                findings.append(Finding(
                    sf.path, lineno, "reentrant-handler",
                    "Fabric::send at handler top level"))
    return findings


# ---------------------------------------------------------------------------
# Driver

def files_from_compile_commands(db_path: Path, src_root: Path) -> list[Path]:
    return lintcommon.files_from_compile_commands(db_path, src_root, "simlint2")


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--compile-commands", type=Path,
                    help="compile_commands.json to take the file list from")
    ap.add_argument("--src-root", type=Path, default=Path("src"),
                    help="only lint files under this root (default: src)")
    ap.add_argument("--frontend", choices=("auto", "clang", "text"),
                    default="auto",
                    help="ownership-graph extraction backend (default: auto)")
    ap.add_argument("files", nargs="*", type=Path,
                    help="explicit files to lint (overrides --compile-commands)")
    args = ap.parse_args()

    if args.files:
        paths = args.files
    elif args.compile_commands:
        paths = files_from_compile_commands(args.compile_commands,
                                            args.src_root)
    else:
        ap.error("need either explicit files or --compile-commands")

    if not paths:
        print("simlint2: no files to lint", file=sys.stderr)
        return 2

    files = [SourceFile(p) for p in paths]
    files_by_path = {sf.path: sf for sf in files}

    frontend = args.frontend
    model = None
    if frontend in ("auto", "clang"):
        try:
            model = extract_model_clang(files, args.compile_commands)
        except Exception as e:  # ImportError, LibclangError, parse failure
            if frontend == "clang":
                print(f"simlint2: clang frontend unavailable: {e}",
                      file=sys.stderr)
                return 2
            print(f"simlint2: libclang unavailable ({e.__class__.__name__}); "
                  f"falling back to the text frontend", file=sys.stderr)
    if model is None:
        model = extract_model_text(files)

    findings: list[Finding] = []
    findings.extend(cycle_findings(model, files_by_path))
    for sf in files:
        findings.extend(check_use_after_move(sf))
        findings.extend(check_unchecked_status(sf))
        findings.extend(check_reentrant_handler(sf))

    return lintcommon.report(findings, len(files), "simlint2")


if __name__ == "__main__":
    sys.exit(main())
