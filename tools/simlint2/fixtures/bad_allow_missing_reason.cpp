// Fixture: an allow-comment without the mandatory reason text must be a
// hard configuration error (exit 2), not a silent suppression.
#include <vector>

struct Completion {
    bool success = false;
};

struct Cq {
    std::vector<Completion> poll();
};

void f(Cq* cq) {
    cq->poll(); // simlint2:allow(unchecked-status)
}
