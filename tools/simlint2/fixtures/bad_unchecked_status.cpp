// Fixture for [unchecked-status]: a discarded poll and a locally-consumed
// batch that never reads .success, plus the two shapes that must pass —
// a checked batch and delegation to an opaque handler.
#include <vector>

struct Completion {
    bool success = false;
    int op = 0;
};

struct Cq {
    std::vector<Completion> poll();
};

void bad_discard(Cq* cq) {
    cq->poll(); // finding: completions dropped unseen
}

int bad_consume(Cq* cq) {
    int ops = 0;
    for (const auto& c : cq->poll()) {
        ops += c.op; // finding on the for-line: .success never read
    }
    return ops;
}

int ok_checked(Cq* cq) {
    int ops = 0;
    for (const auto& c : cq->poll()) {
        if (!c.success) continue;
        ops += c.op;
    }
    return ops;
}

void handle(const Completion& c); // declaration only: body unknown

void ok_delegated(Cq* cq) {
    for (const auto& c : cq->poll()) handle(c);
}
