// Fixture for [reentrant-handler]: a message handler that re-enters
// Fabric::send synchronously (finding), against one that posts the send
// from a nested callback, which goes through the event queue (clean).
#include <functional>
#include <string>

struct Fabric {
    void send(int to, int bytes, std::function<void()> cb);
};

struct Node {
    Fabric& fabric() { return fabric_; }
    Fabric fabric_;
};

struct Channel {
    void set_on_message(std::function<void(std::string)> h);
};

void install_bad(Channel* ch, Node* node) {
    ch->set_on_message([node](std::string payload) {
        node->fabric().send(1, 64, nullptr); // finding: synchronous re-entry
    });
}

void install_ok(Channel* ch, Node* node) {
    ch->set_on_message([node](std::string payload) {
        auto deliver = [node]() {
            node->fabric().send(1, 64, nullptr); // posted callback: fine
        };
        (void)deliver;
    });
}
