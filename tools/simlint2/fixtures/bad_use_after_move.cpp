// Fixture for [use-after-move]: one genuine violation plus the three
// idioms that must NOT fire (reinitialisation, x = f(std::move(x)),
// and moves confined to an untaken branch).
#include <string>
#include <utility>

std::string consume(std::string s);
std::string wrap(std::string s);

std::string bad() {
    std::string payload = "hello";
    auto out = consume(std::move(payload));
    out += payload; // finding: payload was moved two lines up
    return out;
}

std::string ok_reinit() {
    std::string payload = "hello";
    auto out = consume(std::move(payload));
    payload = "again"; // reinitialised: later uses are fine
    out += payload;
    return out;
}

std::string ok_self_assign() {
    std::string payload = "hello";
    payload = wrap(std::move(payload)); // net effect: reinitialisation
    return payload;
}

std::string ok_branch(bool flag) {
    std::string payload = "hello";
    std::string out;
    if (flag) {
        out = consume(std::move(payload));
    } else {
        out = payload; // other branch: the move never happened here
    }
    return out;
}

std::string ok_clear_reuse() {
    std::string payload = "hello";
    auto out = consume(std::move(payload));
    payload.clear(); // moved-from object restored to a known state
    payload = out;
    return payload;
}
