// Fixture: every rule violated once, every violation carrying a
// simlint2:allow with a reason. Expect no findings and exit 0.
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

struct Completion {
    bool success = false;
    int op = 0;
};

struct Cq {
    std::vector<Completion> poll();
};

struct Fabric {
    void send(int to, int bytes, std::function<void()> cb);
};

struct Node {
    Fabric fabric_;
};

class Channel {
public:
    void set_on_message(std::function<void(std::string)> h);
};

using ChannelPtr = std::shared_ptr<Channel>;

struct Conn {
    // simlint2:allow(cycle) fixture: cycle kept on purpose to test suppression
    ChannelPtr channel;
};

void wire(std::shared_ptr<Conn> conn) {
    conn->channel->set_on_message([conn](std::string) {});
}

std::string moved() {
    std::string s = "x";
    auto t = std::string(std::move(s));
    // simlint2:allow(use-after-move) fixture: reading moved-from is the point
    return s + t;
}

void drop(Cq* cq) {
    cq->poll(); // simlint2:allow(unchecked-status) fixture: depth probe only
}

void install(Channel* ch, Node& node) {
    ch->set_on_message([&node](std::string) {
        // simlint2:allow(reentrant-handler) fixture: bootstrap, no delivery in flight
        node.fabric_.send(1, 64, nullptr);
    });
}
