// Fixture: the classic connection-record cycle. The server's connection
// record owns the channel, and the handler stored *inside* the channel
// captures an owning pointer back to the record. Neither object can ever
// be reclaimed. Expect one [cycle] whose path names both edges.
#include <functional>
#include <memory>
#include <string>

class Channel {
public:
    void set_on_message(std::function<void(std::string)> h) {
        on_message_ = std::move(h);
    }

private:
    std::function<void(std::string)> on_message_;
};

using ChannelPtr = std::shared_ptr<Channel>;

struct ClientConn {
    ChannelPtr channel;
    std::string name;
};

using ClientPtr = std::shared_ptr<ClientConn>;

void accept(ChannelPtr ch) {
    auto conn = std::make_shared<ClientConn>();
    conn->channel = ch;
    conn->channel->set_on_message([conn](std::string payload) {
        conn->name = payload;
    });
}
