// Fixture: the sanctioned shape. Same object graph as cycle_basic, but
// the handler captures a weak_ptr and locks it per message, so the
// channel never owns its owner. Expect no findings.
#include <functional>
#include <memory>
#include <string>

class Channel {
public:
    void set_on_message(std::function<void(std::string)> h) {
        on_message_ = std::move(h);
    }

private:
    std::function<void(std::string)> on_message_;
};

using ChannelPtr = std::shared_ptr<Channel>;

struct ClientConn {
    ChannelPtr channel;
    std::string name;
};

using ClientPtr = std::shared_ptr<ClientConn>;

void accept(ChannelPtr ch) {
    auto conn = std::make_shared<ClientConn>();
    conn->channel = ch;
    std::weak_ptr<ClientConn> wconn = conn;
    conn->channel->set_on_message([wconn](std::string payload) {
        if (auto locked = wconn.lock()) locked->name = payload;
    });
}
