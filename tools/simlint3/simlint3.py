#!/usr/bin/env python3
"""simlint3 — protocol-conformance and observe-only purity analyzer.

Whole-program pass over the NodeMsg wire protocol and the config/observability
surface. Rules:

  duplicate-tag   two NodeMsg::Type enumerators share a wire tag char
  unhandled-tag   a dispatch switch or type table misses an enum value
  dead-send       a tag is sent but never actively handled (or only handled
                  in replication modes it is never sent in)
  dead-handler    an active handler is unreachable from any send site
  repl-command    a WSEQ* replication RESP command lacks a send or handle site
  observe-taint   src/obs/ code or a `// simlint3:observe-only` function can
                  reach trace-digest notes, event scheduling, or KV mutation
  knob-drift      a ServerConfig/NicKvConfig/RunOptions field is not
                  documented in EXPERIMENTS.md

Reachability is computed per `replication_mode`: `if (... replication_mode ==
ReplicationMode::kX ...)` gates around send sites and handler case bodies are
interpreted, and entry modes propagate through a unique-name call graph by a
least fixpoint. The analysis is conservative: unresolvable conditions or
ambiguous call names widen to "all modes" rather than inventing findings.

Like simlint2, a libclang frontend (enum extraction + duplicate-tag) is used
when python bindings are importable; everything else is lexical in both
frontends. `--frontend text` forces the dependency-free path.

Suppress with `// simlint3:allow(rule) reason` on the finding line or the
line above; the reason is mandatory. Exit: 0 clean, 1 findings, 2 usage.
"""

from __future__ import annotations

import argparse
import re
import sys
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
import lintcommon  # noqa: E402
from lintcommon import match_paren  # noqa: E402

RULES = {
    "duplicate-tag": "two NodeMsg::Type values share a wire tag char",
    "unhandled-tag": "dispatch switch/type table does not cover every "
                     "NodeMsg::Type",
    "dead-send": "message tag is sent but never actively handled",
    "dead-handler": "handler is unreachable from any send site",
    "repl-command": "replication RESP command lacks a send or handle site",
    "observe-taint": "observe-only code reaches sim/KV-mutating operations",
    "knob-drift": "config knob is undocumented",
}


class Finding(lintcommon.Finding):
    rules = RULES


def strip_comments_only(line: str, in_block: bool) -> tuple[str, bool]:
    """Blank comments but KEEP string/char literals (column-preserving).
    Needed wherever literal text matters: enum tag chars, WSEQ command
    strings. Structural parsing always uses the fully stripped view."""
    out = []
    i, n = 0, len(line)
    state = "block" if in_block else "code"
    while i < n:
        c = line[i]
        if state == "code":
            if c in "\"'":
                quote = c
                out.append(c)
                i += 1
                while i < n:
                    if line[i] == "\\" and i + 1 < n:
                        out.append(line[i:i + 2])
                        i += 2
                        continue
                    out.append(line[i])
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                out.append(" " * (n - i))
                i = n
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            out.append(c)
            i += 1
        else:
            if c == "*" and i + 1 < n and line[i + 1] == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            i += 1
    return "".join(out), state == "block"


class SourceFile(lintcommon.SourceFile):
    def __init__(self, path: Path):
        super().__init__(path, "simlint3", RULES)
        self.nocomment: list[str] = []
        in_block = False
        for line in self.raw:
            stripped, in_block = strip_comments_only(line, in_block)
            self.nocomment.append(stripped)


class FileText:
    """One file with joined code/nocomment views sharing offsets."""

    def __init__(self, path: Path):
        self.path = path
        self.sf = SourceFile(path)
        self.code = "\n".join(self.sf.code)
        self.nocomment = "\n".join(self.sf.nocomment)
        self.line_of = lintcommon.line_index(self.code)

    def suppressed(self, lineno: int, rule: str) -> bool:
        return self.sf.suppressed(lineno, rule)


# ---------------------------------------------------------------------------
# Function table: file-scope and single-level in-class definitions, found by
# classifying every `{` from the text between it and the previous delimiter.
# Bodies give us call sites, send sites, dispatch switches and mode regions.

NOT_A_FUNC = {
    "if", "for", "while", "switch", "return", "else", "do", "catch", "case",
    "new", "delete", "sizeof", "throw", "operator", "alignas", "decltype",
    "static_assert", "defined", "assert",
}


def _func_name(header: str) -> str | None:
    """Name of the function a `{`'s header declares, or None."""
    depth = 0
    idx = -1
    for i, ch in enumerate(header):
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif ch == "(" and depth == 0:
            idx = i
            break
    if idx < 0:
        return None
    left = header[:idx]
    if "=" in left:  # assignment / lambda intro — not a definition header
        return None
    m = re.search(r"([A-Za-z_]\w*)\s*$", left)
    if not m or m.group(1) in NOT_A_FUNC:
        return None
    return m.group(1)


class Func:
    def __init__(self, name: str, ft: FileText, lo: int, hi: int):
        self.name = name
        self.ft = ft
        self.lo = lo      # offset of body '{'
        self.hi = hi      # offset one past body '}'
        self.line = ft.line_of(lo)
        self.marks: list[frozenset] | None = None
        self.calls: list[tuple[str, int]] = []
        self.annotated = False

    def mark_at(self, off: int, all_modes: frozenset) -> frozenset:
        if self.marks is None:
            return all_modes
        i = off - self.lo
        if 0 <= i < len(self.marks) and self.marks[i] is not None:
            return self.marks[i]
        return all_modes


CALL_RE = re.compile(r"(?<![\w:.])([A-Za-z_]\w*)\s*\(")
MEMBER_CALL_RE = re.compile(r"(?:\.|->|::)\s*([A-Za-z_]\w*)\s*\(")
ANNOT_RE = re.compile(r"//\s*simlint3:observe-only")


def parse_funcs(ft: FileText) -> list[Func]:
    text = ft.code
    funcs: list[Func] = []
    stack: list[str] = []  # 'ns' | 'agg' | 'func' | 'other'
    last_delim = 0
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == ";":
            last_delim = i + 1
        elif c == "}":
            if stack:
                stack.pop()
            last_delim = i + 1
        elif c == "{":
            header = text[last_delim:i].strip()
            kind = "other"
            if re.search(r"\bnamespace\s*[\w:]*$", header):
                kind = "ns"
            elif (re.search(r"\b(?:class|struct|union|enum)\b", header)
                  and "(" not in header):
                kind = "agg"
            else:
                name = _func_name(header)
                if (name is not None
                        and all(k in ("ns", "agg") for k in stack)
                        and sum(1 for k in stack if k == "agg") <= 1):
                    hi = match_paren(text, i) + 1
                    f = Func(name, ft, i, hi)
                    lineno = f.line
                    # annotation on the definition line or the line above
                    for ln in (lineno, lineno - 1):
                        if (1 <= ln <= len(ft.sf.raw)
                                and ANNOT_RE.search(ft.sf.raw[ln - 1])):
                            f.annotated = True
                    funcs.append(f)
                    kind = "func"
            stack.append(kind)
            last_delim = i + 1
        i += 1
    for f in funcs:
        body = text[f.lo:f.hi]
        for m in CALL_RE.finditer(body):
            if m.group(1) not in NOT_A_FUNC:
                f.calls.append((m.group(1), f.lo + m.start(1)))
        for m in MEMBER_CALL_RE.finditer(body):
            if m.group(1) not in NOT_A_FUNC:
                f.calls.append((m.group(1), f.lo + m.start(1)))
    return funcs


# ---------------------------------------------------------------------------
# Replication-mode regions. For every function body we compute, per character
# offset, the set of modes under which that code can execute relative to the
# function's entry (entry itself is resolved by the call-graph fixpoint).

MODE_TERM_RE = re.compile(
    r"[\w.\->]*replication_mode\s*([!=]=)\s*[\w:]*?ReplicationMode\s*::\s*(k\w+)"
)
IF_RE = re.compile(r"(?<![\w#])if\s*\(")


def _split_top(text: str, sep: str) -> list[str]:
    out, depth, cur = [], 0, []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if depth == 0 and text.startswith(sep, i):
            out.append("".join(cur))
            cur = []
            i += len(sep)
            continue
        cur.append(c)
        i += 1
    out.append("".join(cur))
    return out


class ModeLogic:
    def __init__(self, modes: list[str]):
        self.all = frozenset(modes)

    def _term(self, term: str) -> tuple[frozenset | None, bool]:
        """(mode set, is-pure-mode-term). Pure means the term is nothing but
        the mode comparison, so its negation is also known."""
        t = term.strip()
        while t.startswith("(") and t.endswith(")") \
                and match_paren(t, 0) == len(t) - 1:
            t = t[1:-1].strip()
        m = MODE_TERM_RE.search(t)
        if not m:
            return None, False
        s = frozenset({m.group(2)}) if m.group(1) == "==" \
            else self.all - {m.group(2)}
        pure = MODE_TERM_RE.fullmatch(t) is not None
        return s, pure

    def branch_sets(self, cond: str) -> tuple[frozenset, frozenset]:
        """(guaranteed-false set GF, guaranteed-true set GT) of modes.
        then-branch modes = cur - GF; else-branch modes = cur - GT."""
        if "?" in cond or re.search(r"!\s*\(", cond):
            return frozenset(), frozenset()  # opaque — no narrowing
        gf = set(self.all)
        gt: set = set()
        for disjunct in _split_top(cond, "||"):
            t = set(self.all)
            fully_pure = True
            saw_mode = False
            for conj in _split_top(disjunct, "&&"):
                s, pure = self._term(conj)
                if s is not None:
                    t &= s
                    saw_mode = True
                if not pure:
                    fully_pure = False
            # If any mode conjunct exists, the disjunct is false outside t.
            gf &= (set(self.all) - t) if saw_mode else set()
            # Guaranteed true only when every conjunct is a pure mode term.
            if fully_pure and saw_mode:
                gt |= t
        return frozenset(gf), frozenset(gt)


RETURN_TAIL_RE = re.compile(r"\breturn\b[^;{}]*;\s*\}?\s*$")


def compute_marks(f: Func, logic: ModeLogic) -> None:
    text = f.ft.code
    marks: list[frozenset | None] = [None] * (f.hi - f.lo)

    def set_range(a: int, b: int, cur: frozenset) -> None:
        for i in range(max(a, f.lo), min(b, f.hi)):
            marks[i - f.lo] = cur

    def skip_ws(i: int) -> int:
        while i < f.hi and text[i].isspace():
            i += 1
        return i

    def body_span(i: int) -> tuple[int, int]:
        i = skip_ws(i)
        if i < f.hi and text[i] == "{":
            return i, match_paren(text, i) + 1
        j = text.find(";", i, f.hi)
        return i, (j + 1 if j >= 0 else f.hi)

    def parse_if(p: int, cur: frozenset) -> tuple[int, frozenset]:
        """Parse the if/else-if/else chain at p; fill bodies; return
        (end offset, mode set after the statement)."""
        op = text.find("(", p)
        cp = match_paren(text, op)
        gf, gt = logic.branch_sets(text[op + 1:cp])
        then_set, else_set = cur - gf, cur - gt
        blo, bhi = body_span(cp + 1)
        fill_region(blo, bhi, then_set)
        k = skip_ws(bhi)
        if text.startswith("else", k) and not (
                k + 4 < f.hi and (text[k + 4].isalnum() or text[k + 4] == "_")):
            k2 = skip_ws(k + 4)
            if IF_RE.match(text, k2):
                end, _ = parse_if(k2, else_set)
                return end, cur
            elo, ehi = body_span(k2)
            fill_region(elo, ehi, else_set)
            return ehi, cur
        # No else: an unconditional return in the then-branch narrows the
        # fall-through to the else set.
        if RETURN_TAIL_RE.search(text[blo:bhi].strip()):
            return bhi, else_set
        return bhi, cur

    def fill_region(a: int, b: int, cur: frozenset) -> None:
        set_range(a, b, cur)
        i = a
        while i < b:
            m = IF_RE.search(text, i, b)
            if not m:
                return
            end, cur2 = parse_if(m.start(), cur)
            if cur2 != cur:
                cur = cur2
                set_range(end, b, cur)
            i = max(end, m.start() + 2)

    fill_region(f.lo, f.hi, logic.all)
    f.marks = marks

# ---------------------------------------------------------------------------
# Protocol surface extraction.

ENUM_TYPE_RE = re.compile(r"\benum\s+class\s+Type\s*:\s*char\s*\{")
ENUM_ENTRY_RE = re.compile(r"\b(k\w+)\s*=\s*'(\\?[^'])'")
MODE_ENUM_RE = re.compile(r"\benum\s+class\s+ReplicationMode\b[^{;]*\{")
SEND_RE = re.compile(
    r"\bNodeMsg(?:\s+\w+)?\s*\{\s*(?:[\w:]+::)?\s*Type\s*::\s*(k\w+)")
CASE_RE = re.compile(r"\bcase\s+(?:[\w:]+::)?\s*Type\s*::\s*(k\w+)\s*:")
LABEL_RE = re.compile(
    r"\bcase\s+(?:[\w:]+::)?\s*Type\s*::\s*(k\w+)\s*:|\bdefault\s*:")
SWITCH_RE = re.compile(r"\bswitch\s*\(")
TYPE_TABLE_RE = re.compile(r"\bType\s+(k?\w+)\s*\[[^\]]*\]\s*=\s*\{")
STATS_RE = re.compile(r"\bstats_?\s*\.\s*incr\s*\(")
WSEQ_RE = re.compile(r'"(WSEQ[A-Z0-9]*)"')
WSEQ_HANDLE_RE = re.compile(r"argv\s*\[\s*0\s*\]\s*[!=]=")
WSEQ_SEND_RE = re.compile(
    r'(?:emplace_back|push_back)\s*\(\s*"(WSEQ[A-Z0-9]*)"|\{\s*"(WSEQ[A-Z0-9]*)"')


class CaseGroup:
    def __init__(self, tags, line, modes, ignore):
        self.tags = tags        # list of kTag names (empty for default-only)
        self.line = line
        self.modes = modes      # frozenset of modes, meaningful when active
        self.ignore = ignore


class Dispatcher:
    def __init__(self, ft, line, groups, has_default):
        self.ft = ft
        self.line = line
        self.groups = groups
        self.has_default = has_default
        self.covered = {t for g in groups for t in g.tags}
        # A switch whose every group is an ignore group is a validity table
        # (e.g. decode()): it must be exhaustive but handles nothing.
        self.is_table = all(g.ignore for g in groups)


def _blank_nonactions(body: str) -> str:
    """Blank everything in a case-group body that is not real handling work:
    if-headers, braces, bare break/return, [[fallthrough]], stats counters.
    Remaining non-space chars mark 'action' offsets."""
    buf = list(body)

    def blank(a, b):
        for i in range(a, b):
            if buf[i] != "\n":
                buf[i] = " "

    for m in IF_RE.finditer(body):
        op = body.find("(", m.start())
        blank(m.start(), match_paren(body, op) + 1)
    for m in STATS_RE.finditer(body):
        op = body.find("(", m.end() - 1)
        cp = match_paren(body, op)
        end = cp + 1
        if end < len(body) and body[end:end + 1] == ";":
            end += 1
        blank(m.start(), end)
    out = "".join(buf)
    out = re.sub(r"\bbreak\s*;|\breturn\s*;|\belse\b|\[\[\w+\]\]\s*;?|[{};]",
                 lambda m: " " * len(m.group(0)), out)
    return out


def parse_dispatchers(ft, funcs, entry, logic):
    """All switches over NodeMsg::Type in this file."""
    text = ft.code
    out = []
    for sm in SWITCH_RE.finditer(text):
        op = text.find("(", sm.start())
        cp = match_paren(text, op)
        bo = cp + 1
        while bo < len(text) and text[bo].isspace():
            bo += 1
        if bo >= len(text) or text[bo] != "{":
            continue
        bc = match_paren(text, bo)
        body = text[bo:bc + 1]
        if not CASE_RE.search(body):
            continue
        # depth per char so only this switch's own labels count
        depth = [0] * len(body)
        d = 0
        for i, c in enumerate(body):
            if c == "{":
                d += 1
            elif c == "}":
                d -= 1
            depth[i] = d
        labels = [(m.start(), m.end(), m.group(1))
                  for m in LABEL_RE.finditer(body) if depth[m.start()] == 1]
        if not labels:
            continue
        host = None
        for f in funcs:
            if f.ft is ft and f.lo <= sm.start() < f.hi:
                host = f
                break
        host_entry = entry.get(host, logic.all) if host else logic.all
        groups = []
        has_default = False
        i = 0
        while i < len(labels):
            j = i
            tags = []
            while j < len(labels):
                a, b, tag = labels[j]
                if tag is None:
                    has_default = True
                else:
                    tags.append(tag)
                # group continues while only whitespace separates labels
                nxt = labels[j + 1] if j + 1 < len(labels) else None
                if nxt and body[b:nxt[0]].strip() == "":
                    j += 1
                    continue
                break
            gb_lo = labels[j][1]
            gb_hi = labels[j + 1][0] if j + 1 < len(labels) else len(body) - 1
            actions = _blank_nonactions(body[gb_lo:gb_hi])
            act_offsets = [gb_lo + k for k, c in enumerate(actions)
                           if not c.isspace()]
            ignore = not act_offsets
            modes = frozenset()
            if host and not ignore:
                for off in act_offsets:
                    modes |= host.mark_at(bo + off, logic.all)
                modes &= host_entry
            elif not ignore:
                modes = logic.all
            if tags or not ignore:
                groups.append(CaseGroup(
                    tags, ft.line_of(bo + labels[i][0]), modes, ignore))
            i = j + 1
        out.append(Dispatcher(ft, ft.line_of(sm.start()), groups, has_default))
    return out


def clang_enum_entries(paths):
    """libclang frontend: NodeMsg::Type enumerators with their char values.
    Returns list of (name, char, path, line) or None if unavailable."""
    try:
        from clang import cindex  # type: ignore
        index = cindex.Index.create()
    except Exception:
        return None
    out = []
    for p in paths:
        if p.suffix not in (".hpp", ".h"):
            continue
        try:
            tu = index.parse(str(p), args=["-std=c++20", "-xc++"],
                             options=cindex.TranslationUnit
                             .PARSE_SKIP_FUNCTION_BODIES)
        except Exception:
            return None
        def walk(cur):
            if (cur.kind == cindex.CursorKind.ENUM_DECL
                    and cur.spelling == "Type"):
                for child in cur.get_children():
                    if child.kind == cindex.CursorKind.ENUM_CONSTANT_DECL:
                        out.append((child.spelling, chr(child.enum_value),
                                    p, child.location.line))
            for child in cur.get_children():
                walk(child)
        walk(tu.cursor)
    return out


# ---------------------------------------------------------------------------
# Observe-only taint.

SINK_RES = [
    ("trace-note", re.compile(
        r"\bTrace\s*::\s*note\s*\(|\btrace\s*\(\s*\)\s*\.\s*note\s*\(|"
        r"\btrace_?\s*\.\s*note\s*\(")),
    ("event-schedule", re.compile(
        r"\b(?:sim_?|sim\s*\(\s*\))\s*(?:\.|->)\s*(?:after|schedule|at)\s*\(|"
        r"->\s*submit\s*\(")),
    ("cpu-consume", re.compile(r"(?:\.|->)\s*consume\s*\(")),
    ("channel-send", re.compile(r"(?:\.|->)\s*send\s*\(")),
    ("kv-mutation", re.compile(
        r"commands_table_\s*\.\s*execute|backlog_\s*\.\s*(?:append|reset)|"
        r"\brdb\s*::\s*load|\bdup_record\b")),
]


def taint_pass(funcs, unique, findings):
    direct = {}
    for f in funcs:
        body = f.ft.code[f.lo:f.hi]
        for kind, rx in SINK_RES:
            m = rx.search(body)
            if m:
                direct[f] = (kind, f.ft.line_of(f.lo + m.start()))
                break
    memo = {}

    def chase(f, stack):
        if f in memo:
            return memo[f]
        if f in direct:
            memo[f] = [(f, None, direct[f])]
            return memo[f]
        if f in stack:
            return None
        stack = stack | {f}
        for name, off in f.calls:
            callee = unique.get(name)
            if callee is None or callee is f:
                continue
            r = chase(callee, stack)
            if r:
                memo[f] = [(f, off, None)] + r
                return memo[f]
        memo[f] = None
        return None

    seeds = [f for f in funcs
             if f.annotated or "/obs/" in f.ft.path.as_posix()
             or f.ft.path.as_posix().startswith("obs/")]
    for f in seeds:
        chain = chase(f, frozenset())
        if not chain:
            continue
        head = chain[0]
        if head[2] is not None:      # direct sink in the seed itself
            line = head[2][1]
            sink = head[2][0]
            via = f.name
        else:
            line = f.ft.line_of(head[1])
            tail = chain[-1]
            sink = tail[2][0]
            via = " -> ".join(c[0].name for c in chain)
        if not f.ft.suppressed(line, "observe-taint"):
            findings.append(Finding(
                f.ft.path, line, "observe-taint",
                f"{sink} reachable via {via}"))


# ---------------------------------------------------------------------------
# Config-knob drift.

def knob_pass(fts, struct_names, doc_text, findings):
    for ft in fts:
        for sm in re.finditer(
                r"\bstruct\s+(" + "|".join(map(re.escape, struct_names))
                + r")\b[^;{]*\{", ft.code):
            bo = ft.code.index("{", sm.start())
            bc = match_paren(ft.code, bo)
            span = list(ft.code[bo + 1:bc])
            # blank nested brace groups (default member init, sub-aggregates)
            d = 0
            for i, c in enumerate(span):
                if c == "{":
                    d += 1
                if d > 0 and c != "\n":
                    span[i] = " "
                if c == "}":
                    d -= 1
            flat = "".join(span)
            base = bo + 1
            for stmt_m in re.finditer(r"[^;]*;", flat):
                stmt = stmt_m.group(0)
                left = stmt.split("=")[0]
                if "(" in left or ")" in left:
                    continue
                fm = re.search(r"[\w:<>,&*\s]+?\b(\w+)\s*(?:\[[^\]]*\]\s*)?"
                               r"(?:=[^;]*)?;\s*$", stmt)
                if not fm:
                    continue
                name = fm.group(1)
                if name in ("struct", "class", "public", "private", "using",
                            "typedef", "enum"):
                    continue
                if re.match(r"\s*(?:using|typedef|friend|static_assert)\b",
                            stmt):
                    continue
                line = ft.line_of(base + stmt_m.start() + fm.start(1))
                if re.search(r"\b" + re.escape(name) + r"\b", doc_text):
                    continue
                if not ft.suppressed(line, "knob-drift"):
                    findings.append(Finding(
                        ft.path, line, "knob-drift",
                        f"{sm.group(1)}::{name} not mentioned in the knob "
                        f"documentation"))


# ---------------------------------------------------------------------------
# Driver.

def analyze(paths, doc_text, struct_names, frontend):
    fts = [FileText(p) for p in paths]
    findings: list[Finding] = []

    # --- enums ------------------------------------------------------------
    entries = None
    if frontend in ("auto", "clang"):
        entries = clang_enum_entries(paths)
        if entries is None:
            if frontend == "clang":
                print("simlint3: --frontend clang requested but libclang is "
                      "not importable", file=sys.stderr)
                sys.exit(2)
            print("simlint3: libclang unavailable, falling back to text "
                  "frontend", file=sys.stderr)
        elif not entries:
            entries = None  # clang parse found nothing usable; use text
    if entries is None:
        entries = []
        for ft in fts:
            for em in ENUM_TYPE_RE.finditer(ft.code):
                bo = ft.code.index("{", em.start())
                bc = match_paren(ft.code, bo)
                for m in ENUM_ENTRY_RE.finditer(ft.nocomment, bo, bc):
                    entries.append((m.group(1), m.group(2),
                                    ft, ft.line_of(m.start())))
    by_char: dict[str, tuple] = {}
    enum_values: list[str] = []
    for name, ch, ft_or_path, line in entries:
        enum_values.append(name)
        ft = ft_or_path if isinstance(ft_or_path, FileText) else None
        path = ft.path if ft else ft_or_path
        if ch in by_char and by_char[ch][0] != name:
            if not (ft and ft.suppressed(line, "duplicate-tag")):
                findings.append(Finding(
                    path, line, "duplicate-tag",
                    f"{name} and {by_char[ch][0]} both use tag '{ch}'"))
        else:
            by_char.setdefault(ch, (name, line))
    enum_set = set(enum_values)

    # --- replication modes ------------------------------------------------
    modes = []
    for ft in fts:
        mm = MODE_ENUM_RE.search(ft.code)
        if mm:
            bo = ft.code.index("{", mm.start())
            bc = match_paren(ft.code, bo)
            modes = re.findall(r"\bk\w+", ft.code[bo:bc])
            break
    if not modes:
        modes = ["kAnyMode"]
    logic = ModeLogic(modes)

    # --- function table + entry-mode fixpoint -----------------------------
    funcs: list[Func] = []
    for ft in fts:
        funcs.extend(parse_funcs(ft))
    by_name = defaultdict(list)
    for f in funcs:
        by_name[f.name].append(f)
    unique = {n: fs[0] for n, fs in by_name.items() if len(fs) == 1}
    for f in funcs:
        compute_marks(f, logic)
    callsites = defaultdict(list)
    for caller in funcs:
        for name, off in caller.calls:
            tgt = unique.get(name)
            if tgt is not None and tgt is not caller:
                callsites[tgt].append((caller, off))
    entry = {f: (frozenset() if callsites[f] else logic.all) for f in funcs}
    for _ in range(40):
        changed = False
        for f in funcs:
            if not callsites[f]:
                continue
            s = frozenset()
            for caller, off in callsites[f]:
                s |= entry[caller] & caller.mark_at(off, logic.all)
            if s != entry[f]:
                entry[f] = s
                changed = True
        if not changed:
            break

    # --- dispatchers, tables, sends ---------------------------------------
    dispatchers = []
    for ft in fts:
        dispatchers.extend(parse_dispatchers(ft, funcs, entry, logic))
    tables = []  # (ft, line, covered set)
    for ft in fts:
        for tm in TYPE_TABLE_RE.finditer(ft.code):
            bo = ft.code.index("{", tm.end() - 1)
            bc = match_paren(ft.code, bo)
            covered = set(re.findall(r"\bType\s*::\s*(k\w+)",
                                     ft.code[bo:bc]))
            if covered:
                tables.append((ft, ft.line_of(tm.start()), covered))
    sends = defaultdict(list)  # tag -> [(ft, line, modes)]
    for ft in fts:
        for m in SEND_RE.finditer(ft.code):
            host = None
            for f in funcs:
                if f.ft is ft and f.lo <= m.start() < f.hi:
                    host = f
                    break
            if host:
                mset = entry[host] & host.mark_at(m.start(), logic.all)
            else:
                mset = logic.all
            sends[m.group(1)].append((ft, ft.line_of(m.start()), mset))

    # --- unhandled-tag ----------------------------------------------------
    if enum_set:
        for d in dispatchers:
            missing = sorted(enum_set - d.covered)
            if missing and not d.ft.suppressed(d.line, "unhandled-tag"):
                findings.append(Finding(
                    d.ft.path, d.line, "unhandled-tag",
                    "switch misses " + ", ".join(missing)))
        for ft, line, covered in tables:
            missing = sorted(enum_set - covered)
            if missing and not ft.suppressed(line, "unhandled-tag"):
                findings.append(Finding(
                    ft.path, line, "unhandled-tag",
                    "type table misses " + ", ".join(missing)))

    # --- dead-send / dead-handler ----------------------------------------
    active = defaultdict(list)  # tag -> [(ft, line, modes)]
    cased = set()
    for d in dispatchers:
        if d.is_table:
            cased |= d.covered
            continue
        for g in d.groups:
            cased |= set(g.tags)
            if not g.ignore:
                for t in g.tags:
                    active[t].append((d.ft, g.line, g.modes))
    for tag in sorted(enum_set | set(sends) | set(active)):
        ssites = sends.get(tag, [])
        handlers = active.get(tag, [])
        if ssites and not handlers:
            ft, line, _ = ssites[0]
            if not ft.suppressed(line, "dead-send"):
                detail = ("never named in any dispatch switch"
                          if tag not in cased else
                          "every dispatch switch explicitly ignores it")
                findings.append(Finding(ft.path, line, "dead-send",
                                        f"{tag} is sent but {detail}"))
            continue
        if ssites and handlers:
            s_total = frozenset().union(*[m for _, _, m in ssites])
            h_total = frozenset().union(*[m for _, _, m in handlers])
            uncovered = s_total - h_total
            if s_total and uncovered:
                for ft, line, m in ssites:
                    if m & uncovered and not ft.suppressed(line, "dead-send"):
                        findings.append(Finding(
                            ft.path, line, "dead-send",
                            f"{tag} sent in mode(s) "
                            f"{', '.join(sorted(m & uncovered))} where no "
                            f"active handler is reachable"))
            for ft, line, h in handlers:
                if h and s_total and not (h & s_total) \
                        and not ft.suppressed(line, "dead-handler"):
                    findings.append(Finding(
                        ft.path, line, "dead-handler",
                        f"{tag} handler only reachable in "
                        f"{', '.join(sorted(h))} but the tag is sent only in "
                        f"{', '.join(sorted(s_total))}"))
        if not ssites and handlers:
            for ft, line, _ in handlers:
                if not ft.suppressed(line, "dead-handler"):
                    findings.append(Finding(
                        ft.path, line, "dead-handler",
                        f"{tag} has an active handler but no send site "
                        f"exists anywhere"))

    # --- repl-command -----------------------------------------------------
    cmd_sites = defaultdict(lambda: {"send": [], "handle": [], "any": []})
    for ft in fts:
        for lineno, line in enumerate(ft.sf.nocomment, 1):
            for m in WSEQ_RE.finditer(line):
                cmd = m.group(1)
                rec = cmd_sites[cmd]
                rec["any"].append((ft, lineno))
                if WSEQ_HANDLE_RE.search(line):
                    rec["handle"].append((ft, lineno))
                sm = WSEQ_SEND_RE.search(line)
                if sm and (sm.group(1) or sm.group(2)) == cmd:
                    rec["send"].append((ft, lineno))
    for cmd in sorted(cmd_sites):
        rec = cmd_sites[cmd]
        for side, other in (("send", "handle"), ("handle", "send")):
            if rec[side] and not rec[other]:
                ft, line = rec[side][0]
                if not ft.suppressed(line, "repl-command"):
                    findings.append(Finding(
                        ft.path, line, "repl-command",
                        f"{cmd} has {len(rec[side])} {side} site(s) but no "
                        f"{other} site"))

    # --- observe-taint ----------------------------------------------------
    taint_pass(funcs, unique, findings)

    # --- knob-drift -------------------------------------------------------
    if doc_text is not None:
        knob_pass(fts, struct_names, doc_text, findings)

    return findings, len(fts)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="simlint3",
        description="protocol-conformance / observe-only purity lint")
    ap.add_argument("files", nargs="*", type=Path)
    ap.add_argument("--compile-commands", type=Path)
    ap.add_argument("--src-root", type=Path, default=Path("src"))
    ap.add_argument("--doc", type=Path,
                    help="knob documentation file (default: EXPERIMENTS.md "
                         "next to --src-root when using --compile-commands)")
    ap.add_argument("--knob-structs",
                    default="ServerConfig,NicKvConfig,RunOptions,"
                            "YcsbOptions,OpenLoopOptions")
    ap.add_argument("--frontend", choices=["auto", "clang", "text"],
                    default="auto")
    args = ap.parse_args(argv)

    if args.compile_commands:
        paths = lintcommon.files_from_compile_commands(
            args.compile_commands, args.src_root, "simlint3")
    elif args.files:
        paths = [p.resolve() for p in args.files]
    else:
        ap.error("pass source files or --compile-commands")

    doc_text = None
    if args.doc:
        try:
            doc_text = args.doc.read_text()
        except OSError as e:
            print(f"simlint3: cannot read --doc {args.doc}: {e}",
                  file=sys.stderr)
            return 2
    elif args.compile_commands:
        default_doc = args.src_root.resolve().parent / "EXPERIMENTS.md"
        if default_doc.exists():
            doc_text = default_doc.read_text()

    structs = [s for s in args.knob_structs.split(",") if s]
    findings, nfiles = analyze(paths, doc_text, structs, args.frontend)
    return lintcommon.report(findings, nfiles, "simlint3")


if __name__ == "__main__":
    sys.exit(main())
