// kState is only ever sent in chain mode, but its handler only does real
// work in quorum mode — in every configuration the message is wasted.
#include <string>

enum class ReplicationMode { kChain, kQuorum };

struct NodeMsg {
  enum class Type : char {
    kData = 'd',
    kState = 's',
  };
  Type type;
  std::string encode() const;
};

struct Stats { void incr(const char*); };
struct Chan { void send(const std::string&); };

struct Node {
  Stats stats_;
  Chan ch_;
  ReplicationMode replication_mode = ReplicationMode::kChain;
  void apply(const NodeMsg& m);

  void dispatch(const NodeMsg& m) {
    switch (m.type) {
      case NodeMsg::Type::kData:
        apply(m);
        break;
      case NodeMsg::Type::kState:
        if (replication_mode == ReplicationMode::kQuorum) {
          apply(m);
        } else {
          stats_.incr("unexpected_msgs");
        }
        break;
    }
  }

  void send_data() { ch_.send(NodeMsg{NodeMsg::Type::kData, 0}.encode()); }

  void send_state() {
    if (replication_mode == ReplicationMode::kChain) {
      ch_.send(NodeMsg{NodeMsg::Type::kState, 0}.encode());
    }
  }
};

int main() {
  Node n;
  n.dispatch(NodeMsg{NodeMsg::Type::kData});
  n.send_data();
  n.send_state();
  return 0;
}
