// An observe-only function reaches event scheduling through a helper:
// enabling observability would change the simulation schedule.
struct Sim {
  void after(long delay, int what);
};

struct Probe {
  Sim sim_;

  void nudge() { sim_.after(10, 1); }

  // simlint3:observe-only
  long sample() {
    nudge();
    return 7;
  }
};

int main() {
  Probe p;
  return static_cast<int>(p.sample());
}
