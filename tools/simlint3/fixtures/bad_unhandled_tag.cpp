// The dispatch switch hides kBeta/kGamma behind `default`, and the type
// table forgot kGamma — both are how a new enum value silently rots.
#include <string>

struct NodeMsg {
  enum class Type : char {
    kAlpha = 'a',
    kBeta = 'b',
    kGamma = 'g',
  };
  Type type;
  std::string encode() const;
};

constexpr NodeMsg::Type kKnownTypes[] = {
    NodeMsg::Type::kAlpha,
    NodeMsg::Type::kBeta,
};

struct Stats { void incr(const char*); };
struct Chan { void send(const std::string&); };

struct Node {
  Stats stats_;
  Chan ch_;
  void apply(const NodeMsg& m);
  void dispatch(const NodeMsg& m) {
    switch (m.type) {
      case NodeMsg::Type::kAlpha:
        apply(m);
        break;
      default:
        stats_.incr("unexpected_msgs");
        break;
    }
  }
  void send_alpha() { ch_.send(NodeMsg{NodeMsg::Type::kAlpha, 0}.encode()); }
};

int main() {
  Node n;
  n.dispatch(NodeMsg{NodeMsg::Type::kAlpha});
  n.send_alpha();
  return 0;
}
