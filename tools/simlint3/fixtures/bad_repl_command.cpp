// WSEQX is pushed onto the replication stream but no dispatcher ever
// compares argv[0] against it: replicas will drop it on the floor.
#include <string>
#include <vector>

void emit(std::vector<std::string>& out) {
  out.emplace_back("WSEQX");
  out.emplace_back("1");
}
