// kGhost has a real handler body but no send site exists anywhere:
// dead protocol surface that will never be exercised or tested.
#include <string>

struct NodeMsg {
  enum class Type : char {
    kLive = 'l',
    kGhost = 'g',
  };
  Type type;
  std::string encode() const;
};

struct Chan { void send(const std::string&); };

struct Node {
  Chan ch_;
  void apply(const NodeMsg& m);
  void dispatch(const NodeMsg& m) {
    switch (m.type) {
      case NodeMsg::Type::kLive:
        apply(m);
        break;
      case NodeMsg::Type::kGhost:
        apply(m);
        break;
    }
  }
  void send_live() { ch_.send(NodeMsg{NodeMsg::Type::kLive, 0}.encode()); }
};

int main() {
  Node n;
  n.dispatch(NodeMsg{NodeMsg::Type::kLive});
  n.send_live();
  return 0;
}
