// Clean protocol: unique tags, exhaustive dispatch, every sent tag actively
// handled, mode gates consistent, WSEQ commands with both sides, a pure
// observe-only helper, and an exhaustive type table.
#include <string>
#include <vector>

enum class ReplicationMode { kFanout, kChain };

struct NodeMsg {
  enum class Type : char {
    kPing = 'p',
    kPong = 'q',
    kLegacy = 'l',
  };
  Type type;
  long field = 0;
  std::string encode() const;
};

constexpr NodeMsg::Type kAllTypes[] = {
    NodeMsg::Type::kPing,
    NodeMsg::Type::kPong,
    NodeMsg::Type::kLegacy,
};

struct Stats { void incr(const char*); };
struct Chan { void send(const std::string&); };

struct Node {
  Stats stats_;
  Chan ch_;
  ReplicationMode replication_mode = ReplicationMode::kFanout;

  void apply(const NodeMsg& m);

  void dispatch(const NodeMsg& m) {
    switch (m.type) {
      case NodeMsg::Type::kPing:
        apply(m);
        break;
      case NodeMsg::Type::kPong:
        if (replication_mode == ReplicationMode::kChain) {
          apply(m);
        } else {
          stats_.incr("unexpected_msgs");
        }
        break;
      case NodeMsg::Type::kLegacy:
        stats_.incr("unexpected_msgs");
        break;
    }
  }

  void send_ping() { ch_.send(NodeMsg{NodeMsg::Type::kPing, 1}.encode()); }

  void send_pong() {
    if (replication_mode != ReplicationMode::kChain) return;
    ch_.send(NodeMsg{NodeMsg::Type::kPong, 2}.encode());
  }

  // simlint3:observe-only
  long depth_estimate() const { return 40; }

  void send_wseq(std::vector<std::string>& out) {
    out.emplace_back("WSEQ");
  }

  void handle_resp(const std::vector<std::string>& argv) {
    if (argv[0] == "WSEQ") {
      apply(NodeMsg{NodeMsg::Type::kPing, 0});
    }
  }
};

int main() {
  Node n;
  n.dispatch(NodeMsg{NodeMsg::Type::kPing, 0});
  n.send_ping();
  n.send_pong();
  n.depth_estimate();
  return 0;
}
