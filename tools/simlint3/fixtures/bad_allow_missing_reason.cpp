struct NodeMsg {
  enum class Type : char {
    kOne = 'z',
    // simlint3:allow(duplicate-tag)
    kTwo = 'z',
  };
  Type type;
};
