// Everything under src/obs/ is observe-only by construction; this export
// helper folds into the trace digest, which would move seeded reruns.
struct Trace {
  static void note(unsigned v);
};

void export_counters() {
  Trace::note(42);
}
