// mystery_knob is tunable but appears nowhere in the knob documentation.
#pragma once

struct ServerConfig {
  int documented_knob = 4;
  int mystery_knob = 9;
  int excused_knob = 2;  // simlint3:allow(knob-drift) internal plumbing, not a tunable
};
