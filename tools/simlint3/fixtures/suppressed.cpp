// Every finding in this file carries a reasoned allow-comment: exit 0.
#include <string>

struct NodeMsg {
  enum class Type : char {
    kOne = 'z',
    // simlint3:allow(duplicate-tag) fixture: collision is the point here
    kTwo = 'z',
  };
  Type type;
  std::string encode() const;
};

struct Stats { void incr(const char*); };
struct Chan { void send(const std::string&); };

struct Node {
  Stats stats_;
  Chan ch_;
  void apply(const NodeMsg& m);
  void dispatch(const NodeMsg& m) {
    // simlint3:allow(unhandled-tag) fixture: kTwo intentionally left unwired
    switch (m.type) {
      case NodeMsg::Type::kOne:
        apply(m);
        break;
      default:
        stats_.incr("unexpected_msgs");
        break;
    }
  }
  void send_both() {
    ch_.send(NodeMsg{NodeMsg::Type::kOne, 0}.encode());
    // simlint3:allow(dead-send) fixture: receiver lands in a later PR
    ch_.send(NodeMsg{NodeMsg::Type::kTwo, 0}.encode());
  }
};

int main() {
  Node n;
  n.dispatch(NodeMsg{NodeMsg::Type::kOne});
  n.send_both();
  return 0;
}
