// kDrop is sent on the wire but every dispatch switch explicitly ignores
// it — the sender believes in a conversation nobody is having.
#include <string>

struct NodeMsg {
  enum class Type : char {
    kKeep = 'k',
    kDrop = 'd',
  };
  Type type;
  std::string encode() const;
};

struct Stats { void incr(const char*); };
struct Chan { void send(const std::string&); };

struct Node {
  Stats stats_;
  Chan ch_;
  void apply(const NodeMsg& m);
  void dispatch(const NodeMsg& m) {
    switch (m.type) {
      case NodeMsg::Type::kKeep:
        apply(m);
        break;
      case NodeMsg::Type::kDrop:
        stats_.incr("unexpected_msgs");
        break;
    }
  }
  void send_both() {
    ch_.send(NodeMsg{NodeMsg::Type::kKeep, 0}.encode());
    ch_.send(NodeMsg{NodeMsg::Type::kDrop, 0}.encode());
  }
};

int main() {
  Node n;
  n.dispatch(NodeMsg{NodeMsg::Type::kKeep});
  n.send_both();
  return 0;
}
