// Two enumerators share the wire tag 'x': frames misroute silently.
struct NodeMsg {
  enum class Type : char {
    kAlpha = 'x',
    kBeta = 'x',
  };
  Type type;
};
