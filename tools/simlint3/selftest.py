#!/usr/bin/env python3
"""Self-test for simlint3: runs the checker against the fixtures and
asserts findings, suppressions, exit codes, knob-doc plumbing and the
compile-commands file scoping all behave. Wired into ctest as
`simlint3_selftest`.

The text frontend is pinned (`--frontend text`) so the test is
deterministic on machines with and without libclang; a separate check
verifies that `--frontend auto` degrades gracefully either way.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).parent
LINT = HERE / "simlint3.py"
FIXTURES = HERE / "fixtures"

failures: list[str] = []


def run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True)


def expect(name: str, cond: bool, context: str = "") -> None:
    if cond:
        print(f"  ok  {name}")
    else:
        print(f"FAIL  {name}\n{context}")
        failures.append(name)


def check_bad(fixture: str, rule: str, min_findings: int = 1,
              *extra: str) -> str:
    """A bad fixture must exit 1 with >= min_findings of the given rule,
    each carrying a file:line prefix. Returns stdout for extra checks."""
    r = run("--frontend", "text", str(FIXTURES / fixture), *extra)
    hits = [l for l in r.stdout.splitlines() if f"[{rule}]" in l]
    expect(f"{fixture} exits 1", r.returncode == 1,
           f"rc={r.returncode}\n{r.stdout}{r.stderr}")
    expect(f"{fixture} reports >= {min_findings} [{rule}]",
           len(hits) >= min_findings, r.stdout)
    for l in hits:
        loc = l.split(" ")[0]  # path:line:
        parts = loc.rstrip(":").rsplit(":", 1)
        addressable = len(parts) == 2 and parts[1].isdigit()
        expect(f"{fixture} finding is file:line addressable", addressable, l)
    return r.stdout


# --- clean fixtures pass -----------------------------------------------------
for clean in ("clean.cpp", "suppressed.cpp"):
    r = run("--frontend", "text", str(FIXTURES / clean))
    expect(f"{clean} passes", r.returncode == 0,
           f"rc={r.returncode}\n{r.stdout}{r.stderr}")

# --- each rule fires on its fixture ------------------------------------------
out = check_bad("bad_duplicate_tag.cpp", "duplicate-tag")
expect("duplicate-tag names both enumerators and the char",
       "kBeta" in out and "kAlpha" in out and "'x'" in out, out)

out = check_bad("bad_unhandled_tag.cpp", "unhandled-tag", 2)
expect("unhandled-tag: default does not count as handling",
       "switch misses kBeta, kGamma" in out, out)
expect("unhandled-tag: stale type tables are caught",
       "type table misses kGamma" in out, out)

out = check_bad("bad_dead_send.cpp", "dead-send")
expect("dead-send names the ignored-everywhere tag",
       "kDrop" in out and "explicitly ignores" in out, out)
expect("dead-send does not flag the handled tag", "kKeep" not in out, out)

out = check_bad("bad_dead_handler.cpp", "dead-handler")
expect("dead-handler names the never-sent tag",
       "kGhost" in out and "no send site" in out, out)
expect("dead-handler does not flag the live tag", "kLive" not in out, out)

out = check_bad("bad_mode_mismatch.cpp", "dead-send")
expect("mode mismatch: send side names the orphaned mode",
       "kState sent in mode(s) kChain" in out, out)
expect("mode mismatch: handler side also flagged",
       "[dead-handler]" in out and "only reachable in kQuorum" in out, out)
expect("mode mismatch: ungated tag stays clean", "kData" not in out, out)

out = check_bad("bad_repl_command.cpp", "repl-command")
expect("repl-command names the orphaned command and missing side",
       "WSEQX" in out and "no handle site" in out, out)

out = check_bad("bad_observe_taint.cpp", "observe-taint")
expect("observe-taint reports the transitive chain",
       "sample -> nudge" in out and "event-schedule" in out, out)

out = check_bad("src/obs/bad_obs_sink.cpp", "observe-taint")
expect("obs/ files are observe-only without annotation",
       "trace-note" in out, out)

out = check_bad("bad_knob.hpp", "knob-drift", 1,
                "--doc", str(FIXTURES / "knobs_doc.md"))
expect("knob-drift flags only the undocumented field",
       "mystery_knob" in out and "documented_knob" not in out, out)
expect("knob-drift allow-comment works", "excused_knob" not in out, out)

# --- suppression plumbing ----------------------------------------------------
r = run("--frontend", "text", str(FIXTURES / "bad_allow_missing_reason.cpp"))
expect("allow without reason exits 2", r.returncode == 2,
       f"rc={r.returncode}\n{r.stdout}{r.stderr}")
expect("allow without reason names the problem",
       "missing the mandatory reason" in r.stderr, r.stderr)

with tempfile.TemporaryDirectory() as td:
    bad = Path(td) / "unknown_rule.cpp"
    bad.write_text("// simlint3:allow(not-a-rule) whatever\nint x;\n")
    r = run("--frontend", "text", str(bad))
    expect("allow with unknown rule exits 2", r.returncode == 2,
           f"rc={r.returncode}\n{r.stdout}{r.stderr}")
    expect("unknown rule message lists known rules",
           "unknown rule" in r.stderr and "dead-send" in r.stderr, r.stderr)

# --- frontend gating ---------------------------------------------------------
r = run("--frontend", "auto", str(FIXTURES / "clean.cpp"))
expect("frontend auto degrades gracefully", r.returncode == 0,
       f"rc={r.returncode}\n{r.stdout}{r.stderr}")

# --- knob doc plumbing -------------------------------------------------------
r = run("--frontend", "text", str(FIXTURES / "bad_knob.hpp"),
        "--doc", str(FIXTURES / "no_such_doc.md"))
expect("missing --doc file exits 2", r.returncode == 2,
       f"rc={r.returncode}\n{r.stdout}{r.stderr}")
r = run("--frontend", "text", str(FIXTURES / "bad_knob.hpp"))
expect("knob pass is skipped without a doc", r.returncode == 0,
       f"rc={r.returncode}\n{r.stdout}{r.stderr}")

# --- compile-commands scoping + header sweep ---------------------------------
with tempfile.TemporaryDirectory() as td:
    root = Path(td)
    src = root / "src"
    src.mkdir()
    (src / "inside.cpp").write_text(
        "struct NodeMsg {\n"
        "  enum class Type : char { kIn = 'i', kIn2 = 'i' };\n"
        "};\n")
    (src / "swept.hpp").write_text(
        "struct NodeMsg2 {\n"
        "  enum class Type : char { kSw = 's', kSw2 = 's' };\n"
        "};\n")
    outside = root / "outside.cpp"
    outside.write_text(
        "struct NodeMsg3 {\n"
        "  enum class Type : char { kOut = 'o', kOut2 = 'o' };\n"
        "};\n")
    db = root / "compile_commands.json"
    db.write_text(json.dumps([
        {"directory": str(root), "file": str(src / "inside.cpp"),
         "command": "c++ -c inside.cpp"},
        {"directory": str(root), "file": str(outside),
         "command": "c++ -c outside.cpp"},
    ]))
    r = run("--frontend", "text", "--compile-commands", str(db),
            "--src-root", str(src))
    expect("compile-commands: src file linted", "inside.cpp:2" in r.stdout,
           r.stdout)
    expect("compile-commands: headers under src swept",
           "swept.hpp:2" in r.stdout, r.stdout)
    expect("compile-commands: files outside src-root ignored",
           "outside.cpp" not in r.stdout, r.stdout)

# -----------------------------------------------------------------------------
if failures:
    print(f"\nsimlint3 selftest: {len(failures)} failure(s)")
    sys.exit(1)
print("\nsimlint3 selftest: all checks passed")
sys.exit(0)
