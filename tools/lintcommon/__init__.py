"""lintcommon — shared plumbing for the repository's lint passes.

The three checkers (tools/simlint: determinism, tools/simlint2:
ownership/lifetime, tools/simlint3: protocol conformance) share the same
operational shape: a compile_commands.json-driven file list with a header
sweep, comment/string-stripped source lines, per-line
`// <tool>:allow(<rule>) <reason>` suppressions with a mandatory reason,
findings printed as `file:line: [rule] message`, and exit status
0 clean / 1 findings / 2 usage error. This module is that shape, factored
out once; each tool contributes only its rules and extraction passes.

Nothing here imports outside the standard library — the text frontends of
all three tools must run on a bare python3.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

__all__ = [
    "Finding",
    "SourceFile",
    "strip_code",
    "files_from_compile_commands",
    "match_paren",
    "split_top_commas",
    "line_index",
    "report",
]


class Finding:
    """One lint finding. Subclass per tool with `rules` set to the tool's
    rule->message dict so construction sites stay `Finding(path, line,
    rule, detail)`."""

    rules: dict[str, str] = {}

    def __init__(self, path: Path, line: int, rule: str, detail: str = ""):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def __str__(self) -> str:
        msg = self.rules.get(self.rule, self.rule)
        if self.detail:
            msg = f"{msg} ({self.detail})"
        return f"{self.path}:{self.line}: [{self.rule}] {msg}"


def strip_code(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Blank out string/char literals and comments so rule regexes only see
    code. Returns (code, still_in_block_comment). Column positions are
    preserved so findings stay on the right line."""
    out = []
    i = 0
    n = len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        if state == "code":
            if c == '"':
                # raw strings R"( ... )" are rare here; handle the plain form
                out.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        out.append("  ")
                        i += 2
                        continue
                    if line[i] == '"':
                        out.append(" ")
                        i += 1
                        break
                    out.append(" ")
                    i += 1
                continue
            if c == "'":
                out.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        out.append("  ")
                        i += 2
                        continue
                    if line[i] == "'":
                        out.append(" ")
                        i += 1
                        break
                    out.append(" ")
                    i += 1
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                out.append(" " * (n - i))
                i = n
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            out.append(c)
            i += 1
        else:  # block comment
            if c == "*" and i + 1 < n and line[i + 1] == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            i += 1
    return "".join(out), state == "block"


class SourceFile:
    """One parsed file: raw lines, comment-stripped lines, suppressions.

    `tool` names the allow-comment namespace (`// simlint3:allow(...)`)
    and the stderr prefix; `rules` is the tool's rule->message dict used
    to validate allow-comments. Unknown rule names and missing reasons in
    allow-comments are configuration errors (exit 2), not findings — a
    suppression that silently fails to parse would un-suppress itself on
    the next run."""

    def __init__(self, path: Path, tool: str, rules: dict[str, str]):
        self.path = path
        allow_re = re.compile(rf"//\s*{re.escape(tool)}:allow\(([\w-]+)\)\s*(.*)")
        try:
            self.raw = path.read_text(errors="replace").split("\n")
        except OSError as e:
            print(f"{tool}: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        self.code: list[str] = []
        self.allows: dict[int, str] = {}
        in_block = False
        for lineno, line in enumerate(self.raw, 1):
            am = allow_re.search(line)
            if am:
                rule, reason = am.group(1), am.group(2).strip()
                if rule not in rules:
                    print(
                        f"{path}:{lineno}: {tool}:allow names unknown rule "
                        f"'{rule}' (known: {', '.join(sorted(rules))})",
                        file=sys.stderr,
                    )
                    sys.exit(2)
                if not reason:
                    print(
                        f"{path}:{lineno}: {tool}:allow({rule}) is missing "
                        f"the mandatory reason text",
                        file=sys.stderr,
                    )
                    sys.exit(2)
                self.allows[lineno] = rule
            stripped, in_block = strip_code(line, in_block)
            self.code.append(stripped)

    def suppressed(self, lineno: int, rule: str) -> bool:
        return (self.allows.get(lineno) == rule
                or self.allows.get(lineno - 1) == rule)


def files_from_compile_commands(db_path: Path, src_root: Path,
                                tool: str) -> list[Path]:
    """File list for a whole-tree run: every TU under src_root that appears
    in the compile database, plus a header sweep (headers never appear in
    the database but carry declarations the linters must see)."""
    try:
        entries = json.loads(db_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"{tool}: cannot load {db_path}: {e}", file=sys.stderr)
        sys.exit(2)
    root = src_root.resolve()
    out: set[Path] = set()
    for entry in entries:
        f = Path(entry["directory"], entry["file"]).resolve() \
            if not Path(entry["file"]).is_absolute() else Path(entry["file"])
        try:
            f.relative_to(root)
        except ValueError:
            continue
        out.add(f)
    for h in root.rglob("*.hpp"):
        out.add(h.resolve())
    for h in root.rglob("*.h"):
        out.add(h.resolve())
    return sorted(out)


def match_paren(text: str, open_idx: int) -> int:
    """Index of the char matching text[open_idx] ('(' or '[' or '{')."""
    pairs = {"(": ")", "[": "]", "{": "}"}
    close = pairs[text[open_idx]]
    opener = text[open_idx]
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == opener:
            depth += 1
        elif text[i] == close:
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def split_top_commas(text: str) -> list[str]:
    out, depth, cur = [], 0, []
    for c in text:
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur:
        out.append("".join(cur))
    return out


def line_index(text: str):
    """Offset -> 1-based line number lookup over a joined file text."""
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)

    def line_of(offset: int) -> int:
        lo, hi = 0, len(starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    return line_of


def report(findings: list[Finding], file_count: int, tool: str) -> int:
    """Print findings (sorted for stable output) and the summary line;
    return the process exit status."""
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    for fi in findings:
        print(fi)
    if findings:
        print(f"{tool}: {len(findings)} finding(s) in {file_count} file(s)",
              file=sys.stderr)
        return 1
    print(f"{tool}: clean ({file_count} files)", file=sys.stderr)
    return 0
