#!/usr/bin/env python3
"""bench_gate: perf-trajectory recorder and regression gate.

Consumes the schema-v1 ``JSON: {...}`` line a bench binary prints (see
EXPERIMENTS.md, "Bench JSON schema") and maintains a trajectory database —
a checked-in JSON file holding the recorded runs, newest last:

    {"schema_version": 1, "figure": "ycsb",
     "runs": [{"recorded_at_commit": "<sha>", "profile": "full",
               "series": [...]}, ...]}

Commands:

  record   Append the bench output as a new run of its profile.
           The working-tree commit is stamped for provenance.
  check    Diff the bench output against the *latest recorded run of the
           same profile*. A regression — a gated metric worse by more than
           the tolerance on any matched series — prints the offending
           metric deltas and exits 1.

Gated metrics (per series):
  achieved_kops     lower is a regression
  p99_us / p999_us  of the "all" point: higher is a regression
  failed+timed_out  any increase is a regression (no tolerance)

Series present only on one side are reported but do not fail the gate
(sweep membership is allowed to evolve); use --require-same-series to make
that fatal too.
"""

import argparse
import json
import subprocess
import sys


def read_bench_doc(path):
    """The last `JSON: {...}` line of a bench output file ('-' = stdin)."""
    text = sys.stdin.read() if path == "-" else open(path).read()
    doc_line = None
    for line in text.splitlines():
        if line.startswith("JSON: "):
            doc_line = line[len("JSON: "):]
    if doc_line is None:
        raise SystemExit("bench_gate: no 'JSON: ' line in %s" % path)
    doc = json.loads(doc_line)
    if doc.get("schema_version") != 1:
        raise SystemExit("bench_gate: unsupported schema_version %r"
                         % doc.get("schema_version"))
    return doc


def load_db(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None


def profile_of(doc):
    """The run's profile, taken from its series scalars (must agree)."""
    profiles = {s.get("profile", "default") for s in doc.get("series", [])}
    if len(profiles) != 1:
        raise SystemExit("bench_gate: bench output mixes profiles %s"
                         % sorted(profiles))
    return profiles.pop()


def head_commit():
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def cmd_record(args):
    doc = read_bench_doc(args.bench_output)
    db = load_db(args.db)
    if db is None:
        db = {"schema_version": 1, "figure": doc["figure"], "runs": []}
    if db.get("figure") != doc["figure"]:
        raise SystemExit("bench_gate: db is for figure %r, output is %r"
                         % (db.get("figure"), doc["figure"]))
    run = {
        "recorded_at_commit": args.commit or head_commit(),
        "profile": profile_of(doc),
        "series": doc["series"],
    }
    db["runs"].append(run)
    with open(args.db, "w") as f:
        json.dump(db, f, indent=1)
        f.write("\n")
    print("bench_gate: recorded run #%d (profile '%s', %d series) into %s"
          % (len(db["runs"]), run["profile"], len(run["series"]), args.db))
    return 0


def all_point(series):
    for p in series.get("points", []):
        if p.get("op", "all") == "all":
            return p
    return {}


def check_series(base, cur, tol, failures):
    """Append '(series, metric, base, cur, delta%)' rows for regressions."""
    name = cur["name"]

    def rel(b, c):
        return (c - b) / b if b else 0.0

    b_kops, c_kops = base.get("achieved_kops"), cur.get("achieved_kops")
    if b_kops and c_kops is not None and rel(b_kops, c_kops) < -tol:
        failures.append((name, "achieved_kops", b_kops, c_kops,
                         100.0 * rel(b_kops, c_kops)))

    bp, cp = all_point(base), all_point(cur)
    for metric in ("p99_us", "p999_us"):
        b, c = bp.get(metric), cp.get(metric)
        if b and c is not None and rel(b, c) > tol:
            failures.append((name, metric, b, c, 100.0 * rel(b, c)))

    b_err = base.get("failed", 0) + base.get("timed_out", 0)
    c_err = cur.get("failed", 0) + cur.get("timed_out", 0)
    if c_err > b_err:
        failures.append((name, "errors", b_err, c_err, float("inf")))


def cmd_check(args):
    doc = read_bench_doc(args.bench_output)
    profile = profile_of(doc)
    db = load_db(args.db)
    baseline = None
    if db is not None and db.get("figure") == doc["figure"]:
        for run in db.get("runs", []):
            if run.get("profile") == profile:
                baseline = run  # newest matching run wins
    if baseline is None:
        msg = ("bench_gate: no recorded baseline for figure %r profile %r"
               % (doc["figure"], profile))
        if args.require_baseline:
            raise SystemExit(msg)
        print(msg + " — nothing to gate against, passing")
        return 0

    base_by_name = {s["name"]: s for s in baseline["series"]}
    cur_by_name = {s["name"]: s for s in doc["series"]}
    failures = []
    matched = 0
    for name, cur in cur_by_name.items():
        base = base_by_name.get(name)
        if base is None:
            print("bench_gate: series %r has no baseline (new?)" % name)
            if args.require_same_series:
                failures.append((name, "missing-baseline", 0, 0, 0.0))
            continue
        matched += 1
        check_series(base, cur, args.tolerance, failures)
    for name in base_by_name:
        if name not in cur_by_name:
            print("bench_gate: baseline series %r absent from output" % name)
            if args.require_same_series:
                failures.append((name, "missing-series", 0, 0, 0.0))

    if failures:
        print("bench_gate: FAIL — %d regression(s) vs baseline @ %s "
              "(tolerance %.0f%%):"
              % (len(failures), baseline.get("recorded_at_commit", "?"),
                 100.0 * args.tolerance))
        for name, metric, b, c, pct in failures:
            print("  %-32s %-14s %10.3f -> %10.3f  (%+.1f%%)"
                  % (name, metric, float(b), float(c), pct))
        return 1
    print("bench_gate: OK — %d series within %.0f%% of baseline @ %s"
          % (matched, 100.0 * args.tolerance,
             baseline.get("recorded_at_commit", "?")))
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(prog="bench_gate")
    sub = ap.add_subparsers(dest="cmd", required=True)

    rec = sub.add_parser("record", help="append a run to the trajectory db")
    rec.add_argument("--bench-output", required=True,
                     help="bench stdout capture ('-' = stdin)")
    rec.add_argument("--db", required=True, help="trajectory JSON file")
    rec.add_argument("--commit", default=None,
                     help="override the recorded commit id")
    rec.set_defaults(func=cmd_record)

    chk = sub.add_parser("check", help="gate a run against the baseline")
    chk.add_argument("--bench-output", required=True,
                     help="bench stdout capture ('-' = stdin)")
    chk.add_argument("--db", required=True, help="trajectory JSON file")
    chk.add_argument("--tolerance", type=float, default=0.10,
                     help="allowed relative slack per gated metric "
                          "(default 0.10 = 10%%)")
    chk.add_argument("--require-baseline", action="store_true",
                     help="fail when the db has no run for this profile")
    chk.add_argument("--require-same-series", action="store_true",
                     help="fail on series present only on one side")
    chk.set_defaults(func=cmd_check)

    args = ap.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
