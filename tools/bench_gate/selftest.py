#!/usr/bin/env python3
"""Self-test for bench_gate: record/check round-trip, regression detection,
tolerance behavior, profile isolation. Run by ctest as bench_gate_selftest."""

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_gate  # noqa: E402

FAILED = 0


def check(name, cond):
    global FAILED
    if cond:
        print("  ok   %s" % name)
    else:
        print("  FAIL %s" % name)
        FAILED = 1


def bench_output(profile, kops, p99, failed=0, name="ycsb-A/zipfian/fanout"):
    doc = {
        "schema_version": 1,
        "figure": "ycsb",
        "series": [{
            "name": name,
            "profile": profile,
            "achieved_kops": kops,
            "failed": failed,
            "timed_out": 0,
            "points": [{"op": "all", "kops": kops, "p99_us": p99,
                        "p999_us": p99 * 1.5}],
        }],
    }
    return "noise line\nJSON: %s\n" % json.dumps(doc)


def write(path, text):
    with open(path, "w") as f:
        f.write(text)


def run(argv):
    try:
        return bench_gate.main(argv)
    except SystemExit as e:
        return e.code if isinstance(e.code, int) else 1


def main():
    tmp = tempfile.mkdtemp(prefix="bench_gate_selftest.")
    db = os.path.join(tmp, "BENCH_test.json")
    out = os.path.join(tmp, "bench.out")

    print("bench_gate selftest:")

    # No baseline: check passes unless --require-baseline.
    write(out, bench_output("smoke", 20.0, 15.0))
    check("no-baseline passes",
          run(["check", "--bench-output", out, "--db", db]) == 0)
    check("no-baseline fails with --require-baseline",
          run(["check", "--bench-output", out, "--db", db,
               "--require-baseline"]) != 0)

    # Record, then an identical run gates green.
    check("record succeeds",
          run(["record", "--bench-output", out, "--db", db,
               "--commit", "c0ffee"]) == 0)
    check("identical run passes",
          run(["check", "--bench-output", out, "--db", db,
               "--require-baseline"]) == 0)

    # Within tolerance: 5% slower throughput passes at 10%.
    write(out, bench_output("smoke", 19.0, 15.0))
    check("5% kops drop within 10% tolerance",
          run(["check", "--bench-output", out, "--db", db]) == 0)

    # Beyond tolerance: 20% slower throughput fails.
    write(out, bench_output("smoke", 16.0, 15.0))
    check("20% kops drop fails",
          run(["check", "--bench-output", out, "--db", db]) == 1)

    # p99 regression fails; improvement passes.
    write(out, bench_output("smoke", 20.0, 18.0))
    check("20% p99 growth fails",
          run(["check", "--bench-output", out, "--db", db]) == 1)
    write(out, bench_output("smoke", 22.0, 12.0))
    check("improvement passes",
          run(["check", "--bench-output", out, "--db", db]) == 0)

    # Any new errors fail, tolerance or not.
    write(out, bench_output("smoke", 20.0, 15.0, failed=3))
    check("new errors fail",
          run(["check", "--bench-output", out, "--db", db]) == 1)

    # Profile isolation: a 'full' run has no 'smoke' baseline.
    write(out, bench_output("full", 40.0, 15.0))
    check("other profile has no baseline",
          run(["check", "--bench-output", out, "--db", db,
               "--require-baseline"]) != 0)

    # Recording appends: the newest run of the profile is the baseline.
    write(out, bench_output("smoke", 30.0, 10.0))
    run(["record", "--bench-output", out, "--db", db, "--commit", "c0ffef"])
    with open(db) as f:
        trajectory = json.load(f)
    check("trajectory keeps both runs", len(trajectory["runs"]) == 2)
    write(out, bench_output("smoke", 29.0, 10.5))
    check("gates against newest run",
          run(["check", "--bench-output", out, "--db", db]) == 0)
    write(out, bench_output("smoke", 20.0, 15.0))
    check("old-baseline numbers now fail",
          run(["check", "--bench-output", out, "--db", db]) == 1)

    # Unknown series is reported but passes by default, fails when strict.
    write(out, bench_output("smoke", 30.0, 10.0, name="ycsb-Z/zipfian/fanout"))
    check("new series passes by default",
          run(["check", "--bench-output", out, "--db", db]) == 0)
    check("new series fails with --require-same-series",
          run(["check", "--bench-output", out, "--db", db,
               "--require-same-series"]) == 1)

    if FAILED:
        print("bench_gate selftest: FAILED")
        return 1
    print("bench_gate selftest: all passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
