#pragma once

// Shared helpers for the figure-reproduction harnesses: cluster builders
// for the three systems (TCP Redis, RDMA-Redis, SKV) and table printing.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "skv/cluster.hpp"
#include "workload/runner.hpp"

namespace skv::bench {

enum class System { kTcpRedis, kRdmaRedis, kSkv };

inline const char* name_of(System s) {
    switch (s) {
        case System::kTcpRedis: return "Redis";
        case System::kRdmaRedis: return "RDMA-Redis";
        case System::kSkv: return "SKV";
    }
    return "?";
}

/// Build a started cluster of the given system with `n_slaves` replicas.
inline std::unique_ptr<offload::Cluster> make_cluster(System sys, int n_slaves,
                                                      std::uint64_t seed = 42) {
    offload::ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = n_slaves;
    switch (sys) {
        case System::kTcpRedis:
            cfg.transport = server::Transport::kTcp;
            cfg.offload = false;
            break;
        case System::kRdmaRedis:
            cfg.transport = server::Transport::kRdma;
            cfg.offload = false;
            break;
        case System::kSkv:
            cfg.transport = server::Transport::kRdma;
            cfg.offload = true;
            break;
    }
    auto cluster = std::make_unique<offload::Cluster>(cfg);
    cluster->start();
    return cluster;
}

inline void print_header(const std::string& title,
                         const std::vector<std::string>& cols) {
    std::printf("\n== %s ==\n", title.c_str());
    for (const auto& c : cols) std::printf("%14s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%14s", "------------");
    std::printf("\n");
}

inline void print_cell(const char* s) { std::printf("%14s", s); }
inline void print_cell(double v) { std::printf("%14.1f", v); }
inline void print_cell(long long v) { std::printf("%14lld", v); }
inline void end_row() { std::printf("\n"); }

/// Machine-readable figure output, schema v1 (EXPERIMENTS.md, "Bench JSON
/// schema"): every figure binary ends with one `JSON: {...}` line built on
/// obs::JsonWriter, whose fixed snprintf float formatting makes the whole
/// document byte-stable across same-seed runs.
///
/// Document shape:
///   {"schema_version":1,"figure":"<name>",
///    "series":[{"name":"<series>",<optional scalars>,"points":[{...}]}]}
///
/// Call order per series: begin_series(name) -> optional kv()s on the
/// returned writer -> begin_points() -> {point()/end_point()}* ->
/// end_series(). Finish the document with emit().
class FigureJson {
public:
    explicit FigureJson(std::string_view figure) {
        w_.begin_object().kv("schema_version", 1).kv("figure", figure);
        w_.key("series").begin_array();
    }
    obs::JsonWriter& begin_series(std::string_view name) {
        w_.begin_object().kv("name", name);
        return w_;
    }
    void begin_points() { w_.key("points").begin_array(); }
    obs::JsonWriter& point() {
        w_.begin_object();
        return w_;
    }
    void end_point() { w_.end_object(); }
    void end_series() { w_.end_array().end_object(); }
    void emit() {
        w_.end_array().end_object();
        obs::print_bench_json(w_);
    }

private:
    obs::JsonWriter w_;
};

/// The standard per-run fields every figure's points carry for a RunResult.
inline void add_run_fields(obs::JsonWriter& w, const workload::RunResult& r) {
    w.kv("kops", r.throughput_kops)
        .kv("mean_us", r.mean_us)
        .kv("p50_us", r.p50_us)
        .kv("p95_us", r.p95_us)
        .kv("p99_us", r.p99_us)
        .kv("p999_us", r.p999_us)
        .kv("ops", r.ops)
        .kv("errors", r.errors)
        .kv("cpu_util", r.master_cpu_util);
}

/// Nested "stages" object from a tracer-backed per-stage breakdown.
inline void add_stage_fields(obs::JsonWriter& w,
                             const workload::StageBreakdown& s) {
    w.key("stages").begin_object();
    w.kv("requests", s.requests)
        .kv("e2e_us", s.e2e_us)
        .kv("rdma_write_us", s.rdma_write_us)
        .kv("master_apply_us", s.master_apply_us)
        .kv("reply_us", s.reply_us)
        .kv("critical_sum_us", s.critical_sum_us)
        .kv("offload_request_us", s.offload_request_us)
        .kv("nic_fanout_us", s.nic_fanout_us)
        .kv("slave_ack_us", s.slave_ack_us);
    w.end_object();
}

/// `--trace <path>`: dump the cluster's chrome://tracing span JSON after
/// the run (README, "Dumping a trace"). Returns true when a dump happened.
inline bool maybe_dump_trace(int argc, char** argv,
                             offload::Cluster& cluster) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            const std::string path = argv[i + 1];
            if (obs::write_chrome_trace(cluster.tracer(), path)) {
                std::fprintf(stderr, "chrome trace written to %s\n",
                             path.c_str());
                return true;
            }
            std::fprintf(stderr, "failed to write chrome trace to %s\n",
                         path.c_str());
        }
    }
    return false;
}

} // namespace skv::bench
