#pragma once

// Shared helpers for the figure-reproduction harnesses: cluster builders
// for the three systems (TCP Redis, RDMA-Redis, SKV) and table printing.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "skv/cluster.hpp"
#include "workload/runner.hpp"

namespace skv::bench {

enum class System { kTcpRedis, kRdmaRedis, kSkv };

inline const char* name_of(System s) {
    switch (s) {
        case System::kTcpRedis: return "Redis";
        case System::kRdmaRedis: return "RDMA-Redis";
        case System::kSkv: return "SKV";
    }
    return "?";
}

/// Build a started cluster of the given system with `n_slaves` replicas.
inline std::unique_ptr<offload::Cluster> make_cluster(System sys, int n_slaves,
                                                      std::uint64_t seed = 42) {
    offload::ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = n_slaves;
    switch (sys) {
        case System::kTcpRedis:
            cfg.transport = server::Transport::kTcp;
            cfg.offload = false;
            break;
        case System::kRdmaRedis:
            cfg.transport = server::Transport::kRdma;
            cfg.offload = false;
            break;
        case System::kSkv:
            cfg.transport = server::Transport::kRdma;
            cfg.offload = true;
            break;
    }
    auto cluster = std::make_unique<offload::Cluster>(cfg);
    cluster->start();
    return cluster;
}

inline void print_header(const std::string& title,
                         const std::vector<std::string>& cols) {
    std::printf("\n== %s ==\n", title.c_str());
    for (const auto& c : cols) std::printf("%14s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%14s", "------------");
    std::printf("\n");
}

inline void print_cell(const char* s) { std::printf("%14s", s); }
inline void print_cell(double v) { std::printf("%14.1f", v); }
inline void print_cell(long long v) { std::printf("%14lld", v); }
inline void end_row() { std::printf("\n"); }

} // namespace skv::bench
