// Ablation (paper §III-C): the thread-num parameter — multi-threaded
// replication on the SmartNIC's ARM cores.
//
// Paper claims: (1) since replication runs in the background, NIC-side
// multi-threading does not materially change client-visible performance;
// (2) it spreads the fan-out work across ARM cores, accelerating
// replication when one core would run hot (useful when consistency
// freshness matters); (3) the effective thread count is clamped to
// min(ARM cores, slaves). Verified with 16 KB values, the heaviest
// fan-out load in the evaluation.

#include "bench_common.hpp"

using namespace skv;
using namespace skv::bench;

namespace {

struct Point {
    int threads;
    int effective;
    workload::RunResult r;
    double lag_bytes;
    double nic_core0_util;
};

Point run_with_threads(int threads, std::size_t value_bytes, int n_slaves) {
    offload::ClusterConfig cfg;
    cfg.n_slaves = n_slaves;
    cfg.transport = server::Transport::kRdma;
    cfg.offload = true;
    cfg.nic_cfg.thread_num = threads;
    auto cluster = std::make_unique<offload::Cluster>(cfg);
    cluster->start();

    workload::RunOptions opts;
    opts.clients = 8;
    opts.spec.set_ratio = 1.0;
    opts.spec.value_bytes = value_bytes;
    opts.measure = sim::seconds(2);
    auto r = workload::run_workload(*cluster, opts);

    Point p;
    p.threads = threads;
    p.effective = cluster->nic_kv()->effective_threads();
    p.r = r;
    p.lag_bytes = static_cast<double>(cluster->master().master_offset() -
                                      cluster->nic_kv()->fanout_offset());
    p.nic_core0_util = cluster->smartnic()->core(0).utilization();
    return p;
}

} // namespace

int main() {
    constexpr std::size_t kValue = 16 * 1024; // stresses the single ARM core

    std::vector<Point> points;
    for (const int t : {1, 2, 4, 8, 16}) {
        points.push_back(run_with_threads(t, kValue, 3));
    }

    print_header("Ablation: NIC replication threads (16 KB values, 3 slaves)",
                 {"threads", "effective", "tput kops/s", "lag MB", "arm0 %"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.threads));
        print_cell(static_cast<long long>(p.effective));
        print_cell(p.r.throughput_kops);
        print_cell(p.lag_bytes / 1e6);
        print_cell(p.nic_core0_util * 100.0);
        end_row();
    }

    std::printf("\nchecks:\n");
    std::printf("  effective threads clamped to min(cores=8, slaves=3): %s\n",
                points.back().effective == 3 ? "yes" : "NO");
    std::printf("  client throughput varies only %+.1f%% from 1 thread to max "
                "(replication is background work)\n",
                100.0 * (points.back().r.throughput_kops /
                             points.front().r.throughput_kops -
                         1.0));
    std::printf("  fan-out spread across cores: arm0 utilization %.0f%% -> "
                "%.0f%%; replication lag stays bounded (%.1f MB max)\n",
                points.front().nic_core0_util * 100.0,
                points.back().nic_core0_util * 100.0,
                std::max_element(points.begin(), points.end(),
                                 [](const Point& a, const Point& b) {
                                     return a.lag_bytes < b.lag_bytes;
                                 })
                    ->lag_bytes /
                    1e6);

    FigureJson j("ablation_threads");
    j.begin_series("SKV");
    j.begin_points();
    for (const auto& p : points) {
        auto& w = j.point();
        w.kv("threads", p.threads).kv("effective_threads", p.effective);
        add_run_fields(w, p.r);
        w.kv("lag_mb", p.lag_bytes / 1e6)
            .kv("arm0_util", p.nic_core0_util);
        j.end_point();
    }
    j.end_series();
    j.emit();
    return 0;
}
