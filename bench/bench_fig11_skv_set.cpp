// Figure 11: SKV vs RDMA-Redis executing SET commands with one master and
// three slaves, at 4/8/16 concurrent clients: throughput, average latency
// and 99% tail latency.
//
// Paper shape: little difference at 4 clients; at 8 clients SKV delivers
// ~14% more throughput, ~14% lower average latency and ~21% lower tail
// latency, because the master posts one work request per SET instead of
// one per slave.

#include "bench_common.hpp"

using namespace skv;
using namespace skv::bench;

int main() {
    const int client_counts[] = {4, 8, 16};

    struct Point {
        int clients;
        workload::RunResult base;
        workload::RunResult skv;
    };
    std::vector<Point> points;

    for (const int n : client_counts) {
        workload::RunOptions opts;
        opts.clients = n;
        opts.spec.set_ratio = 1.0;
        opts.spec.value_bytes = 64;
        opts.measure = sim::seconds(2);

        auto base = make_cluster(System::kRdmaRedis, 3);
        auto skv = make_cluster(System::kSkv, 3);
        points.push_back(Point{n, workload::run_workload(*base, opts),
                               workload::run_workload(*skv, opts)});
    }

    print_header("Fig. 11: SET throughput, 1 master + 3 slaves (kops/s)",
                 {"clients", "RDMA-Redis", "SKV", "gain%"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.clients));
        print_cell(p.base.throughput_kops);
        print_cell(p.skv.throughput_kops);
        print_cell(100.0 * (p.skv.throughput_kops / p.base.throughput_kops - 1.0));
        end_row();
    }

    print_header("Fig. 11: SET average latency (us)",
                 {"clients", "RDMA-Redis", "SKV", "reduction%"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.clients));
        print_cell(p.base.mean_us);
        print_cell(p.skv.mean_us);
        print_cell(100.0 * (1.0 - p.skv.mean_us / p.base.mean_us));
        end_row();
    }

    print_header("Fig. 11: SET p99 tail latency (us)",
                 {"clients", "RDMA-Redis", "SKV", "reduction%"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.clients));
        print_cell(p.base.p99_us);
        print_cell(p.skv.p99_us);
        print_cell(100.0 * (1.0 - p.skv.p99_us / p.base.p99_us));
        end_row();
    }
    return 0;
}
