// Figure 11: SKV vs RDMA-Redis executing SET commands with one master and
// three slaves, at 4/8/16 concurrent clients: throughput, average latency
// and 99% tail latency.
//
// Paper shape: little difference at 4 clients; at 8 clients SKV delivers
// ~14% more throughput, ~14% lower average latency and ~21% lower tail
// latency, because the master posts one work request per SET instead of
// one per slave.
//
// Runs with the command-lifecycle tracer on, so each SKV row also reports
// where the microseconds go: RDMA write, master apply, reply back to the
// client (the critical path — these must tile the end-to-end mean), plus
// the offloaded replication legs that overlap the reply. Pass
// `--trace out.json` to dump the last SKV run as chrome://tracing JSON.

#include <cmath>

#include "bench_common.hpp"

using namespace skv;
using namespace skv::bench;

int main(int argc, char** argv) {
    const int client_counts[] = {4, 8, 16};

    struct Point {
        int clients;
        workload::RunResult base;
        workload::RunResult skv;
    };
    std::vector<Point> points;
    std::unique_ptr<offload::Cluster> last_skv;

    for (const int n : client_counts) {
        workload::RunOptions opts;
        opts.clients = n;
        opts.spec.set_ratio = 1.0;
        opts.spec.value_bytes = 64;
        opts.measure = sim::seconds(2);
        opts.trace_stages = true;

        auto base = make_cluster(System::kRdmaRedis, 3);
        auto skv = make_cluster(System::kSkv, 3);
        points.push_back(Point{n, workload::run_workload(*base, opts),
                               workload::run_workload(*skv, opts)});
        last_skv = std::move(skv);
    }

    print_header("Fig. 11: SET throughput, 1 master + 3 slaves (kops/s)",
                 {"clients", "RDMA-Redis", "SKV", "gain%"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.clients));
        print_cell(p.base.throughput_kops);
        print_cell(p.skv.throughput_kops);
        print_cell(100.0 * (p.skv.throughput_kops / p.base.throughput_kops - 1.0));
        end_row();
    }

    print_header("Fig. 11: SET average latency (us)",
                 {"clients", "RDMA-Redis", "SKV", "reduction%"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.clients));
        print_cell(p.base.mean_us);
        print_cell(p.skv.mean_us);
        print_cell(100.0 * (1.0 - p.skv.mean_us / p.base.mean_us));
        end_row();
    }

    print_header("Fig. 11: SET p99 tail latency (us)",
                 {"clients", "RDMA-Redis", "SKV", "reduction%"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.clients));
        print_cell(p.base.p99_us);
        print_cell(p.skv.p99_us);
        print_cell(100.0 * (1.0 - p.skv.p99_us / p.base.p99_us));
        end_row();
    }

    // Where the microseconds go (tracer stage accumulators, means over the
    // measurement window). The three critical-path stages are defined over
    // the same request population as the end-to-end mean, so their sum must
    // land within 1% of it — anything larger means the tracer lost or
    // double-counted a stage.
    print_header("Fig. 11: SKV SET per-stage latency breakdown (us)",
                 {"clients", "rdma_write", "mst_apply", "reply", "sum",
                  "e2e", "diff%"});
    bool stages_ok = true;
    for (const auto& p : points) {
        const auto& s = p.skv.stages;
        if (!s.valid) {
            stages_ok = false;
            continue;
        }
        const double diff_pct =
            100.0 * (s.critical_sum_us / s.e2e_us - 1.0);
        if (std::abs(diff_pct) > 1.0) stages_ok = false;
        print_cell(static_cast<long long>(p.clients));
        print_cell(s.rdma_write_us);
        print_cell(s.master_apply_us);
        print_cell(s.reply_us);
        print_cell(s.critical_sum_us);
        print_cell(s.e2e_us);
        std::printf("%14.3f", diff_pct);
        end_row();
    }

    // The offloaded legs overlap the reply (the master acks the client
    // before the NIC finishes the fan-out), so they are reported alongside,
    // not summed into the critical path.
    print_header("Fig. 11: SKV async replication legs (us)",
                 {"clients", "offload_req", "nic_fanout", "slave_ack"});
    for (const auto& p : points) {
        const auto& s = p.skv.stages;
        if (!s.valid) continue;
        print_cell(static_cast<long long>(p.clients));
        print_cell(s.offload_request_us);
        print_cell(s.nic_fanout_us);
        print_cell(s.slave_ack_us);
        end_row();
    }

    std::printf("\ncheck: critical stages (rdma_write + master_apply + "
                "reply) sum to within 1%% of the measured end-to-end mean "
                "on every row: %s\n",
                stages_ok ? "yes" : "NO");

    FigureJson j("fig11_skv_set");
    j.begin_series("RDMA-Redis");
    j.begin_points();
    for (const auto& p : points) {
        auto& w = j.point();
        w.kv("clients", p.clients);
        add_run_fields(w, p.base);
        j.end_point();
    }
    j.end_series();
    j.begin_series("SKV");
    j.begin_points();
    for (const auto& p : points) {
        auto& w = j.point();
        w.kv("clients", p.clients);
        add_run_fields(w, p.skv);
        if (p.skv.stages.valid) add_stage_fields(w, p.skv.stages);
        j.end_point();
    }
    j.end_series();
    j.emit();

    maybe_dump_trace(argc, argv, *last_skv);
    return stages_ok ? 0 : 1;
}
