// Figure 13: GET performance, SKV vs RDMA-Redis, one master + three
// slaves, 4/8/16 clients.
//
// Paper shape: no difference — GETs are never replicated, so the
// offloading design cannot help read-only traffic. Both sit around the
// same saturated throughput at 8/16 connections.

#include "bench_common.hpp"

using namespace skv;
using namespace skv::bench;

int main() {
    const int client_counts[] = {4, 8, 16};

    struct Point {
        int clients;
        workload::RunResult base;
        workload::RunResult skv;
    };
    std::vector<Point> points;

    for (const int n : client_counts) {
        workload::RunOptions opts;
        opts.clients = n;
        opts.spec.set_ratio = 0.0; // pure GET
        opts.spec.value_bytes = 64;
        opts.spec.key_count = 10'000;
        opts.preload = true;
        opts.measure = sim::seconds(2);

        auto base = make_cluster(System::kRdmaRedis, 3);
        auto skv = make_cluster(System::kSkv, 3);
        points.push_back(Point{n, workload::run_workload(*base, opts),
                               workload::run_workload(*skv, opts)});
    }

    print_header("Fig. 13: GET throughput, 1 master + 3 slaves (kops/s)",
                 {"clients", "RDMA-Redis", "SKV", "delta%"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.clients));
        print_cell(p.base.throughput_kops);
        print_cell(p.skv.throughput_kops);
        print_cell(100.0 * (p.skv.throughput_kops / p.base.throughput_kops - 1.0));
        end_row();
    }

    print_header("Fig. 13: GET latency (us)",
                 {"clients", "base avg", "skv avg", "base p99", "skv p99"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.clients));
        print_cell(p.base.mean_us);
        print_cell(p.skv.mean_us);
        print_cell(p.base.p99_us);
        print_cell(p.skv.p99_us);
        end_row();
    }

    FigureJson j("fig13_skv_get");
    const struct {
        const char* name;
        workload::RunResult Point::* field;
    } series[] = {{"RDMA-Redis", &Point::base}, {"SKV", &Point::skv}};
    for (const auto& s : series) {
        j.begin_series(s.name);
        j.begin_points();
        for (const auto& p : points) {
            auto& w = j.point();
            w.kv("clients", p.clients);
            add_run_fields(w, p.*(s.field));
            j.end_point();
        }
        j.end_series();
    }
    j.emit();
    return 0;
}
