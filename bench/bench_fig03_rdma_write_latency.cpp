// Figure 3: RDMA WRITE latency between (a) two hosts, (b) a remote host
// and the local SmartNIC, and (c) the local host and its own SmartNIC,
// across payload sizes.
//
// Paper shape: the off-path SmartNIC behaves like a separate endpoint on
// the network — writing to it from the local host is only a little faster
// than writing to another host, because the message still crosses the
// NIC's full network stack. (This is why SKV must avoid chatty
// host<->NIC interactions.)

#include <memory>

#include "bench_common.hpp"
#include "rdma/verbs.hpp"

using namespace skv;
using namespace skv::bench;

namespace {

/// Ping-pong WRITE latency between two endpoints: post a signaled WRITE,
/// wait for the completion, repeat. Returns the mean one-way post-to-
/// completion latency in microseconds.
double write_latency_us(sim::Simulation& sim, rdma::RdmaNetwork& net,
                        net::NodeRef a, net::NodeRef b, std::size_t bytes,
                        int iters) {
    auto cq_a = std::make_shared<rdma::CompletionQueue>();
    auto rq_a = std::make_shared<rdma::CompletionQueue>();
    auto cq_b = std::make_shared<rdma::CompletionQueue>();
    auto rq_b = std::make_shared<rdma::CompletionQueue>();
    auto qp_a = std::make_shared<rdma::QueuePair>(net, a, cq_a, rq_a);
    auto qp_b = std::make_shared<rdma::QueuePair>(net, b, cq_b, rq_b);
    qp_a->connect_to(qp_b);
    qp_b->connect_to(qp_a);
    auto mr = net.register_mr(b, 1 << 20);

    sim::LatencyHistogram hist;
    const std::string payload(bytes, 'w');
    for (int i = 0; i < iters; ++i) {
        const sim::SimTime t0 = sim.now();
        rdma::SendWr wr;
        wr.wr_id = static_cast<std::uint64_t>(i);
        wr.op = rdma::Opcode::kWrite;
        wr.payload = payload;
        wr.rkey = mr->rkey();
        wr.remote_offset = 0;
        qp_a->post_send(std::move(wr));
        sim.run(); // drain: the write flies, the ACK returns
        hist.record(sim.now() - t0);
        (void)cq_a->poll();
    }
    return hist.mean_us();
}

} // namespace

int main() {
    const std::size_t sizes[] = {8, 64, 256, 1024, 4096};
    constexpr int kIters = 200;

    cpu::CostModel costs;
    sim::Simulation sim(7);
    net::Fabric fabric(sim);
    rdma::RdmaNetwork net(sim, fabric, costs);

    const auto h1 = fabric.add_host("host1");
    const auto h2 = fabric.add_host("host2");
    cpu::Core c1(sim, "host1/cpu");
    cpu::Core c2(sim, "host2/cpu");
    nic::SmartNic bf2(sim, fabric, h1, "host1/bf2");

    const net::NodeRef n1{h1, &c1};
    const net::NodeRef n2{h2, &c2};
    const net::NodeRef nn = bf2.node(0);

    struct Row {
        std::size_t bytes;
        double host_host_us;
        double remote_nic_us;
        double local_nic_us;
    };
    std::vector<Row> rows;
    for (const std::size_t sz : sizes) {
        rows.push_back(Row{sz, write_latency_us(sim, net, n1, n2, sz, kIters),
                           write_latency_us(sim, net, n2, nn, sz, kIters),
                           write_latency_us(sim, net, n1, nn, sz, kIters)});
    }

    print_header("Fig. 3: RDMA WRITE latency (us)",
                 {"size(B)", "host->host", "remote->nic", "local->nic"});
    for (const auto& r : rows) {
        print_cell(static_cast<long long>(r.bytes));
        print_cell(r.host_host_us);
        print_cell(r.remote_nic_us);
        print_cell(r.local_nic_us);
        end_row();
    }
    std::printf(
        "\nshape check: local->nic is only a little lower than host->host\n"
        "(the SmartNIC is effectively a separate network endpoint).\n");

    FigureJson j("fig03_rdma_write_latency");
    const struct {
        const char* name;
        double Row::* field;
    } series[] = {{"host->host", &Row::host_host_us},
                  {"remote->nic", &Row::remote_nic_us},
                  {"local->nic", &Row::local_nic_us}};
    for (const auto& s : series) {
        j.begin_series(s.name);
        j.begin_points();
        for (const auto& r : rows) {
            j.point()
                .kv("bytes", static_cast<std::uint64_t>(r.bytes))
                .kv("latency_us", r.*(s.field));
            j.end_point();
        }
        j.end_series();
    }
    j.emit();
    return 0;
}
