// Figure 7: the motivation experiment — performance degradation of the
// RDMA-Redis master when slaves are attached (host-side replication
// fan-out). SET commands, 4 clients, slave counts 0/1/3/5.
//
// Paper shape: with 3 slaves both average and tail latency rise, the tail
// by more than 25% (it rises much more sharply than the average), and
// throughput drops significantly — the master burns CPU posting one work
// request per slave per SET. Measured at the 4-client knee, where the
// averages are not yet fully queueing-dominated, as in the paper.

#include "bench_common.hpp"

using namespace skv;
using namespace skv::bench;

int main() {
    workload::RunOptions opts;
    opts.clients = 4;
    opts.spec.set_ratio = 1.0;
    opts.spec.value_bytes = 64;
    opts.measure = sim::seconds(2);

    struct Point {
        int slaves;
        workload::RunResult r;
    };
    std::vector<Point> points;
    for (const int n_slaves : {0, 1, 3, 5}) {
        auto cluster = make_cluster(System::kRdmaRedis, n_slaves);
        points.push_back(Point{n_slaves, workload::run_workload(*cluster, opts)});
    }

    print_header("Fig. 7: RDMA-Redis SET degradation vs slave count",
                 {"slaves", "tput kops/s", "avg us", "p99 us", "cpu%"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.slaves));
        print_cell(p.r.throughput_kops);
        print_cell(p.r.mean_us);
        print_cell(p.r.p99_us);
        print_cell(p.r.master_cpu_util * 100.0);
        end_row();
    }

    const auto& none = points[0].r;
    const auto& three = points[2].r;
    std::printf("\n3 slaves vs none: tput %+.1f%%, avg latency %+.1f%%, "
                "p99 latency %+.1f%% (paper: tail rises by more than 25%%)\n",
                100.0 * (three.throughput_kops / none.throughput_kops - 1.0),
                100.0 * (three.mean_us / none.mean_us - 1.0),
                100.0 * (three.p99_us / none.p99_us - 1.0));

    FigureJson j("fig07_slave_degradation");
    j.begin_series("RDMA-Redis");
    j.begin_points();
    for (const auto& p : points) {
        auto& w = j.point();
        w.kv("slaves", p.slaves);
        add_run_fields(w, p.r);
        j.end_point();
    }
    j.end_series();
    j.emit();
    return 0;
}
