// Ablation (paper §II/§IV-A): how weak can the SmartNIC cores get before
// offloading stops paying? The paper's design rests on offloading only
// background work because the ARM cores are "much weaker" than the host's.
// We sweep the ARM-core slowdown factor and report SKV's gain over
// RDMA-Redis plus the replication lag — the regime where the NIC can no
// longer drain the stream is exactly why SKV does NOT store data on the
// NIC or put it on the client-facing path.

#include "bench_common.hpp"

using namespace skv;
using namespace skv::bench;

int main() {
    workload::RunOptions opts;
    opts.clients = 8;
    opts.spec.set_ratio = 1.0;
    opts.spec.value_bytes = 1024;
    opts.measure = sim::seconds(2);

    // Baseline once: it has no SmartNIC.
    auto base_cluster = make_cluster(System::kRdmaRedis, 3);
    const auto base = workload::run_workload(*base_cluster, opts);

    struct Point {
        double slowdown;
        workload::RunResult r;
        double lag_bytes;
        double arm0_util;
    };
    std::vector<Point> points;
    for (const double slow : {1.0, 2.5, 5.0, 10.0, 20.0}) {
        offload::ClusterConfig cfg;
        cfg.n_slaves = 3;
        cfg.transport = server::Transport::kRdma;
        cfg.offload = true;
        cfg.costs.nic_core_slowdown = slow;
        auto cluster = std::make_unique<offload::Cluster>(cfg);
        cluster->start();
        const auto r = workload::run_workload(*cluster, opts);
        const double lag = static_cast<double>(
            cluster->master().master_offset() - cluster->nic_kv()->fanout_offset());
        points.push_back(
            Point{slow, r, lag, cluster->smartnic()->core(0).utilization()});
    }

    print_header("Ablation: ARM core slowdown sweep (1 KB values, 3 slaves)",
                 {"slowdown", "SKV kops/s", "gain%", "lag MB", "arm0 %"});
    for (const auto& p : points) {
        print_cell(p.slowdown);
        print_cell(p.r.throughput_kops);
        print_cell(100.0 * (p.r.throughput_kops / base.throughput_kops - 1.0));
        print_cell(p.lag_bytes / 1e6);
        print_cell(p.arm0_util * 100.0);
        end_row();
    }
    std::printf("\nclient-visible throughput stays ahead of the baseline "
                "(%.1f kops/s) even with very weak cores — but the growing\n"
                "replication lag shows the offload becoming unsustainable, "
                "which is why SKV offloads only background work.\n",
                base.throughput_kops);

    FigureJson j("ablation_slowdown");
    auto& bw = j.begin_series("RDMA-Redis baseline");
    bw.kv("note", "no SmartNIC; slowdown does not apply");
    j.begin_points();
    {
        auto& w = j.point();
        add_run_fields(w, base);
        j.end_point();
    }
    j.end_series();
    j.begin_series("SKV");
    j.begin_points();
    for (const auto& p : points) {
        auto& w = j.point();
        w.kv("slowdown", p.slowdown);
        add_run_fields(w, p.r);
        w.kv("lag_mb", p.lag_bytes / 1e6).kv("arm0_util", p.arm0_util);
        j.end_point();
    }
    j.end_series();
    j.emit();
    return 0;
}
