// Ablation (paper §II/§IV-A): how weak can the SmartNIC cores get before
// offloading stops paying? The paper's design rests on offloading only
// background work because the ARM cores are "much weaker" than the host's.
// We sweep the ARM-core slowdown factor and report SKV's gain over
// RDMA-Redis plus the replication lag — the regime where the NIC can no
// longer drain the stream is exactly why SKV does NOT store data on the
// NIC or put it on the client-facing path.

#include "bench_common.hpp"

using namespace skv;
using namespace skv::bench;

int main() {
    workload::RunOptions opts;
    opts.clients = 8;
    opts.spec.set_ratio = 1.0;
    opts.spec.value_bytes = 1024;
    opts.measure = sim::seconds(2);

    // Baseline once: it has no SmartNIC.
    auto base_cluster = make_cluster(System::kRdmaRedis, 3);
    const auto base = workload::run_workload(*base_cluster, opts);

    print_header("Ablation: ARM core slowdown sweep (1 KB values, 3 slaves)",
                 {"slowdown", "SKV kops/s", "gain%", "lag MB", "arm0 %"});
    for (const double slow : {1.0, 2.5, 5.0, 10.0, 20.0}) {
        offload::ClusterConfig cfg;
        cfg.n_slaves = 3;
        cfg.transport = server::Transport::kRdma;
        cfg.offload = true;
        cfg.costs.nic_core_slowdown = slow;
        auto cluster = std::make_unique<offload::Cluster>(cfg);
        cluster->start();
        const auto r = workload::run_workload(*cluster, opts);
        const double lag = static_cast<double>(
            cluster->master().master_offset() - cluster->nic_kv()->fanout_offset());
        print_cell(slow);
        print_cell(r.throughput_kops);
        print_cell(100.0 * (r.throughput_kops / base.throughput_kops - 1.0));
        print_cell(lag / 1e6);
        print_cell(cluster->smartnic()->core(0).utilization() * 100.0);
        end_row();
    }
    std::printf("\nclient-visible throughput stays ahead of the baseline "
                "(%.1f kops/s) even with very weak cores — but the growing\n"
                "replication lag shows the offload becoming unsustainable, "
                "which is why SKV offloads only background work.\n",
                base.throughput_kops);
    return 0;
}
