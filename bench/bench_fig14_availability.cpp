// Figure 14: availability under slave failure. SET load against the SKV
// master while one slave's Host-KV crashes at t=4s and recovers at t=9s.
//
// Paper shape: Nic-KV's probes detect the failure within waiting-time,
// mark the node invalid in the node list, and stop replicating to it;
// master throughput stays above 300 kops/s (here: above ~90% of the
// healthy level) and the client never notices. On recovery the invalid
// flag is cleared and replication resumes (with a NIC-arranged partial
// resync for the bytes missed while down).

#include "bench_common.hpp"

using namespace skv;
using namespace skv::bench;

int main() {
    auto cluster = make_cluster(System::kSkv, 3);

    workload::RunOptions opts;
    opts.clients = 16;
    opts.spec.set_ratio = 1.0;
    opts.spec.value_bytes = 64;
    opts.measure = sim::seconds(12);
    opts.timeline_bin = sim::milliseconds(500);
    // Crash slave 1 at t=4s; recover it at t=9s (paper timeline).
    opts.faults.push_back({sim::seconds(4), 1, false});
    opts.faults.push_back({sim::seconds(9), 1, true});

    const auto r = workload::run_workload(*cluster, opts);

    print_header("Fig. 14: SKV throughput during slave failure/recovery",
                 {"t(s)", "kops/s"});
    double healthy = 0;
    for (std::size_t i = 0; i < r.timeline_kops.size(); ++i) {
        const double t = static_cast<double>(i) * 0.5;
        if (t >= 12.0) break;
        std::printf("%14.1f%14.1f\n", t, r.timeline_kops[i]);
        if (t < 3.5) healthy = std::max(healthy, r.timeline_kops[i]);
    }

    double min_during = 1e18;
    for (std::size_t i = 8; i < 18 && i < r.timeline_kops.size(); ++i) {
        min_during = std::min(min_during, r.timeline_kops[i]);
    }
    std::printf("\nhealthy throughput ~%.0f kops/s; minimum during the "
                "failure window %.0f kops/s (%.0f%% of healthy)\n",
                healthy, min_during, 100.0 * min_during / healthy);
    std::printf("failure detector: %llu failures detected, %llu recoveries, "
                "%llu resyncs requested\n",
                static_cast<unsigned long long>(
                    cluster->nic_kv()->stats().counter("failures_detected")),
                static_cast<unsigned long long>(
                    cluster->nic_kv()->stats().counter("recoveries_detected")),
                static_cast<unsigned long long>(
                    cluster->nic_kv()->stats().counter("resyncs_requested")));

    // Drain and check the recovered slave converged again.
    cluster->sim().run_until(cluster->sim().now() + sim::seconds(2));
    std::printf("slave1 re-converged after recovery: %s\n",
                cluster->slave(1).slave_applied_offset() ==
                        cluster->master().master_offset()
                    ? "yes"
                    : "NO");
    return 0;
}
