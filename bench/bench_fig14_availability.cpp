// Figure 14: availability under slave failure. SET load against the SKV
// master while one slave's Host-KV crashes at t=4s and recovers at t=9s.
//
// Paper shape: Nic-KV's probes detect the failure within waiting-time,
// mark the node invalid in the node list, and stop replicating to it;
// master throughput stays above 300 kops/s (here: above ~90% of the
// healthy level) and the client never notices. On recovery the invalid
// flag is cleared and replication resumes (with a NIC-arranged partial
// resync for the bytes missed while down).
//
// Two variants run back to back: the paper's clean-crash timeline, and the
// same timeline with 1% message loss injected on every replication link
// (NIC <-> slave and master <-> slave). The reliable node-message layer
// retransmits through the loss, so the availability shape should survive
// with no false failovers on the healthy slaves. A JSON summary of both
// variants is emitted at the end for plotting.

// A third family of variants exercises the worst case: the *master* host
// crashes and stays down. Retrying clients (per-op deadlines, capped
// backoff, WSEQ duplicate-suppression tokens) ride the Nic-KV failover
// onto the promoted stand-in; each variant reports the availability gap
// (time from the last pre-crash successful SET to the first post-crash
// successful SET) and an acked-write-loss audit (acknowledged writes the
// promoted stand-in does not hold). The family runs once per replication
// protocol — fanout, chain, quorum (DESIGN.md §13) — since failover
// semantics are exactly where the protocols differ.

#include <algorithm>
#include <map>

#include "bench_common.hpp"
#include "check/history.hpp"
#include "net/fault.hpp"
#include "workload/retry_client.hpp"

using namespace skv;
using namespace skv::bench;

namespace {

struct VariantResult {
    std::string name;
    std::vector<double> timeline_kops;
    double healthy = 0;
    double min_during = 1e18;
    unsigned long long failures = 0;
    unsigned long long recoveries = 0;
    unsigned long long resyncs = 0;
    unsigned long long fault_drops = 0;
    bool reconverged = false;
};

VariantResult run_variant(const std::string& name, double repl_drop_prob) {
    auto cluster = make_cluster(System::kSkv, 3);

    if (repl_drop_prob > 0) {
        net::FaultSpec loss;
        loss.drop_prob = repl_drop_prob;
        auto& faults = cluster->fabric().faults();
        const auto nic_ep = cluster->nic_kv()->endpoint();
        const auto master_ep = cluster->master().node().ep;
        for (int i = 0; i < cluster->slave_count(); ++i) {
            const auto slave_ep = cluster->slave(i).node().ep;
            faults.set_link(nic_ep, slave_ep, loss);
            faults.set_link(master_ep, slave_ep, loss);
        }
    }

    workload::RunOptions opts;
    opts.clients = 16;
    opts.spec.set_ratio = 1.0;
    opts.spec.value_bytes = 64;
    opts.measure = sim::seconds(12);
    opts.timeline_bin = sim::milliseconds(500);
    // Crash slave 1 at t=4s; recover it at t=9s (paper timeline).
    opts.faults.push_back({sim::seconds(4), 1, false});
    opts.faults.push_back({sim::seconds(9), 1, true});

    const auto r = workload::run_workload(*cluster, opts);

    VariantResult out;
    out.name = name;
    out.timeline_kops = r.timeline_kops;

    print_header("Fig. 14 (" + name +
                     "): SKV throughput during slave failure/recovery",
                 {"t(s)", "kops/s"});
    for (std::size_t i = 0; i < r.timeline_kops.size(); ++i) {
        const double t = static_cast<double>(i) * 0.5;
        if (t >= 12.0) break;
        std::printf("%14.1f%14.1f\n", t, r.timeline_kops[i]);
        if (t < 3.5) out.healthy = std::max(out.healthy, r.timeline_kops[i]);
    }
    for (std::size_t i = 8; i < 18 && i < r.timeline_kops.size(); ++i) {
        out.min_during = std::min(out.min_during, r.timeline_kops[i]);
    }

    auto& nic_stats = cluster->nic_kv()->stats();
    out.failures = nic_stats.counter("failures_detected");
    out.recoveries = nic_stats.counter("recoveries_detected");
    out.resyncs = nic_stats.counter("resyncs_requested");
    if (cluster->fabric().has_faults()) {
        out.fault_drops = cluster->fabric().faults().stats().counter("drops");
    }

    std::printf("\nhealthy throughput ~%.0f kops/s; minimum during the "
                "failure window %.0f kops/s (%.0f%% of healthy)\n",
                out.healthy, out.min_during,
                100.0 * out.min_during / out.healthy);
    std::printf("failure detector: %llu failures detected, %llu recoveries, "
                "%llu resyncs requested; %llu messages dropped by fault "
                "injection\n",
                out.failures, out.recoveries, out.resyncs, out.fault_drops);

    // Drain and check the recovered slave converged again (the lossy
    // variant gets longer: retransmission has to finish the tail).
    cluster->sim().run_until(cluster->sim().now() +
                             (repl_drop_prob > 0 ? sim::seconds(6)
                                                 : sim::seconds(2)));
    out.reconverged = cluster->slave(1).slave_applied_offset() ==
                      cluster->master().master_offset();
    std::printf("slave1 re-converged after recovery: %s\n",
                out.reconverged ? "yes" : "NO");
    return out;
}

// --- master-crash / failover variant ------------------------------------

struct CrashVariantResult {
    std::string name = "master crash failover";
    std::vector<double> timeline_kops;
    /// First post-crash successful SET completion minus the last pre-crash
    /// one, in milliseconds. Negative if no SET succeeded after the crash.
    double recovery_ms = -1.0;
    double crash_t_s = 0;
    unsigned long long failovers = 0;
    unsigned long long failures = 0;
    std::uint64_t ops_ok = 0;
    std::uint64_t ops_failed = 0;
    std::uint64_t ops_timed_out = 0;
    std::uint64_t retries = 0;
    /// Acked-write-loss audit: keys whose last write was acknowledged but
    /// whose value the promoted stand-in does not hold. Commit gating is
    /// supposed to keep this at zero under every protocol.
    std::uint64_t keys_audited = 0;
    std::uint64_t acked_writes_lost = 0;
    bool drained = false;
};

CrashVariantResult run_master_crash_variant(server::ReplicationMode mode) {
    // The worst case the paper's Fig. 14 does not show: the *master* host
    // crashes at t=3s and never comes back. Nic-KV's probes (paper-default
    // cadence: 1 s interval, 1.5 s waiting-time) detect the silence and
    // promote a slave; retrying clients rediscover the write path by
    // rotating targets. Commit gating — one replica ack (fanout), the full
    // chain (chain), a replica majority released by the NIC's watermark
    // (quorum) — makes the failover lossless for acknowledged writes.
    offload::ClusterConfig cfg;
    cfg.n_slaves = 3;
    cfg.offload = true;
    cfg.server_tmpl.ack_interval = sim::milliseconds(20);
    cfg.server_tmpl.ack_on_apply = true;
    cfg.server_tmpl.wait_for_slaves = 1;
    cfg.server_tmpl.wait_timeout = sim::milliseconds(150);
    cfg.server_tmpl.serve_stale_reads = false;
    cfg.server_tmpl.replication_mode = mode;
    offload::Cluster cluster(cfg);
    cluster.start();
    auto& s = cluster.sim();

    std::vector<workload::RetryClient::Target> targets;
    targets.push_back(
        {cluster.master().node().ep, cluster.master().config().port});
    for (int i = 0; i < cluster.slave_count(); ++i) {
        targets.push_back(
            {cluster.slave(i).node().ep, cluster.slave(i).config().port});
    }
    auto dial = [&cluster](net::NodeRef from, workload::RetryClient::Target t,
                           std::function<void(net::ChannelPtr)> cb) {
        cluster.cm().connect(from, t.ep, t.port, std::move(cb));
    };
    workload::RetryPolicy pol;
    pol.attempt_timeout = sim::milliseconds(100);
    pol.op_deadline = sim::seconds(8);
    pol.turnaround = sim::milliseconds(2);

    check::History hist;
    std::vector<std::shared_ptr<workload::RetryClient>> clients;
    constexpr int kClients = 8;
    for (int i = 0; i < kClients; ++i) {
        workload::WorkloadSpec spec;
        spec.set_ratio = 1.0; // SET-only: recovery == first accepted write
        spec.key_count = 64;
        spec.value_bytes = 64;
        spec.key_prefix = "av:";
        workload::Generator gen(spec, s.fork_rng());
        auto node = cluster.add_client_host("av" + std::to_string(i));
        clients.push_back(std::make_shared<workload::RetryClient>(
            s, cluster.costs(), node, 100 + static_cast<std::uint64_t>(i),
            std::move(gen), pol, targets, dial, &hist));
    }
    // Time-bounded, not count-bounded: stop() below ends the run.
    for (auto& cl : clients) cl->start(1'000'000);

    const auto t0 = s.now();
    s.run_until(t0 + sim::seconds(3));
    CrashVariantResult out;
    out.name = std::string("master crash failover (") + to_string(mode) + ")";
    const std::int64_t crash_ns = s.now().ns();
    out.crash_t_s = static_cast<double>(crash_ns - t0.ns()) / 1e9;
    cluster.crash_node(-1); // stays down: this measures failover, not reboot
    s.run_until(t0 + sim::seconds(12));
    for (auto& cl : clients) cl->stop();
    const auto drain_stop = s.now() + sim::seconds(10);
    auto all_idle = [&clients] {
        for (const auto& cl : clients) {
            if (!cl->idle()) return false;
        }
        return true;
    };
    while (s.now() < drain_stop && !all_idle()) {
        s.run_until(s.now() + sim::milliseconds(20));
    }
    out.drained = all_idle();

    // Recovery time and the availability timeline both come straight from
    // the recorded history: successful SET completions, bucketed at 500 ms.
    std::int64_t last_pre = -1;
    std::int64_t first_post = -1;
    out.timeline_kops.assign(24, 0.0);
    for (const auto& op : hist.ops()) {
        if (op.outcome != check::Outcome::kOk) continue;
        if (op.complete_ns <= crash_ns) {
            last_pre = std::max(last_pre, op.complete_ns);
        } else if (first_post < 0 || op.complete_ns < first_post) {
            first_post = op.complete_ns;
        }
        const auto bin = static_cast<std::size_t>(
            (op.complete_ns - t0.ns()) / sim::milliseconds(500).ns());
        if (bin < out.timeline_kops.size()) {
            out.timeline_kops[bin] += 1.0 / 500.0; // ops per 500ms -> kops/s
        }
    }
    if (last_pre >= 0 && first_post >= 0) {
        out.recovery_ms = static_cast<double>(first_post - last_pre) / 1e6;
    }
    for (const auto& cl : clients) {
        out.ops_ok += cl->ops_ok();
        out.ops_failed += cl->ops_failed();
        out.ops_timed_out += cl->ops_timed_out();
        out.retries += cl->retries();
    }
    auto& nic_stats = cluster.nic_kv()->stats();
    out.failures = nic_stats.counter("failures_detected");
    out.failovers = nic_stats.counter("failovers");

    // Acked-write-loss audit against the promoted stand-in: for every key
    // whose chronologically last write was acknowledged (kOk) — so no
    // maybe-applied straggler can legitimately overwrite it — the stand-in
    // must hold exactly that value.
    server::KvServer* standin = nullptr;
    for (int i = 0; i < cluster.slave_count(); ++i) {
        if (cluster.slave(i).role() == server::Role::kMaster) {
            standin = &cluster.slave(i);
        }
    }
    if (standin != nullptr) {
        std::map<std::string, const check::Op*> last_write;
        for (const auto& op : hist.ops()) {
            if (op.type != check::OpType::kWrite) continue;
            auto& slot = last_write[op.key];
            if (slot == nullptr || op.invoke_ns > slot->invoke_ns) slot = &op;
        }
        for (const auto& [key, op] : last_write) {
            if (op->outcome != check::Outcome::kOk) continue;
            ++out.keys_audited;
            const auto obj = standin->db().lookup(key);
            if (obj == nullptr || obj->string_value() != op->value) {
                ++out.acked_writes_lost;
            }
        }
    }

    print_header("Fig. 14 (master crash, " + std::string(to_string(mode)) +
                     "): retrying SET clients across failover",
                 {"t(s)", "kops/s"});
    for (std::size_t i = 0; i < out.timeline_kops.size(); ++i) {
        std::printf("%14.1f%14.1f\n", static_cast<double>(i) * 0.5,
                    out.timeline_kops[i]);
    }
    std::printf("\nmaster crashed at t=%.1fs (kept down); %llu failure "
                "detected, %llu failover\n",
                out.crash_t_s, out.failures, out.failovers);
    std::printf("recovery time to first successful SET: %.1f ms\n",
                out.recovery_ms);
    std::printf("ops: %llu ok, %llu failed, %llu timed out, %llu retries; "
                "clients drained: %s\n",
                static_cast<unsigned long long>(out.ops_ok),
                static_cast<unsigned long long>(out.ops_failed),
                static_cast<unsigned long long>(out.ops_timed_out),
                static_cast<unsigned long long>(out.retries),
                out.drained ? "yes" : "NO");
    std::printf("acked-write audit: %llu keys checked, %llu acked writes "
                "lost\n",
                static_cast<unsigned long long>(out.keys_audited),
                static_cast<unsigned long long>(out.acked_writes_lost));
    return out;
}

void print_json(const std::vector<VariantResult>& variants,
                const std::vector<CrashVariantResult>& crashes) {
    // One series per variant: summary scalars on the series, the 500 ms
    // throughput timeline as its points.
    FigureJson j("fig14_availability");
    for (const auto& r : variants) {
        auto& w = j.begin_series(r.name);
        w.kv("healthy_kops", r.healthy)
            .kv("min_during_failure_kops", r.min_during)
            .kv("failures_detected",
                static_cast<std::uint64_t>(r.failures))
            .kv("recoveries", static_cast<std::uint64_t>(r.recoveries))
            .kv("resyncs", static_cast<std::uint64_t>(r.resyncs))
            .kv("fault_drops", static_cast<std::uint64_t>(r.fault_drops));
        w.key("reconverged").value_bool(r.reconverged);
        j.begin_points();
        for (std::size_t i = 0; i < r.timeline_kops.size(); ++i) {
            auto& p = j.point();
            p.key("t_s").value(static_cast<double>(i) * 0.5, 1);
            p.kv("kops", r.timeline_kops[i]);
            j.end_point();
        }
        j.end_series();
    }
    for (const auto& crash : crashes) {
        auto& w = j.begin_series(crash.name);
        w.kv("recovery_ms", crash.recovery_ms)
            .kv("crash_t_s", crash.crash_t_s)
            .kv("failures_detected",
                static_cast<std::uint64_t>(crash.failures))
            .kv("failovers", static_cast<std::uint64_t>(crash.failovers))
            .kv("ops_ok", crash.ops_ok)
            .kv("ops_failed", crash.ops_failed)
            .kv("ops_timed_out", crash.ops_timed_out)
            .kv("retries", crash.retries)
            .kv("keys_audited", crash.keys_audited)
            .kv("acked_writes_lost", crash.acked_writes_lost);
        w.key("drained").value_bool(crash.drained);
        j.begin_points();
        for (std::size_t i = 0; i < crash.timeline_kops.size(); ++i) {
            auto& p = j.point();
            p.key("t_s").value(static_cast<double>(i) * 0.5, 1);
            p.kv("kops", crash.timeline_kops[i]);
            j.end_point();
        }
        j.end_series();
    }
    j.emit();
}

} // namespace

int main() {
    std::vector<VariantResult> variants;
    variants.push_back(run_variant("clean", 0.0));
    variants.push_back(run_variant("1% repl loss", 0.01));
    std::vector<CrashVariantResult> crashes;
    crashes.push_back(run_master_crash_variant(server::ReplicationMode::kFanout));
    crashes.push_back(run_master_crash_variant(server::ReplicationMode::kChain));
    crashes.push_back(run_master_crash_variant(server::ReplicationMode::kQuorum));
    print_json(variants, crashes);
    return 0;
}
