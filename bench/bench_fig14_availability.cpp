// Figure 14: availability under slave failure. SET load against the SKV
// master while one slave's Host-KV crashes at t=4s and recovers at t=9s.
//
// Paper shape: Nic-KV's probes detect the failure within waiting-time,
// mark the node invalid in the node list, and stop replicating to it;
// master throughput stays above 300 kops/s (here: above ~90% of the
// healthy level) and the client never notices. On recovery the invalid
// flag is cleared and replication resumes (with a NIC-arranged partial
// resync for the bytes missed while down).
//
// Two variants run back to back: the paper's clean-crash timeline, and the
// same timeline with 1% message loss injected on every replication link
// (NIC <-> slave and master <-> slave). The reliable node-message layer
// retransmits through the loss, so the availability shape should survive
// with no false failovers on the healthy slaves. A JSON summary of both
// variants is emitted at the end for plotting.

#include "bench_common.hpp"
#include "net/fault.hpp"

using namespace skv;
using namespace skv::bench;

namespace {

struct VariantResult {
    std::string name;
    std::vector<double> timeline_kops;
    double healthy = 0;
    double min_during = 1e18;
    unsigned long long failures = 0;
    unsigned long long recoveries = 0;
    unsigned long long resyncs = 0;
    unsigned long long fault_drops = 0;
    bool reconverged = false;
};

VariantResult run_variant(const std::string& name, double repl_drop_prob) {
    auto cluster = make_cluster(System::kSkv, 3);

    if (repl_drop_prob > 0) {
        net::FaultSpec loss;
        loss.drop_prob = repl_drop_prob;
        auto& faults = cluster->fabric().faults();
        const auto nic_ep = cluster->nic_kv()->endpoint();
        const auto master_ep = cluster->master().node().ep;
        for (int i = 0; i < cluster->slave_count(); ++i) {
            const auto slave_ep = cluster->slave(i).node().ep;
            faults.set_link(nic_ep, slave_ep, loss);
            faults.set_link(master_ep, slave_ep, loss);
        }
    }

    workload::RunOptions opts;
    opts.clients = 16;
    opts.spec.set_ratio = 1.0;
    opts.spec.value_bytes = 64;
    opts.measure = sim::seconds(12);
    opts.timeline_bin = sim::milliseconds(500);
    // Crash slave 1 at t=4s; recover it at t=9s (paper timeline).
    opts.faults.push_back({sim::seconds(4), 1, false});
    opts.faults.push_back({sim::seconds(9), 1, true});

    const auto r = workload::run_workload(*cluster, opts);

    VariantResult out;
    out.name = name;
    out.timeline_kops = r.timeline_kops;

    print_header("Fig. 14 (" + name +
                     "): SKV throughput during slave failure/recovery",
                 {"t(s)", "kops/s"});
    for (std::size_t i = 0; i < r.timeline_kops.size(); ++i) {
        const double t = static_cast<double>(i) * 0.5;
        if (t >= 12.0) break;
        std::printf("%14.1f%14.1f\n", t, r.timeline_kops[i]);
        if (t < 3.5) out.healthy = std::max(out.healthy, r.timeline_kops[i]);
    }
    for (std::size_t i = 8; i < 18 && i < r.timeline_kops.size(); ++i) {
        out.min_during = std::min(out.min_during, r.timeline_kops[i]);
    }

    auto& nic_stats = cluster->nic_kv()->stats();
    out.failures = nic_stats.counter("failures_detected");
    out.recoveries = nic_stats.counter("recoveries_detected");
    out.resyncs = nic_stats.counter("resyncs_requested");
    if (cluster->fabric().has_faults()) {
        out.fault_drops = cluster->fabric().faults().stats().counter("drops");
    }

    std::printf("\nhealthy throughput ~%.0f kops/s; minimum during the "
                "failure window %.0f kops/s (%.0f%% of healthy)\n",
                out.healthy, out.min_during,
                100.0 * out.min_during / out.healthy);
    std::printf("failure detector: %llu failures detected, %llu recoveries, "
                "%llu resyncs requested; %llu messages dropped by fault "
                "injection\n",
                out.failures, out.recoveries, out.resyncs, out.fault_drops);

    // Drain and check the recovered slave converged again (the lossy
    // variant gets longer: retransmission has to finish the tail).
    cluster->sim().run_until(cluster->sim().now() +
                             (repl_drop_prob > 0 ? sim::seconds(6)
                                                 : sim::seconds(2)));
    out.reconverged = cluster->slave(1).slave_applied_offset() ==
                      cluster->master().master_offset();
    std::printf("slave1 re-converged after recovery: %s\n",
                out.reconverged ? "yes" : "NO");
    return out;
}

void print_json(const std::vector<VariantResult>& variants) {
    // One series per variant: summary scalars on the series, the 500 ms
    // throughput timeline as its points.
    FigureJson j("fig14_availability");
    for (const auto& r : variants) {
        auto& w = j.begin_series(r.name);
        w.kv("healthy_kops", r.healthy)
            .kv("min_during_failure_kops", r.min_during)
            .kv("failures_detected",
                static_cast<std::uint64_t>(r.failures))
            .kv("recoveries", static_cast<std::uint64_t>(r.recoveries))
            .kv("resyncs", static_cast<std::uint64_t>(r.resyncs))
            .kv("fault_drops", static_cast<std::uint64_t>(r.fault_drops));
        w.key("reconverged").value_bool(r.reconverged);
        j.begin_points();
        for (std::size_t i = 0; i < r.timeline_kops.size(); ++i) {
            auto& p = j.point();
            p.key("t_s").value(static_cast<double>(i) * 0.5, 1);
            p.kv("kops", r.timeline_kops[i]);
            j.end_point();
        }
        j.end_series();
    }
    j.emit();
}

} // namespace

int main() {
    std::vector<VariantResult> variants;
    variants.push_back(run_variant("clean", 0.0));
    variants.push_back(run_variant("1% repl loss", 0.01));
    print_json(variants);
    return 0;
}
