// Figure 12: SET throughput under different value sizes, SKV vs
// RDMA-Redis, one master + three slaves, 8 clients.
//
// Paper shape: SKV's throughput stays above RDMA-Redis across value
// sizes; both decline as values grow (copy costs and, eventually, the
// shared 100 Gb/s port serializing 3x the value per SET). The gap widens
// with size because the baseline's per-slave buffer copies happen on the
// master's host core, while SKV's happen on the SmartNIC. Beyond ~8 KB a
// single-threaded Nic-KV can no longer match the master's write rate —
// that regime is explored in bench_ablation_threads.

#include "bench_common.hpp"

using namespace skv;
using namespace skv::bench;

int main() {
    const std::size_t sizes[] = {64, 256, 1024, 4096};

    struct Point {
        std::size_t bytes;
        workload::RunResult base;
        workload::RunResult skv;
    };
    std::vector<Point> points;

    for (const std::size_t sz : sizes) {
        workload::RunOptions opts;
        opts.clients = 8;
        opts.spec.set_ratio = 1.0;
        opts.spec.value_bytes = sz;
        opts.measure = sim::seconds(2);

        auto base = make_cluster(System::kRdmaRedis, 3);
        auto skv = make_cluster(System::kSkv, 3);
        points.push_back(Point{sz, workload::run_workload(*base, opts),
                               workload::run_workload(*skv, opts)});
    }

    print_header("Fig. 12: SET throughput vs value size (kops/s)",
                 {"value(B)", "RDMA-Redis", "SKV", "gain%", "errors"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.bytes));
        print_cell(p.base.throughput_kops);
        print_cell(p.skv.throughput_kops);
        print_cell(100.0 * (p.skv.throughput_kops / p.base.throughput_kops - 1.0));
        print_cell(static_cast<long long>(p.base.errors + p.skv.errors));
        end_row();
    }

    FigureJson j("fig12_value_size");
    const struct {
        const char* name;
        workload::RunResult Point::* field;
    } series[] = {{"RDMA-Redis", &Point::base}, {"SKV", &Point::skv}};
    for (const auto& s : series) {
        j.begin_series(s.name);
        j.begin_points();
        for (const auto& p : points) {
            auto& w = j.point();
            w.kv("value_bytes", static_cast<std::uint64_t>(p.bytes));
            add_run_fields(w, p.*(s.field));
            j.end_point();
        }
        j.end_series();
    }
    j.emit();
    return 0;
}
