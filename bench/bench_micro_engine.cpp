// Micro-benchmarks (google-benchmark) of the KV engine substrates that
// back the simulator's cost model: dict insert/lookup with incremental
// rehash, skiplist insert/rank, RESP parse/encode, SDS append, RDB
// round-trip, backlog append, and the command dispatch path. These are
// real data-structure costs on the build machine, reported so the cost
// model's relative magnitudes can be sanity-checked.

#include <benchmark/benchmark.h>

#include "kv/backlog.hpp"
#include "kv/command.hpp"
#include "kv/dict.hpp"
#include "kv/object.hpp"
#include "kv/rdb.hpp"
#include "kv/resp.hpp"
#include "kv/skiplist.hpp"
#include "sim/histogram.hpp"
#include "sim/rng.hpp"

using namespace skv;

namespace {

void BM_DictInsert(benchmark::State& state) {
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        kv::Dict<int> d;
        for (std::uint64_t i = 0; i < n; ++i) {
            d.insert(kv::Sds("key:" + std::to_string(i)), static_cast<int>(i));
        }
        benchmark::DoNotOptimize(d.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DictInsert)->Arg(1000)->Arg(100000);

void BM_DictLookup(benchmark::State& state) {
    const std::uint64_t n = 100000;
    kv::Dict<int> d;
    for (std::uint64_t i = 0; i < n; ++i) {
        d.insert(kv::Sds("key:" + std::to_string(i)), static_cast<int>(i));
    }
    sim::Rng rng(1);
    for (auto _ : state) {
        const kv::Sds k("key:" + std::to_string(rng.next_below(n)));
        benchmark::DoNotOptimize(d.find(k));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DictLookup);

void BM_SkipListInsert(benchmark::State& state) {
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        kv::SkipList sl;
        for (std::uint64_t i = 0; i < n; ++i) {
            sl.insert(static_cast<double>(i % 997),
                      kv::Sds("m" + std::to_string(i)));
        }
        benchmark::DoNotOptimize(sl.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SkipListInsert)->Arg(1000)->Arg(50000);

void BM_SkipListRank(benchmark::State& state) {
    kv::SkipList sl;
    for (std::uint64_t i = 0; i < 50000; ++i) {
        sl.insert(static_cast<double>(i), kv::Sds("m" + std::to_string(i)));
    }
    sim::Rng rng(2);
    for (auto _ : state) {
        const auto i = rng.next_below(50000);
        benchmark::DoNotOptimize(
            sl.rank(static_cast<double>(i), kv::Sds("m" + std::to_string(i))));
    }
}
BENCHMARK(BM_SkipListRank);

void BM_RespParseCommand(benchmark::State& state) {
    const std::string wire =
        kv::resp::command({"SET", "key:12345", std::string(64, 'v')});
    for (auto _ : state) {
        kv::resp::RequestParser p;
        p.feed(wire);
        std::vector<std::string> argv;
        benchmark::DoNotOptimize(p.next(&argv));
        benchmark::DoNotOptimize(argv.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RespParseCommand);

void BM_CommandDispatchSet(benchmark::State& state) {
    kv::Database db([]() { return 0; });
    sim::Rng rng(3);
    const std::vector<std::string> argv{"SET", "k", std::string(64, 'v')};
    for (auto _ : state) {
        std::string reply;
        benchmark::DoNotOptimize(
            kv::CommandTable::instance().execute(db, rng, argv, reply));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CommandDispatchSet);

void BM_CommandDispatchGet(benchmark::State& state) {
    kv::Database db([]() { return 0; });
    sim::Rng rng(4);
    db.set("k", kv::Object::make_string(std::string(64, 'v')));
    const std::vector<std::string> argv{"GET", "k"};
    for (auto _ : state) {
        std::string reply;
        benchmark::DoNotOptimize(
            kv::CommandTable::instance().execute(db, rng, argv, reply));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CommandDispatchGet);

void BM_RdbRoundTrip(benchmark::State& state) {
    kv::Database db([]() { return 0; });
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
        db.set("key:" + std::to_string(i),
               kv::Object::make_string(std::string(64, 'v')));
    }
    for (auto _ : state) {
        const std::string rdb = kv::rdb::save(db);
        kv::Database copy([]() { return 0; });
        benchmark::DoNotOptimize(kv::rdb::load(rdb, copy));
    }
}
BENCHMARK(BM_RdbRoundTrip)->Arg(1000)->Arg(10000);

void BM_BacklogAppend(benchmark::State& state) {
    kv::ReplBacklog backlog(1 << 20);
    const std::string chunk(128, 'r');
    for (auto _ : state) {
        backlog.append(chunk);
        benchmark::DoNotOptimize(backlog.master_offset());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_BacklogAppend);

void BM_HistogramRecord(benchmark::State& state) {
    sim::LatencyHistogram h;
    sim::Rng rng(5);
    for (auto _ : state) {
        h.record_ns(static_cast<std::int64_t>(rng.next_below(1'000'000)));
    }
    benchmark::DoNotOptimize(h.p99_ns());
}
BENCHMARK(BM_HistogramRecord);

} // namespace

BENCHMARK_MAIN();
