// YCSB sweep harness: the open-loop driver (src/workload/ycsb/) against the
// SKV cluster, one run per workload x replication-protocol combination.
//
// Open-loop methodology: arrivals follow a seeded Poisson process at the
// offered rate, latency is measured from each op's intended start, so the
// percentiles include queue wait (coordinated-omission-safe). Achieved
// throughput tracking the offered rate while the tail stays bounded is the
// pass criterion the bench gate enforces (tools/bench_gate/).
//
// Profiles: the default "full" profile is the recorded trajectory's unit of
// comparison; "--smoke" is the downscaled profile CI runs on every push.
// Both are pinned by seed, so reruns of the same commit are byte-identical.
//
// Usage: bench_ycsb [--smoke] [--workloads ABC] [--modes fanout,chain,quorum]
//                   [--seed N] [--trace <path>]

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "workload/ycsb/open_loop.hpp"

using namespace skv;
using namespace skv::bench;
using workload::ycsb::OpenLoopOptions;
using workload::ycsb::OpenLoopResult;
using workload::ycsb::Workload;
using workload::ycsb::YcsbOp;

namespace {

struct SweepProfile {
    const char* name = "full";
    std::uint64_t record_count = 10'000;
    double offered_kops = 40.0;
    int connections = 256;
    sim::Duration warmup{sim::milliseconds(300)};
    sim::Duration measure{sim::seconds(2)};
};

SweepProfile full_profile() { return {}; }

SweepProfile smoke_profile() {
    SweepProfile p;
    p.name = "smoke";
    p.record_count = 2'000;
    p.offered_kops = 20.0;
    p.connections = 128;
    p.warmup = sim::milliseconds(200);
    p.measure = sim::milliseconds(500);
    return p;
}

/// The fig14/chaos cluster idiom: commit gating on one replica ack, no
/// stale reads — the configuration under which the three protocols
/// genuinely differ on the write path.
std::unique_ptr<offload::Cluster> make_ycsb_cluster(
    server::ReplicationMode mode, std::uint64_t seed) {
    offload::ClusterConfig cfg;
    cfg.seed = seed;
    cfg.n_slaves = 3;
    cfg.offload = true;
    cfg.server_tmpl.ack_interval = sim::milliseconds(20);
    cfg.server_tmpl.ack_on_apply = true;
    cfg.server_tmpl.wait_for_slaves = 1;
    cfg.server_tmpl.wait_timeout = sim::milliseconds(150);
    cfg.server_tmpl.serve_stale_reads = false;
    cfg.server_tmpl.replication_mode = mode;
    auto cluster = std::make_unique<offload::Cluster>(cfg);
    cluster->start();
    return cluster;
}

struct SweepRun {
    std::string series;
    Workload workload = Workload::kA;
    const char* dist = "";
    const char* mode = "";
    OpenLoopResult res;
};

SweepRun run_one(Workload w, server::ReplicationMode mode,
                 const SweepProfile& prof, std::uint64_t seed) {
    auto cluster = make_ycsb_cluster(mode, seed);

    OpenLoopOptions opts;
    opts.ycsb = workload::ycsb::YcsbOptions::standard(w);
    opts.ycsb.record_count = prof.record_count;
    opts.connections = prof.connections;
    opts.offered_kops = prof.offered_kops;
    opts.warmup = prof.warmup;
    opts.measure = prof.measure;

    SweepRun out;
    out.workload = w;
    out.mode = server::to_string(mode);
    switch (opts.ycsb.request_dist) {
    case workload::KeyDist::kUniform: out.dist = "uniform"; break;
    case workload::KeyDist::kZipfian: out.dist = "zipfian"; break;
    case workload::KeyDist::kLatest: out.dist = "latest"; break;
    case workload::KeyDist::kScan: out.dist = "scan"; break;
    }
    out.series = std::string("ycsb-") + workload::ycsb::to_string(w) + "/" +
                 out.dist + "/" + out.mode;
    out.res = run_open_loop(*cluster, opts);

    std::printf("%-28s %s\n", out.series.c_str(), out.res.summary().c_str());
    return out;
}

void print_json(const std::vector<SweepRun>& runs, const SweepProfile& prof,
                std::uint64_t seed) {
    FigureJson j("ycsb");
    for (const auto& r : runs) {
        auto& w = j.begin_series(r.series);
        w.kv("workload", workload::ycsb::to_string(r.workload))
            .kv("dist", r.dist)
            .kv("protocol", r.mode)
            .kv("profile", prof.name)
            .kv("seed", seed)
            .kv("offered_kops", r.res.offered_kops)
            .kv("achieved_kops", r.res.achieved_kops)
            .kv("connections", prof.connections)
            .kv("record_count", prof.record_count)
            .kv("arrivals", r.res.arrivals)
            .kv("completed", r.res.completed)
            .kv("failed", r.res.failed)
            .kv("timed_out", r.res.timed_out)
            .kv("retries", r.res.retries)
            .kv("peak_queued", r.res.peak_queued);
        j.begin_points();
        {
            auto& p = j.point();
            p.kv("op", "all");
            add_run_fields(p, r.res.run);
            j.end_point();
        }
        for (int t = 0; t < YcsbOp::kKindCount; ++t) {
            const auto& s = r.res.per_type[static_cast<std::size_t>(t)];
            if (s.ops == 0) continue;
            auto& p = j.point();
            p.kv("op", to_string(static_cast<YcsbOp::Kind>(t)))
                .kv("ops", s.ops)
                .kv("mean_us", s.mean_us)
                .kv("p50_us", s.p50_us)
                .kv("p95_us", s.p95_us)
                .kv("p99_us", s.p99_us)
                .kv("p999_us", s.p999_us);
            j.end_point();
        }
        j.end_series();
    }
    j.emit();
}

} // namespace

int main(int argc, char** argv) {
    SweepProfile prof = full_profile();
    std::string workloads = "ABC";
    std::vector<server::ReplicationMode> modes = {
        server::ReplicationMode::kFanout, server::ReplicationMode::kChain,
        server::ReplicationMode::kQuorum};
    std::uint64_t seed = 42;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            prof = smoke_profile();
            workloads = "A";
        } else if (std::strcmp(argv[i], "--workloads") == 0 && i + 1 < argc) {
            workloads = argv[++i];
        } else if (std::strcmp(argv[i], "--modes") == 0 && i + 1 < argc) {
            modes.clear();
            const std::string arg = argv[++i];
            std::size_t pos = 0;
            while (pos <= arg.size()) {
                const std::size_t comma = arg.find(',', pos);
                const std::string tok =
                    arg.substr(pos, comma == std::string::npos ? std::string::npos
                                                               : comma - pos);
                if (tok == "fanout") {
                    modes.push_back(server::ReplicationMode::kFanout);
                } else if (tok == "chain") {
                    modes.push_back(server::ReplicationMode::kChain);
                } else if (tok == "quorum") {
                    modes.push_back(server::ReplicationMode::kQuorum);
                } else {
                    std::fprintf(stderr, "unknown mode '%s'\n", tok.c_str());
                    return 2;
                }
                if (comma == std::string::npos) break;
                pos = comma + 1;
            }
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            ++i; // handled per-run below (last run's cluster)
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--workloads ABC] "
                         "[--modes fanout,chain,quorum] [--seed N]\n",
                         argv[0]);
            return 2;
        }
    }

    print_header("YCSB open-loop sweep (" + std::string(prof.name) + ")",
                 {"series", "result"});
    std::vector<SweepRun> runs;
    for (const char wc : workloads) {
        Workload w;
        if (!workload::ycsb::workload_from_char(wc, &w)) {
            std::fprintf(stderr, "unknown workload '%c'\n", wc);
            return 2;
        }
        for (const auto mode : modes) {
            runs.push_back(run_one(w, mode, prof, seed));
        }
    }
    print_json(runs, prof, seed);
    return 0;
}
