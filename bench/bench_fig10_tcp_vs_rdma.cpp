// Figure 10: original Redis (kernel TCP) vs RDMA-Redis, no slaves.
// (a) SET throughput vs number of concurrent client connections.
// (b) 99% tail latency vs number of concurrent client connections.
//
// Paper shape: Redis saturates around 130 kops/s (nearly flat from 2
// clients on); RDMA-Redis keeps climbing past 330 kops/s. At high
// concurrency the TCP tail latency is roughly double the RDMA one.

#include "bench_common.hpp"

using namespace skv;
using namespace skv::bench;

int main() {
    const int client_counts[] = {1, 2, 4, 8, 12, 16, 24, 32};

    struct Point {
        int clients;
        workload::RunResult tcp;
        workload::RunResult rdma;
    };
    std::vector<Point> points;

    for (const int n : client_counts) {
        workload::RunOptions opts;
        opts.clients = n;
        opts.spec.set_ratio = 1.0;
        opts.spec.value_bytes = 64;
        opts.measure = sim::seconds(2);

        auto tcp = make_cluster(System::kTcpRedis, 0);
        auto rdma = make_cluster(System::kRdmaRedis, 0);
        points.push_back(Point{n, workload::run_workload(*tcp, opts),
                               workload::run_workload(*rdma, opts)});
    }

    print_header("Fig. 10(a): SET throughput vs concurrency (kops/s)",
                 {"clients", "Redis", "RDMA-Redis", "speedup"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.clients));
        print_cell(p.tcp.throughput_kops);
        print_cell(p.rdma.throughput_kops);
        print_cell(p.rdma.throughput_kops / p.tcp.throughput_kops);
        end_row();
    }

    print_header("Fig. 10(b): SET p99 latency vs concurrency (us)",
                 {"clients", "Redis", "RDMA-Redis", "ratio"});
    for (const auto& p : points) {
        print_cell(static_cast<long long>(p.clients));
        print_cell(p.tcp.p99_us);
        print_cell(p.rdma.p99_us);
        print_cell(p.tcp.p99_us / p.rdma.p99_us);
        end_row();
    }

    FigureJson j("fig10_tcp_vs_rdma");
    const struct {
        const char* name;
        workload::RunResult Point::* field;
    } series[] = {{"Redis", &Point::tcp}, {"RDMA-Redis", &Point::rdma}};
    for (const auto& s : series) {
        j.begin_series(s.name);
        j.begin_points();
        for (const auto& p : points) {
            auto& w = j.point();
            w.kv("clients", p.clients);
            add_run_fields(w, p.*(s.field));
            j.end_point();
        }
        j.end_series();
    }
    j.emit();
    return 0;
}
