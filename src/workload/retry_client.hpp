#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "cpu/cost_model.hpp"
#include "kv/resp.hpp"
#include "net/channel.hpp"
#include "obs/tracer.hpp"
#include "sim/simulation.hpp"
#include "workload/generator.hpp"

namespace skv::workload {

/// Client-side robustness knobs (ISSUE PR6): per-attempt timeouts, a hard
/// per-operation deadline, and capped exponential backoff with seeded
/// jitter between attempts.
struct RetryPolicy {
    /// An attempt (dial + request + reply) that has not answered within
    /// this long is abandoned: the channel to that target is closed (so a
    /// late reply can never be confused with the next request's) and the
    /// client rotates to the next target.
    sim::Duration attempt_timeout{sim::milliseconds(150)};
    /// Hard per-op deadline measured from the first attempt. When it
    /// cannot be met the op completes with an explicit timeout/failure —
    /// the client never hangs.
    sim::Duration op_deadline{sim::seconds(6)};
    /// Backoff before attempt n is base * 2^(n-1), capped, then jittered
    /// by +/- jitter_frac from the client's forked RNG stream.
    sim::Duration backoff_base{sim::milliseconds(10)};
    sim::Duration backoff_cap{sim::milliseconds(320)};
    double jitter_frac = 0.25;
    /// Client-side pacing between consecutive operations.
    sim::Duration turnaround{sim::microseconds(20)};
};

/// A sequential (one op at a time) client that survives node crashes:
/// it retries over a rotation of targets (master first, then the slaves,
/// so failover promotions are discovered by probing), tags every write
/// with a per-client sequence token ("WSEQ <client> <seq>") for server-
/// side duplicate suppression, and records every completed operation in
/// a check::History for the linearizability gate.
///
/// Outcome contract (see check::Outcome): kOk only on a success reply;
/// kFail only when every attempt was answered by an error known not to
/// apply the write; kTimeout whenever an attempt was sent but never
/// answered — the write may have been applied.
class RetryClient : public std::enable_shared_from_this<RetryClient> {
public:
    struct Target {
        net::EndpointId ep = net::kInvalidEndpoint;
        std::uint16_t port = 0;
    };
    /// Opens a channel from `from` to the target; the callback receives
    /// the channel once established (and may never fire if the target is
    /// down — the attempt timer covers the dial).
    using DialFn = std::function<void(net::NodeRef, Target,
                                      std::function<void(net::ChannelPtr)>)>;

    RetryClient(sim::Simulation& sim, const cpu::CostModel& costs,
                net::NodeRef node, std::uint64_t client_id, Generator gen,
                RetryPolicy policy, std::vector<Target> targets, DialFn dial,
                check::History* history);

    /// Issue `ops` operations (then go idle). Must be called once.
    void start(std::uint64_t ops);
    /// Stop issuing new ops; an in-flight op still runs to completion.
    void stop() { running_ = false; }

    /// One externally-supplied operation for the driver-paced (open-loop)
    /// mode: the client does not draw from its own Generator or pace
    /// itself — the driver hands it ops one at a time via issue().
    struct DrivenOp {
        check::OpType type = check::OpType::kRead;
        std::string key;
        std::string value; // writes only
        /// Non-empty: the op is a range scan, sent as one MGET over these
        /// keys (the simulator's stand-in for YCSB's SCAN verb).
        std::vector<std::string> scan_keys;
    };
    using DoneFn = std::function<void(check::Outcome)>;

    /// Execute one driven op (with the full retry/timeout machinery) and
    /// invoke `done` on completion. The connection must be idle() — the
    /// driver owns pacing, so issue() never queues. Mutually exclusive
    /// with start() on the same client.
    void issue(DrivenOp op, DoneFn done);

    /// Wire the cluster tracer so driven ops stamp issue/completion against
    /// their channel's flow id (same contract as BenchClient::set_tracer).
    void set_tracer(obs::Tracer* tracer, const std::string& track_name) {
        tracer_ = tracer;
        obs_track_ = tracer != nullptr ? tracer->track(track_name) : UINT32_MAX;
    }

    /// True when no op is in flight and no further op will be issued.
    [[nodiscard]] bool idle() const { return !op_active_ && (remaining_ == 0 || !running_); }

    [[nodiscard]] std::uint64_t ops_ok() const { return ops_ok_; }
    [[nodiscard]] std::uint64_t ops_failed() const { return ops_failed_; }
    [[nodiscard]] std::uint64_t ops_timed_out() const { return ops_timed_out_; }
    [[nodiscard]] std::uint64_t retries() const { return retries_; }
    [[nodiscard]] std::uint64_t client_id() const { return client_id_; }
    /// Sim time of the most recent kOk completion (zero if none yet) —
    /// the availability bench derives recovery time from this.
    [[nodiscard]] sim::SimTime last_ok_at() const { return last_ok_at_; }

    /// Protocol-aware read routing: start each read's *first* attempt at
    /// this target index (e.g. the chain tail, which serves reads in chain
    /// mode). Retries still rotate through every target, so a refusal
    /// (-READONLY) falls back to the master normally. Out-of-range (the
    /// default) leaves reads on the sticky rotation.
    void set_read_first(std::size_t idx) { read_first_ = idx; }

private:
    void next_op();
    void attempt();
    void send_on(std::size_t tidx);
    void on_channel_message(std::size_t tidx, const std::string& payload);
    void handle_reply(const kv::resp::Value& v);
    void on_attempt_timeout(std::uint64_t epoch);
    void retry(bool rotate);
    void finalize(check::Outcome outcome, bool found, std::string value);
    [[nodiscard]] sim::Duration next_backoff();

    sim::Simulation& sim_;
    const cpu::CostModel& costs_;
    net::NodeRef node_;
    std::uint64_t client_id_;
    Generator gen_;
    RetryPolicy policy_;
    std::vector<Target> targets_;
    DialFn dial_;
    check::History* history_;
    sim::Rng rng_;

    // One cached channel + reply parser per target. A channel is closed
    // (and the parser reset) whenever an attempt on it times out, so a
    // late reply can never be attributed to a later request.
    std::vector<net::ChannelPtr> channels_;
    std::vector<kv::resp::ReplyParser> parsers_;
    std::size_t cur_ = 0; // sticky: next op starts at the last good target
    std::size_t read_first_ = SIZE_MAX; // see set_read_first()

    // Current operation.
    bool op_active_ = false;
    bool waiting_ = false; // an attempt is outstanding
    check::OpType op_type_ = check::OpType::kRead;
    std::string op_key_;
    std::string op_value_;
    std::vector<std::string> op_scan_keys_;
    DoneFn op_done_; // driven mode: completion callback instead of next_op
    std::uint64_t op_seq_ = 0;
    std::int64_t op_invoke_ns_ = 0;
    sim::SimTime op_deadline_at_ = sim::SimTime::zero();
    int op_attempts_ = 0;
    /// The current attempt's request actually reached a channel (a dial
    /// that never completed proves nothing was sent).
    bool attempt_sent_ = false;
    /// Sticky: some write attempt reached the wire and was never answered
    /// by an error proving it did not apply.
    bool maybe_applied_ = false;
    /// Bumped on every attempt start and reply; stale timeout events and
    /// dial callbacks compare against it and become no-ops.
    std::uint64_t attempt_epoch_ = 0;

    bool running_ = false;
    std::uint64_t remaining_ = 0;
    std::uint64_t ops_ok_ = 0;
    std::uint64_t ops_failed_ = 0;
    std::uint64_t ops_timed_out_ = 0;
    std::uint64_t retries_ = 0;
    sim::SimTime last_ok_at_ = sim::SimTime::zero();
    obs::Tracer* tracer_ = nullptr;
    std::uint32_t obs_track_ = UINT32_MAX;
};

} // namespace skv::workload
