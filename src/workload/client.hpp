#pragma once

#include <cstdint>
#include <memory>

#include "cpu/cost_model.hpp"
#include "kv/resp.hpp"
#include "net/channel.hpp"
#include "obs/tracer.hpp"
#include "sim/histogram.hpp"
#include "sim/simulation.hpp"
#include "workload/generator.hpp"

namespace skv::workload {

/// One closed-loop benchmark connection (one redis-benchmark client): it
/// keeps exactly one request outstanding — send, wait for the reply,
/// record the latency, send the next. Throughput emerges from N clients
/// racing the server's service rate, exactly as in the paper's setup.
class BenchClient : public std::enable_shared_from_this<BenchClient> {
public:
    BenchClient(sim::Simulation& sim, const cpu::CostModel& costs,
                net::NodeRef node, Generator gen,
                sim::Duration turnaround = sim::microseconds(9));

    /// Attach the established channel and start issuing.
    void attach(net::ChannelPtr ch);

    /// Begin/stop counting ops and recording latencies (warmup control).
    void set_recording(bool on) { recording_ = on; }
    void stop() { running_ = false; }

    /// Invoked after every recorded completion with the observed latency.
    using CompletionHook = std::function<void(sim::Duration)>;
    void set_completion_hook(CompletionHook hook) { hook_ = std::move(hook); }

    /// Wire the cluster tracer; `track_name` labels this client's row in
    /// the chrome trace. Each issue/completion is stamped against the
    /// channel's flow id so per-stage request latency can be correlated.
    void set_tracer(obs::Tracer* tracer, const std::string& track_name) {
        tracer_ = tracer;
        obs_track_ = tracer != nullptr ? tracer->track(track_name) : UINT32_MAX;
    }

    [[nodiscard]] std::uint64_t recorded_ops() const { return recorded_; }
    [[nodiscard]] std::uint64_t total_ops() const { return total_; }
    [[nodiscard]] std::uint64_t errors() const { return errors_; }
    [[nodiscard]] const sim::LatencyHistogram& latencies() const { return hist_; }

private:
    void issue_next();
    void on_reply(std::string payload);

    sim::Simulation& sim_;
    const cpu::CostModel& costs_;
    net::NodeRef node_;
    Generator gen_;
    sim::Duration turnaround_;
    sim::Rng rng_;

    net::ChannelPtr channel_;
    kv::resp::ReplyParser parser_;
    sim::SimTime issued_at_ = sim::SimTime::zero();
    bool in_flight_ = false;
    bool running_ = true;
    bool recording_ = false;

    std::uint64_t total_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t errors_ = 0;
    sim::LatencyHistogram hist_;
    CompletionHook hook_;
    obs::Tracer* tracer_ = nullptr;
    std::uint32_t obs_track_ = UINT32_MAX;
};

} // namespace skv::workload
