#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace skv::workload {

/// Key chooser for a workload. kUniform/kZipfian draw over the fixed
/// preloaded keyspace [0, key_count); kLatest and kScan draw over the live
/// insert frontier (see KeyFrontier) — kLatest is YCSB's recency-skewed
/// chooser (zipfian over "how many inserts ago"), kScan is the scan-start
/// chooser (uniform over every key that exists right now).
enum class KeyDist : std::uint8_t { kUniform, kZipfian, kLatest, kScan };

/// The insert-ordered key frontier shared by every generator of one run:
/// key ids [0, size()) exist, inserts append at size(). Single-threaded sim,
/// so a plain counter; shared so YCSB D's "latest" readers chase the keys
/// YCSB D's inserters create, whichever client performed the insert.
class KeyFrontier {
public:
    explicit KeyFrontier(std::uint64_t preloaded) : next_(preloaded) {}

    /// Claim the next insert slot (returns its key id and advances).
    std::uint64_t acquire_insert() { return next_++; }

    /// Number of keys that currently exist.
    [[nodiscard]] std::uint64_t size() const { return next_; }

private:
    std::uint64_t next_;
};

/// What the closed-loop clients send: a SET/GET mix over a keyspace, in
/// the style of redis-benchmark (fixed-size values, "key:<n>" keys).
struct WorkloadSpec {
    /// Fraction of operations that are SETs (1.0 = pure SET, 0.0 = pure GET).
    double set_ratio = 1.0;
    std::uint64_t key_count = 10'000;
    KeyDist key_dist = KeyDist::kUniform;
    double zipf_theta = 0.99;
    std::size_t value_bytes = 64;
    std::string key_prefix = "key:";
};

/// Deterministic command generator; each client owns one (with a forked
/// RNG stream) so client count does not perturb the sequences.
class Generator {
public:
    Generator(WorkloadSpec spec, sim::Rng rng);

    /// The next command to issue, as argv.
    std::vector<std::string> next();

    /// The next key id from the configured chooser (shared with the YCSB
    /// mix layer, which picks op types itself but reuses the choosers).
    [[nodiscard]] std::uint64_t next_key_index();
    /// next_key_index() rendered as "<prefix><id>".
    [[nodiscard]] std::string next_key();
    /// Render a key id as "<prefix><id>".
    [[nodiscard]] std::string key_name(std::uint64_t idx) const;

    /// Attach the run's shared insert frontier. Required before drawing
    /// from kLatest/kScan; inserts made through any generator sharing the
    /// frontier become visible to this one's chooser.
    void set_frontier(std::shared_ptr<KeyFrontier> frontier) {
        frontier_ = std::move(frontier);
    }
    [[nodiscard]] const std::shared_ptr<KeyFrontier>& frontier() const {
        return frontier_;
    }

    [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }
    [[nodiscard]] std::uint64_t sets_generated() const { return sets_; }
    [[nodiscard]] std::uint64_t gets_generated() const { return gets_; }

    /// A value of the configured size (cheap fill pattern).
    [[nodiscard]] std::string make_value();

private:
    [[nodiscard]] std::string pick_key();

    WorkloadSpec spec_;
    sim::Rng rng_;
    std::unique_ptr<sim::ZipfianGenerator> zipf_;
    std::shared_ptr<KeyFrontier> frontier_;
    std::uint64_t sets_ = 0;
    std::uint64_t gets_ = 0;
};

} // namespace skv::workload
