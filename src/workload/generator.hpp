#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace skv::workload {

enum class KeyDist : std::uint8_t { kUniform, kZipfian };

/// What the closed-loop clients send: a SET/GET mix over a keyspace, in
/// the style of redis-benchmark (fixed-size values, "key:<n>" keys).
struct WorkloadSpec {
    /// Fraction of operations that are SETs (1.0 = pure SET, 0.0 = pure GET).
    double set_ratio = 1.0;
    std::uint64_t key_count = 10'000;
    KeyDist key_dist = KeyDist::kUniform;
    double zipf_theta = 0.99;
    std::size_t value_bytes = 64;
    std::string key_prefix = "key:";
};

/// Deterministic command generator; each client owns one (with a forked
/// RNG stream) so client count does not perturb the sequences.
class Generator {
public:
    Generator(WorkloadSpec spec, sim::Rng rng);

    /// The next command to issue, as argv.
    std::vector<std::string> next();

    [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }
    [[nodiscard]] std::uint64_t sets_generated() const { return sets_; }
    [[nodiscard]] std::uint64_t gets_generated() const { return gets_; }

    /// A value of the configured size (cheap fill pattern).
    [[nodiscard]] std::string make_value();

private:
    [[nodiscard]] std::string pick_key();

    WorkloadSpec spec_;
    sim::Rng rng_;
    std::unique_ptr<sim::ZipfianGenerator> zipf_;
    std::uint64_t sets_ = 0;
    std::uint64_t gets_ = 0;
};

} // namespace skv::workload
