#include "workload/retry_client.hpp"

#include <string_view>

#include "sim/check.hpp"

namespace skv::workload {

namespace {
bool has_prefix(const std::string& s, std::string_view prefix) {
    return std::string_view(s).starts_with(prefix);
}
} // namespace

RetryClient::RetryClient(sim::Simulation& sim, const cpu::CostModel& costs,
                         net::NodeRef node, std::uint64_t client_id,
                         Generator gen, RetryPolicy policy,
                         std::vector<Target> targets, DialFn dial,
                         check::History* history)
    : sim_(sim), costs_(costs), node_(node), client_id_(client_id),
      gen_(std::move(gen)), policy_(std::move(policy)),
      targets_(std::move(targets)), dial_(std::move(dial)),
      history_(history), rng_(sim.fork_rng()),
      channels_(targets_.size()), parsers_(targets_.size()) {
    SKV_CHECK(!targets_.empty());
    SKV_CHECK(dial_ != nullptr);
}

void RetryClient::start(std::uint64_t ops) {
    SKV_CHECK(!running_ && !op_active_);
    running_ = true;
    remaining_ = ops;
    next_op();
}

void RetryClient::issue(DrivenOp op, DoneFn done) {
    // Driver-paced mode: one op at a time, never alongside start()'s own
    // generated stream or another driven op still in flight.
    SKV_CHECK(!op_active_ && !running_);
    SKV_CHECK(done != nullptr);
    ++op_seq_;
    op_type_ = op.type;
    op_key_ = std::move(op.key);
    op_value_ = std::move(op.value);
    op_scan_keys_ = std::move(op.scan_keys);
    op_done_ = std::move(done);
    if (op_type_ == check::OpType::kRead && read_first_ < targets_.size()) {
        cur_ = read_first_;
    }
    op_invoke_ns_ = sim_.now().ns();
    op_deadline_at_ = sim_.now() + policy_.op_deadline;
    op_attempts_ = 0;
    maybe_applied_ = false;
    op_active_ = true;
    attempt();
}

void RetryClient::next_op() {
    if (!running_ || remaining_ == 0) return;
    --remaining_;
    auto argv = gen_.next();
    ++op_seq_;
    op_scan_keys_.clear();
    op_key_ = argv.at(1);
    if (argv[0] == "SET") {
        op_type_ = check::OpType::kWrite;
        // Unique per-(client, op) value so the checker can attribute every
        // observed read to exactly one write.
        op_value_ = "c" + std::to_string(client_id_) + "#" +
                    std::to_string(op_seq_);
    } else {
        op_type_ = check::OpType::kRead;
        op_value_.clear();
        // Protocol-aware routing: aim the first read attempt at the
        // configured target (chain tail); retries rotate as usual.
        if (read_first_ < targets_.size()) cur_ = read_first_;
    }
    op_invoke_ns_ = sim_.now().ns();
    op_deadline_at_ = sim_.now() + policy_.op_deadline;
    op_attempts_ = 0;
    maybe_applied_ = false;
    op_active_ = true;
    attempt();
}

void RetryClient::attempt() {
    SKV_CHECK(op_active_ && !waiting_);
    ++op_attempts_;
    waiting_ = true;
    attempt_sent_ = false;
    const std::uint64_t epoch = ++attempt_epoch_;

    // The attempt timer covers the whole attempt (dial included) and is
    // clamped so the op can never outlive its deadline.
    sim::Duration window = policy_.attempt_timeout;
    const sim::Duration left = op_deadline_at_ - sim_.now();
    if (left < window) window = left;
    auto self = shared_from_this();
    sim_.after(window, [self, epoch]() { self->on_attempt_timeout(epoch); });

    const std::size_t tidx = cur_;
    if (channels_[tidx] && channels_[tidx]->open()) {
        send_on(tidx);
        return;
    }
    channels_[tidx].reset();
    parsers_[tidx].reset();
    std::weak_ptr<RetryClient> weak = weak_from_this();
    dial_(node_, targets_[tidx], [weak, epoch, tidx](net::ChannelPtr ch) {
        auto locked = weak.lock();
        if (!locked || !ch) {
            if (ch) ch->close();
            return;
        }
        if (epoch != locked->attempt_epoch_ || !locked->waiting_) {
            // The attempt that dialed already moved on; a channel nobody
            // tracks would deliver replies we cannot attribute.
            ch->close();
            return;
        }
        locked->channels_[tidx] = std::move(ch);
        locked->parsers_[tidx].reset();
        // Weak capture: the client owns the channel and the handler lives
        // inside it (see net::Channel ownership notes).
        std::weak_ptr<RetryClient> w2 = locked->weak_from_this();
        locked->channels_[tidx]->set_on_message(
            [w2, tidx](std::string payload) {
                if (auto s = w2.lock())
                    s->on_channel_message(tidx, std::move(payload));
            });
        locked->send_on(tidx);
    });
}

void RetryClient::send_on(std::size_t tidx) {
    std::vector<std::string> argv;
    if (op_type_ == check::OpType::kWrite) {
        argv = {"WSEQ",  std::to_string(client_id_), std::to_string(op_seq_),
                "SET",   op_key_,                    op_value_};
    } else if (!op_scan_keys_.empty()) {
        // Range scan: one MGET over the precomputed key window.
        argv.reserve(op_scan_keys_.size() + 1);
        argv.emplace_back("MGET");
        for (const auto& k : op_scan_keys_) argv.push_back(k);
    } else {
        argv = {"GET", op_key_};
    }
    node_.core->consume(costs_.jittered(rng_, costs_.reply_build));
    attempt_sent_ = true;
    if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->flow_issue(channels_[tidx]->flow_id(), obs_track_);
    }
    channels_[tidx]->send(kv::resp::command(argv));
}

void RetryClient::on_channel_message(std::size_t tidx,
                                     const std::string& payload) {
    parsers_[tidx].feed(payload);
    kv::resp::Value v;
    for (;;) {
        const auto st = parsers_[tidx].next(&v);
        if (st == kv::resp::Status::kNeedMore) break;
        if (st == kv::resp::Status::kError) {
            // Garbage on the wire: drop the connection, the attempt timer
            // (if one is pending on this target) drives the retry.
            parsers_[tidx].reset();
            if (channels_[tidx]) channels_[tidx]->close();
            channels_[tidx].reset();
            break;
        }
        if (!waiting_ || tidx != cur_) continue; // not this attempt's reply
        handle_reply(v);
    }
}

void RetryClient::handle_reply(const kv::resp::Value& v) {
    waiting_ = false;
    ++attempt_epoch_; // cancels the pending attempt timer
    node_.core->consume(costs_.jittered(rng_, costs_.cmd_parse));
    if (tracer_ != nullptr && tracer_->enabled() && channels_[cur_]) {
        tracer_->flow_complete(channels_[cur_]->flow_id());
    }

    if (op_type_ == check::OpType::kRead) {
        if (v.is_error()) {
            if (has_prefix(v.str, "READONLY")) {
                retry(/*rotate=*/true);
            } else if (has_prefix(v.str, "WAITTIMEOUT")) {
                retry(/*rotate=*/false);
            } else {
                finalize(check::Outcome::kFail, false, "");
            }
            return;
        }
        if (v.kind == kv::resp::Value::Kind::kBulk) {
            finalize(check::Outcome::kOk, true, v.str);
        } else if (v.kind == kv::resp::Value::Kind::kArray) {
            // Scan (MGET) reply: the per-key values are not attributed to
            // the history (the checker is per-key), just a completed read.
            finalize(check::Outcome::kOk, true, "");
        } else {
            finalize(check::Outcome::kOk, false, "");
        }
        return;
    }

    // Write.
    if (v.is_ok()) {
        finalize(check::Outcome::kOk, true, op_value_);
        return;
    }
    if (v.is_error()) {
        if (has_prefix(v.str, "WAITTIMEOUT")) {
            // Applied on the master but not known replicated: a failover
            // could still lose it. Retry with the same WSEQ token; the dup
            // table replays the reply instead of re-applying.
            maybe_applied_ = true;
            retry(/*rotate=*/false);
            return;
        }
        if (has_prefix(v.str, "READONLY")) {
            retry(/*rotate=*/true);
            return;
        }
        if (has_prefix(v.str, "NOREPLICAS") ||
            has_prefix(v.str, "NOREPLPROGRESS")) {
            retry(/*rotate=*/false);
            return;
        }
    }
    // DUPSEQ, an engine error, or an unexpected reply shape: this attempt
    // definitely did not apply, but an earlier timed-out one still might
    // have.
    finalize(maybe_applied_ ? check::Outcome::kTimeout : check::Outcome::kFail,
             true, op_value_);
}

void RetryClient::on_attempt_timeout(std::uint64_t epoch) {
    if (epoch != attempt_epoch_ || !waiting_) return;
    waiting_ = false;
    ++attempt_epoch_;
    if (op_type_ == check::OpType::kWrite && attempt_sent_) {
        maybe_applied_ = true;
    }
    // Close the silent target's channel so its (possibly still parked)
    // reply can never be mistaken for a later request's.
    if (channels_[cur_]) channels_[cur_]->close();
    channels_[cur_].reset();
    parsers_[cur_].reset();
    retry(/*rotate=*/true);
}

void RetryClient::retry(bool rotate) {
    ++retries_;
    if (rotate) cur_ = (cur_ + 1) % targets_.size();
    const sim::Duration delay = next_backoff();
    if (sim_.now() + delay >= op_deadline_at_) {
        // Deadline: explicit completion, never a hang.
        if (op_type_ == check::OpType::kWrite) {
            finalize(maybe_applied_ ? check::Outcome::kTimeout
                                    : check::Outcome::kFail,
                     true, op_value_);
        } else {
            finalize(check::Outcome::kTimeout, false, "");
        }
        return;
    }
    const std::uint64_t epoch = attempt_epoch_;
    auto self = shared_from_this();
    sim_.after(delay, [self, epoch]() {
        if (self->op_active_ && !self->waiting_ &&
            self->attempt_epoch_ == epoch) {
            self->attempt();
        }
    });
}

void RetryClient::finalize(check::Outcome outcome, bool found,
                           std::string value) {
    SKV_CHECK(op_active_);
    op_active_ = false;
    waiting_ = false;
    ++attempt_epoch_;
    switch (outcome) {
    case check::Outcome::kOk:
        ++ops_ok_;
        last_ok_at_ = sim_.now();
        break;
    case check::Outcome::kFail: ++ops_failed_; break;
    case check::Outcome::kTimeout: ++ops_timed_out_; break;
    }
    if (history_ != nullptr) {
        check::Op op;
        op.client = client_id_;
        op.seq = op_seq_;
        op.type = op_type_;
        op.key = op_key_;
        op.value = std::move(value);
        op.found = found;
        op.outcome = outcome;
        op.invoke_ns = op_invoke_ns_;
        op.complete_ns = sim_.now().ns();
        history_->record(std::move(op));
    }
    if (op_done_) {
        // Driven mode: hand the connection back to the driver, which owns
        // pacing (open-loop arrivals, not client turnaround).
        DoneFn done = std::move(op_done_);
        op_done_ = nullptr;
        done(outcome);
        return;
    }
    auto self = shared_from_this();
    sim_.after(costs_.jittered(rng_, policy_.turnaround),
               [self]() { self->next_op(); });
}

sim::Duration RetryClient::next_backoff() {
    // base * 2^(attempts-1), capped, then jittered by +/- jitter_frac.
    std::int64_t ns = policy_.backoff_base.ns();
    for (int i = 1; i < op_attempts_ && ns < policy_.backoff_cap.ns(); ++i) {
        ns *= 2;
    }
    if (ns > policy_.backoff_cap.ns()) ns = policy_.backoff_cap.ns();
    const double jitter =
        1.0 + policy_.jitter_frac * (2.0 * rng_.next_double() - 1.0);
    return sim::Duration(ns).scaled(jitter);
}

} // namespace skv::workload
