#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/tracer.hpp"
#include "sim/histogram.hpp"
#include "sim/time.hpp"
#include "skv/cluster.hpp"
#include "workload/generator.hpp"

namespace skv::workload {

struct RunOptions {
    int clients = 8;
    WorkloadSpec spec{};
    sim::Duration warmup{sim::milliseconds(300)};
    sim::Duration measure{sim::seconds(2)};
    /// When non-zero, also collect a throughput timeline with this bin
    /// width (Fig. 14).
    sim::Duration timeline_bin{sim::Duration::zero()};
    /// Keys preloaded into every node before the run (GET workloads need a
    /// populated keyspace).
    bool preload = false;
    /// Per-request client turnaround: the load generator's own event loop,
    /// buffer management and timer bookkeeping between receiving a reply
    /// and issuing the next request. Calibrated so the concurrency at
    /// which the server saturates matches the paper's Fig. 10/11 knees
    /// (redis-benchmark is not a zero-overhead client).
    sim::Duration client_turnaround{sim::microseconds(9)};
    /// Scripted fault injections relative to the start of measurement.
    struct Fault {
        sim::Duration at;
        int slave_idx;
        bool recover; // false = crash, true = recover
    };
    std::vector<Fault> faults;
    /// Enable the cluster tracer for the run and fill
    /// RunResult::stage_breakdown from the measurement window. Off by
    /// default: span collection costs host memory, not sim behavior.
    bool trace_stages = false;
};

/// Mean per-stage latency over the measurement window, from the tracer's
/// exact (sum, count) accumulators snapshotted at window start/end. The
/// critical-path stages (rdma_write, master_apply, reply) tile the
/// end-to-end latency: their sum matches e2e_us to well under 1%. The
/// replication stages overlap the reply (SKV acks the client before the
/// fan-out completes), so they are reported separately, not summed.
struct StageBreakdown {
    bool valid = false;
    std::uint64_t requests = 0;  // fully-stamped flows in the window
    double e2e_us = 0;           // mean client end-to-end
    double rdma_write_us = 0;    // client issue -> master command entry
    double master_apply_us = 0;  // command entry -> reply to transport
    double reply_us = 0;         // reply to transport -> parsed at client
    double critical_sum_us = 0;  // rdma_write + master_apply + reply
    // Async replication legs (means over the window's samples).
    double offload_request_us = 0;  // master propagate -> NIC parse
    double nic_fanout_us = 0;       // NIC parse (or propagate) -> slave apply
    double slave_ack_us = 0;        // master propagate -> covering ack heard

    [[nodiscard]] std::string summary() const;
};

struct RunResult {
    double throughput_kops = 0;
    double mean_us = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double p999_us = 0;
    double max_us = 0;
    std::uint64_t ops = 0;
    std::uint64_t errors = 0;
    double master_cpu_util = 0;
    /// ops/s per timeline bin (empty unless timeline_bin was set).
    std::vector<double> timeline_kops;
    /// Per-stage latency breakdown (valid only when trace_stages was set).
    StageBreakdown stages;

    [[nodiscard]] std::string summary() const;
};

// --- measurement plumbing shared by the closed- and open-loop drivers ----

/// Populate every node's keyspace identically, bypassing replication (the
/// read workloads measure the steady state, not the loading phase).
void preload_keyspace(offload::Cluster& cluster, const WorkloadSpec& spec);

/// Fill the latency/throughput scalars of a RunResult from a merged
/// histogram and the measurement window length (`r.ops` must be set).
void finalize_latency(RunResult& r, const sim::LatencyHistogram& merged,
                      sim::Duration measure);

/// Binned completion counter behind RunResult::timeline_kops. Disabled
/// (all no-ops) when bin is zero.
class ThroughputTimeline {
public:
    ThroughputTimeline(sim::Duration bin, sim::Duration span);
    [[nodiscard]] bool enabled() const { return bin_.ns() > 0; }
    /// Count one completion at `offset` past the measurement-window start.
    void record(sim::Duration offset);
    /// Convert counts to kops/s and store into `r.timeline_kops`.
    void fill(RunResult& r) const;

private:
    sim::Duration bin_;
    std::vector<std::uint64_t> bins_;
};

/// Snapshot-and-diff of the tracer's per-stage accumulators so a stage
/// breakdown covers exactly one measurement window (matched request
/// populations), shared by both drivers.
class StageWindow {
public:
    /// Snapshot the accumulators at window start.
    void begin(const obs::Tracer& tracer);
    /// Diff against the snapshot and fill `out` (sets out.valid).
    void finish(const obs::Tracer& tracer, StageBreakdown* out) const;

private:
    std::array<obs::StageAccum, static_cast<std::size_t>(obs::Stage::kCount)>
        before_{};
};

/// Drive `opts.clients` closed-loop clients against the cluster's master
/// and measure. The cluster must already be start()ed. redis-benchmark
/// methodology: all clients connect first, warm up, then a fixed-length
/// measurement window.
RunResult run_workload(offload::Cluster& cluster, const RunOptions& opts);

} // namespace skv::workload
