#include "workload/client.hpp"

namespace skv::workload {

BenchClient::BenchClient(sim::Simulation& sim, const cpu::CostModel& costs,
                         net::NodeRef node, Generator gen,
                         sim::Duration turnaround)
    : sim_(sim), costs_(costs), node_(node), gen_(std::move(gen)),
      turnaround_(turnaround), rng_(sim.fork_rng()) {}

void BenchClient::attach(net::ChannelPtr ch) {
    channel_ = std::move(ch);
    // Weak capture: the client owns the channel and the handler lives
    // inside the channel, so an owning capture would cycle and neither
    // object could ever be reclaimed.
    std::weak_ptr<BenchClient> weak = weak_from_this();
    channel_->set_on_message([weak](std::string payload) {
        if (auto self = weak.lock()) self->on_reply(std::move(payload));
    });
    issue_next();
}

void BenchClient::issue_next() {
    if (!running_ || !channel_ || !channel_->open()) return;
    const auto argv = gen_.next();
    // Command construction cost on the client core.
    node_.core->consume(costs_.jittered(rng_, costs_.reply_build));
    in_flight_ = true;
    issued_at_ = sim_.now();
    if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->flow_issue(channel_->flow_id(), obs_track_);
    }
    channel_->send(kv::resp::command(argv));
}

void BenchClient::on_reply(std::string payload) {
    parser_.feed(payload);
    kv::resp::Value v;
    for (;;) {
        const auto st = parser_.next(&v);
        if (st == kv::resp::Status::kNeedMore) break;
        if (st == kv::resp::Status::kError) {
            ++errors_;
            parser_.reset();
            break;
        }
        if (!in_flight_) continue; // stale reply after stop()
        in_flight_ = false;
        ++total_;
        if (tracer_ != nullptr && tracer_->enabled()) {
            tracer_->flow_complete(channel_->flow_id());
        }
        const sim::Duration latency = sim_.now() - issued_at_;
        if (v.is_error()) ++errors_;
        if (recording_) {
            ++recorded_;
            hist_.record(latency);
            if (hook_) hook_(latency);
        }
        // Reply-parse cost on the core, then the client's own turnaround
        // (not core-occupying: it models the generator's pacing, so 16
        // connections do not serialize behind one simulated core).
        node_.core->consume(costs_.jittered(rng_, costs_.cmd_parse));
        auto self = shared_from_this();
        sim_.after(costs_.jittered(rng_, turnaround_),
                   [self]() { self->issue_next(); });
    }
}

} // namespace skv::workload
