#include "workload/runner.hpp"

#include <cstdio>
#include <memory>

#include "kv/object.hpp"
#include "workload/client.hpp"

namespace skv::workload {

std::string StageBreakdown::summary() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "e2e=%.1fus = rdma_write=%.1f + master_apply=%.1f + "
                  "reply=%.1f (sum=%.1f) | async: offload=%.1f fanout=%.1f "
                  "slave_ack=%.1f",
                  e2e_us, rdma_write_us, master_apply_us, reply_us,
                  critical_sum_us, offload_request_us, nic_fanout_us,
                  slave_ack_us);
    return buf;
}

std::string RunResult::summary() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "tput=%.1f kops/s mean=%.1fus p50=%.1fus p99=%.1fus "
                  "ops=%llu errs=%llu cpu=%.0f%%",
                  throughput_kops, mean_us, p50_us, p99_us,
                  static_cast<unsigned long long>(ops),
                  static_cast<unsigned long long>(errors),
                  master_cpu_util * 100.0);
    return buf;
}

void preload_keyspace(offload::Cluster& cluster, const WorkloadSpec& spec) {
    Generator loader(spec, cluster.sim().fork_rng());
    for (std::uint64_t i = 0; i < spec.key_count; ++i) {
        const std::string key = spec.key_prefix + std::to_string(i);
        const std::string val = loader.make_value();
        cluster.master().db().set(key, kv::Object::make_string(val));
        for (int s = 0; s < cluster.slave_count(); ++s) {
            cluster.slave(s).db().set(key, kv::Object::make_string(val));
        }
    }
}

void finalize_latency(RunResult& r, const sim::LatencyHistogram& merged,
                      sim::Duration measure) {
    r.throughput_kops = static_cast<double>(r.ops) / measure.sec() / 1e3;
    r.mean_us = merged.mean_us();
    r.p50_us = static_cast<double>(merged.p50_ns()) / 1e3;
    r.p95_us = static_cast<double>(merged.quantile_ns(0.95)) / 1e3;
    r.p99_us = static_cast<double>(merged.p99_ns()) / 1e3;
    r.p999_us = static_cast<double>(merged.p999_ns()) / 1e3;
    r.max_us = static_cast<double>(merged.max_ns()) / 1e3;
}

ThroughputTimeline::ThroughputTimeline(sim::Duration bin, sim::Duration span)
    : bin_(bin) {
    if (enabled()) {
        bins_.assign(static_cast<std::size_t>(span.ns() / bin.ns() + 1), 0);
    }
}

void ThroughputTimeline::record(sim::Duration offset) {
    if (!enabled()) return;
    const auto idx = static_cast<std::size_t>(offset.ns() / bin_.ns());
    if (idx < bins_.size()) ++bins_[idx];
}

void ThroughputTimeline::fill(RunResult& r) const {
    if (!enabled()) return;
    r.timeline_kops.reserve(bins_.size());
    for (const auto b : bins_) {
        r.timeline_kops.push_back(static_cast<double>(b) / bin_.sec() / 1e3);
    }
}

void StageWindow::begin(const obs::Tracer& tracer) {
    for (std::size_t i = 0; i < before_.size(); ++i) {
        before_[i] = tracer.stage_accum(static_cast<obs::Stage>(i));
    }
}

void StageWindow::finish(const obs::Tracer& tracer,
                         StageBreakdown* out) const {
    const auto mean_delta_us = [&](obs::Stage st, std::uint64_t* n) {
        const auto& after = tracer.stage_accum(st);
        const auto& before = before_[static_cast<std::size_t>(st)];
        const std::uint64_t count = after.count - before.count;
        if (n != nullptr) *n = count;
        if (count == 0) return 0.0;
        return static_cast<double>(after.sum_ns - before.sum_ns) /
               static_cast<double>(count) / 1e3;
    };
    StageBreakdown& sb = *out;
    sb.e2e_us = mean_delta_us(obs::Stage::kClientE2e, &sb.requests);
    sb.rdma_write_us = mean_delta_us(obs::Stage::kRdmaWrite, nullptr);
    sb.master_apply_us = mean_delta_us(obs::Stage::kMasterApply, nullptr);
    sb.reply_us = mean_delta_us(obs::Stage::kReply, nullptr);
    sb.critical_sum_us = sb.rdma_write_us + sb.master_apply_us + sb.reply_us;
    sb.offload_request_us = mean_delta_us(obs::Stage::kOffloadRequest, nullptr);
    sb.nic_fanout_us = mean_delta_us(obs::Stage::kNicFanout, nullptr);
    sb.slave_ack_us = mean_delta_us(obs::Stage::kSlaveAck, nullptr);
    sb.valid = sb.requests > 0;
}

RunResult run_workload(offload::Cluster& cluster, const RunOptions& opts) {
    auto& sim = cluster.sim();

    if (opts.preload) preload_keyspace(cluster, opts.spec);

    // All clients live on one load-generator host, as redis-benchmark does.
    const net::NodeRef client_host = cluster.add_client_host("loadgen");
    std::vector<std::shared_ptr<BenchClient>> clients;
    clients.reserve(static_cast<std::size_t>(opts.clients));

    // Timeline bookkeeping.
    auto timeline = std::make_shared<ThroughputTimeline>(opts.timeline_bin,
                                                         opts.measure);
    sim::SimTime measure_start = sim::SimTime::zero();

    obs::Tracer& tracer = cluster.tracer();
    if (opts.trace_stages) tracer.set_enabled(true);

    for (int i = 0; i < opts.clients; ++i) {
        auto client = std::make_shared<BenchClient>(
            sim, cluster.costs(), client_host,
            Generator(opts.spec, sim.fork_rng()), opts.client_turnaround);
        if (opts.trace_stages) {
            client->set_tracer(&tracer, "client/" + std::to_string(i));
        }
        if (timeline->enabled()) {
            client->set_completion_hook(
                [timeline, &measure_start, &sim](sim::Duration) {
                    timeline->record(sim.now() - measure_start);
                });
        }
        clients.push_back(client);
        cluster.connect_client(client_host, [client](net::ChannelPtr ch) {
            if (ch) client->attach(std::move(ch));
        });
    }

    // Warmup, then flip every client to recording.
    sim.run_until(sim.now() + opts.warmup);
    measure_start = sim.now();
    const double busy_before =
        static_cast<double>(cluster.master().node().core->total_busy().ns());
    // Snapshot the exact per-stage accumulators so the breakdown covers
    // only the measurement window (matched request populations).
    StageWindow stage_window;
    stage_window.begin(tracer);
    for (auto& c : clients) c->set_recording(true);

    // Scripted faults (Fig. 14).
    for (const auto& f : opts.faults) {
        sim.at(measure_start + f.at, [&cluster, f]() {
            if (f.recover) {
                cluster.slave(f.slave_idx).recover();
            } else {
                cluster.slave(f.slave_idx).crash();
            }
        });
    }

    sim.run_until(measure_start + opts.measure);
    for (auto& c : clients) {
        c->set_recording(false);
        c->stop();
    }

    RunResult res;
    sim::LatencyHistogram merged;
    for (const auto& c : clients) {
        merged.merge(c->latencies());
        res.ops += c->recorded_ops();
        res.errors += c->errors();
    }
    finalize_latency(res, merged, opts.measure);
    res.master_cpu_util =
        (cluster.master().node().core->total_busy().ns() - busy_before) /
        static_cast<double>(opts.measure.ns());
    timeline->fill(res);
    if (opts.trace_stages) {
        stage_window.finish(tracer, &res.stages);
    }
    return res;
}

} // namespace skv::workload
