#include "workload/runner.hpp"

#include <cstdio>
#include <memory>

#include "kv/object.hpp"
#include "workload/client.hpp"

namespace skv::workload {

std::string StageBreakdown::summary() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "e2e=%.1fus = rdma_write=%.1f + master_apply=%.1f + "
                  "reply=%.1f (sum=%.1f) | async: offload=%.1f fanout=%.1f "
                  "slave_ack=%.1f",
                  e2e_us, rdma_write_us, master_apply_us, reply_us,
                  critical_sum_us, offload_request_us, nic_fanout_us,
                  slave_ack_us);
    return buf;
}

std::string RunResult::summary() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "tput=%.1f kops/s mean=%.1fus p50=%.1fus p99=%.1fus "
                  "ops=%llu errs=%llu cpu=%.0f%%",
                  throughput_kops, mean_us, p50_us, p99_us,
                  static_cast<unsigned long long>(ops),
                  static_cast<unsigned long long>(errors),
                  master_cpu_util * 100.0);
    return buf;
}

RunResult run_workload(offload::Cluster& cluster, const RunOptions& opts) {
    auto& sim = cluster.sim();

    if (opts.preload) {
        // Populate every node identically, bypassing replication: the GET
        // experiments measure the steady state, not the loading phase.
        Generator loader(opts.spec, sim.fork_rng());
        for (std::uint64_t i = 0; i < opts.spec.key_count; ++i) {
            const std::string key = opts.spec.key_prefix + std::to_string(i);
            const std::string val = loader.make_value();
            cluster.master().db().set(key, kv::Object::make_string(val));
            for (int s = 0; s < cluster.slave_count(); ++s) {
                cluster.slave(s).db().set(key, kv::Object::make_string(val));
            }
        }
    }

    // All clients live on one load-generator host, as redis-benchmark does.
    const net::NodeRef client_host = cluster.add_client_host("loadgen");
    std::vector<std::shared_ptr<BenchClient>> clients;
    clients.reserve(static_cast<std::size_t>(opts.clients));

    // Timeline bookkeeping.
    std::vector<std::uint64_t> bins;
    sim::SimTime measure_start = sim::SimTime::zero();
    const bool want_timeline = opts.timeline_bin.ns() > 0;
    if (want_timeline) {
        const auto n = static_cast<std::size_t>(
            opts.measure.ns() / opts.timeline_bin.ns() + 1);
        bins.assign(n, 0);
    }

    obs::Tracer& tracer = cluster.tracer();
    if (opts.trace_stages) tracer.set_enabled(true);

    for (int i = 0; i < opts.clients; ++i) {
        auto client = std::make_shared<BenchClient>(
            sim, cluster.costs(), client_host,
            Generator(opts.spec, sim.fork_rng()), opts.client_turnaround);
        if (opts.trace_stages) {
            client->set_tracer(&tracer, "client/" + std::to_string(i));
        }
        if (want_timeline) {
            client->set_completion_hook([&bins, &measure_start, &sim,
                                         bin = opts.timeline_bin](sim::Duration) {
                const auto idx = static_cast<std::size_t>(
                    (sim.now() - measure_start).ns() / bin.ns());
                if (idx < bins.size()) ++bins[idx];
            });
        }
        clients.push_back(client);
        cluster.connect_client(client_host, [client](net::ChannelPtr ch) {
            if (ch) client->attach(std::move(ch));
        });
    }

    // Warmup, then flip every client to recording.
    sim.run_until(sim.now() + opts.warmup);
    measure_start = sim.now();
    const double busy_before =
        static_cast<double>(cluster.master().node().core->total_busy().ns());
    // Snapshot the exact per-stage accumulators so the breakdown covers
    // only the measurement window (matched request populations).
    std::array<obs::StageAccum, static_cast<std::size_t>(obs::Stage::kCount)>
        accum_before{};
    for (std::size_t i = 0; i < accum_before.size(); ++i) {
        accum_before[i] = tracer.stage_accum(static_cast<obs::Stage>(i));
    }
    for (auto& c : clients) c->set_recording(true);

    // Scripted faults (Fig. 14).
    for (const auto& f : opts.faults) {
        sim.at(measure_start + f.at, [&cluster, f]() {
            if (f.recover) {
                cluster.slave(f.slave_idx).recover();
            } else {
                cluster.slave(f.slave_idx).crash();
            }
        });
    }

    sim.run_until(measure_start + opts.measure);
    for (auto& c : clients) {
        c->set_recording(false);
        c->stop();
    }

    RunResult res;
    sim::LatencyHistogram merged;
    for (const auto& c : clients) {
        merged.merge(c->latencies());
        res.ops += c->recorded_ops();
        res.errors += c->errors();
    }
    res.throughput_kops =
        static_cast<double>(res.ops) / opts.measure.sec() / 1e3;
    res.mean_us = merged.mean_us();
    res.p50_us = static_cast<double>(merged.p50_ns()) / 1e3;
    res.p99_us = static_cast<double>(merged.p99_ns()) / 1e3;
    res.max_us = static_cast<double>(merged.max_ns()) / 1e3;
    res.master_cpu_util =
        (cluster.master().node().core->total_busy().ns() - busy_before) /
        static_cast<double>(opts.measure.ns());
    if (want_timeline) {
        res.timeline_kops.reserve(bins.size());
        for (const auto b : bins) {
            res.timeline_kops.push_back(static_cast<double>(b) /
                                        opts.timeline_bin.sec() / 1e3);
        }
    }
    if (opts.trace_stages) {
        const auto mean_delta_us = [&](obs::Stage st, std::uint64_t* n) {
            const auto& after = tracer.stage_accum(st);
            const auto& before = accum_before[static_cast<std::size_t>(st)];
            const std::uint64_t count = after.count - before.count;
            if (n != nullptr) *n = count;
            if (count == 0) return 0.0;
            return static_cast<double>(after.sum_ns - before.sum_ns) /
                   static_cast<double>(count) / 1e3;
        };
        StageBreakdown& sb = res.stages;
        sb.e2e_us = mean_delta_us(obs::Stage::kClientE2e, &sb.requests);
        sb.rdma_write_us = mean_delta_us(obs::Stage::kRdmaWrite, nullptr);
        sb.master_apply_us = mean_delta_us(obs::Stage::kMasterApply, nullptr);
        sb.reply_us = mean_delta_us(obs::Stage::kReply, nullptr);
        sb.critical_sum_us =
            sb.rdma_write_us + sb.master_apply_us + sb.reply_us;
        sb.offload_request_us = mean_delta_us(obs::Stage::kOffloadRequest, nullptr);
        sb.nic_fanout_us = mean_delta_us(obs::Stage::kNicFanout, nullptr);
        sb.slave_ack_us = mean_delta_us(obs::Stage::kSlaveAck, nullptr);
        sb.valid = sb.requests > 0;
    }
    return res;
}

} // namespace skv::workload
