#include "workload/runner.hpp"

#include <cstdio>
#include <memory>

#include "kv/object.hpp"
#include "workload/client.hpp"

namespace skv::workload {

std::string RunResult::summary() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "tput=%.1f kops/s mean=%.1fus p50=%.1fus p99=%.1fus "
                  "ops=%llu errs=%llu cpu=%.0f%%",
                  throughput_kops, mean_us, p50_us, p99_us,
                  static_cast<unsigned long long>(ops),
                  static_cast<unsigned long long>(errors),
                  master_cpu_util * 100.0);
    return buf;
}

RunResult run_workload(offload::Cluster& cluster, const RunOptions& opts) {
    auto& sim = cluster.sim();

    if (opts.preload) {
        // Populate every node identically, bypassing replication: the GET
        // experiments measure the steady state, not the loading phase.
        Generator loader(opts.spec, sim.fork_rng());
        for (std::uint64_t i = 0; i < opts.spec.key_count; ++i) {
            const std::string key = opts.spec.key_prefix + std::to_string(i);
            const std::string val = loader.make_value();
            cluster.master().db().set(key, kv::Object::make_string(val));
            for (int s = 0; s < cluster.slave_count(); ++s) {
                cluster.slave(s).db().set(key, kv::Object::make_string(val));
            }
        }
    }

    // All clients live on one load-generator host, as redis-benchmark does.
    const net::NodeRef client_host = cluster.add_client_host("loadgen");
    std::vector<std::shared_ptr<BenchClient>> clients;
    clients.reserve(static_cast<std::size_t>(opts.clients));

    // Timeline bookkeeping.
    std::vector<std::uint64_t> bins;
    sim::SimTime measure_start = sim::SimTime::zero();
    const bool want_timeline = opts.timeline_bin.ns() > 0;
    if (want_timeline) {
        const auto n = static_cast<std::size_t>(
            opts.measure.ns() / opts.timeline_bin.ns() + 1);
        bins.assign(n, 0);
    }

    for (int i = 0; i < opts.clients; ++i) {
        auto client = std::make_shared<BenchClient>(
            sim, cluster.costs(), client_host,
            Generator(opts.spec, sim.fork_rng()), opts.client_turnaround);
        if (want_timeline) {
            client->set_completion_hook([&bins, &measure_start, &sim,
                                         bin = opts.timeline_bin](sim::Duration) {
                const auto idx = static_cast<std::size_t>(
                    (sim.now() - measure_start).ns() / bin.ns());
                if (idx < bins.size()) ++bins[idx];
            });
        }
        clients.push_back(client);
        cluster.connect_client(client_host, [client](net::ChannelPtr ch) {
            if (ch) client->attach(std::move(ch));
        });
    }

    // Warmup, then flip every client to recording.
    sim.run_until(sim.now() + opts.warmup);
    measure_start = sim.now();
    const double busy_before =
        static_cast<double>(cluster.master().node().core->total_busy().ns());
    for (auto& c : clients) c->set_recording(true);

    // Scripted faults (Fig. 14).
    for (const auto& f : opts.faults) {
        sim.at(measure_start + f.at, [&cluster, f]() {
            if (f.recover) {
                cluster.slave(f.slave_idx).recover();
            } else {
                cluster.slave(f.slave_idx).crash();
            }
        });
    }

    sim.run_until(measure_start + opts.measure);
    for (auto& c : clients) {
        c->set_recording(false);
        c->stop();
    }

    RunResult res;
    sim::LatencyHistogram merged;
    for (const auto& c : clients) {
        merged.merge(c->latencies());
        res.ops += c->recorded_ops();
        res.errors += c->errors();
    }
    res.throughput_kops =
        static_cast<double>(res.ops) / opts.measure.sec() / 1e3;
    res.mean_us = merged.mean_us();
    res.p50_us = static_cast<double>(merged.p50_ns()) / 1e3;
    res.p99_us = static_cast<double>(merged.p99_ns()) / 1e3;
    res.max_us = static_cast<double>(merged.max_ns()) / 1e3;
    res.master_cpu_util =
        (cluster.master().node().core->total_busy().ns() - busy_before) /
        static_cast<double>(opts.measure.ns());
    if (want_timeline) {
        res.timeline_kops.reserve(bins.size());
        for (const auto b : bins) {
            res.timeline_kops.push_back(static_cast<double>(b) /
                                        opts.timeline_bin.sec() / 1e3);
        }
    }
    return res;
}

} // namespace skv::workload
