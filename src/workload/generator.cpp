#include "workload/generator.hpp"

#include "sim/check.hpp"

namespace skv::workload {

Generator::Generator(WorkloadSpec spec, sim::Rng rng)
    : spec_(std::move(spec)), rng_(rng) {
    if (spec_.key_dist == KeyDist::kZipfian ||
        spec_.key_dist == KeyDist::kLatest) {
        // kLatest draws zipfian over recency; the generator's item count
        // then grows with the frontier (ZipfianGenerator::next(rng, n)).
        zipf_ = std::make_unique<sim::ZipfianGenerator>(spec_.key_count,
                                                        spec_.zipf_theta);
    }
}

std::uint64_t Generator::next_key_index() {
    switch (spec_.key_dist) {
    case KeyDist::kUniform:
        return rng_.next_below(spec_.key_count);
    case KeyDist::kZipfian:
        return zipf_->next(rng_);
    case KeyDist::kLatest: {
        // YCSB SkewedLatestGenerator: zipfian-distributed distance from the
        // newest key, so the most recent inserts are the hottest.
        SKV_CHECK(frontier_ != nullptr);
        const std::uint64_t n = frontier_->size();
        const std::uint64_t back = zipf_->next(rng_, n);
        return n - 1 - back;
    }
    case KeyDist::kScan:
        // Scan-start chooser: uniform over every key that exists right now.
        SKV_CHECK(frontier_ != nullptr);
        return rng_.next_below(frontier_->size());
    }
    SKV_UNREACHABLE("bad KeyDist");
}

std::string Generator::key_name(std::uint64_t idx) const {
    return spec_.key_prefix + std::to_string(idx);
}

std::string Generator::next_key() { return key_name(next_key_index()); }

std::string Generator::pick_key() { return next_key(); }

std::string Generator::make_value() {
    std::string v(spec_.value_bytes, 'x');
    // Vary a small prefix so values are not all identical (and int-encoded).
    const std::uint64_t tag = rng_.next_u64();
    for (std::size_t i = 0; i < 8 && i < v.size(); ++i) {
        v[i] = static_cast<char>('a' + ((tag >> (i * 8)) % 26));
    }
    return v;
}

std::vector<std::string> Generator::next() {
    if (rng_.next_double() < spec_.set_ratio) {
        ++sets_;
        return {"SET", pick_key(), make_value()};
    }
    ++gets_;
    return {"GET", pick_key()};
}

} // namespace skv::workload
