#include "workload/generator.hpp"

namespace skv::workload {

Generator::Generator(WorkloadSpec spec, sim::Rng rng)
    : spec_(std::move(spec)), rng_(rng) {
    if (spec_.key_dist == KeyDist::kZipfian) {
        zipf_ = std::make_unique<sim::ZipfianGenerator>(spec_.key_count,
                                                        spec_.zipf_theta);
    }
}

std::string Generator::pick_key() {
    const std::uint64_t idx = spec_.key_dist == KeyDist::kZipfian
                                  ? zipf_->next(rng_)
                                  : rng_.next_below(spec_.key_count);
    return spec_.key_prefix + std::to_string(idx);
}

std::string Generator::make_value() {
    std::string v(spec_.value_bytes, 'x');
    // Vary a small prefix so values are not all identical (and int-encoded).
    const std::uint64_t tag = rng_.next_u64();
    for (std::size_t i = 0; i < 8 && i < v.size(); ++i) {
        v[i] = static_cast<char>('a' + ((tag >> (i * 8)) % 26));
    }
    return v;
}

std::vector<std::string> Generator::next() {
    if (rng_.next_double() < spec_.set_ratio) {
        ++sets_;
        return {"SET", pick_key(), make_value()};
    }
    ++gets_;
    return {"GET", pick_key()};
}

} // namespace skv::workload
