#include "workload/ycsb/workload_mix.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace skv::workload::ycsb {

const char* to_string(Workload w) {
    switch (w) {
    case Workload::kA: return "A";
    case Workload::kB: return "B";
    case Workload::kC: return "C";
    case Workload::kD: return "D";
    case Workload::kE: return "E";
    case Workload::kF: return "F";
    }
    SKV_UNREACHABLE("bad Workload");
}

bool workload_from_char(char c, Workload* out) {
    if (c >= 'a' && c <= 'f') c = static_cast<char>(c - 'a' + 'A');
    if (c < 'A' || c > 'F') return false;
    *out = static_cast<Workload>(c - 'A');
    return true;
}

OpMix standard_mix(Workload w) {
    OpMix m;
    switch (w) {
    case Workload::kA: m.read = 0.50; m.update = 0.50; break;
    case Workload::kB: m.read = 0.95; m.update = 0.05; break;
    case Workload::kC: m.read = 1.00; break;
    case Workload::kD: m.read = 0.95; m.insert = 0.05; break;
    case Workload::kE: m.scan = 0.95; m.insert = 0.05; break;
    case Workload::kF: m.read = 0.50; m.rmw = 0.50; break;
    }
    return m;
}

KeyDist standard_dist(Workload w) {
    switch (w) {
    case Workload::kA:
    case Workload::kB:
    case Workload::kC:
    case Workload::kF: return KeyDist::kZipfian;
    case Workload::kD: return KeyDist::kLatest;
    case Workload::kE: return KeyDist::kScan;
    }
    SKV_UNREACHABLE("bad Workload");
}

YcsbOptions YcsbOptions::standard(Workload w) {
    YcsbOptions o;
    o.workload = w;
    o.request_dist = standard_dist(w);
    return o;
}

const char* to_string(YcsbOp::Kind t) {
    switch (t) {
    case YcsbOp::Kind::kRead: return "read";
    case YcsbOp::Kind::kUpdate: return "update";
    case YcsbOp::Kind::kInsert: return "insert";
    case YcsbOp::Kind::kScan: return "scan";
    case YcsbOp::Kind::kRmw: return "rmw";
    }
    SKV_UNREACHABLE("bad YcsbOp::Kind");
}

namespace {
WorkloadSpec spec_from(const YcsbOptions& o) {
    WorkloadSpec s;
    s.key_count = o.record_count;
    s.key_dist = o.request_dist;
    s.zipf_theta = o.zipf_theta;
    s.value_bytes = o.value_bytes;
    s.key_prefix = o.key_prefix;
    return s;
}
} // namespace

MixGenerator::MixGenerator(YcsbOptions opts, sim::Rng rng,
                           std::shared_ptr<KeyFrontier> frontier)
    : opts_(std::move(opts)), mix_(standard_mix(opts_.workload)), rng_(rng),
      gen_(spec_from(opts_), rng_.fork()), frontier_(std::move(frontier)) {
    SKV_CHECK(frontier_ != nullptr);
    SKV_CHECK(frontier_->size() >= opts_.record_count);
    SKV_CHECK(opts_.scan_len_max >= 1);
    gen_.set_frontier(frontier_);
}

YcsbOp MixGenerator::next() {
    YcsbOp op;
    const double u = rng_.next_double();
    double edge = mix_.read;
    if (u < edge) {
        op.kind = YcsbOp::Kind::kRead;
        op.key = gen_.next_key();
        return op;
    }
    edge += mix_.update;
    if (u < edge) {
        op.kind = YcsbOp::Kind::kUpdate;
        op.key = gen_.next_key();
        op.value = gen_.make_value();
        return op;
    }
    edge += mix_.insert;
    if (u < edge) {
        // The insert claims its key id at generation time: every chooser
        // sharing the frontier immediately sees the grown keyspace, matching
        // YCSB's transactionInsertKeySequence.
        op.kind = YcsbOp::Kind::kInsert;
        op.key = gen_.key_name(frontier_->acquire_insert());
        op.value = gen_.make_value();
        return op;
    }
    edge += mix_.scan;
    if (u < edge) {
        op.kind = YcsbOp::Kind::kScan;
        const std::uint64_t start = gen_.next_key_index();
        const std::uint64_t want =
            1 + rng_.next_below(static_cast<std::uint64_t>(opts_.scan_len_max));
        const std::uint64_t len =
            std::min<std::uint64_t>(want, frontier_->size() - start);
        op.key = gen_.key_name(start);
        op.scan_keys.reserve(static_cast<std::size_t>(len));
        for (std::uint64_t i = 0; i < len; ++i) {
            op.scan_keys.push_back(gen_.key_name(start + i));
        }
        return op;
    }
    op.kind = YcsbOp::Kind::kRmw;
    op.key = gen_.next_key();
    op.value = gen_.make_value();
    return op;
}

} // namespace skv::workload::ycsb
