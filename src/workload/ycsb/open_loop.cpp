#include "workload/ycsb/open_loop.hpp"

#include <cstdio>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "sim/check.hpp"

namespace skv::workload::ycsb {

std::string OpenLoopResult::summary() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "offered=%.1f achieved=%.1f kops/s p50=%.1fus p99=%.1fus "
                  "p999=%.1fus arrivals=%llu done=%llu errs=%llu backlog=%llu",
                  offered_kops, achieved_kops, run.p50_us, run.p99_us,
                  run.p999_us, static_cast<unsigned long long>(arrivals),
                  static_cast<unsigned long long>(completed),
                  static_cast<unsigned long long>(failed + timed_out),
                  static_cast<unsigned long long>(peak_queued));
    return buf;
}

namespace {

std::size_t kind_idx(YcsbOp::Kind t) { return static_cast<std::size_t>(t); }

/// A timeout on either leg means the op may have (partially) applied;
/// otherwise any failed leg fails the op.
check::Outcome combine(check::Outcome a, check::Outcome b) {
    if (a == check::Outcome::kTimeout || b == check::Outcome::kTimeout) {
        return check::Outcome::kTimeout;
    }
    if (a == check::Outcome::kFail || b == check::Outcome::kFail) {
        return check::Outcome::kFail;
    }
    return check::Outcome::kOk;
}

struct Pending {
    YcsbOp op;
    sim::SimTime intended; // arrival time: latency is measured from here
    bool record = false;
};

/// The open-loop scheduler: one arrival process, one FIFO backlog, one
/// LIFO pool of idle connections. Held in a shared_ptr because in-flight
/// op callbacks (and their retry timers) may outlive run_open_loop's
/// drain cap.
struct Driver : std::enable_shared_from_this<Driver> {
    Driver(sim::Simulation& s, const OpenLoopOptions& o, MixGenerator m)
        : sim(s), opts(o), mix(std::move(m)), arr_rng(s.fork_rng()),
          timeline(o.timeline_bin, o.measure) {}

    sim::Simulation& sim;
    OpenLoopOptions opts; // copied: in-flight callbacks may outlive the caller
    MixGenerator mix;
    sim::Rng arr_rng; // arrival-gap draws (own stream)
    ThroughputTimeline timeline;

    std::vector<std::shared_ptr<RetryClient>> conns;
    std::vector<std::size_t> idle; // LIFO free list
    std::deque<Pending> queue;     // FIFO backlog of arrivals

    sim::SimTime measure_begin = sim::SimTime::zero();
    sim::SimTime measure_end = sim::SimTime::zero();

    std::uint64_t in_flight = 0;
    std::uint64_t arrivals_recorded = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t peak_queued = 0;
    sim::LatencyHistogram merged;
    std::array<sim::LatencyHistogram, YcsbOp::kKindCount> per_type{};

    [[nodiscard]] bool drained() const {
        return in_flight == 0 && queue.empty();
    }

    [[nodiscard]] sim::Duration next_gap() {
        const double mean_ns = 1e6 / opts.offered_kops;
        double g = mean_ns;
        if (opts.poisson) g = arr_rng.next_exponential(mean_ns);
        auto ns = static_cast<std::int64_t>(g + 0.5);
        if (ns < 1) ns = 1;
        return sim::Duration(ns);
    }

    void schedule_next_arrival() {
        const sim::Duration gap = next_gap();
        if (sim.now() + gap >= measure_end) return; // arrivals cease
        auto self = shared_from_this();
        sim.after(gap, [self]() {
            self->on_arrival();
            self->schedule_next_arrival();
        });
    }

    void on_arrival() {
        Pending p;
        p.op = mix.next();
        p.intended = sim.now();
        p.record = sim.now() >= measure_begin;
        if (p.record) ++arrivals_recorded;
        if (!idle.empty()) {
            const std::size_t i = idle.back();
            idle.pop_back();
            dispatch(i, std::move(p));
            return;
        }
        queue.push_back(std::move(p));
        if (queue.size() > peak_queued) peak_queued = queue.size();
    }

    void dispatch(std::size_t i, Pending p) {
        ++in_flight;
        auto self = shared_from_this();
        if (p.op.kind == YcsbOp::Kind::kRmw) {
            // Read-modify-write: a dependent read-then-write pair on one
            // connection; latency covers both legs from the arrival.
            RetryClient::DrivenOp rd;
            rd.key = p.op.key;
            conns[i]->issue(std::move(rd), [self, i, p = std::move(p)](
                                               check::Outcome ro) mutable {
                RetryClient::DrivenOp wr;
                wr.type = check::OpType::kWrite;
                wr.key = p.op.key;
                wr.value = std::move(p.op.value);
                self->conns[i]->issue(
                    std::move(wr),
                    [self, i, p = std::move(p), ro](check::Outcome wo) mutable {
                        self->complete(i, std::move(p), combine(ro, wo));
                    });
            });
            return;
        }
        RetryClient::DrivenOp d;
        switch (p.op.kind) {
        case YcsbOp::Kind::kRead:
            d.key = p.op.key;
            break;
        case YcsbOp::Kind::kUpdate:
        case YcsbOp::Kind::kInsert:
            d.type = check::OpType::kWrite;
            d.key = p.op.key;
            d.value = p.op.value;
            break;
        case YcsbOp::Kind::kScan:
            d.key = p.op.key;
            d.scan_keys = p.op.scan_keys;
            break;
        case YcsbOp::Kind::kRmw:
            SKV_UNREACHABLE("handled above");
        }
        conns[i]->issue(std::move(d),
                        [self, i, p = std::move(p)](check::Outcome o) mutable {
                            self->complete(i, std::move(p), o);
                        });
    }

    void complete(std::size_t i, Pending p, check::Outcome o) {
        SKV_CHECK(in_flight > 0);
        --in_flight;
        if (p.record) {
            // Intended-start latency: queue wait included (CO-safe).
            const sim::Duration lat = sim.now() - p.intended;
            ++completed;
            merged.record(lat);
            per_type[kind_idx(p.op.kind)].record(lat);
            if (o == check::Outcome::kFail) ++failed;
            if (o == check::Outcome::kTimeout) ++timed_out;
            timeline.record(sim.now() - measure_begin);
        }
        if (!queue.empty()) {
            Pending next = std::move(queue.front());
            queue.pop_front();
            dispatch(i, std::move(next));
            return;
        }
        idle.push_back(i);
    }
};

} // namespace

OpenLoopResult run_open_loop(offload::Cluster& cluster,
                             const OpenLoopOptions& opts) {
    auto& sim = cluster.sim();
    SKV_CHECK(opts.connections >= 1);
    SKV_CHECK(opts.connections_per_host >= 1);
    SKV_CHECK(opts.offered_kops > 0);

    if (opts.preload) {
        WorkloadSpec pspec;
        pspec.key_count = opts.ycsb.record_count;
        pspec.key_dist = KeyDist::kUniform; // loader only draws values
        pspec.value_bytes = opts.ycsb.value_bytes;
        pspec.key_prefix = opts.ycsb.key_prefix;
        preload_keyspace(cluster, pspec);
    }

    obs::Tracer& tracer = cluster.tracer();
    if (opts.trace_stages) tracer.set_enabled(true);

    auto frontier = std::make_shared<KeyFrontier>(opts.ycsb.record_count);
    auto driver = std::make_shared<Driver>(
        sim, opts, MixGenerator(opts.ycsb, sim.fork_rng(), frontier));

    std::vector<RetryClient::Target> targets;
    targets.push_back(
        {cluster.master().node().ep, cluster.master().config().port});
    for (int s = 0; s < cluster.slave_count(); ++s) {
        targets.push_back(
            {cluster.slave(s).node().ep, cluster.slave(s).config().port});
    }
    auto dial = [&cluster](net::NodeRef from, RetryClient::Target t,
                           std::function<void(net::ChannelPtr)> cb) {
        cluster.cm().connect(from, t.ep, t.port, std::move(cb));
    };

    const int cph = opts.connections_per_host;
    std::vector<net::NodeRef> hosts;
    hosts.reserve(static_cast<std::size_t>((opts.connections + cph - 1) / cph));
    driver->conns.reserve(static_cast<std::size_t>(opts.connections));
    for (int i = 0; i < opts.connections; ++i) {
        if (i / cph >= static_cast<int>(hosts.size())) {
            hosts.push_back(
                cluster.add_client_host("ycsb" + std::to_string(i / cph)));
        }
        // The per-connection Generator is unused in driven mode (the driver
        // owns op generation); a minimal spec keeps construction cheap.
        WorkloadSpec unused;
        unused.key_count = 1;
        unused.value_bytes = 1;
        auto conn = std::make_shared<RetryClient>(
            sim, cluster.costs(), hosts[static_cast<std::size_t>(i / cph)],
            1'000'000 + static_cast<std::uint64_t>(i),
            Generator(unused, sim.fork_rng()), opts.policy, targets, dial,
            /*history=*/nullptr);
        if (opts.trace_stages) {
            conn->set_tracer(&tracer, "ycsb/" + std::to_string(i));
        }
        driver->conns.push_back(std::move(conn));
        driver->idle.push_back(static_cast<std::size_t>(i));
    }

    driver->measure_begin = sim.now() + opts.warmup;
    driver->measure_end = driver->measure_begin + opts.measure;
    driver->schedule_next_arrival();

    sim.run_until(driver->measure_begin);
    const double busy_before =
        static_cast<double>(cluster.master().node().core->total_busy().ns());
    StageWindow stage_window;
    stage_window.begin(tracer);

    sim.run_until(driver->measure_end);
    const double busy_after =
        static_cast<double>(cluster.master().node().core->total_busy().ns());
    StageBreakdown stages;
    if (opts.trace_stages) stage_window.finish(tracer, &stages);

    // Drain: no new arrivals; let queued/in-flight window ops finish (their
    // latency belongs to the window). The retry machinery's op deadlines
    // bound each op, the cap bounds the loop.
    const sim::SimTime drain_stop = driver->measure_end + opts.drain;
    while (sim.now() < drain_stop && !driver->drained()) {
        sim.run_until(sim.now() + sim::milliseconds(10));
    }

    OpenLoopResult res;
    res.run.ops = driver->completed;
    res.run.errors = driver->failed + driver->timed_out;
    finalize_latency(res.run, driver->merged, opts.measure);
    res.run.master_cpu_util =
        (busy_after - busy_before) / static_cast<double>(opts.measure.ns());
    driver->timeline.fill(res.run);
    if (opts.trace_stages) res.run.stages = stages;

    res.offered_kops = opts.offered_kops;
    res.achieved_kops = res.run.throughput_kops;
    res.arrivals = driver->arrivals_recorded;
    res.completed = driver->completed;
    res.failed = driver->failed;
    res.timed_out = driver->timed_out;
    res.peak_queued = driver->peak_queued;
    for (const auto& c : driver->conns) res.retries += c->retries();
    for (int t = 0; t < YcsbOp::kKindCount; ++t) {
        const auto& h = driver->per_type[static_cast<std::size_t>(t)];
        auto& s = res.per_type[static_cast<std::size_t>(t)];
        s.ops = h.count();
        if (h.count() == 0) continue;
        s.mean_us = h.mean_us();
        s.p50_us = static_cast<double>(h.p50_ns()) / 1e3;
        s.p95_us = static_cast<double>(h.quantile_ns(0.95)) / 1e3;
        s.p99_us = static_cast<double>(h.p99_ns()) / 1e3;
        s.p999_us = static_cast<double>(h.p999_ns()) / 1e3;
    }
    return res;
}

} // namespace skv::workload::ycsb
