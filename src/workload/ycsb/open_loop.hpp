#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "skv/cluster.hpp"
#include "workload/retry_client.hpp"
#include "workload/runner.hpp"
#include "workload/ycsb/workload_mix.hpp"

namespace skv::workload::ycsb {

/// Knobs of the open-loop driver (see EXPERIMENTS.md knob ledger).
///
/// Open loop means arrivals are scheduled by a rate process, independent of
/// completions: when the server slows down, requests queue at the driver
/// instead of the offered load silently dropping. Latency is measured from
/// each op's *intended start* (its arrival), so queue wait is included —
/// the coordinated-omission-safe methodology.
struct OpenLoopOptions {
    YcsbOptions ycsb{};
    /// Simulated connection pool: each arrival is dispatched to an idle
    /// connection, or queued FIFO until one frees up.
    int connections = 256;
    /// Connections are spread over client hosts this many per host (one
    /// simulated core per host, as redis-benchmark threads would be).
    int connections_per_host = 64;
    /// Offered arrival rate (thousands of ops per second).
    double offered_kops = 40.0;
    /// Poisson arrivals (exponential gaps) when true; a fixed-rate
    /// metronome when false.
    bool poisson = true;
    sim::Duration warmup{sim::milliseconds(300)};
    sim::Duration measure{sim::seconds(2)};
    /// After the measurement window, arrivals stop and the driver runs up
    /// to this much longer so queued/in-flight recorded ops complete (their
    /// latency belongs to the window they arrived in).
    sim::Duration drain{sim::seconds(8)};
    bool preload = true;
    /// Per-connection retry/timeout machinery (same semantics as the
    /// closed-loop RetryClient fleet).
    RetryPolicy policy{};
    /// When non-zero, collect RunResult::timeline_kops at this bin width.
    sim::Duration timeline_bin{sim::Duration::zero()};
    /// Fill RunResult::stages from the measurement window (tracer-based).
    bool trace_stages = false;
};

/// Per-op-type latency digest (intended-start based, like the merged run).
struct OpTypeStats {
    std::uint64_t ops = 0;
    double mean_us = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double p999_us = 0;
};

struct OpenLoopResult {
    /// Merged coordinated-omission-safe result: ops/errors/latency over
    /// every op that *arrived* in the measurement window (even if it
    /// completed during the drain), timeline and stage breakdown included.
    RunResult run;
    double offered_kops = 0;
    /// Completions of measurement-window arrivals / window length. Tracks
    /// offered_kops until the server saturates, then flattens while the
    /// latency tail explodes — the canonical open-loop signature.
    double achieved_kops = 0;
    std::uint64_t arrivals = 0;  // ops that arrived inside the window
    std::uint64_t completed = 0; // of those, completed before drain ended
    std::uint64_t failed = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t retries = 0; // across all connections, whole run
    /// High-water mark of arrivals waiting for a free connection: the
    /// backlog a closed-loop driver would never let build up.
    std::uint64_t peak_queued = 0;
    std::array<OpTypeStats, YcsbOp::kKindCount> per_type{};

    [[nodiscard]] std::string summary() const;
};

/// Drive the cluster with an open-loop YCSB arrival stream and measure.
/// The cluster must already be start()ed. One MixGenerator produces the
/// arrival-ordered op stream (so the connection count never perturbs the
/// operation sequence); connections only execute.
OpenLoopResult run_open_loop(offload::Cluster& cluster,
                             const OpenLoopOptions& opts);

} // namespace skv::workload::ycsb
