#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "workload/generator.hpp"

namespace skv::workload::ycsb {

/// The six standard YCSB core workloads (Cooper et al., SoCC '10):
///   A: update-heavy (50% read / 50% update, zipfian)
///   B: read-mostly  (95% read /  5% update, zipfian)
///   C: read-only    (100% read, zipfian)
///   D: read-latest  (95% read /  5% insert, latest)
///   E: short-ranges (95% scan /  5% insert, scan-start chooser)
///   F: read-modify-write (50% read / 50% RMW, zipfian)
enum class Workload : std::uint8_t { kA, kB, kC, kD, kE, kF };

[[nodiscard]] const char* to_string(Workload w);
/// Parse 'A'..'F' / 'a'..'f'. Returns false on anything else.
bool workload_from_char(char c, Workload* out);

/// Operation-type fractions (sum to 1.0).
struct OpMix {
    double read = 0;
    double update = 0;
    double insert = 0;
    double scan = 0;
    double rmw = 0;
};

/// The canonical mix / key chooser for a standard workload.
[[nodiscard]] OpMix standard_mix(Workload w);
[[nodiscard]] KeyDist standard_dist(Workload w);

/// Knobs of the YCSB mix layer (see EXPERIMENTS.md knob ledger).
struct YcsbOptions {
    Workload workload = Workload::kA;
    /// Preloaded keyspace size; inserts extend it through the shared
    /// KeyFrontier.
    std::uint64_t record_count = 10'000;
    /// Key chooser for read/update/scan-start picks. standard() sets the
    /// canonical chooser per workload; sweeps may override (e.g. uniform A).
    KeyDist request_dist = KeyDist::kZipfian;
    double zipf_theta = 0.99;
    std::size_t value_bytes = 64;
    /// Scan lengths are uniform in [1, scan_len_max] (workload E).
    int scan_len_max = 16;
    std::string key_prefix = "key:";

    /// The canonical options for a standard workload (mix and chooser per
    /// the YCSB core-workload definitions).
    static YcsbOptions standard(Workload w);
};

/// One generated operation. kScan carries the precomputed key window
/// (sent as a single MGET — the simulator's stand-in for a range scan);
/// kRmw is executed as a dependent read-then-write pair on one connection.
struct YcsbOp {
    enum class Kind : std::uint8_t { kRead, kUpdate, kInsert, kScan, kRmw };
    static constexpr int kKindCount = 5;

    Kind kind = Kind::kRead;
    std::string key;
    std::string value; // update / insert / rmw
    std::vector<std::string> scan_keys;
};

[[nodiscard]] const char* to_string(YcsbOp::Kind t);

/// Deterministic YCSB operation stream, layered on workload::Generator's
/// key choosers and forked-RNG discipline: each MixGenerator owns private
/// RNG streams, so generator count never perturbs another's sequence. The
/// KeyFrontier is the one deliberately shared piece of state — inserts
/// claim their key id at generation time, and every chooser sharing the
/// frontier sees the grown keyspace.
class MixGenerator {
public:
    MixGenerator(YcsbOptions opts, sim::Rng rng,
                 std::shared_ptr<KeyFrontier> frontier);

    /// The next operation of the stream.
    YcsbOp next();

    [[nodiscard]] const YcsbOptions& options() const { return opts_; }
    [[nodiscard]] const OpMix& mix() const { return mix_; }
    [[nodiscard]] const std::shared_ptr<KeyFrontier>& frontier() const {
        return frontier_;
    }

private:
    YcsbOptions opts_;
    OpMix mix_;
    sim::Rng rng_; // op-type and scan-length draws
    Generator gen_; // key choosers + value fill (own forked stream)
    std::shared_ptr<KeyFrontier> frontier_;
};

} // namespace skv::workload::ycsb
