#include "check/linearize.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace skv::check {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

/// One op of a per-key sub-history, with the value interned to an id.
/// Id 0 is reserved for "key absent" (the initial register state and the
/// observation of a read miss).
struct KOp {
    OpType type = OpType::kRead;
    std::uint32_t value_id = 0;
    bool must = true; // kOk ops must linearize; open (timeout) writes may
    std::int64_t invoke = 0;
    std::int64_t complete = kInf;
};

/// Memoized Wing–Gong search over one key's sub-history.
class KeySearch {
public:
    KeySearch(std::vector<KOp> ops, std::uint64_t budget)
        : ops_(std::move(ops)), budget_(budget) {
        for (const auto& op : ops_) must_total_ += op.must ? 1 : 0;
        words_ = (ops_.size() + 63) / 64;
    }

    /// True iff a linearization of all must-ops exists.
    bool run() {
        std::vector<std::uint64_t> mask(words_, 0);
        return dfs(mask, /*value=*/0, must_total_);
    }

    [[nodiscard]] bool exhausted() const { return exhausted_; }
    [[nodiscard]] std::uint64_t explored() const { return explored_; }

private:
    bool linearized(const std::vector<std::uint64_t>& mask, std::size_t i) const {
        return (mask[i / 64] >> (i % 64)) & 1U;
    }

    bool dfs(std::vector<std::uint64_t>& mask, std::uint32_t value,
             std::size_t must_left) {
        if (must_left == 0) return true;
        if (++explored_ > budget_) {
            exhausted_ = true;
            return false;
        }
        // Memo on (linearized set, register value): two search paths that
        // linearized the same set and left the register holding the same
        // value have identical futures.
        {
            std::vector<std::uint64_t> key = mask;
            key.push_back(value);
            if (!visited_.insert(std::move(key)).second) return false;
        }
        // Frontier rule: op i may be linearized next iff no *other*
        // unlinearized op completed strictly before i was invoked. The two
        // smallest completion times among unlinearized ops give each op
        // its bound in O(n).
        std::size_t idx1 = ops_.size();
        std::int64_t m1 = kInf;
        std::int64_t m2 = kInf;
        for (std::size_t i = 0; i < ops_.size(); ++i) {
            if (linearized(mask, i)) continue;
            const std::int64_t c = ops_[i].complete;
            if (c < m1) {
                m2 = m1;
                m1 = c;
                idx1 = i;
            } else if (c < m2) {
                m2 = c;
            }
        }
        for (std::size_t i = 0; i < ops_.size(); ++i) {
            if (linearized(mask, i)) continue;
            const KOp& op = ops_[i];
            const std::int64_t bound = i == idx1 ? m2 : m1;
            if (bound < op.invoke) continue; // another op precedes it in real time
            std::uint32_t next_value = value;
            if (op.type == OpType::kRead) {
                if (op.value_id != value) continue; // read would observe a stale value
            } else {
                next_value = op.value_id;
            }
            mask[i / 64] |= 1ULL << (i % 64);
            const bool ok = dfs(mask, next_value, must_left - (op.must ? 1 : 0));
            mask[i / 64] &= ~(1ULL << (i % 64));
            if (ok || exhausted_) return ok;
        }
        return false;
    }

    std::vector<KOp> ops_;
    std::uint64_t budget_;
    std::size_t words_ = 0;
    std::size_t must_total_ = 0;
    std::uint64_t explored_ = 0;
    bool exhausted_ = false;
    std::set<std::vector<std::uint64_t>> visited_;
};

/// Fast path: when real-time order already totally orders the ops and
/// nothing is open-ended, register semantics can be verified in one scan.
bool totally_ordered(const std::vector<KOp>& ops) {
    for (std::size_t i = 1; i < ops.size(); ++i) {
        if (ops[i].invoke < ops[i - 1].complete) return false;
        if (!ops[i - 1].must) return false; // open op overlaps the suffix
    }
    return ops.empty() ? true : ops.back().must;
}

bool verify_sequential(const std::vector<KOp>& ops) {
    std::uint32_t value = 0;
    for (const auto& op : ops) {
        if (op.type == OpType::kWrite) {
            value = op.value_id;
        } else if (op.value_id != value) {
            return false;
        }
    }
    return true;
}

} // namespace

CheckResult check_history(const History& h, const CheckOptions& opts) {
    CheckResult res;

    // Partition by key, interning observed/written values per key. Ordered
    // map: the first violating key reported is deterministic.
    struct KeyHistory {
        std::vector<KOp> ops;
        std::map<std::string, std::uint32_t> values;
    };
    std::map<std::string, KeyHistory> keys;
    for (const Op& op : h.ops()) {
        if (op.outcome == Outcome::kFail) continue; // definitely no effect
        if (op.outcome == Outcome::kTimeout && op.type == OpType::kRead) {
            continue; // an unanswered read constrains nothing
        }
        KeyHistory& kh = keys[op.key];
        KOp k;
        k.type = op.type;
        k.must = op.outcome == Outcome::kOk;
        k.invoke = op.invoke_ns;
        k.complete = k.must ? op.complete_ns : kInf;
        if (op.type == OpType::kRead && !op.found) {
            k.value_id = 0;
        } else {
            const auto [it, inserted] = kh.values.try_emplace(
                op.value, static_cast<std::uint32_t>(kh.values.size() + 1));
            k.value_id = it->second;
        }
        kh.ops.push_back(k);
    }

    for (auto& [key, kh] : keys) {
        if (kh.ops.empty()) continue;
        ++res.keys_checked;
        std::stable_sort(kh.ops.begin(), kh.ops.end(),
                         [](const KOp& a, const KOp& b) {
                             if (a.invoke != b.invoke) return a.invoke < b.invoke;
                             return a.complete < b.complete;
                         });
        if (totally_ordered(kh.ops)) {
            ++res.keys_fast_path;
            if (!verify_sequential(kh.ops)) {
                res.linearizable = false;
                res.offending_key = key;
                res.reason = "key '" + key + "': sequential history violates " +
                             "register semantics (stale or phantom read)";
                return res;
            }
            continue;
        }
        KeySearch search(kh.ops, opts.max_nodes_per_key);
        const bool ok = search.run();
        res.nodes_explored += search.explored();
        if (search.exhausted()) {
            res.budget_exhausted = true;
            res.offending_key = key;
            res.reason = "key '" + key + "': search budget exhausted after " +
                         std::to_string(search.explored()) +
                         " nodes; verdict indeterminate";
            return res;
        }
        if (!ok) {
            res.linearizable = false;
            res.offending_key = key;
            res.reason = "key '" + key + "' (" +
                         std::to_string(kh.ops.size()) +
                         " ops): no valid linearization order exists";
            return res;
        }
    }
    return res;
}

} // namespace skv::check
