#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace skv::check {

/// Operation kind in a recorded client history. The checker models the
/// store as a map of independent registers (SET/GET per key), which is
/// exactly the surface the chaos workload exercises.
enum class OpType : std::uint8_t { kRead, kWrite };

/// How an operation ended, from the client's point of view:
///
///  * kOk      — a success reply arrived; the op definitely took effect
///               (writes) / the returned value is real (reads).
///  * kFail    — the op definitely did NOT take effect: every attempt was
///               answered with an error that is known not to apply the
///               write (e.g. READONLY from a replica). Reads never have
///               effects, so a failed read is simply dropped.
///  * kTimeout — unknown: the client gave up (per-op deadline, or the
///               server parked the reply and the link died). A timed-out
///               write MAY have been applied and must be treated as
///               concurrent with everything after its invocation.
enum class Outcome : std::uint8_t { kOk, kFail, kTimeout };

const char* to_string(OpType t);
const char* to_string(Outcome o);

/// One completed client operation with sim-time invocation/completion
/// stamps. `complete_ns` for kTimeout records when the client gave up —
/// the op itself stays open-ended for linearizability purposes.
struct Op {
    std::uint64_t client = 0;
    std::uint64_t seq = 0;
    OpType type = OpType::kRead;
    std::string key;
    /// Write: the value written. Read: the value observed (meaningful only
    /// when `found`).
    std::string value;
    /// Read: whether the key existed. Writes always set `found = true`.
    bool found = true;
    Outcome outcome = Outcome::kOk;
    std::int64_t invoke_ns = 0;
    std::int64_t complete_ns = 0;
};

/// An append-only per-run log of client operations. Clients record each
/// op exactly once, after its final outcome (including retries) is known.
/// The recorder is observation-only: it never schedules events or touches
/// RNG streams, so enabling it cannot change a trace digest.
class History {
public:
    void record(Op op) { ops_.push_back(std::move(op)); }

    [[nodiscard]] const std::vector<Op>& ops() const { return ops_; }
    [[nodiscard]] std::size_t size() const { return ops_.size(); }
    [[nodiscard]] bool empty() const { return ops_.empty(); }
    void clear() { ops_.clear(); }

    /// Machine-readable dump (schema "skv-history-v1", one op per line)
    /// for the CI artifact uploaded when a checker gate fails.
    [[nodiscard]] std::string to_json() const;

    /// Same schema, restricted to the ops that actually constrain one
    /// key's linearizability: kFail ops and timed-out reads are dropped,
    /// exactly mirroring the checker's own filtering. This is the minimal
    /// sub-history a human replays when the gate names an offending key.
    [[nodiscard]] std::string to_json_for_key(const std::string& key) const;

private:
    std::vector<Op> ops_;
};

} // namespace skv::check
