#pragma once

#include <cstdint>
#include <string>

#include "check/history.hpp"

namespace skv::check {

/// Result of checking one history. When `linearizable` is false, `reason`
/// names the first offending key and what could not be ordered. When the
/// search budget runs out the verdict is indeterminate: `linearizable`
/// stays true (no violation was *proven*) and `budget_exhausted` flags
/// the gap — test gates treat that as a failure of the scenario's sizing,
/// not of the system under test.
struct CheckResult {
    bool linearizable = true;
    bool budget_exhausted = false;
    std::string reason;
    /// The key whose per-key sub-history triggered the violation or budget
    /// exhaustion (empty on a clean pass). Test gates dump only this key's
    /// sub-history — the minimal artifact a human actually debugs with.
    std::string offending_key;
    /// Search-effort accounting across all per-key sub-histories.
    std::uint64_t nodes_explored = 0;
    std::uint64_t keys_checked = 0;
    /// How many keys the cheap total-order pass settled without search.
    std::uint64_t keys_fast_path = 0;
};

struct CheckOptions {
    /// DFS node budget per key; the per-key state space is 2^n in the
    /// worst case, so runaway histories abort rather than spin.
    std::uint64_t max_nodes_per_key = 4'000'000;
};

/// Wing–Gong-style linearizability check for a register-per-key store.
///
/// The history is first partitioned by key (SET/GET touch exactly one
/// key, so a history is linearizable iff every per-key sub-history is).
/// Each sub-history runs a fast pass — if real-time order already totally
/// orders the ops, register semantics are verified directly in O(n) —
/// and otherwise a memoized depth-first search over linearization
/// prefixes (Wing & Gong 1993, with the Lowe-style (linearized-set,
/// register-value) memo cache). Ops with Outcome::kTimeout are open-ended
/// (completion = infinity): the search may linearize them at any point
/// after invocation or never; kFail ops are dropped before the search.
CheckResult check_history(const History& h, const CheckOptions& opts = {});

} // namespace skv::check
