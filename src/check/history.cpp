#include "check/history.hpp"

#include <cstdio>

namespace skv::check {

const char* to_string(OpType t) {
    switch (t) {
        case OpType::kRead: return "r";
        case OpType::kWrite: return "w";
    }
    return "?";
}

const char* to_string(Outcome o) {
    switch (o) {
        case Outcome::kOk: return "ok";
        case Outcome::kFail: return "fail";
        case Outcome::kTimeout: return "timeout";
    }
    return "?";
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c) & 0xFF);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_op(std::string& out, const Op& op) {
    out += "{\"client\":" + std::to_string(op.client);
    out += ",\"seq\":" + std::to_string(op.seq);
    out += ",\"type\":\"" + std::string(to_string(op.type)) + "\"";
    out += ",\"key\":";
    append_escaped(out, op.key);
    out += ",\"value\":";
    append_escaped(out, op.value);
    out += ",\"found\":";
    out += op.found ? "true" : "false";
    out += ",\"outcome\":\"" + std::string(to_string(op.outcome)) + "\"";
    out += ",\"invoke_ns\":" + std::to_string(op.invoke_ns);
    out += ",\"complete_ns\":" + std::to_string(op.complete_ns);
    out += '}';
}

} // namespace

std::string History::to_json() const {
    std::string out = "{\"schema\":\"skv-history-v1\",\"ops\":[\n";
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        append_op(out, ops_[i]);
        if (i + 1 < ops_.size()) out += ',';
        out += '\n';
    }
    out += "]}\n";
    return out;
}

std::string History::to_json_for_key(const std::string& key) const {
    std::string out = "{\"schema\":\"skv-history-v1\",\"key\":";
    append_escaped(out, key);
    out += ",\"ops\":[\n";
    bool first = true;
    for (const Op& op : ops_) {
        if (op.key != key) continue;
        // Mirror the checker's filtering: failed ops have no effect and
        // unanswered reads constrain nothing.
        if (op.outcome == Outcome::kFail) continue;
        if (op.outcome == Outcome::kTimeout && op.type == OpType::kRead) {
            continue;
        }
        if (!first) out += ",\n";
        first = false;
        append_op(out, op);
    }
    out += "\n]}\n";
    return out;
}

} // namespace skv::check
