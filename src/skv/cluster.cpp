#include "skv/cluster.hpp"
#include "sim/check.hpp"


namespace skv::offload {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(std::move(cfg)), sim_(cfg_.seed), tracer_(sim_), fabric_(sim_),
      tcp_(sim_, fabric_, cfg_.costs), rdma_(sim_, fabric_, cfg_.costs),
      cm_(rdma_) {
    // Observability wiring: every component shares the cluster tracer. It
    // starts disabled, so instrumented code paths are no-ops by default.
    fabric_.set_tracer(&tracer_);
    rdma_.set_tracer(&tracer_);
}

void Cluster::start() {
    SKV_CHECK(!started_);
    started_ = true;
    // Chain and quorum replication are executed by Nic-KV: the chain is
    // spliced from the failure detector's view and quorum acks aggregate on
    // the NIC. Neither exists in the baseline topology.
    SKV_CHECK(cfg_.server_tmpl.replication_mode ==
                      server::ReplicationMode::kFanout ||
                  cfg_.offload,
              "chain/quorum replication requires the SKV offload topology");

    server::KvServer::Transports nets{&fabric_, &tcp_, &cm_};

    // Master host.
    const net::EndpointId master_ep = fabric_.add_host("master");
    cores_.push_back(std::make_unique<cpu::Core>(sim_, "master/cpu"));
    const net::NodeRef master_node{master_ep, cores_.back().get()};
    server::ServerConfig mcfg = cfg_.server_tmpl;
    mcfg.name = "master";
    mcfg.transport = cfg_.transport;
    mcfg.offload_replication = cfg_.offload;
    master_ = std::make_unique<server::KvServer>(sim_, cfg_.costs, nets,
                                                 master_node, mcfg);
    master_->set_tracer(&tracer_, "server/master");

    // SmartNIC + Nic-KV on the master (SKV mode only; the baseline's NIC
    // switch steers everything straight to the host).
    if (cfg_.offload) {
        nic::SmartNicParams np = cfg_.nic_params;
        np.core_slowdown = cfg_.costs.nic_core_slowdown;
        np.arm_cores = cfg_.costs.nic_cores;
        nic_ = std::make_unique<nic::SmartNic>(sim_, fabric_, master_ep,
                                               "master/bf2", np);
        // Both ends of a node link must agree on whether the reliable
        // envelope is spoken.
        NicKvConfig ncfg = cfg_.nic_cfg;
        ncfg.reliable_node_links = cfg_.server_tmpl.reliable_node_links;
        ncfg.reliable = cfg_.server_tmpl.reliable;
        // The NIC executes the same protocol the servers were configured
        // for (chain successor tables / quorum ack aggregation).
        ncfg.replication_mode = cfg_.server_tmpl.replication_mode;
        nickv_ = std::make_unique<NicKv>(sim_, cfg_.costs, cm_, *nic_, ncfg);
        nickv_->set_tracer(&tracer_, "nic/" + ncfg.name);
    }

    // Slave hosts.
    for (int i = 0; i < cfg_.n_slaves; ++i) {
        const std::string name = "slave" + std::to_string(i);
        const net::EndpointId ep = fabric_.add_host(name);
        cores_.push_back(std::make_unique<cpu::Core>(sim_, name + "/cpu"));
        const net::NodeRef node{ep, cores_.back().get()};
        server::ServerConfig scfg = cfg_.server_tmpl;
        scfg.name = name;
        scfg.transport = cfg_.transport;
        scfg.offload_replication = false;
        slaves_.push_back(std::make_unique<server::KvServer>(
            sim_, cfg_.costs, nets, node, scfg));
        slaves_.back()->set_tracer(&tracer_, "server/" + name);
    }

    // Bring everything up: listeners first, then the replication topology.
    master_->start();
    for (auto& s : slaves_) s->start();
    if (nickv_) nickv_->start();

    sim_.after(sim::milliseconds(1), [this]() {
        if (cfg_.offload) {
            master_->attach_nic(nickv_->endpoint(), cfg_.nic_cfg.port);
        }
    });
    sim_.after(sim::milliseconds(10), [this]() {
        for (auto& s : slaves_) {
            if (cfg_.offload) {
                s->slaveof_skv(nickv_->endpoint(), cfg_.nic_cfg.port);
            } else {
                s->slaveof_baseline(
                    master_->node().ep,
                    static_cast<std::uint16_t>(master_->config().port + 1));
            }
        }
    });

    sim_.run_until(sim_.now() + cfg_.settle);
}

net::NodeRef Cluster::add_client_host(const std::string& name) {
    const net::EndpointId ep = fabric_.add_host(name);
    cores_.push_back(std::make_unique<cpu::Core>(sim_, name + "/cpu"));
    return net::NodeRef{ep, cores_.back().get()};
}

void Cluster::connect_client(net::NodeRef from,
                             std::function<void(net::ChannelPtr)> cb) {
    if (cfg_.transport == server::Transport::kTcp) {
        tcp_.connect(from, master_->node().ep, master_->config().port,
                     std::move(cb));
    } else {
        cm_.connect(from, master_->node().ep, master_->config().port,
                    std::move(cb));
    }
}

// --- node crash/restart fault model ------------------------------------------

void Cluster::crash_node(int idx) {
    SKV_CHECK(idx >= -1 && idx < slave_count());
    (idx < 0 ? *master_ : *slaves_[static_cast<std::size_t>(idx)]).crash();
}

void Cluster::restart_node(int idx, server::KvServer::RecoveryMode mode) {
    SKV_CHECK(idx >= -1 && idx < slave_count());
    (idx < 0 ? *master_ : *slaves_[static_cast<std::size_t>(idx)]).recover(mode);
}

bool Cluster::node_crashed(int idx) const {
    SKV_CHECK(idx >= -1 && idx < static_cast<int>(slaves_.size()));
    return idx < 0 ? master_->crashed()
                   : slaves_[static_cast<std::size_t>(idx)]->crashed();
}

void Cluster::crash_nic() {
    SKV_CHECK(nickv_ != nullptr);
    nickv_->crash();
    fabric_.sever(nickv_->endpoint());
}

void Cluster::restart_nic() {
    SKV_CHECK(nickv_ != nullptr);
    fabric_.restore(nickv_->endpoint());
    nickv_->recover();
}

int Cluster::schedule_crash_storm(const CrashStormSpec& spec) {
    SKV_CHECK(started_);
    SKV_CHECK(spec.max_gap.ns() >= spec.min_gap.ns());
    sim::Rng rng = sim_.fork_rng();
    sim::SimTime t = sim_.now();
    // Per-node time until which it is scheduled to be down (index 0 = the
    // master, 1.. = slaves), so picks never stack on a crashed node.
    std::vector<sim::SimTime> down_until(slaves_.size() + 1,
                                         sim::SimTime::zero());
    const int candidates =
        static_cast<int>(slaves_.size()) + (spec.include_master ? 1 : 0);
    SKV_CHECK(candidates > 0);
    int scheduled = 0;
    for (int i = 0; i < spec.crashes; ++i) {
        const std::int64_t span = spec.max_gap.ns() - spec.min_gap.ns();
        t = t + spec.min_gap +
            sim::Duration(span > 0 ? rng.next_range(0, span) : 0);
        // Victim index in cluster convention (-1 = master). Linear-probe to
        // the next free node when the pick is still down.
        int pick = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(candidates)));
        int victim = 1 + slave_count(); // sentinel: none free
        for (int probe = 0; probe < candidates; ++probe) {
            const int cand = (pick + probe) % candidates;
            const int node = spec.include_master ? cand - 1 : cand;
            if (down_until[static_cast<std::size_t>(node + 1)] < t) {
                victim = node;
                break;
            }
        }
        if (victim > slave_count()) continue; // everyone is down; skip
        down_until[static_cast<std::size_t>(victim + 1)] = t + spec.downtime;
        const auto mode = spec.mode;
        sim_.at(t, [this, victim]() {
            if (!node_crashed(victim)) crash_node(victim);
        });
        sim_.at(t + spec.downtime, [this, victim, mode]() {
            if (node_crashed(victim)) restart_node(victim, mode);
        });
        ++scheduled;
    }
    return scheduled;
}

bool Cluster::converged() const {
    const std::int64_t target = master_->master_offset();
    for (const auto& s : slaves_) {
        if (s->slave_applied_offset() != target) return false;
    }
    return true;
}

} // namespace skv::offload
