#include "skv/nic_kv.hpp"

#include <algorithm>

#include "kv/sds.hpp"
#include "rdma/ring_channel.hpp"
#include "sim/check.hpp"

namespace skv::offload {

using server::NodeMsg;

NicKv::NicKv(sim::Simulation& sim, const cpu::CostModel& costs,
             rdma::ConnectionManager& cm, nic::SmartNic& nic, NicKvConfig cfg)
    : sim_(sim), costs_(costs), cm_(cm), nic_(nic), cfg_(std::move(cfg)),
      rng_(sim.fork_rng()), stats_(cfg_.name),
      c_fanout_sends_(stats_.counter_handle("fanout_sends")),
      c_repl_requests_(stats_.counter_handle("repl_requests")) {}

void NicKv::start() {
    SKV_CHECK(!started_);
    started_ = true;
    // The NIC switch steers this service port up to the ARM cores.
    nic_.steer(cfg_.port, nic::SteerTarget::kNicCores);
    cm_.listen(nic_.node(0), cfg_.port,
               [this](net::ChannelPtr ch) {
                   if (ch && !crashed_) on_accept(std::move(ch));
               });
    const std::uint64_t epoch = ++probe_epoch_;
    sim_.after(cfg_.probe_interval, [this, epoch]() { probe_cycle(epoch); });
}

void NicKv::crash() {
    SKV_CHECK(started_ && !crashed_);
    crashed_ = true;
    for (int i = 0; i < nic_.core_count(); ++i) nic_.core(i).halt();
    // The service's state lives entirely in on-board DRAM: node table,
    // fan-out cursor, pending registrations — all gone with the process.
    nic_.release_memory(cfg_.node_entry_bytes * nodes_.size());
    nodes_.clear();
    pending_.clear();
    master_idx_ = -1;
    promoted_idx_ = -1;
    fanout_offset_ = 0;
    quorum_watermark_ = 0;
    stats_.incr("crashes");
}

void NicKv::recover() {
    SKV_CHECK(crashed_);
    crashed_ = false;
    for (int i = 0; i < nic_.core_count(); ++i) nic_.core(i).resume();
    stats_.incr("recoveries");
    // Fresh probe chain; the pre-crash chain's scheduled events carry a
    // stale epoch and are ignored. Registration is peer-driven: the master
    // re-attaches and slaves re-register after probe_silence_timeout.
    const std::uint64_t epoch = ++probe_epoch_;
    sim_.after(cfg_.probe_interval, [this, epoch]() { probe_cycle(epoch); });
}

void NicKv::on_accept(net::ChannelPtr ch) {
    if (cfg_.reliable_node_links) {
        auto rel = server::ReliableChannel::wrap(sim_, std::move(ch),
                                                 cfg_.reliable, &stats_);
        const net::Channel* rel_raw = rel.get();
        rel->set_on_broken([this, rel_raw]() { on_link_broken(rel_raw); });
        ch = rel;
    }
    auto raw = ch.get();
    ch->set_on_message([this, raw](std::string payload) {
        if (crashed_) return;
        // Recover the shared_ptr from the node list (or transiently wrap).
        sim::NodeScope owner_node(endpoint());
        const auto msg = NodeMsg::decode(payload);
        if (!msg.has_value()) {
            stats_.incr("malformed");
            return;
        }
        // Identify the entry by channel pointer.
        net::ChannelPtr owner;
        for (auto& n : nodes_) {
            if (n.channel.get() == raw) {
                owner = n.channel;
                break;
            }
        }
        if (!owner) {
            // First message on a fresh connection: registration.
            for (auto& p : pending_) {
                if (p.get() == raw) {
                    owner = p;
                    break;
                }
            }
        }
        if (!owner) return;
        handle(owner, *msg);
    });
    pending_.push_back(std::move(ch));
}

NicKv::NodeEntry* NicKv::find_by_channel(const net::ChannelPtr& ch) {
    for (auto& n : nodes_) {
        if (n.channel == ch) return &n;
    }
    return nullptr;
}

NicKv::NodeEntry* NicKv::find_by_name(const std::string& name) {
    for (auto& n : nodes_) {
        if (n.name == name) return &n;
    }
    return nullptr;
}

std::size_t NicKv::slave_count() const {
    std::size_t n = 0;
    for (const auto& e : nodes_) {
        if (!e.is_master) ++n;
    }
    return n;
}

int NicKv::valid_slaves() const {
    int n = 0;
    for (const auto& e : nodes_) {
        if (!e.is_master && e.valid) ++n;
    }
    return n;
}

bool NicKv::master_valid() const {
    return master_idx_ >= 0 && nodes_[static_cast<std::size_t>(master_idx_)].valid;
}

int NicKv::effective_threads() const {
    // "the actual number of threads used for replication cannot be greater
    // than the minimum value of the number of SmartNIC cores and slave
    // nodes" (paper §III-C).
    const int wanted = std::max(1, cfg_.thread_num);
    return std::max(1, std::min({wanted, nic_.core_count(),
                                 static_cast<int>(slave_count())}));
}

void NicKv::assign_cores() {
    const int threads = effective_threads();
    int next = 0;
    for (auto& e : nodes_) {
        if (e.is_master) continue;
        e.core_idx = next % threads;
        // The ring messenger may sit under the reliable wrapper.
        net::ChannelPtr transport = e.channel;
        if (auto rel =
                std::dynamic_pointer_cast<server::ReliableChannel>(transport)) {
            transport = rel->inner();
        }
        if (auto ring = std::dynamic_pointer_cast<rdma::RingChannel>(transport)) {
            ring->rebind_core(&nic_.core(e.core_idx));
        }
        ++next;
    }
}

void NicKv::handle(const net::ChannelPtr& ch, const NodeMsg& msg) {
    switch (msg.type) {
        case NodeMsg::Type::kSync:
            // "master:<name>@<ep>" — the master Host-KV attaching.
            if (msg.body.rfind("master:", 0) == 0) {
                register_master(ch, msg);
            } else {
                // Baseline slave->master kSync never targets the NIC.
                stats_.incr("unexpected_msgs");
            }
            break;
        case NodeMsg::Type::kInitSync:
            register_slave(ch, msg);
            break;
        case NodeMsg::Type::kReplData:
            fan_out(msg);
            break;
        case NodeMsg::Type::kProbeAck:
            handle_probe_ack(ch, msg);
            break;
        case NodeMsg::Type::kQuorumAck:
            handle_quorum_ack(ch, msg);
            break;
        case NodeMsg::Type::kReadRepair:
            handle_read_repair(msg);
            break;
        // The NIC originates these (or they flow host<->host around it) and
        // must never receive them; each is named so that adding an enum
        // value forces a decision here (simlint3 unhandled-tag).
        case NodeMsg::Type::kSyncNotify:
        case NodeMsg::Type::kFullSync:
        case NodeMsg::Type::kBacklog:
        case NodeMsg::Type::kAck:
        case NodeMsg::Type::kProbe:
        case NodeMsg::Type::kResyncRequest:
        case NodeMsg::Type::kPromote:
        case NodeMsg::Type::kDemote:
        case NodeMsg::Type::kSlaveCount:
        case NodeMsg::Type::kChainSet:
        case NodeMsg::Type::kChainData:
        case NodeMsg::Type::kQuorumCommit:
            stats_.incr("unexpected_msgs");
            break;
    }
}

void NicKv::register_master(const net::ChannelPtr& ch, const NodeMsg& msg) {
    nic_.core(0).consume(costs_.event_dispatch);
    const std::string ident = msg.body.substr(7); // strip "master:"
    const auto at = ident.find('@');
    NodeEntry e;
    e.name = ident.substr(0, at);
    e.ep = at == std::string::npos
               ? net::kInvalidEndpoint
               : static_cast<net::EndpointId>(std::stoul(ident.substr(at + 1)));
    e.channel = ch;
    e.is_master = true;
    e.last_heard_ns = sim_.now().ns();
    e.repl_offset = msg.field;
    fanout_offset_ = msg.field;

    bool was_invalid = false;
    if (NodeEntry* existing = find_by_name(e.name)) {
        was_invalid = !existing->valid;
        // The refreshed registration supersedes the old channel; close it
        // so the dead connection's object graph is released, not merely
        // unreferenced.
        if (existing->channel && existing->channel != e.channel) {
            existing->channel->close();
        }
        *existing = std::move(e);
    } else {
        if (!nic_.reserve_memory(cfg_.node_entry_bytes)) {
            stats_.incr("oom_rejects");
            return;
        }
        nodes_.push_back(std::move(e));
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].is_master) master_idx_ = static_cast<int>(i);
    }
    std::erase(pending_, ch);
    stats_.incr("master_registered");
    if (was_invalid) {
        // The crashed master is back (paper §III-D): it resumes mastership
        // and the stand-in steps down.
        stats_.incr("recoveries_detected");
        if (promoted_idx_ >= 0) {
            auto& stand_in = nodes_[static_cast<std::size_t>(promoted_idx_)];
            if (stand_in.channel && stand_in.channel->open()) {
                stand_in.channel->send(
                    NodeMsg{NodeMsg::Type::kDemote, 0, ""}.encode());
            }
            promoted_idx_ = -1;
        }
        publish_slave_status();
    }
    if (cfg_.replication_mode == server::ReplicationMode::kQuorum &&
        quorum_watermark_ > 0 && ch->open()) {
        // A (re)attaching master learns the current commit watermark at
        // once instead of waiting for the next ack-driven advance — parked
        // replies it re-accumulates would otherwise stall until new writes.
        nic_.core(0).consume(costs_.event_dispatch);
        ch->send(NodeMsg{NodeMsg::Type::kQuorumCommit, quorum_watermark_, ""}
                     .encode());
    }
    reconfigure_chain();
}

void NicKv::register_slave(const net::ChannelPtr& ch, const NodeMsg& msg) {
    nic_.core(0).consume(costs_.event_dispatch);
    const auto at = msg.body.find('@');
    NodeEntry e;
    e.name = msg.body; // full "<name>@<ep>" identity, matching kSyncNotify
    e.ep = at == std::string::npos
               ? net::kInvalidEndpoint
               : static_cast<net::EndpointId>(std::stoul(msg.body.substr(at + 1)));
    e.channel = ch;
    e.last_heard_ns = sim_.now().ns();
    e.repl_offset = msg.field;
    e.quorum_ack = msg.field; // registration offset = data it already holds

    bool was_known = false;
    if (NodeEntry* existing = find_by_name(e.name)) {
        // Reconnection after a crash: refresh the channel and revalidate.
        // The superseded channel is closed, releasing its ring/QP state.
        if (existing->channel && existing->channel != e.channel) {
            existing->channel->close();
        }
        *existing = std::move(e);
        was_known = true;
    } else {
        if (!nic_.reserve_memory(cfg_.node_entry_bytes)) {
            stats_.incr("oom_rejects");
            return;
        }
        nodes_.push_back(std::move(e));
    }
    std::erase(pending_, ch);
    assign_cores();
    stats_.incr(was_known ? "slave_reregistered" : "slave_registered");

    // Paper Fig. 8 step 2: notify the master that a slave wants to sync.
    if (master_idx_ >= 0) {
        auto& master = nodes_[static_cast<std::size_t>(master_idx_)];
        if (master.channel && master.channel->open()) {
            nic_.core(0).consume(costs_.event_dispatch);
            master.channel->send(
                NodeMsg{NodeMsg::Type::kSyncNotify, msg.field, msg.body}.encode());
        }
    }
    publish_slave_status();
    // A slave (re)joining a masterless cluster: the earlier invalidation
    // scan may have found nobody promotable, so retry the failover now.
    maybe_promote();
    reconfigure_chain();
}

void NicKv::fan_out(const NodeMsg& msg) {
    // Parse the replication request on the primary ARM core.
    nic_.core(0).consume(costs_.jittered(rng_, costs_.nic_repl_parse));
    if (tracer_ != nullptr && tracer_->enabled()) {
        // Span stage: master propagate -> NIC parse (offload request leg).
        tracer_->repl_fanout(msg.field, obs_track_);
    }
    fanout_offset_ = msg.field + static_cast<std::int64_t>(msg.body.size());
    if (cfg_.replication_mode == server::ReplicationMode::kChain) {
        chain_forward(msg);
    } else {
        const std::string wire = msg.encode();
        for (auto& e : nodes_) {
            if (e.is_master || !e.valid || !e.channel || !e.channel->open()) {
                continue;
            }
            // Copy into this slave's send buffer on its assigned ARM core,
            // then one WRITE_WITH_IMM per slave (paper Fig. 9 step 2).
            cpu::Core& core = nic_.core(e.core_idx);
            core.consume(costs_.jittered(rng_, costs_.nic_repl_fanout_per_slave) +
                         costs_.copy_cost(msg.body.size()));
            e.channel->send(wire);
            c_fanout_sends_.incr();
        }
    }
    c_repl_requests_.incr();
    if (cfg_.replication_mode == server::ReplicationMode::kQuorum) {
        // An injected zero-ack majority (split-brain self-test) advances the
        // watermark on the master's copy alone, i.e. right here; for a real
        // majority this recompute is a cheap no-op until acks arrive.
        recompute_quorum_watermark();
    }
}

void NicKv::chain_forward(const NodeMsg& msg) {
    // Chain mode's fan_out: a single send to the chain head (the first
    // valid member); members relay the frame downstream themselves, so the
    // NIC pays one hop regardless of chain length.
    for (auto& e : nodes_) {
        if (e.is_master || !e.valid || !e.channel || !e.channel->open()) {
            continue;
        }
        cpu::Core& core = nic_.core(e.core_idx);
        core.consume(costs_.jittered(rng_, costs_.nic_repl_fanout_per_slave) +
                     costs_.copy_cost(msg.body.size()));
        e.channel->send(
            NodeMsg{NodeMsg::Type::kChainData, msg.field, msg.body}.encode());
        c_fanout_sends_.incr();
        return;
    }
    // No live member: the write stays in the master's backlog and is served
    // to the next chain via resync; the master's commit gate holds it back
    // from clients meanwhile.
    stats_.incr("chain_no_head");
}

// simlint3:observe-only
std::vector<std::string> NicKv::chain_order() const {
    std::vector<std::string> out;
    for (const auto& e : nodes_) {
        if (!e.is_master && e.valid && e.channel && e.channel->open()) {
            out.push_back(e.name);
        }
    }
    return out;
}

void NicKv::request_resync(const NodeEntry& e) {
    if (master_idx_ < 0) return;
    auto& master = nodes_[static_cast<std::size_t>(master_idx_)];
    if (!master.channel || !master.channel->open()) return;
    master.channel->send(
        NodeMsg{NodeMsg::Type::kResyncRequest, e.repl_offset, e.name}.encode());
    stats_.incr("resyncs_requested");
}

void NicKv::reconfigure_chain() {
    if (cfg_.replication_mode != server::ReplicationMode::kChain) return;
    // Splice the chain from the failure detector's view: valid members in
    // registration order, each told its successor ("" marks the tail). The
    // assignment carries the current fan-out cursor as the member's read
    // floor — a re-spliced-in laggard must not serve tail reads until it
    // has applied at least that much. While the master is down the chain
    // carries no commits (the promoted stand-in serves solo), so members
    // are told to leave ("-"): a leased tail would otherwise keep
    // answering reads that miss the stand-in's writes.
    std::vector<NodeEntry*> chain;
    for (auto& e : nodes_) {
        if (!e.is_master && e.valid && e.channel && e.channel->open()) {
            chain.push_back(&e);
        }
    }
    const bool feeding = master_valid();
    for (std::size_t i = 0; i < chain.size(); ++i) {
        std::string body;
        if (!feeding) {
            body = "-";
        } else if (i + 1 < chain.size()) {
            body = chain[i + 1]->name;
        }
        nic_.core(0).consume(costs_.event_dispatch);
        chain[i]->channel->send(
            NodeMsg{NodeMsg::Type::kChainSet, fanout_offset_, body}.encode());
    }
    stats_.incr("chain_reconfigs");
    // Ranges the old chain never relayed to a (re)joining member can only
    // come from the master's backlog.
    if (feeding) {
        for (auto* e : chain) {
            if (e->repl_offset < fanout_offset_) request_resync(*e);
        }
    }
}

int NicKv::quorum_slave_acks_needed() const {
    if (cfg_.quorum_slave_acks_override >= 0) {
        return cfg_.quorum_slave_acks_override;
    }
    // Replica set = master + every registered slave (fixed-n ABD). The
    // master's own copy counts toward the majority, so the NIC needs
    // majority(n) - 1 slave acks. Dead slaves stay in the denominator:
    // shrinking it on failure would silently weaken the quorum.
    const int replicas = 1 + static_cast<int>(slave_count());
    return replicas / 2 + 1 - 1;
}

void NicKv::handle_quorum_ack(const net::ChannelPtr& ch, const NodeMsg& msg) {
    if (cfg_.replication_mode != server::ReplicationMode::kQuorum) {
        stats_.incr("unexpected_msgs");
        return;
    }
    nic_.core(0).consume(costs_.event_dispatch);
    NodeEntry* e = find_by_channel(ch);
    if (e == nullptr || e->is_master) return;
    e->quorum_ack = std::max(e->quorum_ack, msg.field);
    e->repl_offset = std::max(e->repl_offset, msg.field);
    stats_.incr("quorum_acks");
    recompute_quorum_watermark();
}

void NicKv::recompute_quorum_watermark() {
    const int need = quorum_slave_acks_needed();
    std::int64_t mark = 0;
    if (need <= 0) {
        // The master's copy alone is a majority (solo bootstrap, or the
        // injected split-brain override).
        mark = fanout_offset_;
    } else {
        std::vector<std::int64_t> acks;
        for (const auto& e : nodes_) {
            if (!e.is_master) acks.push_back(e.quorum_ack);
        }
        if (static_cast<int>(acks.size()) < need) return;
        std::sort(acks.begin(), acks.end(), std::greater<>());
        mark = acks[static_cast<std::size_t>(need - 1)];
    }
    if (mark <= quorum_watermark_) return;
    quorum_watermark_ = mark;
    if (master_idx_ < 0) return;
    auto& master = nodes_[static_cast<std::size_t>(master_idx_)];
    if (!master.channel || !master.channel->open()) return;
    nic_.core(0).consume(costs_.event_dispatch);
    master.channel->send(
        NodeMsg{NodeMsg::Type::kQuorumCommit, quorum_watermark_, ""}.encode());
    stats_.incr("quorum_commits");
}

void NicKv::handle_read_repair(const NodeMsg& msg) {
    if (cfg_.replication_mode != server::ReplicationMode::kQuorum) {
        stats_.incr("unexpected_msgs");
        return;
    }
    // ABD read phase 2: the master pushed the not-yet-majority backlog
    // suffix; re-fan it to replicas that have not acknowledged it. Overlap
    // with data already applied is harmless (stale-skip on the slave).
    nic_.core(0).consume(costs_.jittered(rng_, costs_.nic_repl_parse));
    const std::int64_t end =
        msg.field + static_cast<std::int64_t>(msg.body.size());
    const std::string wire =
        NodeMsg{NodeMsg::Type::kReplData, msg.field, msg.body}.encode();
    for (auto& e : nodes_) {
        if (e.is_master || !e.valid || !e.channel || !e.channel->open()) {
            continue;
        }
        if (e.quorum_ack >= end) continue;
        cpu::Core& core = nic_.core(e.core_idx);
        core.consume(costs_.jittered(rng_, costs_.nic_repl_fanout_per_slave) +
                     costs_.copy_cost(msg.body.size()));
        e.channel->send(wire);
        stats_.incr("read_repair_sends");
    }
    stats_.incr("read_repairs");
}

void NicKv::handle_probe_ack(const net::ChannelPtr& ch, const NodeMsg& msg) {
    stats_.incr("probe_acks_received");
    nic_.core(0).consume(costs_.event_dispatch);
    NodeEntry* e = find_by_channel(ch);
    if (e == nullptr) return;
    e->last_heard_ns = sim_.now().ns();
    // Body is "<role>:<offset>".
    const std::int64_t prev = e->prev_probe_offset;
    const auto colon = msg.body.find(':');
    if (colon != std::string::npos) {
        if (const auto off = kv::string2ll(msg.body.substr(colon + 1))) {
            e->repl_offset = *off;
        }
    }
    e->prev_probe_offset = e->repl_offset;
    if (!e->valid) {
        // Node recovered. Clear the invalid flag and, if it fell behind the
        // stream while dead, ask the master to serve it a resync.
        e->valid = true;
        stats_.incr("recoveries_detected");
        if (e->is_master) {
            // Paper §III-D: the recovered master resumes mastership and the
            // stand-in is demoted.
            if (promoted_idx_ >= 0) {
                auto& stand_in = nodes_[static_cast<std::size_t>(promoted_idx_)];
                if (stand_in.channel && stand_in.channel->open()) {
                    stand_in.channel->send(
                        NodeMsg{NodeMsg::Type::kDemote, 0, ""}.encode());
                }
                promoted_idx_ = -1;
            }
        } else if (e->repl_offset < fanout_offset_) {
            request_resync(*e);
        }
        publish_slave_status();
        maybe_promote(); // a slave revalidated into a masterless cluster
        reconfigure_chain();
    } else if (!e->is_master &&
               cfg_.replication_mode != server::ReplicationMode::kFanout &&
               e->repl_offset < fanout_offset_ && e->repl_offset == prev) {
        // Chain/quorum stall healing: a valid member that made zero
        // progress over a full probe round while behind the cursor lost
        // data its path never re-delivers (e.g. frames relayed while its
        // chain predecessor was dialing it). Fan-out mode is excluded — the
        // reliable links already retransmit everything it sends.
        request_resync(*e);
        stats_.incr("stall_resyncs");
    }
}

void NicKv::probe_cycle(std::uint64_t epoch) {
    if (crashed_ || epoch != probe_epoch_) return;
    sim::NodeScope owner(endpoint());
    ++probe_round_;
    for (auto& e : nodes_) {
        if (!e.channel || !e.channel->open()) continue;
        nic_.core(0).consume(costs_.event_dispatch);
        e.probe_seq = probe_round_;
        e.channel->send(
            NodeMsg{NodeMsg::Type::kProbe,
                    static_cast<std::int64_t>(probe_round_), ""}
                .encode());
        stats_.incr("probes_sent");
    }
    // Give this round's replies `waiting_time` to come home.
    sim_.after(cfg_.waiting_time, [this]() { check_timeouts(); });
    sim_.after(cfg_.probe_interval, [this, epoch]() { probe_cycle(epoch); });
}

void NicKv::check_timeouts() {
    if (crashed_) return;
    bool changed = false;
    const std::int64_t now = sim_.now().ns();
    for (auto& e : nodes_) {
        if (!e.valid) continue;
        if (now - e.last_heard_ns > cfg_.waiting_time.ns() + cfg_.probe_interval.ns()) {
            e.valid = false;
            changed = true;
            stats_.incr("failures_detected");
        }
    }
    if (!changed) return;
    after_invalidation();
}

void NicKv::on_link_broken(const net::Channel* raw) {
    if (crashed_) return;
    // The reliable layer exhausted its retries: treat the node like a probe
    // timeout would, without waiting for one (gray links fail faster than
    // silent crashes).
    for (auto& e : nodes_) {
        if (e.channel.get() == raw && e.valid) {
            e.valid = false;
            // Keep the entry — its name/offset drive the resync once the
            // node re-registers — but release the dead channel: probing a
            // broken link is pointless and retaining it pins the whole
            // ring/QP graph.
            e.channel->close();
            e.channel.reset();
            stats_.incr("failures_detected");
            stats_.incr("links_broken");
            after_invalidation();
            return;
        }
    }
    // A pending (never-registered) connection died: close and forget it.
    std::erase_if(pending_, [raw](const net::ChannelPtr& p) {
        if (p.get() != raw) return false;
        p->close();
        return true;
    });
}

void NicKv::maybe_promote() {
    if (master_idx_ < 0 || nodes_[static_cast<std::size_t>(master_idx_)].valid ||
        promoted_idx_ >= 0) {
        return;
    }
    // Failover: pick an available slave as the stand-in master. The
    // choice is protocol-specific: fan-out keeps the historical
    // first-valid pick and chain promotes its head (upstream members
    // hold a superset of everything downstream — for fan-out the first
    // valid slave IS the head, so the rules coincide); quorum promotes
    // the most caught-up replica its ack aggregation knows about.
    int pick = -1;
    if (cfg_.replication_mode == server::ReplicationMode::kQuorum) {
        std::int64_t best = -1;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            const auto& n = nodes_[i];
            if (n.is_master || !n.valid || !n.channel) continue;
            const std::int64_t off = std::max(n.quorum_ack, n.repl_offset);
            if (off > best) {
                best = off;
                pick = static_cast<int>(i);
            }
        }
    } else {
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (!nodes_[i].is_master && nodes_[i].valid && nodes_[i].channel) {
                pick = static_cast<int>(i);
                break;
            }
        }
    }
    if (pick >= 0) {
        promoted_idx_ = pick;
        nodes_[static_cast<std::size_t>(pick)].channel->send(
            NodeMsg{NodeMsg::Type::kPromote, 0, ""}.encode());
        stats_.incr("failovers");
    }
}

void NicKv::after_invalidation() {
    maybe_promote();
    publish_slave_status();
    reconfigure_chain();
}

void NicKv::publish_slave_status() {
    if (master_idx_ < 0) return;
    auto& master = nodes_[static_cast<std::size_t>(master_idx_)];
    if (!master.channel || !master.channel->open()) return;
    std::string invalid;
    for (const auto& e : nodes_) {
        if (!e.is_master && !e.valid) {
            if (!invalid.empty()) invalid += ',';
            invalid += e.name;
        }
    }
    nic_.core(0).consume(costs_.event_dispatch);
    master.channel->send(
        NodeMsg{NodeMsg::Type::kSlaveCount, valid_slaves(), invalid}.encode());
}

} // namespace skv::offload
