#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hpp"
#include "cpu/cost_model.hpp"
#include "net/fabric.hpp"
#include "net/tcp.hpp"
#include "nic/smartnic.hpp"
#include "obs/tracer.hpp"
#include "rdma/cm.hpp"
#include "rdma/verbs.hpp"
#include "server/kv_server.hpp"
#include "sim/simulation.hpp"
#include "skv/nic_kv.hpp"

namespace skv::offload {

/// Everything needed to stand up the paper's testbed in one call: a
/// master host (optionally with a BlueField-class SmartNIC running
/// Nic-KV), N slave hosts, the RoCE fabric, and both transports.
struct ClusterConfig {
    std::uint64_t seed = 42;
    int n_slaves = 3;
    server::Transport transport = server::Transport::kRdma;
    /// true = SKV (replication offloaded to Nic-KV); false = the baseline
    /// where the master fans out itself (RDMA-Redis or TCP Redis).
    bool offload = false;
    cpu::CostModel costs{};
    nic::SmartNicParams nic_params{};
    NicKvConfig nic_cfg{};
    server::ServerConfig server_tmpl{};
    /// Simulated time allowed for connection setup + initial sync before
    /// start() returns.
    sim::Duration settle{sim::milliseconds(300)};
};

class Cluster {
public:
    explicit Cluster(ClusterConfig cfg);

    /// Build and start every component, then run the simulation until the
    /// cluster settles (connections up, slaves synchronized).
    void start();

    [[nodiscard]] sim::Simulation& sim() { return sim_; }
    [[nodiscard]] net::Fabric& fabric() { return fabric_; }
    /// Cluster-wide span tracer. Created disabled; call
    /// `tracer().set_enabled(true)` before the workload to collect spans.
    /// Enabling it never changes simulation behavior or the trace digest.
    [[nodiscard]] obs::Tracer& tracer() { return tracer_; }
    [[nodiscard]] const cpu::CostModel& costs() const { return cfg_.costs; }
    [[nodiscard]] const ClusterConfig& config() const { return cfg_; }

    [[nodiscard]] server::KvServer& master() { return *master_; }
    [[nodiscard]] server::KvServer& slave(int i) {
        return *slaves_.at(static_cast<std::size_t>(i));
    }
    [[nodiscard]] int slave_count() const { return static_cast<int>(slaves_.size()); }
    [[nodiscard]] NicKv* nic_kv() { return nickv_.get(); }
    [[nodiscard]] nic::SmartNic* smartnic() { return nic_.get(); }

    [[nodiscard]] net::TcpNetwork& tcp() { return tcp_; }
    [[nodiscard]] rdma::RdmaNetwork& rdma() { return rdma_; }
    [[nodiscard]] rdma::ConnectionManager& cm() { return cm_; }

    /// Create an additional host (with its own core) for load generators.
    net::NodeRef add_client_host(const std::string& name);

    /// Open a client connection to the master over the configured
    /// transport; `cb` receives the channel when established.
    void connect_client(net::NodeRef from,
                        std::function<void(net::ChannelPtr)> cb);

    /// True once every slave has applied the full master stream.
    [[nodiscard]] bool converged() const;

    // --- node crash/restart fault model ------------------------------------
    /// Crash a process instance by cluster node index: -1 = master,
    /// 0..n_slaves-1 = slaves. Volatile state, in-flight events and channel
    /// endpoints die with it (KvServer::crash()).
    void crash_node(int idx);
    /// Restart a crashed node. kWarm keeps process memory; kCold reloads
    /// the last persisted snapshot (server_tmpl.persist_interval) and
    /// rejoins via backlog partial resync or full sync.
    void restart_node(int idx, server::KvServer::RecoveryMode mode =
                                   server::KvServer::RecoveryMode::kWarm);
    [[nodiscard]] bool node_crashed(int idx) const;
    /// Crash/restart the Nic-KV process on the SmartNIC (SKV mode only):
    /// the node table and fan-out cursor are volatile, so peers must
    /// re-register after the restart.
    void crash_nic();
    void restart_nic();

    /// A seeded storm of crash/restart events, scheduled from `sim.now()`.
    /// Gaps and victims come from a forked RNG stream so the storm is a
    /// deterministic function of the cluster seed.
    struct CrashStormSpec {
        int crashes = 6;
        sim::Duration min_gap{sim::milliseconds(250)};
        sim::Duration max_gap{sim::milliseconds(900)};
        /// How long each victim stays down before restarting.
        sim::Duration downtime{sim::milliseconds(400)};
        bool include_master = false;
        server::KvServer::RecoveryMode mode =
            server::KvServer::RecoveryMode::kWarm;
    };
    /// Returns the number of crash/restart pairs actually scheduled (a
    /// pick landing on a still-down node is skipped, never stacked).
    int schedule_crash_storm(const CrashStormSpec& spec);

private:
    ClusterConfig cfg_;
    sim::Simulation sim_;
    obs::Tracer tracer_;
    net::Fabric fabric_;
    net::TcpNetwork tcp_;
    rdma::RdmaNetwork rdma_;
    rdma::ConnectionManager cm_;

    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::unique_ptr<nic::SmartNic> nic_;
    std::unique_ptr<NicKv> nickv_;
    std::unique_ptr<server::KvServer> master_;
    std::vector<std::unique_ptr<server::KvServer>> slaves_;
    bool started_ = false;
};

} // namespace skv::offload
