#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hpp"
#include "cpu/cost_model.hpp"
#include "net/fabric.hpp"
#include "net/tcp.hpp"
#include "nic/smartnic.hpp"
#include "obs/tracer.hpp"
#include "rdma/cm.hpp"
#include "rdma/verbs.hpp"
#include "server/kv_server.hpp"
#include "sim/simulation.hpp"
#include "skv/nic_kv.hpp"

namespace skv::offload {

/// Everything needed to stand up the paper's testbed in one call: a
/// master host (optionally with a BlueField-class SmartNIC running
/// Nic-KV), N slave hosts, the RoCE fabric, and both transports.
struct ClusterConfig {
    std::uint64_t seed = 42;
    int n_slaves = 3;
    server::Transport transport = server::Transport::kRdma;
    /// true = SKV (replication offloaded to Nic-KV); false = the baseline
    /// where the master fans out itself (RDMA-Redis or TCP Redis).
    bool offload = false;
    cpu::CostModel costs{};
    nic::SmartNicParams nic_params{};
    NicKvConfig nic_cfg{};
    server::ServerConfig server_tmpl{};
    /// Simulated time allowed for connection setup + initial sync before
    /// start() returns.
    sim::Duration settle{sim::milliseconds(300)};
};

class Cluster {
public:
    explicit Cluster(ClusterConfig cfg);

    /// Build and start every component, then run the simulation until the
    /// cluster settles (connections up, slaves synchronized).
    void start();

    [[nodiscard]] sim::Simulation& sim() { return sim_; }
    [[nodiscard]] net::Fabric& fabric() { return fabric_; }
    /// Cluster-wide span tracer. Created disabled; call
    /// `tracer().set_enabled(true)` before the workload to collect spans.
    /// Enabling it never changes simulation behavior or the trace digest.
    [[nodiscard]] obs::Tracer& tracer() { return tracer_; }
    [[nodiscard]] const cpu::CostModel& costs() const { return cfg_.costs; }
    [[nodiscard]] const ClusterConfig& config() const { return cfg_; }

    [[nodiscard]] server::KvServer& master() { return *master_; }
    [[nodiscard]] server::KvServer& slave(int i) {
        return *slaves_.at(static_cast<std::size_t>(i));
    }
    [[nodiscard]] int slave_count() const { return static_cast<int>(slaves_.size()); }
    [[nodiscard]] NicKv* nic_kv() { return nickv_.get(); }
    [[nodiscard]] nic::SmartNic* smartnic() { return nic_.get(); }

    [[nodiscard]] net::TcpNetwork& tcp() { return tcp_; }
    [[nodiscard]] rdma::RdmaNetwork& rdma() { return rdma_; }
    [[nodiscard]] rdma::ConnectionManager& cm() { return cm_; }

    /// Create an additional host (with its own core) for load generators.
    net::NodeRef add_client_host(const std::string& name);

    /// Open a client connection to the master over the configured
    /// transport; `cb` receives the channel when established.
    void connect_client(net::NodeRef from,
                        std::function<void(net::ChannelPtr)> cb);

    /// True once every slave has applied the full master stream.
    [[nodiscard]] bool converged() const;

private:
    ClusterConfig cfg_;
    sim::Simulation sim_;
    obs::Tracer tracer_;
    net::Fabric fabric_;
    net::TcpNetwork tcp_;
    rdma::RdmaNetwork rdma_;
    rdma::ConnectionManager cm_;

    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::unique_ptr<nic::SmartNic> nic_;
    std::unique_ptr<NicKv> nickv_;
    std::unique_ptr<server::KvServer> master_;
    std::vector<std::unique_ptr<server::KvServer>> slaves_;
    bool started_ = false;
};

} // namespace skv::offload
