#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cost_model.hpp"
#include "net/channel.hpp"
#include "nic/smartnic.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "rdma/cm.hpp"
#include "server/config.hpp"
#include "server/protocol.hpp"
#include "server/reliable.hpp"
#include "sim/simulation.hpp"

namespace skv::offload {

struct NicKvConfig {
    std::string name = "nic-kv";
    std::uint16_t port = 7000;  // simlint3:allow(knob-drift) endpoint identity assigned by Cluster, not a tunable
    /// Replication threads on the SmartNIC (paper §III-C). Clamped at run
    /// time to min(ARM cores, slave count); 1 disables multi-threading,
    /// the paper's default.
    int thread_num = 1;
    /// Probe cadence (paper §III-D: every 1 second).
    sim::Duration probe_interval{sim::seconds(1)};
    /// waiting-time: a node that has not answered a probe for this long is
    /// considered crashed.
    sim::Duration waiting_time{sim::milliseconds(1500)};
    /// Node-list entry footprint charged against on-board DRAM.
    std::size_t node_entry_bytes = 512 * 1024;
    /// Wrap accepted node links in the retransmitting layer (must match the
    /// KvServer-side setting, both ends speak the same envelope).
    bool reliable_node_links = true;
    server::ReliableParams reliable{};
    /// Which replication protocol this NIC executes (mirrors
    /// ServerConfig::replication_mode; Cluster keeps the two in sync).
    server::ReplicationMode replication_mode = server::ReplicationMode::kFanout;
    /// Test-only fault injection: when >= 0, quorum mode pretends this many
    /// slave acks constitute a majority (0 = split-brain: the watermark
    /// advances on the master's copy alone). -1 computes the real majority
    /// of (master + registered slaves).
    int quorum_slave_acks_override = -1;
};

/// Nic-KV: the offloaded component running on the SmartNIC's ARM cores.
/// It never talks to clients (paper §III-C: "Nic-KV does not handle
/// requests from clients. Instead, it only interacts with other server
/// nodes"). It maintains the node list, performs steady-state replication
/// fan-out on behalf of the master, coordinates initial synchronization,
/// and runs the failure detector.
class NicKv {
public:
    struct NodeEntry {
        std::string name;
        net::EndpointId ep = net::kInvalidEndpoint;
        net::ChannelPtr channel;
        bool is_master = false;
        bool valid = true;
        /// Replication offset last reported by the node (probe acks).
        std::int64_t repl_offset = 0;
        /// Quorum mode: highest offset this slave acknowledged to the NIC.
        std::int64_t quorum_ack = 0;
        /// Offset seen at the previous probe ack; a valid slave stuck below
        /// the fan-out cursor across a full probe round gets a resync
        /// (chain/quorum stall healing).
        std::int64_t prev_probe_offset = -1;
        /// Probe bookkeeping.
        std::int64_t last_heard_ns = 0;
        std::uint64_t probe_seq = 0;
        /// Which ARM core handles this slave's fan-out (multi-threaded mode).
        int core_idx = 0;
    };

    NicKv(sim::Simulation& sim, const cpu::CostModel& costs,
          rdma::ConnectionManager& cm, nic::SmartNic& nic, NicKvConfig cfg);

    /// Listen on the SmartNIC endpoint and start the probe timer.
    void start();

    // --- fault injection ------------------------------------------------------
    /// Crash the Nic-KV process on the SmartNIC: the ARM cores halt and all
    /// volatile service state — node table, fan-out cursor, pending
    /// registrations, on-board memory reservations — is lost. The caller
    /// (Cluster) severs/restores the NIC's fabric endpoint, which kills the
    /// channel endpoints. Peers re-register via probe silence.
    void crash();
    /// Restart the service cold (Nic-KV keeps no persistent state): an
    /// empty node table and a fresh probe cycle. The master's and slaves'
    /// probe-silence timers drive re-registration.
    void recover();
    [[nodiscard]] bool crashed() const { return crashed_; }

    // --- introspection --------------------------------------------------------
    [[nodiscard]] const std::vector<NodeEntry>& nodes() const { return nodes_; }
    [[nodiscard]] std::size_t slave_count() const;
    [[nodiscard]] int valid_slaves() const;
    [[nodiscard]] bool master_known() const { return master_idx_ >= 0; }
    [[nodiscard]] bool master_valid() const;
    [[nodiscard]] std::int64_t fanout_offset() const { return fanout_offset_; }
    /// Quorum mode: highest offset known replicated on a replica majority.
    [[nodiscard]] std::int64_t quorum_watermark() const { return quorum_watermark_; }
    /// Chain mode: names of the current chain members, head first.
    [[nodiscard]] std::vector<std::string> chain_order() const;
    [[nodiscard]] int effective_threads() const;
    [[nodiscard]] obs::Registry& stats() { return stats_; }

    /// Wire the cluster's observability tracer; `track_name` labels the NIC
    /// row in the chrome trace. Observation only — never perturbs the sim.
    void set_tracer(obs::Tracer* tracer, const std::string& track_name) {
        tracer_ = tracer;
        obs_track_ = tracer != nullptr ? tracer->track(track_name) : UINT32_MAX;
    }
    [[nodiscard]] const NicKvConfig& config() const { return cfg_; }
    [[nodiscard]] net::EndpointId endpoint() const { return nic_.endpoint(); }

private:
    void on_accept(net::ChannelPtr ch);
    void handle(const net::ChannelPtr& ch, const server::NodeMsg& msg);

    void register_master(const net::ChannelPtr& ch, const server::NodeMsg& msg);
    void register_slave(const net::ChannelPtr& ch, const server::NodeMsg& msg);
    void fan_out(const server::NodeMsg& msg);
    void handle_probe_ack(const net::ChannelPtr& ch, const server::NodeMsg& msg);

    // --- chain replication (DESIGN.md §13) --------------------------------
    /// Forward one replication frame to the chain head (chain mode's
    /// fan_out): members relay it downstream themselves.
    void chain_forward(const server::NodeMsg& msg);
    /// (Re-)splice the chain from the failure detector's view and push
    /// fresh successor assignments (kChainSet) to every member; laggards
    /// get a master-served resync for ranges the old chain never relayed.
    void reconfigure_chain();

    // --- quorum replication (DESIGN.md §13) -------------------------------
    void handle_quorum_ack(const net::ChannelPtr& ch, const server::NodeMsg& msg);
    /// Re-fan a master-pushed backlog suffix (ABD read-phase write-back) to
    /// replicas that have not yet acknowledged it.
    void handle_read_repair(const server::NodeMsg& msg);
    [[nodiscard]] int quorum_slave_acks_needed() const;
    /// Recompute the majority watermark from per-slave acks and, when it
    /// advances, release commits to the master via kQuorumCommit.
    void recompute_quorum_watermark();
    /// Ask the master to resync a valid-but-stalled lagging slave.
    void request_resync(const NodeEntry& e);

    void probe_cycle(std::uint64_t epoch);
    void check_timeouts();
    /// Elect a stand-in when the master is invalid and nobody has been
    /// promoted yet — from the invalidation scan, or when a slave
    /// (re)joins/revalidates into a masterless cluster.
    void maybe_promote();
    /// Shared failover/publish reaction after nodes were marked invalid by
    /// the timeout scan or a broken reliable link.
    void after_invalidation();
    void on_link_broken(const net::Channel* raw);
    void publish_slave_status();
    void assign_cores();

    [[nodiscard]] NodeEntry* find_by_channel(const net::ChannelPtr& ch);
    [[nodiscard]] NodeEntry* find_by_name(const std::string& name);

    sim::Simulation& sim_;
    const cpu::CostModel& costs_;
    rdma::ConnectionManager& cm_;
    nic::SmartNic& nic_;
    NicKvConfig cfg_;
    sim::Rng rng_;

    std::vector<NodeEntry> nodes_;
    std::vector<net::ChannelPtr> pending_; // accepted, not yet registered
    int master_idx_ = -1;
    int promoted_idx_ = -1; // slave elevated while the master is down
    std::int64_t fanout_offset_ = 0;
    std::int64_t quorum_watermark_ = 0;
    std::uint64_t probe_round_ = 0;
    /// Bumped on every (re)start of the probe chain so events scheduled by
    /// a pre-crash chain are ignored after recovery.
    std::uint64_t probe_epoch_ = 0;
    bool started_ = false;
    bool crashed_ = false;

    obs::Registry stats_;
    // Fan-out hot-path counters, pre-resolved in the constructor.
    obs::Counter c_fanout_sends_;
    obs::Counter c_repl_requests_;
    obs::Tracer* tracer_ = nullptr;
    std::uint32_t obs_track_ = UINT32_MAX;
};

} // namespace skv::offload
