#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cost_model.hpp"
#include "net/channel.hpp"
#include "nic/smartnic.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "rdma/cm.hpp"
#include "server/protocol.hpp"
#include "server/reliable.hpp"
#include "sim/simulation.hpp"

namespace skv::offload {

struct NicKvConfig {
    std::string name = "nic-kv";
    std::uint16_t port = 7000;
    /// Replication threads on the SmartNIC (paper §III-C). Clamped at run
    /// time to min(ARM cores, slave count); 1 disables multi-threading,
    /// the paper's default.
    int thread_num = 1;
    /// Probe cadence (paper §III-D: every 1 second).
    sim::Duration probe_interval{sim::seconds(1)};
    /// waiting-time: a node that has not answered a probe for this long is
    /// considered crashed.
    sim::Duration waiting_time{sim::milliseconds(1500)};
    /// Node-list entry footprint charged against on-board DRAM.
    std::size_t node_entry_bytes = 512 * 1024;
    /// Wrap accepted node links in the retransmitting layer (must match the
    /// KvServer-side setting, both ends speak the same envelope).
    bool reliable_node_links = true;
    server::ReliableParams reliable{};
};

/// Nic-KV: the offloaded component running on the SmartNIC's ARM cores.
/// It never talks to clients (paper §III-C: "Nic-KV does not handle
/// requests from clients. Instead, it only interacts with other server
/// nodes"). It maintains the node list, performs steady-state replication
/// fan-out on behalf of the master, coordinates initial synchronization,
/// and runs the failure detector.
class NicKv {
public:
    struct NodeEntry {
        std::string name;
        net::EndpointId ep = net::kInvalidEndpoint;
        net::ChannelPtr channel;
        bool is_master = false;
        bool valid = true;
        /// Replication offset last reported by the node (probe acks).
        std::int64_t repl_offset = 0;
        /// Probe bookkeeping.
        std::int64_t last_heard_ns = 0;
        std::uint64_t probe_seq = 0;
        /// Which ARM core handles this slave's fan-out (multi-threaded mode).
        int core_idx = 0;
    };

    NicKv(sim::Simulation& sim, const cpu::CostModel& costs,
          rdma::ConnectionManager& cm, nic::SmartNic& nic, NicKvConfig cfg);

    /// Listen on the SmartNIC endpoint and start the probe timer.
    void start();

    // --- fault injection ------------------------------------------------------
    /// Crash the Nic-KV process on the SmartNIC: the ARM cores halt and all
    /// volatile service state — node table, fan-out cursor, pending
    /// registrations, on-board memory reservations — is lost. The caller
    /// (Cluster) severs/restores the NIC's fabric endpoint, which kills the
    /// channel endpoints. Peers re-register via probe silence.
    void crash();
    /// Restart the service cold (Nic-KV keeps no persistent state): an
    /// empty node table and a fresh probe cycle. The master's and slaves'
    /// probe-silence timers drive re-registration.
    void recover();
    [[nodiscard]] bool crashed() const { return crashed_; }

    // --- introspection --------------------------------------------------------
    [[nodiscard]] const std::vector<NodeEntry>& nodes() const { return nodes_; }
    [[nodiscard]] std::size_t slave_count() const;
    [[nodiscard]] int valid_slaves() const;
    [[nodiscard]] bool master_known() const { return master_idx_ >= 0; }
    [[nodiscard]] bool master_valid() const;
    [[nodiscard]] std::int64_t fanout_offset() const { return fanout_offset_; }
    [[nodiscard]] int effective_threads() const;
    [[nodiscard]] obs::Registry& stats() { return stats_; }

    /// Wire the cluster's observability tracer; `track_name` labels the NIC
    /// row in the chrome trace. Observation only — never perturbs the sim.
    void set_tracer(obs::Tracer* tracer, const std::string& track_name) {
        tracer_ = tracer;
        obs_track_ = tracer != nullptr ? tracer->track(track_name) : UINT32_MAX;
    }
    [[nodiscard]] const NicKvConfig& config() const { return cfg_; }
    [[nodiscard]] net::EndpointId endpoint() const { return nic_.endpoint(); }

private:
    void on_accept(net::ChannelPtr ch);
    void handle(const net::ChannelPtr& ch, const server::NodeMsg& msg);

    void register_master(const net::ChannelPtr& ch, const server::NodeMsg& msg);
    void register_slave(const net::ChannelPtr& ch, const server::NodeMsg& msg);
    void fan_out(const server::NodeMsg& msg);
    void handle_probe_ack(const net::ChannelPtr& ch, const server::NodeMsg& msg);

    void probe_cycle(std::uint64_t epoch);
    void check_timeouts();
    /// Shared failover/publish reaction after nodes were marked invalid by
    /// the timeout scan or a broken reliable link.
    void after_invalidation();
    void on_link_broken(const net::Channel* raw);
    void publish_slave_status();
    void assign_cores();

    [[nodiscard]] NodeEntry* find_by_channel(const net::ChannelPtr& ch);
    [[nodiscard]] NodeEntry* find_by_name(const std::string& name);

    sim::Simulation& sim_;
    const cpu::CostModel& costs_;
    rdma::ConnectionManager& cm_;
    nic::SmartNic& nic_;
    NicKvConfig cfg_;
    sim::Rng rng_;

    std::vector<NodeEntry> nodes_;
    std::vector<net::ChannelPtr> pending_; // accepted, not yet registered
    int master_idx_ = -1;
    int promoted_idx_ = -1; // slave elevated while the master is down
    std::int64_t fanout_offset_ = 0;
    std::uint64_t probe_round_ = 0;
    /// Bumped on every (re)start of the probe chain so events scheduled by
    /// a pre-crash chain are ignored after recovery.
    std::uint64_t probe_epoch_ = 0;
    bool started_ = false;
    bool crashed_ = false;

    obs::Registry stats_;
    // Fan-out hot-path counters, pre-resolved in the constructor.
    obs::Counter c_fanout_sends_;
    obs::Counter c_repl_requests_;
    obs::Tracer* tracer_ = nullptr;
    std::uint32_t obs_track_ = UINT32_MAX;
};

} // namespace skv::offload
