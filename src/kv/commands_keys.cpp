#include <algorithm>

#include "kv/command.hpp"
#include "kv/sds.hpp"

namespace skv::kv {

namespace {

void cmd_del(CommandContext& ctx) {
    long long removed = 0;
    for (std::size_t i = 1; i < ctx.argv.size(); ++i) {
        if (ctx.db.remove(ctx.argv[i])) ++removed;
    }
    if (removed > 0) ctx.dirty = true;
    ctx.reply_integer(removed);
}

void cmd_exists(CommandContext& ctx) {
    long long n = 0;
    for (std::size_t i = 1; i < ctx.argv.size(); ++i) {
        if (ctx.db.exists(ctx.argv[i])) ++n;
    }
    ctx.reply_integer(n);
}

/// EXPIRE/PEXPIRE/EXPIREAT/PEXPIREAT share one body, differing in unit and
/// base. All replicate as an absolute PEXPIREAT so master and slaves agree
/// on the deadline.
void generic_expire(CommandContext& ctx, std::int64_t unit_ms, bool absolute) {
    const auto v = string2ll(ctx.argv[2]);
    if (!v.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    const std::int64_t at_ms = absolute ? *v * unit_ms : ctx.db.now_ms() + *v * unit_ms;
    if (!ctx.db.exists(ctx.argv[1])) {
        ctx.reply_integer(0);
        return;
    }
    if (at_ms <= ctx.db.now_ms()) {
        // Already in the past: delete, and replicate the deletion.
        ctx.db.remove(ctx.argv[1]);
        ctx.dirty = true;
        ctx.repl_override = std::vector<std::string>{"DEL", ctx.argv[1]};
        ctx.reply_integer(1);
        return;
    }
    ctx.db.set_expire(ctx.argv[1], at_ms);
    ctx.dirty = true;
    ctx.repl_override =
        std::vector<std::string>{"PEXPIREAT", ctx.argv[1], ll2string(at_ms)};
    ctx.reply_integer(1);
}

void cmd_ttl(CommandContext& ctx, bool ms) {
    const std::int64_t t = ctx.db.ttl_ms(ctx.argv[1]);
    if (t < 0) {
        ctx.reply_integer(t);
        return;
    }
    ctx.reply_integer(ms ? t : (t + 999) / 1000);
}

void cmd_persist(CommandContext& ctx) {
    if (ctx.db.persist(ctx.argv[1])) {
        ctx.dirty = true;
        ctx.reply_integer(1);
    } else {
        ctx.reply_integer(0);
    }
}

void cmd_type(CommandContext& ctx) {
    ObjectPtr o = ctx.db.lookup(ctx.argv[1]);
    ctx.reply_simple(o == nullptr ? "none" : to_string(o->type()));
}

} // namespace

/// Glob-style matcher (Redis stringmatchlen): *, ?, [class], escaping.
bool glob_match(std::string_view pattern, std::string_view str) {
    std::size_t p = 0;
    std::size_t s = 0;
    std::size_t star_p = std::string_view::npos;
    std::size_t star_s = 0;
    while (s < str.size()) {
        if (p < pattern.size()) {
            const char pc = pattern[p];
            if (pc == '*') {
                star_p = p++;
                star_s = s;
                continue;
            }
            if (pc == '?' || (pc == '\\' && p + 1 < pattern.size() &&
                              pattern[p + 1] == str[s]) ||
                pc == str[s]) {
                p += (pc == '\\') ? 2 : 1;
                ++s;
                continue;
            }
            if (pc == '[') {
                std::size_t q = p + 1;
                bool negate = q < pattern.size() && pattern[q] == '^';
                if (negate) ++q;
                bool matched = false;
                while (q < pattern.size() && pattern[q] != ']') {
                    if (q + 2 < pattern.size() && pattern[q + 1] == '-' &&
                        pattern[q + 2] != ']') {
                        if (str[s] >= pattern[q] && str[s] <= pattern[q + 2]) {
                            matched = true;
                        }
                        q += 3;
                    } else {
                        if (pattern[q] == str[s]) matched = true;
                        ++q;
                    }
                }
                if (q < pattern.size() && matched != negate) {
                    p = q + 1;
                    ++s;
                    continue;
                }
            }
        }
        if (star_p != std::string_view::npos) {
            p = star_p + 1;
            s = ++star_s;
            continue;
        }
        return false;
    }
    while (p < pattern.size() && pattern[p] == '*') ++p;
    return p == pattern.size();
}

namespace {

void cmd_keys(CommandContext& ctx) {
    const std::string& pattern = ctx.argv[1];
    std::vector<std::string> matched;
    for (auto& k : ctx.db.all_keys()) {
        if (glob_match(pattern, k)) matched.push_back(std::move(k));
    }
    std::sort(matched.begin(), matched.end()); // deterministic output
    ctx.reply += resp::array_header(matched.size());
    for (const auto& k : matched) ctx.reply_bulk(k);
}

void cmd_randomkey(CommandContext& ctx) {
    const auto k = ctx.db.random_key(ctx.rng);
    if (!k.has_value()) {
        ctx.reply_null();
    } else {
        ctx.reply_bulk(*k);
    }
}

void cmd_rename(CommandContext& ctx) {
    if (ctx.argv[1] == ctx.argv[2]) {
        if (!ctx.db.exists(ctx.argv[1])) {
            ctx.reply_error("ERR no such key");
            return;
        }
        ctx.reply_ok();
        return;
    }
    ObjectPtr o = ctx.db.lookup(ctx.argv[1]);
    if (o == nullptr) {
        ctx.reply_error("ERR no such key");
        return;
    }
    const auto expire = ctx.db.expire_at(ctx.argv[1]);
    ctx.db.remove(ctx.argv[1]);
    ctx.db.set(ctx.argv[2], std::move(o));
    if (expire.has_value()) ctx.db.set_expire(ctx.argv[2], *expire);
    ctx.dirty = true;
    ctx.reply_ok();
}

void cmd_renamenx(CommandContext& ctx) {
    if (!ctx.db.exists(ctx.argv[1])) {
        ctx.reply_error("ERR no such key");
        return;
    }
    if (ctx.db.exists(ctx.argv[2]) || ctx.argv[1] == ctx.argv[2]) {
        ctx.reply_integer(0);
        return;
    }
    ObjectPtr o = ctx.db.lookup(ctx.argv[1]);
    const auto expire = ctx.db.expire_at(ctx.argv[1]);
    ctx.db.remove(ctx.argv[1]);
    ctx.db.set(ctx.argv[2], std::move(o));
    if (expire.has_value()) ctx.db.set_expire(ctx.argv[2], *expire);
    ctx.dirty = true;
    ctx.reply_integer(1);
}

void cmd_object(CommandContext& ctx) {
    if (!Sds(ctx.argv[1]).iequals("ENCODING") || ctx.argv.size() != 3) {
        ctx.reply_error("ERR Unknown OBJECT subcommand or wrong number of arguments");
        return;
    }
    ObjectPtr o = ctx.db.lookup(ctx.argv[2]);
    if (o == nullptr) {
        ctx.reply_null();
        return;
    }
    ctx.reply_bulk(to_string(o->encoding()));
}

} // namespace

void register_key_commands(CommandTable& t) {
    t.add({"DEL", -2, kCmdWrite, cmd_del});
    t.add({"EXISTS", -2, kCmdReadOnly | kCmdFast, cmd_exists});
    t.add({"EXPIRE", 3, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_expire(ctx, 1000, false); }});
    t.add({"PEXPIRE", 3, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_expire(ctx, 1, false); }});
    t.add({"EXPIREAT", 3, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_expire(ctx, 1000, true); }});
    t.add({"PEXPIREAT", 3, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_expire(ctx, 1, true); }});
    t.add({"TTL", 2, kCmdReadOnly | kCmdFast,
           [](CommandContext& ctx) { cmd_ttl(ctx, false); }});
    t.add({"PTTL", 2, kCmdReadOnly | kCmdFast,
           [](CommandContext& ctx) { cmd_ttl(ctx, true); }});
    t.add({"PERSIST", 2, kCmdWrite | kCmdFast, cmd_persist});
    t.add({"TYPE", 2, kCmdReadOnly | kCmdFast, cmd_type});
    t.add({"KEYS", 2, kCmdReadOnly, cmd_keys});
    t.add({"RANDOMKEY", 1, kCmdReadOnly, cmd_randomkey});
    t.add({"RENAME", 3, kCmdWrite, cmd_rename});
    t.add({"RENAMENX", 3, kCmdWrite | kCmdFast, cmd_renamenx});
    t.add({"OBJECT", -2, kCmdReadOnly, cmd_object});
}

} // namespace skv::kv
