#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kv/db.hpp"
#include "kv/resp.hpp"
#include "sim/rng.hpp"

namespace skv::kv {

/// Command attribute flags (subset of Redis's).
enum CommandFlags : unsigned {
    kCmdWrite = 1u << 0,    // may mutate the keyspace: replicated to slaves
    kCmdReadOnly = 1u << 1, // never mutates
    kCmdFast = 1u << 2,     // O(1)-ish
    kCmdAdmin = 1u << 3,    // server administration
};

/// Execution context handed to a command handler.
struct CommandContext {
    Database& db;
    sim::Rng& rng;
    const std::vector<std::string>& argv;
    std::string& reply; // RESP bytes are appended here

    /// Set by handlers that mutate state (drives dirty accounting and
    /// replication: only dirty writes propagate).
    bool dirty = false;

    /// Effect replication: when a command is non-deterministic (SPOP,
    /// INCRBYFLOAT) or time-relative (EXPIRE), the handler records the
    /// deterministic command slaves must execute instead, exactly as Redis
    /// rewrites them in the replication stream.
    std::optional<std::vector<std::string>> repl_override;

    // -- handler conveniences ------------------------------------------------
    void reply_ok() { reply += resp::simple("OK"); }
    void reply_simple(std::string_view s) { reply += resp::simple(s); }
    void reply_error(std::string_view s) { reply += resp::error(s); }
    void reply_integer(long long v) { reply += resp::integer(v); }
    void reply_bulk(std::string_view s) { reply += resp::bulk(s); }
    void reply_null() { reply += resp::null_bulk(); }
    void reply_wrongtype() {
        reply += resp::error(
            "WRONGTYPE Operation against a key holding the wrong kind of value");
    }

    /// Look up `key` requiring type `t`: nullptr + WRONGTYPE reply on type
    /// mismatch, nullptr without reply when missing.
    ObjectPtr lookup_typed(std::string_view key, ObjType t, bool* type_error);
};

struct CommandSpec {
    std::string name;
    /// Positive: exact argc (including the command name). Negative: at
    /// least |arity| arguments.
    int arity;
    unsigned flags;
    std::function<void(CommandContext&)> handler;

    [[nodiscard]] bool is_write() const { return (flags & kCmdWrite) != 0; }
    [[nodiscard]] bool arity_ok(std::size_t argc) const {
        if (arity >= 0) return argc == static_cast<std::size_t>(arity);
        return argc >= static_cast<std::size_t>(-arity);
    }
};

/// Outcome of dispatching one command.
struct ExecResult {
    enum class Status : std::uint8_t {
        kOk,
        kUnknownCommand,
        kArityError,
        kExecError, // handler replied with -ERR/-WRONGTYPE
    };
    Status status = Status::kOk;
    bool dirty = false;
    bool is_write = false;
    /// The command to feed to the replication stream (argv or the
    /// handler's deterministic rewrite); empty when nothing to replicate.
    std::vector<std::string> repl_argv;
};

/// The command dispatch table. One immutable instance serves every server
/// in the simulation.
class CommandTable {
public:
    CommandTable();

    static const CommandTable& instance();

    [[nodiscard]] const CommandSpec* lookup(std::string_view name) const;

    /// Dispatch `argv` against `db`, appending the RESP reply to `reply`.
    ExecResult execute(Database& db, sim::Rng& rng,
                       const std::vector<std::string>& argv,
                       std::string& reply) const;

    [[nodiscard]] std::size_t size() const { return commands_.size(); }
    template <typename Fn> // Fn(const CommandSpec&)
    void for_each(Fn&& fn) const {
        for (const auto& [name, spec] : commands_) fn(spec);
    }

    void add(CommandSpec spec);

private:
    std::map<std::string, CommandSpec> commands_; // lower-cased name
};

/// Glob-style pattern match (Redis stringmatchlen): *, ?, [class], \escape.
/// Used by KEYS and the SCAN family's MATCH option.
bool glob_match(std::string_view pattern, std::string_view str);

// Per-family registration (defined in commands_*.cpp).
void register_string_commands(CommandTable& t);
void register_key_commands(CommandTable& t);
void register_list_commands(CommandTable& t);
void register_set_commands(CommandTable& t);
void register_hash_commands(CommandTable& t);
void register_zset_commands(CommandTable& t);
void register_server_commands(CommandTable& t);
void register_scan_commands(CommandTable& t);
void register_bit_commands(CommandTable& t);

} // namespace skv::kv
