#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace skv::kv::resp {

// --- encoding -----------------------------------------------------------

std::string simple(std::string_view s);  // +s\r\n
std::string error(std::string_view s);   // -s\r\n
std::string integer(long long v);        // :v\r\n
std::string bulk(std::string_view s);    // $n\r\n s \r\n
std::string null_bulk();                 // $-1\r\n
std::string null_array();                // *-1\r\n
std::string array_header(std::size_t n); // *n\r\n

/// Encode a command as an array of bulk strings (what clients send).
std::string command(const std::vector<std::string>& argv);

// --- parsed reply values ---------------------------------------------------

/// A fully parsed RESP2 value (client side and tests).
struct Value {
    enum class Kind : std::uint8_t { kSimple, kError, kInteger, kBulk, kNull, kArray };
    Kind kind = Kind::kNull;
    std::string str;           // simple / error / bulk payload
    long long num = 0;         // integer payload
    std::vector<Value> elems;  // array payload

    [[nodiscard]] bool is_ok() const {
        return kind == Kind::kSimple && str == "OK";
    }
    [[nodiscard]] bool is_error() const { return kind == Kind::kError; }
    [[nodiscard]] std::string to_debug_string() const;
};

enum class Status : std::uint8_t { kOk, kNeedMore, kError };

/// Server-side incremental command parser: accepts both the multibulk
/// protocol ("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n") and inline commands
/// ("GET k\r\n"), like readQueryFromClient/processInlineBuffer. Call
/// feed() as bytes arrive, then next() until it returns kNeedMore.
class RequestParser {
public:
    /// Maximum accepted bulk length / element count, as a protocol sanity
    /// bound (Redis uses 512 MB; the simulation uses something smaller).
    static constexpr long long kMaxBulk = 64LL * 1024 * 1024;
    static constexpr long long kMaxMultiBulk = 1024 * 1024;

    void feed(std::string_view data) { buf_.append(data); }

    /// Try to parse the next complete command into `argv`.
    Status next(std::vector<std::string>* argv, std::string* errmsg = nullptr);

    [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }
    void reset();

private:
    Status parse_inline(std::vector<std::string>* argv, std::string* errmsg);
    Status parse_multibulk(std::vector<std::string>* argv, std::string* errmsg);
    /// Read a CRLF-terminated line starting at `from`; returns the line
    /// (without CRLF) and advances `*end_pos` past it.
    std::optional<std::string_view> take_line(std::size_t from, std::size_t* end_pos) const;
    void compact();

    std::string buf_;
    std::size_t pos_ = 0;
};

/// Client-side incremental reply parser: parses complete RESP values
/// (arrays recursively).
class ReplyParser {
public:
    void feed(std::string_view data) { buf_.append(data); }
    Status next(Value* out, std::string* errmsg = nullptr);
    [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }
    void reset();

private:
    /// Parse one value at `*p`; advances `*p` on success.
    Status parse_value(std::size_t* p, Value* out, std::string* errmsg, int depth);
    std::optional<std::string_view> take_line(std::size_t from, std::size_t* end_pos) const;
    void compact();

    std::string buf_;
    std::size_t pos_ = 0;
};

} // namespace skv::kv::resp
