#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "kv/dict.hpp"
#include "kv/object.hpp"
#include "sim/rng.hpp"

namespace skv::kv {

/// The keyspace: a dict from key to object plus a dict from key to
/// absolute expiry time (milliseconds), with Redis's two expiration
/// mechanisms — lazy (on access) and active (random sampling from the
/// expires dict, run from the server cron).
///
/// Time is injected: the server wires the simulated clock in, unit tests
/// use a settable fake, so the engine itself stays simulation-agnostic.
class Database {
public:
    explicit Database(std::function<std::int64_t()> clock_ms)
        : clock_ms_(std::move(clock_ms)) {}

    /// Read-path lookup with lazy expiration. Returns nullptr when the key
    /// is missing or expired (expired keys are deleted on the spot).
    ObjectPtr lookup(std::string_view key);

    /// Bind `obj` to `key`, replacing any previous value and clearing any
    /// previous expiry (SET semantics).
    void set(std::string_view key, ObjectPtr obj);

    /// Bind preserving an existing TTL (SETRANGE/APPEND-style updates
    /// mutate in place, so only SET-like full replacement uses this=false).
    void set_keep_ttl(std::string_view key, ObjectPtr obj);

    bool remove(std::string_view key);
    bool exists(std::string_view key);

    /// Set the expiry of an existing key (absolute ms). False if no key.
    bool set_expire(std::string_view key, std::int64_t at_ms);
    /// Drop the expiry; true if there was one.
    bool persist(std::string_view key);
    [[nodiscard]] std::optional<std::int64_t> expire_at(std::string_view key) const;
    /// Remaining TTL in ms: -2 missing key, -1 no expiry, else >= 0.
    std::int64_t ttl_ms(std::string_view key);

    [[nodiscard]] std::size_t size() const { return keys_.size(); }
    [[nodiscard]] std::size_t expires_size() const { return expires_.size(); }
    void clear();

    /// One active-expire round: sample up to `samples` random entries of
    /// the expires dict and delete the expired ones. Returns how many were
    /// removed. Mirrors activeExpireCycle's sampling core.
    std::size_t active_expire_cycle(sim::Rng& rng, std::size_t samples);

    /// All live keys (KEYS *). Lazy expiration is applied.
    std::vector<std::string> all_keys();

    /// Uniformly random live key (RANDOMKEY); nullopt when empty.
    std::optional<std::string> random_key(sim::Rng& rng);

    [[nodiscard]] Dict<ObjectPtr>& keys() { return keys_; }
    [[nodiscard]] const Dict<ObjectPtr>& keys() const { return keys_; }

    /// Count of effective mutations since creation (drives replication
    /// bookkeeping and RDB-save heuristics).
    [[nodiscard]] std::uint64_t dirty() const { return dirty_; }
    void mark_dirty() { ++dirty_; }

    [[nodiscard]] std::int64_t now_ms() const { return clock_ms_(); }

    /// Deep structural equality, expiry-aware (replication convergence
    /// checks compare master and slave databases with this).
    [[nodiscard]] bool equals(const Database& o) const;

    [[nodiscard]] std::size_t memory_bytes() const;

private:
    [[nodiscard]] bool key_is_expired(std::string_view key) const;

    std::function<std::int64_t()> clock_ms_;
    Dict<ObjectPtr> keys_;
    Dict<std::int64_t> expires_;
    std::uint64_t dirty_ = 0;
};

} // namespace skv::kv
