#include "kv/db.hpp"
#include "sim/check.hpp"


namespace skv::kv {

bool Database::key_is_expired(std::string_view key) const {
    const std::int64_t* at = expires_.find(Sds(key));
    return at != nullptr && *at <= clock_ms_();
}

ObjectPtr Database::lookup(std::string_view key) {
    const Sds k(key);
    if (key_is_expired(key)) {
        keys_.erase(k);
        expires_.erase(k);
        ++dirty_;
        return nullptr;
    }
    ObjectPtr* o = keys_.find(k);
    return o != nullptr ? *o : nullptr;
}

void Database::set(std::string_view key, ObjectPtr obj) {
    SKV_DCHECK(obj);
    const Sds k(key);
    keys_.set(k, std::move(obj));
    expires_.erase(k);
    ++dirty_;
}

void Database::set_keep_ttl(std::string_view key, ObjectPtr obj) {
    SKV_DCHECK(obj);
    keys_.set(Sds(key), std::move(obj));
    ++dirty_;
}

bool Database::remove(std::string_view key) {
    const Sds k(key);
    expires_.erase(k);
    if (keys_.erase(k)) {
        ++dirty_;
        return true;
    }
    return false;
}

bool Database::exists(std::string_view key) { return lookup(key) != nullptr; }

bool Database::set_expire(std::string_view key, std::int64_t at_ms) {
    if (lookup(key) == nullptr) return false;
    expires_.set(Sds(key), at_ms);
    ++dirty_;
    return true;
}

bool Database::persist(std::string_view key) {
    if (lookup(key) == nullptr) return false;
    if (expires_.erase(Sds(key))) {
        ++dirty_;
        return true;
    }
    return false;
}

std::optional<std::int64_t> Database::expire_at(std::string_view key) const {
    const std::int64_t* at = expires_.find(Sds(key));
    if (at == nullptr) return std::nullopt;
    return *at;
}

std::int64_t Database::ttl_ms(std::string_view key) {
    if (lookup(key) == nullptr) return -2;
    const std::int64_t* at = expires_.find(Sds(key));
    if (at == nullptr) return -1;
    const std::int64_t rem = *at - clock_ms_();
    return rem > 0 ? rem : 0;
}

void Database::clear() {
    keys_.clear();
    expires_.clear();
    ++dirty_;
}

std::size_t Database::active_expire_cycle(sim::Rng& rng, std::size_t samples) {
    std::size_t removed = 0;
    const std::int64_t now = clock_ms_();
    for (std::size_t i = 0; i < samples && !expires_.empty(); ++i) {
        auto [key, at] = expires_.random_entry(rng);
        if (key == nullptr) break;
        if (*at <= now) {
            const Sds k = *key; // copy before erasing invalidates the pointer
            keys_.erase(k);
            expires_.erase(k);
            ++dirty_;
            ++removed;
        }
    }
    return removed;
}

std::vector<std::string> Database::all_keys() {
    // Collect first, then lazily expire, so dict mutation never races the
    // iteration.
    std::vector<std::string> candidates;
    candidates.reserve(keys_.size());
    keys_.for_each([&](const Sds& k, const ObjectPtr&) {
        candidates.push_back(k.str());
    });
    std::vector<std::string> out;
    out.reserve(candidates.size());
    for (auto& k : candidates) {
        if (lookup(k) != nullptr) out.push_back(std::move(k));
    }
    return out;
}

std::optional<std::string> Database::random_key(sim::Rng& rng) {
    while (!keys_.empty()) {
        auto [key, val] = keys_.random_entry(rng);
        (void)val;
        if (key == nullptr) return std::nullopt;
        const std::string k = key->str();
        if (lookup(k) != nullptr) return k;
        // expired and removed: sample again
    }
    return std::nullopt;
}

bool Database::equals(const Database& o) const {
    if (keys_.size() != o.keys_.size()) return false;
    bool same = true;
    keys_.for_each([&](const Sds& k, const ObjectPtr& v) {
        if (!same) return;
        const ObjectPtr* ov = o.keys_.find(k);
        if (ov == nullptr || !v->equals(**ov)) {
            same = false;
            return;
        }
        const std::int64_t* e = expires_.find(k);
        const std::int64_t* oe = o.expires_.find(k);
        if ((e == nullptr) != (oe == nullptr)) same = false;
        else if (e != nullptr && *e != *oe) same = false;
    });
    return same;
}

std::size_t Database::memory_bytes() const {
    std::size_t n = 0;
    keys_.for_each([&](const Sds& k, const ObjectPtr& v) {
        n += k.capacity() + sizeof(Sds) + v->memory_bytes();
    });
    n += expires_.size() * (sizeof(Sds) + sizeof(std::int64_t) + 16);
    return n;
}

} // namespace skv::kv
