#include "kv/intset.hpp"

#include <cstring>
#include <limits>

#include "sim/check.hpp"

namespace skv::kv {

IntSet::Encoding IntSet::required_encoding(std::int64_t v) {
    if (v >= std::numeric_limits<std::int16_t>::min() &&
        v <= std::numeric_limits<std::int16_t>::max()) {
        return Encoding::kInt16;
    }
    if (v >= std::numeric_limits<std::int32_t>::min() &&
        v <= std::numeric_limits<std::int32_t>::max()) {
        return Encoding::kInt32;
    }
    return Encoding::kInt64;
}

std::int64_t IntSet::get(std::size_t i, Encoding enc) const {
    const std::size_t w = static_cast<std::size_t>(enc);
    SKV_DCHECK((i + 1) * w <= buf_.size());
    switch (enc) {
        case Encoding::kInt16: {
            std::int16_t v;
            std::memcpy(&v, buf_.data() + i * w, w);
            return v;
        }
        case Encoding::kInt32: {
            std::int32_t v;
            std::memcpy(&v, buf_.data() + i * w, w);
            return v;
        }
        case Encoding::kInt64: {
            std::int64_t v;
            std::memcpy(&v, buf_.data() + i * w, w);
            return v;
        }
    }
    return 0;
}

void IntSet::set(std::size_t i, std::int64_t v) {
    const std::size_t w = static_cast<std::size_t>(encoding_);
    SKV_DCHECK((i + 1) * w <= buf_.size());
    switch (encoding_) {
        case Encoding::kInt16: {
            const auto x = static_cast<std::int16_t>(v);
            std::memcpy(buf_.data() + i * w, &x, w);
            break;
        }
        case Encoding::kInt32: {
            const auto x = static_cast<std::int32_t>(v);
            std::memcpy(buf_.data() + i * w, &x, w);
            break;
        }
        case Encoding::kInt64:
            std::memcpy(buf_.data() + i * w, &v, w);
            break;
    }
}

std::int64_t IntSet::at(std::size_t i) const {
    SKV_DCHECK(i < size_);
    return get(i, encoding_);
}

std::int64_t IntSet::random(sim::Rng& rng) const {
    SKV_DCHECK(size_ > 0);
    return at(rng.next_below(size_));
}

bool IntSet::search(std::int64_t v, std::size_t* pos) const {
    if (size_ == 0) {
        *pos = 0;
        return false;
    }
    // Edge shortcuts, as in Redis intsetSearch.
    if (v > at(size_ - 1)) {
        *pos = size_;
        return false;
    }
    if (v < at(0)) {
        *pos = 0;
        return false;
    }
    std::size_t lo = 0;
    std::size_t hi = size_ - 1;
    while (lo <= hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        const std::int64_t cur = at(mid);
        if (cur == v) {
            *pos = mid;
            return true;
        }
        if (cur < v) {
            lo = mid + 1;
        } else {
            if (mid == 0) break;
            hi = mid - 1;
        }
    }
    *pos = lo;
    return false;
}

void IntSet::upgrade_and_insert(std::int64_t v) {
    const Encoding newenc = required_encoding(v);
    SKV_DCHECK(static_cast<int>(newenc) > static_cast<int>(encoding_));
    const Encoding oldenc = encoding_;
    const std::size_t n = size_;
    const bool prepend = v < 0; // wider value sorts at one end by definition

    std::vector<std::uint8_t> old = std::move(buf_);
    encoding_ = newenc;
    buf_.assign((n + 1) * static_cast<std::size_t>(newenc), 0);

    // Re-encode the existing elements, shifted by one if prepending.
    for (std::size_t i = 0; i < n; ++i) {
        std::int64_t e;
        const std::size_t w = static_cast<std::size_t>(oldenc);
        if (oldenc == Encoding::kInt16) {
            std::int16_t x;
            std::memcpy(&x, old.data() + i * w, w);
            e = x;
        } else if (oldenc == Encoding::kInt32) {
            std::int32_t x;
            std::memcpy(&x, old.data() + i * w, w);
            e = x;
        } else {
            std::memcpy(&e, old.data() + i * w, w);
        }
        set(prepend ? i + 1 : i, e);
    }
    set(prepend ? 0 : n, v);
    ++size_;
}

bool IntSet::insert(std::int64_t v) {
    if (static_cast<int>(required_encoding(v)) > static_cast<int>(encoding_)) {
        // The value cannot be present: it does not fit the current encoding.
        upgrade_and_insert(v);
        return true;
    }
    std::size_t pos;
    if (search(v, &pos)) return false;
    const std::size_t w = static_cast<std::size_t>(encoding_);
    buf_.resize((size_ + 1) * w);
    if (pos < size_) {
        std::memmove(buf_.data() + (pos + 1) * w, buf_.data() + pos * w,
                     (size_ - pos) * w);
    }
    ++size_;
    set(pos, v);
    return true;
}

bool IntSet::erase(std::int64_t v) {
    if (static_cast<int>(required_encoding(v)) > static_cast<int>(encoding_)) {
        return false;
    }
    std::size_t pos;
    if (!search(v, &pos)) return false;
    const std::size_t w = static_cast<std::size_t>(encoding_);
    if (pos + 1 < size_) {
        std::memmove(buf_.data() + pos * w, buf_.data() + (pos + 1) * w,
                     (size_ - pos - 1) * w);
    }
    --size_;
    buf_.resize(size_ * w);
    return true;
}

bool IntSet::contains(std::int64_t v) const {
    if (static_cast<int>(required_encoding(v)) > static_cast<int>(encoding_)) {
        return false;
    }
    std::size_t pos;
    return search(v, &pos);
}

} // namespace skv::kv
