#include "kv/command.hpp"

#include <algorithm>
#include <cctype>

#include "sim/check.hpp"

namespace skv::kv {

namespace {

std::string lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

} // namespace

ObjectPtr CommandContext::lookup_typed(std::string_view key, ObjType t,
                                       bool* type_error) {
    *type_error = false;
    ObjectPtr o = db.lookup(key);
    if (o != nullptr && o->type() != t) {
        *type_error = true;
        reply_wrongtype();
        return nullptr;
    }
    return o;
}

CommandTable::CommandTable() {
    register_string_commands(*this);
    register_key_commands(*this);
    register_list_commands(*this);
    register_set_commands(*this);
    register_hash_commands(*this);
    register_zset_commands(*this);
    register_server_commands(*this);
    register_scan_commands(*this);
    register_bit_commands(*this);
}

const CommandTable& CommandTable::instance() {
    static const CommandTable table;
    return table;
}

void CommandTable::add(CommandSpec spec) {
    std::string key = lower(spec.name);
    SKV_CHECK(!commands_.contains(key), "duplicate command registration");
    commands_.emplace(std::move(key), std::move(spec));
}

const CommandSpec* CommandTable::lookup(std::string_view name) const {
    auto it = commands_.find(lower(name));
    return it == commands_.end() ? nullptr : &it->second;
}

ExecResult CommandTable::execute(Database& db, sim::Rng& rng,
                                 const std::vector<std::string>& argv,
                                 std::string& reply) const {
    ExecResult res;
    SKV_DCHECK(!argv.empty());
    const CommandSpec* spec = lookup(argv[0]);
    if (spec == nullptr) {
        reply += resp::error("ERR unknown command '" + argv[0] + "'");
        res.status = ExecResult::Status::kUnknownCommand;
        return res;
    }
    if (!spec->arity_ok(argv.size())) {
        reply += resp::error("ERR wrong number of arguments for '" +
                             lower(spec->name) + "' command");
        res.status = ExecResult::Status::kArityError;
        return res;
    }

    const std::size_t reply_start = reply.size();
    CommandContext ctx{db, rng, argv, reply, false, std::nullopt};
    spec->handler(ctx);

    res.is_write = spec->is_write();
    res.dirty = ctx.dirty;
    if (reply.size() > reply_start && reply[reply_start] == '-') {
        res.status = ExecResult::Status::kExecError;
    }
    if (res.is_write && res.dirty) {
        res.repl_argv = ctx.repl_override.has_value() ? std::move(*ctx.repl_override)
                                                      : argv;
    }
    return res;
}

} // namespace skv::kv
