#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kv/dict.hpp"
#include "kv/intset.hpp"
#include "kv/sds.hpp"
#include "kv/skiplist.hpp"

namespace skv::kv {

enum class ObjType : std::uint8_t { kString, kList, kSet, kHash, kZSet };
enum class ObjEncoding : std::uint8_t {
    kInt,       // string holding a long long
    kRaw,       // sds string
    kQuickList, // list of sds
    kIntSet,    // small all-integer set
    kHashTable, // dict-backed set or hash
    kSkipList,  // zset (dict + skiplist)
};

const char* to_string(ObjType t);
const char* to_string(ObjEncoding e);

class Object;
using ObjectPtr = std::shared_ptr<Object>;

/// A Redis object: a type tag, an encoding, and the payload. Encodings
/// follow Redis's space/speed conversions: strings that parse as integers
/// use the int encoding; small all-integer sets start as intsets and
/// upgrade to hash tables when a non-integer member arrives or the set
/// outgrows `kSetMaxIntsetEntries`.
class Object {
public:
    static constexpr std::size_t kSetMaxIntsetEntries = 512;

    // --- constructors -----------------------------------------------------
    static ObjectPtr make_string(std::string_view v);
    static ObjectPtr make_string_ll(long long v);
    static ObjectPtr make_list();
    static ObjectPtr make_set();
    static ObjectPtr make_hash();
    static ObjectPtr make_zset();

    [[nodiscard]] ObjType type() const { return type_; }
    [[nodiscard]] ObjEncoding encoding() const { return encoding_; }

    // --- string -----------------------------------------------------------
    /// Rendered value (decodes the int encoding).
    [[nodiscard]] std::string string_value() const;
    [[nodiscard]] std::size_t string_len() const;
    /// The integer behind an int-encoded string; nullopt otherwise.
    [[nodiscard]] std::optional<long long> int_value() const;
    /// Append to the string value (forces raw encoding); returns new length.
    std::size_t string_append(std::string_view tail);
    /// Overwrite with a possibly-int-encodable value.
    void string_set(std::string_view v);
    void string_set_ll(long long v);

    // --- list ---------------------------------------------------------------
    [[nodiscard]] std::deque<Sds>& list() { return list_; }
    [[nodiscard]] const std::deque<Sds>& list() const { return list_; }

    // --- set ----------------------------------------------------------------
    /// Add a member; returns true when newly added. Handles the
    /// intset -> hashtable encoding upgrade.
    bool set_add(std::string_view member);
    bool set_remove(std::string_view member);
    [[nodiscard]] bool set_contains(std::string_view member) const;
    [[nodiscard]] std::size_t set_size() const;
    [[nodiscard]] std::vector<std::string> set_members() const;
    /// Remove and return a uniformly random member; nullopt when empty.
    std::optional<std::string> set_pop(sim::Rng& rng);

    // --- hash ---------------------------------------------------------------
    [[nodiscard]] Dict<Sds>& hash() { return hash_; }
    [[nodiscard]] const Dict<Sds>& hash() const { return hash_; }

    // --- zset ----------------------------------------------------------------
    /// Add or update; returns true when the member is new.
    bool zadd(double score, std::string_view member);
    bool zrem(std::string_view member);
    [[nodiscard]] std::optional<double> zscore(std::string_view member) const;
    [[nodiscard]] std::size_t zcard() const { return zsl_ ? zsl_->size() : 0; }
    /// 0-based rank, or nullopt when absent.
    [[nodiscard]] std::optional<std::size_t> zrank(std::string_view member) const;
    [[nodiscard]] const SkipList& zsl() const { return *zsl_; }

    /// Approximate heap footprint, for INFO and NIC memory budgeting.
    [[nodiscard]] std::size_t memory_bytes() const;

    /// Deep structural equality (used by replication-convergence tests).
    [[nodiscard]] bool equals(const Object& o) const;

private:
    Object(ObjType t, ObjEncoding e) : type_(t), encoding_(e) {}

    void set_upgrade_to_hashtable();

    ObjType type_;
    ObjEncoding encoding_;

    // string payloads
    long long ival_ = 0;
    Sds str_;
    // list payload
    std::deque<Sds> list_;
    // set payloads
    IntSet intset_;
    Dict<char> setdict_;
    // hash payload
    Dict<Sds> hash_;
    // zset payload
    Dict<double> zdict_;
    std::unique_ptr<SkipList> zsl_;
};

} // namespace skv::kv
