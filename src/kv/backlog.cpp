#include "kv/backlog.hpp"

#include <algorithm>
#include <cstring>

#include "sim/check.hpp"

namespace skv::kv {

ReplBacklog::ReplBacklog(std::size_t capacity) : buf_(capacity) {
    SKV_CHECK(capacity > 0);
}

void ReplBacklog::append(std::string_view bytes) {
    master_offset_ += static_cast<std::int64_t>(bytes.size());
    // Only the trailing `capacity` bytes can ever matter.
    if (bytes.size() >= buf_.size()) {
        bytes.remove_prefix(bytes.size() - buf_.size());
        std::memcpy(buf_.data(), bytes.data(), bytes.size());
        head_ = bytes.size() % buf_.size();
        used_ = buf_.size();
        return;
    }
    const std::size_t first = std::min(bytes.size(), buf_.size() - head_);
    std::memcpy(buf_.data() + head_, bytes.data(), first);
    if (first < bytes.size()) {
        std::memcpy(buf_.data(), bytes.data() + first, bytes.size() - first);
    }
    head_ = (head_ + bytes.size()) % buf_.size();
    used_ = std::min(used_ + bytes.size(), buf_.size());
}

std::string ReplBacklog::read_from(std::int64_t from) const {
    SKV_DCHECK(can_serve(from));
    const auto len = static_cast<std::size_t>(master_offset_ - from);
    if (len == 0) return {};
    // The ring's logical end is at head_; the wanted range ends there.
    std::string out;
    out.reserve(len);
    const std::size_t start = (head_ + buf_.size() - len % buf_.size()) % buf_.size();
    const std::size_t first = std::min(len, buf_.size() - start);
    out.append(buf_.data() + start, first);
    if (first < len) out.append(buf_.data(), len - first);
    return out;
}

void ReplBacklog::clear() {
    head_ = 0;
    used_ = 0;
    // master_offset_ is preserved: clearing the ring does not rewind
    // replication history.
}

void ReplBacklog::reset(std::int64_t offset) {
    SKV_CHECK(offset >= 0);
    head_ = 0;
    used_ = 0;
    master_offset_ = offset;
}

} // namespace skv::kv
