#include "kv/dict.hpp"

namespace skv::kv {

std::uint64_t dict_hash(std::string_view key) {
    // xxh3-style avalanche over 8-byte lanes; deterministic and fast.
    std::uint64_t h = 0x9E3779B185EBCA87ULL ^ (key.size() * 0xC2B2AE3D27D4EB4FULL);
    std::size_t i = 0;
    while (i + 8 <= key.size()) {
        std::uint64_t lane = 0;
        for (int b = 0; b < 8; ++b) {
            lane |= static_cast<std::uint64_t>(
                        static_cast<unsigned char>(key[i + static_cast<std::size_t>(b)]))
                    << (b * 8);
        }
        h ^= lane * 0x9E3779B185EBCA87ULL;
        h = (h << 31) | (h >> 33);
        h *= 0xC2B2AE3D27D4EB4FULL;
        i += 8;
    }
    for (; i < key.size(); ++i) {
        h ^= static_cast<unsigned char>(key[i]);
        h *= 0x100000001B3ULL;
    }
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return h;
}

} // namespace skv::kv
