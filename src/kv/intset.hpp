#pragma once

#include <cstdint>
#include <cstddef>
#include <optional>
#include <vector>

#include "sim/rng.hpp"

namespace skv::kv {

/// Redis intset: a sorted array of integers with the narrowest encoding
/// that fits (int16 -> int32 -> int64), upgraded in place when a wider
/// value arrives. Backs small all-integer SETs.
class IntSet {
public:
    enum class Encoding : std::uint8_t { kInt16 = 2, kInt32 = 4, kInt64 = 8 };

    IntSet() = default;

    /// Insert; returns false if already present.
    bool insert(std::int64_t v);
    /// Remove; returns false if absent.
    bool erase(std::int64_t v);
    [[nodiscard]] bool contains(std::int64_t v) const;

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] Encoding encoding() const { return encoding_; }
    [[nodiscard]] std::size_t memory_bytes() const {
        return buf_.size();
    }

    /// Element at sorted position i (0-based).
    [[nodiscard]] std::int64_t at(std::size_t i) const;

    /// Uniformly random element; requires non-empty.
    [[nodiscard]] std::int64_t random(sim::Rng& rng) const;

private:
    static Encoding required_encoding(std::int64_t v);
    [[nodiscard]] std::int64_t get(std::size_t i, Encoding enc) const;
    void set(std::size_t i, std::int64_t v);
    /// Binary search; returns true and position if found, else insertion
    /// position.
    bool search(std::int64_t v, std::size_t* pos) const;
    void upgrade_and_insert(std::int64_t v);

    Encoding encoding_ = Encoding::kInt16;
    std::size_t size_ = 0;
    std::vector<std::uint8_t> buf_;
};

} // namespace skv::kv
