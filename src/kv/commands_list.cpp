#include "kv/command.hpp"

namespace skv::kv {

namespace {

/// Normalize a possibly-negative index against `len`; clamps to
/// [-1, len] so callers can detect emptiness.
std::ptrdiff_t normalize_index(long long idx, std::size_t len) {
    auto i = static_cast<std::ptrdiff_t>(idx);
    if (i < 0) i += static_cast<std::ptrdiff_t>(len);
    return i;
}

void generic_push(CommandContext& ctx, bool left, bool require_existing) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kList, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        if (require_existing) {
            ctx.reply_integer(0);
            return;
        }
        o = Object::make_list();
        ctx.db.set_keep_ttl(ctx.argv[1], o);
    } else {
        ctx.db.mark_dirty();
    }
    for (std::size_t i = 2; i < ctx.argv.size(); ++i) {
        if (left) {
            o->list().push_front(Sds(ctx.argv[i]));
        } else {
            o->list().push_back(Sds(ctx.argv[i]));
        }
    }
    ctx.dirty = true;
    ctx.reply_integer(static_cast<long long>(o->list().size()));
}

void generic_pop(CommandContext& ctx, bool left) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kList, &type_err);
    if (type_err) return;
    if (o == nullptr || o->list().empty()) {
        ctx.reply_null();
        return;
    }
    Sds out;
    if (left) {
        out = std::move(o->list().front());
        o->list().pop_front();
    } else {
        out = std::move(o->list().back());
        o->list().pop_back();
    }
    if (o->list().empty()) ctx.db.remove(ctx.argv[1]);
    ctx.db.mark_dirty();
    ctx.dirty = true;
    ctx.reply_bulk(out.view());
}

void cmd_llen(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kList, &type_err);
    if (type_err) return;
    ctx.reply_integer(o == nullptr ? 0 : static_cast<long long>(o->list().size()));
}

void cmd_lrange(CommandContext& ctx) {
    const auto start = string2ll(ctx.argv[2]);
    const auto stop = string2ll(ctx.argv[3]);
    if (!start.has_value() || !stop.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kList, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply += resp::array_header(0);
        return;
    }
    const auto len = o->list().size();
    std::ptrdiff_t s = normalize_index(*start, len);
    std::ptrdiff_t e = normalize_index(*stop, len);
    if (s < 0) s = 0;
    if (e >= static_cast<std::ptrdiff_t>(len)) e = static_cast<std::ptrdiff_t>(len) - 1;
    if (s > e || s >= static_cast<std::ptrdiff_t>(len)) {
        ctx.reply += resp::array_header(0);
        return;
    }
    ctx.reply += resp::array_header(static_cast<std::size_t>(e - s + 1));
    for (std::ptrdiff_t i = s; i <= e; ++i) {
        ctx.reply_bulk(o->list()[static_cast<std::size_t>(i)].view());
    }
}

void cmd_lindex(CommandContext& ctx) {
    const auto idx = string2ll(ctx.argv[2]);
    if (!idx.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kList, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_null();
        return;
    }
    const std::ptrdiff_t i = normalize_index(*idx, o->list().size());
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(o->list().size())) {
        ctx.reply_null();
        return;
    }
    ctx.reply_bulk(o->list()[static_cast<std::size_t>(i)].view());
}

void cmd_lset(CommandContext& ctx) {
    const auto idx = string2ll(ctx.argv[2]);
    if (!idx.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kList, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_error("ERR no such key");
        return;
    }
    const std::ptrdiff_t i = normalize_index(*idx, o->list().size());
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(o->list().size())) {
        ctx.reply_error("ERR index out of range");
        return;
    }
    o->list()[static_cast<std::size_t>(i)] = Sds(ctx.argv[3]);
    ctx.db.mark_dirty();
    ctx.dirty = true;
    ctx.reply_ok();
}

void cmd_lrem(CommandContext& ctx) {
    const auto count = string2ll(ctx.argv[2]);
    if (!count.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kList, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_integer(0);
        return;
    }
    auto& lst = o->list();
    const Sds target(ctx.argv[3]);
    long long removed = 0;
    const long long limit = *count == 0 ? LLONG_MAX : (*count > 0 ? *count : -*count);
    if (*count >= 0) {
        for (auto it = lst.begin(); it != lst.end() && removed < limit;) {
            if (*it == target) {
                it = lst.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
    } else {
        for (auto it = lst.rbegin(); it != lst.rend() && removed < limit;) {
            if (*it == target) {
                it = std::make_reverse_iterator(lst.erase(std::next(it).base()));
                ++removed;
            } else {
                ++it;
            }
        }
    }
    if (lst.empty()) ctx.db.remove(ctx.argv[1]);
    if (removed > 0) {
        ctx.db.mark_dirty();
        ctx.dirty = true;
    }
    ctx.reply_integer(removed);
}

void cmd_ltrim(CommandContext& ctx) {
    const auto start = string2ll(ctx.argv[2]);
    const auto stop = string2ll(ctx.argv[3]);
    if (!start.has_value() || !stop.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kList, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_ok();
        return;
    }
    auto& lst = o->list();
    const auto len = lst.size();
    std::ptrdiff_t s = normalize_index(*start, len);
    std::ptrdiff_t e = normalize_index(*stop, len);
    if (s < 0) s = 0;
    if (e >= static_cast<std::ptrdiff_t>(len)) e = static_cast<std::ptrdiff_t>(len) - 1;
    if (s > e) {
        ctx.db.remove(ctx.argv[1]);
    } else {
        lst.erase(lst.begin() + e + 1, lst.end());
        lst.erase(lst.begin(), lst.begin() + s);
        if (lst.empty()) ctx.db.remove(ctx.argv[1]);
    }
    ctx.db.mark_dirty();
    ctx.dirty = true;
    ctx.reply_ok();
}

void cmd_rpoplpush(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr src = ctx.lookup_typed(ctx.argv[1], ObjType::kList, &type_err);
    if (type_err) return;
    if (src == nullptr || src->list().empty()) {
        ctx.reply_null();
        return;
    }
    ObjectPtr dst = ctx.lookup_typed(ctx.argv[2], ObjType::kList, &type_err);
    if (type_err) return;
    Sds moved = std::move(src->list().back());
    src->list().pop_back();
    if (dst == nullptr) {
        dst = Object::make_list();
        ctx.db.set_keep_ttl(ctx.argv[2], dst);
    }
    dst->list().push_front(moved);
    if (src->list().empty() && ctx.argv[1] != ctx.argv[2]) {
        ctx.db.remove(ctx.argv[1]);
    }
    ctx.db.mark_dirty();
    ctx.dirty = true;
    ctx.reply_bulk(moved.view());
}

} // namespace

void register_list_commands(CommandTable& t) {
    t.add({"LPUSH", -3, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_push(ctx, true, false); }});
    t.add({"RPUSH", -3, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_push(ctx, false, false); }});
    t.add({"LPUSHX", -3, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_push(ctx, true, true); }});
    t.add({"RPUSHX", -3, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_push(ctx, false, true); }});
    t.add({"LPOP", 2, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_pop(ctx, true); }});
    t.add({"RPOP", 2, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_pop(ctx, false); }});
    t.add({"LLEN", 2, kCmdReadOnly | kCmdFast, cmd_llen});
    t.add({"LRANGE", 4, kCmdReadOnly, cmd_lrange});
    t.add({"LINDEX", 3, kCmdReadOnly, cmd_lindex});
    t.add({"LSET", 4, kCmdWrite, cmd_lset});
    t.add({"LREM", 4, kCmdWrite, cmd_lrem});
    t.add({"LTRIM", 4, kCmdWrite, cmd_ltrim});
    t.add({"RPOPLPUSH", 3, kCmdWrite, cmd_rpoplpush});
}

} // namespace skv::kv
