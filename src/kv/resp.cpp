#include "kv/resp.hpp"

#include "kv/sds.hpp"

namespace skv::kv::resp {

namespace {
constexpr std::string_view kCrlf = "\r\n";
}

std::string simple(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 3);
    out += '+';
    out += s;
    out += kCrlf;
    return out;
}

std::string error(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 3);
    out += '-';
    out += s;
    out += kCrlf;
    return out;
}

std::string integer(long long v) {
    std::string out = ":";
    out += ll2string(v);
    out += kCrlf;
    return out;
}

std::string bulk(std::string_view s) {
    std::string out = "$";
    out += ll2string(static_cast<long long>(s.size()));
    out += kCrlf;
    out += s;
    out += kCrlf;
    return out;
}

std::string null_bulk() { return "$-1\r\n"; }
std::string null_array() { return "*-1\r\n"; }

std::string array_header(std::size_t n) {
    std::string out = "*";
    out += ll2string(static_cast<long long>(n));
    out += kCrlf;
    return out;
}

std::string command(const std::vector<std::string>& argv) {
    std::string out = array_header(argv.size());
    for (const auto& a : argv) out += bulk(a);
    return out;
}

std::string Value::to_debug_string() const {
    switch (kind) {
        case Kind::kSimple: return "+" + str;
        case Kind::kError: return "-" + str;
        case Kind::kInteger: return ":" + ll2string(num);
        case Kind::kBulk: return "\"" + str + "\"";
        case Kind::kNull: return "(nil)";
        case Kind::kArray: {
            std::string out = "[";
            for (std::size_t i = 0; i < elems.size(); ++i) {
                if (i) out += ", ";
                out += elems[i].to_debug_string();
            }
            return out + "]";
        }
    }
    return "?";
}

// --- RequestParser -------------------------------------------------------

std::optional<std::string_view> RequestParser::take_line(
    std::size_t from, std::size_t* end_pos) const {
    const std::size_t nl = buf_.find('\n', from);
    if (nl == std::string::npos) return std::nullopt;
    std::size_t end = nl;
    if (end > from && buf_[end - 1] == '\r') --end;
    *end_pos = nl + 1;
    return std::string_view(buf_).substr(from, end - from);
}

void RequestParser::compact() {
    if (pos_ == 0) return;
    // Avoid quadratic behaviour: only shift once most of the buffer is
    // consumed.
    if (pos_ >= buf_.size() || pos_ > 4096) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
}

void RequestParser::reset() {
    buf_.clear();
    pos_ = 0;
}

Status RequestParser::next(std::vector<std::string>* argv, std::string* errmsg) {
    // Skip blank lines between commands (Redis tolerates them inline).
    while (pos_ + 1 < buf_.size() && buf_[pos_] == '\r' && buf_[pos_ + 1] == '\n') {
        pos_ += 2;
    }
    if (pos_ >= buf_.size()) {
        compact();
        return Status::kNeedMore;
    }
    const Status st = buf_[pos_] == '*' ? parse_multibulk(argv, errmsg)
                                        : parse_inline(argv, errmsg);
    compact();
    return st;
}

Status RequestParser::parse_inline(std::vector<std::string>* argv,
                                   std::string* errmsg) {
    std::size_t after = 0;
    const auto line = take_line(pos_, &after);
    if (!line.has_value()) return Status::kNeedMore;
    auto split = Sds::split_args(*line);
    pos_ = after;
    if (!split.has_value()) {
        if (errmsg) *errmsg = "Protocol error: unbalanced quotes in request";
        return Status::kError;
    }
    if (split->empty()) return next(argv, errmsg); // empty line: keep going
    argv->clear();
    argv->reserve(split->size());
    for (auto& s : *split) argv->push_back(s.str());
    return Status::kOk;
}

Status RequestParser::parse_multibulk(std::vector<std::string>* argv,
                                      std::string* errmsg) {
    std::size_t p = pos_;
    std::size_t after = 0;
    const auto header = take_line(p, &after);
    if (!header.has_value()) return Status::kNeedMore;
    const auto count = string2ll(header->substr(1));
    if (!count.has_value() || *count > kMaxMultiBulk) {
        if (errmsg) *errmsg = "Protocol error: invalid multibulk length";
        return Status::kError;
    }
    p = after;
    if (*count <= 0) { // "*0\r\n" or "*-1\r\n": no command
        pos_ = p;
        return next(argv, errmsg);
    }
    std::vector<std::string> out;
    out.reserve(static_cast<std::size_t>(*count));
    for (long long i = 0; i < *count; ++i) {
        const auto lenline = take_line(p, &after);
        if (!lenline.has_value()) return Status::kNeedMore;
        if (lenline->empty() || (*lenline)[0] != '$') {
            if (errmsg) {
                *errmsg = "Protocol error: expected '$', got '";
                *errmsg += lenline->empty() ? ' ' : (*lenline)[0];
                *errmsg += '\'';
            }
            return Status::kError;
        }
        const auto len = string2ll(lenline->substr(1));
        if (!len.has_value() || *len < 0 || *len > kMaxBulk) {
            if (errmsg) *errmsg = "Protocol error: invalid bulk length";
            return Status::kError;
        }
        p = after;
        if (buf_.size() - p < static_cast<std::size_t>(*len) + 2) {
            return Status::kNeedMore;
        }
        out.emplace_back(buf_, p, static_cast<std::size_t>(*len));
        p += static_cast<std::size_t>(*len);
        if (buf_[p] != '\r' || buf_[p + 1] != '\n') {
            if (errmsg) *errmsg = "Protocol error: bulk not CRLF-terminated";
            return Status::kError;
        }
        p += 2;
    }
    pos_ = p;
    *argv = std::move(out);
    return Status::kOk;
}

// --- ReplyParser ------------------------------------------------------------

std::optional<std::string_view> ReplyParser::take_line(std::size_t from,
                                                       std::size_t* end_pos) const {
    const std::size_t nl = buf_.find('\n', from);
    if (nl == std::string::npos) return std::nullopt;
    std::size_t end = nl;
    if (end > from && buf_[end - 1] == '\r') --end;
    *end_pos = nl + 1;
    return std::string_view(buf_).substr(from, end - from);
}

void ReplyParser::compact() {
    if (pos_ >= buf_.size() || pos_ > 4096) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
}

void ReplyParser::reset() {
    buf_.clear();
    pos_ = 0;
}

Status ReplyParser::next(Value* out, std::string* errmsg) {
    std::size_t p = pos_;
    const Status st = parse_value(&p, out, errmsg, 0);
    if (st == Status::kOk) pos_ = p;
    compact();
    return st;
}

Status ReplyParser::parse_value(std::size_t* p, Value* out, std::string* errmsg,
                                int depth) {
    if (depth > 16) {
        if (errmsg) *errmsg = "Protocol error: nesting too deep";
        return Status::kError;
    }
    if (*p >= buf_.size()) return Status::kNeedMore;
    std::size_t after = 0;
    const auto line = take_line(*p, &after);
    if (!line.has_value()) return Status::kNeedMore;
    if (line->empty()) {
        if (errmsg) *errmsg = "Protocol error: empty reply line";
        return Status::kError;
    }
    const char tag = (*line)[0];
    const std::string_view body = line->substr(1);
    switch (tag) {
        case '+':
            out->kind = Value::Kind::kSimple;
            out->str = std::string(body);
            *p = after;
            return Status::kOk;
        case '-':
            out->kind = Value::Kind::kError;
            out->str = std::string(body);
            *p = after;
            return Status::kOk;
        case ':': {
            const auto v = string2ll(body);
            if (!v.has_value()) {
                if (errmsg) *errmsg = "Protocol error: bad integer";
                return Status::kError;
            }
            out->kind = Value::Kind::kInteger;
            out->num = *v;
            *p = after;
            return Status::kOk;
        }
        case '$': {
            const auto len = string2ll(body);
            if (!len.has_value() || *len < -1) {
                if (errmsg) *errmsg = "Protocol error: bad bulk length";
                return Status::kError;
            }
            if (*len == -1) {
                out->kind = Value::Kind::kNull;
                *p = after;
                return Status::kOk;
            }
            if (buf_.size() - after < static_cast<std::size_t>(*len) + 2) {
                return Status::kNeedMore;
            }
            out->kind = Value::Kind::kBulk;
            out->str.assign(buf_, after, static_cast<std::size_t>(*len));
            *p = after + static_cast<std::size_t>(*len) + 2;
            return Status::kOk;
        }
        case '*': {
            const auto n = string2ll(body);
            if (!n.has_value() || *n < -1) {
                if (errmsg) *errmsg = "Protocol error: bad array length";
                return Status::kError;
            }
            if (*n == -1) {
                out->kind = Value::Kind::kNull;
                *p = after;
                return Status::kOk;
            }
            out->kind = Value::Kind::kArray;
            out->elems.clear();
            out->elems.reserve(static_cast<std::size_t>(*n));
            std::size_t q = after;
            for (long long i = 0; i < *n; ++i) {
                Value v;
                const Status st = parse_value(&q, &v, errmsg, depth + 1);
                if (st != Status::kOk) return st;
                out->elems.push_back(std::move(v));
            }
            *p = q;
            return Status::kOk;
        }
        default:
            if (errmsg) *errmsg = "Protocol error: unknown reply type";
            return Status::kError;
    }
}

} // namespace skv::kv::resp
