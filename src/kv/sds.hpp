#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace skv::kv {

/// Simple Dynamic String, after Redis's sds: a length-prefixed,
/// binary-safe byte string with amortized O(1) append via capacity
/// preallocation (double up to 1 MB, then +1 MB per growth), plus the
/// small algorithmic helpers Redis layers on top (trim, range, case
/// folding, integer conversion, argument splitting).
///
/// std::string would be functionally equivalent; Sds exists because the
/// paper inherits "the implementation of data structures such as dynamic
/// strings" from Redis, and because the explicit growth policy is what the
/// engine's memory accounting measures.
class Sds {
public:
    static constexpr std::size_t kMaxPrealloc = 1024 * 1024;

    Sds() = default;
    explicit Sds(std::string_view s) { append(s); }
    Sds(const char* s, std::size_t n) { append(std::string_view(s, n)); }

    [[nodiscard]] std::size_t size() const { return len_; }
    [[nodiscard]] bool empty() const { return len_ == 0; }
    [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
    [[nodiscard]] std::size_t avail() const { return buf_.size() - len_; }

    [[nodiscard]] const char* data() const { return buf_.data(); }
    [[nodiscard]] std::string_view view() const { return {buf_.data(), len_}; }
    [[nodiscard]] std::string str() const { return std::string(view()); }

    char operator[](std::size_t i) const { return buf_[i]; }
    char& operator[](std::size_t i) { return buf_[i]; }

    void append(std::string_view s);
    void append(char c) { append(std::string_view(&c, 1)); }
    void assign(std::string_view s) { clear(); append(s); }
    void clear() { len_ = 0; }

    /// Grow to at least `n` usable bytes beyond the current length.
    void make_room(std::size_t n);

    /// Keep only the byte range [start, end] (negative indexes count from
    /// the end, as in Redis GETRANGE/SETRANGE semantics).
    void range(std::ptrdiff_t start, std::ptrdiff_t end);

    /// Remove the characters in `cset` from both ends.
    void trim(std::string_view cset);

    void tolower();
    void toupper();

    [[nodiscard]] int compare(const Sds& o) const;
    bool operator==(const Sds& o) const { return view() == o.view(); }
    bool operator==(std::string_view s) const { return view() == s; }
    auto operator<=>(const Sds& o) const { return view() <=> o.view(); }

    /// Case-insensitive equality against an ASCII literal (command lookup).
    [[nodiscard]] bool iequals(std::string_view s) const;

    /// Split a whitespace-separated line honouring "double" and 'single'
    /// quotes, as Redis's sdssplitargs does for inline commands and config
    /// lines. Returns std::nullopt on unbalanced quotes.
    static std::optional<std::vector<Sds>> split_args(std::string_view line);

private:
    std::vector<char> buf_;
    std::size_t len_ = 0;
};

/// Fast signed-integer formatting (Redis's ll2string).
std::string ll2string(long long v);

/// Strict string -> long long conversion (Redis's string2ll): rejects
/// leading zeros (except "0"), whitespace and trailing junk. Returns
/// nullopt on failure.
std::optional<long long> string2ll(std::string_view s);

/// Strict string -> double conversion: accepts what Redis's getDoubleFromObject
/// accepts (finite decimal / scientific, "inf", "-inf"), rejects junk.
std::optional<double> string2d(std::string_view s);

} // namespace skv::kv
