#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "kv/db.hpp"

namespace skv::kv::rdb {

/// CRC-64 (Jones polynomial, as Redis's crc64) over `data`, starting from
/// `crc` (0 for a fresh checksum).
std::uint64_t crc64(std::uint64_t crc, std::string_view data);

enum class LoadStatus : std::uint8_t {
    kOk,
    kBadMagic,
    kTruncated,
    kCorrupt,
    kBadChecksum,
};

const char* to_string(LoadStatus s);

/// Serialize the whole keyspace (all five types, expires included) into an
/// RDB-style snapshot: magic + version, per-key records with
/// length-encoded fields, an EOF opcode and a trailing CRC-64. This is the
/// "data file containing all key-value pairs" shipped during the initial
/// synchronization phase.
std::string save(const Database& db);

/// Replace `db`'s contents with the snapshot. On any non-kOk status the
/// database is left cleared (a half-loaded replica must not serve reads).
LoadStatus load(std::string_view bytes, Database& db);

} // namespace skv::kv::rdb
