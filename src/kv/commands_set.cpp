#include <algorithm>

#include "kv/command.hpp"

namespace skv::kv {

namespace {

void cmd_sadd(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        o = Object::make_set();
        ctx.db.set_keep_ttl(ctx.argv[1], o);
    }
    long long added = 0;
    for (std::size_t i = 2; i < ctx.argv.size(); ++i) {
        if (o->set_add(ctx.argv[i])) ++added;
    }
    if (added > 0) {
        ctx.db.mark_dirty();
        ctx.dirty = true;
    } else if (o->set_size() == 0) {
        ctx.db.remove(ctx.argv[1]);
    }
    ctx.reply_integer(added);
}

void cmd_srem(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_integer(0);
        return;
    }
    long long removed = 0;
    for (std::size_t i = 2; i < ctx.argv.size(); ++i) {
        if (o->set_remove(ctx.argv[i])) ++removed;
    }
    if (o->set_size() == 0) ctx.db.remove(ctx.argv[1]);
    if (removed > 0) {
        ctx.db.mark_dirty();
        ctx.dirty = true;
    }
    ctx.reply_integer(removed);
}

void cmd_sismember(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kSet, &type_err);
    if (type_err) return;
    ctx.reply_integer(o != nullptr && o->set_contains(ctx.argv[2]) ? 1 : 0);
}

void cmd_scard(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kSet, &type_err);
    if (type_err) return;
    ctx.reply_integer(o == nullptr ? 0 : static_cast<long long>(o->set_size()));
}

void cmd_smembers(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kSet, &type_err);
    if (type_err) return;
    std::vector<std::string> members =
        o == nullptr ? std::vector<std::string>{} : o->set_members();
    std::sort(members.begin(), members.end()); // deterministic output
    ctx.reply += resp::array_header(members.size());
    for (const auto& m : members) ctx.reply_bulk(m);
}

void cmd_spop(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_null();
        return;
    }
    const auto popped = o->set_pop(ctx.rng);
    if (!popped.has_value()) {
        ctx.reply_null();
        return;
    }
    if (o->set_size() == 0) ctx.db.remove(ctx.argv[1]);
    ctx.db.mark_dirty();
    ctx.dirty = true;
    // Non-deterministic: slaves must remove the member the master chose.
    ctx.repl_override = std::vector<std::string>{"SREM", ctx.argv[1], *popped};
    ctx.reply_bulk(*popped);
}

void cmd_srandmember(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kSet, &type_err);
    if (type_err) return;
    if (o == nullptr || o->set_size() == 0) {
        ctx.reply_null();
        return;
    }
    const auto members = o->set_members();
    ctx.reply_bulk(members[ctx.rng.next_below(members.size())]);
}

void cmd_smove(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr src = ctx.lookup_typed(ctx.argv[1], ObjType::kSet, &type_err);
    if (type_err) return;
    ObjectPtr dst = ctx.lookup_typed(ctx.argv[2], ObjType::kSet, &type_err);
    if (type_err) return;
    if (src == nullptr || !src->set_contains(ctx.argv[3])) {
        ctx.reply_integer(0);
        return;
    }
    if (ctx.argv[1] == ctx.argv[2]) {
        // Moving within one set: a successful no-op.
        ctx.reply_integer(1);
        return;
    }
    src->set_remove(ctx.argv[3]);
    if (src->set_size() == 0) ctx.db.remove(ctx.argv[1]);
    if (dst == nullptr) {
        dst = Object::make_set();
        ctx.db.set_keep_ttl(ctx.argv[2], dst);
    }
    dst->set_add(ctx.argv[3]);
    ctx.db.mark_dirty();
    ctx.dirty = true;
    ctx.reply_integer(1);
}

/// SUNION/SINTER/SDIFF share the collection step.
enum class SetOp { kUnion, kInter, kDiff };

void generic_setop(CommandContext& ctx, SetOp op) {
    std::vector<ObjectPtr> sets;
    bool type_err = false;
    for (std::size_t i = 1; i < ctx.argv.size(); ++i) {
        ObjectPtr o = ctx.lookup_typed(ctx.argv[i], ObjType::kSet, &type_err);
        if (type_err) return;
        sets.push_back(std::move(o));
    }
    std::vector<std::string> result;
    switch (op) {
        case SetOp::kUnion: {
            for (const auto& s : sets) {
                if (s == nullptr) continue;
                for (auto& m : s->set_members()) result.push_back(std::move(m));
            }
            std::sort(result.begin(), result.end());
            result.erase(std::unique(result.begin(), result.end()), result.end());
            break;
        }
        case SetOp::kInter: {
            if (sets.empty() || sets[0] == nullptr) break;
            for (auto& m : sets[0]->set_members()) {
                bool in_all = true;
                for (std::size_t i = 1; i < sets.size(); ++i) {
                    if (sets[i] == nullptr || !sets[i]->set_contains(m)) {
                        in_all = false;
                        break;
                    }
                }
                if (in_all) result.push_back(std::move(m));
            }
            std::sort(result.begin(), result.end());
            break;
        }
        case SetOp::kDiff: {
            if (sets.empty() || sets[0] == nullptr) break;
            for (auto& m : sets[0]->set_members()) {
                bool elsewhere = false;
                for (std::size_t i = 1; i < sets.size(); ++i) {
                    if (sets[i] != nullptr && sets[i]->set_contains(m)) {
                        elsewhere = true;
                        break;
                    }
                }
                if (!elsewhere) result.push_back(std::move(m));
            }
            std::sort(result.begin(), result.end());
            break;
        }
    }
    ctx.reply += resp::array_header(result.size());
    for (const auto& m : result) ctx.reply_bulk(m);
}

} // namespace

void register_set_commands(CommandTable& t) {
    t.add({"SADD", -3, kCmdWrite | kCmdFast, cmd_sadd});
    t.add({"SREM", -3, kCmdWrite | kCmdFast, cmd_srem});
    t.add({"SISMEMBER", 3, kCmdReadOnly | kCmdFast, cmd_sismember});
    t.add({"SCARD", 2, kCmdReadOnly | kCmdFast, cmd_scard});
    t.add({"SMEMBERS", 2, kCmdReadOnly, cmd_smembers});
    t.add({"SPOP", 2, kCmdWrite | kCmdFast, cmd_spop});
    t.add({"SRANDMEMBER", 2, kCmdReadOnly, cmd_srandmember});
    t.add({"SMOVE", 4, kCmdWrite | kCmdFast, cmd_smove});
    t.add({"SUNION", -2, kCmdReadOnly,
           [](CommandContext& ctx) { generic_setop(ctx, SetOp::kUnion); }});
    t.add({"SINTER", -2, kCmdReadOnly,
           [](CommandContext& ctx) { generic_setop(ctx, SetOp::kInter); }});
    t.add({"SDIFF", -2, kCmdReadOnly,
           [](CommandContext& ctx) { generic_setop(ctx, SetOp::kDiff); }});
}

} // namespace skv::kv
