#include <climits>
#include <cmath>
#include <cstdio>

#include "kv/command.hpp"
#include "kv/sds.hpp"

namespace skv::kv {

namespace {

/// Shared SET machinery: options parsed per the real SET grammar.
struct SetOptions {
    bool nx = false;
    bool xx = false;
    bool keep_ttl = false;
    std::optional<std::int64_t> expire_at_ms;
    bool bad = false;
};

SetOptions parse_set_options(CommandContext& ctx, std::size_t first) {
    SetOptions o;
    const auto& argv = ctx.argv;
    for (std::size_t i = first; i < argv.size(); ++i) {
        const std::string& a = argv[i];
        auto iequals = [&](std::string_view lit) {
            return Sds(a).iequals(lit);
        };
        if (iequals("NX")) {
            o.nx = true;
        } else if (iequals("XX")) {
            o.xx = true;
        } else if (iequals("KEEPTTL")) {
            o.keep_ttl = true;
        } else if ((iequals("EX") || iequals("PX")) && i + 1 < argv.size()) {
            const auto v = string2ll(argv[i + 1]);
            if (!v.has_value() || *v <= 0) {
                ctx.reply_error("ERR invalid expire time in 'set' command");
                o.bad = true;
                return o;
            }
            const std::int64_t ms = iequals("EX") ? *v * 1000 : *v;
            o.expire_at_ms = ctx.db.now_ms() + ms;
            ++i;
        } else {
            ctx.reply_error("ERR syntax error");
            o.bad = true;
            return o;
        }
    }
    if (o.nx && o.xx) {
        ctx.reply_error("ERR syntax error");
        o.bad = true;
    }
    return o;
}

void generic_set(CommandContext& ctx, const std::string& key,
                 const std::string& val, const SetOptions& o) {
    const bool exists = ctx.db.exists(key);
    if ((o.nx && exists) || (o.xx && !exists)) {
        ctx.reply_null();
        return;
    }
    if (o.keep_ttl) {
        ctx.db.set_keep_ttl(key, Object::make_string(val));
    } else {
        ctx.db.set(key, Object::make_string(val));
    }
    if (o.expire_at_ms.has_value()) {
        ctx.db.set_expire(key, *o.expire_at_ms);
        // Replicate with an absolute deadline so slaves agree regardless of
        // propagation delay (the SETPXAT rewrite plays the role of Redis's
        // SET ... PXAT translation).
        ctx.repl_override = std::vector<std::string>{
            "SETPXAT", key, val, ll2string(*o.expire_at_ms)};
    }
    ctx.dirty = true;
    ctx.reply_ok();
}

void cmd_set(CommandContext& ctx) {
    const SetOptions o = parse_set_options(ctx, 3);
    if (o.bad) return;
    generic_set(ctx, ctx.argv[1], ctx.argv[2], o);
}

/// Internal, replication-only: SET with an absolute PEXPIREAT bundled, the
/// deterministic rewrite of SET ... EX/PX.
void cmd_setpxat(CommandContext& ctx) {
    const auto at = string2ll(ctx.argv[3]);
    if (!at.has_value()) {
        ctx.reply_error("ERR invalid expire time in 'setpxat' command");
        return;
    }
    ctx.db.set(ctx.argv[1], Object::make_string(ctx.argv[2]));
    ctx.db.set_expire(ctx.argv[1], *at);
    ctx.dirty = true;
    ctx.reply_ok();
}

void cmd_setnx(CommandContext& ctx) {
    if (ctx.db.exists(ctx.argv[1])) {
        ctx.reply_integer(0);
        return;
    }
    ctx.db.set(ctx.argv[1], Object::make_string(ctx.argv[2]));
    ctx.dirty = true;
    ctx.reply_integer(1);
}

void cmd_setex_ms(CommandContext& ctx, std::int64_t unit_ms) {
    const auto secs = string2ll(ctx.argv[2]);
    if (!secs.has_value() || *secs <= 0) {
        ctx.reply_error("ERR invalid expire time in 'setex' command");
        return;
    }
    const std::int64_t at = ctx.db.now_ms() + *secs * unit_ms;
    ctx.db.set(ctx.argv[1], Object::make_string(ctx.argv[3]));
    ctx.db.set_expire(ctx.argv[1], at);
    ctx.repl_override = std::vector<std::string>{"SETPXAT", ctx.argv[1],
                                                 ctx.argv[3], ll2string(at)};
    ctx.dirty = true;
    ctx.reply_ok();
}

void cmd_get(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_null();
        return;
    }
    ctx.reply_bulk(o->string_value());
}

void cmd_getset(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_null();
    } else {
        ctx.reply_bulk(o->string_value());
    }
    ctx.db.set(ctx.argv[1], Object::make_string(ctx.argv[2]));
    ctx.dirty = true;
}

void cmd_append(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    std::size_t newlen;
    if (o == nullptr) {
        ctx.db.set(ctx.argv[1], Object::make_string(ctx.argv[2]));
        newlen = ctx.argv[2].size();
    } else {
        newlen = o->string_append(ctx.argv[2]);
        ctx.db.mark_dirty();
    }
    ctx.dirty = true;
    ctx.reply_integer(static_cast<long long>(newlen));
}

void cmd_strlen(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    ctx.reply_integer(o == nullptr ? 0 : static_cast<long long>(o->string_len()));
}

void generic_incr(CommandContext& ctx, long long delta) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    long long cur = 0;
    if (o != nullptr) {
        const auto v = o->int_value();
        if (!v.has_value()) {
            ctx.reply_error("ERR value is not an integer or out of range");
            return;
        }
        cur = *v;
    }
    if ((delta > 0 && cur > LLONG_MAX - delta) ||
        (delta < 0 && cur < LLONG_MIN - delta)) {
        ctx.reply_error("ERR increment or decrement would overflow");
        return;
    }
    const long long next = cur + delta;
    if (o != nullptr) {
        o->string_set_ll(next);
        ctx.db.mark_dirty();
    } else {
        ctx.db.set_keep_ttl(ctx.argv[1], Object::make_string_ll(next));
    }
    ctx.dirty = true;
    ctx.reply_integer(next);
}

void cmd_incrby(CommandContext& ctx) {
    const auto d = string2ll(ctx.argv[2]);
    if (!d.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    generic_incr(ctx, *d);
}

void cmd_decrby(CommandContext& ctx) {
    const auto d = string2ll(ctx.argv[2]);
    if (!d.has_value() || *d == LLONG_MIN) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    generic_incr(ctx, -*d);
}

void cmd_incrbyfloat(CommandContext& ctx) {
    const auto d = string2d(ctx.argv[2]);
    if (!d.has_value()) {
        ctx.reply_error("ERR value is not a valid float");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    double cur = 0;
    if (o != nullptr) {
        const auto v = string2d(o->string_value());
        if (!v.has_value()) {
            ctx.reply_error("ERR value is not a valid float");
            return;
        }
        cur = *v;
    }
    const double next = cur + *d;
    if (std::isnan(next) || std::isinf(next)) {
        ctx.reply_error("ERR increment would produce NaN or Infinity");
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", next);
    ctx.db.set_keep_ttl(ctx.argv[1], Object::make_string(buf));
    ctx.dirty = true;
    // Result depends on float formatting: replicate the rendered value.
    ctx.repl_override = std::vector<std::string>{"SET", ctx.argv[1], buf, "KEEPTTL"};
    ctx.reply_bulk(buf);
}

void cmd_mset(CommandContext& ctx) {
    if (ctx.argv.size() % 2 != 1) {
        ctx.reply_error("ERR wrong number of arguments for 'mset' command");
        return;
    }
    for (std::size_t i = 1; i + 1 < ctx.argv.size(); i += 2) {
        ctx.db.set(ctx.argv[i], Object::make_string(ctx.argv[i + 1]));
    }
    ctx.dirty = true;
    ctx.reply_ok();
}

void cmd_msetnx(CommandContext& ctx) {
    if (ctx.argv.size() % 2 != 1) {
        ctx.reply_error("ERR wrong number of arguments for 'msetnx' command");
        return;
    }
    for (std::size_t i = 1; i + 1 < ctx.argv.size(); i += 2) {
        if (ctx.db.exists(ctx.argv[i])) {
            ctx.reply_integer(0);
            return;
        }
    }
    for (std::size_t i = 1; i + 1 < ctx.argv.size(); i += 2) {
        ctx.db.set(ctx.argv[i], Object::make_string(ctx.argv[i + 1]));
    }
    ctx.dirty = true;
    ctx.reply_integer(1);
}

void cmd_mget(CommandContext& ctx) {
    ctx.reply += resp::array_header(ctx.argv.size() - 1);
    for (std::size_t i = 1; i < ctx.argv.size(); ++i) {
        ObjectPtr o = ctx.db.lookup(ctx.argv[i]);
        if (o == nullptr || o->type() != ObjType::kString) {
            ctx.reply_null();
        } else {
            ctx.reply_bulk(o->string_value());
        }
    }
}

void cmd_getrange(CommandContext& ctx) {
    const auto start = string2ll(ctx.argv[2]);
    const auto end = string2ll(ctx.argv[3]);
    if (!start.has_value() || !end.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_bulk("");
        return;
    }
    Sds s(o->string_value());
    s.range(static_cast<std::ptrdiff_t>(*start), static_cast<std::ptrdiff_t>(*end));
    ctx.reply_bulk(s.view());
}

void cmd_setrange(CommandContext& ctx) {
    const auto offset = string2ll(ctx.argv[2]);
    if (!offset.has_value() || *offset < 0) {
        ctx.reply_error("ERR offset is out of range");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    const std::string& patch = ctx.argv[3];
    std::string value = o == nullptr ? std::string() : o->string_value();
    if (patch.empty()) {
        ctx.reply_integer(static_cast<long long>(value.size()));
        return;
    }
    const std::size_t need = static_cast<std::size_t>(*offset) + patch.size();
    if (value.size() < need) value.resize(need, '\0');
    value.replace(static_cast<std::size_t>(*offset), patch.size(), patch);
    ctx.db.set_keep_ttl(ctx.argv[1], Object::make_string(value));
    ctx.dirty = true;
    ctx.reply_integer(static_cast<long long>(value.size()));
}

} // namespace

void register_string_commands(CommandTable& t) {
    t.add({"SET", -3, kCmdWrite, cmd_set});
    t.add({"SETPXAT", 4, kCmdWrite, cmd_setpxat});
    t.add({"SETNX", 3, kCmdWrite | kCmdFast, cmd_setnx});
    t.add({"SETEX", 4, kCmdWrite,
           [](CommandContext& ctx) { cmd_setex_ms(ctx, 1000); }});
    t.add({"PSETEX", 4, kCmdWrite,
           [](CommandContext& ctx) { cmd_setex_ms(ctx, 1); }});
    t.add({"GET", 2, kCmdReadOnly | kCmdFast, cmd_get});
    t.add({"GETSET", 3, kCmdWrite | kCmdFast, cmd_getset});
    t.add({"APPEND", 3, kCmdWrite | kCmdFast, cmd_append});
    t.add({"STRLEN", 2, kCmdReadOnly | kCmdFast, cmd_strlen});
    t.add({"INCR", 2, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_incr(ctx, 1); }});
    t.add({"DECR", 2, kCmdWrite | kCmdFast,
           [](CommandContext& ctx) { generic_incr(ctx, -1); }});
    t.add({"INCRBY", 3, kCmdWrite | kCmdFast, cmd_incrby});
    t.add({"DECRBY", 3, kCmdWrite | kCmdFast, cmd_decrby});
    t.add({"INCRBYFLOAT", 3, kCmdWrite | kCmdFast, cmd_incrbyfloat});
    t.add({"MSET", -3, kCmdWrite, cmd_mset});
    t.add({"MSETNX", -3, kCmdWrite, cmd_msetnx});
    t.add({"MGET", -2, kCmdReadOnly | kCmdFast, cmd_mget});
    t.add({"GETRANGE", 4, kCmdReadOnly, cmd_getrange});
    t.add({"SETRANGE", 4, kCmdWrite, cmd_setrange});
}

} // namespace skv::kv
