#include "kv/skiplist.hpp"
#include "sim/check.hpp"


namespace skv::kv {

namespace {

/// Ordering on (score, member) pairs.
bool precedes(double score_a, const Sds& member_a, double score_b,
              const Sds& member_b) {
    if (score_a != score_b) return score_a < score_b;
    return member_a.compare(member_b) < 0;
}

} // namespace

SkipList::SkipList(std::uint64_t seed) : rng_(seed) {
    header_ = new Node;
    header_->level.resize(kMaxLevel);
}

SkipList::~SkipList() {
    Node* n = header_;
    while (n != nullptr) {
        Node* next = n->level[0].forward;
        delete n;
        n = next;
    }
}

int SkipList::random_level() {
    int lvl = 1;
    while (lvl < kMaxLevel && rng_.next_double() < kP) ++lvl;
    return lvl;
}

void SkipList::insert(double score, const Sds& member) {
    Node* update[kMaxLevel];
    std::size_t rank_at[kMaxLevel];

    Node* x = header_;
    for (int i = level_ - 1; i >= 0; --i) {
        rank_at[i] = (i == level_ - 1) ? 0 : rank_at[i + 1];
        while (x->level[static_cast<std::size_t>(i)].forward != nullptr &&
               precedes(x->level[static_cast<std::size_t>(i)].forward->score,
                        x->level[static_cast<std::size_t>(i)].forward->member,
                        score, member)) {
            rank_at[i] += x->level[static_cast<std::size_t>(i)].span;
            x = x->level[static_cast<std::size_t>(i)].forward;
        }
        update[i] = x;
    }

    const int lvl = random_level();
    if (lvl > level_) {
        for (int i = level_; i < lvl; ++i) {
            rank_at[i] = 0;
            update[i] = header_;
            update[i]->level[static_cast<std::size_t>(i)].span = length_;
        }
        level_ = lvl;
    }

    Node* n = new Node;
    n->member = member;
    n->score = score;
    n->level.resize(static_cast<std::size_t>(lvl));

    for (int i = 0; i < lvl; ++i) {
        auto& ul = update[i]->level[static_cast<std::size_t>(i)];
        n->level[static_cast<std::size_t>(i)].forward = ul.forward;
        ul.forward = n;
        n->level[static_cast<std::size_t>(i)].span =
            ul.span - (rank_at[0] - rank_at[i]);
        ul.span = (rank_at[0] - rank_at[i]) + 1;
    }
    for (int i = lvl; i < level_; ++i) {
        ++update[i]->level[static_cast<std::size_t>(i)].span;
    }

    n->backward = (update[0] == header_) ? nullptr : update[0];
    if (n->level[0].forward != nullptr) {
        n->level[0].forward->backward = n;
    } else {
        tail_ = n;
    }
    ++length_;
}

bool SkipList::erase(double score, const Sds& member) {
    Node* update[kMaxLevel];
    Node* x = header_;
    for (int i = level_ - 1; i >= 0; --i) {
        while (x->level[static_cast<std::size_t>(i)].forward != nullptr &&
               precedes(x->level[static_cast<std::size_t>(i)].forward->score,
                        x->level[static_cast<std::size_t>(i)].forward->member,
                        score, member)) {
            x = x->level[static_cast<std::size_t>(i)].forward;
        }
        update[i] = x;
    }
    x = x->level[0].forward;
    if (x == nullptr || x->score != score || !(x->member == member)) return false;

    for (int i = 0; i < level_; ++i) {
        auto& ul = update[i]->level[static_cast<std::size_t>(i)];
        if (ul.forward == x) {
            ul.span += x->level[static_cast<std::size_t>(i)].span - 1;
            ul.forward = x->level[static_cast<std::size_t>(i)].forward;
        } else {
            --ul.span;
        }
    }
    if (x->level[0].forward != nullptr) {
        x->level[0].forward->backward = x->backward;
    } else {
        tail_ = x->backward;
    }
    delete x;
    while (level_ > 1 &&
           header_->level[static_cast<std::size_t>(level_ - 1)].forward == nullptr) {
        --level_;
    }
    --length_;
    return true;
}

void SkipList::update_score(double cur_score, const Sds& member,
                            double new_score) {
    // Fast path: if the node stays between its neighbours, mutate in place.
    // Otherwise remove + reinsert (exactly zslUpdateScore).
    Node* x = header_;
    for (int i = level_ - 1; i >= 0; --i) {
        while (x->level[static_cast<std::size_t>(i)].forward != nullptr &&
               precedes(x->level[static_cast<std::size_t>(i)].forward->score,
                        x->level[static_cast<std::size_t>(i)].forward->member,
                        cur_score, member)) {
            x = x->level[static_cast<std::size_t>(i)].forward;
        }
    }
    x = x->level[0].forward;
    SKV_DCHECK(x != nullptr && x->score == cur_score && x->member == member);

    const bool fits_before =
        (x->backward == nullptr || x->backward->score < new_score ||
         (x->backward->score == new_score && x->backward->member.compare(member) < 0));
    const bool fits_after =
        (x->level[0].forward == nullptr || x->level[0].forward->score > new_score ||
         (x->level[0].forward->score == new_score &&
          x->level[0].forward->member.compare(member) > 0));
    if (fits_before && fits_after) {
        x->score = new_score;
        return;
    }
    const Sds saved = x->member;
    erase(cur_score, member);
    insert(new_score, saved);
}

std::size_t SkipList::rank(double score, const Sds& member) const {
    std::size_t r = 0;
    const Node* x = header_;
    for (int i = level_ - 1; i >= 0; --i) {
        while (x->level[static_cast<std::size_t>(i)].forward != nullptr &&
               !precedes(score, member,
                         x->level[static_cast<std::size_t>(i)].forward->score,
                         x->level[static_cast<std::size_t>(i)].forward->member)) {
            r += x->level[static_cast<std::size_t>(i)].span;
            x = x->level[static_cast<std::size_t>(i)].forward;
        }
    }
    if (x != header_ && x->member == member) return r;
    return 0;
}

const SkipList::Node* SkipList::at_rank(std::size_t r) const {
    if (r == 0 || r > length_) return nullptr;
    std::size_t traversed = 0;
    const Node* x = header_;
    for (int i = level_ - 1; i >= 0; --i) {
        while (x->level[static_cast<std::size_t>(i)].forward != nullptr &&
               traversed + x->level[static_cast<std::size_t>(i)].span <= r) {
            traversed += x->level[static_cast<std::size_t>(i)].span;
            x = x->level[static_cast<std::size_t>(i)].forward;
        }
        if (traversed == r) return x == header_ ? nullptr : x;
    }
    return nullptr;
}

const SkipList::Node* SkipList::first_in_range(double min,
                                               bool min_exclusive) const {
    const Node* x = header_;
    for (int i = level_ - 1; i >= 0; --i) {
        while (x->level[static_cast<std::size_t>(i)].forward != nullptr &&
               (min_exclusive
                    ? x->level[static_cast<std::size_t>(i)].forward->score <= min
                    : x->level[static_cast<std::size_t>(i)].forward->score < min)) {
            x = x->level[static_cast<std::size_t>(i)].forward;
        }
    }
    return x->level[0].forward;
}

bool SkipList::check_invariants(std::string* why) const {
    auto fail = [&](const char* msg) {
        if (why) *why = msg;
        return false;
    };
    // Level-0 ordering + backward links + length.
    std::size_t n = 0;
    const Node* prev = nullptr;
    for (const Node* x = header_->level[0].forward; x != nullptr;
         x = x->level[0].forward) {
        if (prev != nullptr &&
            !precedes(prev->score, prev->member, x->score, x->member)) {
            return fail("level-0 ordering violated");
        }
        if (x->backward != prev) return fail("backward link broken");
        prev = x;
        ++n;
    }
    if (n != length_) return fail("length mismatch");
    if (tail_ != prev) return fail("tail mismatch");
    // Span sums: at every level, spans along the chain must sum to length+?
    for (int i = 0; i < level_; ++i) {
        std::size_t sum = 0;
        for (const Node* x = header_; x != nullptr;
             x = x->level.size() > static_cast<std::size_t>(i)
                     ? x->level[static_cast<std::size_t>(i)].forward
                     : nullptr) {
            if (x->level.size() <= static_cast<std::size_t>(i)) break;
            if (x->level[static_cast<std::size_t>(i)].forward != nullptr) {
                sum += x->level[static_cast<std::size_t>(i)].span;
            }
        }
        if (sum > length_) return fail("span sum exceeds length");
    }
    return true;
}

} // namespace skv::kv
