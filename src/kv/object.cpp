#include "kv/object.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace skv::kv {

const char* to_string(ObjType t) {
    switch (t) {
        case ObjType::kString: return "string";
        case ObjType::kList: return "list";
        case ObjType::kSet: return "set";
        case ObjType::kHash: return "hash";
        case ObjType::kZSet: return "zset";
    }
    return "?";
}

const char* to_string(ObjEncoding e) {
    switch (e) {
        case ObjEncoding::kInt: return "int";
        case ObjEncoding::kRaw: return "raw";
        case ObjEncoding::kQuickList: return "quicklist";
        case ObjEncoding::kIntSet: return "intset";
        case ObjEncoding::kHashTable: return "hashtable";
        case ObjEncoding::kSkipList: return "skiplist";
    }
    return "?";
}

ObjectPtr Object::make_string(std::string_view v) {
    if (auto ll = string2ll(v)) {
        return make_string_ll(*ll);
    }
    auto o = ObjectPtr(new Object(ObjType::kString, ObjEncoding::kRaw));
    o->str_.assign(v);
    return o;
}

ObjectPtr Object::make_string_ll(long long v) {
    auto o = ObjectPtr(new Object(ObjType::kString, ObjEncoding::kInt));
    o->ival_ = v;
    return o;
}

ObjectPtr Object::make_list() {
    return ObjectPtr(new Object(ObjType::kList, ObjEncoding::kQuickList));
}

ObjectPtr Object::make_set() {
    return ObjectPtr(new Object(ObjType::kSet, ObjEncoding::kIntSet));
}

ObjectPtr Object::make_hash() {
    return ObjectPtr(new Object(ObjType::kHash, ObjEncoding::kHashTable));
}

ObjectPtr Object::make_zset() {
    auto o = ObjectPtr(new Object(ObjType::kZSet, ObjEncoding::kSkipList));
    o->zsl_ = std::make_unique<SkipList>();
    return o;
}

// --- string -------------------------------------------------------------

std::string Object::string_value() const {
    SKV_DCHECK(type_ == ObjType::kString);
    return encoding_ == ObjEncoding::kInt ? ll2string(ival_) : str_.str();
}

std::size_t Object::string_len() const {
    SKV_DCHECK(type_ == ObjType::kString);
    return encoding_ == ObjEncoding::kInt ? ll2string(ival_).size() : str_.size();
}

std::optional<long long> Object::int_value() const {
    if (type_ != ObjType::kString) return std::nullopt;
    if (encoding_ == ObjEncoding::kInt) return ival_;
    return string2ll(str_.view());
}

std::size_t Object::string_append(std::string_view tail) {
    SKV_DCHECK(type_ == ObjType::kString);
    if (encoding_ == ObjEncoding::kInt) {
        str_.assign(ll2string(ival_));
        encoding_ = ObjEncoding::kRaw;
    }
    str_.append(tail);
    return str_.size();
}

void Object::string_set(std::string_view v) {
    SKV_DCHECK(type_ == ObjType::kString);
    if (auto ll = string2ll(v)) {
        string_set_ll(*ll);
        return;
    }
    encoding_ = ObjEncoding::kRaw;
    str_.assign(v);
}

void Object::string_set_ll(long long v) {
    SKV_DCHECK(type_ == ObjType::kString);
    encoding_ = ObjEncoding::kInt;
    ival_ = v;
    str_.clear();
}

// --- set ------------------------------------------------------------------

void Object::set_upgrade_to_hashtable() {
    SKV_DCHECK(encoding_ == ObjEncoding::kIntSet);
    for (std::size_t i = 0; i < intset_.size(); ++i) {
        setdict_.insert(Sds(ll2string(intset_.at(i))), 0);
    }
    intset_ = IntSet();
    encoding_ = ObjEncoding::kHashTable;
}

bool Object::set_add(std::string_view member) {
    SKV_DCHECK(type_ == ObjType::kSet);
    if (encoding_ == ObjEncoding::kIntSet) {
        if (auto ll = string2ll(member)) {
            const bool added = intset_.insert(*ll);
            if (added && intset_.size() > kSetMaxIntsetEntries) {
                set_upgrade_to_hashtable();
            }
            return added;
        }
        set_upgrade_to_hashtable();
    }
    return setdict_.insert(Sds(member), 0);
}

bool Object::set_remove(std::string_view member) {
    SKV_DCHECK(type_ == ObjType::kSet);
    if (encoding_ == ObjEncoding::kIntSet) {
        if (auto ll = string2ll(member)) return intset_.erase(*ll);
        return false;
    }
    return setdict_.erase(Sds(member));
}

bool Object::set_contains(std::string_view member) const {
    SKV_DCHECK(type_ == ObjType::kSet);
    if (encoding_ == ObjEncoding::kIntSet) {
        if (auto ll = string2ll(member)) return intset_.contains(*ll);
        return false;
    }
    return setdict_.find(Sds(member)) != nullptr;
}

std::size_t Object::set_size() const {
    SKV_DCHECK(type_ == ObjType::kSet);
    return encoding_ == ObjEncoding::kIntSet ? intset_.size() : setdict_.size();
}

std::vector<std::string> Object::set_members() const {
    SKV_DCHECK(type_ == ObjType::kSet);
    std::vector<std::string> out;
    if (encoding_ == ObjEncoding::kIntSet) {
        out.reserve(intset_.size());
        for (std::size_t i = 0; i < intset_.size(); ++i) {
            out.push_back(ll2string(intset_.at(i)));
        }
    } else {
        out.reserve(setdict_.size());
        setdict_.for_each([&](const Sds& k, const char&) { out.push_back(k.str()); });
    }
    return out;
}

std::optional<std::string> Object::set_pop(sim::Rng& rng) {
    SKV_DCHECK(type_ == ObjType::kSet);
    if (set_size() == 0) return std::nullopt;
    if (encoding_ == ObjEncoding::kIntSet) {
        const std::int64_t v = intset_.random(rng);
        intset_.erase(v);
        return ll2string(v);
    }
    auto [key, val] = setdict_.random_entry(rng);
    (void)val;
    std::string out = key->str();
    setdict_.erase(*key);
    return out;
}

// --- zset -------------------------------------------------------------------

bool Object::zadd(double score, std::string_view member) {
    SKV_DCHECK(type_ == ObjType::kZSet);
    const Sds m(member);
    if (double* cur = zdict_.find(m)) {
        if (*cur != score) {
            zsl_->update_score(*cur, m, score);
            *cur = score;
        }
        return false;
    }
    zdict_.insert(m, score);
    zsl_->insert(score, m);
    return true;
}

bool Object::zrem(std::string_view member) {
    SKV_DCHECK(type_ == ObjType::kZSet);
    const Sds m(member);
    double* cur = zdict_.find(m);
    if (cur == nullptr) return false;
    const bool erased = zsl_->erase(*cur, m);
    SKV_DCHECK(erased);
    (void)erased;
    zdict_.erase(m);
    return true;
}

std::optional<double> Object::zscore(std::string_view member) const {
    SKV_DCHECK(type_ == ObjType::kZSet);
    const double* s = zdict_.find(Sds(member));
    if (s == nullptr) return std::nullopt;
    return *s;
}

std::optional<std::size_t> Object::zrank(std::string_view member) const {
    SKV_DCHECK(type_ == ObjType::kZSet);
    const Sds m(member);
    const double* s = zdict_.find(m);
    if (s == nullptr) return std::nullopt;
    const std::size_t r = zsl_->rank(*s, m);
    SKV_DCHECK(r > 0);
    return r - 1;
}

// --- misc ----------------------------------------------------------------------

std::size_t Object::memory_bytes() const {
    std::size_t n = sizeof(Object);
    switch (type_) {
        case ObjType::kString:
            n += str_.capacity();
            break;
        case ObjType::kList:
            for (const auto& e : list_) n += sizeof(Sds) + e.capacity();
            break;
        case ObjType::kSet:
            if (encoding_ == ObjEncoding::kIntSet) {
                n += intset_.memory_bytes();
            } else {
                setdict_.for_each(
                    [&](const Sds& k, const char&) { n += sizeof(Sds) + k.capacity() + 1; });
            }
            break;
        case ObjType::kHash:
            hash_.for_each([&](const Sds& k, const Sds& v) {
                n += 2 * sizeof(Sds) + k.capacity() + v.capacity();
            });
            break;
        case ObjType::kZSet:
            zdict_.for_each([&](const Sds& k, const double&) {
                // dict entry + skiplist node
                n += 2 * (sizeof(Sds) + k.capacity()) + sizeof(double) + 64;
            });
            break;
    }
    return n;
}

bool Object::equals(const Object& o) const {
    if (type_ != o.type_) return false;
    switch (type_) {
        case ObjType::kString:
            return string_value() == o.string_value();
        case ObjType::kList: {
            if (list_.size() != o.list_.size()) return false;
            return std::equal(list_.begin(), list_.end(), o.list_.begin());
        }
        case ObjType::kSet: {
            if (set_size() != o.set_size()) return false;
            for (const auto& m : set_members()) {
                if (!o.set_contains(m)) return false;
            }
            return true;
        }
        case ObjType::kHash: {
            if (hash_.size() != o.hash_.size()) return false;
            bool same = true;
            hash_.for_each([&](const Sds& k, const Sds& v) {
                const Sds* ov = o.hash_.find(k);
                if (ov == nullptr || !(*ov == v)) same = false;
            });
            return same;
        }
        case ObjType::kZSet: {
            if (zcard() != o.zcard()) return false;
            bool same = true;
            zdict_.for_each([&](const Sds& k, const double& s) {
                const auto os = o.zscore(k.view());
                if (!os.has_value() || *os != s) same = false;
            });
            return same;
        }
    }
    return false;
}

} // namespace skv::kv
