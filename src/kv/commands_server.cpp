#include "kv/command.hpp"

namespace skv::kv {

namespace {

void cmd_ping(CommandContext& ctx) {
    if (ctx.argv.size() == 2) {
        ctx.reply_bulk(ctx.argv[1]);
    } else {
        ctx.reply_simple("PONG");
    }
}

void cmd_echo(CommandContext& ctx) { ctx.reply_bulk(ctx.argv[1]); }

void cmd_dbsize(CommandContext& ctx) {
    ctx.reply_integer(static_cast<long long>(ctx.db.size()));
}

void cmd_flushdb(CommandContext& ctx) {
    ctx.db.clear();
    ctx.dirty = true;
    ctx.reply_ok();
}

void cmd_select(CommandContext& ctx) {
    // The simulation runs a single logical database; SELECT 0 is accepted
    // for client-library compatibility.
    const auto idx = string2ll(ctx.argv[1]);
    if (!idx.has_value() || *idx != 0) {
        ctx.reply_error("ERR DB index is out of range");
        return;
    }
    ctx.reply_ok();
}

void cmd_time(CommandContext& ctx) {
    const std::int64_t ms = ctx.db.now_ms();
    ctx.reply += resp::array_header(2);
    ctx.reply_bulk(ll2string(ms / 1000));
    ctx.reply_bulk(ll2string((ms % 1000) * 1000));
}

void cmd_command(CommandContext& ctx) {
    // COMMAND COUNT is all clients here need.
    if (ctx.argv.size() == 2 && Sds(ctx.argv[1]).iequals("COUNT")) {
        ctx.reply_integer(
            static_cast<long long>(CommandTable::instance().size()));
        return;
    }
    ctx.reply += resp::array_header(0);
}

} // namespace

void register_server_commands(CommandTable& t) {
    t.add({"PING", -1, kCmdReadOnly | kCmdFast, cmd_ping});
    t.add({"ECHO", 2, kCmdReadOnly | kCmdFast, cmd_echo});
    t.add({"DBSIZE", 1, kCmdReadOnly | kCmdFast, cmd_dbsize});
    t.add({"FLUSHDB", 1, kCmdWrite, cmd_flushdb});
    t.add({"FLUSHALL", 1, kCmdWrite, cmd_flushdb});
    t.add({"SELECT", 2, kCmdReadOnly | kCmdFast, cmd_select});
    t.add({"TIME", 1, kCmdReadOnly | kCmdFast, cmd_time});
    t.add({"COMMAND", -1, kCmdReadOnly, cmd_command});
}

} // namespace skv::kv
