#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace skv::kv {

/// The replication backlog: a fixed-capacity ring of the most recent bytes
/// of the replication stream, indexed by the global replication offset.
/// During initial synchronization the master checks whether a reconnecting
/// slave's offset still lies inside the backlog — if so it serves the
/// missing range (partial resync); if not it must ship a full RDB snapshot.
class ReplBacklog {
public:
    explicit ReplBacklog(std::size_t capacity);

    /// Append replication-stream bytes, advancing the master offset.
    void append(std::string_view bytes);

    /// Total bytes ever written (the "master replication offset").
    [[nodiscard]] std::int64_t master_offset() const { return master_offset_; }

    /// Smallest offset still retained in the ring.
    [[nodiscard]] std::int64_t min_offset() const {
        return master_offset_ - static_cast<std::int64_t>(used_);
    }

    /// Can the range [from, master_offset) be served from the ring?
    [[nodiscard]] bool can_serve(std::int64_t from) const {
        return from >= min_offset() && from <= master_offset_;
    }

    /// Bytes in [from, master_offset). Requires can_serve(from).
    [[nodiscard]] std::string read_from(std::int64_t from) const;

    [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
    [[nodiscard]] std::size_t used() const { return used_; }

    void clear();

    /// Rebase the ring to `offset` with no retained bytes: a master
    /// restarting cold from a snapshot resumes the stream at the offset
    /// the snapshot was taken at, not at zero (a rewound offset would make
    /// slaves treat every new frame as stale and skip it).
    void reset(std::int64_t offset);

private:
    std::vector<char> buf_;
    std::size_t head_ = 0; // next write position
    std::size_t used_ = 0;
    std::int64_t master_offset_ = 0;
};

} // namespace skv::kv
