#include "kv/rdb.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "sim/check.hpp"

namespace skv::kv::rdb {

namespace {

constexpr std::string_view kMagic = "SKVRDB01";

// Record opcodes.
constexpr std::uint8_t kOpString = 0;
constexpr std::uint8_t kOpList = 1;
constexpr std::uint8_t kOpSet = 2;
constexpr std::uint8_t kOpHash = 3;
constexpr std::uint8_t kOpZSet = 4;
constexpr std::uint8_t kOpExpireMs = 0xFD;
constexpr std::uint8_t kOpEof = 0xFF;

// --- length encoding (Redis-style prefix) -----------------------------------
// 00xxxxxx            : 6-bit length
// 01xxxxxx xxxxxxxx   : 14-bit length
// 10000000 + 8 bytes  : 64-bit length (little endian)

void put_len(std::string& out, std::uint64_t len) {
    if (len < (1u << 6)) {
        out.push_back(static_cast<char>(len));
    } else if (len < (1u << 14)) {
        out.push_back(static_cast<char>(0x40 | (len >> 8)));
        out.push_back(static_cast<char>(len & 0xFF));
    } else {
        out.push_back(static_cast<char>(0x80));
        for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(len >> (i * 8)));
    }
}

bool get_len(std::string_view in, std::size_t* p, std::uint64_t* len) {
    if (*p >= in.size()) return false;
    const auto b0 = static_cast<std::uint8_t>(in[*p]);
    const int kind = b0 >> 6;
    if (kind == 0) {
        *len = b0 & 0x3F;
        *p += 1;
        return true;
    }
    if (kind == 1) {
        if (*p + 1 >= in.size()) return false;
        *len = (static_cast<std::uint64_t>(b0 & 0x3F) << 8) |
               static_cast<std::uint8_t>(in[*p + 1]);
        *p += 2;
        return true;
    }
    if (b0 == 0x80) {
        if (*p + 8 >= in.size()) return false;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(in[*p + 1 + static_cast<std::size_t>(i)]))
                 << (i * 8);
        }
        *len = v;
        *p += 9;
        return true;
    }
    return false;
}

void put_string(std::string& out, std::string_view s) {
    put_len(out, s.size());
    out += s;
}

bool get_string(std::string_view in, std::size_t* p, std::string* s) {
    std::uint64_t len = 0;
    if (!get_len(in, p, &len)) return false;
    if (in.size() - *p < len) return false;
    s->assign(in.substr(*p, len));
    *p += len;
    return true;
}

void put_i64(std::string& out, std::int64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (i * 8)));
}

bool get_i64(std::string_view in, std::size_t* p, std::int64_t* v) {
    if (in.size() - *p < 8) return false;
    std::uint64_t u = 0;
    for (int i = 0; i < 8; ++i) {
        u |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(in[*p + static_cast<std::size_t>(i)]))
             << (i * 8);
    }
    *v = static_cast<std::int64_t>(u);
    *p += 8;
    return true;
}

void put_double(std::string& out, double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    put_i64(out, static_cast<std::int64_t>(bits));
}

bool get_double(std::string_view in, std::size_t* p, double* d) {
    std::int64_t v = 0;
    if (!get_i64(in, p, &v)) return false;
    const auto bits = static_cast<std::uint64_t>(v);
    std::memcpy(d, &bits, sizeof(*d));
    return true;
}

std::uint8_t type_opcode(const Object& o) {
    switch (o.type()) {
        case ObjType::kString: return kOpString;
        case ObjType::kList: return kOpList;
        case ObjType::kSet: return kOpSet;
        case ObjType::kHash: return kOpHash;
        case ObjType::kZSet: return kOpZSet;
    }
    return kOpString;
}

void save_payload(std::string& out, const Object& o) {
    switch (o.type()) {
        case ObjType::kString:
            put_string(out, o.string_value());
            break;
        case ObjType::kList: {
            put_len(out, o.list().size());
            for (const auto& e : o.list()) put_string(out, e.view());
            break;
        }
        case ObjType::kSet: {
            auto members = o.set_members();
            std::sort(members.begin(), members.end());
            put_len(out, members.size());
            for (const auto& m : members) put_string(out, m);
            break;
        }
        case ObjType::kHash: {
            // Sorted fields keep snapshots byte-identical across runs.
            std::vector<std::pair<std::string, std::string>> pairs;
            pairs.reserve(o.hash().size());
            o.hash().for_each([&](const Sds& k, const Sds& v) {
                pairs.emplace_back(k.str(), v.str());
            });
            std::sort(pairs.begin(), pairs.end());
            put_len(out, pairs.size());
            for (const auto& [k, v] : pairs) {
                put_string(out, k);
                put_string(out, v);
            }
            break;
        }
        case ObjType::kZSet: {
            put_len(out, o.zcard());
            for (const SkipList::Node* n = o.zsl().head(); n != nullptr;
                 n = n->level[0].forward) {
                put_string(out, n->member.view());
                put_double(out, n->score);
            }
            break;
        }
    }
}

ObjectPtr load_object(std::string_view in, std::size_t* p, std::uint8_t op,
                      bool* ok) {
    *ok = false;
    switch (op) {
        case kOpString: {
            std::string s;
            if (!get_string(in, p, &s)) return nullptr;
            *ok = true;
            return Object::make_string(s);
        }
        case kOpList: {
            std::uint64_t n = 0;
            if (!get_len(in, p, &n)) return nullptr;
            auto o = Object::make_list();
            for (std::uint64_t i = 0; i < n; ++i) {
                std::string s;
                if (!get_string(in, p, &s)) return nullptr;
                o->list().push_back(Sds(s));
            }
            *ok = true;
            return o;
        }
        case kOpSet: {
            std::uint64_t n = 0;
            if (!get_len(in, p, &n)) return nullptr;
            auto o = Object::make_set();
            for (std::uint64_t i = 0; i < n; ++i) {
                std::string s;
                if (!get_string(in, p, &s)) return nullptr;
                o->set_add(s);
            }
            *ok = true;
            return o;
        }
        case kOpHash: {
            std::uint64_t n = 0;
            if (!get_len(in, p, &n)) return nullptr;
            auto o = Object::make_hash();
            for (std::uint64_t i = 0; i < n; ++i) {
                std::string k;
                std::string v;
                if (!get_string(in, p, &k) || !get_string(in, p, &v)) return nullptr;
                o->hash().set(Sds(k), Sds(v));
            }
            *ok = true;
            return o;
        }
        case kOpZSet: {
            std::uint64_t n = 0;
            if (!get_len(in, p, &n)) return nullptr;
            auto o = Object::make_zset();
            for (std::uint64_t i = 0; i < n; ++i) {
                std::string m;
                double score;
                if (!get_string(in, p, &m) || !get_double(in, p, &score)) {
                    return nullptr;
                }
                o->zadd(score, m);
            }
            *ok = true;
            return o;
        }
        default:
            return nullptr;
    }
}

} // namespace

std::uint64_t crc64(std::uint64_t crc, std::string_view data) {
    // Jones polynomial 0xad93d23594c935a9, reflected, as in Redis crc64.
    static const std::array<std::uint64_t, 256> table = [] {
        std::array<std::uint64_t, 256> t{};
        constexpr std::uint64_t poly = 0x95AC9329AC4BC9B5ULL; // reflected
        for (std::uint64_t i = 0; i < 256; ++i) {
            std::uint64_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1) ? poly ^ (c >> 1) : c >> 1;
            }
            t[static_cast<std::size_t>(i)] = c;
        }
        return t;
    }();
    for (const char ch : data) {
        crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
    }
    return crc;
}

const char* to_string(LoadStatus s) {
    switch (s) {
        case LoadStatus::kOk: return "ok";
        case LoadStatus::kBadMagic: return "bad-magic";
        case LoadStatus::kTruncated: return "truncated";
        case LoadStatus::kCorrupt: return "corrupt";
        case LoadStatus::kBadChecksum: return "bad-checksum";
    }
    return "?";
}

std::string save(const Database& db) {
    std::string out(kMagic);
    // Deterministic key order keeps snapshots byte-comparable across runs.
    std::vector<const Sds*> keys;
    keys.reserve(db.size());
    db.keys().for_each([&](const Sds& k, const ObjectPtr&) { keys.push_back(&k); });
    std::sort(keys.begin(), keys.end(),
              [](const Sds* a, const Sds* b) { return a->compare(*b) < 0; });
    for (const Sds* k : keys) {
        const ObjectPtr* o = db.keys().find(*k);
        SKV_DCHECK(o != nullptr);
        const auto expire = db.expire_at(k->view());
        if (expire.has_value()) {
            out.push_back(static_cast<char>(kOpExpireMs));
            put_i64(out, *expire);
        }
        out.push_back(static_cast<char>(type_opcode(**o)));
        put_string(out, k->view());
        save_payload(out, **o);
    }
    out.push_back(static_cast<char>(kOpEof));
    const std::uint64_t crc = crc64(0, out);
    put_i64(out, static_cast<std::int64_t>(crc));
    return out;
}

LoadStatus load(std::string_view bytes, Database& db) {
    db.clear();
    if (bytes.size() < kMagic.size() + 9) return LoadStatus::kTruncated;
    if (bytes.substr(0, kMagic.size()) != kMagic) return LoadStatus::kBadMagic;

    // Verify the checksum over everything before the trailing 8 bytes.
    const std::string_view body = bytes.substr(0, bytes.size() - 8);
    std::size_t tail = bytes.size() - 8;
    std::int64_t stored = 0;
    if (!get_i64(bytes, &tail, &stored)) return LoadStatus::kTruncated;
    if (crc64(0, body) != static_cast<std::uint64_t>(stored)) {
        return LoadStatus::kBadChecksum;
    }

    std::size_t p = kMagic.size();
    // Expiry is tracked with an explicit flag, not a sentinel value: an
    // already-expired key carries a timestamp in the past (possibly <= 0
    // relative to sim epoch), and a `>= 0` test would silently drop it,
    // resurrecting the key as immortal after a restart recovery.
    bool has_pending_expire = false;
    std::int64_t pending_expire = 0;
    while (p < body.size()) {
        const auto op = static_cast<std::uint8_t>(body[p++]);
        if (op == kOpEof) {
            return LoadStatus::kOk;
        }
        if (op == kOpExpireMs) {
            if (!get_i64(body, &p, &pending_expire)) {
                db.clear();
                return LoadStatus::kTruncated;
            }
            has_pending_expire = true;
            continue;
        }
        std::string key;
        if (!get_string(body, &p, &key)) {
            db.clear();
            return LoadStatus::kTruncated;
        }
        bool ok = false;
        ObjectPtr o = load_object(body, &p, op, &ok);
        if (!ok) {
            db.clear();
            return LoadStatus::kCorrupt;
        }
        db.set(key, std::move(o));
        if (has_pending_expire) {
            db.set_expire(key, pending_expire);
            has_pending_expire = false;
        }
    }
    db.clear();
    return LoadStatus::kTruncated; // no EOF opcode seen
}

} // namespace skv::kv::rdb
