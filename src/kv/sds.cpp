#include "kv/sds.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace skv::kv {

void Sds::make_room(std::size_t n) {
    const std::size_t needed = len_ + n;
    if (buf_.size() >= needed) return;
    std::size_t newcap = needed;
    if (newcap < kMaxPrealloc) {
        newcap *= 2;
    } else {
        newcap += kMaxPrealloc;
    }
    buf_.resize(newcap);
}

void Sds::append(std::string_view s) {
    if (s.empty()) return; // memcpy from a null view is UB even for size 0
    make_room(s.size());
    std::memcpy(buf_.data() + len_, s.data(), s.size());
    len_ += s.size();
}

void Sds::range(std::ptrdiff_t start, std::ptrdiff_t end) {
    const auto len = static_cast<std::ptrdiff_t>(len_);
    if (len == 0) return;
    if (start < 0) start = std::max<std::ptrdiff_t>(len + start, 0);
    if (end < 0) end = len + end;
    if (end >= len) end = len - 1;
    if (start > end || start >= len) {
        len_ = 0;
        return;
    }
    const std::size_t newlen = static_cast<std::size_t>(end - start + 1);
    if (start != 0) {
        std::memmove(buf_.data(), buf_.data() + start, newlen);
    }
    len_ = newlen;
}

void Sds::trim(std::string_view cset) {
    std::size_t start = 0;
    std::size_t end = len_;
    while (start < end && cset.find(buf_[start]) != std::string_view::npos) ++start;
    while (end > start && cset.find(buf_[end - 1]) != std::string_view::npos) --end;
    const std::size_t newlen = end - start;
    if (start != 0 && newlen != 0) {
        std::memmove(buf_.data(), buf_.data() + start, newlen);
    }
    len_ = newlen;
}

void Sds::tolower() {
    for (std::size_t i = 0; i < len_; ++i) {
        buf_[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(buf_[i])));
    }
}

void Sds::toupper() {
    for (std::size_t i = 0; i < len_; ++i) {
        buf_[i] = static_cast<char>(std::toupper(static_cast<unsigned char>(buf_[i])));
    }
}

int Sds::compare(const Sds& o) const {
    const std::size_t minlen = std::min(len_, o.len_);
    const int c = minlen ? std::memcmp(buf_.data(), o.buf_.data(), minlen) : 0;
    if (c != 0) return c;
    if (len_ == o.len_) return 0;
    return len_ < o.len_ ? -1 : 1;
}

bool Sds::iequals(std::string_view s) const {
    if (s.size() != len_) return false;
    for (std::size_t i = 0; i < len_; ++i) {
        if (std::tolower(static_cast<unsigned char>(buf_[i])) !=
            std::tolower(static_cast<unsigned char>(s[i]))) {
            return false;
        }
    }
    return true;
}

std::optional<std::vector<Sds>> Sds::split_args(std::string_view line) {
    std::vector<Sds> out;
    std::size_t i = 0;
    const std::size_t n = line.size();
    auto is_space = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    };
    auto is_hex = [](char c) { return std::isxdigit(static_cast<unsigned char>(c)) != 0; };
    auto hexval = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        return std::tolower(static_cast<unsigned char>(c)) - 'a' + 10;
    };

    while (true) {
        while (i < n && is_space(line[i])) ++i;
        if (i >= n) return out;

        Sds current;
        bool in_double = false;
        bool in_single = false;
        bool done = false;
        while (!done) {
            if (in_double) {
                if (i >= n) return std::nullopt; // unterminated quotes
                if (line[i] == '\\' && i + 3 < n && line[i + 1] == 'x' &&
                    is_hex(line[i + 2]) && is_hex(line[i + 3])) {
                    current.append(static_cast<char>(hexval(line[i + 2]) * 16 +
                                                     hexval(line[i + 3])));
                    i += 4;
                } else if (line[i] == '\\' && i + 1 < n) {
                    char c = line[i + 1];
                    switch (c) {
                        case 'n': c = '\n'; break;
                        case 'r': c = '\r'; break;
                        case 't': c = '\t'; break;
                        case 'b': c = '\b'; break;
                        case 'a': c = '\a'; break;
                        default: break;
                    }
                    current.append(c);
                    i += 2;
                } else if (line[i] == '"') {
                    // Closing quote must be followed by space or end.
                    if (i + 1 < n && !is_space(line[i + 1])) return std::nullopt;
                    in_double = false;
                    ++i;
                    done = true;
                } else {
                    current.append(line[i++]);
                }
            } else if (in_single) {
                if (i >= n) return std::nullopt;
                if (line[i] == '\\' && i + 1 < n && line[i + 1] == '\'') {
                    current.append('\'');
                    i += 2;
                } else if (line[i] == '\'') {
                    if (i + 1 < n && !is_space(line[i + 1])) return std::nullopt;
                    in_single = false;
                    ++i;
                    done = true;
                } else {
                    current.append(line[i++]);
                }
            } else {
                if (i >= n) {
                    done = true;
                } else if (is_space(line[i])) {
                    done = true;
                } else if (line[i] == '"') {
                    in_double = true;
                    ++i;
                } else if (line[i] == '\'') {
                    in_single = true;
                    ++i;
                } else {
                    current.append(line[i++]);
                }
            }
        }
        out.push_back(std::move(current));
    }
}

std::string ll2string(long long v) {
    char buf[24];
    char* p = buf + sizeof(buf);
    const bool neg = v < 0;
    unsigned long long u =
        neg ? 0ULL - static_cast<unsigned long long>(v) : static_cast<unsigned long long>(v);
    do {
        *--p = static_cast<char>('0' + (u % 10));
        u /= 10;
    } while (u != 0);
    if (neg) *--p = '-';
    return std::string(p, buf + sizeof(buf));
}

std::optional<long long> string2ll(std::string_view s) {
    if (s.empty() || s.size() > 20) return std::nullopt;
    std::size_t i = 0;
    bool neg = false;
    if (s[0] == '-') {
        neg = true;
        i = 1;
        if (s.size() == 1) return std::nullopt;
    }
    // "0" is fine; "0123" is not (matches Redis string2ll).
    if (s[i] == '0') {
        if (s.size() == i + 1) return 0;
        return std::nullopt;
    }
    unsigned long long v = 0;
    for (; i < s.size(); ++i) {
        if (s[i] < '0' || s[i] > '9') return std::nullopt;
        const auto d = static_cast<unsigned long long>(s[i] - '0');
        if (v > (ULLONG_MAX - d) / 10) return std::nullopt; // overflow
        v = v * 10 + d;
    }
    if (neg) {
        if (v > static_cast<unsigned long long>(LLONG_MAX) + 1) return std::nullopt;
        return static_cast<long long>(0ULL - v);
    }
    if (v > static_cast<unsigned long long>(LLONG_MAX)) return std::nullopt;
    return static_cast<long long>(v);
}

std::optional<double> string2d(std::string_view s) {
    if (s.empty()) return std::nullopt;
    if (s == "inf" || s == "+inf" || s == "Inf" || s == "+Inf") {
        return HUGE_VAL;
    }
    if (s == "-inf" || s == "-Inf") return -HUGE_VAL;
    std::string tmp(s); // strtod needs a terminator
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(tmp.c_str(), &end);
    if (end != tmp.c_str() + tmp.size() || errno == ERANGE || std::isnan(v)) {
        return std::nullopt;
    }
    return v;
}

} // namespace skv::kv
