#include <algorithm>
#include <bit>
#include <climits>

#include "kv/command.hpp"
#include "kv/sds.hpp"

namespace skv::kv {

namespace {

/// Redis bit numbering: bit 0 is the most significant bit of byte 0.
constexpr std::size_t kMaxBitOffset = 4ULL * 1024 * 1024 * 1024 * 8 - 1;

bool parse_bit_offset(CommandContext& ctx, const std::string& s,
                      std::size_t* offset) {
    const auto v = string2ll(s);
    if (!v.has_value() || *v < 0 ||
        static_cast<std::size_t>(*v) > kMaxBitOffset) {
        ctx.reply_error("ERR bit offset is not an integer or out of range");
        return false;
    }
    *offset = static_cast<std::size_t>(*v);
    return true;
}

void cmd_setbit(CommandContext& ctx) {
    std::size_t offset;
    if (!parse_bit_offset(ctx, ctx.argv[2], &offset)) return;
    const auto bit = string2ll(ctx.argv[3]);
    if (!bit.has_value() || (*bit != 0 && *bit != 1)) {
        ctx.reply_error("ERR bit is not an integer or out of range");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    std::string value = o == nullptr ? std::string() : o->string_value();
    const std::size_t byte = offset >> 3;
    if (value.size() <= byte) value.resize(byte + 1, '\0');
    const int shift = 7 - static_cast<int>(offset & 7);
    const int old = (static_cast<unsigned char>(value[byte]) >> shift) & 1;
    if (*bit) {
        value[byte] = static_cast<char>(value[byte] | (1 << shift));
    } else {
        value[byte] = static_cast<char>(value[byte] & ~(1 << shift));
    }
    ctx.db.set_keep_ttl(ctx.argv[1], Object::make_string(value));
    ctx.dirty = true;
    ctx.reply_integer(old);
}

void cmd_getbit(CommandContext& ctx) {
    std::size_t offset;
    if (!parse_bit_offset(ctx, ctx.argv[2], &offset)) return;
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_integer(0);
        return;
    }
    const std::string value = o->string_value();
    const std::size_t byte = offset >> 3;
    if (byte >= value.size()) {
        ctx.reply_integer(0);
        return;
    }
    const int shift = 7 - static_cast<int>(offset & 7);
    ctx.reply_integer((static_cast<unsigned char>(value[byte]) >> shift) & 1);
}

void cmd_bitcount(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_integer(0);
        return;
    }
    std::string value = o->string_value();
    std::ptrdiff_t start = 0;
    std::ptrdiff_t end = static_cast<std::ptrdiff_t>(value.size()) - 1;
    if (ctx.argv.size() == 4) {
        const auto s = string2ll(ctx.argv[2]);
        const auto e = string2ll(ctx.argv[3]);
        if (!s.has_value() || !e.has_value()) {
            ctx.reply_error("ERR value is not an integer or out of range");
            return;
        }
        const auto len = static_cast<std::ptrdiff_t>(value.size());
        start = *s < 0 ? std::max<std::ptrdiff_t>(len + *s, 0)
                       : static_cast<std::ptrdiff_t>(*s);
        end = *e < 0 ? len + *e : static_cast<std::ptrdiff_t>(*e);
        if (end >= len) end = len - 1;
    } else if (ctx.argv.size() != 2) {
        ctx.reply_error("ERR syntax error");
        return;
    }
    long long count = 0;
    for (std::ptrdiff_t i = start; i <= end && i >= 0 &&
                                   i < static_cast<std::ptrdiff_t>(value.size());
         ++i) {
        count += std::popcount(
            static_cast<unsigned>(static_cast<unsigned char>(value[static_cast<std::size_t>(i)])));
    }
    ctx.reply_integer(count);
}

void cmd_bitpos(CommandContext& ctx) {
    const auto bit = string2ll(ctx.argv[2]);
    if (!bit.has_value() || (*bit != 0 && *bit != 1)) {
        ctx.reply_error("ERR The bit argument must be 1 or 0.");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        // Missing key is all-zeros: first 0 is at position 0; no 1 exists.
        ctx.reply_integer(*bit == 0 ? 0 : -1);
        return;
    }
    const std::string value = o->string_value();
    const bool has_range = ctx.argv.size() >= 4;
    std::ptrdiff_t start = 0;
    std::ptrdiff_t end = static_cast<std::ptrdiff_t>(value.size()) - 1;
    if (has_range) {
        const auto s = string2ll(ctx.argv[3]);
        if (!s.has_value()) {
            ctx.reply_error("ERR value is not an integer or out of range");
            return;
        }
        const auto len = static_cast<std::ptrdiff_t>(value.size());
        start = *s < 0 ? std::max<std::ptrdiff_t>(len + *s, 0)
                       : static_cast<std::ptrdiff_t>(*s);
        if (ctx.argv.size() == 5) {
            const auto e = string2ll(ctx.argv[4]);
            if (!e.has_value()) {
                ctx.reply_error("ERR value is not an integer or out of range");
                return;
            }
            end = *e < 0 ? len + *e : static_cast<std::ptrdiff_t>(*e);
            if (end >= len) end = len - 1;
        }
    }
    for (std::ptrdiff_t i = start;
         i <= end && i < static_cast<std::ptrdiff_t>(value.size()); ++i) {
        const auto byte = static_cast<unsigned char>(value[static_cast<std::size_t>(i)]);
        for (int b = 7; b >= 0; --b) {
            if (((byte >> b) & 1) == *bit) {
                ctx.reply_integer(i * 8 + (7 - b));
                return;
            }
        }
    }
    // Looking for a 0 past the end of the string (without an explicit end
    // range) finds one in the implicit zero padding.
    if (*bit == 0 && !has_range) {
        ctx.reply_integer(static_cast<long long>(value.size()) * 8);
        return;
    }
    ctx.reply_integer(-1);
}

void cmd_bitop(CommandContext& ctx) {
    const Sds op(ctx.argv[1]);
    const bool is_not = op.iequals("NOT");
    const bool is_and = op.iequals("AND");
    const bool is_or = op.iequals("OR");
    const bool is_xor = op.iequals("XOR");
    if (!is_not && !is_and && !is_or && !is_xor) {
        ctx.reply_error("ERR syntax error");
        return;
    }
    if (is_not && ctx.argv.size() != 4) {
        ctx.reply_error("ERR BITOP NOT must be called with a single source key.");
        return;
    }
    std::vector<std::string> srcs;
    bool type_err = false;
    for (std::size_t i = 3; i < ctx.argv.size(); ++i) {
        ObjectPtr o = ctx.lookup_typed(ctx.argv[i], ObjType::kString, &type_err);
        if (type_err) return;
        srcs.push_back(o == nullptr ? std::string() : o->string_value());
    }
    std::size_t maxlen = 0;
    for (const auto& s : srcs) maxlen = std::max(maxlen, s.size());

    std::string out(maxlen, '\0');
    for (std::size_t i = 0; i < maxlen; ++i) {
        auto byte_at = [&](std::size_t src) -> unsigned char {
            return i < srcs[src].size()
                       ? static_cast<unsigned char>(srcs[src][i])
                       : 0;
        };
        unsigned char acc = byte_at(0);
        if (is_not) {
            acc = static_cast<unsigned char>(~acc);
        } else {
            for (std::size_t s = 1; s < srcs.size(); ++s) {
                const unsigned char b = byte_at(s);
                if (is_and) acc &= b;
                if (is_or) acc |= b;
                if (is_xor) acc ^= b;
            }
        }
        out[i] = static_cast<char>(acc);
    }
    if (maxlen == 0) {
        ctx.db.remove(ctx.argv[2]);
    } else {
        ctx.db.set(ctx.argv[2], Object::make_string(out));
    }
    ctx.dirty = true;
    ctx.reply_integer(static_cast<long long>(maxlen));
}

// --- non-bit extras registered here to keep the family files stable ---------

/// LINSERT key BEFORE|AFTER pivot element.
void cmd_linsert(CommandContext& ctx) {
    const Sds where(ctx.argv[2]);
    const bool before = where.iequals("BEFORE");
    if (!before && !where.iequals("AFTER")) {
        ctx.reply_error("ERR syntax error");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kList, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_integer(0);
        return;
    }
    auto& lst = o->list();
    const Sds pivot(ctx.argv[3]);
    for (auto it = lst.begin(); it != lst.end(); ++it) {
        if (*it == pivot) {
            lst.insert(before ? it : std::next(it), Sds(ctx.argv[4]));
            ctx.db.mark_dirty();
            ctx.dirty = true;
            ctx.reply_integer(static_cast<long long>(lst.size()));
            return;
        }
    }
    ctx.reply_integer(-1); // pivot not found
}

/// ZREMRANGEBYRANK key start stop (0-based, negatives allowed).
void cmd_zremrangebyrank(CommandContext& ctx) {
    const auto start = string2ll(ctx.argv[2]);
    const auto stop = string2ll(ctx.argv[3]);
    if (!start.has_value() || !stop.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_integer(0);
        return;
    }
    const auto len = static_cast<std::ptrdiff_t>(o->zcard());
    std::ptrdiff_t s = static_cast<std::ptrdiff_t>(*start);
    std::ptrdiff_t e = static_cast<std::ptrdiff_t>(*stop);
    if (s < 0) s += len;
    if (e < 0) e += len;
    if (s < 0) s = 0;
    if (e >= len) e = len - 1;
    long long removed = 0;
    if (s <= e && s < len) {
        // Collect first: removal shifts ranks.
        std::vector<std::string> victims;
        for (std::ptrdiff_t r = s; r <= e; ++r) {
            victims.push_back(
                o->zsl().at_rank(static_cast<std::size_t>(r) + 1)->member.str());
        }
        for (const auto& m : victims) {
            if (o->zrem(m)) ++removed;
        }
    }
    if (o->zcard() == 0) ctx.db.remove(ctx.argv[1]);
    if (removed > 0) {
        ctx.db.mark_dirty();
        ctx.dirty = true;
    }
    ctx.reply_integer(removed);
}

/// ZREMRANGEBYSCORE key min max (with (exclusive and +-inf bounds).
void cmd_zremrangebyscore(CommandContext& ctx) {
    auto parse_bound = [](std::string_view s, double* value, bool* exclusive) {
        *exclusive = false;
        if (!s.empty() && s[0] == '(') {
            *exclusive = true;
            s.remove_prefix(1);
        }
        const auto v = string2d(s);
        if (!v.has_value()) return false;
        *value = *v;
        return true;
    };
    double min;
    double max;
    bool min_ex;
    bool max_ex;
    if (!parse_bound(ctx.argv[2], &min, &min_ex) ||
        !parse_bound(ctx.argv[3], &max, &max_ex)) {
        ctx.reply_error("ERR min or max is not a float");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_integer(0);
        return;
    }
    std::vector<std::string> victims;
    for (const SkipList::Node* n = o->zsl().first_in_range(min, min_ex);
         n != nullptr; n = n->level[0].forward) {
        if (max_ex ? n->score >= max : n->score > max) break;
        victims.push_back(n->member.str());
    }
    long long removed = 0;
    for (const auto& m : victims) {
        if (o->zrem(m)) ++removed;
    }
    if (o->zcard() == 0) ctx.db.remove(ctx.argv[1]);
    if (removed > 0) {
        ctx.db.mark_dirty();
        ctx.dirty = true;
    }
    ctx.reply_integer(removed);
}

/// HSTRLEN key field.
void cmd_hstrlen(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_integer(0);
        return;
    }
    const Sds* v = o->hash().find(Sds(ctx.argv[2]));
    ctx.reply_integer(v == nullptr ? 0 : static_cast<long long>(v->size()));
}

/// SINTERCARD numkeys key [key ...] [LIMIT n].
void cmd_sintercard(CommandContext& ctx) {
    const auto numkeys = string2ll(ctx.argv[1]);
    if (!numkeys.has_value() || *numkeys <= 0 ||
        static_cast<std::size_t>(*numkeys) + 2 > ctx.argv.size() + 1) {
        ctx.reply_error("ERR numkeys should be greater than 0");
        return;
    }
    const std::size_t nkeys = static_cast<std::size_t>(*numkeys);
    long long limit = LLONG_MAX;
    const std::size_t after = 2 + nkeys;
    if (ctx.argv.size() > after) {
        if (ctx.argv.size() != after + 2 || !Sds(ctx.argv[after]).iequals("LIMIT")) {
            ctx.reply_error("ERR syntax error");
            return;
        }
        const auto l = string2ll(ctx.argv[after + 1]);
        if (!l.has_value() || *l < 0) {
            ctx.reply_error("ERR LIMIT can't be negative");
            return;
        }
        if (*l > 0) limit = *l;
    }
    std::vector<ObjectPtr> sets;
    bool type_err = false;
    for (std::size_t i = 0; i < nkeys; ++i) {
        ObjectPtr o = ctx.lookup_typed(ctx.argv[2 + i], ObjType::kSet, &type_err);
        if (type_err) return;
        if (o == nullptr) {
            ctx.reply_integer(0);
            return;
        }
        sets.push_back(std::move(o));
    }
    long long count = 0;
    for (const auto& m : sets[0]->set_members()) {
        bool in_all = true;
        for (std::size_t i = 1; i < sets.size(); ++i) {
            if (!sets[i]->set_contains(m)) {
                in_all = false;
                break;
            }
        }
        if (in_all && ++count >= limit) break;
    }
    ctx.reply_integer(count);
}

} // namespace

void register_bit_commands(CommandTable& t) {
    t.add({"SETBIT", 4, kCmdWrite, cmd_setbit});
    t.add({"GETBIT", 3, kCmdReadOnly | kCmdFast, cmd_getbit});
    t.add({"BITCOUNT", -2, kCmdReadOnly, cmd_bitcount});
    t.add({"BITPOS", -3, kCmdReadOnly, cmd_bitpos});
    t.add({"BITOP", -4, kCmdWrite, cmd_bitop});
    t.add({"LINSERT", 5, kCmdWrite, cmd_linsert});
    t.add({"ZREMRANGEBYRANK", 4, kCmdWrite, cmd_zremrangebyrank});
    t.add({"ZREMRANGEBYSCORE", 4, kCmdWrite, cmd_zremrangebyscore});
    t.add({"HSTRLEN", 3, kCmdReadOnly | kCmdFast, cmd_hstrlen});
    t.add({"SINTERCARD", -3, kCmdReadOnly, cmd_sintercard});
}

} // namespace skv::kv
