#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kv/sds.hpp"
#include "sim/rng.hpp"

namespace skv::kv {

/// Redis zskiplist: ordered by (score, member), with per-link span counts
/// so rank queries are O(log n). Backs the ZSET type together with a dict
/// from member to score.
class SkipList {
public:
    static constexpr int kMaxLevel = 32;
    static constexpr double kP = 0.25;

    struct Node {
        Sds member;
        double score = 0;
        Node* backward = nullptr;
        struct Link {
            Node* forward = nullptr;
            std::size_t span = 0;
        };
        std::vector<Link> level;
    };

    explicit SkipList(std::uint64_t seed = 0xD1CEULL);
    ~SkipList();

    SkipList(const SkipList&) = delete;
    SkipList& operator=(const SkipList&) = delete;

    /// Insert (score, member). The caller guarantees the member is not
    /// already present (the zset dict enforces that).
    void insert(double score, const Sds& member);

    /// Remove (score, member); returns false if absent.
    bool erase(double score, const Sds& member);

    /// Change the score of an existing (cur_score, member) node. Moves the
    /// node only if required by the new ordering.
    void update_score(double cur_score, const Sds& member, double new_score);

    /// 1-based rank of (score, member); 0 if absent.
    [[nodiscard]] std::size_t rank(double score, const Sds& member) const;

    /// Node at 1-based rank; nullptr when out of range.
    [[nodiscard]] const Node* at_rank(std::size_t r) const;

    /// First node with score >= min (for ZRANGEBYSCORE).
    [[nodiscard]] const Node* first_in_range(double min, bool min_exclusive) const;

    [[nodiscard]] const Node* head() const {
        return header_->level[0].forward;
    }
    [[nodiscard]] const Node* tail() const { return tail_; }

    [[nodiscard]] std::size_t size() const { return length_; }
    [[nodiscard]] int levels() const { return level_; }

    /// Verify structural invariants (ordering, spans, backward links).
    /// Used by tests; returns false and fills `why` when broken.
    bool check_invariants(std::string* why = nullptr) const;

private:
    int random_level();

    Node* header_;
    Node* tail_ = nullptr;
    std::size_t length_ = 0;
    int level_ = 1;
    sim::Rng rng_;
};

} // namespace skv::kv
