#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "kv/sds.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"

namespace skv::kv {

/// 64-bit string hash (xor-fold multiply mix; stands in for Redis's
/// SipHash-1-2 — same interface, deterministic across runs).
std::uint64_t dict_hash(std::string_view key);

/// Redis-style hash table: two bucket arrays and incremental rehashing.
/// When the load factor exceeds 1, a second table of twice the size is
/// allocated and entries migrate one bucket per operation, bounding the
/// latency of any single command — the property that keeps the Host-KV
/// event loop responsive and that dict_test verifies.
///
/// Keys are Sds; values are V (moved in). Iteration, SCAN-style cursors
/// (reverse-binary, stable across rehashes) and uniform random sampling
/// (for active expiry) are supported, as the engine needs all three.
template <typename V>
class Dict {
public:
    static constexpr std::size_t kInitialSize = 4;
    /// Forced-rehash load factor (dict_force_resize_ratio in Redis).
    static constexpr std::size_t kForceResizeRatio = 5;

    Dict() = default;

    [[nodiscard]] std::size_t size() const { return used_[0] + used_[1]; }
    [[nodiscard]] bool empty() const { return size() == 0; }
    [[nodiscard]] std::size_t bucket_count() const {
        return table_[0].size() + table_[1].size();
    }
    [[nodiscard]] bool rehashing() const { return rehash_idx_ >= 0; }

    /// Insert only if absent. Returns false if the key already exists.
    bool insert(const Sds& key, V val) {
        expand_if_needed();
        step_rehash();
        if (find(key) != nullptr) return false;
        const int t = rehashing() ? 1 : 0;
        const std::size_t b = dict_hash(key.view()) & mask(t);
        table_[t][b].push_back(Entry{key, std::move(val)});
        ++used_[t];
        return true;
    }

    /// Insert or overwrite. Returns true if the key was newly created.
    bool set(const Sds& key, V val) {
        if (V* existing = find(key)) {
            *existing = std::move(val);
            return false;
        }
        const bool inserted = insert(key, std::move(val));
        SKV_DCHECK(inserted);
        (void)inserted;
        return true;
    }

    [[nodiscard]] V* find(const Sds& key) {
        if (empty()) return nullptr;
        step_rehash();
        const std::uint64_t h = dict_hash(key.view());
        for (int t = 0; t <= (rehashing() ? 1 : 0); ++t) {
            if (table_[t].empty()) continue;
            for (auto& e : table_[t][h & mask(t)]) {
                if (e.key == key) return &e.val;
            }
        }
        return nullptr;
    }

    [[nodiscard]] const V* find(const Sds& key) const {
        return const_cast<Dict*>(this)->find_nostep(key);
    }

    bool contains(const Sds& key) const { return find(key) != nullptr; }

    bool erase(const Sds& key) {
        if (empty()) return false;
        step_rehash();
        const std::uint64_t h = dict_hash(key.view());
        for (int t = 0; t <= (rehashing() ? 1 : 0); ++t) {
            if (table_[t].empty()) continue;
            auto& bucket = table_[t][h & mask(t)];
            for (std::size_t i = 0; i < bucket.size(); ++i) {
                if (bucket[i].key == key) {
                    bucket[i] = std::move(bucket.back());
                    bucket.pop_back();
                    --used_[t];
                    shrink_if_needed();
                    return true;
                }
            }
        }
        return false;
    }

    void clear() {
        table_[0].clear();
        table_[1].clear();
        used_[0] = used_[1] = 0;
        rehash_idx_ = -1;
    }

    /// Visit every entry. The callback must not mutate the dict.
    template <typename Fn> // Fn(const Sds&, V&)
    void for_each(Fn&& fn) {
        for (int t = 0; t < 2; ++t) {
            for (auto& bucket : table_[t]) {
                for (auto& e : bucket) fn(e.key, e.val);
            }
        }
    }

    template <typename Fn> // Fn(const Sds&, const V&)
    void for_each(Fn&& fn) const {
        for (int t = 0; t < 2; ++t) {
            for (const auto& bucket : table_[t]) {
                for (const auto& e : bucket) fn(e.key, e.val);
            }
        }
    }

    /// Uniformly-random entry (for active expire sampling and RANDOMKEY).
    /// Returns nullptr when empty.
    std::pair<const Sds*, V*> random_entry(sim::Rng& rng) {
        if (empty()) return {nullptr, nullptr};
        step_rehash();
        // Pick a table weighted by occupancy, then a non-empty bucket by
        // rejection, then a random chain slot.
        for (;;) {
            const int t = rng.next_below(size()) < used_[0] ? 0 : 1;
            if (table_[t].empty() || used_[t] == 0) continue;
            auto& bucket = table_[t][rng.next_below(table_[t].size())];
            if (bucket.empty()) continue;
            auto& e = bucket[rng.next_below(bucket.size())];
            return {&e.key, &e.val};
        }
    }

    /// SCAN-style iteration: visits every entry at least once across a
    /// full cursor cycle even if rehashes happen between calls. Returns the
    /// next cursor; 0 means the scan completed. Uses Pieter Noordhuis's
    /// reverse-binary-increment algorithm, as Redis does.
    template <typename Fn> // Fn(const Sds&, const V&)
    std::uint64_t scan(std::uint64_t cursor, Fn&& fn) const {
        if (size() == 0) return 0;
        if (!rehashing()) {
            const std::uint64_t m = mask(0);
            for (const auto& e : table_[0][cursor & m]) fn(e.key, e.val);
            cursor |= ~m;
            cursor = reverse_bits(cursor);
            ++cursor;
            cursor = reverse_bits(cursor);
            return cursor;
        }
        // Two tables: visit the bucket in the smaller, then all buckets in
        // the larger that map onto it.
        int small = 0;
        int large = 1;
        if (table_[small].size() > table_[large].size()) std::swap(small, large);
        const std::uint64_t ms = mask(small);
        const std::uint64_t ml = mask(large);
        for (const auto& e : table_[small][cursor & ms]) fn(e.key, e.val);
        std::uint64_t c = cursor;
        do {
            for (const auto& e : table_[large][c & ml]) fn(e.key, e.val);
            c |= ~ml;
            c = reverse_bits(c);
            ++c;
            c = reverse_bits(c);
        } while ((c & (ms ^ ml)) != 0);
        return c;
    }

    /// Perform up to `n` bucket migrations immediately (the server's cron
    /// calls this to make progress when the keyspace is idle).
    void rehash_step(std::size_t n) {
        for (std::size_t i = 0; i < n && rehashing(); ++i) migrate_one();
    }

private:
    struct Entry {
        Sds key;
        V val;
    };

    using Bucket = std::vector<Entry>;
    using Table = std::vector<Bucket>;

    [[nodiscard]] std::uint64_t mask(int t) const {
        return table_[t].empty() ? 0 : table_[t].size() - 1;
    }

    static std::uint64_t reverse_bits(std::uint64_t v) {
        v = ((v >> 1) & 0x5555555555555555ULL) | ((v & 0x5555555555555555ULL) << 1);
        v = ((v >> 2) & 0x3333333333333333ULL) | ((v & 0x3333333333333333ULL) << 2);
        v = ((v >> 4) & 0x0F0F0F0F0F0F0F0FULL) | ((v & 0x0F0F0F0F0F0F0F0FULL) << 4);
        v = ((v >> 8) & 0x00FF00FF00FF00FFULL) | ((v & 0x00FF00FF00FF00FFULL) << 8);
        v = ((v >> 16) & 0x0000FFFF0000FFFFULL) | ((v & 0x0000FFFF0000FFFFULL) << 16);
        return (v >> 32) | (v << 32);
    }

    V* find_nostep(const Sds& key) {
        if (empty()) return nullptr;
        const std::uint64_t h = dict_hash(key.view());
        for (int t = 0; t <= (rehashing() ? 1 : 0); ++t) {
            if (table_[t].empty()) continue;
            for (auto& e : table_[t][h & mask(t)]) {
                if (e.key == key) return &e.val;
            }
        }
        return nullptr;
    }

    void start_rehash(std::size_t newsize) {
        SKV_DCHECK(!rehashing());
        if (newsize == table_[0].size()) return;
        table_[1].assign(newsize, Bucket{});
        rehash_idx_ = 0;
    }

    void expand_if_needed() {
        if (rehashing()) return;
        if (table_[0].empty()) {
            table_[0].assign(kInitialSize, Bucket{});
            return;
        }
        if (used_[0] >= table_[0].size()) {
            start_rehash(next_power(used_[0] * 2));
        }
    }

    void shrink_if_needed() {
        if (rehashing()) return;
        if (table_[0].size() > kInitialSize && used_[0] * 10 < table_[0].size()) {
            start_rehash(next_power(std::max(used_[0], kInitialSize)));
        }
    }

    static std::size_t next_power(std::size_t n) {
        std::size_t p = kInitialSize;
        while (p < n) p <<= 1;
        return p;
    }

    /// Move one non-empty bucket from table 0 to table 1 (visiting at most
    /// 10 empty buckets, as Redis's dictRehash(d, 1) does).
    void migrate_one() {
        SKV_DCHECK(rehashing());
        int empty_visits = 10;
        while (static_cast<std::size_t>(rehash_idx_) < table_[0].size() &&
               table_[0][static_cast<std::size_t>(rehash_idx_)].empty()) {
            ++rehash_idx_;
            if (--empty_visits == 0) return;
        }
        if (static_cast<std::size_t>(rehash_idx_) >= table_[0].size()) {
            finish_rehash();
            return;
        }
        auto& bucket = table_[0][static_cast<std::size_t>(rehash_idx_)];
        for (auto& e : bucket) {
            const std::size_t b = dict_hash(e.key.view()) & mask(1);
            table_[1][b].push_back(std::move(e));
            --used_[0];
            ++used_[1];
        }
        bucket.clear();
        ++rehash_idx_;
        if (static_cast<std::size_t>(rehash_idx_) >= table_[0].size()) {
            finish_rehash();
        }
    }

    void finish_rehash() {
        SKV_DCHECK(used_[0] == 0);
        table_[0] = std::move(table_[1]);
        table_[1].clear();
        used_[0] = used_[1];
        used_[1] = 0;
        rehash_idx_ = -1;
    }

    void step_rehash() {
        if (rehashing()) migrate_one();
    }

    Table table_[2];
    std::size_t used_[2] = {0, 0};
    std::ptrdiff_t rehash_idx_ = -1;
};

} // namespace skv::kv
