#include <algorithm>
#include <cstdio>

#include "kv/command.hpp"
#include "kv/sds.hpp"

namespace skv::kv {

namespace {

/// Shared option parsing for SCAN/SSCAN/HSCAN/ZSCAN:
/// [MATCH pattern] [COUNT n].
struct ScanOptions {
    std::string pattern;
    bool has_pattern = false;
    long long count = 10;
    bool bad = false;
};

ScanOptions parse_scan_options(CommandContext& ctx, std::size_t first) {
    ScanOptions o;
    for (std::size_t i = first; i < ctx.argv.size(); ++i) {
        const Sds a(ctx.argv[i]);
        if (a.iequals("MATCH") && i + 1 < ctx.argv.size()) {
            o.pattern = ctx.argv[i + 1];
            o.has_pattern = true;
            ++i;
        } else if (a.iequals("COUNT") && i + 1 < ctx.argv.size()) {
            const auto n = string2ll(ctx.argv[i + 1]);
            if (!n.has_value() || *n <= 0) {
                ctx.reply_error("ERR syntax error");
                o.bad = true;
                return o;
            }
            o.count = *n;
            ++i;
        } else {
            ctx.reply_error("ERR syntax error");
            o.bad = true;
            return o;
        }
    }
    return o;
}

bool matches(const ScanOptions& o, std::string_view s) {
    return !o.has_pattern || glob_match(o.pattern, s);
}

void reply_scan(CommandContext& ctx, std::uint64_t cursor,
                const std::vector<std::string>& items) {
    ctx.reply += resp::array_header(2);
    ctx.reply_bulk(ll2string(static_cast<long long>(cursor)));
    ctx.reply += resp::array_header(items.size());
    for (const auto& it : items) ctx.reply_bulk(it);
}

/// SCAN cursor [MATCH pattern] [COUNT n] — incremental keyspace iteration
/// with the usual guarantee: keys present for the whole scan are returned
/// at least once, and the cursor is stable across rehashes.
void cmd_scan(CommandContext& ctx) {
    const auto cursor = string2ll(ctx.argv[1]);
    if (!cursor.has_value() || *cursor < 0) {
        ctx.reply_error("ERR invalid cursor");
        return;
    }
    const ScanOptions o = parse_scan_options(ctx, 2);
    if (o.bad) return;

    std::vector<std::string> out;
    auto c = static_cast<std::uint64_t>(*cursor);
    long long buckets = 0;
    do {
        c = ctx.db.keys().scan(c, [&](const Sds& k, const ObjectPtr&) {
            if (matches(o, k.view())) out.push_back(k.str());
        });
        ++buckets;
    } while (c != 0 && buckets < o.count);
    reply_scan(ctx, c, out);
}

void cmd_sscan(CommandContext& ctx) {
    const auto cursor = string2ll(ctx.argv[2]);
    if (!cursor.has_value() || *cursor < 0) {
        ctx.reply_error("ERR invalid cursor");
        return;
    }
    const ScanOptions o = parse_scan_options(ctx, 3);
    if (o.bad) return;
    bool type_err = false;
    ObjectPtr obj = ctx.lookup_typed(ctx.argv[1], ObjType::kSet, &type_err);
    if (type_err) return;
    // Small sets (and intsets) are returned whole in one step, as Redis
    // does for compact encodings.
    std::vector<std::string> out;
    if (obj != nullptr) {
        for (auto& m : obj->set_members()) {
            if (matches(o, m)) out.push_back(std::move(m));
        }
        std::sort(out.begin(), out.end());
    }
    reply_scan(ctx, 0, out);
}

void cmd_hscan(CommandContext& ctx) {
    const auto cursor = string2ll(ctx.argv[2]);
    if (!cursor.has_value() || *cursor < 0) {
        ctx.reply_error("ERR invalid cursor");
        return;
    }
    const ScanOptions o = parse_scan_options(ctx, 3);
    if (o.bad) return;
    bool type_err = false;
    ObjectPtr obj = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    std::vector<std::pair<std::string, std::string>> pairs;
    if (obj != nullptr) {
        obj->hash().for_each([&](const Sds& f, const Sds& v) {
            if (matches(o, f.view())) pairs.emplace_back(f.str(), v.str());
        });
        std::sort(pairs.begin(), pairs.end());
    }
    std::vector<std::string> out;
    out.reserve(pairs.size() * 2);
    for (auto& [f, v] : pairs) {
        out.push_back(std::move(f));
        out.push_back(std::move(v));
    }
    reply_scan(ctx, 0, out);
}

void cmd_zscan(CommandContext& ctx) {
    const auto cursor = string2ll(ctx.argv[2]);
    if (!cursor.has_value() || *cursor < 0) {
        ctx.reply_error("ERR invalid cursor");
        return;
    }
    const ScanOptions o = parse_scan_options(ctx, 3);
    if (o.bad) return;
    bool type_err = false;
    ObjectPtr obj = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    std::vector<std::string> out;
    if (obj != nullptr) {
        for (const SkipList::Node* n = obj->zsl().head(); n != nullptr;
             n = n->level[0].forward) {
            if (matches(o, n->member.view())) {
                out.push_back(n->member.str());
                char buf[64];
                if (n->score == static_cast<long long>(n->score)) {
                    out.push_back(ll2string(static_cast<long long>(n->score)));
                } else {
                    std::snprintf(buf, sizeof(buf), "%.17g", n->score);
                    out.push_back(buf);
                }
            }
        }
    }
    reply_scan(ctx, 0, out);
}

/// GETDEL: GET then delete (Redis 6.2).
void cmd_getdel(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_null();
        return;
    }
    ctx.reply_bulk(o->string_value());
    ctx.db.remove(ctx.argv[1]);
    ctx.dirty = true;
    ctx.repl_override = std::vector<std::string>{"DEL", ctx.argv[1]};
}

/// GETEX key [EX s | PX ms | PERSIST] — GET that can touch the TTL.
void cmd_getex(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kString, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_null();
        return;
    }
    if (ctx.argv.size() == 2) {
        ctx.reply_bulk(o->string_value());
        return;
    }
    const Sds opt(ctx.argv[2]);
    if (opt.iequals("PERSIST") && ctx.argv.size() == 3) {
        if (ctx.db.persist(ctx.argv[1])) {
            ctx.dirty = true;
            ctx.repl_override = std::vector<std::string>{"PERSIST", ctx.argv[1]};
        }
        ctx.reply_bulk(o->string_value());
        return;
    }
    if ((opt.iequals("EX") || opt.iequals("PX")) && ctx.argv.size() == 4) {
        const auto v = string2ll(ctx.argv[3]);
        if (!v.has_value() || *v <= 0) {
            ctx.reply_error("ERR invalid expire time in 'getex' command");
            return;
        }
        const std::int64_t at =
            ctx.db.now_ms() + (opt.iequals("EX") ? *v * 1000 : *v);
        ctx.db.set_expire(ctx.argv[1], at);
        ctx.dirty = true;
        ctx.repl_override =
            std::vector<std::string>{"PEXPIREAT", ctx.argv[1], ll2string(at)};
        ctx.reply_bulk(o->string_value());
        return;
    }
    ctx.reply_error("ERR syntax error");
}

} // namespace

void register_scan_commands(CommandTable& t) {
    t.add({"SCAN", -2, kCmdReadOnly, cmd_scan});
    t.add({"SSCAN", -3, kCmdReadOnly, cmd_sscan});
    t.add({"HSCAN", -3, kCmdReadOnly, cmd_hscan});
    t.add({"ZSCAN", -3, kCmdReadOnly, cmd_zscan});
    t.add({"GETDEL", 2, kCmdWrite | kCmdFast, cmd_getdel});
    t.add({"GETEX", -2, kCmdWrite | kCmdFast, cmd_getex});
}

} // namespace skv::kv
