#include <climits>

#include "kv/command.hpp"

namespace skv::kv {

namespace {

void cmd_hset(CommandContext& ctx) {
    if (ctx.argv.size() % 2 != 0) {
        ctx.reply_error("ERR wrong number of arguments for 'hset' command");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        o = Object::make_hash();
        ctx.db.set_keep_ttl(ctx.argv[1], o);
    }
    long long created = 0;
    for (std::size_t i = 2; i + 1 < ctx.argv.size(); i += 2) {
        if (o->hash().set(Sds(ctx.argv[i]), Sds(ctx.argv[i + 1]))) ++created;
    }
    ctx.db.mark_dirty();
    ctx.dirty = true;
    ctx.reply_integer(created);
}

void cmd_hsetnx(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    if (o != nullptr && o->hash().find(Sds(ctx.argv[2])) != nullptr) {
        ctx.reply_integer(0);
        return;
    }
    if (o == nullptr) {
        o = Object::make_hash();
        ctx.db.set_keep_ttl(ctx.argv[1], o);
    }
    o->hash().insert(Sds(ctx.argv[2]), Sds(ctx.argv[3]));
    ctx.db.mark_dirty();
    ctx.dirty = true;
    ctx.reply_integer(1);
}

void cmd_hget(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_null();
        return;
    }
    const Sds* v = o->hash().find(Sds(ctx.argv[2]));
    if (v == nullptr) {
        ctx.reply_null();
    } else {
        ctx.reply_bulk(v->view());
    }
}

void cmd_hmget(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    ctx.reply += resp::array_header(ctx.argv.size() - 2);
    for (std::size_t i = 2; i < ctx.argv.size(); ++i) {
        const Sds* v = o == nullptr ? nullptr : o->hash().find(Sds(ctx.argv[i]));
        if (v == nullptr) {
            ctx.reply_null();
        } else {
            ctx.reply_bulk(v->view());
        }
    }
}

void cmd_hdel(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_integer(0);
        return;
    }
    long long removed = 0;
    for (std::size_t i = 2; i < ctx.argv.size(); ++i) {
        if (o->hash().erase(Sds(ctx.argv[i]))) ++removed;
    }
    if (o->hash().empty()) ctx.db.remove(ctx.argv[1]);
    if (removed > 0) {
        ctx.db.mark_dirty();
        ctx.dirty = true;
    }
    ctx.reply_integer(removed);
}

void cmd_hlen(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    ctx.reply_integer(o == nullptr ? 0 : static_cast<long long>(o->hash().size()));
}

void cmd_hexists(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    ctx.reply_integer(
        o != nullptr && o->hash().find(Sds(ctx.argv[2])) != nullptr ? 1 : 0);
}

/// Collect fields/values in sorted-field order (deterministic replies).
std::vector<std::pair<std::string, std::string>> sorted_pairs(const Object& o) {
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(o.hash().size());
    o.hash().for_each([&](const Sds& k, const Sds& v) {
        out.emplace_back(k.str(), v.str());
    });
    std::sort(out.begin(), out.end());
    return out;
}

void cmd_hgetall(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply += resp::array_header(0);
        return;
    }
    const auto pairs = sorted_pairs(*o);
    ctx.reply += resp::array_header(pairs.size() * 2);
    for (const auto& [k, v] : pairs) {
        ctx.reply_bulk(k);
        ctx.reply_bulk(v);
    }
}

void cmd_hkeys(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply += resp::array_header(0);
        return;
    }
    const auto pairs = sorted_pairs(*o);
    ctx.reply += resp::array_header(pairs.size());
    for (const auto& [k, v] : pairs) ctx.reply_bulk(k);
}

void cmd_hvals(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply += resp::array_header(0);
        return;
    }
    const auto pairs = sorted_pairs(*o);
    ctx.reply += resp::array_header(pairs.size());
    for (const auto& [k, v] : pairs) ctx.reply_bulk(v);
}

void cmd_hincrby(CommandContext& ctx) {
    const auto delta = string2ll(ctx.argv[3]);
    if (!delta.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kHash, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        o = Object::make_hash();
        ctx.db.set_keep_ttl(ctx.argv[1], o);
    }
    long long cur = 0;
    if (const Sds* v = o->hash().find(Sds(ctx.argv[2]))) {
        const auto parsed = string2ll(v->view());
        if (!parsed.has_value()) {
            ctx.reply_error("ERR hash value is not an integer");
            return;
        }
        cur = *parsed;
    }
    if ((*delta > 0 && cur > LLONG_MAX - *delta) ||
        (*delta < 0 && cur < LLONG_MIN - *delta)) {
        ctx.reply_error("ERR increment or decrement would overflow");
        return;
    }
    const long long next = cur + *delta;
    o->hash().set(Sds(ctx.argv[2]), Sds(ll2string(next)));
    ctx.db.mark_dirty();
    ctx.dirty = true;
    ctx.reply_integer(next);
}

} // namespace

void register_hash_commands(CommandTable& t) {
    t.add({"HSET", -4, kCmdWrite | kCmdFast, cmd_hset});
    t.add({"HSETNX", 4, kCmdWrite | kCmdFast, cmd_hsetnx});
    t.add({"HGET", 3, kCmdReadOnly | kCmdFast, cmd_hget});
    t.add({"HMGET", -3, kCmdReadOnly | kCmdFast, cmd_hmget});
    t.add({"HDEL", -3, kCmdWrite | kCmdFast, cmd_hdel});
    t.add({"HLEN", 2, kCmdReadOnly | kCmdFast, cmd_hlen});
    t.add({"HEXISTS", 3, kCmdReadOnly | kCmdFast, cmd_hexists});
    t.add({"HGETALL", 2, kCmdReadOnly, cmd_hgetall});
    t.add({"HKEYS", 2, kCmdReadOnly, cmd_hkeys});
    t.add({"HVALS", 2, kCmdReadOnly, cmd_hvals});
    t.add({"HINCRBY", 4, kCmdWrite | kCmdFast, cmd_hincrby});
}

} // namespace skv::kv
