#include <algorithm>
#include <cmath>
#include <cstdio>

#include "kv/command.hpp"

namespace skv::kv {

namespace {

std::string format_score(double s) {
    if (s == static_cast<long long>(s) && std::abs(s) < 1e17) {
        return ll2string(static_cast<long long>(s));
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", s);
    return buf;
}

/// Parse a ZRANGEBYSCORE bound: "(1.5" is exclusive, "1.5" inclusive,
/// "-inf"/"+inf" open.
bool parse_bound(std::string_view s, double* value, bool* exclusive) {
    *exclusive = false;
    if (!s.empty() && s[0] == '(') {
        *exclusive = true;
        s.remove_prefix(1);
    }
    const auto v = string2d(s);
    if (!v.has_value()) return false;
    *value = *v;
    return true;
}

void cmd_zadd(CommandContext& ctx) {
    std::size_t i = 2;
    bool nx = false;
    bool xx = false;
    bool ch = false;
    while (i < ctx.argv.size()) {
        const Sds a(ctx.argv[i]);
        if (a.iequals("NX")) {
            nx = true;
            ++i;
        } else if (a.iequals("XX")) {
            xx = true;
            ++i;
        } else if (a.iequals("CH")) {
            ch = true;
            ++i;
        } else {
            break;
        }
    }
    if (nx && xx) {
        ctx.reply_error(
            "ERR XX and NX options at the same time are not compatible");
        return;
    }
    const std::size_t remaining = ctx.argv.size() - i;
    if (remaining == 0 || remaining % 2 != 0) {
        ctx.reply_error("ERR syntax error");
        return;
    }
    // Validate all scores before mutating anything.
    std::vector<std::pair<double, std::string_view>> pairs;
    for (std::size_t j = i; j + 1 < ctx.argv.size(); j += 2) {
        const auto score = string2d(ctx.argv[j]);
        if (!score.has_value()) {
            ctx.reply_error("ERR value is not a valid float");
            return;
        }
        pairs.emplace_back(*score, ctx.argv[j + 1]);
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        if (xx) {
            ctx.reply_integer(0);
            return;
        }
        o = Object::make_zset();
        ctx.db.set_keep_ttl(ctx.argv[1], o);
    }
    long long added = 0;
    long long changed = 0;
    for (const auto& [score, member] : pairs) {
        const auto existing = o->zscore(member);
        if (existing.has_value()) {
            if (nx) continue;
            if (*existing != score) {
                o->zadd(score, member);
                ++changed;
            }
        } else {
            if (xx) continue;
            o->zadd(score, member);
            ++added;
        }
    }
    if (o->zcard() == 0) ctx.db.remove(ctx.argv[1]);
    if (added + changed > 0) {
        ctx.db.mark_dirty();
        ctx.dirty = true;
    }
    ctx.reply_integer(ch ? added + changed : added);
}

void cmd_zrem(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_integer(0);
        return;
    }
    long long removed = 0;
    for (std::size_t i = 2; i < ctx.argv.size(); ++i) {
        if (o->zrem(ctx.argv[i])) ++removed;
    }
    if (o->zcard() == 0) ctx.db.remove(ctx.argv[1]);
    if (removed > 0) {
        ctx.db.mark_dirty();
        ctx.dirty = true;
    }
    ctx.reply_integer(removed);
}

void cmd_zscore(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_null();
        return;
    }
    const auto s = o->zscore(ctx.argv[2]);
    if (!s.has_value()) {
        ctx.reply_null();
    } else {
        ctx.reply_bulk(format_score(*s));
    }
}

void cmd_zcard(CommandContext& ctx) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    ctx.reply_integer(o == nullptr ? 0 : static_cast<long long>(o->zcard()));
}

void cmd_zrank(CommandContext& ctx, bool reverse) {
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply_null();
        return;
    }
    const auto r = o->zrank(ctx.argv[2]);
    if (!r.has_value()) {
        ctx.reply_null();
        return;
    }
    ctx.reply_integer(reverse ? static_cast<long long>(o->zcard() - 1 - *r)
                              : static_cast<long long>(*r));
}

void cmd_zincrby(CommandContext& ctx) {
    const auto delta = string2d(ctx.argv[2]);
    if (!delta.has_value()) {
        ctx.reply_error("ERR value is not a valid float");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        o = Object::make_zset();
        ctx.db.set_keep_ttl(ctx.argv[1], o);
    }
    const double cur = o->zscore(ctx.argv[3]).value_or(0.0);
    const double next = cur + *delta;
    if (std::isnan(next)) {
        ctx.reply_error("ERR resulting score is not a number (NaN)");
        return;
    }
    o->zadd(next, ctx.argv[3]);
    ctx.db.mark_dirty();
    ctx.dirty = true;
    // Replicate the absolute score so floating accumulation agrees.
    ctx.repl_override = std::vector<std::string>{
        "ZADD", ctx.argv[1], format_score(next), ctx.argv[3]};
    ctx.reply_bulk(format_score(next));
}

void cmd_zrange(CommandContext& ctx, bool reverse) {
    const auto start = string2ll(ctx.argv[2]);
    const auto stop = string2ll(ctx.argv[3]);
    if (!start.has_value() || !stop.has_value()) {
        ctx.reply_error("ERR value is not an integer or out of range");
        return;
    }
    bool withscores = false;
    if (ctx.argv.size() == 5) {
        if (!Sds(ctx.argv[4]).iequals("WITHSCORES")) {
            ctx.reply_error("ERR syntax error");
            return;
        }
        withscores = true;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    if (o == nullptr) {
        ctx.reply += resp::array_header(0);
        return;
    }
    const auto len = static_cast<std::ptrdiff_t>(o->zcard());
    std::ptrdiff_t s = static_cast<std::ptrdiff_t>(*start);
    std::ptrdiff_t e = static_cast<std::ptrdiff_t>(*stop);
    if (s < 0) s += len;
    if (e < 0) e += len;
    if (s < 0) s = 0;
    if (e >= len) e = len - 1;
    if (s > e || s >= len) {
        ctx.reply += resp::array_header(0);
        return;
    }
    const std::size_t count = static_cast<std::size_t>(e - s + 1);
    ctx.reply += resp::array_header(withscores ? count * 2 : count);
    for (std::ptrdiff_t i = s; i <= e; ++i) {
        const std::ptrdiff_t rank0 = reverse ? len - 1 - i : i;
        const SkipList::Node* n =
            o->zsl().at_rank(static_cast<std::size_t>(rank0) + 1);
        ctx.reply_bulk(n->member.view());
        if (withscores) ctx.reply_bulk(format_score(n->score));
    }
}

void cmd_zrangebyscore(CommandContext& ctx) {
    double min;
    double max;
    bool min_ex;
    bool max_ex;
    if (!parse_bound(ctx.argv[2], &min, &min_ex) ||
        !parse_bound(ctx.argv[3], &max, &max_ex)) {
        ctx.reply_error("ERR min or max is not a float");
        return;
    }
    bool withscores = false;
    if (ctx.argv.size() == 5) {
        if (!Sds(ctx.argv[4]).iequals("WITHSCORES")) {
            ctx.reply_error("ERR syntax error");
            return;
        }
        withscores = true;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    std::vector<const SkipList::Node*> nodes;
    if (o != nullptr) {
        for (const SkipList::Node* n = o->zsl().first_in_range(min, min_ex);
             n != nullptr; n = n->level[0].forward) {
            if (max_ex ? n->score >= max : n->score > max) break;
            nodes.push_back(n);
        }
    }
    ctx.reply += resp::array_header(withscores ? nodes.size() * 2 : nodes.size());
    for (const auto* n : nodes) {
        ctx.reply_bulk(n->member.view());
        if (withscores) ctx.reply_bulk(format_score(n->score));
    }
}

void cmd_zcount(CommandContext& ctx) {
    double min;
    double max;
    bool min_ex;
    bool max_ex;
    if (!parse_bound(ctx.argv[2], &min, &min_ex) ||
        !parse_bound(ctx.argv[3], &max, &max_ex)) {
        ctx.reply_error("ERR min or max is not a float");
        return;
    }
    bool type_err = false;
    ObjectPtr o = ctx.lookup_typed(ctx.argv[1], ObjType::kZSet, &type_err);
    if (type_err) return;
    long long count = 0;
    if (o != nullptr) {
        for (const SkipList::Node* n = o->zsl().first_in_range(min, min_ex);
             n != nullptr; n = n->level[0].forward) {
            if (max_ex ? n->score >= max : n->score > max) break;
            ++count;
        }
    }
    ctx.reply_integer(count);
}

} // namespace

void register_zset_commands(CommandTable& t) {
    t.add({"ZADD", -4, kCmdWrite | kCmdFast, cmd_zadd});
    t.add({"ZREM", -3, kCmdWrite | kCmdFast, cmd_zrem});
    t.add({"ZSCORE", 3, kCmdReadOnly | kCmdFast, cmd_zscore});
    t.add({"ZCARD", 2, kCmdReadOnly | kCmdFast, cmd_zcard});
    t.add({"ZRANK", 3, kCmdReadOnly | kCmdFast,
           [](CommandContext& ctx) { cmd_zrank(ctx, false); }});
    t.add({"ZREVRANK", 3, kCmdReadOnly | kCmdFast,
           [](CommandContext& ctx) { cmd_zrank(ctx, true); }});
    t.add({"ZINCRBY", 4, kCmdWrite | kCmdFast, cmd_zincrby});
    t.add({"ZRANGE", -4, kCmdReadOnly,
           [](CommandContext& ctx) { cmd_zrange(ctx, false); }});
    t.add({"ZREVRANGE", -4, kCmdReadOnly,
           [](CommandContext& ctx) { cmd_zrange(ctx, true); }});
    t.add({"ZRANGEBYSCORE", -4, kCmdReadOnly, cmd_zrangebyscore});
    t.add({"ZCOUNT", 4, kCmdReadOnly, cmd_zcount});
}

} // namespace skv::kv
