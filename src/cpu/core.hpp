#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace skv::cpu {

/// One processor core in the simulation. Tasks submitted to a core execute
/// serially, in submission order, each occupying the core for its cost.
/// This is how the single-threaded Redis event loop is modelled: every
/// handler invocation (read a request, execute a command, post a work
/// request, ...) is a task on the server's core, and throughput saturation
/// emerges from core occupancy.
///
/// `speed_factor` scales task costs: 1.0 for a host Xeon core, >1 for the
/// slower SmartNIC ARM cores (a factor of f means every task takes f times
/// longer). This is the paper's "the performance of the cores on the
/// SmartNIC is much weaker than that of the host cores" knob.
class Core {
public:
    Core(sim::Simulation& sim, std::string name, double speed_factor = 1.0);

    Core(const Core&) = delete;
    Core& operator=(const Core&) = delete;

    /// Enqueue a task costing `host_cost` (expressed in host-core time;
    /// scaled by this core's speed factor). `fn` runs when the task
    /// completes. Returns the completion time.
    sim::SimTime submit(sim::Duration host_cost, std::function<void()> fn);

    /// Enqueue a zero-notification task: occupy the core without running
    /// anything at completion (pure cost accounting).
    void consume(sim::Duration host_cost);

    /// When the core next becomes idle (now() if it is idle already).
    [[nodiscard]] sim::SimTime busy_until() const;

    /// Total time this core has spent (or is committed to spend) executing.
    [[nodiscard]] sim::Duration total_busy() const { return total_busy_; }

    /// Fraction of [0, now] the core has been busy. Committed-but-future
    /// work is clipped to now, so the result is always in [0, 1].
    [[nodiscard]] double utilization() const;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] double speed_factor() const { return speed_factor_; }
    [[nodiscard]] std::uint64_t tasks_executed() const { return tasks_; }

    /// Halt the core: pending completions still fire (they already left the
    /// core), but new submissions are dropped. Models a crashed host.
    void halt() { halted_ = true; }
    void resume() { halted_ = false; }
    [[nodiscard]] bool halted() const { return halted_; }

private:
    sim::Simulation& sim_;
    std::string name_;
    double speed_factor_;
    sim::SimTime busy_until_ = sim::SimTime::zero();
    sim::Duration total_busy_ = sim::Duration::zero();
    std::uint64_t tasks_ = 0;
    bool halted_ = false;
};

} // namespace skv::cpu
