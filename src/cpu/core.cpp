#include "cpu/core.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace skv::cpu {

Core::Core(sim::Simulation& sim, std::string name, double speed_factor)
    : sim_(sim), name_(std::move(name)), speed_factor_(speed_factor) {
    SKV_CHECK(speed_factor > 0.0);
}

sim::SimTime Core::submit(sim::Duration host_cost, std::function<void()> fn) {
    SKV_DCHECK(host_cost.ns() >= 0);
    if (halted_) return sim::SimTime::max();
    const sim::Duration cost = host_cost.scaled(speed_factor_);
    const sim::SimTime start = std::max(sim_.now(), busy_until_);
    busy_until_ = start + cost;
    total_busy_ += cost;
    ++tasks_;
    if (fn) {
        sim_.at(busy_until_, std::move(fn));
    }
    return busy_until_;
}

void Core::consume(sim::Duration host_cost) {
    submit(host_cost, nullptr);
}

sim::SimTime Core::busy_until() const {
    return std::max(sim_.now(), busy_until_);
}

double Core::utilization() const {
    const std::int64_t now = sim_.now().ns();
    if (now <= 0) return 0.0;
    // Committed-but-not-yet-elapsed work is clipped to now.
    const std::int64_t overhang = std::max<std::int64_t>(0, busy_until_.ns() - now);
    const std::int64_t busy = total_busy_.ns() - overhang;
    return std::clamp(static_cast<double>(busy) / static_cast<double>(now), 0.0, 1.0);
}

} // namespace skv::cpu
