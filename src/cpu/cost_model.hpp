#pragma once

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace skv::cpu {

/// Every CPU/NIC/network cost constant in the simulation, in one place.
/// All durations are expressed in host-core time at the reference clock
/// (2.3 GHz Xeon Gold 5218, the paper's testbed); SmartNIC ARM cores scale
/// them by their Core::speed_factor.
///
/// The defaults are calibrated so the *shapes* of the paper's figures
/// emerge (see DESIGN.md §2 "Calibration targets"): TCP-Redis saturates
/// around 130 kops/s, RDMA-Redis above 330 kops/s, a 3-slave RDMA-Redis
/// master loses ~12-15% throughput to per-slave fan-out, and SKV recovers
/// it by posting a single work request per write.
struct CostModel {
    // --- host event loop ------------------------------------------------
    /// Event-loop dispatch per ready file event (epoll bookkeeping,
    /// callback indirection).
    sim::Duration event_dispatch{sim::nanoseconds(450)};
    /// Parsing one RESP command from the query buffer.
    sim::Duration cmd_parse{sim::nanoseconds(400)};
    /// Executing a read command (dict lookup, object access).
    sim::Duration cmd_exec_read{sim::nanoseconds(1100)};
    /// Executing a write command (dict insert/overwrite, object alloc).
    sim::Duration cmd_exec_write{sim::nanoseconds(1150)};
    /// Building a reply into the client's output buffer.
    sim::Duration reply_build{sim::nanoseconds(250)};

    // --- RDMA verbs -----------------------------------------------------
    /// ibv_post_send: building the WQE and ringing the doorbell (MMIO).
    sim::Duration wr_post{sim::nanoseconds(200)};
    /// Handling one completion from the CQ via the completion channel
    /// (ibv_get_cq_event + poll + ack + re-arm, amortized).
    sim::Duration completion_handle{sim::nanoseconds(220)};
    /// ibv_post_recv: posting one receive WQE (cheap, no doorbell batching
    /// modelled).
    sim::Duration recv_post{sim::nanoseconds(90)};
    /// ibv_reg_mr: registering / re-registering a buffer (page pinning).
    sim::Duration mr_register{sim::microseconds(2)};
    /// Probability that a doorbell ring stalls on MMIO/PCIe contention,
    /// and the stall cost. More WR posts per request (the baseline's
    /// per-slave fan-out) means more exposure to this tail.
    double wr_stall_prob = 0.015;
    sim::Duration wr_stall{sim::microseconds(5)};

    // --- replication ----------------------------------------------------
    /// Baseline master: feeding one slave's output buffer with a command
    /// (client object lookup, backlog append, buffer copy bookkeeping).
    sim::Duration repl_feed_slave{sim::nanoseconds(90)};
    /// Occasionally a slave's output buffer crosses a growth boundary and
    /// the master eats a realloc + copy, or the send path takes the slow
    /// path. Rare but large: this is what makes the baseline's *tail*
    /// disproportionally worse with fan-out (Fig. 7's ">25% tail" and
    /// Fig. 11's -21% p99) while barely moving the mean.
    double repl_feed_stall_prob = 0.004;
    sim::Duration repl_feed_stall{sim::microseconds(12)};
    /// SKV master: building the single replication request for Nic-KV.
    sim::Duration offload_request_build{sim::nanoseconds(450)};
    /// Nic-KV: parsing a replication request (binary framing, not RESP).
    sim::Duration nic_repl_parse{sim::nanoseconds(100)};
    /// Nic-KV: node-list lookup plus copying the command into one slave's
    /// send buffer.
    sim::Duration nic_repl_fanout_per_slave{sim::nanoseconds(90)};
    /// Slave: applying one replicated write command.
    sim::Duration slave_apply{sim::nanoseconds(900)};

    // --- memory ----------------------------------------------------------
    /// memcpy cost on the host (~20 GB/s effective including cache misses).
    double copy_ns_per_byte = 0.05;

    // --- kernel TCP path --------------------------------------------------
    /// Per send()/recv() syscall: user/kernel crossing, context switch,
    /// sk_buff handling.
    sim::Duration tcp_syscall{sim::nanoseconds(1600)};
    /// Extra kernel copies + checksum per byte on the TCP path.
    double tcp_copy_ns_per_byte = 0.18;
    /// Protocol processing (header encap/parse) per segment.
    sim::Duration tcp_proto{sim::nanoseconds(900)};

    // --- service jitter ----------------------------------------------------
    /// Multiplicative exponential jitter applied to host task costs:
    /// effective = base * (1 + Exp(jitter_frac)). Models cache misses,
    /// allocator slow paths and interrupt interference; produces realistic
    /// latency tails.
    double jitter_frac = 0.06;

    // --- SmartNIC ----------------------------------------------------------
    /// Slowdown of one BlueField-2 A72 core relative to the host Xeon for
    /// this workload (paper §II-C / [22]: "much weaker").
    double nic_core_slowdown = 2.5;
    /// ARM cores available on the SmartNIC for Nic-KV.
    int nic_cores = 8;

    /// Apply multiplicative jitter to a base cost.
    [[nodiscard]] sim::Duration jittered(sim::Rng& rng, sim::Duration base) const {
        if (jitter_frac <= 0.0) return base;
        return base.scaled(1.0 + rng.next_exponential(jitter_frac));
    }

    /// Cost of copying `bytes` on a host core.
    [[nodiscard]] sim::Duration copy_cost(std::size_t bytes) const {
        return sim::Duration(
            static_cast<std::int64_t>(copy_ns_per_byte * static_cast<double>(bytes)));
    }

    /// Kernel-path cost of moving `bytes` through one send() or recv().
    [[nodiscard]] sim::Duration tcp_side_cost(std::size_t bytes) const {
        return tcp_syscall + tcp_proto +
               sim::Duration(static_cast<std::int64_t>(
                   tcp_copy_ns_per_byte * static_cast<double>(bytes)));
    }
};

} // namespace skv::cpu
