#include "rdma/cm.hpp"
#include "sim/check.hpp"


namespace skv::rdma {

void ConnectionManager::listen(net::NodeRef node, std::uint16_t port,
                               AcceptHandler on_accept, RingParams params) {
    SKV_CHECK(node.valid());
    listeners_[ListenerKey{node.ep, port}] =
        Listener{node, std::move(on_accept), params};
}

void ConnectionManager::stop_listening(net::EndpointId ep, std::uint16_t port) {
    listeners_.erase(ListenerKey{ep, port});
}

void ConnectionManager::connect(net::NodeRef from, net::EndpointId to,
                                std::uint16_t port, ConnectHandler on_connected,
                                RingParams params) {
    SKV_CHECK(from.valid());

    // Client allocates its resources up front: CQs, completion channel and
    // the receive-ring MR whose information travels in the handshake.
    auto client_ch = std::make_shared<RingChannel>(net_, from, to, params);
    client_ch->init_local();
    from.core->consume(net_.costs().event_dispatch);

    // REQ carries the client MR rkey + ring capacity.
    net_.fabric().send(from.ep, to, kCtrlBytes, [this, from, to, port, client_ch,
                                                 on_connected =
                                                     std::move(on_connected)]() mutable {
        auto it = listeners_.find(ListenerKey{to, port});
        if (it == listeners_.end()) {
            // REJ back to the initiator; the client's pre-allocated ring
            // (CQs, recv MR) is torn down with the refused connection
            // instead of lingering registered forever.
            net_.fabric().send(to, from.ep, kCtrlBytes,
                               [client_ch,
                                on_connected = std::move(on_connected)]() {
                                   client_ch->close();
                                   if (on_connected) on_connected(nullptr);
                               });
            return;
        }
        const Listener listener = it->second;

        // Server allocates its side, then REPs with its MR info.
        auto server_ch = std::make_shared<RingChannel>(net_, listener.node,
                                                       from.ep, listener.params);
        server_ch->init_local();
        listener.node.core->consume(net_.costs().event_dispatch);

        // Both ends of the pair share one deterministic flow id, letting
        // the tracer correlate client and server request stamps.
        const std::uint64_t flow = ++next_flow_;
        client_ch->set_flow_id(flow);
        server_ch->set_flow_id(flow);

        net_.fabric().send(
            to, from.ep, kCtrlBytes,
            [this, from, listener, client_ch, server_ch,
             on_connected = std::move(on_connected)]() mutable {
                // Client learns the server ring, builds the QP pair, RTUs.
                from.core->consume(net_.costs().event_dispatch);
                auto client_qp = std::make_shared<QueuePair>(
                    net_, from, client_ch->send_cq(), client_ch->recv_cq());
                auto srv_qp = std::make_shared<QueuePair>(
                    net_, listener.node, server_ch->send_cq(),
                    server_ch->recv_cq());
                client_qp->connect_to(srv_qp);
                srv_qp->connect_to(client_qp);
                client_ch->attach(client_qp, server_ch->recv_mr()->rkey(),
                                  server_ch->recv_mr()->size());
                if (on_connected) on_connected(client_ch);

                net_.fabric().send(
                    from.ep, listener.node.ep, kCtrlBytes,
                    [listener, client_ch, server_ch, srv_qp]() mutable {
                        listener.node.core->consume(sim::nanoseconds(200));
                        server_ch->attach(srv_qp, client_ch->recv_mr()->rkey(),
                                          client_ch->recv_mr()->size());
                        if (listener.on_accept) listener.on_accept(server_ch);
                    });
            });
    });
}

} // namespace skv::rdma
