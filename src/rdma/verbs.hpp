#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cpu/cost_model.hpp"
#include "net/channel.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/simulation.hpp"

namespace skv::rdma {

/// RDMA operation kinds modelled by the simulator. The subset SKV uses:
/// SEND/RECV for control (MR exchange, credits), WRITE_WITH_IMM for the
/// request/reply and replication data path, READ for completeness and the
/// Fig. 3 microbenchmark.
enum class Opcode : std::uint8_t {
    kSend,
    kWrite,
    kWriteWithImm,
    kRead,
    kRecv, // only appears in completions
};

const char* to_string(Opcode op);

/// One completion queue entry (the ibv_wc analogue).
struct Completion {
    std::uint64_t wr_id = 0;
    Opcode op = Opcode::kSend;
    bool success = true;
    bool has_imm = false;
    std::uint32_t imm = 0;
    std::uint32_t byte_len = 0;
    /// For RECV completions triggered by WRITE_WITH_IMM: the ring offset the
    /// sender wrote to. Real receivers know this implicitly because the RC
    /// transport never loses frames; under injected loss the ring messenger
    /// needs it to detect holes and resynchronize its read cursor.
    std::uint64_t remote_offset = 0;
    /// For RECV completions triggered by SEND: the received payload
    /// (already copied into the posted receive buffer; duplicated here so
    /// control-plane handlers need not track buffer offsets).
    std::string inline_payload;
};

/// A registered memory region. Remote WRITEs land in `data()`; ring
/// messengers use the *_wrapped accessors to treat it as a circular buffer.
class MemoryRegion {
public:
    MemoryRegion(std::uint32_t rkey, std::size_t size);
    MemoryRegion(const MemoryRegion&) = delete;
    MemoryRegion& operator=(const MemoryRegion&) = delete;
    ~MemoryRegion() { --live_count_; }

    /// MR objects currently alive (lifetime regression accounting).
    [[nodiscard]] static long live_count() { return live_count_; }

    [[nodiscard]] std::uint32_t rkey() const { return rkey_; }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

    void write(std::size_t offset, std::string_view bytes);
    [[nodiscard]] std::string read(std::size_t offset, std::size_t len) const;

    /// Circular variants: offset is taken modulo size and the payload wraps.
    void write_wrapped(std::size_t offset, std::string_view bytes);
    [[nodiscard]] std::string read_wrapped(std::size_t offset, std::size_t len) const;

    /// Number of times this MR has been (re-)registered; the ring messenger
    /// re-registers when the receive buffer drains after filling up, per the
    /// paper's flow-control description.
    [[nodiscard]] std::uint32_t generation() const { return generation_; }
    void reregister() { ++generation_; }

private:
    inline static long live_count_ = 0;
    std::uint32_t rkey_;
    std::uint32_t generation_ = 1;
    std::vector<char> buf_;
};

using MemoryRegionPtr = std::shared_ptr<MemoryRegion>;

class CompletionQueue;

/// The completion event channel (ibv_comp_channel): instead of polling the
/// CQ, the owner arms the channel (ibv_req_notify_cq) and gets exactly one
/// callback when the next completion lands, then must re-arm. SKV uses this
/// to avoid burning host CPU on polling (paper §III-B).
class CompletionChannel {
public:
    explicit CompletionChannel(sim::Simulation& sim) : sim_(sim) {}

    void set_on_event(std::function<void()> fn) { on_event_ = std::move(fn); }

    /// Arm the channel: the next completion pushed to an attached CQ fires
    /// the callback once.
    void req_notify() { armed_ = true; }
    [[nodiscard]] bool armed() const { return armed_; }

private:
    friend class CompletionQueue;
    void fire();

    sim::Simulation& sim_;
    std::function<void()> on_event_;
    bool armed_ = false;
};

/// Completion queue. Completions accumulate until polled. The CQ shares
/// ownership of its event channel: in-flight work requests hold the CQ
/// alive past the owning messenger's death, and a push() must still find a
/// live channel to (not) fire.
class CompletionQueue {
public:
    explicit CompletionQueue(std::shared_ptr<CompletionChannel> channel = nullptr)
        : channel_(std::move(channel)) {}

    void push(Completion c);

    /// Drain up to `max` completions (0 = all).
    std::vector<Completion> poll(std::size_t max = 0);

    [[nodiscard]] std::size_t depth() const { return queue_.size(); }
    [[nodiscard]] std::uint64_t total_pushed() const { return total_; }

private:
    std::shared_ptr<CompletionChannel> channel_;
    std::deque<Completion> queue_;
    std::uint64_t total_ = 0;
};

using CompletionQueuePtr = std::shared_ptr<CompletionQueue>;

/// A work request handed to QueuePair::post_send.
struct SendWr {
    std::uint64_t wr_id = 0;
    Opcode op = Opcode::kSend;
    std::string payload;            // bytes to transfer (SEND/WRITE)
    std::uint32_t rkey = 0;         // target MR for WRITE/READ
    std::size_t remote_offset = 0;  // offset within the target MR
    std::size_t read_len = 0;       // for READ
    bool wrapped = false;           // circular-buffer WRITE
    bool has_imm = false;
    std::uint32_t imm = 0;
    bool signaled = true;           // generate a send completion
};

class RdmaNetwork;

/// A reliable-connected queue pair. Two QPs are wired together by the
/// connection manager; posting to one delivers to the other across the
/// simulated fabric. Posting charges the owner core the WR-post cost
/// (doorbell + WQE build), which is exactly the per-slave cost SKV
/// eliminates on the master by offloading fan-out to the NIC.
class QueuePair : public std::enable_shared_from_this<QueuePair> {
public:
    QueuePair(RdmaNetwork& net, net::NodeRef self, CompletionQueuePtr send_cq,
              CompletionQueuePtr recv_cq);
    QueuePair(const QueuePair&) = delete;
    QueuePair& operator=(const QueuePair&) = delete;
    ~QueuePair() { --live_count_; }

    /// QP objects currently alive (lifetime regression accounting; posted
    /// receive WQEs and RNR-queued inbounds die with their QP).
    [[nodiscard]] static long live_count() { return live_count_; }

    /// Wire this QP to its peer (done by the CM for both directions).
    void connect_to(const std::shared_ptr<QueuePair>& peer);

    /// Post a receive buffer (consumed by inbound SEND or WRITE_WITH_IMM).
    void post_recv(std::uint64_t wr_id, MemoryRegionPtr mr, std::size_t offset,
                   std::size_t len);

    /// Post a send-side work request.
    void post_send(SendWr wr);

    [[nodiscard]] bool connected() const { return !peer_.expired(); }
    [[nodiscard]] net::NodeRef self() const { return self_; }
    [[nodiscard]] CompletionQueuePtr send_cq() const { return send_cq_; }
    [[nodiscard]] CompletionQueuePtr recv_cq() const { return recv_cq_; }
    [[nodiscard]] std::size_t posted_recvs() const { return recv_queue_.size(); }

    void disconnect();

private:
    friend class RdmaNetwork;

    struct RecvWqe {
        std::uint64_t wr_id;
        MemoryRegionPtr mr;
        std::size_t offset;
        std::size_t len;
    };

    struct Inbound {
        Opcode op;
        std::string payload;
        std::uint32_t rkey = 0;
        std::size_t remote_offset = 0;
        bool wrapped = false;
        bool has_imm = false;
        std::uint32_t imm = 0;
    };

    /// Put a built WQE on the wire (runs after the doorbell cost elapses).
    void launch(std::shared_ptr<QueuePair> peer, Inbound in,
                std::size_t wire_bytes, std::uint64_t wr_id, Opcode op,
                bool signaled, std::size_t read_len);
    /// Handle an arriving message on the receive side.
    void arrive(Inbound in);
    /// Match an inbound SEND/IMM against a posted receive; queue if none
    /// (RNR condition — resolved when the next recv is posted).
    void consume_recv(Inbound in);

    inline static long live_count_ = 0;
    RdmaNetwork& net_;
    net::NodeRef self_;
    CompletionQueuePtr send_cq_;
    CompletionQueuePtr recv_cq_;
    std::weak_ptr<QueuePair> peer_;
    std::deque<RecvWqe> recv_queue_;
    std::deque<Inbound> rnr_queue_;
};

using QueuePairPtr = std::shared_ptr<QueuePair>;

/// Owns fabric access, the rkey -> MR registry and cost accounting shared
/// by all RDMA objects. One per simulation.
class RdmaNetwork {
public:
    RdmaNetwork(sim::Simulation& sim, net::Fabric& fabric,
                const cpu::CostModel& costs);

    /// Register `size` bytes of memory; returns the MR (rkey assigned).
    /// Charges the registration cost to `node`'s core. The registry holds
    /// only a weak reference: an MR whose owner died (e.g. an abandoned
    /// half-open handshake) is reclaimed with the owner instead of being
    /// retained forever.
    MemoryRegionPtr register_mr(net::NodeRef node, std::size_t size);

    /// Drop the registry entry; remote WRITEs targeting the rkey are then
    /// discarded in flight (counted in writes_unknown_mr()). Called from
    /// channel close() teardown.
    void deregister_mr(std::uint32_t rkey);

    [[nodiscard]] MemoryRegionPtr lookup_mr(std::uint32_t rkey) const;

    /// Inbound WRITE/WRITE_WITH_IMM ops that targeted an unknown (e.g.
    /// deregistered) rkey and were dropped.
    [[nodiscard]] std::uint64_t writes_unknown_mr() const {
        return writes_unknown_mr_;
    }
    void count_unknown_mr_write() { ++writes_unknown_mr_; }

    [[nodiscard]] sim::Simulation& simulation() { return sim_; }
    [[nodiscard]] net::Fabric& fabric() { return fabric_; }
    [[nodiscard]] const cpu::CostModel& costs() const { return costs_; }
    [[nodiscard]] sim::Rng& rng() { return rng_; }

    /// One-way hardware ACK latency for send completions (RC QPs complete a
    /// signaled WR when the remote NIC acks, no remote CPU involved).
    [[nodiscard]] sim::Duration ack_latency() const { return ack_latency_; }
    void set_ack_latency(sim::Duration d) { ack_latency_ = d; }

    /// Per-WR cost charged at post time for endpoint `ep`. Host endpoints
    /// ring the doorbell over PCIe MMIO and occasionally stall on it;
    /// SmartNIC companion endpoints post to their own on-die NIC engine —
    /// cheaper and never exposed to PCIe contention.
    sim::Duration wr_post_cost(net::EndpointId ep);
    /// Cost of posting one receive WQE.
    sim::Duration recv_post_cost();

    /// RoCE header overhead added to payload size on the wire.
    static constexpr std::size_t kHeaderBytes = 58; // Eth+IP+UDP+BTH(+RETH)

    /// RDMA-layer typed metrics (WR posts, WRITE_WITH_IMM count, MR
    /// registrations — hot counters pre-resolved at construction).
    [[nodiscard]] obs::Registry& obs() { return obs_; }
    /// Observability tracer shared by all RDMA objects of this network;
    /// RingChannels record completion-channel wakeup spans through it.
    void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
    [[nodiscard]] obs::Tracer* tracer() { return tracer_; }

private:
    friend class QueuePair;
    sim::Simulation& sim_;
    net::Fabric& fabric_;
    const cpu::CostModel& costs_;
    sim::Rng rng_;
    sim::Duration ack_latency_{sim::nanoseconds(900)};
    std::uint32_t next_rkey_ = 1;
    std::uint64_t writes_unknown_mr_ = 0;
    std::map<std::uint32_t, std::weak_ptr<MemoryRegion>> mrs_;
    obs::Registry obs_{"rdma"};
    obs::Counter c_wr_posts_;
    obs::Counter c_write_imm_;
    obs::Counter c_mr_regs_;
    obs::Tracer* tracer_ = nullptr;
};

} // namespace skv::rdma
