#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "rdma/ring_channel.hpp"
#include "rdma/verbs.hpp"

namespace skv::rdma {

/// RDMA_CM analogue: listeners bound to (endpoint, port), and a
/// REQ/REP/RTU handshake that also performs the paper's MR-information
/// exchange ("the client and the server exchange their Memory Region
/// information using SEND/RECV primitives"), after which both sides hold a
/// connected RingChannel.
class ConnectionManager {
public:
    using AcceptHandler = std::function<void(RingChannelPtr)>;
    using ConnectHandler = std::function<void(RingChannelPtr)>;

    explicit ConnectionManager(RdmaNetwork& net) : net_(net) {}

    void listen(net::NodeRef node, std::uint16_t port, AcceptHandler on_accept,
                RingParams params = {});
    void stop_listening(net::EndpointId ep, std::uint16_t port);

    /// Initiate a connection. `on_connected` receives the client-side
    /// channel, or nullptr if the peer rejected (nobody listening).
    void connect(net::NodeRef from, net::EndpointId to, std::uint16_t port,
                 ConnectHandler on_connected, RingParams params = {});

private:
    struct ListenerKey {
        net::EndpointId ep;
        std::uint16_t port;
        bool operator<(const ListenerKey& o) const {
            return ep != o.ep ? ep < o.ep : port < o.port;
        }
    };

    struct Listener {
        net::NodeRef node;
        AcceptHandler on_accept;
        RingParams params;
    };

    /// Control-plane message size on the wire (CM MAD + MR info).
    static constexpr std::size_t kCtrlBytes = 96;

    RdmaNetwork& net_;
    std::map<ListenerKey, Listener> listeners_;
    // Deterministic flow-id source: handshakes complete in sim-event order,
    // so both ends of pair N get id N (see net::Channel::flow_id).
    std::uint64_t next_flow_ = 0;
};

} // namespace skv::rdma
